// Tests for the simulated disk, IO engine, partition buffer, and embedding stores.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

#include "src/data/datasets.h"
#include "src/storage/disk.h"
#include "src/storage/embedding_store.h"
#include "src/storage/io_arena.h"
#include "src/storage/io_engine.h"
#include "src/storage/partition_buffer.h"
#include "src/util/binary_io.h"

namespace mariusgnn {
namespace {

// Engine-backed IO mode used by the async buffer fixtures. direct_io is
// requested so every SetUp exercises the runtime O_DIRECT probe (tmpfs and
// most CI filesystems reject it, taking the buffered-fallback path).
PartitionIoOptions AsyncIo(int queue_depth = 4) {
  PartitionIoOptions io;
  io.async = true;
  io.queue_depth = queue_depth;
  io.direct_io = true;
  return io;
}

TEST(DiskModel, SecondsCombineLatencyAndBandwidth) {
  DiskModel model;
  model.bandwidth_bytes_per_sec = 1e9;
  model.iops = 10000;
  // 1 op + 1 MB: 0.1 ms latency + ~1 ms transfer.
  EXPECT_NEAR(model.SecondsFor(1 << 20, 1), 1e-4 + 1048576.0 / 1e9, 1e-9);
}

TEST(SimulatedDisk, ReadWriteRoundTripAndStats) {
  const std::string path = TempPath("disk_test");
  SimulatedDisk disk(path);
  disk.Resize(4096);
  std::vector<float> out = {1.5f, -2.5f, 3.5f};
  disk.Write(out.data(), out.size() * sizeof(float), 128);
  std::vector<float> in(3);
  disk.Read(in.data(), in.size() * sizeof(float), 128);
  EXPECT_EQ(in, out);
  EXPECT_EQ(disk.stats().bytes_written, out.size() * sizeof(float));
  EXPECT_EQ(disk.stats().bytes_read, in.size() * sizeof(float));
  EXPECT_GT(disk.stats().modeled_seconds, 0.0);
  disk.ResetStats();
  EXPECT_EQ(disk.stats().bytes_read, 0u);
  ::remove(path.c_str());
}

TEST(SimulatedDisk, SmallReadsCostMoreOpsPerByte) {
  const std::string path = TempPath("disk_test_ops");
  DiskModel model;
  SimulatedDisk disk(path, model);
  disk.Resize(8 << 20);
  std::vector<char> buf(1 << 20);
  // One large read.
  disk.Read(buf.data(), buf.size(), 0);
  const double large = disk.stats().modeled_seconds;
  disk.ResetStats();
  // Same bytes as 4096 small reads.
  for (int i = 0; i < 4096; ++i) {
    disk.Read(buf.data(), 256, static_cast<uint64_t>(i) * 256);
  }
  const double small = disk.stats().modeled_seconds;
  EXPECT_GT(small, large * 10);
  ::remove(path.c_str());
}

class PartitionBufferTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = LiveJournalMini(0.01);
    Rng rng(1);
    partitioning_ = std::make_unique<Partitioning>(graph_, 8,
                                                   PartitionAssignment::kRandom, rng);
    Rng rng2(2);
    init_ = Tensor::Uniform(graph_.num_nodes(), 4, 1.0f, rng2);
    path_ = TempPath("pb_test");
    buffer_ = std::make_unique<PartitionBuffer>(partitioning_.get(), 4, 3, path_,
                                                DiskModel(), /*learnable=*/true, &init_);
  }

  void TearDown() override {
    buffer_.reset();
    ::remove(path_.c_str());
  }

  Graph graph_;
  std::unique_ptr<Partitioning> partitioning_;
  Tensor init_;
  std::string path_;
  std::unique_ptr<PartitionBuffer> buffer_;
};

TEST_F(PartitionBufferTest, LoadMakesPartitionsResident) {
  buffer_->SetResident({0, 1, 2});
  EXPECT_TRUE(buffer_->IsResident(0));
  EXPECT_TRUE(buffer_->IsResident(2));
  EXPECT_FALSE(buffer_->IsResident(3));
  EXPECT_EQ(buffer_->ResidentPartitions().size(), 3u);
}

TEST_F(PartitionBufferTest, ValuesMatchInit) {
  buffer_->SetResident({0, 5});
  for (int64_t v : partitioning_->NodesIn(5)) {
    const float* row = buffer_->ValueRow(v);
    for (int64_t d = 0; d < 4; ++d) {
      EXPECT_FLOAT_EQ(row[d], init_(v, d));
    }
  }
}

TEST_F(PartitionBufferTest, DirtyWriteBackPersists) {
  buffer_->SetResident({0, 1});
  const int64_t node = partitioning_->NodesIn(1).front();
  buffer_->ValueRow(node)[0] = 123.0f;
  buffer_->MarkDirty(node);
  buffer_->SetResident({2, 3});  // evicts 1 (dirty -> write back)
  buffer_->SetResident({1});
  EXPECT_FLOAT_EQ(buffer_->ValueRow(node)[0], 123.0f);
}

TEST_F(PartitionBufferTest, CleanEvictionDoesNotWrite) {
  buffer_->SetResident({0, 1, 2});
  buffer_->ResetDiskStats();
  buffer_->SetResident({3, 4, 5});
  EXPECT_EQ(buffer_->disk_stats().bytes_written, 0u);
  EXPECT_GT(buffer_->disk_stats().bytes_read, 0u);
}

TEST_F(PartitionBufferTest, SwapIoIsIncremental) {
  buffer_->SetResident({0, 1, 2});
  buffer_->ResetDiskStats();
  // One-partition swap reads one partition only.
  buffer_->SetResident({0, 1, 3});
  const uint64_t expected =
      static_cast<uint64_t>(partitioning_->PartitionSize(3)) * 4 * sizeof(float) * 2;
  EXPECT_EQ(buffer_->disk_stats().bytes_read, expected);  // values + adagrad state
}

TEST_F(PartitionBufferTest, ResidentNodesMatchesPartitions) {
  buffer_->SetResident({2, 4});
  auto nodes = buffer_->ResidentNodes();
  EXPECT_EQ(static_cast<int64_t>(nodes.size()),
            partitioning_->PartitionSize(2) + partitioning_->PartitionSize(4));
}

TEST_F(PartitionBufferTest, ExportAllRoundTrips) {
  buffer_->SetResident({0, 1});
  const int64_t node = partitioning_->NodesIn(0).front();
  buffer_->ValueRow(node)[2] = -77.0f;
  buffer_->MarkDirty(node);
  Tensor all = buffer_->ExportAll();
  ASSERT_EQ(all.rows(), graph_.num_nodes());
  EXPECT_FLOAT_EQ(all(node, 2), -77.0f);
  // Untouched rows match init.
  const int64_t other = partitioning_->NodesIn(7).back();
  EXPECT_FLOAT_EQ(all(other, 0), init_(other, 0));
}

TEST_F(PartitionBufferTest, ExportImportAllRoundTripsValuesAndState) {
  // Mutate values + Adagrad state of a resident node, export both streams, wipe
  // the table with an import of the export, and verify nothing changed — the
  // checkpoint layer's save/restore path through the buffer.
  buffer_->SetResident({0, 1});
  const int64_t node = partitioning_->NodesIn(1).front();
  buffer_->ValueRow(node)[1] = 9.5f;
  buffer_->StateRow(node)[1] = 4.25f;
  buffer_->MarkDirty(node);
  Tensor values = buffer_->ExportAll();
  Tensor state = buffer_->ExportAllState();
  ASSERT_EQ(state.rows(), graph_.num_nodes());
  EXPECT_FLOAT_EQ(state(node, 1), 4.25f);

  // Import zeros, then re-import the snapshot: the table must round-trip.
  Tensor zeros_v(values.rows(), values.cols());
  Tensor zeros_s(state.rows(), state.cols());
  buffer_->ImportAll(zeros_v, &zeros_s);
  buffer_->SetResident({1});
  EXPECT_FLOAT_EQ(buffer_->ValueRow(node)[1], 0.0f);
  buffer_->ImportAll(values, &state);
  buffer_->SetResident({1, 2});
  EXPECT_FLOAT_EQ(buffer_->ValueRow(node)[1], 9.5f);
  EXPECT_FLOAT_EQ(buffer_->StateRow(node)[1], 4.25f);
  const int64_t other = partitioning_->NodesIn(2).back();
  EXPECT_FLOAT_EQ(buffer_->ValueRow(other)[0], init_(other, 0));
}

TEST_F(PartitionBufferTest, ExportPartitionMatchesExportAll) {
  // The streaming checkpoint writer's building block: per-partition export must
  // agree row-for-row with the whole-table export, through both the resident
  // flush-through path and the evicted read-from-disk path.
  buffer_->SetResident({0, 1, 2});
  const int64_t node = partitioning_->NodesIn(1).front();
  buffer_->ValueRow(node)[3] = 31.0f;
  buffer_->StateRow(node)[0] = 7.5f;
  buffer_->MarkDirty(node);
  Tensor values = buffer_->ExportAll();
  Tensor state = buffer_->ExportAllState();

  for (int32_t part = 0; part < 8; ++part) {
    const std::vector<int64_t>& nodes = partitioning_->NodesIn(part);
    std::vector<float> v(nodes.size() * 4);
    std::vector<float> s(nodes.size() * 4);
    buffer_->ExportPartition(part, v.data(), s.data());
    for (size_t k = 0; k < nodes.size(); ++k) {
      for (int64_t d = 0; d < 4; ++d) {
        EXPECT_FLOAT_EQ(v[k * 4 + d], values(nodes[k], d))
            << "partition " << part << " resident=" << buffer_->IsResident(part);
        EXPECT_FLOAT_EQ(s[k * 4 + d], state(nodes[k], d));
      }
    }
  }
  // A values-only export (null state_out) is allowed and touches nothing else.
  std::vector<float> v_only(partitioning_->NodesIn(5).size() * 4);
  buffer_->ExportPartition(5, v_only.data(), nullptr);
  EXPECT_FLOAT_EQ(v_only[0], values(partitioning_->NodesIn(5)[0], 0));
}

TEST_F(PartitionBufferTest, BeginImportImportPartitionRoundTrips) {
  // Streaming restore: BeginImport flushes/evicts everything, then each
  // partition is overwritten from partition-local rows. Wiping the table with
  // zeros and re-importing a snapshot must round-trip values and state.
  buffer_->SetResident({0, 1});
  const int64_t node = partitioning_->NodesIn(1).front();
  buffer_->ValueRow(node)[2] = 11.0f;
  buffer_->StateRow(node)[2] = 3.5f;
  buffer_->MarkDirty(node);
  Tensor values = buffer_->ExportAll();
  Tensor state = buffer_->ExportAllState();

  auto import_table = [&](const Tensor& v_all, const Tensor& s_all) {
    buffer_->BeginImport();
    for (int32_t part = 0; part < 8; ++part) {
      const std::vector<int64_t>& nodes = partitioning_->NodesIn(part);
      std::vector<float> v(nodes.size() * 4);
      std::vector<float> s(nodes.size() * 4);
      for (size_t k = 0; k < nodes.size(); ++k) {
        for (int64_t d = 0; d < 4; ++d) {
          v[k * 4 + d] = v_all(nodes[k], d);
          s[k * 4 + d] = s_all(nodes[k], d);
        }
      }
      buffer_->ImportPartition(part, v.data(), s.data());
    }
  };

  import_table(Tensor(values.rows(), values.cols()),
               Tensor(state.rows(), state.cols()));  // wipe with zeros
  buffer_->SetResident({1});
  EXPECT_FLOAT_EQ(buffer_->ValueRow(node)[2], 0.0f);

  import_table(values, state);
  buffer_->SetResident({1, 3});
  EXPECT_FLOAT_EQ(buffer_->ValueRow(node)[2], 11.0f);
  EXPECT_FLOAT_EQ(buffer_->StateRow(node)[2], 3.5f);
  const int64_t other = partitioning_->NodesIn(3).back();
  EXPECT_FLOAT_EQ(buffer_->ValueRow(other)[0], init_(other, 0));
}

// Parameterized sweep: round-trips hold for any (partitions, capacity) geometry.
class BufferGeometryTest
    : public ::testing::TestWithParam<std::pair<int32_t, int32_t>> {};

TEST_P(BufferGeometryTest, RoundTripAcrossFullRotation) {
  const auto [p, c] = GetParam();
  Graph graph = LiveJournalMini(0.01);
  Rng rng(42);
  Partitioning partitioning(graph, p, PartitionAssignment::kRandom, rng);
  Rng rng2(43);
  Tensor init = Tensor::Uniform(graph.num_nodes(), 3, 1.0f, rng2);
  const std::string path = TempPath("pb_geom");
  PartitionBuffer buffer(&partitioning, 3, c, path, DiskModel(), true, &init);

  // Touch every partition once, mutating one node in each.
  std::vector<int64_t> touched;
  for (int32_t part = 0; part < p; ++part) {
    buffer.SetResident({part});
    const int64_t node = partitioning.NodesIn(part).front();
    buffer.ValueRow(node)[0] += 1.0f;
    buffer.MarkDirty(node);
    touched.push_back(node);
  }
  Tensor all = buffer.ExportAll();
  for (int64_t node : touched) {
    EXPECT_NEAR(all(node, 0), init(node, 0) + 1.0f, 1e-6);
  }
  // Untouched values intact.
  for (int32_t part = 0; part < p; ++part) {
    const int64_t other = partitioning.NodesIn(part).back();
    if (other != partitioning.NodesIn(part).front()) {
      EXPECT_FLOAT_EQ(all(other, 1), init(other, 1));
    }
  }
  ::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Geometries, BufferGeometryTest,
                         ::testing::Values(std::make_pair(2, 1), std::make_pair(4, 2),
                                           std::make_pair(8, 3), std::make_pair(8, 8),
                                           std::make_pair(16, 5)));

TEST_F(PartitionBufferTest, MarkDirtyOnNonResidentPartitionAborts) {
  buffer_->SetResident({0, 1});
  const int64_t node = partitioning_->NodesIn(5).front();  // partition 5 not resident
  EXPECT_DEATH(buffer_->MarkDirty(node), "not resident");
}

class AsyncPartitionBufferTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = LiveJournalMini(0.01);
    Rng rng(1);
    partitioning_ = std::make_unique<Partitioning>(graph_, 8,
                                                   PartitionAssignment::kRandom, rng);
    Rng rng2(2);
    init_ = Tensor::Uniform(graph_.num_nodes(), 4, 1.0f, rng2);
    path_ = TempPath("pb_async_test");
    buffer_ = std::make_unique<PartitionBuffer>(partitioning_.get(), 4, 3, path_,
                                                DiskModel(), /*learnable=*/true, &init_,
                                                AsyncIo());
  }

  void TearDown() override {
    buffer_.reset();
    ::remove(path_.c_str());
  }

  Graph graph_;
  std::unique_ptr<Partitioning> partitioning_;
  Tensor init_;
  std::string path_;
  std::unique_ptr<PartitionBuffer> buffer_;
};

TEST_F(AsyncPartitionBufferTest, PrefetchedInstallMatchesInit) {
  buffer_->SetResident({0, 1, 2});
  buffer_->Prefetch({3, 4});
  const double sync_io = buffer_->SetResident({3, 4});
  // Both partitions were staged: installation needs no synchronous disk reads.
  EXPECT_DOUBLE_EQ(sync_io, 0.0);
  EXPECT_GT(buffer_->ConsumeBackgroundIoSeconds(), 0.0);
  for (int32_t part : {3, 4}) {
    for (int64_t v : partitioning_->NodesIn(part)) {
      const float* row = buffer_->ValueRow(v);
      for (int64_t d = 0; d < 4; ++d) {
        EXPECT_FLOAT_EQ(row[d], init_(v, d));
      }
    }
  }
}

TEST_F(AsyncPartitionBufferTest, PrefetchSkipsResidentPartitions) {
  buffer_->SetResident({0, 1});
  buffer_->ConsumeBackgroundIoSeconds();
  buffer_->Prefetch({0, 1});  // already resident: nothing to stage
  buffer_->FlushAll();        // drain so any staged reads would have landed
  EXPECT_DOUBLE_EQ(buffer_->ConsumeBackgroundIoSeconds(), 0.0);
}

TEST_F(AsyncPartitionBufferTest, AsyncWriteBackPersistsDirtyEvictions) {
  buffer_->SetResident({0, 1, 2});
  const int64_t node = partitioning_->NodesIn(1).front();
  buffer_->ValueRow(node)[0] = 321.0f;
  buffer_->MarkDirty(node);
  buffer_->SetResident({3, 4, 5});  // evicts 1 (write-back happens in the background)
  buffer_->SetResident({1});        // reload queues behind the write (FIFO)
  EXPECT_FLOAT_EQ(buffer_->ValueRow(node)[0], 321.0f);
}

TEST_F(AsyncPartitionBufferTest, EvictThenPrefetchSamePartitionSeesWrittenData) {
  buffer_->SetResident({0, 1, 2});
  const int64_t node = partitioning_->NodesIn(2).front();
  buffer_->ValueRow(node)[3] = -9.0f;
  buffer_->MarkDirty(node);
  buffer_->SetResident({3, 4, 5});  // async write-back of 2
  buffer_->Prefetch({2});           // read queued after the write
  buffer_->SetResident({2});
  EXPECT_FLOAT_EQ(buffer_->ValueRow(node)[3], -9.0f);
}

TEST_F(AsyncPartitionBufferTest, ExportAllSeesBackgroundWrites) {
  buffer_->SetResident({0, 1});
  const int64_t node = partitioning_->NodesIn(0).front();
  buffer_->ValueRow(node)[1] = 55.0f;
  buffer_->MarkDirty(node);
  buffer_->SetResident({2, 3});  // async write-back of 0 and 1
  Tensor all = buffer_->ExportAll();
  EXPECT_FLOAT_EQ(all(node, 1), 55.0f);
}

TEST_F(AsyncPartitionBufferTest, ResidentLayoutMatchesSyncBuffer) {
  // The slot-assignment order must not depend on the IO mode, or negative-sampling
  // universes (ResidentNodes order) would diverge between prefetch on/off.
  const std::string sync_path = TempPath("pb_sync_twin");
  PartitionBuffer sync_buffer(partitioning_.get(), 4, 3, sync_path, DiskModel(),
                              /*learnable=*/true, &init_);
  const std::vector<std::vector<int32_t>> schedule = {
      {0, 1, 2}, {1, 2, 3}, {3, 4, 5}, {0, 5, 6}};
  for (const auto& set : schedule) {
    buffer_->Prefetch(set);
    buffer_->SetResident(set);
    sync_buffer.SetResident(set);
    EXPECT_EQ(buffer_->ResidentPartitions(), sync_buffer.ResidentPartitions());
    EXPECT_EQ(buffer_->ResidentNodes(), sync_buffer.ResidentNodes());
  }
  ::remove(sync_path.c_str());
}

TEST(InMemoryEmbeddingStore, GatherAndUpdate) {
  Rng rng(3);
  InMemoryEmbeddingStore store(10, 4, 0.5f, rng);
  std::vector<int64_t> nodes = {1, 3, 1};
  Tensor out;
  store.Gather(nodes, &out);
  ASSERT_EQ(out.rows(), 3);
  EXPECT_FLOAT_EQ(out(0, 0), out(2, 0));  // duplicate gather identical

  Tensor before;
  store.Gather({5}, &before);
  Tensor grads(1, 4);
  grads.Fill(1.0f);
  store.ApplyGradients({5}, grads, 0.1f);
  Tensor after;
  store.Gather({5}, &after);
  for (int64_t d = 0; d < 4; ++d) {
    EXPECT_LT(after(0, d), before(0, d));  // moved against positive gradient
  }
}

TEST(InMemoryEmbeddingStore, FixedFeaturesIgnoreGradients) {
  Tensor features = Tensor::Full(4, 2, 3.0f);
  InMemoryEmbeddingStore store(std::move(features), /*trainable=*/false);
  Tensor grads = Tensor::Full(1, 2, 1.0f);
  store.ApplyGradients({0}, grads, 0.5f);
  Tensor out;
  store.Gather({0}, &out);
  EXPECT_FLOAT_EQ(out(0, 0), 3.0f);
}

TEST(BufferedEmbeddingStore, UpdateMarksDirtyAndPersists) {
  Graph graph = LiveJournalMini(0.01);
  Rng rng(4);
  Partitioning partitioning(graph, 4, PartitionAssignment::kRandom, rng);
  Tensor init(graph.num_nodes(), 2);
  const std::string path = TempPath("bes_test");
  PartitionBuffer buffer(&partitioning, 2, 2, path, DiskModel(), true, &init);
  BufferedEmbeddingStore store(&buffer, true);

  buffer.SetResident({0, 1});
  const int64_t node = partitioning.NodesIn(0).front();
  Tensor grads = Tensor::Full(1, 2, 1.0f);
  store.ApplyGradients({node}, grads, 0.5f);
  Tensor row;
  store.Gather({node}, &row);
  EXPECT_LT(row(0, 0), 0.0f);

  buffer.SetResident({2, 3});
  buffer.SetResident({0, 1});
  Tensor back;
  store.Gather({node}, &back);
  EXPECT_FLOAT_EQ(back(0, 0), row(0, 0));
  ::remove(path.c_str());
}

TEST_F(PartitionBufferTest, ConcurrentMarkDirtyFromWorkerThreads) {
  // The dirty flags are per-slot relaxed atomic bytes, so marking from many pool
  // workers at once — including collisions on the same slot — is race-free (TSan
  // exercises this) and every mark must still be observed by the next eviction.
  buffer_->SetResident({0, 1, 2});
  std::vector<int64_t> probes;
  for (int32_t p : {0, 1, 2}) {
    const int64_t node = partitioning_->NodesIn(p).front();
    buffer_->ValueRow(node)[0] = 1000.0f + static_cast<float>(p);
    probes.push_back(node);
  }
  const std::vector<int64_t> nodes = buffer_->ResidentNodes();
  ThreadPool pool(4);
  pool.ParallelFor(
      static_cast<int64_t>(nodes.size()),
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          buffer_->MarkDirty(nodes[static_cast<size_t>(i)]);
        }
      },
      /*min_chunk=*/8);
  buffer_->SetResident({3, 4, 5});  // evicts all three dirty slots -> write back
  buffer_->SetResident({0, 1, 2});
  for (size_t k = 0; k < probes.size(); ++k) {
    EXPECT_FLOAT_EQ(buffer_->ValueRow(probes[k])[0], 1000.0f + static_cast<float>(k));
  }
}

TEST(BufferedEmbeddingStore, ParallelApplyGradientsMarksDirtyFromWorkers) {
  // The sharded sparse Adagrad marks dirty inside its parallel chunks (worker
  // threads), not in a serial pass afterwards; the updates must still persist
  // across eviction exactly as the in-memory copy shows them.
  Graph graph = LiveJournalMini(0.01);
  Rng rng(6);
  Partitioning partitioning(graph, 4, PartitionAssignment::kRandom, rng);
  Tensor init(graph.num_nodes(), 2);
  const std::string path = TempPath("bes_par_dirty_test");
  PartitionBuffer buffer(&partitioning, 2, 2, path, DiskModel(), true, &init);
  BufferedEmbeddingStore store(&buffer, true);
  ThreadPool pool(8);
  ComputeContext ctx;
  ctx.pool = &pool;
  store.set_compute(&ctx);

  buffer.SetResident({0, 1});
  const std::vector<int64_t> nodes = buffer.ResidentNodes();
  ASSERT_GT(static_cast<int64_t>(nodes.size()), kComputeGrainRows);  // spans chunks
  Tensor grads = Tensor::Full(static_cast<int64_t>(nodes.size()), 2, 1.0f);
  store.ApplyGradients(nodes, grads, 0.5f);
  Tensor updated;
  store.Gather(nodes, &updated);

  buffer.SetResident({2, 3});  // evicts both dirty slots
  buffer.SetResident({0, 1});
  Tensor back;
  store.Gather(nodes, &back);
  for (int64_t i = 0; i < back.size(); ++i) {
    ASSERT_EQ(back.data()[i], updated.data()[i]);
  }
  ::remove(path.c_str());
}

TEST(BufferedEmbeddingStore, AdagradStatePersistsAcrossEviction) {
  // Two equal gradients: second effective step must be smaller even if an
  // eviction+reload happens in between (state stream round-trips through disk).
  Graph graph = LiveJournalMini(0.01);
  Rng rng(5);
  Partitioning partitioning(graph, 4, PartitionAssignment::kRandom, rng);
  Tensor init(graph.num_nodes(), 2);
  const std::string path = TempPath("bes_state_test");
  PartitionBuffer buffer(&partitioning, 2, 2, path, DiskModel(), true, &init);
  BufferedEmbeddingStore store(&buffer, true);

  buffer.SetResident({0, 1});
  const int64_t node = partitioning.NodesIn(0).front();
  Tensor grads = Tensor::Full(1, 2, 1.0f);
  store.ApplyGradients({node}, grads, 1.0f);
  Tensor after1;
  store.Gather({node}, &after1);
  const float step1 = -after1(0, 0);

  buffer.SetResident({2, 3});
  buffer.SetResident({0, 1});
  store.ApplyGradients({node}, grads, 1.0f);
  Tensor after2;
  store.Gather({node}, &after2);
  const float step2 = -after2(0, 0) - step1;
  EXPECT_GT(step1, 0.0f);
  EXPECT_LT(step2, step1);
  ::remove(path.c_str());
}

TEST(DiskModel, DepthAmortisesLatencyOnly) {
  DiskModel model;
  const uint64_t bytes = 1 << 20;
  const uint64_t ops = 4;
  // Latency shrinks with depth, bandwidth does not; depth <= 1 degenerates.
  EXPECT_DOUBLE_EQ(model.SecondsForAtDepth(bytes, ops, 1), model.SecondsFor(bytes, ops));
  EXPECT_LT(model.SecondsForAtDepth(bytes, ops, 16), model.SecondsFor(bytes, ops));
  EXPECT_GE(model.SecondsForAtDepth(bytes, ops, 16),
            static_cast<double>(bytes) / model.bandwidth_bytes_per_sec);
}

class IoEngineTest : public ::testing::Test {
 protected:
  static constexpr size_t kBlock = kIoAlignment;  // one aligned slot per tag
  static constexpr int kBlocks = 32;

  void SetUp() override {
    path_ = TempPath("io_engine_test");
    disk_ = std::make_unique<SimulatedDisk>(path_);
    disk_->Resize(static_cast<uint64_t>(kBlocks) * kBlock);
  }

  void TearDown() override {
    disk_.reset();
    ::remove(path_.c_str());
  }

  // Fills a block-sized float pattern derived from `seed`.
  static std::vector<float> Pattern(float seed) {
    std::vector<float> v(kBlock / sizeof(float));
    for (size_t i = 0; i < v.size(); ++i) {
      v[i] = seed + static_cast<float>(i % 17);
    }
    return v;
  }

  std::string path_;
  std::unique_ptr<SimulatedDisk> disk_;
};

TEST_F(IoEngineTest, CompletionsArriveOutOfSubmissionOrder) {
  // Tag 0's transfer is delayed far beyond the others: with queue_depth > 1 the
  // later submissions must complete first — a slow partition no longer
  // head-of-line-blocks the rest of the lookahead window.
  IoEngineOptions opt;
  opt.queue_depth = 4;
  opt.before_io = [](const IoRequest& req) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(req.tag == 0 ? 150 : 1));
  };
  IoEngine engine(disk_.get(), opt);
  std::mutex mu;
  std::vector<int32_t> completion_order;
  std::vector<std::vector<float>> dst(4, std::vector<float>(kBlock / sizeof(float)));
  for (int32_t tag = 0; tag < 4; ++tag) {
    engine.SubmitRead(tag, dst[static_cast<size_t>(tag)].data(), kBlock,
                      static_cast<uint64_t>(tag) * kBlock, [&, tag](double) {
                        std::lock_guard<std::mutex> lock(mu);
                        completion_order.push_back(tag);
                      });
  }
  engine.Drain();
  ASSERT_EQ(completion_order.size(), 4u);
  EXPECT_NE(completion_order.front(), 0);  // the slow first submission came in late
  EXPECT_EQ(completion_order.back(), 0);
}

TEST_F(IoEngineTest, SameTagPreservesReadAfterWriteOrder) {
  // A read submitted after a write of the same tag must observe the written
  // data even while transfers for other tags run concurrently. The write is
  // slowed down to widen any reordering window.
  IoEngineOptions opt;
  opt.queue_depth = 8;
  opt.before_io = [](const IoRequest& req) {
    if (req.kind == IoRequest::Kind::kWrite) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  };
  IoEngine engine(disk_.get(), opt);
  const std::vector<float> written = Pattern(500.0f);
  std::vector<float> readback(written.size(), 0.0f);
  engine.SubmitWrite(7, written.data(), kBlock, 7 * kBlock, [](double) {});
  engine.SubmitRead(7, readback.data(), kBlock, 7 * kBlock, [](double) {});
  // Unrelated tags churn concurrently.
  std::vector<std::vector<float>> noise(6, std::vector<float>(written.size()));
  for (int32_t tag = 0; tag < 6; ++tag) {
    engine.SubmitRead(tag, noise[static_cast<size_t>(tag)].data(), kBlock,
                      static_cast<uint64_t>(tag) * kBlock, [](double) {});
  }
  engine.Drain();
  EXPECT_EQ(readback, written);
}

TEST_F(IoEngineTest, SameTagPreservesWriteAfterReadOrder) {
  // A write submitted after a read of the same tag must not overtake it: the
  // read sees the original bytes. The read is slowed down so an unordered
  // engine would run the write first.
  const std::vector<float> original = Pattern(1.0f);
  disk_->Write(original.data(), kBlock, 3 * kBlock);
  IoEngineOptions opt;
  opt.queue_depth = 8;
  opt.before_io = [](const IoRequest& req) {
    if (req.kind == IoRequest::Kind::kRead) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  };
  IoEngine engine(disk_.get(), opt);
  const std::vector<float> overwrite = Pattern(900.0f);
  std::vector<float> readback(original.size(), 0.0f);
  engine.SubmitRead(3, readback.data(), kBlock, 3 * kBlock, [](double) {});
  engine.SubmitWrite(3, overwrite.data(), kBlock, 3 * kBlock, [](double) {});
  engine.Drain();
  EXPECT_EQ(readback, original);
}

TEST_F(IoEngineTest, AdjacentWritesCoalesceIntoOneDeviceOp) {
  // Gate the single worker on a decoy read, queue four byte-adjacent writes,
  // then release: the engine must merge them into one device transfer.
  IoEngineOptions opt;
  opt.queue_depth = 1;
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  opt.before_io = [&](const IoRequest& req) {
    if (req.tag == 99) {
      std::unique_lock<std::mutex> lock(gate_mu);
      gate_cv.wait(lock, [&] { return gate_open; });
    }
  };
  IoEngine engine(disk_.get(), opt);
  std::vector<float> decoy(kBlock / sizeof(float));
  engine.SubmitRead(99, decoy.data(), kBlock, 20 * kBlock, [](double) {});
  std::vector<std::vector<float>> blocks;
  for (int32_t tag = 0; tag < 4; ++tag) {
    blocks.push_back(Pattern(100.0f * static_cast<float>(tag)));
  }
  disk_->ResetStats();
  for (int32_t tag = 0; tag < 4; ++tag) {
    engine.SubmitWrite(tag, blocks[static_cast<size_t>(tag)].data(), kBlock,
                       static_cast<uint64_t>(tag) * kBlock, [](double) {});
  }
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  engine.Drain();
  const IoEngineStats stats = engine.ConsumeStats();
  EXPECT_EQ(stats.coalesced_writes, 3u);   // three rode along with the first
  EXPECT_EQ(stats.write_requests, 4u);
  const DiskStats ds = disk_->stats();
  EXPECT_EQ(ds.write_ops, 1u);             // one merged transfer, one device op
  EXPECT_EQ(ds.bytes_written, 4 * kBlock);
  // The merged write landed every request's bytes at its own offset.
  for (int32_t tag = 0; tag < 4; ++tag) {
    std::vector<float> readback(kBlock / sizeof(float));
    disk_->Read(readback.data(), kBlock, static_cast<uint64_t>(tag) * kBlock);
    EXPECT_EQ(readback, blocks[static_cast<size_t>(tag)]);
  }
}

TEST_F(IoEngineTest, SplitTransferSeamRoundTrips) {
  // max_transfer_bytes forces every transfer through the partial-progress path
  // (odd slice size, offsets advancing mid-request).
  const std::vector<float> original = Pattern(7.0f);
  disk_->Write(original.data(), kBlock, 5 * kBlock);
  IoEngineOptions opt;
  opt.queue_depth = 2;
  opt.max_transfer_bytes = 1000;  // not a divisor of kBlock, not aligned
  IoEngine engine(disk_.get(), opt);
  disk_->ResetStats();
  std::vector<float> readback(original.size(), 0.0f);
  engine.ReadSync(5, readback.data(), kBlock, 5 * kBlock);
  EXPECT_EQ(readback, original);
  EXPECT_GE(disk_->stats().read_ops, 5u);  // ceil(4096/1000) slices
}

TEST_F(IoEngineTest, QueueDepthStatsTrackOutstandingRequests) {
  IoEngineOptions opt;
  opt.queue_depth = 2;
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  opt.before_io = [&](const IoRequest&) {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  IoEngine engine(disk_.get(), opt);
  std::vector<std::vector<float>> dst(6, std::vector<float>(kBlock / sizeof(float)));
  for (int32_t tag = 0; tag < 6; ++tag) {
    engine.SubmitRead(tag, dst[static_cast<size_t>(tag)].data(), kBlock,
                      static_cast<uint64_t>(tag) * kBlock, [](double) {});
  }
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  engine.Drain();
  const IoEngineStats stats = engine.ConsumeStats();
  EXPECT_EQ(stats.read_requests, 6u);
  EXPECT_EQ(stats.read_bytes, 6 * kBlock);
  EXPECT_EQ(stats.inflight_peak, 6);       // all six were outstanding at once
  EXPECT_GT(stats.queue_depth_mean, 1.0);  // busy interval held multiple requests
  // Counters reset on consume.
  EXPECT_EQ(engine.ConsumeStats().read_requests, 0u);
}

TEST_F(IoEngineTest, ShortReadThroughEngineAborts) {
  // A read past end-of-file comes back short; the transfer loop must abort with
  // the short-read diagnostic, not spin or return garbage. The engine (and its
  // worker threads) live entirely inside the death-test child.
  const std::string path = path_;  // capture for the child
  EXPECT_DEATH(
      {
        SimulatedDisk disk(path + ".short");
        disk.Resize(kBlock);
        IoEngineOptions opt;
        opt.queue_depth = 2;
        IoEngine engine(&disk, opt);
        std::vector<float> dst(2 * kBlock / sizeof(float));
        engine.ReadSync(0, dst.data(), 2 * kBlock, 0);  // file is only kBlock long
      },
      "short read");
}

TEST(ProbeDirectIo, MissingDirectoryIsRejected) {
  EXPECT_FALSE(ProbeDirectIo("/nonexistent_mgnn_probe_dir"));
}

TEST(ProbeDirectIo, ProbeLeavesNoFilesBehind) {
  // Whether or not the filesystem supports O_DIRECT, the probe must clean up
  // after itself and agree with the disk's view when a buffer requests direct IO.
  const std::string dir = TempPath("probe_dir_marker");
  // TempPath returns a file path; use its parent (the temp dir) for probing.
  const std::string parent = dir.substr(0, dir.rfind('/'));
  const bool supported = ProbeDirectIo(parent);
  // Probe again: result is stable, and no leftover probe file breaks reruns.
  EXPECT_EQ(ProbeDirectIo(parent), supported);
}

// Concurrent submit/complete stress across queue depths (the CI TSan job runs
// this at depths 1, 4, and 16). Each submitter thread owns disjoint tags and
// issues interleaved write->read sequences; per-tag program order requires each
// read to observe exactly the value of its preceding write.
class IoEngineDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(IoEngineDepthTest, ConcurrentSubmitStressPreservesPerTagOrder) {
  constexpr int kThreads = 4;
  constexpr int kTagsPerThread = 2;
  constexpr int kIters = 12;
  constexpr size_t kBlock = kIoAlignment;
  const std::string path = TempPath("io_engine_stress");
  SimulatedDisk disk(path);
  disk.Resize(kThreads * kTagsPerThread * kBlock);
  IoEngineOptions opt;
  opt.queue_depth = GetParam();
  opt.before_io = [](const IoRequest& req) {
    // Deterministic per-request jitter so completions shuffle across tags.
    std::this_thread::sleep_for(
        std::chrono::microseconds((req.offset / 64 + req.bytes) % 300));
  };
  IoEngine engine(&disk, opt);

  const size_t floats = kBlock / sizeof(float);
  // [thread][tag][iter] pinned storage: requests reference it while in flight.
  std::vector<std::vector<float>> writes(
      static_cast<size_t>(kThreads * kTagsPerThread * kIters));
  std::vector<std::vector<float>> reads(writes.size());
  const auto slot = [&](int t, int g, int i) {
    return static_cast<size_t>((t * kTagsPerThread + g) * kIters + i);
  };
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        for (int g = 0; g < kTagsPerThread; ++g) {
          const int32_t tag = t * kTagsPerThread + g;
          const uint64_t offset = static_cast<uint64_t>(tag) * kBlock;
          const float value = static_cast<float>(tag * 1000 + i);
          writes[slot(t, g, i)].assign(floats, value);
          reads[slot(t, g, i)].assign(floats, -1.0f);
          engine.SubmitWrite(tag, writes[slot(t, g, i)].data(), kBlock, offset,
                             [](double) {});
          engine.SubmitRead(tag, reads[slot(t, g, i)].data(), kBlock, offset,
                            [](double) {});
        }
      }
    });
  }
  for (std::thread& t : submitters) {
    t.join();
  }
  engine.Drain();
  for (int t = 0; t < kThreads; ++t) {
    for (int g = 0; g < kTagsPerThread; ++g) {
      for (int i = 0; i < kIters; ++i) {
        const float expected = static_cast<float>((t * kTagsPerThread + g) * 1000 + i);
        EXPECT_FLOAT_EQ(reads[slot(t, g, i)].front(), expected);
        EXPECT_FLOAT_EQ(reads[slot(t, g, i)].back(), expected);
      }
    }
  }
  const IoEngineStats stats = engine.ConsumeStats();
  EXPECT_EQ(stats.read_requests,
            static_cast<uint64_t>(kThreads * kTagsPerThread * kIters));
  ::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(QueueDepths, IoEngineDepthTest, ::testing::Values(1, 4, 16));

TEST_F(AsyncPartitionBufferTest, ConsumeIoStatsReportsEngineTraffic) {
  buffer_->SetResident({0, 1, 2});
  buffer_->Prefetch({3, 4});
  buffer_->SetResident({3, 4});
  buffer_->FlushAll();
  const IoEngineStats stats = buffer_->ConsumeIoStats();
  EXPECT_GT(stats.read_requests, 0u);
  EXPECT_GT(stats.read_bytes, 0u);
  EXPECT_GE(stats.inflight_peak, 1);
  // Counters are consumed: a second call starts from zero.
  EXPECT_EQ(buffer_->ConsumeIoStats().read_requests, 0u);
}

TEST_F(AsyncPartitionBufferTest, OutOfOrderStagingInstallsCorrectData) {
  // Delay each staged read by a per-partition amount so completions land in
  // reverse submission order; SetResident must still install every partition's
  // own bytes (installation is keyed by tag, not by completion order).
  const std::string path = TempPath("pb_ooo_test");
  PartitionIoOptions io = AsyncIo(4);
  io.before_io = [](const IoRequest& req) {
    if (req.kind == IoRequest::Kind::kRead) {
      std::this_thread::sleep_for(std::chrono::milliseconds((5 - req.tag % 6) * 8));
    }
  };
  PartitionBuffer buffer(partitioning_.get(), 4, 3, path, DiskModel(),
                         /*learnable=*/true, &init_, io);
  buffer.SetResident({6, 7});
  buffer.Prefetch({0, 1, 2});  // tag 0 slowest, tag 2 fastest
  buffer.SetResident({0, 1, 2});
  for (int32_t part : {0, 1, 2}) {
    for (int64_t v : partitioning_->NodesIn(part)) {
      const float* row = buffer.ValueRow(v);
      for (int64_t d = 0; d < 4; ++d) {
        ASSERT_FLOAT_EQ(row[d], init_(v, d));
      }
    }
  }
  ::remove(path.c_str());
}

TEST_F(AsyncPartitionBufferTest, QueueDepthOneMatchesDeeperEngineData) {
  // The engine at depth 1 is the legacy-equivalent serial path; a depth-16
  // twin driven through the same schedule must produce identical tables.
  const std::string p1 = TempPath("pb_qd1");
  const std::string p16 = TempPath("pb_qd16");
  PartitionBuffer b1(partitioning_.get(), 4, 3, p1, DiskModel(),
                     /*learnable=*/true, &init_, AsyncIo(1));
  PartitionBuffer b16(partitioning_.get(), 4, 3, p16, DiskModel(),
                      /*learnable=*/true, &init_, AsyncIo(16));
  const std::vector<std::vector<int32_t>> schedule = {
      {0, 1, 2}, {2, 3, 4}, {5, 6, 7}, {0, 3, 6}};
  for (PartitionBuffer* b : {&b1, &b16}) {
    for (const auto& set : schedule) {
      b->SetResident(set);
      for (int32_t part : set) {
        const int64_t node = partitioning_->NodesIn(part).front();
        b->ValueRow(node)[0] += 2.0f;
        b->MarkDirty(node);
      }
      b->Prefetch({(set.back() + 1) % 8});
    }
  }
  Tensor t1 = b1.ExportAll();
  Tensor t16 = b16.ExportAll();
  ASSERT_EQ(t1.rows(), t16.rows());
  for (int64_t i = 0; i < t1.size(); ++i) {
    ASSERT_EQ(t1.data()[i], t16.data()[i]);
  }
  ::remove(p1.c_str());
  ::remove(p16.c_str());
}

}  // namespace
}  // namespace mariusgnn
