// Tests for src/util/rv_monitor.h: the determinism hash, the RV runtime
// (counters, sinks, enable flag), one negative test per monitor injecting its
// violation, the abort-sink death path, and integration checks that the real
// pipeline/IO components run violation-free.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "src/pipeline/queue.h"
#include "src/pipeline/training_pipeline.h"
#include "src/storage/disk.h"
#include "src/storage/io_engine.h"
#include "src/util/binary_io.h"
#include "src/util/rv_monitor.h"

namespace mariusgnn {
namespace {

// Counts violations per invariant without logging or aborting; every test
// installs one so real violations from other tests cannot leak across and the
// injected ones are observable.
class CountingRvSink : public RvSink {
 public:
  void OnViolation(const RvViolation& violation) override {
    ++counts_[static_cast<int>(violation.invariant)];
    last_detail_ = violation.detail;
  }
  int count(RvInvariant inv) const { return counts_[static_cast<int>(inv)]; }
  int total() const {
    int t = 0;
    for (int c : counts_) {
      t += c;
    }
    return t;
  }
  const std::string& last_detail() const { return last_detail_; }

 private:
  int counts_[static_cast<int>(RvInvariant::kCount)] = {};
  std::string last_detail_;
};

// Installs a counting sink and zeroes the global counters for the test's scope.
class RvTestScope {
 public:
  RvTestScope() : guard_(&sink_) { RvRuntime::Global().ResetViolations(); }
  ~RvTestScope() { RvRuntime::Global().ResetViolations(); }
  CountingRvSink& sink() { return sink_; }

 private:
  CountingRvSink sink_;
  ScopedRvSink guard_;
};

// --- DeterminismHash ----------------------------------------------------------

TEST(DeterminismHash, EmptyIsOffsetBasis) {
  DeterminismHash h;
  EXPECT_EQ(h.value(), kFnv64OffsetBasis);
  h.Reset();
  EXPECT_EQ(h.value(), kFnv64OffsetBasis);
}

TEST(DeterminismHash, MatchesKnownFnv1aVectors) {
  // Reference values of the standard 64-bit FNV-1a test vectors.
  DeterminismHash h;
  h.Fold("a", 1);
  EXPECT_EQ(h.value(), 0xaf63dc4c8601ec8cULL);
  h.Reset();
  h.Fold("foobar", 6);
  EXPECT_EQ(h.value(), 0x85944171f73967e8ULL);
}

TEST(DeterminismHash, ChunkingDoesNotMatter) {
  const char data[] = "determinism";
  DeterminismHash whole;
  whole.Fold(data, sizeof(data) - 1);
  DeterminismHash bytes;
  for (size_t i = 0; i + 1 < sizeof(data); ++i) {
    bytes.Fold(&data[i], 1);
  }
  EXPECT_EQ(whole.value(), bytes.value());
}

TEST(DeterminismHash, OrderSensitive) {
  DeterminismHash ab;
  ab.FoldFloat(1.0f);
  ab.FoldFloat(2.0f);
  DeterminismHash ba;
  ba.FoldFloat(2.0f);
  ba.FoldFloat(1.0f);
  EXPECT_NE(ab.value(), ba.value());
}

TEST(DeterminismHash, FoldFloatUsesBitPattern) {
  DeterminismHash pos;
  pos.FoldFloat(0.0f);
  DeterminismHash neg;
  neg.FoldFloat(-0.0f);
  EXPECT_NE(pos.value(), neg.value());  // 0.0f == -0.0f but different bits

  DeterminismHash a;
  a.FoldFloat(1.5f);
  DeterminismHash b;
  const float v = 1.5f;
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  b.Fold(&bits, sizeof(bits));
  EXPECT_EQ(a.value(), b.value());
}

TEST(DeterminismHash, FoldU64MatchesFoldBytes) {
  const uint64_t v = 0x0123456789abcdefULL;
  DeterminismHash a;
  a.FoldU64(v);
  DeterminismHash b;
  b.Fold(&v, sizeof(v));
  EXPECT_EQ(a.value(), b.value());
}

// --- RvRuntime ----------------------------------------------------------------

TEST(RvRuntime, CountsPerInvariantAndTotal) {
  RvTestScope scope;
  RvRuntime& rt = RvRuntime::Global();
  rt.Report(RvInvariant::kTicketOrder, "injected");
  rt.Report(RvInvariant::kTicketOrder, "injected");
  rt.Report(RvInvariant::kIoTagOrder, "injected");
  EXPECT_EQ(rt.violations(RvInvariant::kTicketOrder), 2u);
  EXPECT_EQ(rt.violations(RvInvariant::kIoTagOrder), 1u);
  EXPECT_EQ(rt.violations(RvInvariant::kServeEpochPin), 0u);
  EXPECT_EQ(rt.TotalViolations(), 3u);
  EXPECT_EQ(scope.sink().total(), 3);
  rt.ResetViolations();
  EXPECT_EQ(rt.TotalViolations(), 0u);
  EXPECT_EQ(rt.violations(RvInvariant::kTicketOrder), 0u);
}

TEST(RvRuntime, DisabledMonitorsObserveNothing) {
  RvTestScope scope;
  RvRuntime::Global().set_enabled(false);
  RvSequenceMonitor seq(RvInvariant::kTicketOrder);
  seq.Observe(5);
  seq.Observe(3);  // would violate when enabled
  RvRuntime::Global().set_enabled(true);
  EXPECT_EQ(scope.sink().total(), 0);
}

TEST(RvRuntime, SetSinkReturnsPrevious) {
  CountingRvSink a;
  CountingRvSink b;
  RvRuntime& rt = RvRuntime::Global();
  RvSink* orig = rt.set_sink(&a);
  EXPECT_EQ(rt.set_sink(&b), &a);
  EXPECT_EQ(rt.set_sink(orig), &b);
}

TEST(RvRuntime, InvariantNamesAreStable) {
  EXPECT_STREQ(RvInvariantName(RvInvariant::kTicketOrder), "pipeline.ticket_order");
  EXPECT_STREQ(RvInvariantName(RvInvariant::kQueueOccupancy),
               "pipeline.queue_occupancy");
  EXPECT_STREQ(RvInvariantName(RvInvariant::kResizeQuiesce),
               "pipeline.resize_quiesce");
  EXPECT_STREQ(RvInvariantName(RvInvariant::kIoTagOrder), "io_engine.tag_order");
  EXPECT_STREQ(RvInvariantName(RvInvariant::kServeEpochPin), "serve.epoch_pin");
}

// --- Negative tests: each monitor trips on its injected violation -------------

TEST(RvSequenceMonitorTest, TripsOnOutOfOrderTicket) {
  RvTestScope scope;
  RvSequenceMonitor seq(RvInvariant::kTicketOrder);
  seq.Observe(0);
  seq.Observe(1);
  seq.Observe(2);
  EXPECT_EQ(scope.sink().count(RvInvariant::kTicketOrder), 0);
  seq.Observe(1);  // injected out-of-order delivery
  EXPECT_EQ(scope.sink().count(RvInvariant::kTicketOrder), 1);
  seq.Observe(2);  // repeat of the high-water mark also trips
  EXPECT_EQ(scope.sink().count(RvInvariant::kTicketOrder), 2);
  seq.Observe(3);  // recovery: the high-water mark survived the breach
  EXPECT_EQ(scope.sink().count(RvInvariant::kTicketOrder), 2);
  seq.Reset();
  seq.Observe(0);  // a reset starts a fresh sequence
  EXPECT_EQ(scope.sink().count(RvInvariant::kTicketOrder), 2);
}

TEST(RvWatermarkMonitorTest, TripsOnWatermarkBreach) {
  RvTestScope scope;
  RvWatermarkMonitor wm(RvInvariant::kQueueOccupancy);
  wm.ObserveOccupancy(4, 4);
  wm.ObserveWindow(0, 4, 4);
  EXPECT_EQ(scope.sink().count(RvInvariant::kQueueOccupancy), 0);
  wm.ObserveOccupancy(5, 4);  // injected: occupancy beyond capacity
  EXPECT_EQ(scope.sink().count(RvInvariant::kQueueOccupancy), 1);
  wm.ObserveWindow(3, 2, 4);  // injected: low watermark above high
  EXPECT_EQ(scope.sink().count(RvInvariant::kQueueOccupancy), 2);
  wm.ObserveWindow(0, 5, 4);  // injected: high watermark beyond capacity
  EXPECT_EQ(scope.sink().count(RvInvariant::kQueueOccupancy), 3);
}

TEST(RvQuiesceMonitorTest, TripsOnResizeBeforeQuiesce) {
  RvTestScope scope;
  RvQuiesceMonitor q(RvInvariant::kResizeQuiesce);
  q.ObserveResize(false, 0, 0);  // clean quiesce
  EXPECT_EQ(scope.sink().count(RvInvariant::kResizeQuiesce), 0);
  q.ObserveResize(true, 0, 0);  // injected: resize inside a Consume delivery
  EXPECT_EQ(scope.sink().count(RvInvariant::kResizeQuiesce), 1);
  q.ObserveResize(false, 2, 0);  // injected: workers still running
  EXPECT_EQ(scope.sink().count(RvInvariant::kResizeQuiesce), 2);
  q.ObserveResize(false, 0, 3);  // injected: queue not drained
  EXPECT_EQ(scope.sink().count(RvInvariant::kResizeQuiesce), 3);
}

TEST(RvTagOrderMonitorTest, TripsOnSameTagReorder) {
  RvTestScope scope;
  RvTagOrderMonitor tag(RvInvariant::kIoTagOrder);
  tag.ObserveStart(1, 0);
  tag.ObserveStart(1, 2);
  tag.ObserveStart(2, 1);  // different tags may reorder freely
  tag.ObserveStart(2, 5);
  EXPECT_EQ(scope.sink().count(RvInvariant::kIoTagOrder), 0);
  tag.ObserveStart(1, 1);  // injected: same-tag request started out of order
  EXPECT_EQ(scope.sink().count(RvInvariant::kIoTagOrder), 1);
  tag.ObserveStart(2, 5);  // injected: same seq starting twice
  EXPECT_EQ(scope.sink().count(RvInvariant::kIoTagOrder), 2);
  tag.Reset();
  tag.ObserveStart(1, 0);  // fresh engine, fresh sequences
  EXPECT_EQ(scope.sink().count(RvInvariant::kIoTagOrder), 2);
}

TEST(RvEpochPinMonitorTest, TripsOnMixedEpochAnswer) {
  RvTestScope scope;
  RvEpochPinMonitor pin(RvInvariant::kServeEpochPin);
  pin.ObserveAnswer(3, 3);
  EXPECT_EQ(scope.sink().count(RvInvariant::kServeEpochPin), 0);
  pin.ObserveAnswer(3, 4);  // injected: answer from a different epoch
  EXPECT_EQ(scope.sink().count(RvInvariant::kServeEpochPin), 1);
  EXPECT_NE(scope.sink().last_detail().find("pinned to epoch 3"), std::string::npos);
}

// --- AbortRvSink death path ---------------------------------------------------

TEST(AbortRvSinkDeathTest, AbortsOnViolation) {
  EXPECT_DEATH(
      {
        AbortRvSink abort_sink;
        ScopedRvSink guard(&abort_sink);
        RvSequenceMonitor seq(RvInvariant::kTicketOrder);
        seq.Observe(1);
        seq.Observe(0);
      },
      "RV violation \\[pipeline.ticket_order\\]");
}

// --- Integration: real components run violation-free --------------------------

TEST(RvIntegration, BoundedQueueRunsViolationFree) {
  RvTestScope scope;
  BoundedQueue<int> queue(3);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(queue.Push(i));
    }
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(queue.Pop().has_value());
    }
    (void)queue.WindowStats();
  }
  EXPECT_EQ(scope.sink().total(), 0);
}

TEST(RvIntegration, PipelineSessionWithResizesRunsViolationFree) {
  RvTestScope scope;
  PipelineSessionOptions options;
  options.workers = 2;
  options.queue_capacity = 2;
  std::vector<int64_t> consumed;
  PipelineSession session(
      options,
      [](int64_t i) -> std::shared_ptr<void> { return std::make_shared<int64_t>(i); },
      [&consumed](void* item, int64_t i) {
        EXPECT_EQ(*static_cast<int64_t*>(item), i);
        consumed.push_back(i);
      });
  session.RunSegment(8);
  session.Resize(4);
  session.RunSegment(8);
  session.Resize(1);
  session.RunSegment(8);
  ASSERT_EQ(consumed.size(), 24u);
  for (size_t i = 0; i < consumed.size(); ++i) {
    EXPECT_EQ(consumed[i], static_cast<int64_t>(i));
  }
  EXPECT_EQ(scope.sink().total(), 0);
}

TEST(RvIntegration, MidConsumeResizeTripsQuiesceMonitor) {
  RvTestScope scope;
  PipelineSessionOptions options;
  options.workers = 2;
  options.queue_capacity = 2;
  std::unique_ptr<PipelineSession> session;
  bool injected = false;
  session = std::make_unique<PipelineSession>(
      options,
      [](int64_t i) -> std::shared_ptr<void> { return std::make_shared<int64_t>(i); },
      [&](void*, int64_t i) {
        if (i == 2 && !injected) {
          injected = true;
          session->Resize(3);  // injected: resize from inside a delivery
        }
      });
  session->RunSegment(6);
  EXPECT_TRUE(injected);
  EXPECT_GE(scope.sink().count(RvInvariant::kResizeQuiesce), 1);
  // The stream itself must still have been delivered in order.
  EXPECT_EQ(scope.sink().count(RvInvariant::kTicketOrder), 0);
}

TEST(RvIntegration, IoEngineRunsViolationFree) {
  RvTestScope scope;
  SimulatedDisk disk(TempPath("rv_io_engine"));
  disk.Resize(1 << 16);
  {
    IoEngineOptions options;
    options.queue_depth = 4;
    IoEngine engine(&disk, options);
    std::vector<char> wbuf(512, 'x');
    std::vector<char> rbuf(512);
    for (int tag = 0; tag < 4; ++tag) {
      for (int round = 0; round < 4; ++round) {
        const uint64_t offset = static_cast<uint64_t>(tag) * 4096;
        engine.SubmitWrite(tag, wbuf.data(), wbuf.size(), offset, {});
        engine.SubmitRead(tag, rbuf.data(), rbuf.size(), offset, {});
      }
    }
    engine.Drain();
  }
  EXPECT_EQ(scope.sink().count(RvInvariant::kIoTagOrder), 0);
}

}  // namespace
}  // namespace mariusgnn
