// Gradient-exchange seam tests (src/comm/, docs/DISTRIBUTED.md):
//  - ReplicaBatchPartition: the one batch-index -> rank/seed derivation.
//  - LocalExchange: the world=1 identity reproduces the pre-seam golden
//    trajectories bit-exactly (LP + NC, memory + disk).
//  - OrderedFold: deterministic across arrival-order permutations; the
//    comm.fold_order monitor catches out-of-order folds.
//  - ProcessGroupExchange: 2- and 4-process fork harnesses assert every
//    replica ends every epoch with the identical determinism hash, and a
//    dropped connection aborts the survivor before any partial apply.
//  - PartitionBuffer ownership: dirty evictions of unowned partitions skip
//    their write-back (the shared-storage multi-replica contract).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/comm/gradient_exchange.h"
#include "src/comm/process_group_exchange.h"
#include "src/core/link_prediction_trainer.h"
#include "src/core/node_classification_trainer.h"
#include "src/data/datasets.h"
#include "src/graph/partition.h"
#include "src/storage/partition_buffer.h"
#include "src/util/binary_io.h"
#include "src/util/rv_monitor.h"

namespace mariusgnn {
namespace {

TEST(ReplicaBatchPartition, WorldOneIsTheIdentity) {
  ReplicaBatchPartition p;  // rank 0, world 1
  for (int64_t l : {0, 1, 7, 100}) {
    EXPECT_EQ(p.GlobalIndex(l), l);
  }
  EXPECT_EQ(p.LocalCount(13), 13);
  EXPECT_EQ(p.StepCount(13), 13);
  EXPECT_EQ(ReplicaBatchPartition::BatchSeed(42, 7), MixSeed(42, 7));
}

TEST(ReplicaBatchPartition, RanksPartitionTheGlobalStream) {
  for (int32_t world : {2, 3, 4}) {
    for (int64_t batches : {0, 1, 5, 8, 13}) {
      std::vector<int> consumed_by(static_cast<size_t>(batches), -1);
      int64_t total = 0;
      int64_t steps0 = -1;
      for (int32_t r = 0; r < world; ++r) {
        ReplicaBatchPartition p{r, world};
        const int64_t local = p.LocalCount(batches);
        total += local;
        for (int64_t l = 0; l < local; ++l) {
          const int64_t g = p.GlobalIndex(l);
          ASSERT_GE(g, 0);
          ASSERT_LT(g, batches);
          EXPECT_EQ(g % world, r);
          EXPECT_EQ(consumed_by[static_cast<size_t>(g)], -1)
              << "batch consumed twice";
          consumed_by[static_cast<size_t>(g)] = r;
        }
        // Every rank performs the same number of exchange steps; rank 0 is
        // never short (it owns batch 0, world, 2*world, ...).
        EXPECT_EQ(p.StepCount(batches), (batches + world - 1) / world);
        if (r == 0) {
          steps0 = local;
          EXPECT_EQ(p.StepCount(batches), local);
        }
        EXPECT_LE(local, steps0);
      }
      EXPECT_EQ(total, batches);  // exact cover, no batch dropped
    }
  }
}

TEST(LocalExchange, IsAZeroCopyIdentity) {
  LocalExchange exchange;
  std::vector<int64_t> nodes = {3, 5};
  Tensor grads(2, 2, {1.0f, 2.0f, 3.0f, 4.0f});
  GradientStep step;
  step.loss = 1.25f;
  step.sparse_nodes = &nodes;
  step.sparse_grads = &grads;
  const ReducedStep& r = exchange.Exchange(step);
  ASSERT_EQ(r.losses.size(), 1u);
  EXPECT_EQ(r.losses[0], 1.25f);
  EXPECT_EQ(r.contributed[0], 1);
  EXPECT_EQ(r.dense, nullptr);  // "apply p.grad in place"
  EXPECT_EQ(r.sparse_nodes, &nodes);  // aliases the caller, no copy
  EXPECT_EQ(r.sparse_grads, &grads);
  EXPECT_EQ(exchange.ExchangeEpochHash(0xabcdULL), 0xabcdULL);

  GradientStep empty;
  empty.has_batch = false;
  const ReducedStep& e = exchange.Exchange(empty);
  EXPECT_EQ(e.contributed[0], 0);
}

// ---------------------------------------------------------------------------
// The fork-based ProcessGroupExchange tests MUST register (and therefore run)
// before any test that spawns threads in this process: TSan cannot fork a
// multi-threaded parent whose children then start threads of their own, and
// the golden/ownership tests below spin up pipeline and IO-engine threads.
// gtest executes suites in registration order, so file order is the gate.
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Fork-based multi-process harness
// ---------------------------------------------------------------------------

// Binds 127.0.0.1:0 and listens; returns the fd and writes the kernel-chosen
// port. Binding BEFORE forking means the port can never collide with another
// test process, and rank 0 adopts the fd via ReplicaOptions::listen_fd.
int BindLocalhost(int backlog, int* port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  EXPECT_EQ(::listen(fd, backlog), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  *port = static_cast<int>(ntohs(addr.sin_port));
  return fd;
}

ReplicaOptions MakeReplica(int rank, int world, int port, int listen_fd) {
  ReplicaOptions replica;
  replica.rank = rank;
  replica.world_size = world;
  replica.port = port;
  if (rank == 0) {
    replica.listen_fd = listen_fd;
  }
  return replica;
}

// Child body: trains `epochs` epochs as one replica and writes one line per
// epoch — "<determinism_hash> <loss-bits>" — to `out_path`. Exit codes:
// 0 ok, 2 rv violation, 3 no comm traffic, 4 write failure.
int TrainLpReplica(const ReplicaOptions& replica, bool use_disk, int epochs,
                   const std::string& out_path) {
  Graph g = Fb15k237Like(0.03);
  TrainingConfig config;
  config.fanouts = {5};
  config.dims = {16, 16};
  config.batch_size = 512;
  config.num_negatives = 32;
  config.pipeline.enabled = false;
  if (use_disk) {
    config.storage.use_disk = true;
    config.storage.num_physical = 8;
    config.storage.num_logical = 4;
    config.storage.buffer_capacity = 4;
  }
  config.replica = replica;
  LinkPredictionTrainer trainer(&g, config);
  std::ofstream out(out_path);
  for (int e = 0; e < epochs; ++e) {
    const EpochStats s = trainer.TrainEpoch();
    if (s.rv_violations != 0) {
      return 2;
    }
    if (s.comm_bytes == 0 || s.comm_seconds <= 0.0) {
      return 3;
    }
    uint64_t loss_bits = 0;
    static_assert(sizeof(loss_bits) == sizeof(s.loss), "");
    std::memcpy(&loss_bits, &s.loss, sizeof(loss_bits));
    out << s.determinism_hash << " " << loss_bits << "\n";
  }
  out.close();
  return out.good() ? 0 : 4;
}

// Shared-storage-dir variant: every replica trains over the SAME backing
// embedding file, so the ownership map activates (each rank writes back only
// partitions with p % world == rank) and every set transition runs the
// drain-and-rendezvous write-back fence. Also pins rank-0-only
// auto-checkpointing. Extra exit codes: 5 rank 0 did not auto-save,
// 6 a follower auto-saved.
int TrainLpReplicaSharedDisk(const ReplicaOptions& replica,
                             const std::string& dir, int epochs,
                             const std::string& out_path) {
  Graph g = Fb15k237Like(0.03);
  TrainingConfig config;
  config.fanouts = {5};
  config.dims = {16, 16};
  config.batch_size = 512;
  config.num_negatives = 32;
  config.pipeline.enabled = false;
  config.storage.use_disk = true;
  config.storage.num_physical = 8;
  config.storage.num_logical = 4;
  config.storage.buffer_capacity = 4;
  config.storage.dir = dir;
  config.checkpoint.every_n_epochs = 1;
  config.checkpoint.path = dir + "/ckpt";
  config.replica = replica;
  LinkPredictionTrainer trainer(&g, config);
  std::ofstream out(out_path);
  for (int e = 0; e < epochs; ++e) {
    const EpochStats s = trainer.TrainEpoch();
    if (s.rv_violations != 0) {
      return 2;
    }
    if (s.comm_bytes == 0 || s.comm_seconds <= 0.0) {
      return 3;
    }
    uint64_t loss_bits = 0;
    std::memcpy(&loss_bits, &s.loss, sizeof(loss_bits));
    out << s.determinism_hash << " " << loss_bits << "\n";
  }
  // Auto-saves must run on rank 0 only: every rank shares checkpoint.path, so
  // a follower saving would race rank 0 on the file (docs/DISTRIBUTED.md).
  const uint64_t saved = trainer.last_checkpoint_stats().bytes_written;
  if (replica.rank == 0 && saved == 0) {
    return 5;
  }
  if (replica.rank != 0 && saved != 0) {
    return 6;
  }
  out.close();
  return out.good() ? 0 : 4;
}

int TrainNcReplica(const ReplicaOptions& replica, int epochs,
                   const std::string& out_path) {
  Graph g = PapersMini(0.05);
  TrainingConfig config;
  config.fanouts = {10, 5};
  config.dims = {64, 32, 32};
  config.batch_size = 256;
  config.num_negatives = 0;
  config.pipeline.enabled = false;
  config.weight_lr = 0.05f;
  config.replica = replica;
  NodeClassificationTrainer trainer(&g, config);
  std::ofstream out(out_path);
  for (int e = 0; e < epochs; ++e) {
    const EpochStats s = trainer.TrainEpoch();
    if (s.rv_violations != 0) {
      return 2;
    }
    if (s.comm_bytes == 0) {
      return 3;
    }
    uint64_t loss_bits = 0;
    std::memcpy(&loss_bits, &s.loss, sizeof(loss_bits));
    out << s.determinism_hash << " " << loss_bits << "\n";
  }
  out.close();
  return out.good() ? 0 : 4;
}

// Forks `world` replicas running `body(replica, out_path)`, waits for all of
// them, and asserts (a) every child exited 0 and (b) every epoch line —
// determinism hash AND loss bits — is identical across ranks and nonzero.
template <typename Body>
void RunReplicasAndExpectAgreement(int world, int epochs, Body body) {
  int port = 0;
  const int listen_fd = BindLocalhost(world, &port);
  ASSERT_GE(listen_fd, 0);
  std::vector<std::string> paths;
  for (int r = 0; r < world; ++r) {
    paths.push_back(TempPath("comm_replica_out"));
  }
  std::vector<pid_t> pids;
  for (int r = 0; r < world; ++r) {
    const pid_t pid = ::fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      ::_exit(body(MakeReplica(r, world, port, listen_fd), paths[r]));
    }
    pids.push_back(pid);
  }
  ::close(listen_fd);
  for (int r = 0; r < world; ++r) {
    int status = 0;
    ASSERT_EQ(::waitpid(pids[static_cast<size_t>(r)], &status, 0),
              pids[static_cast<size_t>(r)]);
    EXPECT_TRUE(WIFEXITED(status)) << "rank " << r << " died abnormally";
    EXPECT_EQ(WEXITSTATUS(status), 0) << "rank " << r;
  }
  std::vector<std::vector<std::string>> lines(static_cast<size_t>(world));
  for (int r = 0; r < world; ++r) {
    std::ifstream in(paths[static_cast<size_t>(r)]);
    std::string line;
    while (std::getline(in, line)) {
      lines[static_cast<size_t>(r)].push_back(line);
    }
    std::remove(paths[static_cast<size_t>(r)].c_str());
    ASSERT_EQ(lines[static_cast<size_t>(r)].size(),
              static_cast<size_t>(epochs))
        << "rank " << r;
  }
  for (int e = 0; e < epochs; ++e) {
    const std::string& want = lines[0][static_cast<size_t>(e)];
    uint64_t hash = 0;
    std::istringstream(want) >> hash;
    EXPECT_NE(hash, 0u) << "epoch " << e;
    for (int r = 1; r < world; ++r) {
      EXPECT_EQ(lines[static_cast<size_t>(r)][static_cast<size_t>(e)], want)
          << "rank " << r << " diverged at epoch " << e;
    }
  }
}

TEST(ProcessGroupExchange, TwoReplicasAgreeOnEveryEpochHash) {
  RunReplicasAndExpectAgreement(
      2, 2, [](const ReplicaOptions& replica, const std::string& out) {
        return TrainLpReplica(replica, /*use_disk=*/false, 2, out);
      });
}

TEST(ProcessGroupExchange, TwoReplicasAgreeOnDisk) {
  // storage.dir stays empty: each replica keeps a PRIVATE temp embedding file
  // and therefore owns (writes back) every partition — the ownership map only
  // activates over an explicitly shared storage dir.
  RunReplicasAndExpectAgreement(
      2, 2, [](const ReplicaOptions& replica, const std::string& out) {
        return TrainLpReplica(replica, /*use_disk=*/true, 2, out);
      });
}

TEST(ProcessGroupExchange, TwoReplicasAgreeOnASharedStorageDir) {
  // Over an explicitly shared storage dir the ownership map activates: each
  // rank writes back only its own partitions, so replicas genuinely depend on
  // each other's async write-backs being durable before re-reading — the race
  // the per-set drain+rendezvous fence closes. Epoch-hash agreement here means
  // no rank ever read a stale or torn partition image from the shared file.
  const std::string dir = TempPath("comm_shared_dir");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  RunReplicasAndExpectAgreement(
      2, 2, [&dir](const ReplicaOptions& replica, const std::string& out) {
        return TrainLpReplicaSharedDisk(replica, dir, 2, out);
      });
  // Rank 0's auto-save landed in the shared dir (the children already asserted
  // which rank saved).
  struct stat st {};
  EXPECT_EQ(::stat((dir + "/ckpt").c_str(), &st), 0);
  std::remove((dir + "/ckpt").c_str());
  std::remove((dir + "/embeddings.bin").c_str());
  ::rmdir(dir.c_str());
}

TEST(ProcessGroupExchange, FourReplicasAgreeOnEveryEpochHash) {
  RunReplicasAndExpectAgreement(
      4, 2, [](const ReplicaOptions& replica, const std::string& out) {
        return TrainNcReplica(replica, 2, out);
      });
}

TEST(ProcessGroupExchange, DroppedConnectionAbortsBeforeAnyApply) {
  int port = 0;
  const int listen_fd = BindLocalhost(2, &port);
  ASSERT_GE(listen_fd, 0);

  // Rank 1 connects, then dies without ever contributing a step.
  const pid_t quitter = ::fork();
  ASSERT_NE(quitter, -1);
  if (quitter == 0) {
    { ProcessGroupExchange exchange(MakeReplica(1, 2, port, listen_fd)); }
    ::_exit(0);
  }

  // Rank 0 must abort (fail loudly) when the peer's stream ends mid-step —
  // reaching the post-Exchange line would mean a partial reduction survived.
  const pid_t survivor = ::fork();
  ASSERT_NE(survivor, -1);
  if (survivor == 0) {
    ProcessGroupExchange exchange(MakeReplica(0, 2, port, listen_fd));
    GradientStep step;
    step.has_batch = false;
    exchange.Exchange(step);
    ::_exit(0);  // NOT reached on the correct code path
  }
  ::close(listen_fd);

  int status = 0;
  ASSERT_EQ(::waitpid(quitter, &status, 0), quitter);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  ASSERT_EQ(::waitpid(survivor, &status, 0), survivor);
  EXPECT_TRUE(WIFSIGNALED(status))
      << "rank 0 applied a step after its peer died";
  if (WIFSIGNALED(status)) {
    EXPECT_EQ(WTERMSIG(status), SIGABRT);
  }
}

// ---------------------------------------------------------------------------
// Wire-codec hardening: the parsers must round-trip real payloads and must
// abort — "truncated message", before any allocation — on truncated frames and
// on corrupt on-wire element counts. (Death tests fork; they stay in this
// pre-thread region of the file like the fork tests above.)
// ---------------------------------------------------------------------------

TEST(WireCodec, ContributionRoundTrips) {
  Parameter p1(Tensor::Full(2, 3, 1.5f));
  p1.grad = Tensor::Full(2, 3, 0.25f);
  Parameter p2(Tensor::Full(1, 4, -2.0f));
  p2.grad = Tensor::Full(1, 4, -0.5f);
  std::vector<Parameter*> dense = {&p1, &p2};
  std::vector<int64_t> nodes = {7, 3, 11};
  Tensor grads = Tensor::Full(3, 2, 0.125f);

  GradientStep step;
  step.has_batch = true;
  step.loss = 0.75f;
  step.dense = &dense;
  step.sparse_nodes = &nodes;
  step.sparse_grads = &grads;

  const StepContribution got =
      ParseContribution(SerializeContribution(step), /*rank=*/1);
  EXPECT_EQ(got.rank, 1);
  EXPECT_TRUE(got.has_batch);
  EXPECT_EQ(got.loss, 0.75f);
  ASSERT_EQ(got.dense.size(), 2u);
  EXPECT_EQ(got.dense[0], std::vector<float>(6, 0.25f));
  EXPECT_EQ(got.dense[1], std::vector<float>(4, -0.5f));
  EXPECT_EQ(got.sparse_nodes, nodes);
  EXPECT_EQ(got.sparse_dim, 2);
  EXPECT_EQ(got.sparse_grads, std::vector<float>(6, 0.125f));
}

TEST(WireCodec, FoldedStepRoundTrips) {
  FoldedStep folded;
  folded.losses = {0.5f, 1.5f};
  folded.contributed = {1, 0};
  folded.dense = {{1.0f, 2.0f}, {3.0f}};
  folded.sparse_nodes = {4, 9};
  folded.sparse_dim = 3;
  folded.sparse_grads.assign(6, 2.5f);

  const FoldedStep got = ParseFolded(SerializeFolded(folded), /*world=*/2);
  EXPECT_EQ(got.losses, folded.losses);
  EXPECT_EQ(got.contributed, folded.contributed);
  EXPECT_EQ(got.dense, folded.dense);
  EXPECT_EQ(got.sparse_nodes, folded.sparse_nodes);
  EXPECT_EQ(got.sparse_dim, folded.sparse_dim);
  EXPECT_EQ(got.sparse_grads, folded.sparse_grads);
}

TEST(WireCodec, TruncatedPayloadAbortsLoudly) {
  GradientStep step;
  step.has_batch = false;
  step.loss = 0.0f;
  std::vector<uint8_t> payload = SerializeContribution(step);
  payload.pop_back();
  EXPECT_DEATH(ParseContribution(payload, 0), "truncated message");
}

TEST(WireCodec, HugeDenseCountAbortsBeforeAllocating) {
  // A desynced/corrupt frame claiming 2^32-1 dense gradients must die as a
  // truncated message — the count exceeds what the payload could back — not
  // attempt a giant allocation.
  std::vector<uint8_t> payload;
  const uint8_t has_batch = 1;
  const float loss = 0.0f;
  const uint32_t num_dense = 0xFFFFFFFFu;
  payload.insert(payload.end(), reinterpret_cast<const uint8_t*>(&has_batch),
                 reinterpret_cast<const uint8_t*>(&has_batch) + 1);
  payload.insert(payload.end(), reinterpret_cast<const uint8_t*>(&loss),
                 reinterpret_cast<const uint8_t*>(&loss) + sizeof(loss));
  payload.insert(payload.end(), reinterpret_cast<const uint8_t*>(&num_dense),
                 reinterpret_cast<const uint8_t*>(&num_dense) + sizeof(num_dense));
  EXPECT_DEATH(ParseContribution(payload, 0), "truncated message");
}

TEST(WireCodec, HugeSparseRowCountAbortsBeforeAllocating) {
  std::vector<uint8_t> payload;
  const uint8_t has_batch = 1;
  const float loss = 0.0f;
  const uint32_t num_dense = 0;
  const uint64_t rows = 0x7FFFFFFFFFFFFFFFull;
  const int64_t dim = 16;
  const auto append = [&payload](const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    payload.insert(payload.end(), b, b + n);
  };
  append(&has_batch, sizeof(has_batch));
  append(&loss, sizeof(loss));
  append(&num_dense, sizeof(num_dense));
  append(&rows, sizeof(rows));
  append(&dim, sizeof(dim));
  EXPECT_DEATH(ParseContribution(payload, 0), "truncated message");
}

// ---------------------------------------------------------------------------
// Golden identity: a world=1 run routed through the seam must reproduce the
// exact constants trainer_test.cc pins for the pre-seam code path.
// ---------------------------------------------------------------------------

TrainingConfig GoldenLpConfig(bool use_disk) {
  TrainingConfig config;
  config.fanouts = {5};
  config.dims = {16, 16};
  config.batch_size = 512;
  config.num_negatives = 32;
  config.pipeline.enabled = true;
  config.pipeline.workers = 2;
  if (use_disk) {
    config.storage.use_disk = true;
    config.storage.num_physical = 8;
    config.storage.num_logical = 4;
    config.storage.buffer_capacity = 4;
  }
  // Through the seam explicitly: world_size 1 selects LocalExchange.
  config.replica.rank = 0;
  config.replica.world_size = 1;
  return config;
}

TrainingConfig GoldenNcConfig(bool use_disk) {
  TrainingConfig config;
  config.fanouts = {10, 5};
  config.dims = {64, 32, 32};
  config.batch_size = 256;
  config.num_negatives = 0;
  config.pipeline.enabled = true;
  config.pipeline.workers = 2;
  config.weight_lr = 0.05f;
  if (use_disk) {
    config.storage.use_disk = true;
    config.storage.num_physical = 16;
    config.storage.buffer_capacity = 8;
  }
  config.replica.rank = 0;
  config.replica.world_size = 1;
  return config;
}

void ExpectLpGolden(bool use_disk, const std::vector<double>& want_losses,
                    double want_mrr) {
  Graph g = Fb15k237Like(0.03);
  LinkPredictionTrainer trainer(&g, GoldenLpConfig(use_disk));
  for (size_t e = 0; e < want_losses.size(); ++e) {
    const EpochStats s = trainer.TrainEpoch();
    EXPECT_EQ(s.loss, want_losses[e]) << "epoch " << e;
    EXPECT_NE(s.determinism_hash, 0u);
    // LocalExchange moves nothing: no wire bytes, no comm stall.
    EXPECT_EQ(s.comm_bytes, 0u);
    EXPECT_EQ(s.comm_stall_seconds, 0.0);
    EXPECT_EQ(s.num_global_batches, s.num_batches);
  }
  EXPECT_EQ(trainer.EvaluateMrr(50, 100), want_mrr);
}

void ExpectNcGolden(bool use_disk, const std::vector<double>& want_losses,
                    double want_acc) {
  Graph g = PapersMini(0.05);
  NodeClassificationTrainer trainer(&g, GoldenNcConfig(use_disk));
  for (size_t e = 0; e < want_losses.size(); ++e) {
    const EpochStats s = trainer.TrainEpoch();
    EXPECT_EQ(s.loss, want_losses[e]) << "epoch " << e;
    EXPECT_NE(s.determinism_hash, 0u);
    EXPECT_EQ(s.comm_bytes, 0u);
    EXPECT_EQ(s.num_global_batches, s.num_batches);
  }
  EXPECT_EQ(trainer.EvaluateTestAccuracy(), want_acc);
}

TEST(LocalExchangeGolden, LinkPredictionInMemory) {
  ExpectLpGolden(false, {2.9370360056559246, 2.0135522921880087},
                 0.48917109523447394);
}

TEST(LocalExchangeGolden, LinkPredictionDisk) {
  ExpectLpGolden(true, {3.0713760495185851, 2.3424148057636462},
                 0.4393313931734697);
}

TEST(LocalExchangeGolden, NodeClassificationInMemory) {
  ExpectNcGolden(false, {8.0975475311279297, 3.2635064125061035},
                 0.34666666666666668);
}

TEST(LocalExchangeGolden, NodeClassificationDisk) {
  ExpectNcGolden(true, {8.3907327651977539, 3.291311502456665},
                 0.35333333333333333);
}

// ---------------------------------------------------------------------------
// OrderedFold
// ---------------------------------------------------------------------------

StepContribution MakeContribution(int32_t rank, float loss,
                                  std::vector<float> dense,
                                  std::vector<int64_t> nodes,
                                  std::vector<float> grads, int64_t dim) {
  StepContribution c;
  c.rank = rank;
  c.has_batch = true;
  c.loss = loss;
  c.dense.push_back(std::move(dense));
  c.sparse_nodes = std::move(nodes);
  c.sparse_grads = std::move(grads);
  c.sparse_dim = dim;
  return c;
}

TEST(OrderedFold, DeterministicAcrossArrivalPermutations) {
  // Three ranks; rank 2 is batchless. Node 7 is touched by ranks 0 and 1.
  std::vector<StepContribution> base;
  base.push_back(
      MakeContribution(0, 1.0f, {1.0f, 2.0f}, {5, 7}, {10, 11, 20, 21}, 2));
  base.push_back(
      MakeContribution(1, 2.0f, {0.5f, 0.25f}, {7, 9}, {1, 2, 3, 4}, 2));
  StepContribution idle;
  idle.rank = 2;
  idle.has_batch = false;
  idle.loss = 0.0f;
  base.push_back(idle);

  const uint64_t before =
      RvRuntime::Global().violations(RvInvariant::kCommFoldOrder);
  RvFoldOrderMonitor monitor(RvInvariant::kCommFoldOrder);
  const FoldedStep want = OrderedFold(base, 3, &monitor);

  // The reduction is a function of the SET of contributions, not their
  // arrival order — every permutation must produce identical bytes, with no
  // fold-order violation (the fold walks ranks ascending internally).
  const std::vector<std::vector<size_t>> orders = {
      {2, 1, 0}, {1, 0, 2}, {0, 2, 1}, {2, 0, 1}, {1, 2, 0}};
  for (const auto& order : orders) {
    std::vector<StepContribution> permuted;
    for (size_t i : order) {
      permuted.push_back(base[i]);
    }
    const FoldedStep got = OrderedFold(permuted, 3, &monitor);
    EXPECT_EQ(got.losses, want.losses);
    EXPECT_EQ(got.contributed, want.contributed);
    EXPECT_EQ(got.dense, want.dense);
    EXPECT_EQ(got.sparse_nodes, want.sparse_nodes);
    EXPECT_EQ(got.sparse_grads, want.sparse_grads);
    EXPECT_EQ(got.sparse_dim, want.sparse_dim);
  }
  EXPECT_EQ(RvRuntime::Global().violations(RvInvariant::kCommFoldOrder), before);

  // Spot-check the fold itself.
  EXPECT_EQ(want.losses, (std::vector<float>{1.0f, 2.0f, 0.0f}));
  EXPECT_EQ(want.contributed, (std::vector<uint8_t>{1, 1, 0}));
  ASSERT_EQ(want.dense.size(), 1u);
  EXPECT_EQ(want.dense[0], (std::vector<float>{1.5f, 2.25f}));
  // First-touch node order of the ascending fold; node 7's row is the
  // rank-order sum.
  EXPECT_EQ(want.sparse_nodes, (std::vector<int64_t>{5, 7, 9}));
  EXPECT_EQ(want.sparse_grads,
            (std::vector<float>{10, 11, 21, 23, 3, 4}));
}

TEST(RvFoldOrderMonitor, FlagsNonAscendingFold) {
  RvRuntime& rt = RvRuntime::Global();
  const uint64_t before = rt.violations(RvInvariant::kCommFoldOrder);
  RvFoldOrderMonitor monitor(RvInvariant::kCommFoldOrder);
  monitor.BeginReduction();
  monitor.ObserveFold(0);
  monitor.ObserveFold(2);
  EXPECT_EQ(rt.violations(RvInvariant::kCommFoldOrder), before);
  monitor.ObserveFold(1);  // out of order
  EXPECT_EQ(rt.violations(RvInvariant::kCommFoldOrder), before + 1);
  // A new reduction resets the order tracking.
  monitor.BeginReduction();
  monitor.ObserveFold(0);
  EXPECT_EQ(rt.violations(RvInvariant::kCommFoldOrder), before + 1);
}

// ---------------------------------------------------------------------------
// PartitionBuffer ownership
// ---------------------------------------------------------------------------

TEST(PartitionBufferOwnership, SkipsUnownedWriteback) {
  Graph graph = LiveJournalMini(0.01);
  Rng rng(1);
  Partitioning partitioning(graph, 4, PartitionAssignment::kRandom, rng);
  Rng rng2(2);
  Tensor init = Tensor::Uniform(graph.num_nodes(), 4, 1.0f, rng2);
  const std::string path = TempPath("comm_ownership");
  PartitionBuffer buffer(&partitioning, 4, 2, path, DiskModel(),
                         /*learnable=*/true, &init);
  std::vector<uint8_t> owned(4, 0);
  owned[0] = 1;  // this replica owns partition 0 only
  buffer.SetPartitionOwnership(owned);

  buffer.SetResident({0, 1});
  const int64_t node_owned = partitioning.NodesIn(0).front();
  const int64_t node_unowned = partitioning.NodesIn(1).front();
  const float original = init(node_unowned, 0);
  buffer.ValueRow(node_owned)[0] = 123.5f;
  buffer.MarkDirty(node_owned);
  buffer.ValueRow(node_unowned)[0] = 321.5f;
  buffer.MarkDirty(node_unowned);
  buffer.FlushAll();

  // Re-load both partitions from disk: the owned partition's write persisted,
  // the unowned dirty eviction skipped its write-back (on SHARED storage the
  // owning replica's identical write is the one that lands).
  buffer.SetResident({0, 1});
  EXPECT_EQ(buffer.ValueRow(node_owned)[0], 123.5f);
  EXPECT_EQ(buffer.ValueRow(node_unowned)[0], original);
  ::remove(path.c_str());
}

TEST(PartitionBufferOwnership, EmptyMapOwnsEverything) {
  Graph graph = LiveJournalMini(0.01);
  Rng rng(1);
  Partitioning partitioning(graph, 4, PartitionAssignment::kRandom, rng);
  Rng rng2(2);
  Tensor init = Tensor::Uniform(graph.num_nodes(), 4, 1.0f, rng2);
  const std::string path = TempPath("comm_own_default");
  PartitionBuffer buffer(&partitioning, 4, 2, path, DiskModel(),
                         /*learnable=*/true, &init);
  for (int32_t p = 0; p < 4; ++p) {
    EXPECT_TRUE(buffer.OwnsPartition(p));
  }
  buffer.SetResident({2});
  const int64_t node = partitioning.NodesIn(2).front();
  buffer.ValueRow(node)[0] = 77.0f;
  buffer.MarkDirty(node);
  buffer.FlushAll();
  buffer.SetResident({2});
  EXPECT_EQ(buffer.ValueRow(node)[0], 77.0f);
  ::remove(path.c_str());
}


}  // namespace
}  // namespace mariusgnn
