// Tests for the DENSE data structure (Algorithm 1), the per-layer update
// (Algorithm 2), and their invariants, including a hand-checked example mirroring the
// paper's Figure 3.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "src/data/datasets.h"
#include "src/graph/neighbor_index.h"
#include "src/sampler/dense.h"
#include "src/util/threadpool.h"

namespace mariusgnn {
namespace {

// A=0, B=1, C=2, D=3, E=4. Incoming neighborhoods: A:{C,D}, B:{C}, C:{E}, D:{C}.
Graph FigureGraph() {
  std::vector<Edge> edges = {
      {2, 0, 0},  // C->A
      {3, 0, 0},  // D->A
      {2, 1, 0},  // C->B
      {4, 2, 0},  // E->C
      {2, 3, 0},  // C->D
  };
  return Graph(5, std::move(edges));
}

TEST(Dense, Figure3TwoHopExample) {
  Graph g = FigureGraph();
  NeighborIndex index(g);
  DenseSampler sampler(&index, {10, 10}, EdgeDirection::kIncoming, 1);
  DenseBatch b = sampler.Sample({0, 1});  // targets {A, B}

  // Deltas: Δ0 = {E}, Δ1 = {C, D}, Δ2 = {A, B}.
  ASSERT_EQ(b.node_id_offsets, (std::vector<int64_t>{0, 1, 3}));
  ASSERT_EQ(b.node_ids, (std::vector<int64_t>{4, 2, 3, 0, 1}));
  // nbrs: Δ1's one-hop samples first (C:{E}, D:{C}), then Δ2's (A:{C,D}, B:{C}).
  ASSERT_EQ(b.nbrs, (std::vector<int64_t>{4, 2, 2, 3, 2}));
  ASSERT_EQ(b.nbr_offsets, (std::vector<int64_t>{0, 1, 2, 4}));

  b.FinalizeForDevice();
  EXPECT_EQ(b.repr_map, (std::vector<int64_t>{0, 1, 1, 2, 1}));

  EXPECT_EQ(b.num_targets(), 2);
  EXPECT_EQ(b.num_output_nodes(), 4);
  EXPECT_EQ(b.SegmentOffsets(), (std::vector<int64_t>{0, 1, 2, 4, 5}));

  // Algorithm 2 after layer 1: drop Δ0 = {E} and the Δ1 neighbor block.
  b.AdvanceLayer();
  EXPECT_EQ(b.node_ids, (std::vector<int64_t>{2, 3, 0, 1}));
  EXPECT_EQ(b.node_id_offsets, (std::vector<int64_t>{0, 2}));
  EXPECT_EQ(b.nbrs, (std::vector<int64_t>{2, 3, 2}));
  EXPECT_EQ(b.nbr_offsets, (std::vector<int64_t>{0, 2}));
  EXPECT_EQ(b.repr_map, (std::vector<int64_t>{0, 1, 0}));
  EXPECT_EQ(b.num_output_nodes(), 2);
  EXPECT_EQ(b.SegmentOffsets(), (std::vector<int64_t>{0, 2, 3}));
}

TEST(Dense, OneHopReuseAcrossLayers) {
  // The defining DENSE property: a node appearing at multiple hops has its one-hop
  // neighborhood sampled exactly once — one contiguous segment per unique node.
  Graph g = Fb15k237Like(0.05);
  NeighborIndex index(g);
  DenseSampler sampler(&index, {5, 5, 5}, EdgeDirection::kBoth, 3);
  std::vector<int64_t> targets = {0, 1, 2, 3, 4, 5, 6, 7};
  DenseBatch b = sampler.Sample(targets);

  // node_ids are unique.
  std::unordered_set<int64_t> uniq(b.node_ids.begin(), b.node_ids.end());
  EXPECT_EQ(uniq.size(), b.node_ids.size());

  // Exactly one neighbor segment per non-Δ0 node.
  EXPECT_EQ(static_cast<int64_t>(b.nbr_offsets.size()), b.num_output_nodes());

  // Every sampled neighbor id is present in node_ids (closure property).
  for (int64_t n : b.nbrs) {
    EXPECT_TRUE(uniq.count(n) == 1);
  }
}

TEST(Dense, TargetsAreLastDelta) {
  Graph g = Fb15k237Like(0.05);
  NeighborIndex index(g);
  DenseSampler sampler(&index, {3, 3}, EdgeDirection::kOutgoing, 7);
  std::vector<int64_t> targets = {10, 20, 30};
  DenseBatch b = sampler.Sample(targets);
  ASSERT_EQ(b.num_targets(), 3);
  const int64_t begin = b.DeltaBegin(b.num_deltas() - 1);
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_EQ(b.node_ids[static_cast<size_t>(begin) + i], targets[i]);
  }
}

TEST(Dense, FanoutCapRespected) {
  Graph g = Fb15k237Like(0.05);
  NeighborIndex index(g);
  const int64_t fanout = 4;
  DenseSampler sampler(&index, {fanout}, EdgeDirection::kOutgoing, 5);
  std::vector<int64_t> targets;
  for (int64_t v = 0; v < 50; ++v) {
    targets.push_back(v);
  }
  DenseBatch b = sampler.Sample(targets);
  auto seg = b.SegmentOffsets();
  for (size_t s = 0; s + 1 < seg.size(); ++s) {
    EXPECT_LE(seg[s + 1] - seg[s], fanout);
  }
}

TEST(Dense, BothDirectionsDoublesCap) {
  Graph g = Fb15k237Like(0.05);
  NeighborIndex index(g);
  const int64_t fanout = 3;
  DenseSampler sampler(&index, {fanout}, EdgeDirection::kBoth, 5);
  std::vector<int64_t> targets = {0, 1, 2, 3, 4};
  DenseBatch b = sampler.Sample(targets);
  auto seg = b.SegmentOffsets();
  for (size_t s = 0; s + 1 < seg.size(); ++s) {
    EXPECT_LE(seg[s + 1] - seg[s], 2 * fanout);
  }
}

TEST(Dense, DeterministicGivenSeed) {
  Graph g = Fb15k237Like(0.05);
  NeighborIndex index(g);
  DenseSampler s1(&index, {5, 5}, EdgeDirection::kBoth, 42);
  DenseSampler s2(&index, {5, 5}, EdgeDirection::kBoth, 42);
  DenseBatch a = s1.Sample({1, 2, 3});
  DenseBatch b = s2.Sample({1, 2, 3});
  EXPECT_EQ(a.node_ids, b.node_ids);
  EXPECT_EQ(a.nbrs, b.nbrs);
  EXPECT_EQ(a.nbr_offsets, b.nbr_offsets);
}

TEST(Dense, ParallelSamplingMatchesSerial) {
  Graph g = Fb15k237Like(0.05);
  NeighborIndex index(g);
  ThreadPool pool(4);
  DenseSampler serial(&index, {8, 8}, EdgeDirection::kBoth, 42, nullptr);
  DenseSampler parallel(&index, {8, 8}, EdgeDirection::kBoth, 42, &pool);
  std::vector<int64_t> targets;
  for (int64_t v = 0; v < std::min<int64_t>(512, g.num_nodes()); ++v) {
    targets.push_back(v);
  }
  DenseBatch a = serial.Sample(targets);
  DenseBatch b = parallel.Sample(targets);
  EXPECT_EQ(a.node_ids, b.node_ids);
  EXPECT_EQ(a.nbrs, b.nbrs);
}

TEST(Dense, AdvanceLayerPreservesClosure) {
  Graph g = Fb15k237Like(0.05);
  NeighborIndex index(g);
  DenseSampler sampler(&index, {4, 4, 4}, EdgeDirection::kBoth, 11);
  std::vector<int64_t> targets = {0, 5, 9, 13};
  DenseBatch b = sampler.Sample(targets);
  b.FinalizeForDevice();
  for (int layer = 0; layer < 2; ++layer) {
    b.AdvanceLayer();
    // repr_map stays in range and consistent with node_ids.
    ASSERT_EQ(b.repr_map.size(), b.nbrs.size());
    for (size_t i = 0; i < b.nbrs.size(); ++i) {
      ASSERT_GE(b.repr_map[i], 0);
      ASSERT_LT(b.repr_map[i], b.num_nodes());
      EXPECT_EQ(b.node_ids[static_cast<size_t>(b.repr_map[i])], b.nbrs[i]);
    }
    EXPECT_EQ(static_cast<int64_t>(b.nbr_offsets.size()), b.num_output_nodes());
  }
  EXPECT_EQ(b.num_output_nodes(), static_cast<int64_t>(targets.size()));
}

TEST(Dense, EmptyNeighborhoodsHandled) {
  // A graph where some nodes have no neighbors at all.
  std::vector<Edge> edges = {{0, 1, 0}};
  Graph g(4, std::move(edges));
  NeighborIndex index(g);
  DenseSampler sampler(&index, {3, 3}, EdgeDirection::kBoth, 2);
  DenseBatch b = sampler.Sample({2, 3});  // both isolated
  b.FinalizeForDevice();
  EXPECT_EQ(b.num_targets(), 2);
  EXPECT_EQ(b.num_sampled_edges(), 0);
  EXPECT_EQ(b.num_nodes(), 2);
  // Empty deltas still produce valid (empty) groups.
  EXPECT_EQ(b.num_deltas(), 3);
}

TEST(Dense, DecreasingFanoutsGiveAtLeastRequested) {
  // Section 4.1: with decreasing fanouts away from the targets, a reused sample
  // provides at least as many neighbors as requested at deeper hops.
  Graph g = Fb15k237Like(0.1);
  NeighborIndex index(g);
  DenseSampler sampler(&index, {10, 5}, EdgeDirection::kOutgoing, 13);
  std::vector<int64_t> targets = {0, 1, 2, 3};
  DenseBatch b = sampler.Sample(targets);
  b.FinalizeForDevice();

  // Targets' segments were sampled with fanout 10; if a target also appears in the
  // deeper layer, its (single, reused) segment has up to 10 — >= the 5 requested.
  auto seg = b.SegmentOffsets();
  // Verify total sampled edges is bounded by sum of per-delta fanout caps.
  int64_t total_cap = 0;
  for (int64_t g2 = 1; g2 < b.num_deltas(); ++g2) {
    const int64_t delta_size = b.DeltaEnd(g2) - b.DeltaBegin(g2);
    // Delta g2 was sampled at hop (num_deltas-1 - g2) + 1.
    total_cap += delta_size * 10;
  }
  EXPECT_LE(b.num_sampled_edges(), total_cap);
  EXPECT_EQ(seg.back(), b.num_sampled_edges());
}

// Property sweep over layer counts: structural invariants hold at any depth.
class DenseDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(DenseDepthTest, StructuralInvariants) {
  const int depth = GetParam();
  Graph g = Fb15k237Like(0.05);
  NeighborIndex index(g);
  std::vector<int64_t> fanouts(static_cast<size_t>(depth), 4);
  DenseSampler sampler(&index, fanouts, EdgeDirection::kBoth, 100 + depth);
  std::vector<int64_t> targets = {0, 7, 14, 21, 28};
  DenseBatch b = sampler.Sample(targets);

  EXPECT_EQ(b.num_deltas(), depth + 1);
  // Offsets are sorted and in range.
  for (size_t i = 1; i < b.node_id_offsets.size(); ++i) {
    EXPECT_LE(b.node_id_offsets[i - 1], b.node_id_offsets[i]);
  }
  // nbr_offsets monotone.
  for (size_t i = 1; i < b.nbr_offsets.size(); ++i) {
    EXPECT_LE(b.nbr_offsets[i - 1], b.nbr_offsets[i]);
  }
  // Unique node ids.
  std::unordered_set<int64_t> uniq(b.node_ids.begin(), b.node_ids.end());
  EXPECT_EQ(uniq.size(), b.node_ids.size());
  // Finalize + walk all layers.
  b.FinalizeForDevice();
  for (int l = 0; l + 1 < depth; ++l) {
    b.AdvanceLayer();
  }
  EXPECT_EQ(b.num_output_nodes(), static_cast<int64_t>(targets.size()));
}

INSTANTIATE_TEST_SUITE_P(Depths, DenseDepthTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(Dense, SelfLoopNeighborReferencesOwnRow) {
  // A self-loop makes a target its own neighbor; repr_map must point at the target's
  // own node_ids row and AdvanceLayer must keep it consistent.
  std::vector<Edge> edges = {{0, 0, 0}, {1, 0, 0}};
  Graph g(2, std::move(edges));
  NeighborIndex index(g);
  DenseSampler sampler(&index, {4, 4}, EdgeDirection::kIncoming, 3);
  DenseBatch b = sampler.Sample({0});
  b.FinalizeForDevice();
  for (size_t i = 0; i < b.nbrs.size(); ++i) {
    EXPECT_EQ(b.node_ids[static_cast<size_t>(b.repr_map[i])], b.nbrs[i]);
  }
  b.AdvanceLayer();
  for (size_t i = 0; i < b.nbrs.size(); ++i) {
    EXPECT_EQ(b.node_ids[static_cast<size_t>(b.repr_map[i])], b.nbrs[i]);
  }
}

// Fanout sweep: every fanout respects the per-direction cap and determinism.
class DenseFanoutTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(DenseFanoutTest, CapAndDeterminism) {
  const int64_t fanout = GetParam();
  Graph g = Fb15k237Like(0.05);
  NeighborIndex index(g);
  DenseSampler s1(&index, {fanout, fanout}, EdgeDirection::kBoth, 900);
  DenseSampler s2(&index, {fanout, fanout}, EdgeDirection::kBoth, 900);
  std::vector<int64_t> targets = {0, 3, 6, 9};
  DenseBatch a = s1.Sample(targets);
  DenseBatch b = s2.Sample(targets);
  EXPECT_EQ(a.nbrs, b.nbrs);
  auto seg = a.SegmentOffsets();
  for (size_t s = 0; s + 1 < seg.size(); ++s) {
    EXPECT_LE(seg[s + 1] - seg[s], 2 * fanout);
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, DenseFanoutTest, ::testing::Values(1, 2, 3, 8, 32));

TEST(Dense, RelationsParallelToNbrs) {
  Graph g = Fb15k237Like(0.05);
  NeighborIndex index(g);
  DenseSampler sampler(&index, {6, 6}, EdgeDirection::kBoth, 19);
  DenseBatch b = sampler.Sample({3, 6, 9});
  EXPECT_EQ(b.nbr_rels.size(), b.nbrs.size());
  b.FinalizeForDevice();
  b.AdvanceLayer();
  EXPECT_EQ(b.nbr_rels.size(), b.nbrs.size());
}

}  // namespace
}  // namespace mariusgnn
