// Tests for the baseline samplers (DGL/PyG-style layer-wise, NextDoor-style tree) and
// the paper's claim that DENSE samples strictly less than they do.
#include <gtest/gtest.h>

#include <unordered_set>

#include "src/data/datasets.h"
#include "src/sampler/dense.h"
#include "src/sampler/layerwise.h"
#include "src/sampler/negative.h"

namespace mariusgnn {
namespace {

TEST(Layerwise, BlockChainIsConsistent) {
  Graph g = Fb15k237Like(0.05);
  NeighborIndex index(g);
  LayerwiseSampler sampler(&index, {4, 4, 4}, EdgeDirection::kBoth, 1);
  std::vector<int64_t> targets = {0, 1, 2, 3};
  LayerwiseSample s = sampler.Sample(targets);
  ASSERT_EQ(s.blocks.size(), 3u);
  // Outermost block's dst == targets.
  EXPECT_EQ(s.blocks.back().dst_nodes, targets);
  // Chain property: blocks[j].dst == blocks[j+1]... is reversed: blocks[j+1].src
  // feeds blocks[j+1], whose dst equals blocks[j+2]'s src... verify adjacency:
  for (size_t j = 0; j + 1 < s.blocks.size(); ++j) {
    EXPECT_EQ(s.blocks[j].dst_nodes, s.blocks[j + 1].src_nodes);
  }
  // src always begins with dst (self rows).
  for (const auto& block : s.blocks) {
    ASSERT_GE(block.src_nodes.size(), block.dst_nodes.size());
    for (size_t i = 0; i < block.dst_nodes.size(); ++i) {
      EXPECT_EQ(block.src_nodes[i], block.dst_nodes[i]);
    }
  }
}

TEST(Layerwise, EdgesIndexInRange) {
  Graph g = Fb15k237Like(0.05);
  NeighborIndex index(g);
  LayerwiseSampler sampler(&index, {5, 5}, EdgeDirection::kBoth, 2);
  LayerwiseSample s = sampler.Sample({10, 20, 30});
  for (const auto& block : s.blocks) {
    ASSERT_EQ(block.edge_dst.size(), block.edge_src.size());
    for (size_t e = 0; e < block.edge_dst.size(); ++e) {
      EXPECT_GE(block.edge_dst[e], 0);
      EXPECT_LT(block.edge_dst[e], static_cast<int64_t>(block.dst_nodes.size()));
      EXPECT_GE(block.edge_src[e], 0);
      EXPECT_LT(block.edge_src[e], static_cast<int64_t>(block.src_nodes.size()));
    }
  }
}

TEST(Layerwise, SrcNodesUnique) {
  Graph g = Fb15k237Like(0.05);
  NeighborIndex index(g);
  LayerwiseSampler sampler(&index, {6, 6}, EdgeDirection::kBoth, 3);
  LayerwiseSample s = sampler.Sample({1, 2, 3, 4, 5});
  for (const auto& block : s.blocks) {
    std::unordered_set<int64_t> uniq(block.src_nodes.begin(), block.src_nodes.end());
    EXPECT_EQ(uniq.size(), block.src_nodes.size());
  }
}

TEST(Layerwise, DenseSamplesFewerNodesAndEdges) {
  // Table 6's third panel: for the same targets and fanouts, DENSE needs fewer unique
  // nodes and fewer sampled edges than layer-wise resampling at depth >= 2.
  // Large enough that fanout-limited sampling does not saturate the whole graph
  // (saturation makes both samplers touch every node and hides the difference).
  Graph g = Fb15k237Like(0.75);
  NeighborIndex index(g);
  std::vector<int64_t> targets;
  for (int64_t v = 0; v < 32; ++v) {
    targets.push_back(v * 5);
  }
  for (int depth : {2, 3}) {
    std::vector<int64_t> fanouts(static_cast<size_t>(depth), 5);
    DenseSampler dense(&index, fanouts, EdgeDirection::kBoth, 4);
    LayerwiseSampler layerwise(&index, fanouts, EdgeDirection::kBoth, 4);
    DenseBatch db = dense.Sample(targets);
    LayerwiseSample ls = layerwise.Sample(targets);
    EXPECT_LE(db.num_nodes(), ls.NumInputNodes())
        << "depth " << depth << ": DENSE should gather fewer base representations";
    EXPECT_LE(db.num_sampled_edges(), ls.TotalSampledEdges())
        << "depth " << depth << ": DENSE should sample fewer edges";
  }
}

TEST(TreeSampler, GrowsMultiplicatively) {
  Graph g = LiveJournalMini(0.02);
  NeighborIndex index(g);
  TreeSampler t2(&index, {10, 10}, EdgeDirection::kOutgoing, 5);
  TreeSampler t3(&index, {10, 10, 10}, EdgeDirection::kOutgoing, 5);
  std::vector<int64_t> targets = {0, 1, 2, 3};
  const auto s2 = t2.Sample(targets);
  const auto s3 = t3.Sample(targets);
  EXPECT_GT(s3.total_instances, s2.total_instances);
  EXPECT_GT(s3.total_edges, 2 * s2.total_edges / 3);
}

TEST(TreeSampler, CountsConsistent) {
  Graph g = LiveJournalMini(0.02);
  NeighborIndex index(g);
  TreeSampler t(&index, {5}, EdgeDirection::kOutgoing, 6);
  const auto s = t.Sample({0, 1});
  EXPECT_EQ(s.total_instances, 2 + s.total_edges);
}

TEST(NegativeSampler, UniformOverUniverse) {
  UniformNegativeSampler sampler(100, 7);
  auto s = sampler.Sample(1000);
  EXPECT_EQ(s.size(), 1000u);
  for (int64_t v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(NegativeSampler, RestrictedUniverse) {
  std::vector<int64_t> universe = {5, 10, 15};
  UniformNegativeSampler sampler(universe, 7);
  auto s = sampler.Sample(300);
  std::unordered_set<int64_t> seen(s.begin(), s.end());
  for (int64_t v : s) {
    EXPECT_TRUE(v == 5 || v == 10 || v == 15);
  }
  EXPECT_EQ(seen.size(), 3u);
}

}  // namespace
}  // namespace mariusgnn
