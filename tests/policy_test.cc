// Tests for the ordering policies (cover, BETA, COMET), the node-caching policy, the
// Edge Permutation Bias metric, and the auto-tuning rules.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "src/data/datasets.h"
#include "src/policy/autotune.h"
#include "src/policy/beta.h"
#include "src/policy/bias.h"
#include "src/policy/comet.h"
#include "src/policy/cover.h"
#include "src/policy/node_caching.h"
#include "src/policy/policy.h"

namespace mariusgnn {
namespace {

void CheckCover(const CoverPlan& plan, int32_t n, int32_t capacity) {
  std::set<std::pair<int32_t, int32_t>> covered;
  for (size_t i = 0; i < plan.sets.size(); ++i) {
    EXPECT_LE(static_cast<int32_t>(plan.sets[i].size()), capacity);
    std::unordered_set<int32_t> members(plan.sets[i].begin(), plan.sets[i].end());
    EXPECT_EQ(members.size(), plan.sets[i].size());
    if (i > 0) {
      // One-swap property: consecutive sets differ by at most one element.
      int32_t diff = 0;
      std::unordered_set<int32_t> prev(plan.sets[i - 1].begin(), plan.sets[i - 1].end());
      for (int32_t x : plan.sets[i]) {
        if (prev.find(x) == prev.end()) {
          ++diff;
        }
      }
      EXPECT_LE(diff, 1);
    }
    for (size_t a = 0; a < plan.sets[i].size(); ++a) {
      for (size_t b = a; b < plan.sets[i].size(); ++b) {
        covered.insert({std::min(plan.sets[i][a], plan.sets[i][b]),
                        std::max(plan.sets[i][a], plan.sets[i][b])});
      }
    }
  }
  // Every unordered pair covered.
  for (int32_t a = 0; a < n; ++a) {
    for (int32_t b = a; b < n; ++b) {
      EXPECT_TRUE(covered.count({a, b}) == 1) << "pair " << a << "," << b;
    }
  }
}

class CoverParamTest
    : public ::testing::TestWithParam<std::pair<int32_t, int32_t>> {};

TEST_P(CoverParamTest, CoversAllPairsWithOneSwaps) {
  const auto [n, c] = GetParam();
  CoverPlan plan = GreedyCoverOneSwap(n, c);
  CheckCover(plan, n, c);
}

INSTANTIATE_TEST_SUITE_P(Shapes, CoverParamTest,
                         ::testing::Values(std::make_pair(4, 2), std::make_pair(8, 2),
                                           std::make_pair(8, 4), std::make_pair(12, 3),
                                           std::make_pair(16, 4), std::make_pair(16, 8),
                                           std::make_pair(32, 8), std::make_pair(6, 6),
                                           std::make_pair(5, 10)));

TEST(Cover, IoNearLowerBound) {
  // Known result: one-swap greedy achieves close to the p(p-c)/... lower bound; check
  // we are within 2x of the trivial bound (p - c swaps are unavoidable just to see
  // every partition) and far below the naive all-pairs cost.
  const int32_t p = 16, c = 4;
  CoverPlan plan = GreedyCoverOneSwap(p, c);
  const int64_t swaps = static_cast<int64_t>(plan.sets.size()) - 1;
  // Lower bound from Marius: roughly (p^2/c - p) / 2 bucket-driven swaps / (c-1)...
  // use the coarse bound: each swap reveals at most c-1 new pairs; total new pairs
  // needed after the initial set: p(p+1)/2 - c(c+1)/2.
  const int64_t pairs_needed = static_cast<int64_t>(p) * (p + 1) / 2 -
                               static_cast<int64_t>(c) * (c + 1) / 2;
  const int64_t min_swaps = (pairs_needed + c - 1) / c;
  EXPECT_GE(swaps, min_swaps);
  EXPECT_LE(swaps, 3 * min_swaps);
}

class PolicyFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = Fb15k237Like(0.2);
    Rng rng(1);
    partitioning_ =
        std::make_unique<Partitioning>(graph_, 8, PartitionAssignment::kRandom, rng);
  }
  Graph graph_;
  std::unique_ptr<Partitioning> partitioning_;
};

TEST_F(PolicyFixture, BetaPlanIsValid) {
  BetaPolicy beta;
  Rng rng(2);
  EpochPlan plan = beta.GenerateEpoch(*partitioning_, 4, rng);
  ValidatePlan(plan, *partitioning_, 4);
}

TEST_F(PolicyFixture, CometPlanIsValid) {
  CometPolicy comet(/*num_logical=*/4);  // group size 2, capacity 4 -> c_l = 2
  Rng rng(3);
  EpochPlan plan = comet.GenerateEpoch(*partitioning_, 4, rng);
  ValidatePlan(plan, *partitioning_, 4);
}

TEST_F(PolicyFixture, BetaBucketsCorrelated) {
  // The Figure 4 pathology: in every BETA set after the first, all buckets share the
  // freshly swapped-in partition.
  BetaPolicy beta;
  Rng rng(4);
  EpochPlan plan = beta.GenerateEpoch(*partitioning_, 4, rng);
  for (size_t i = 1; i < plan.sets.size(); ++i) {
    std::unordered_set<int32_t> prev(plan.sets[i - 1].begin(), plan.sets[i - 1].end());
    int32_t fresh = -1;
    for (int32_t x : plan.sets[i]) {
      if (prev.find(x) == prev.end()) {
        fresh = x;
      }
    }
    if (fresh < 0) {
      continue;
    }
    for (const BucketId& b : plan.buckets_per_set[i]) {
      EXPECT_TRUE(b.first == fresh || b.second == fresh);
    }
  }
}

TEST_F(PolicyFixture, CometBalancesBucketLoad) {
  // Deferred random assignment balances |X_i| (Section 5.1); BETA leaves some X_i
  // nearly empty. Compare coefficient-of-variation-ish spread via max/mean.
  BetaPolicy beta;
  CometPolicy comet(4);
  Rng rng(5);
  EpochPlan bp = beta.GenerateEpoch(*partitioning_, 4, rng);
  EpochPlan cp = comet.GenerateEpoch(*partitioning_, 4, rng);
  auto spread = [&](const EpochPlan& plan) {
    double max_edges = 0.0, total = 0.0;
    for (const auto& buckets : plan.buckets_per_set) {
      double edges = 0.0;
      for (const BucketId& b : buckets) {
        edges += static_cast<double>(partitioning_->BucketSize(b.first, b.second));
      }
      max_edges = std::max(max_edges, edges);
      total += edges;
    }
    return max_edges / (total / static_cast<double>(plan.num_sets()));
  };
  EXPECT_LT(spread(cp), spread(bp));
}

TEST_F(PolicyFixture, CometLowerBiasThanBeta) {
  // The headline policy claim (Figure 6 mechanics): COMET's epoch order has lower
  // Edge Permutation Bias than BETA's for the same buffer.
  BetaPolicy beta;
  CometPolicy comet(4);
  Rng rng(6);
  const double beta_bias =
      EdgePermutationBias(beta.GenerateEpoch(*partitioning_, 4, rng), *partitioning_, graph_);
  double comet_bias_sum = 0.0;
  for (int trial = 0; trial < 3; ++trial) {
    comet_bias_sum += EdgePermutationBias(comet.GenerateEpoch(*partitioning_, 4, rng),
                                          *partitioning_, graph_);
  }
  EXPECT_LT(comet_bias_sum / 3.0, beta_bias);
}

TEST_F(PolicyFixture, CometIoWithinSmallFactorOfBeta) {
  // COMET trades a bounded amount of IO for randomness (paper: 5-25% range for IO
  // differences). Allow a generous 2.5x.
  BetaPolicy beta;
  CometPolicy comet(4);
  Rng rng(7);
  const int64_t beta_loads = beta.GenerateEpoch(*partitioning_, 4, rng).TotalPartitionLoads();
  const int64_t comet_loads =
      comet.GenerateEpoch(*partitioning_, 4, rng).TotalPartitionLoads();
  EXPECT_LE(comet_loads, beta_loads * 5 / 2);
}

TEST(CometSweep, MoreLogicalPartitionsMoreSetsLessIoPerSet) {
  // Figure 6b's mechanics: raising l increases |S| and lowers total IO.
  Graph graph = Fb15k237Like(0.2);
  Rng rng(8);
  Partitioning partitioning(graph, 16, PartitionAssignment::kRandom, rng);
  const int32_t capacity = 8;
  int64_t prev_sets = 0;
  for (int32_t l : {4, 8, 16}) {  // group sizes 4, 2, 1
    CometPolicy comet(l);
    EpochPlan plan = comet.GenerateEpoch(partitioning, capacity, rng);
    ValidatePlan(plan, partitioning, capacity);
    EXPECT_GT(plan.num_sets(), prev_sets);
    prev_sets = plan.num_sets();
  }
}

TEST(Bias, PerfectlyInterleavedIsLow) {
  // A single set containing everything has bias 0 (one X covering all edges).
  Graph graph = Fb15k237Like(0.1);
  Rng rng(9);
  Partitioning partitioning(graph, 4, PartitionAssignment::kRandom, rng);
  EpochPlan plan;
  plan.sets.push_back({0, 1, 2, 3});
  plan.buckets_per_set.emplace_back();
  for (int32_t i = 0; i < 4; ++i) {
    for (int32_t j = 0; j < 4; ++j) {
      if (partitioning.BucketSize(i, j) > 0) {
        plan.buckets_per_set[0].emplace_back(i, j);
      }
    }
  }
  EXPECT_DOUBLE_EQ(EdgePermutationBias(plan, partitioning, graph), 0.0);
}

TEST(Bias, SequentialBucketsAreHigh) {
  // Processing one node-partition's edges at a time yields high bias.
  Graph graph = Fb15k237Like(0.1);
  Rng rng(10);
  Partitioning partitioning(graph, 4, PartitionAssignment::kRandom, rng);
  EpochPlan plan;
  for (int32_t i = 0; i < 4; ++i) {
    for (int32_t j = 0; j < 4; ++j) {
      if (partitioning.BucketSize(i, j) > 0) {
        plan.sets.push_back({0, 1, 2, 3});
        plan.buckets_per_set.push_back({{i, j}});
      }
    }
  }
  EXPECT_GT(EdgePermutationBias(plan, partitioning, graph), 0.5);
}

TEST(NodeCaching, CachedRegimeSingleSetWithTrainPartitions) {
  Graph graph = PapersMini(0.05);
  Rng rng(11);
  Partitioning partitioning(graph, 16, PartitionAssignment::kTrainingNodesFirst, rng);
  const int32_t k = partitioning.num_training_partitions();
  ASSERT_LT(k, 8);
  NodeCachingPolicy policy;
  auto sets = policy.GenerateEpoch(partitioning, 8, rng);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(static_cast<int32_t>(sets[0].size()), 8);
  for (int32_t i = 0; i < k; ++i) {
    EXPECT_EQ(sets[0][static_cast<size_t>(i)], i);
  }
}

TEST(NodeCaching, FallbackRotationVisitsAllPartitions) {
  Graph graph = PapersMini(0.05);
  Rng rng(12);
  Partitioning partitioning(graph, 16, PartitionAssignment::kTrainingNodesFirst, rng);
  NodeCachingPolicy policy;
  // Tiny capacity forces the k >= c fallback.
  auto sets = policy.GenerateEpoch(partitioning, 2, rng);
  std::unordered_set<int32_t> visited;
  for (const auto& s : sets) {
    EXPECT_LE(s.size(), 2u);
    for (int32_t x : s) {
      visited.insert(x);
    }
  }
  EXPECT_EQ(visited.size(), 16u);
}

// Budget sweep: for any budget that forces disk mode, the result must satisfy the
// COMET divisibility constraints and fit the budget.
class AutoTuneBudgetTest : public ::testing::TestWithParam<double> {};

TEST_P(AutoTuneBudgetTest, ConstraintsHoldAcrossBudgets) {
  AutoTuneInput input;
  input.num_nodes = 20'000'000;
  input.num_edges = 300'000'000;
  input.dim = 64;
  input.cpu_bytes = GetParam();
  const auto r = AutoTune(input);
  if (r.fits_in_memory) {
    return;
  }
  const int32_t group = r.num_physical / r.num_logical;
  EXPECT_EQ(r.num_physical % r.num_logical, 0);
  EXPECT_EQ(r.buffer_capacity % group, 0);
  EXPECT_GE(r.buffer_capacity / group, 2);
  EXPECT_LE(r.buffer_capacity, r.num_physical);
  const double po = static_cast<double>(input.num_nodes) * input.dim * 4 / r.num_physical;
  const double ebo = static_cast<double>(input.num_edges) * input.bytes_per_edge /
                     (static_cast<double>(r.num_physical) * r.num_physical);
  EXPECT_LT(r.buffer_capacity * po + 2.0 * r.buffer_capacity * r.buffer_capacity * ebo,
            input.cpu_bytes);
}

INSTANTIATE_TEST_SUITE_P(Budgets, AutoTuneBudgetTest,
                         ::testing::Values(2e9, 4e9, 8e9, 16e9, 32e9, 64e9));

TEST(AutoTune, InMemoryWhenBudgetLarge) {
  AutoTuneInput input;
  input.num_nodes = 1000;
  input.num_edges = 10000;
  input.dim = 16;
  input.cpu_bytes = 1e9;
  const auto result = AutoTune(input);
  EXPECT_TRUE(result.fits_in_memory);
}

TEST(AutoTune, DiskConfigSatisfiesCometConstraints) {
  AutoTuneInput input;
  input.num_nodes = 100'000'000;  // Papers100M-scale
  input.num_edges = 1'600'000'000;
  input.dim = 128;
  input.cpu_bytes = 61e9;  // P3.2xLarge
  const auto r = AutoTune(input);
  ASSERT_FALSE(r.fits_in_memory);
  EXPECT_GE(r.buffer_capacity, 2);
  EXPECT_EQ(r.buffer_capacity % 2, 0);
  const int32_t group = r.num_physical / r.num_logical;
  EXPECT_EQ(r.num_physical % r.num_logical, 0);
  EXPECT_EQ(r.buffer_capacity % group, 0);
  EXPECT_GE(r.buffer_capacity / group, 2);  // c_l >= 2
  // Buffer actually fits in memory budget.
  const double po = static_cast<double>(input.num_nodes) * input.dim * 4 / r.num_physical;
  const double ebo = static_cast<double>(input.num_edges) * 20 /
                     (static_cast<double>(r.num_physical) * r.num_physical);
  EXPECT_LT(r.buffer_capacity * po + 2.0 * r.buffer_capacity * r.buffer_capacity * ebo,
            input.cpu_bytes);
}

TEST(AutoTune, LargerMemoryGivesLargerBuffer) {
  AutoTuneInput small, large;
  small.num_nodes = large.num_nodes = 50'000'000;
  small.num_edges = large.num_edges = 500'000'000;
  small.dim = large.dim = 100;
  small.cpu_bytes = 16e9;
  large.cpu_bytes = 61e9;
  const auto rs = AutoTune(small);
  const auto rl = AutoTune(large);
  ASSERT_FALSE(rs.fits_in_memory);
  if (!rl.fits_in_memory) {
    EXPECT_GE(rl.buffer_capacity, rs.buffer_capacity);
  }
}

TEST_F(PolicyFixture, CometAblationKnobsValidPlans) {
  // Every ablation combination still produces a valid epoch plan.
  Rng rng(20);
  for (bool grouping : {true, false}) {
    for (bool deferred : {true, false}) {
      CometPolicy comet(4, grouping, deferred);
      EpochPlan plan = comet.GenerateEpoch(*partitioning_, 4, rng);
      ValidatePlan(plan, *partitioning_, 4);
    }
  }
}

TEST_F(PolicyFixture, DeferredAssignmentLowersBias) {
  // Mechanism 2 in isolation: same grouping, eager vs deferred bucket assignment.
  Rng rng(21);
  CometPolicy eager(4, true, false);
  CometPolicy deferred(4, true, true);
  double eager_bias = 0.0, deferred_bias = 0.0;
  for (int t = 0; t < 4; ++t) {
    eager_bias += EdgePermutationBias(eager.GenerateEpoch(*partitioning_, 4, rng),
                                      *partitioning_, graph_);
    deferred_bias += EdgePermutationBias(deferred.GenerateEpoch(*partitioning_, 4, rng),
                                         *partitioning_, graph_);
  }
  EXPECT_LT(deferred_bias, eager_bias);
}

TEST_F(PolicyFixture, FixedGroupingIsDeterministicPlan) {
  // Without random grouping, the sequence of partition sets S is identical across
  // epochs (only the bucket assignment varies).
  Rng rng(22);
  CometPolicy comet(4, /*randomize_grouping=*/false, true);
  EpochPlan a = comet.GenerateEpoch(*partitioning_, 4, rng);
  EpochPlan b = comet.GenerateEpoch(*partitioning_, 4, rng);
  ASSERT_EQ(a.sets.size(), b.sets.size());
  for (size_t i = 0; i < a.sets.size(); ++i) {
    EXPECT_EQ(a.sets[i], b.sets[i]);
  }
}

TEST(EpochPlan, TotalPartitionLoadsCountsSwaps) {
  EpochPlan plan;
  plan.sets = {{0, 1}, {0, 2}, {3, 2}};
  plan.buckets_per_set.resize(3);
  EXPECT_EQ(plan.TotalPartitionLoads(), 4);  // 2 initial + 2 swaps
}

TEST(PrefetchDelta, ReturnsOnlyMissingPartitions) {
  EXPECT_EQ(PrefetchDelta({0, 1, 2}, {1, 2, 3}), (std::vector<int32_t>{3}));
  EXPECT_EQ(PrefetchDelta({0, 1}, {0, 1}), (std::vector<int32_t>{}));
  EXPECT_EQ(PrefetchDelta({}, {4, 5}), (std::vector<int32_t>{4, 5}));
}

TEST_F(PolicyFixture, BetaLookaheadIsAtMostOneSwap) {
  BetaPolicy beta;
  Rng rng(2);
  EpochPlan plan = beta.GenerateEpoch(*partitioning_, 4, rng);
  int64_t swaps = 0;
  for (int64_t i = 0; i < plan.num_sets(); ++i) {
    const auto delta = beta.Lookahead(plan, i);
    EXPECT_LE(delta.size(), 1u);
    swaps += static_cast<int64_t>(delta.size());
    if (i + 1 == plan.num_sets()) {
      EXPECT_TRUE(delta.empty());  // nothing to stage after the last set
    }
  }
  // Every swap in the plan is visible to the prefetcher.
  EXPECT_EQ(swaps + static_cast<int64_t>(plan.sets.front().size()),
            plan.TotalPartitionLoads());
}

TEST_F(PolicyFixture, CometLookaheadIsWholeLogicalGroups) {
  CometPolicy comet(4);
  Rng rng(3);
  EpochPlan plan = comet.GenerateEpoch(*partitioning_, 4, rng);
  const int32_t group = 8 / 4;  // p / l physical partitions per logical group
  for (int64_t i = 0; i < plan.num_sets(); ++i) {
    const auto delta = comet.Lookahead(plan, i);
    EXPECT_TRUE(delta.empty() || static_cast<int32_t>(delta.size()) == group);
  }
}

TEST_F(PolicyFixture, LookaheadMatchesNextResidency) {
  // Prefetching the lookahead then applying the next set must leave nothing to load
  // synchronously: delta + current ⊇ next.
  BetaPolicy beta;
  Rng rng(4);
  EpochPlan plan = beta.GenerateEpoch(*partitioning_, 4, rng);
  for (int64_t i = 0; i + 1 < plan.num_sets(); ++i) {
    std::unordered_set<int32_t> available(plan.sets[static_cast<size_t>(i)].begin(),
                                          plan.sets[static_cast<size_t>(i)].end());
    for (int32_t part : beta.Lookahead(plan, i)) {
      available.insert(part);
    }
    for (int32_t part : plan.sets[static_cast<size_t>(i) + 1]) {
      EXPECT_EQ(available.count(part), 1u);
    }
  }
}

}  // namespace
}  // namespace mariusgnn
