// Tests for the synthetic dataset generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "src/data/datasets.h"
#include "src/data/generators.h"
#include "src/data/serialize.h"
#include "src/util/binary_io.h"

namespace mariusgnn {
namespace {

TEST(Generators, BarabasiAlbertShape) {
  Rng rng(1);
  auto edges = BarabasiAlbertEdges(1000, 5, rng);
  EXPECT_EQ(edges.size(), static_cast<size_t>(5 + (1000 - 6) * 5));
  for (const Edge& e : edges) {
    EXPECT_GE(e.src, 0);
    EXPECT_LT(e.src, 1000);
    EXPECT_GE(e.dst, 0);
    EXPECT_LT(e.dst, 1000);
  }
}

TEST(Generators, BarabasiAlbertPowerLawish) {
  // Preferential attachment: max degree far exceeds mean degree.
  Rng rng(2);
  auto edges = BarabasiAlbertEdges(5000, 4, rng);
  Graph g(5000, std::move(edges));
  auto total = g.TotalDegrees();
  const int64_t max_deg = *std::max_element(total.begin(), total.end());
  const double mean_deg = 2.0 * static_cast<double>(g.num_edges()) / 5000.0;
  EXPECT_GT(static_cast<double>(max_deg), 8.0 * mean_deg);
}

TEST(Generators, ErdosRenyiNoSelfLoops) {
  Rng rng(3);
  auto edges = ErdosRenyiEdges(100, 2000, rng);
  EXPECT_EQ(edges.size(), 2000u);
  for (const Edge& e : edges) {
    EXPECT_NE(e.src, e.dst);
  }
}

TEST(Generators, ZipfRelationsSkewed) {
  Rng rng(4);
  auto edges = ErdosRenyiEdges(100, 20000, rng);
  AssignZipfRelations(edges, 50, rng);
  std::vector<int64_t> counts(50, 0);
  for (const Edge& e : edges) {
    ASSERT_GE(e.rel, 0);
    ASSERT_LT(e.rel, 50);
    ++counts[static_cast<size_t>(e.rel)];
  }
  // Relation 0 dominates relation 25 by roughly 25x under Zipf(1).
  EXPECT_GT(counts[0], counts[25] * 5);
}

TEST(Generators, CommunityGraphLearnableSignal) {
  CommunityGraphConfig config;
  config.num_nodes = 2000;
  config.num_communities = 8;
  Rng rng(5);
  Graph g = MakeCommunityGraph(config, rng);
  EXPECT_TRUE(g.has_features());
  EXPECT_EQ(g.num_classes(), 8);
  EXPECT_EQ(g.labels().size(), 2000u);
  EXPECT_FALSE(g.train_nodes().empty());

  // Edges are mostly intra-community.
  int64_t intra = 0;
  for (const Edge& e : g.edges()) {
    if (g.labels()[static_cast<size_t>(e.src)] == g.labels()[static_cast<size_t>(e.dst)]) {
      ++intra;
    }
  }
  EXPECT_GT(static_cast<double>(intra) / static_cast<double>(g.num_edges()), 0.6);
}

TEST(Generators, CommunityGraphSplitsDisjoint) {
  CommunityGraphConfig config;
  config.num_nodes = 3000;
  Rng rng(6);
  Graph g = MakeCommunityGraph(config, rng);
  std::unordered_set<int64_t> seen;
  for (const auto* split : {&g.train_nodes(), &g.valid_nodes(), &g.test_nodes()}) {
    for (int64_t v : *split) {
      EXPECT_TRUE(seen.insert(v).second) << "node in two splits";
    }
  }
}

TEST(Generators, KnowledgeGraphSplitsDisjointAndComplete) {
  KnowledgeGraphConfig config;
  config.num_nodes = 2000;
  config.edges_per_node = 6;
  Rng rng(7);
  Graph g = MakeKnowledgeGraph(config, rng);
  std::unordered_set<int64_t> seen;
  for (const auto* split : {&g.train_edges(), &g.valid_edges(), &g.test_edges()}) {
    for (int64_t e : *split) {
      EXPECT_TRUE(seen.insert(e).second);
    }
  }
  EXPECT_EQ(static_cast<int64_t>(seen.size()), g.num_edges());
  EXPECT_FALSE(g.valid_edges().empty());
  EXPECT_FALSE(g.test_edges().empty());
}

TEST(Datasets, NamedDatasetsHaveExpectedShape) {
  Graph fb = Fb15k237Like(0.1);
  EXPECT_GT(fb.num_nodes(), 1000);
  EXPECT_EQ(fb.num_relations(), 237);
  EXPECT_GT(fb.num_edges(), fb.num_nodes());

  Graph papers = PapersMini(0.1);
  EXPECT_TRUE(papers.has_features());
  EXPECT_EQ(papers.features().cols(), 64);
  EXPECT_EQ(papers.num_classes(), 32);

  Graph lj = LiveJournalMini(0.1);
  EXPECT_EQ(lj.num_relations(), 1);
}

TEST(Datasets, DeterministicForSameSeed) {
  Graph a = Fb15k237Like(0.05, 42);
  Graph b = Fb15k237Like(0.05, 42);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (int64_t e = 0; e < std::min<int64_t>(a.num_edges(), 100); ++e) {
    EXPECT_EQ(a.edge(e), b.edge(e));
  }
}

TEST(Datasets, ScaleChangesSize) {
  Graph small = WikiMini(0.02);
  Graph large = WikiMini(0.08);
  EXPECT_LT(small.num_nodes(), large.num_nodes());
}

TEST(Serialize, KnowledgeGraphRoundTrip) {
  Graph g = Fb15k237Like(0.05);
  const std::string prefix = TempPath("ser_kg");
  SaveGraph(g, prefix);
  Graph back = LoadGraph(prefix);
  EXPECT_EQ(back.num_nodes(), g.num_nodes());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  EXPECT_EQ(back.num_relations(), g.num_relations());
  for (int64_t e = 0; e < g.num_edges(); e += 97) {
    EXPECT_EQ(back.edge(e), g.edge(e));
  }
  EXPECT_EQ(back.train_edges(), g.train_edges());
  EXPECT_EQ(back.valid_edges(), g.valid_edges());
  EXPECT_EQ(back.test_edges(), g.test_edges());
  EXPECT_FALSE(back.has_features());
  RemoveGraphFiles(prefix);
}

TEST(Serialize, FeatureGraphRoundTrip) {
  Graph g = PapersMini(0.05);
  const std::string prefix = TempPath("ser_nc");
  SaveGraph(g, prefix);
  Graph back = LoadGraph(prefix);
  ASSERT_TRUE(back.has_features());
  EXPECT_EQ(back.features().rows(), g.features().rows());
  EXPECT_EQ(back.features().cols(), g.features().cols());
  for (int64_t i = 0; i < g.features().size(); i += 131) {
    EXPECT_FLOAT_EQ(back.features().data()[i], g.features().data()[i]);
  }
  EXPECT_EQ(back.labels(), g.labels());
  EXPECT_EQ(back.num_classes(), g.num_classes());
  EXPECT_EQ(back.train_nodes(), g.train_nodes());
  EXPECT_EQ(back.test_nodes(), g.test_nodes());
  RemoveGraphFiles(prefix);
}

TEST(Serialize, EmptySplitsSurvive) {
  Graph g(10, {{0, 1, 0}, {1, 2, 0}});
  const std::string prefix = TempPath("ser_min");
  SaveGraph(g, prefix);
  Graph back = LoadGraph(prefix);
  EXPECT_EQ(back.num_edges(), 2);
  EXPECT_TRUE(back.train_edges().empty());
  EXPECT_TRUE(back.labels().empty());
  RemoveGraphFiles(prefix);
}

}  // namespace
}  // namespace mariusgnn
