// Tests for the tensor substrate: shapes, kernels, and analytic-vs-numeric gradients
// for the segment and softmax operations the GNN layers depend on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>

#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"
#include "src/util/threadpool.h"

namespace mariusgnn {
namespace {

Tensor MakeTensor(int64_t rows, int64_t cols, std::vector<float> v) {
  return Tensor(rows, cols, std::move(v));
}

TEST(Tensor, ZerosAndFill) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_DOUBLE_EQ(t.Sum(), 0.0);
  t.Fill(2.0f);
  EXPECT_DOUBLE_EQ(t.Sum(), 24.0);
}

TEST(Tensor, SliceCopiesRows) {
  Tensor t = MakeTensor(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor s = t.Slice(1, 3);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_FLOAT_EQ(s(0, 0), 3);
  EXPECT_FLOAT_EQ(s(1, 1), 6);
}

TEST(Tensor, GlorotUniformBounds) {
  Rng rng(1);
  Tensor t = Tensor::GlorotUniform(100, 50, rng);
  const float bound = std::sqrt(6.0f / 150.0f);
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(std::abs(t.data()[i]), bound);
  }
}

TEST(Ops, MatmulMatchesManual) {
  Tensor a = MakeTensor(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = MakeTensor(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = Matmul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 58);
  EXPECT_FLOAT_EQ(c(0, 1), 64);
  EXPECT_FLOAT_EQ(c(1, 0), 139);
  EXPECT_FLOAT_EQ(c(1, 1), 154);
}

TEST(Ops, MatmulTransAConsistent) {
  Rng rng(2);
  Tensor a = Tensor::Normal(5, 3, 1.0f, rng);
  Tensor b = Tensor::Normal(5, 4, 1.0f, rng);
  Tensor c = MatmulTransA(a, b);  // (3x5)*(5x4)
  // Verify against explicit transpose + matmul.
  Tensor at(3, 5);
  for (int64_t i = 0; i < 5; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      at(j, i) = a(i, j);
    }
  }
  Tensor ref = Matmul(at, b);
  for (int64_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], ref.data()[i], 1e-4);
  }
}

TEST(Ops, MatmulTransBConsistent) {
  Rng rng(3);
  Tensor a = Tensor::Normal(4, 3, 1.0f, rng);
  Tensor b = Tensor::Normal(6, 3, 1.0f, rng);
  Tensor c = MatmulTransB(a, b);  // (4x3)*(3x6)
  Tensor bt(3, 6);
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      bt(j, i) = b(i, j);
    }
  }
  Tensor ref = Matmul(a, bt);
  for (int64_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], ref.data()[i], 1e-4);
  }
}

TEST(Ops, IndexSelectAndScatterAddInverse) {
  Tensor t = MakeTensor(4, 2, {1, 2, 3, 4, 5, 6, 7, 8});
  std::vector<int64_t> idx = {2, 0, 2};
  Tensor sel = IndexSelect(t, idx);
  EXPECT_FLOAT_EQ(sel(0, 0), 5);
  EXPECT_FLOAT_EQ(sel(1, 0), 1);
  EXPECT_FLOAT_EQ(sel(2, 1), 6);

  Tensor acc(4, 2);
  ScatterAddRows(acc, idx, sel);
  EXPECT_FLOAT_EQ(acc(2, 0), 10);  // row 2 hit twice
  EXPECT_FLOAT_EQ(acc(0, 1), 2);
  EXPECT_FLOAT_EQ(acc(1, 0), 0);
}

TEST(Ops, SegmentSumBasic) {
  Tensor src = MakeTensor(5, 2, {1, 1, 2, 2, 3, 3, 4, 4, 5, 5});
  std::vector<int64_t> offsets = {0, 2, 2, 5};
  Tensor out = SegmentSum(src, offsets);
  ASSERT_EQ(out.rows(), 3);
  EXPECT_FLOAT_EQ(out(0, 0), 3);   // rows 0+1
  EXPECT_FLOAT_EQ(out(1, 0), 0);   // empty segment
  EXPECT_FLOAT_EQ(out(2, 1), 12);  // rows 2+3+4
}

TEST(Ops, SegmentMeanBasic) {
  Tensor src = MakeTensor(4, 1, {2, 4, 9, 0});
  std::vector<int64_t> offsets = {0, 2, 4};
  Tensor out = SegmentMean(src, offsets);
  EXPECT_FLOAT_EQ(out(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(out(1, 0), 4.5f);
}

TEST(Ops, SegmentSumBackwardBroadcasts) {
  Tensor grad = MakeTensor(2, 2, {1, 2, 3, 4});
  std::vector<int64_t> offsets = {0, 3, 4};
  Tensor gin = SegmentSumBackward(grad, offsets);
  ASSERT_EQ(gin.rows(), 4);
  for (int64_t r = 0; r < 3; ++r) {
    EXPECT_FLOAT_EQ(gin(r, 0), 1);
    EXPECT_FLOAT_EQ(gin(r, 1), 2);
  }
  EXPECT_FLOAT_EQ(gin(3, 0), 3);
}

TEST(Ops, SegmentMeanBackwardDivides) {
  Tensor grad = MakeTensor(1, 1, {6});
  std::vector<int64_t> offsets = {0, 3};
  Tensor gin = SegmentMeanBackward(grad, offsets);
  for (int64_t r = 0; r < 3; ++r) {
    EXPECT_FLOAT_EQ(gin(r, 0), 2.0f);
  }
}

TEST(Ops, SegmentSoftmaxNormalizesPerSegment) {
  Tensor s = MakeTensor(5, 1, {1, 2, 3, 10, 10});
  std::vector<int64_t> offsets = {0, 3, 5};
  SegmentSoftmaxInPlace(s, offsets);
  EXPECT_NEAR(s(0, 0) + s(1, 0) + s(2, 0), 1.0f, 1e-5);
  EXPECT_NEAR(s(3, 0) + s(4, 0), 1.0f, 1e-5);
  EXPECT_NEAR(s(3, 0), 0.5f, 1e-5);
  EXPECT_GT(s(2, 0), s(1, 0));
}

TEST(Ops, SegmentSoftmaxBackwardNumeric) {
  // Numeric check of d(sum(w . softmax(x))) / dx per segment.
  Rng rng(4);
  Tensor x = Tensor::Normal(6, 1, 1.0f, rng);
  Tensor w = Tensor::Normal(6, 1, 1.0f, rng);
  std::vector<int64_t> offsets = {0, 2, 6};

  auto value = [&](const Tensor& input) {
    Tensor p = input;
    SegmentSoftmaxInPlace(p, offsets);
    double v = 0.0;
    for (int64_t i = 0; i < 6; ++i) {
      v += w.data()[i] * p.data()[i];
    }
    return v;
  };

  Tensor probs = x;
  SegmentSoftmaxInPlace(probs, offsets);
  Tensor analytic = SegmentSoftmaxBackward(probs, w, offsets);

  const float eps = 1e-3f;
  for (int64_t i = 0; i < 6; ++i) {
    Tensor xp = x, xm = x;
    xp.data()[i] += eps;
    xm.data()[i] -= eps;
    const double numeric = (value(xp) - value(xm)) / (2.0 * eps);
    EXPECT_NEAR(analytic.data()[i], numeric, 2e-2);
  }
}

TEST(Ops, ReluAndBackward) {
  Tensor t = MakeTensor(1, 4, {-1, 0, 2, -3});
  Tensor out = Relu(t);
  EXPECT_FLOAT_EQ(out(0, 0), 0);
  EXPECT_FLOAT_EQ(out(0, 2), 2);
  Tensor grad = MakeTensor(1, 4, {1, 1, 1, 1});
  Tensor gin = ReluBackward(out, grad);
  EXPECT_FLOAT_EQ(gin(0, 0), 0);
  EXPECT_FLOAT_EQ(gin(0, 2), 1);
}

TEST(Ops, LeakyReluSlope) {
  Tensor t = MakeTensor(1, 2, {-10, 10});
  Tensor out = LeakyRelu(t, 0.1f);
  EXPECT_FLOAT_EQ(out(0, 0), -1.0f);
  EXPECT_FLOAT_EQ(out(0, 1), 10.0f);
  Tensor grad = MakeTensor(1, 2, {1, 1});
  Tensor gin = LeakyReluBackward(out, grad, 0.1f);
  EXPECT_FLOAT_EQ(gin(0, 0), 0.1f);
  EXPECT_FLOAT_EQ(gin(0, 1), 1.0f);
}

TEST(Ops, RowSoftmaxRowsSumToOne) {
  Rng rng(5);
  Tensor logits = Tensor::Normal(7, 9, 3.0f, rng);
  Tensor p = RowSoftmax(logits);
  for (int64_t r = 0; r < p.rows(); ++r) {
    double sum = 0.0;
    for (int64_t c = 0; c < p.cols(); ++c) {
      EXPECT_GE(p(r, c), 0.0f);
      sum += p(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Ops, SoftmaxCrossEntropyGradientNumeric) {
  Rng rng(6);
  Tensor logits = Tensor::Normal(4, 5, 1.0f, rng);
  std::vector<int64_t> labels = {0, 3, 2, 4};
  Tensor dlogits;
  const float loss = SoftmaxCrossEntropy(logits, labels, &dlogits);
  EXPECT_GT(loss, 0.0f);

  const float eps = 1e-3f;
  for (int64_t i = 0; i < logits.size(); ++i) {
    Tensor lp = logits, lm = logits;
    lp.data()[i] += eps;
    lm.data()[i] -= eps;
    const float fp = SoftmaxCrossEntropy(lp, labels, nullptr);
    const float fm = SoftmaxCrossEntropy(lm, labels, nullptr);
    EXPECT_NEAR(dlogits.data()[i], (fp - fm) / (2 * eps), 5e-3);
  }
}

TEST(Ops, SoftmaxCrossEntropyPerfectPrediction) {
  Tensor logits = MakeTensor(2, 3, {100, 0, 0, 0, 0, 100});
  const float loss = SoftmaxCrossEntropy(logits, {0, 2}, nullptr);
  EXPECT_NEAR(loss, 0.0f, 1e-4);
}

TEST(Ops, AddBiasAndSumRows) {
  Tensor t(2, 3);
  Tensor bias = MakeTensor(1, 3, {1, 2, 3});
  AddBiasRows(t, bias);
  EXPECT_FLOAT_EQ(t(1, 2), 3);
  Tensor s = SumRows(t);
  EXPECT_FLOAT_EQ(s(0, 0), 2);
  EXPECT_FLOAT_EQ(s(0, 2), 6);
}

TEST(Ops, RowL2Normalize) {
  Tensor t = MakeTensor(2, 2, {3, 4, 0, 0});
  RowL2NormalizeInPlace(t);
  EXPECT_NEAR(t(0, 0), 0.6f, 1e-5);
  EXPECT_NEAR(t(0, 1), 0.8f, 1e-5);
  EXPECT_FLOAT_EQ(t(1, 0), 0.0f);  // zero row untouched
}

TEST(Ops, HadamardAndAxpy) {
  Tensor a = MakeTensor(1, 3, {1, 2, 3});
  Tensor b = MakeTensor(1, 3, {4, 5, 6});
  Tensor h = Hadamard(a, b);
  EXPECT_FLOAT_EQ(h(0, 2), 18);
  Axpy(a, b, 2.0f);
  EXPECT_FLOAT_EQ(a(0, 0), 9);
}

// Property sweep: SegmentSum ∘ SegmentSumBackward conserves mass for random shapes.
class SegmentParamTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(SegmentParamTest, SumBackwardAdjoint) {
  // <SegmentSum(x), g> == <x, SegmentSumBackward(g)> (adjoint identity).
  const int64_t segs = GetParam();
  Rng rng(100 + static_cast<uint64_t>(segs));
  std::vector<int64_t> offsets = {0};
  for (int64_t s = 0; s < segs; ++s) {
    offsets.push_back(offsets.back() + static_cast<int64_t>(rng.UniformInt(4)));
  }
  const int64_t rows = offsets.back();
  Tensor x = Tensor::Normal(rows, 3, 1.0f, rng);
  Tensor g = Tensor::Normal(segs, 3, 1.0f, rng);
  Tensor y = SegmentSum(x, offsets);
  Tensor gx = SegmentSumBackward(g, offsets);
  double lhs = 0.0, rhs = 0.0;
  for (int64_t i = 0; i < y.size(); ++i) {
    lhs += static_cast<double>(y.data()[i]) * g.data()[i];
  }
  for (int64_t i = 0; i < x.size(); ++i) {
    rhs += static_cast<double>(x.data()[i]) * gx.data()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3 * (1.0 + std::abs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(Shapes, SegmentParamTest,
                         ::testing::Values(1, 2, 5, 17, 64, 200));

// Adjoint identity for the matmul trio: <A x, y> == <x, A^T y> over random shapes.
class MatmulParamTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {};

TEST_P(MatmulParamTest, TransposeAdjointIdentity) {
  const auto [m, k, n] = GetParam();
  Rng rng(7 + static_cast<uint64_t>(m * 100 + k * 10 + n));
  Tensor a = Tensor::Normal(m, k, 1.0f, rng);
  Tensor x = Tensor::Normal(k, n, 1.0f, rng);
  Tensor y = Tensor::Normal(m, n, 1.0f, rng);
  Tensor ax = Matmul(a, x);
  Tensor aty = MatmulTransA(a, y);  // A^T y
  double lhs = 0.0, rhs = 0.0;
  for (int64_t i = 0; i < ax.size(); ++i) {
    lhs += static_cast<double>(ax.data()[i]) * y.data()[i];
  }
  for (int64_t i = 0; i < aty.size(); ++i) {
    rhs += static_cast<double>(aty.data()[i]) * x.data()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-2 * (1.0 + std::abs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulParamTest,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(3, 5, 2),
                                           std::make_tuple(16, 8, 4),
                                           std::make_tuple(7, 31, 13),
                                           std::make_tuple(64, 32, 16)));

TEST(Ops, SegmentSoftmaxAllEmptySegments) {
  Tensor s(0, 1);
  std::vector<int64_t> offsets = {0, 0, 0};
  SegmentSoftmaxInPlace(s, offsets);  // must not crash
  EXPECT_EQ(s.rows(), 0);
}

TEST(Ops, IndexSelectEmpty) {
  Tensor t = Tensor::Full(3, 2, 1.0f);
  Tensor out = IndexSelect(t, {});
  EXPECT_EQ(out.rows(), 0);
  EXPECT_EQ(out.cols(), 2);
}

TEST(Ops, SegmentSumSingleRowSegments) {
  // Identity when every segment has exactly one row.
  Rng rng(9);
  Tensor src = Tensor::Normal(6, 3, 1.0f, rng);
  std::vector<int64_t> offsets = {0, 1, 2, 3, 4, 5, 6};
  Tensor out = SegmentSum(src, offsets);
  for (int64_t i = 0; i < src.size(); ++i) {
    EXPECT_FLOAT_EQ(out.data()[i], src.data()[i]);
  }
}

// ---------------------------------------------------------------------------
// Bitwise determinism of the parallel kernels: chunk boundaries and reduction
// order depend only on tensor shapes, so a null context and pools of 1, 2, and
// 8 workers must produce identical bits (not just close values).
// ---------------------------------------------------------------------------

// Runs `kernel(ctx)` serially and on 1/2/8-worker pools; every result must be
// byte-identical to the serial one.
void ExpectBitwiseIdenticalAcrossPools(
    const std::function<Tensor(const ComputeContext*)>& kernel) {
  const Tensor serial = kernel(nullptr);
  for (size_t workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    ComputeContext ctx;
    ctx.pool = &pool;
    const Tensor parallel = kernel(&ctx);
    ASSERT_EQ(parallel.rows(), serial.rows());
    ASSERT_EQ(parallel.cols(), serial.cols());
    ASSERT_EQ(std::memcmp(parallel.data(), serial.data(),
                          static_cast<size_t>(serial.size()) * sizeof(float)),
              0)
        << "kernel diverged with " << workers << " workers";
  }
}

TEST(OpsDeterminism, MatmulAcrossPools) {
  // > kComputeGrainRows rows so several chunks are in play.
  Rng rng(21);
  Tensor a = Tensor::Normal(300, 40, 1.0f, rng);
  Tensor b = Tensor::Normal(40, 30, 1.0f, rng);
  ExpectBitwiseIdenticalAcrossPools([&](const ComputeContext* ctx) {
    return Matmul(a, b, ctx);
  });
}

TEST(OpsDeterminism, MatmulTransAAcrossPools) {
  Rng rng(22);
  Tensor a = Tensor::Normal(150, 200, 1.0f, rng);  // 200 output rows -> 4 chunks
  Tensor b = Tensor::Normal(150, 20, 1.0f, rng);
  ExpectBitwiseIdenticalAcrossPools([&](const ComputeContext* ctx) {
    return MatmulTransA(a, b, ctx);
  });
}

TEST(OpsDeterminism, MatmulTransBAcrossPools) {
  Rng rng(23);
  Tensor a = Tensor::Normal(300, 40, 1.0f, rng);
  Tensor b = Tensor::Normal(25, 40, 1.0f, rng);
  ExpectBitwiseIdenticalAcrossPools([&](const ComputeContext* ctx) {
    return MatmulTransB(a, b, ctx);
  });
}

TEST(OpsDeterminism, SumRowsOrderedReductionAcrossPools) {
  // SumRows folds per-chunk partials in ascending chunk order; with 5 chunks the
  // float sum order is fixed, so every pool size must reproduce the same bits.
  Rng rng(24);
  Tensor t = Tensor::Normal(300, 17, 1.0f, rng);
  ExpectBitwiseIdenticalAcrossPools([&](const ComputeContext* ctx) {
    return SumRows(t, ctx);
  });
}

TEST(OpsDeterminism, ElementwiseAcrossPools) {
  Rng rng(25);
  Tensor a = Tensor::Normal(123, 97, 1.0f, rng);  // 11931 elems -> 2 elem chunks
  Tensor b = Tensor::Normal(123, 97, 1.0f, rng);
  ExpectBitwiseIdenticalAcrossPools([&](const ComputeContext* ctx) {
    Tensor out = Hadamard(a, b, ctx);
    AddInPlace(out, a, ctx);
    Axpy(out, b, 0.25f, ctx);
    Scale(out, 1.75f, ctx);
    Tensor r = Relu(out, ctx);
    Tensor g = ReluBackward(r, out, ctx);
    Tensor th = Tanh(out, ctx);
    AddInPlace(g, TanhBackward(th, out, ctx), ctx);
    return g;
  });
}

TEST(OpsDeterminism, SegmentOpsAcrossPools) {
  Rng rng(26);
  std::vector<int64_t> offsets = {0};
  for (int64_t s = 0; s < 200; ++s) {  // 200 segments -> 4 segment chunks
    offsets.push_back(offsets.back() + static_cast<int64_t>(rng.UniformInt(5)));
  }
  Tensor src = Tensor::Normal(offsets.back(), 13, 1.0f, rng);
  Tensor grad = Tensor::Normal(200, 13, 1.0f, rng);
  ExpectBitwiseIdenticalAcrossPools([&](const ComputeContext* ctx) {
    Tensor out = SegmentSum(src, offsets, ctx);
    AddInPlace(out, SegmentMean(src, offsets, ctx), ctx);
    Tensor back = SegmentSumBackward(grad, offsets, ctx);
    AddInPlace(back, SegmentMeanBackward(grad, offsets, ctx), ctx);
    Tensor flat_out(1, out.size(), std::vector<float>(out.data(), out.data() + out.size()));
    Tensor flat_back(1, back.size(),
                     std::vector<float>(back.data(), back.data() + back.size()));
    Tensor joined(2, std::max(out.size(), back.size()));
    for (int64_t i = 0; i < out.size(); ++i) {
      joined(0, i % joined.cols()) += flat_out.data()[i];
    }
    for (int64_t i = 0; i < back.size(); ++i) {
      joined(1, i % joined.cols()) += flat_back.data()[i];
    }
    return joined;
  });
}

TEST(OpsDeterminism, SegmentSoftmaxAcrossPools) {
  Rng rng(27);
  std::vector<int64_t> offsets = {0};
  for (int64_t s = 0; s < 150; ++s) {
    offsets.push_back(offsets.back() + 1 + static_cast<int64_t>(rng.UniformInt(4)));
  }
  Tensor scores = Tensor::Normal(offsets.back(), 1, 2.0f, rng);
  Tensor grad = Tensor::Normal(offsets.back(), 1, 1.0f, rng);
  ExpectBitwiseIdenticalAcrossPools([&](const ComputeContext* ctx) {
    Tensor probs = scores;
    SegmentSoftmaxInPlace(probs, offsets, ctx);
    Tensor back = SegmentSoftmaxBackward(probs, grad, offsets, ctx);
    AddInPlace(back, probs, ctx);
    return back;
  });
}

TEST(OpsDeterminism, SoftmaxCrossEntropyAcrossPools) {
  Rng rng(28);
  Tensor logits = Tensor::Normal(200, 11, 1.0f, rng);  // 4 row chunks
  std::vector<int64_t> labels(200);
  for (auto& y : labels) {
    y = static_cast<int64_t>(rng.UniformInt(11));
  }
  float serial_loss = 0.0f;
  ExpectBitwiseIdenticalAcrossPools([&](const ComputeContext* ctx) {
    Tensor dlogits;
    const float loss = SoftmaxCrossEntropy(logits, labels, &dlogits, ctx);
    if (ctx == nullptr) {
      serial_loss = loss;
    } else {
      EXPECT_EQ(loss, serial_loss);  // loss scalar must match bitwise too
    }
    return dlogits;
  });
}

// ScatterAddRows is a scatter-reduce: duplicate indices are the adversarial case
// because every duplicate is a read-modify-write collision a naive parallel scatter
// would race on. The chunked kernel accumulates compact per-chunk partials and folds
// them in ascending chunk order, so every pool size must reproduce the null-context
// bits exactly.
void ExpectScatterBitwiseAcrossPools(const std::vector<int64_t>& indices,
                                     int64_t dst_rows) {
  Rng rng(31);
  Tensor src = Tensor::Normal(static_cast<int64_t>(indices.size()), 9, 1.0f, rng);
  Tensor base = Tensor::Normal(dst_rows, 9, 0.5f, rng);
  ExpectBitwiseIdenticalAcrossPools([&](const ComputeContext* ctx) {
    Tensor dst = base;
    ScatterAddRows(dst, indices, src, ctx);
    return dst;
  });
}

TEST(OpsDeterminism, ScatterAddRowsAllSameIndexAcrossPools) {
  // Worst case: every row collides on one destination (2000 rows -> 4 chunks at
  // the scatter grain, all feeding dst row 3).
  std::vector<int64_t> indices(2000, 3);
  ExpectScatterBitwiseAcrossPools(indices, 8);
}

TEST(OpsDeterminism, ScatterAddRowsInterleavedAcrossPools) {
  // Round-robin duplicates: every destination row is touched by every chunk.
  std::vector<int64_t> indices(2000);
  for (size_t i = 0; i < indices.size(); ++i) {
    indices[i] = static_cast<int64_t>(i % 7);
  }
  ExpectScatterBitwiseAcrossPools(indices, 7);
}

TEST(OpsDeterminism, ScatterAddRowsRandomDuplicatesAcrossPools) {
  Rng rng(32);
  std::vector<int64_t> indices(3000);
  for (auto& v : indices) {
    v = static_cast<int64_t>(rng.UniformInt(40));
  }
  ExpectScatterBitwiseAcrossPools(indices, 40);
}

TEST(OpsDeterminism, ScatterAddRowsEmptyAcrossPools) {
  ExpectScatterBitwiseAcrossPools({}, 5);
}

TEST(Ops, ScatterAddRowsAllSameIndexExactSum) {
  // 2000 ones into one row sums exactly in float: the chunked partial fold must
  // lose nothing even when every row collides.
  std::vector<int64_t> indices(2000, 1);
  Tensor src = Tensor::Full(2000, 3, 1.0f);
  Tensor dst(4, 3);
  ThreadPool pool(8);
  ComputeContext ctx;
  ctx.pool = &pool;
  ScatterAddRows(dst, indices, src, &ctx);
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_FLOAT_EQ(dst(1, c), 2000.0f);
    EXPECT_FLOAT_EQ(dst(0, c), 0.0f);
  }
}

TEST(OpsDeterminism, GatherNormalizeAcrossPools) {
  Rng rng(29);
  Tensor table = Tensor::Normal(500, 19, 1.0f, rng);
  std::vector<int64_t> idx(300);
  for (auto& v : idx) {
    v = static_cast<int64_t>(rng.UniformInt(500));
  }
  Tensor bias = Tensor::Normal(1, 19, 1.0f, rng);
  ExpectBitwiseIdenticalAcrossPools([&](const ComputeContext* ctx) {
    Tensor out = IndexSelect(table, idx, ctx);
    AddBiasRows(out, bias, ctx);
    RowL2NormalizeInPlace(out, ctx);
    Tensor sm = RowSoftmax(out, ctx);
    AddInPlace(out, sm, ctx);
    return out;
  });
}

}  // namespace
}  // namespace mariusgnn
