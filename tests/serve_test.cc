// Serving-tier tests: the batched concurrent path must answer bitwise-
// identically to serial single-query evaluation (the determinism contract of
// src/serve/server.h), hot snapshot swaps must never drop a request or mix
// epochs within one answer, disk-backed LRU serving must match memory-backed
// serving bit for bit, and unpadded format-v1 checkpoints must stay servable.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/checkpoint.h"
#include "src/core/link_prediction_trainer.h"
#include "src/core/node_classification_trainer.h"
#include "src/data/datasets.h"
#include "src/serve/server.h"
#include "src/util/binary_io.h"

namespace mariusgnn {
namespace {

TrainingConfig SmallLpConfig() {
  TrainingConfig config;
  config.fanouts = {5};
  config.dims = {16, 16};
  config.batch_size = 512;
  config.num_negatives = 32;
  config.pipeline.enabled = false;
  config.pipeline.parallel_compute = false;
  return config;
}

TrainingConfig SmallNcConfig() {
  TrainingConfig config;
  config.fanouts = {10, 5};
  config.dims = {64, 32, 32};
  config.batch_size = 256;
  config.pipeline.enabled = false;
  config.pipeline.parallel_compute = false;
  config.weight_lr = 0.05f;
  return config;
}

// Trains a small LP model and writes its checkpoint; returns the path.
std::string TrainLpCheckpoint(const Graph& g, const TrainingConfig& config,
                              int epochs, const char* tag) {
  LinkPredictionTrainer trainer(&g, config);
  for (int e = 0; e < epochs; ++e) {
    trainer.TrainEpoch();
  }
  const std::string path = TempPath(tag);
  trainer.SaveCheckpoint(path);
  return path;
}

// A few link queries spread over the node-id range, each scoring `fan`
// candidates (with a deliberate duplicate to exercise target dedup).
struct LinkQuery {
  int64_t src;
  int32_t rel;
  std::vector<int64_t> candidates;
};

std::vector<LinkQuery> MakeLinkQueries(const Graph& g, int count, int fan) {
  std::vector<LinkQuery> queries;
  for (int q = 0; q < count; ++q) {
    LinkQuery lq;
    lq.src = (static_cast<int64_t>(q) * 37 + 3) % g.num_nodes();
    lq.rel = static_cast<int32_t>(q % g.num_relations());
    for (int j = 0; j < fan; ++j) {
      lq.candidates.push_back((lq.src + 11 * (j + 1)) % g.num_nodes());
    }
    lq.candidates.push_back(lq.candidates.front());  // duplicate candidate
    lq.candidates.push_back(lq.src);                 // src as its own candidate
    queries.push_back(std::move(lq));
  }
  return queries;
}

void ExpectBitwiseEqual(const std::vector<float>& got,
                        const std::vector<float>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "value " << i;
  }
}

TEST(Serve, BatchedMatchesUnbatchedLinkPrediction) {
  Graph g = Fb15k237Like(0.05);
  TrainingConfig config = SmallLpConfig();
  const std::string path = TrainLpCheckpoint(g, config, 2, "mgnn_serve_lp");

  InferenceServer server(&g, TaskKind::kLinkPrediction, config.model_config(), {});
  std::string error;
  ASSERT_TRUE(server.LoadSnapshot(path, &error)) << error;
  EXPECT_EQ(server.current_epoch(), 2u);

  const std::vector<LinkQuery> queries = MakeLinkQueries(g, 24, 16);

  // Single-threaded: each ScoreLinks is a batch of one through the
  // block-diagonal merge path; the oracle runs the direct per-query forward.
  for (const LinkQuery& lq : queries) {
    const ServeResult got = server.ScoreLinks(lq.src, lq.rel, lq.candidates);
    const ServeResult want =
        server.ScoreLinksUnbatched(lq.src, lq.rel, lq.candidates);
    EXPECT_EQ(got.epoch, 2u);
    ExpectBitwiseEqual(got.values, want.values);
  }

  // Concurrent: the same queries from many client threads coalesce into larger
  // batches; every answer must still match the serial oracle bitwise.
  std::vector<ServeResult> results(queries.size());
  std::vector<std::thread> clients;
  for (size_t q = 0; q < queries.size(); ++q) {
    clients.emplace_back([&, q] {
      results[q] = server.ScoreLinks(queries[q].src, queries[q].rel,
                                     queries[q].candidates);
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  for (size_t q = 0; q < queries.size(); ++q) {
    const ServeResult want = server.ScoreLinksUnbatched(
        queries[q].src, queries[q].rel, queries[q].candidates);
    ExpectBitwiseEqual(results[q].values, want.values);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries, 2 * queries.size());
  EXPECT_GE(stats.max_coalesced, 1);
  std::remove(path.c_str());
}

TEST(Serve, BatchedMatchesUnbatchedNodeClassification) {
  Graph g = PapersMini(0.05);
  TrainingConfig config = SmallNcConfig();
  NodeClassificationTrainer trainer(&g, config);
  trainer.TrainEpoch();
  const std::string path = TempPath("mgnn_serve_nc");
  trainer.SaveCheckpoint(path);

  InferenceServer server(&g, TaskKind::kNodeClassification, config.model_config(), {});
  std::string error;
  ASSERT_TRUE(server.LoadSnapshot(path, &error)) << error;

  std::vector<int64_t> nodes(g.test_nodes().begin(),
                             g.test_nodes().begin() +
                                 std::min<size_t>(24, g.test_nodes().size()));
  for (int64_t node : nodes) {
    const ServeResult got = server.Classify(node);
    const ServeResult want = server.ClassifyUnbatched(node);
    EXPECT_EQ(got.epoch, 1u);
    ASSERT_EQ(static_cast<int64_t>(got.values.size()), g.num_classes());
    ExpectBitwiseEqual(got.values, want.values);
  }

  std::vector<ServeResult> results(nodes.size());
  std::vector<std::thread> clients;
  for (size_t q = 0; q < nodes.size(); ++q) {
    clients.emplace_back([&, q] { results[q] = server.Classify(nodes[q]); });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  for (size_t q = 0; q < nodes.size(); ++q) {
    ExpectBitwiseEqual(results[q].values,
                       server.ClassifyUnbatched(nodes[q]).values);
  }
  std::remove(path.c_str());
}

TEST(Serve, DecoderOnlyLinkPrediction) {
  Graph g = Fb15k237Like(0.05);
  TrainingConfig config = SmallLpConfig();
  config.fanouts = {};
  config.dims = {16};
  const std::string path = TrainLpCheckpoint(g, config, 1, "mgnn_serve_lp_dec");

  InferenceServer server(&g, TaskKind::kLinkPrediction, config.model_config(), {});
  std::string error;
  ASSERT_TRUE(server.LoadSnapshot(path, &error)) << error;
  for (const LinkQuery& lq : MakeLinkQueries(g, 8, 8)) {
    const ServeResult got = server.ScoreLinks(lq.src, lq.rel, lq.candidates);
    ExpectBitwiseEqual(
        got.values,
        server.ScoreLinksUnbatched(lq.src, lq.rel, lq.candidates).values);
  }
  std::remove(path.c_str());
}

TEST(Serve, LayerwiseModelServes) {
  Graph g = Fb15k237Like(0.05);
  TrainingConfig config = SmallLpConfig();
  config.sampler = SamplerKind::kLayerwise;
  const std::string path = TrainLpCheckpoint(g, config, 1, "mgnn_serve_lp_lw");

  InferenceServer server(&g, TaskKind::kLinkPrediction, config.model_config(), {});
  std::string error;
  ASSERT_TRUE(server.LoadSnapshot(path, &error)) << error;
  for (const LinkQuery& lq : MakeLinkQueries(g, 6, 8)) {
    const ServeResult got = server.ScoreLinks(lq.src, lq.rel, lq.candidates);
    ExpectBitwiseEqual(
        got.values,
        server.ScoreLinksUnbatched(lq.src, lq.rel, lq.candidates).values);
  }
  std::remove(path.c_str());
}

TEST(Serve, DiskBackedLruMatchesMemoryBacked) {
  Graph g = Fb15k237Like(0.05);
  TrainingConfig config = SmallLpConfig();
  const std::string path = TrainLpCheckpoint(g, config, 1, "mgnn_serve_lru");

  InferenceServer mem_server(&g, TaskKind::kLinkPrediction, config.model_config(), {});
  ServeOptions disk_options;
  disk_options.snapshot.disk_backed = true;
  disk_options.snapshot.cache_block_rows = 64;
  disk_options.snapshot.cache_capacity_blocks = 2;  // tiny: force evictions
  InferenceServer disk_server(&g, TaskKind::kLinkPrediction, config.model_config(),
                              disk_options);
  std::string error;
  ASSERT_TRUE(mem_server.LoadSnapshot(path, &error)) << error;
  ASSERT_TRUE(disk_server.LoadSnapshot(path, &error)) << error;

  for (const LinkQuery& lq : MakeLinkQueries(g, 32, 16)) {
    const ServeResult mem = mem_server.ScoreLinks(lq.src, lq.rel, lq.candidates);
    const ServeResult disk = disk_server.ScoreLinks(lq.src, lq.rel, lq.candidates);
    ExpectBitwiseEqual(disk.values, mem.values);
  }
  const ServerStats stats = disk_server.stats();
  EXPECT_GT(stats.cache.misses, 0u);
  EXPECT_GT(stats.cache.hits, 0u);
  EXPECT_GT(stats.cache.evictions, 0u);
  std::remove(path.c_str());
}

// Serializes a checkpoint in the pre-alignment v1 layout (tightly packed
// sections, version 1) — the files old runs left behind.
void WriteV1Checkpoint(const Checkpoint& ck, const std::string& path) {
  auto fnv = [](const std::vector<char>& b) {
    uint64_t h = 0xCBF29CE484222325ULL;
    for (char c : b) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001B3ULL;
    }
    return h;
  };
  auto put = [](std::vector<char>& b, const void* src, size_t len) {
    const char* p = static_cast<const char*>(src);
    b.insert(b.end(), p, p + len);
  };
  auto put_u32 = [&](std::vector<char>& b, uint32_t v) { put(b, &v, 4); };
  auto put_u64 = [&](std::vector<char>& b, uint64_t v) { put(b, &v, 8); };
  auto put_i64 = [&](std::vector<char>& b, int64_t v) { put(b, &v, 8); };
  auto put_str = [&](std::vector<char>& b, const std::string& s) {
    put_u32(b, static_cast<uint32_t>(s.size()));
    put(b, s.data(), s.size());
  };

  std::vector<char> manifest;
  put(manifest, ck.kind.data(), ck.kind.size());
  put_u64(manifest, ck.run_seed);
  put_u64(manifest, ck.epoch);
  for (uint64_t w : ck.rng_state) {
    put_u64(manifest, w);
  }
  put_u32(manifest, static_cast<uint32_t>(ck.scalars.size()));
  for (const auto& [name, value] : ck.scalars) {
    put_str(manifest, name);
    put_i64(manifest, value);
  }
  put_u32(manifest, static_cast<uint32_t>(ck.tensors.size()));
  std::vector<char> data;
  for (const auto& [name, t] : ck.tensors) {
    put_str(manifest, name);
    put_i64(manifest, t.rows());
    put_i64(manifest, t.cols());
    put_u64(manifest, data.size());  // tight v1 offsets, no padding
    put_u64(manifest, static_cast<uint64_t>(t.size()) * sizeof(float));
    if (t.size() > 0) {
      put(data, t.data(), static_cast<size_t>(t.size()) * sizeof(float));
    }
  }

  std::vector<char> file;
  put_u64(file, 0x4D474E4E43503031ULL);  // magic
  put_u32(file, 1);                      // version 1
  put_u32(file, static_cast<uint32_t>(ck.kind.size()));
  put_u64(file, manifest.size());
  put_u64(file, fnv(manifest));
  put_u64(file, data.size());
  put_u64(file, fnv(data));
  file.insert(file.end(), manifest.begin(), manifest.end());
  file.insert(file.end(), data.begin(), data.end());

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(file.data(), static_cast<std::streamsize>(file.size()));
}

TEST(Serve, ServesUnpaddedV1Checkpoints) {
  Graph g = Fb15k237Like(0.05);
  TrainingConfig config = SmallLpConfig();
  const std::string v2_path = TrainLpCheckpoint(g, config, 1, "mgnn_serve_v2");

  // Down-convert the real checkpoint to the v1 layout; the server must fall
  // back from mmap views to the owned-copy load and answer identically.
  Checkpoint ck;
  std::string error;
  ASSERT_TRUE(LoadCheckpoint(v2_path, &ck, &error)) << error;
  const std::string v1_path = TempPath("mgnn_serve_v1");
  WriteV1Checkpoint(ck, v1_path);

  InferenceServer v2_server(&g, TaskKind::kLinkPrediction, config.model_config(), {});
  InferenceServer v1_server(&g, TaskKind::kLinkPrediction, config.model_config(), {});
  ASSERT_TRUE(v2_server.LoadSnapshot(v2_path, &error)) << error;
  ASSERT_TRUE(v1_server.LoadSnapshot(v1_path, &error)) << error;

  for (const LinkQuery& lq : MakeLinkQueries(g, 8, 8)) {
    ExpectBitwiseEqual(
        v1_server.ScoreLinks(lq.src, lq.rel, lq.candidates).values,
        v2_server.ScoreLinks(lq.src, lq.rel, lq.candidates).values);
  }
  std::remove(v2_path.c_str());
  std::remove(v1_path.c_str());
}

TEST(Serve, LoadSnapshotRejectsMismatches) {
  Graph g = Fb15k237Like(0.05);
  TrainingConfig config = SmallLpConfig();
  const std::string path = TrainLpCheckpoint(g, config, 1, "mgnn_serve_rej");

  std::string error;
  InferenceServer server(&g, TaskKind::kLinkPrediction, config.model_config(), {});
  EXPECT_FALSE(server.LoadSnapshot(path + ".does_not_exist", &error));

  // A config with different dims must be rejected by section-shape validation.
  ModelConfig wrong = config.model_config();
  wrong.dims = {32, 32};
  InferenceServer wrong_server(&g, TaskKind::kLinkPrediction, wrong, {});
  EXPECT_FALSE(wrong_server.LoadSnapshot(path, &error));
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

// Hot swap under load: clients hammer the server while the main thread adopts
// a new epoch mid-stream. Every request must be answered (zero drops), every
// answer must carry exactly one epoch tag, and its values must match that
// epoch's serial oracle — no torn or mixed-epoch results. This test is the
// TSan gate for the serving tier.
TEST(Serve, HotSwapUnderLoad) {
  Graph g = Fb15k237Like(0.05);
  TrainingConfig config = SmallLpConfig();

  LinkPredictionTrainer trainer(&g, config);
  trainer.TrainEpoch();
  const std::string ck1 = TempPath("mgnn_serve_swap1");
  trainer.SaveCheckpoint(ck1);
  trainer.TrainEpoch();
  const std::string ck2 = TempPath("mgnn_serve_swap2");
  trainer.SaveCheckpoint(ck2);

  // Per-epoch oracles from single-snapshot servers.
  InferenceServer ref1(&g, TaskKind::kLinkPrediction, config.model_config(), {});
  InferenceServer ref2(&g, TaskKind::kLinkPrediction, config.model_config(), {});
  std::string error;
  ASSERT_TRUE(ref1.LoadSnapshot(ck1, &error)) << error;
  ASSERT_TRUE(ref2.LoadSnapshot(ck2, &error)) << error;

  InferenceServer server(&g, TaskKind::kLinkPrediction, config.model_config(), {});
  ASSERT_TRUE(server.LoadSnapshot(ck1, &error)) << error;

  const std::vector<LinkQuery> queries = MakeLinkQueries(g, 8, 8);
  constexpr int kClients = 8;
  constexpr int kRoundsPerClient = 12;
  std::vector<std::vector<ServeResult>> results(
      kClients, std::vector<ServeResult>(kRoundsPerClient));
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const LinkQuery& lq = queries[static_cast<size_t>(c) % queries.size()];
      for (int r = 0; r < kRoundsPerClient; ++r) {
        results[c][r] = server.ScoreLinks(lq.src, lq.rel, lq.candidates);
      }
    });
  }
  // Swap to epoch 2 while the clients are mid-flight.
  ASSERT_TRUE(server.LoadSnapshot(ck2, &error)) << error;
  for (std::thread& t : clients) {
    t.join();
  }

  for (int c = 0; c < kClients; ++c) {
    const LinkQuery& lq = queries[static_cast<size_t>(c) % queries.size()];
    const ServeResult want1 = ref1.ScoreLinksUnbatched(lq.src, lq.rel, lq.candidates);
    const ServeResult want2 = ref2.ScoreLinksUnbatched(lq.src, lq.rel, lq.candidates);
    for (int r = 0; r < kRoundsPerClient; ++r) {
      const ServeResult& got = results[c][r];
      ASSERT_TRUE(got.epoch == 1u || got.epoch == 2u) << "epoch " << got.epoch;
      ExpectBitwiseEqual(got.values,
                         got.epoch == 1u ? want1.values : want2.values);
    }
  }
  // Zero drops: every request produced a full candidate vector (checked above);
  // the server counted them all and performed exactly one swap.
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries, static_cast<uint64_t>(kClients) * kRoundsPerClient);
  EXPECT_EQ(stats.snapshot_swaps, 1u);
  EXPECT_EQ(server.current_epoch(), 2u);
  const LinkQuery& lq = queries.front();
  EXPECT_EQ(server.ScoreLinks(lq.src, lq.rel, lq.candidates).epoch, 2u);
  std::remove(ck1.c_str());
  std::remove(ck2.c_str());
}

}  // namespace
}  // namespace mariusgnn
