// Cross-module integration tests reproducing the paper's qualitative claims at test
// scale: DENSE vs layer-wise sampling cost, COMET vs BETA accuracy, disk vs memory
// consistency, and auto-tuned configurations running end to end.
#include <gtest/gtest.h>

#include "src/core/link_prediction_trainer.h"
#include "src/core/node_classification_trainer.h"
#include "src/data/datasets.h"
#include "src/policy/autotune.h"
#include "src/policy/beta.h"
#include "src/policy/bias.h"
#include "src/policy/comet.h"
#include "src/util/timer.h"

namespace mariusgnn {
namespace {

TEST(Integration, DenseSamplingFasterThanLayerwiseAtDepth) {
  // Table 6 shape: the sampling-time gap grows with GNN depth.
  Graph g = Fb15k237Like(0.3);
  NeighborIndex index(g);
  std::vector<int64_t> targets;
  for (int64_t v = 0; v < 256; ++v) {
    targets.push_back(v * 3);
  }
  const std::vector<int64_t> fanouts = {10, 10, 10};
  DenseSampler dense(&index, fanouts, EdgeDirection::kBoth, 1);
  LayerwiseSampler layerwise(&index, fanouts, EdgeDirection::kBoth, 1);

  // Warm up, then time several rounds.
  dense.Sample(targets);
  layerwise.Sample(targets);
  WallTimer t1;
  for (int i = 0; i < 5; ++i) {
    dense.Sample(targets);
  }
  const double dense_ms = t1.Millis();
  WallTimer t2;
  for (int i = 0; i < 5; ++i) {
    layerwise.Sample(targets);
  }
  const double layer_ms = t2.Millis();
  EXPECT_LT(dense_ms, layer_ms);
}

TEST(Integration, DiskTrainingApproachesInMemoryMrr) {
  // Table 8 shape: COMET disk-based MRR lands near in-memory MRR.
  Graph g = Fb15k237Like(0.05);
  TrainingConfig config;
  config.fanouts = {};
  config.dims = {16};
  config.batch_size = 512;
  config.num_negatives = 32;
  config.pipeline.enabled = false;

  LinkPredictionTrainer mem(&g, config);
  for (int e = 0; e < 6; ++e) {
    mem.TrainEpoch();
  }
  const double mem_mrr = mem.EvaluateMrr(100, 300);

  config.storage.use_disk = true;
  config.storage.num_physical = 8;
  config.storage.num_logical = 4;
  config.storage.buffer_capacity = 4;
  LinkPredictionTrainer disk(&g, config);
  for (int e = 0; e < 6; ++e) {
    disk.TrainEpoch();
  }
  const double disk_mrr = disk.EvaluateMrr(100, 300);
  EXPECT_GT(disk_mrr, 0.6 * mem_mrr);
}

TEST(Integration, CometBiasBelowBetaOverEpochs) {
  // Averaged over epochs (fresh random logical groupings), COMET keeps bias lower.
  Graph g = Fb15k237Like(0.15);
  Rng rng(3);
  Partitioning partitioning(g, 16, PartitionAssignment::kRandom, rng);
  CometPolicy comet(8);
  BetaPolicy beta;
  double comet_bias = 0.0, beta_bias = 0.0;
  for (int e = 0; e < 3; ++e) {
    comet_bias += EdgePermutationBias(comet.GenerateEpoch(partitioning, 8, rng),
                                      partitioning, g);
    beta_bias += EdgePermutationBias(beta.GenerateEpoch(partitioning, 8, rng),
                                     partitioning, g);
  }
  EXPECT_LT(comet_bias, beta_bias);
}

TEST(Integration, AutoTunedConfigRunsEndToEnd) {
  Graph g = Fb15k237Like(0.05);
  // Force a disk configuration by pretending CPU memory is tiny.
  AutoTuneInput input;
  input.num_nodes = g.num_nodes();
  input.num_edges = g.num_edges();
  input.dim = 16;
  input.cpu_bytes = static_cast<double>(g.num_nodes()) * 16 * 4 / 2 +
                    static_cast<double>(g.num_edges()) * 20;
  const AutoTuneResult tuned = AutoTune(input);
  ASSERT_FALSE(tuned.fits_in_memory);

  TrainingConfig config;
  config.fanouts = {};
  config.dims = {16};
  config.batch_size = 512;
  config.num_negatives = 16;
  config.pipeline.enabled = false;
  config.storage.use_disk = true;
  config.storage.num_physical = tuned.num_physical;
  config.storage.num_logical = tuned.num_logical;
  config.storage.buffer_capacity = tuned.buffer_capacity;
  LinkPredictionTrainer trainer(&g, config);
  const EpochStats first = trainer.TrainEpoch();
  const EpochStats second = trainer.TrainEpoch();
  EXPECT_LT(second.loss, first.loss);
}

TEST(Integration, PrefetchReducesReportedStalls) {
  Graph g = Fb15k237Like(0.05);
  TrainingConfig config;
  config.fanouts = {};
  config.dims = {16};
  config.batch_size = 256;
  config.num_negatives = 16;
  config.pipeline.enabled = false;
  config.storage.use_disk = true;
  config.storage.num_physical = 8;
  config.storage.num_logical = 4;
  config.storage.buffer_capacity = 4;

  config.storage.prefetch = true;
  LinkPredictionTrainer with(&g, config);
  const EpochStats s_with = with.TrainEpoch();

  config.storage.prefetch = false;
  LinkPredictionTrainer without(&g, config);
  const EpochStats s_without = without.TrainEpoch();

  EXPECT_LE(s_with.io_stall_seconds, s_without.io_stall_seconds + 1e-12);
}

TEST(Integration, GnnDiskNodeClassificationMatchesMemoryAccuracy) {
  // Table 3 shape: disk-based NC accuracy is within a small gap of in-memory.
  Graph g = PapersMini(0.06);
  TrainingConfig config;
  config.fanouts = {10, 5};
  config.dims = {64, 32, 32};
  config.batch_size = 256;
  config.pipeline.enabled = false;
  config.weight_lr = 0.05f;

  NodeClassificationTrainer mem(&g, config);
  for (int e = 0; e < 4; ++e) {
    mem.TrainEpoch();
  }
  const double mem_acc = mem.EvaluateTestAccuracy();

  config.storage.use_disk = true;
  config.storage.num_physical = 16;
  config.storage.buffer_capacity = 8;
  NodeClassificationTrainer disk(&g, config);
  for (int e = 0; e < 4; ++e) {
    disk.TrainEpoch();
  }
  const double disk_acc = disk.EvaluateTestAccuracy();
  EXPECT_GT(mem_acc, 0.2);
  EXPECT_GT(disk_acc, mem_acc - 0.15);
}

}  // namespace
}  // namespace mariusgnn
