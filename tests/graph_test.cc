// Tests for graph representation, the dual-sorted neighbor index, and partitioning.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "src/data/datasets.h"
#include "src/graph/graph.h"
#include "src/graph/neighbor_index.h"
#include "src/graph/partition.h"

namespace mariusgnn {
namespace {

Graph TinyGraph() {
  // The Figure 1/3 input graph: A=0, B=1, C=2, D=3, E=4, F=5.
  // Edges (incoming neighborhoods used by the paper example):
  //   C->A, D->A, A->B, B? ... Construct: B,C -> A is wrong; paper: one-hop incoming
  //   of A is {C, D}; of B is {C, E}; of C is {E}; of D is {C}.
  std::vector<Edge> edges = {
      {2, 0, 0},  // C->A
      {3, 0, 0},  // D->A
      {2, 1, 0},  // C->B
      {4, 1, 0},  // E->B
      {4, 2, 0},  // E->C
      {2, 3, 0},  // C->D
      {5, 2, 0},  // F->C (extra)
  };
  return Graph(6, std::move(edges));
}

TEST(Graph, Degrees) {
  Graph g = TinyGraph();
  EXPECT_EQ(g.num_nodes(), 6);
  EXPECT_EQ(g.num_edges(), 7);
  EXPECT_EQ(g.InDegrees()[0], 2);
  EXPECT_EQ(g.InDegrees()[2], 2);
  EXPECT_EQ(g.OutDegrees()[2], 3);
  EXPECT_EQ(g.OutDegrees()[0], 0);
  auto total = g.TotalDegrees();
  EXPECT_EQ(total[2], 5);
}

TEST(NeighborIndex, DegreesMatchGraph) {
  Graph g = TinyGraph();
  NeighborIndex index(g);
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(index.OutDegree(v), g.OutDegrees()[static_cast<size_t>(v)]);
    EXPECT_EQ(index.InDegree(v), g.InDegrees()[static_cast<size_t>(v)]);
  }
}

TEST(NeighborIndex, AllNeighborsIncoming) {
  Graph g = TinyGraph();
  NeighborIndex index(g);
  auto nbrs = index.AllNeighbors(0, EdgeDirection::kIncoming);
  std::set<int64_t> ids;
  for (const auto& n : nbrs) {
    ids.insert(n.node);
  }
  EXPECT_EQ(ids, (std::set<int64_t>{2, 3}));
}

TEST(NeighborIndex, AllNeighborsOutgoing) {
  Graph g = TinyGraph();
  NeighborIndex index(g);
  auto nbrs = index.AllNeighbors(2, EdgeDirection::kOutgoing);
  std::set<int64_t> ids;
  for (const auto& n : nbrs) {
    ids.insert(n.node);
  }
  EXPECT_EQ(ids, (std::set<int64_t>{0, 1, 3}));
}

TEST(NeighborIndex, SampleRespectsFanout) {
  Graph g = TinyGraph();
  NeighborIndex index(g);
  Rng rng(1);
  std::vector<Neighbor> out;
  const int64_t count = index.SampleOneHop(2, 2, EdgeDirection::kOutgoing, rng, out);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(out.size(), 2u);
  // Sampled without replacement: distinct.
  EXPECT_NE(out[0].node, out[1].node);
}

TEST(NeighborIndex, SampleAllWhenFanoutExceedsDegree) {
  Graph g = TinyGraph();
  NeighborIndex index(g);
  Rng rng(1);
  std::vector<Neighbor> out;
  const int64_t count = index.SampleOneHop(0, 10, EdgeDirection::kIncoming, rng, out);
  EXPECT_EQ(count, 2);
}

TEST(NeighborIndex, BothDirectionsCombines) {
  Graph g = TinyGraph();
  NeighborIndex index(g);
  Rng rng(1);
  std::vector<Neighbor> out;
  const int64_t count = index.SampleOneHop(2, 10, EdgeDirection::kBoth, rng, out);
  EXPECT_EQ(count, 5);  // 3 outgoing + 2 incoming
}

TEST(NeighborIndex, SampleCoversAllNeighborsEventually) {
  Graph g = TinyGraph();
  NeighborIndex index(g);
  Rng rng(3);
  std::set<int64_t> seen;
  for (int t = 0; t < 200; ++t) {
    std::vector<Neighbor> out;
    index.SampleOneHop(2, 1, EdgeDirection::kOutgoing, rng, out);
    seen.insert(out[0].node);
  }
  EXPECT_EQ(seen, (std::set<int64_t>{0, 1, 3}));
}

TEST(NeighborIndex, PreservesRelations) {
  std::vector<Edge> edges = {{0, 1, 7}, {0, 2, 9}};
  Graph g(3, std::move(edges), 10);
  NeighborIndex index(g);
  auto nbrs = index.AllNeighbors(0, EdgeDirection::kOutgoing);
  ASSERT_EQ(nbrs.size(), 2u);
  for (const auto& n : nbrs) {
    EXPECT_EQ(n.rel, n.node == 1 ? 7 : 9);
  }
}

TEST(Partitioning, CoversAllNodesOnce) {
  Graph g = LiveJournalMini(0.02);
  Rng rng(1);
  Partitioning part(g, 8, PartitionAssignment::kRandom, rng);
  std::unordered_set<int64_t> seen;
  int64_t total = 0;
  for (int32_t i = 0; i < 8; ++i) {
    total += part.PartitionSize(i);
    for (int64_t v : part.NodesIn(i)) {
      EXPECT_TRUE(seen.insert(v).second);
      EXPECT_EQ(part.PartitionOf(v), i);
    }
  }
  EXPECT_EQ(total, g.num_nodes());
}

TEST(Partitioning, NearEqualSizes) {
  Graph g = LiveJournalMini(0.02);
  Rng rng(2);
  Partitioning part(g, 7, PartitionAssignment::kRandom, rng);
  int64_t min_size = g.num_nodes(), max_size = 0;
  for (int32_t i = 0; i < 7; ++i) {
    min_size = std::min(min_size, part.PartitionSize(i));
    max_size = std::max(max_size, part.PartitionSize(i));
  }
  EXPECT_LE(max_size - min_size, 1);
}

TEST(Partitioning, LocalIndexConsistent) {
  Graph g = LiveJournalMini(0.02);
  Rng rng(3);
  Partitioning part(g, 5, PartitionAssignment::kRandom, rng);
  for (int32_t i = 0; i < 5; ++i) {
    const auto& nodes = part.NodesIn(i);
    for (size_t k = 0; k < nodes.size(); ++k) {
      EXPECT_EQ(part.LocalIndexOf(nodes[k]), static_cast<int64_t>(k));
    }
  }
}

TEST(Partitioning, BucketsPartitionEdges) {
  Graph g = LiveJournalMini(0.02);
  Rng rng(4);
  Partitioning part(g, 6, PartitionAssignment::kRandom, rng);
  int64_t total = 0;
  for (int32_t i = 0; i < 6; ++i) {
    for (int32_t j = 0; j < 6; ++j) {
      for (int64_t e : part.Bucket(i, j)) {
        const Edge& edge = g.edge(e);
        EXPECT_EQ(part.PartitionOf(edge.src), i);
        EXPECT_EQ(part.PartitionOf(edge.dst), j);
      }
      total += part.BucketSize(i, j);
    }
  }
  EXPECT_EQ(total, g.num_edges());
  EXPECT_EQ(part.TotalEdges(), g.num_edges());
}

TEST(NeighborIndex, SubgraphIndexRestrictsSampling) {
  // The disk path builds an index over only the resident buckets; sampled neighbors
  // must stay inside the subgraph's edge set.
  Graph g = Fb15k237Like(0.05);
  Rng prng(6);
  Partitioning part(g, 4, PartitionAssignment::kRandom, prng);
  // Resident = partitions {0, 1}: edges among them only.
  std::vector<Edge> resident;
  std::unordered_set<int64_t> resident_nodes;
  for (int32_t a : {0, 1}) {
    for (int64_t v : part.NodesIn(a)) {
      resident_nodes.insert(v);
    }
    for (int32_t b : {0, 1}) {
      for (int64_t e : part.Bucket(a, b)) {
        resident.push_back(g.edge(e));
      }
    }
  }
  NeighborIndex index(g.num_nodes(), resident);
  Rng rng(7);
  std::vector<Neighbor> out;
  for (int64_t v : part.NodesIn(0)) {
    out.clear();
    index.SampleOneHop(v, 10, EdgeDirection::kBoth, rng, out);
    for (const Neighbor& n : out) {
      EXPECT_TRUE(resident_nodes.count(n.node) == 1)
          << "sampled neighbor outside the resident subgraph";
    }
  }
}

TEST(NeighborIndex, GraphWithNoEdges) {
  Graph g(5, {});
  NeighborIndex index(g);
  Rng rng(1);
  std::vector<Neighbor> out;
  EXPECT_EQ(index.SampleOneHop(3, 4, EdgeDirection::kBoth, rng, out), 0);
  EXPECT_TRUE(out.empty());
}

TEST(Partitioning, SinglePartitionHoldsEverything) {
  Graph g = Fb15k237Like(0.02);
  Rng rng(8);
  Partitioning part(g, 1, PartitionAssignment::kRandom, rng);
  EXPECT_EQ(part.PartitionSize(0), g.num_nodes());
  EXPECT_EQ(part.BucketSize(0, 0), g.num_edges());
}

TEST(Partitioning, TrainingNodesFirstPacksTrainNodes) {
  Graph g = PapersMini(0.05);
  Rng rng(5);
  const int32_t p = 16;
  Partitioning part(g, p, PartitionAssignment::kTrainingNodesFirst, rng);
  const int32_t k = part.num_training_partitions();
  EXPECT_GT(k, 0);
  EXPECT_LT(k, p);
  // Every training node lives in partitions [0, k).
  for (int64_t v : g.train_nodes()) {
    EXPECT_LT(part.PartitionOf(v), k);
  }
}

}  // namespace
}  // namespace mariusgnn
