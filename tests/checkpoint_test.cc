// Checkpoint/restore tests: format round-trip, rejection of every corruption
// class (truncation, bad checksums, version mismatch, mid-save crash debris),
// and a real kill-and-resume run (fork + _exit between epochs) that must
// continue bitwise-identically to an uninterrupted run.
//
// The kill-and-resume test forks, so every trainer in this file runs fully
// serial (no pipeline workers, no parallel compute, no async IO): the child
// must not inherit a half-initialised thread pool. Determinism makes the
// serial trajectories identical to the pipelined ones anyway.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/checkpoint.h"
#include "src/core/link_prediction_trainer.h"
#include "src/core/node_classification_trainer.h"
#include "src/data/datasets.h"
#include "src/util/binary_io.h"

namespace mariusgnn {
namespace {

Checkpoint SampleCheckpoint() {
  Checkpoint ck;
  ck.kind = "link_prediction";
  ck.run_seed = 7;
  ck.epoch = 3;
  for (int i = 0; i < 4; ++i) {
    ck.rng_state[i] = 0x1111111111111111ULL * (i + 1);
  }
  ck.scalars.emplace_back("controller_workers", 2);
  Tensor a(3, 4);
  for (int64_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(i) * 0.5f;
  }
  ck.tensors.emplace_back("param0.value", a);
  ck.tensors.emplace_back("param0.state", Tensor(3, 4));
  ck.tensors.emplace_back("empty.state", Tensor());  // never-stepped accumulator
  return ck;
}

std::vector<char> Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void Dump(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Checkpoint, RoundTripPreservesEverything) {
  const std::string path = TempPath("mgnn_ckpt_roundtrip");
  const Checkpoint saved = SampleCheckpoint();
  SaveCheckpoint(saved, path);

  Checkpoint loaded;
  std::string error;
  ASSERT_TRUE(LoadCheckpoint(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.kind, saved.kind);
  EXPECT_EQ(loaded.run_seed, saved.run_seed);
  EXPECT_EQ(loaded.epoch, saved.epoch);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(loaded.rng_state[i], saved.rng_state[i]);
  }
  EXPECT_EQ(loaded.scalar("controller_workers", -1), 2);
  EXPECT_EQ(loaded.scalar("absent", -1), -1);
  ASSERT_EQ(loaded.tensors.size(), saved.tensors.size());
  const Tensor& a = loaded.tensor("param0.value");
  ASSERT_EQ(a.rows(), 3);
  ASSERT_EQ(a.cols(), 4);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i], saved.tensor("param0.value").data()[i]);
  }
  EXPECT_TRUE(loaded.tensor("empty.state").empty());
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileRejectedWithClearError) {
  Checkpoint ck;
  std::string error;
  EXPECT_FALSE(LoadCheckpoint(TempPath("mgnn_ckpt_nonexistent"), &ck, &error));
  EXPECT_NE(error.find("cannot open checkpoint"), std::string::npos) << error;
}

TEST(Checkpoint, TruncatedPreambleRejected) {
  const std::string path = TempPath("mgnn_ckpt_trunc_preamble");
  SaveCheckpoint(SampleCheckpoint(), path);
  std::vector<char> bytes = Slurp(path);
  bytes.resize(20);  // mid-preamble
  Dump(path, bytes);
  Checkpoint ck;
  std::string error;
  EXPECT_FALSE(LoadCheckpoint(path, &ck, &error));
  EXPECT_NE(error.find("shorter than the preamble"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncatedManifestRejected) {
  const std::string path = TempPath("mgnn_ckpt_trunc_manifest");
  SaveCheckpoint(SampleCheckpoint(), path);
  std::vector<char> bytes = Slurp(path);
  bytes.resize(48 + 10);  // preamble plus a sliver of manifest
  Dump(path, bytes);
  Checkpoint ck;
  std::string error;
  EXPECT_FALSE(LoadCheckpoint(path, &ck, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(Checkpoint, ManifestChecksumMismatchRejected) {
  const std::string path = TempPath("mgnn_ckpt_bad_manifest");
  SaveCheckpoint(SampleCheckpoint(), path);
  std::vector<char> bytes = Slurp(path);
  bytes[50] ^= 0x40;  // inside the manifest blob
  Dump(path, bytes);
  Checkpoint ck;
  std::string error;
  EXPECT_FALSE(LoadCheckpoint(path, &ck, &error));
  EXPECT_NE(error.find("manifest checksum"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(Checkpoint, DataChecksumMismatchRejected) {
  const std::string path = TempPath("mgnn_ckpt_bad_data");
  SaveCheckpoint(SampleCheckpoint(), path);
  std::vector<char> bytes = Slurp(path);
  bytes[bytes.size() - 3] ^= 0x01;  // inside the tensor payload
  Dump(path, bytes);
  Checkpoint ck;
  std::string error;
  EXPECT_FALSE(LoadCheckpoint(path, &ck, &error));
  EXPECT_NE(error.find("data checksum"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(Checkpoint, VersionMismatchRejected) {
  const std::string path = TempPath("mgnn_ckpt_bad_version");
  SaveCheckpoint(SampleCheckpoint(), path);
  std::vector<char> bytes = Slurp(path);
  bytes[8] = static_cast<char>(kCheckpointFormatVersion + 1);  // version u32
  Dump(path, bytes);
  Checkpoint ck;
  std::string error;
  EXPECT_FALSE(LoadCheckpoint(path, &ck, &error));
  EXPECT_NE(error.find("unsupported checkpoint format version"), std::string::npos)
      << error;
  std::remove(path.c_str());
}

TEST(Checkpoint, NotACheckpointFileRejected) {
  const std::string path = TempPath("mgnn_ckpt_garbage");
  Dump(path, std::vector<char>(256, 'x'));
  Checkpoint ck;
  std::string error;
  EXPECT_FALSE(LoadCheckpoint(path, &ck, &error));
  EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(Checkpoint, OverflowingTensorShapeRejected) {
  // A section header claiming rows*cols so large the byte count wraps to match
  // section_bytes must be rejected by the overflow-guarded geometry check, not
  // turned into a bogus Tensor. Craft the file from scratch with consistent
  // checksums so only the geometry check can catch it.
  auto fnv = [](const std::vector<char>& b) {
    uint64_t h = 0xCBF29CE484222325ULL;
    for (char c : b) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001B3ULL;
    }
    return h;
  };
  auto put = [](std::vector<char>& b, const void* src, size_t len) {
    const char* p = static_cast<const char*>(src);
    b.insert(b.end(), p, p + len);
  };
  auto put_u32 = [&](std::vector<char>& b, uint32_t v) { put(b, &v, 4); };
  auto put_u64 = [&](std::vector<char>& b, uint64_t v) { put(b, &v, 8); };
  auto put_i64 = [&](std::vector<char>& b, int64_t v) { put(b, &v, 8); };

  const std::string kind = "link_prediction";
  std::vector<char> manifest;
  put(manifest, kind.data(), kind.size());
  put_u64(manifest, 7);   // run_seed
  put_u64(manifest, 1);   // epoch
  for (int i = 0; i < 4; ++i) {
    put_u64(manifest, 0);  // rng words
  }
  put_u32(manifest, 0);  // num_scalars
  put_u32(manifest, 1);  // num_sections
  const std::string name = "param0.value";
  put_u32(manifest, static_cast<uint32_t>(name.size()));
  put(manifest, name.data(), name.size());
  put_i64(manifest, int64_t{1} << 62);  // rows: 2^62
  put_i64(manifest, 4);                 // cols: 2^62 * 4 * 4 bytes wraps to 0
  put_u64(manifest, 0);                 // data_offset
  put_u64(manifest, 0);                 // data_bytes (matches the wrapped product)

  std::vector<char> file;
  put_u64(file, 0x4D474E4E43503031ULL);  // magic
  put_u32(file, kCheckpointFormatVersion);
  put_u32(file, static_cast<uint32_t>(kind.size()));
  put_u64(file, manifest.size());
  put_u64(file, fnv(manifest));
  put_u64(file, 0);  // data_bytes
  put_u64(file, fnv({}));
  file.insert(file.end(), manifest.begin(), manifest.end());

  const std::string path = TempPath("mgnn_ckpt_overflow");
  Dump(path, file);
  Checkpoint ck;
  std::string error;
  EXPECT_FALSE(LoadCheckpoint(path, &ck, &error));
  EXPECT_NE(error.find("out of bounds"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(Checkpoint, V2SectionsAre4KiBAlignedInFile) {
  // Format v2 contract: every tensor payload sits on a 4 KiB file boundary so
  // the serving tier can mmap the checkpoint and hand out page-aligned views.
  const std::string path = TempPath("mgnn_ckpt_aligned");
  SaveCheckpoint(SampleCheckpoint(), path);
  CheckpointManifest m;
  std::string error;
  ASSERT_TRUE(ReadCheckpointManifest(path, &m, &error)) << error;
  EXPECT_EQ(m.version, kCheckpointFormatVersion);
  EXPECT_TRUE(m.aligned_sections);
  EXPECT_EQ(m.kind, "link_prediction");
  EXPECT_EQ(m.epoch, 3u);
  EXPECT_EQ(m.data_start % 4096, 0u);
  ASSERT_EQ(m.sections.size(), 3u);
  for (const CheckpointSectionInfo& s : m.sections) {
    EXPECT_EQ(s.file_offset % 4096, 0u) << s.name;
  }
  const CheckpointSectionInfo* value = m.FindSection("param0.value");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->rows, 3);
  EXPECT_EQ(value->cols, 4);
  EXPECT_EQ(value->bytes, 3u * 4u * sizeof(float));
  std::remove(path.c_str());
}

TEST(Checkpoint, ReadsUnpaddedV1Files) {
  // Files written before the alignment change (version 1, payloads packed flush
  // against the manifest and each other) must keep loading bit-exactly.
  auto fnv = [](const std::vector<char>& b) {
    uint64_t h = 0xCBF29CE484222325ULL;
    for (char c : b) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001B3ULL;
    }
    return h;
  };
  auto put = [](std::vector<char>& b, const void* src, size_t len) {
    const char* p = static_cast<const char*>(src);
    b.insert(b.end(), p, p + len);
  };
  auto put_u32 = [&](std::vector<char>& b, uint32_t v) { put(b, &v, 4); };
  auto put_u64 = [&](std::vector<char>& b, uint64_t v) { put(b, &v, 8); };
  auto put_i64 = [&](std::vector<char>& b, int64_t v) { put(b, &v, 8); };
  auto put_str = [&](std::vector<char>& b, const std::string& s) {
    put_u32(b, static_cast<uint32_t>(s.size()));
    put(b, s.data(), s.size());
  };

  const Checkpoint want = SampleCheckpoint();
  std::vector<char> manifest;
  put(manifest, want.kind.data(), want.kind.size());
  put_u64(manifest, want.run_seed);
  put_u64(manifest, want.epoch);
  for (uint64_t w : want.rng_state) {
    put_u64(manifest, w);
  }
  put_u32(manifest, static_cast<uint32_t>(want.scalars.size()));
  for (const auto& [name, value] : want.scalars) {
    put_str(manifest, name);
    put_i64(manifest, value);
  }
  put_u32(manifest, static_cast<uint32_t>(want.tensors.size()));
  std::vector<char> data;
  for (const auto& [name, t] : want.tensors) {
    put_str(manifest, name);
    put_i64(manifest, t.rows());
    put_i64(manifest, t.cols());
    put_u64(manifest, data.size());  // tight v1 offsets, no padding
    put_u64(manifest, static_cast<uint64_t>(t.size()) * sizeof(float));
    if (t.size() > 0) {
      put(data, t.data(), static_cast<size_t>(t.size()) * sizeof(float));
    }
  }

  std::vector<char> file;
  put_u64(file, 0x4D474E4E43503031ULL);  // magic
  put_u32(file, 1);                      // version 1
  put_u32(file, static_cast<uint32_t>(want.kind.size()));
  put_u64(file, manifest.size());
  put_u64(file, fnv(manifest));
  put_u64(file, data.size());
  put_u64(file, fnv(data));
  file.insert(file.end(), manifest.begin(), manifest.end());
  file.insert(file.end(), data.begin(), data.end());

  const std::string path = TempPath("mgnn_ckpt_v1");
  Dump(path, file);

  Checkpoint ck;
  std::string error;
  ASSERT_TRUE(LoadCheckpoint(path, &ck, &error)) << error;
  EXPECT_EQ(ck.kind, want.kind);
  EXPECT_EQ(ck.epoch, want.epoch);
  ASSERT_EQ(ck.tensors.size(), want.tensors.size());
  for (size_t i = 0; i < want.tensors.size(); ++i) {
    EXPECT_EQ(ck.tensors[i].first, want.tensors[i].first);
    ASSERT_EQ(ck.tensors[i].second.size(), want.tensors[i].second.size());
    for (int64_t j = 0; j < want.tensors[i].second.size(); ++j) {
      EXPECT_EQ(ck.tensors[i].second.data()[j], want.tensors[i].second.data()[j]);
    }
  }

  CheckpointManifest m;
  ASSERT_TRUE(ReadCheckpointManifest(path, &m, &error)) << error;
  EXPECT_EQ(m.version, 1u);
  EXPECT_FALSE(m.aligned_sections);
  std::remove(path.c_str());
}

TEST(Checkpoint, MidSaveCrashLeavesPreviousCheckpointIntact) {
  // A crash between the tmp-file write and the rename leaves a stale
  // `<path>.tmp`; the committed checkpoint must be untouched by it, and the
  // stale tmp must never be picked up by a load.
  const std::string path = TempPath("mgnn_ckpt_midsave");
  Checkpoint first = SampleCheckpoint();
  first.epoch = 1;
  SaveCheckpoint(first, path);

  // Simulate the interrupted second save: a complete (even valid!) image parked
  // at the tmp path that never got renamed.
  Checkpoint second = SampleCheckpoint();
  second.epoch = 2;
  const std::string scratch = TempPath("mgnn_ckpt_midsave_scratch");
  SaveCheckpoint(second, scratch);
  Dump(path + ".tmp", Slurp(scratch));
  std::remove(scratch.c_str());

  Checkpoint loaded;
  std::string error;
  ASSERT_TRUE(LoadCheckpoint(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.epoch, 1u);  // the crash never surfaced a partial save

  // The next successful save replaces both the checkpoint and the stale tmp.
  second.epoch = 3;
  SaveCheckpoint(second, path);
  ASSERT_TRUE(LoadCheckpoint(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.epoch, 3u);
  std::remove(path.c_str());
}

TEST(Checkpoint, StaleTmpAloneIsNotACheckpoint) {
  // Crash on the very first save: only `<path>.tmp` exists. Resume must fail
  // cleanly (there never was a durable checkpoint), not read the tmp file.
  const std::string path = TempPath("mgnn_ckpt_firstsave");
  const std::string scratch = TempPath("mgnn_ckpt_firstsave_scratch");
  SaveCheckpoint(SampleCheckpoint(), scratch);
  Dump(path + ".tmp", Slurp(scratch));
  std::remove(scratch.c_str());
  Checkpoint ck;
  std::string error;
  EXPECT_FALSE(LoadCheckpoint(path, &ck, &error));
  EXPECT_NE(error.find("cannot open checkpoint"), std::string::npos) << error;
  std::remove((path + ".tmp").c_str());
}

// Fully serial disk-mode LP config (fork-safe: no threads anywhere) that
// exercises the deepest save path — the PartitionBuffer flush of embedding
// values + Adagrad state.
TrainingConfig SerialDiskLpConfig() {
  TrainingConfig config;
  config.fanouts = {5};
  config.dims = {16, 16};
  config.batch_size = 512;
  config.num_negatives = 32;
  config.pipeline.enabled = false;
  config.pipeline.parallel_compute = false;
  config.pipeline.adaptive_workers = false;
  config.storage.use_disk = true;
  config.storage.num_physical = 8;
  config.storage.num_logical = 4;
  config.storage.buffer_capacity = 4;
  config.storage.prefetch = false;  // no async IO thread
  return config;
}

TEST(CheckpointCrash, KillAndResumeProducesIdenticalTrajectory) {
  Graph g = Fb15k237Like(0.03);
  const TrainingConfig config = SerialDiskLpConfig();

  // Uninterrupted reference: 3 epochs + MRR.
  std::vector<double> want_losses;
  double want_mrr = 0.0;
  {
    LinkPredictionTrainer trainer(&g, config);
    for (int e = 0; e < 3; ++e) {
      want_losses.push_back(trainer.TrainEpoch().loss);
    }
    want_mrr = trainer.EvaluateMrr(50, 100);
  }

  // Child process: auto-checkpoint every epoch, die hard (_exit, no destructors,
  // no flushes beyond the checkpoint's own fsync) after epoch 2 — i.e. mid-run.
  const std::string ckpt = TempPath("mgnn_kill_resume_ckpt");
  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    TrainingConfig child_config = config;
    child_config.checkpoint.every_n_epochs = 1;
    child_config.checkpoint.path = ckpt;
    LinkPredictionTrainer trainer(&g, child_config);
    trainer.TrainEpoch();
    trainer.TrainEpoch();
    _exit(0);  // simulated crash: the trainer is never torn down
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);

  // Survivor: resume from the epoch-2 snapshot and finish the run. Epoch 3 and
  // the final MRR must be bitwise-identical to the uninterrupted run.
  LinkPredictionTrainer resumed(&g, config);
  resumed.ResumeFrom(ckpt);
  EXPECT_EQ(resumed.epochs_completed(), 2);
  const double resumed_epoch3 = resumed.TrainEpoch().loss;
  EXPECT_EQ(resumed_epoch3, want_losses[2]);
  EXPECT_EQ(resumed.EvaluateMrr(50, 100), want_mrr);
  std::remove(ckpt.c_str());
}

// Byte-exact reference for the pre-streaming save algorithm: serialize the
// manifest, materialize the whole data blob in memory (zero padding each
// section up to its 4 KiB-aligned offset), then lay the file out as
// preamble | manifest | zero gap | data blob. The streaming writer must
// produce bit-identical files — same format version, no reader changes.
void ReferenceMaterializedSave(const Checkpoint& ck, const std::string& path) {
  auto fnv = [](const std::vector<char>& b) {
    uint64_t h = 0xCBF29CE484222325ULL;
    for (char c : b) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001B3ULL;
    }
    return h;
  };
  auto align4k = [](uint64_t n) { return (n + 4095) & ~uint64_t{4095}; };
  auto put = [](std::vector<char>& b, const void* src, size_t len) {
    const char* p = static_cast<const char*>(src);
    b.insert(b.end(), p, p + len);
  };
  auto put_u32 = [&](std::vector<char>& b, uint32_t v) { put(b, &v, 4); };
  auto put_u64 = [&](std::vector<char>& b, uint64_t v) { put(b, &v, 8); };
  auto put_i64 = [&](std::vector<char>& b, int64_t v) { put(b, &v, 8); };
  auto put_str = [&](std::vector<char>& b, const std::string& s) {
    put_u32(b, static_cast<uint32_t>(s.size()));
    put(b, s.data(), s.size());
  };

  std::vector<char> manifest;
  put(manifest, ck.kind.data(), ck.kind.size());
  put_u64(manifest, ck.run_seed);
  put_u64(manifest, ck.epoch);
  for (uint64_t w : ck.rng_state) {
    put_u64(manifest, w);
  }
  put_u32(manifest, static_cast<uint32_t>(ck.scalars.size()));
  for (const auto& [name, value] : ck.scalars) {
    put_str(manifest, name);
    put_i64(manifest, value);
  }
  put_u32(manifest, static_cast<uint32_t>(ck.tensors.size()));
  std::vector<char> data;
  for (const auto& [name, t] : ck.tensors) {
    data.resize(align4k(data.size()));  // v2 alignment padding, zero-filled
    put_str(manifest, name);
    put_i64(manifest, t.rows());
    put_i64(manifest, t.cols());
    put_u64(manifest, data.size());
    put_u64(manifest, static_cast<uint64_t>(t.size()) * sizeof(float));
    if (t.size() > 0) {
      put(data, t.data(), static_cast<size_t>(t.size()) * sizeof(float));
    }
  }

  std::vector<char> file;
  put_u64(file, 0x4D474E4E43503031ULL);  // magic
  put_u32(file, kCheckpointFormatVersion);
  put_u32(file, static_cast<uint32_t>(ck.kind.size()));
  put_u64(file, manifest.size());
  put_u64(file, fnv(manifest));
  put_u64(file, data.size());
  put_u64(file, fnv(data));
  file.insert(file.end(), manifest.begin(), manifest.end());
  if (!data.empty()) {
    file.resize(align4k(file.size()));  // manifest->data gap (hole in the real file)
    file.insert(file.end(), data.begin(), data.end());
  }
  Dump(path, file);
}

// Saves through the trainer's streaming writer, then re-derives the same
// logical checkpoint and rewrites it with the reference materializing
// algorithm: the two files must match byte for byte.
void ExpectStreamedSaveMatchesReference(TrainerBase& trainer,
                                        const std::string& tag) {
  const std::string path = TempPath("mgnn_golden_" + tag);
  trainer.SaveCheckpoint(path);
  Checkpoint ck;
  std::string error;
  ASSERT_TRUE(LoadCheckpoint(path, &ck, &error)) << tag << ": " << error;
  const std::string ref = path + ".ref";
  ReferenceMaterializedSave(ck, ref);
  const std::vector<char> streamed = Slurp(path);
  const std::vector<char> reference = Slurp(ref);
  ASSERT_FALSE(streamed.empty()) << tag;
  EXPECT_TRUE(streamed == reference)
      << tag << ": streamed file (" << streamed.size()
      << " bytes) differs from the materialized reference (" << reference.size()
      << " bytes)";
  std::remove(path.c_str());
  std::remove(ref.c_str());
}

TrainingConfig SerialNcConfig(bool use_disk) {
  TrainingConfig config;
  config.fanouts = {10, 5};
  config.dims = {64, 32, 32};
  config.batch_size = 256;
  config.num_negatives = 0;
  config.weight_lr = 0.05f;
  config.pipeline.enabled = false;
  config.pipeline.parallel_compute = false;
  config.pipeline.adaptive_workers = false;
  if (use_disk) {
    config.storage.use_disk = true;
    config.storage.num_physical = 16;
    config.storage.buffer_capacity = 8;
    config.storage.prefetch = false;
  }
  return config;
}

TEST(CheckpointStreaming, LpMemorySaveMatchesMaterializedReference) {
  Graph g = Fb15k237Like(0.03);
  TrainingConfig config = SerialDiskLpConfig();
  config.storage.use_disk = false;
  LinkPredictionTrainer trainer(&g, config);
  trainer.TrainEpoch();
  ExpectStreamedSaveMatchesReference(trainer, "lp_mem");
}

TEST(CheckpointStreaming, LpDiskSaveMatchesMaterializedReference) {
  // The deepest path: embedding values + Adagrad state stream partition by
  // partition (a random node permutation, so rows scatter) and the checksum is
  // re-folded from the file. The bytes must still match the reference exactly.
  Graph g = Fb15k237Like(0.03);
  LinkPredictionTrainer trainer(&g, SerialDiskLpConfig());
  trainer.TrainEpoch();
  ExpectStreamedSaveMatchesReference(trainer, "lp_disk");
}

TEST(CheckpointStreaming, NcMemorySaveMatchesMaterializedReference) {
  Graph g = PapersMini(0.05);
  NodeClassificationTrainer trainer(&g, SerialNcConfig(false));
  trainer.TrainEpoch();
  ExpectStreamedSaveMatchesReference(trainer, "nc_mem");
}

TEST(CheckpointStreaming, NcDiskSaveMatchesMaterializedReference) {
  Graph g = PapersMini(0.05);
  NodeClassificationTrainer trainer(&g, SerialNcConfig(true));
  trainer.TrainEpoch();
  ExpectStreamedSaveMatchesReference(trainer, "nc_disk");
}

TEST(CheckpointStreaming, TruncationRaceFailsCleanlyWithoutAborting) {
  // A file that shrinks under an already-open reader (concurrent prune, admin
  // mistake) must surface as a clean error from the TryReadAt layer — never a
  // process abort. This test IS the death-test-negative: an abort fails it.
  const std::string path = TempPath("mgnn_ckpt_trunc_race");
  SaveCheckpoint(SampleCheckpoint(), path);
  CheckpointReader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(path, &error)) << error;
  ASSERT_EQ(::truncate(path.c_str(), 64), 0);  // cut mid-manifest, data gone
  EXPECT_FALSE(reader.VerifyDataChecksum(&error));
  EXPECT_NE(error.find("unexpected end of file"), std::string::npos) << error;
  // A fresh whole-file load of the truncated file also fails cleanly.
  Checkpoint ck;
  EXPECT_FALSE(LoadCheckpoint(path, &ck, &error));
  std::remove(path.c_str());
}

TEST(CheckpointStreaming, DiskSavePeakMemoryStaysBelowOnePartitionSet) {
  // The point of the streaming writer: auto-saving a disk-mode embedding table
  // must not materialize it. Peak transient memory has to stay under even one
  // resident partition set, which is itself well under the full table.
  Graph g = Fb15k237Like(0.25);
  TrainingConfig config = SerialDiskLpConfig();
  config.dims = {64, 64};
  config.checkpoint.every_n_epochs = 1;
  config.checkpoint.path = TempPath("mgnn_ckpt_peak");
  LinkPredictionTrainer trainer(&g, config);
  const EpochStats stats = trainer.TrainEpoch();

  int64_t max_rows = 0;
  for (int32_t p = 0; p < config.storage.num_physical; ++p) {
    max_rows = std::max(max_rows, trainer.partitioning()->PartitionSize(p));
  }
  const uint64_t dim = static_cast<uint64_t>(config.dims.front());
  const uint64_t set_bytes = static_cast<uint64_t>(config.storage.buffer_capacity) *
                             max_rows * dim * sizeof(float) * 2;  // values + state
  const uint64_t table_bytes =
      static_cast<uint64_t>(g.num_nodes()) * dim * sizeof(float) * 2;
  ASSERT_LT(set_bytes, table_bytes);

  EXPECT_GT(stats.checkpoint_peak_bytes, 0u);
  EXPECT_LT(stats.checkpoint_peak_bytes, set_bytes);
  EXPECT_GT(stats.checkpoint_save_seconds, 0.0);
  // The file itself still holds the full table (plus model params + manifest).
  EXPECT_GT(trainer.last_checkpoint_stats().bytes_written, table_bytes);
  std::remove(config.checkpoint.path.c_str());
}

TEST(CheckpointRetention, AutoSaveKeepsLastKAndSweepsStaleTmp) {
  Graph g = Fb15k237Like(0.03);
  TrainingConfig config = SerialDiskLpConfig();
  config.storage.use_disk = false;
  config.checkpoint.every_n_epochs = 1;
  config.checkpoint.keep_last_k = 2;
  config.checkpoint.path = TempPath("mgnn_ckpt_keep");
  const std::string& base = config.checkpoint.path;
  auto exists = [](const std::string& p) {
    return std::ifstream(p, std::ios::binary).good();
  };
  // Debris from hypothetical earlier crashed saves: both the legacy tmp name
  // and a per-epoch tmp. Retention must sweep them, not trip over them.
  Dump(base + ".tmp", std::vector<char>(32, 'x'));
  Dump(base + ".epoch1.tmp", std::vector<char>(32, 'x'));

  LinkPredictionTrainer trainer(&g, config);
  for (int e = 0; e < 5; ++e) {
    trainer.TrainEpoch();
  }
  // Exactly the newest k=2 per-epoch files survive; older ones and all stale
  // tmp debris are gone; nothing was ever written to the bare base path.
  EXPECT_FALSE(exists(CheckpointEpochPath(base, 1)));
  EXPECT_FALSE(exists(CheckpointEpochPath(base, 2)));
  EXPECT_FALSE(exists(CheckpointEpochPath(base, 3)));
  EXPECT_TRUE(exists(CheckpointEpochPath(base, 4)));
  EXPECT_TRUE(exists(CheckpointEpochPath(base, 5)));
  EXPECT_FALSE(exists(base + ".tmp"));
  EXPECT_FALSE(exists(base + ".epoch1.tmp"));
  EXPECT_FALSE(exists(base));
  EXPECT_EQ(LatestCheckpointPath(base), CheckpointEpochPath(base, 5));

  // The retained snapshots are real checkpoints: resume from the latest.
  TrainingConfig resume_config = config;
  resume_config.checkpoint.every_n_epochs = 0;
  resume_config.checkpoint.path.clear();
  LinkPredictionTrainer resumed(&g, resume_config);
  resumed.ResumeFrom(LatestCheckpointPath(base));
  EXPECT_EQ(resumed.epochs_completed(), 5);
  std::remove(CheckpointEpochPath(base, 4).c_str());
  std::remove(CheckpointEpochPath(base, 5).c_str());
}

TEST(CheckpointRetention, PruneNeverDeletesTheFileBeingWritten) {
  const std::string base = TempPath("mgnn_ckpt_prune");
  auto exists = [](const std::string& p) {
    return std::ifstream(p, std::ios::binary).good();
  };
  Dump(CheckpointEpochPath(base, 1), std::vector<char>(8, 'a'));
  Dump(CheckpointEpochPath(base, 2), std::vector<char>(8, 'b'));
  Dump(CheckpointEpochPath(base, 3), std::vector<char>(8, 'c'));
  // keep_last_k=1 would normally leave only epoch3, but epoch1 is the file the
  // caller just wrote (e.g. a re-run over old debris) — it must survive.
  PruneCheckpoints(base, 1, CheckpointEpochPath(base, 1));
  EXPECT_TRUE(exists(CheckpointEpochPath(base, 1)));
  EXPECT_FALSE(exists(CheckpointEpochPath(base, 2)));
  EXPECT_TRUE(exists(CheckpointEpochPath(base, 3)));
  std::remove(CheckpointEpochPath(base, 1).c_str());
  std::remove(CheckpointEpochPath(base, 3).c_str());
}

TEST(CheckpointCrash, ResumeRefusesWrongKindAndSeed) {
  Graph g = Fb15k237Like(0.03);
  TrainingConfig config = SerialDiskLpConfig();
  config.storage.use_disk = false;  // in-memory is enough for the refusal paths
  const std::string ckpt = TempPath("mgnn_ckpt_refusal");
  {
    LinkPredictionTrainer trainer(&g, config);
    trainer.TrainEpoch();
    trainer.SaveCheckpoint(ckpt);
  }
  // Wrong seed: the batch stream would silently diverge — must abort.
  TrainingConfig other_seed = config;
  other_seed.seed = config.seed + 1;
  LinkPredictionTrainer wrong(&g, other_seed);
  EXPECT_DEATH(wrong.ResumeFrom(ckpt), "different run seed");
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace mariusgnn
