// Trainer-level tests: models learn (loss falls, metrics beat chance) in every
// configuration the paper exercises — in-memory/disk, DENSE/baseline, LP/NC.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/core/link_prediction_trainer.h"
#include "src/core/node_classification_trainer.h"
#include "src/data/datasets.h"
#include "src/eval/metrics.h"
#include "src/util/binary_io.h"

namespace mariusgnn {
namespace {

TrainingConfig SmallLpConfig() {
  TrainingConfig config;
  config.fanouts = {5};
  config.dims = {16, 16};
  config.batch_size = 512;
  config.num_negatives = 32;
  config.pipeline.enabled = false;
  return config;
}

TEST(LinkPrediction, DecoderOnlyLossDecreases) {
  Graph g = Fb15k237Like(0.05);
  TrainingConfig config = SmallLpConfig();
  config.fanouts = {};
  config.dims = {16};
  LinkPredictionTrainer trainer(&g, config);
  const EpochStats first = trainer.TrainEpoch();
  EpochStats last;
  for (int e = 0; e < 3; ++e) {
    last = trainer.TrainEpoch();
  }
  EXPECT_LT(last.loss, first.loss);
}

TEST(LinkPrediction, DecoderOnlyMrrBeatsChance) {
  Graph g = Fb15k237Like(0.05);
  TrainingConfig config = SmallLpConfig();
  config.fanouts = {};
  config.dims = {16};
  LinkPredictionTrainer trainer(&g, config);
  for (int e = 0; e < 5; ++e) {
    trainer.TrainEpoch();
  }
  const double mrr = trainer.EvaluateMrr(100, 300);
  // Random ranking against 100 negatives gives MRR ~ 0.05.
  EXPECT_GT(mrr, 0.15);
}

TEST(LinkPrediction, GraphSageLearns) {
  Graph g = Fb15k237Like(0.05);
  TrainingConfig config = SmallLpConfig();
  LinkPredictionTrainer trainer(&g, config);
  const EpochStats first = trainer.TrainEpoch();
  EpochStats last;
  for (int e = 0; e < 3; ++e) {
    last = trainer.TrainEpoch();
  }
  EXPECT_LT(last.loss, first.loss * 0.95);
  EXPECT_GT(trainer.EvaluateMrr(100, 200), 0.10);
}

TEST(LinkPrediction, GatRuns) {
  Graph g = Fb15k237Like(0.03);
  TrainingConfig config = SmallLpConfig();
  config.layer_type = GnnLayerType::kGat;
  LinkPredictionTrainer trainer(&g, config);
  const EpochStats first = trainer.TrainEpoch();
  const EpochStats second = trainer.TrainEpoch();
  EXPECT_LT(second.loss, first.loss);
}

TEST(LinkPrediction, PipelinedMatchesUnpipelinedProgress) {
  Graph g = Fb15k237Like(0.03);
  TrainingConfig config = SmallLpConfig();
  config.pipeline.enabled = true;
  LinkPredictionTrainer trainer(&g, config);
  const EpochStats first = trainer.TrainEpoch();
  EpochStats last;
  for (int e = 0; e < 2; ++e) {
    last = trainer.TrainEpoch();
  }
  EXPECT_LT(last.loss, first.loss);
}

TEST(LinkPrediction, BaselineSamplerLearns) {
  Graph g = Fb15k237Like(0.03);
  TrainingConfig config = SmallLpConfig();
  config.sampler = SamplerKind::kLayerwise;
  LinkPredictionTrainer trainer(&g, config);
  const EpochStats first = trainer.TrainEpoch();
  EpochStats last;
  for (int e = 0; e < 2; ++e) {
    last = trainer.TrainEpoch();
  }
  EXPECT_LT(last.loss, first.loss);
}

TEST(LinkPrediction, DiskCometTrainsAndTracksIo) {
  Graph g = Fb15k237Like(0.05);
  TrainingConfig config = SmallLpConfig();
  config.storage.use_disk = true;
  config.storage.num_physical = 8;
  config.storage.num_logical = 4;
  config.storage.buffer_capacity = 4;
  config.storage.policy = "comet";
  LinkPredictionTrainer trainer(&g, config);
  const EpochStats first = trainer.TrainEpoch();
  EXPECT_GT(first.io_seconds, 0.0);
  EXPECT_GT(first.num_partition_sets, 1);
  EpochStats last;
  for (int e = 0; e < 3; ++e) {
    last = trainer.TrainEpoch();
  }
  EXPECT_LT(last.loss, first.loss);
  EXPECT_GT(trainer.EvaluateMrr(100, 200), 0.08);
}

TEST(LinkPrediction, DiskBetaTrains) {
  Graph g = Fb15k237Like(0.05);
  TrainingConfig config = SmallLpConfig();
  config.storage.use_disk = true;
  config.storage.num_physical = 8;
  config.storage.buffer_capacity = 4;
  config.storage.policy = "beta";
  LinkPredictionTrainer trainer(&g, config);
  const EpochStats first = trainer.TrainEpoch();
  EpochStats last;
  for (int e = 0; e < 3; ++e) {
    last = trainer.TrainEpoch();
  }
  EXPECT_LT(last.loss, first.loss);
}

TEST(LinkPrediction, EpochIteratesAllTrainExamples) {
  Graph g = Fb15k237Like(0.05);
  TrainingConfig config = SmallLpConfig();
  LinkPredictionTrainer mem_trainer(&g, config);
  const EpochStats mem = mem_trainer.TrainEpoch();
  EXPECT_EQ(mem.num_examples, static_cast<int64_t>(g.train_edges().size()));

  config.storage.use_disk = true;
  config.storage.num_physical = 8;
  config.storage.num_logical = 4;
  config.storage.buffer_capacity = 4;
  LinkPredictionTrainer disk_trainer(&g, config);
  const EpochStats disk = disk_trainer.TrainEpoch();
  EXPECT_EQ(disk.num_examples, static_cast<int64_t>(g.train_edges().size()));
}

TrainingConfig SmallNcConfig() {
  TrainingConfig config;
  config.fanouts = {10, 5};
  config.dims = {64, 32, 32};
  config.batch_size = 256;
  config.num_negatives = 0;
  config.pipeline.enabled = false;
  config.weight_lr = 0.05f;
  return config;
}

TEST(NodeClassification, InMemoryBeatsChance) {
  Graph g = PapersMini(0.08);
  TrainingConfig config = SmallNcConfig();
  NodeClassificationTrainer trainer(&g, config);
  EpochStats first, last;
  for (int e = 0; e < 5; ++e) {
    const EpochStats s = trainer.TrainEpoch();
    if (e == 0) {
      first = s;
    }
    last = s;
  }
  EXPECT_LT(last.loss, first.loss);
  const double acc = trainer.EvaluateTestAccuracy();
  // 32 communities: chance is ~3%.
  EXPECT_GT(acc, 0.30);
}

TEST(NodeClassification, DiskCachedPolicyWorks) {
  Graph g = PapersMini(0.08);
  TrainingConfig config = SmallNcConfig();
  config.storage.use_disk = true;
  config.storage.num_physical = 16;
  config.storage.buffer_capacity = 8;
  NodeClassificationTrainer trainer(&g, config);
  const EpochStats first = trainer.TrainEpoch();
  // Cached regime: a single partition set per epoch, zero intra-epoch swaps.
  EXPECT_EQ(first.num_partition_sets, 1);
  for (int e = 0; e < 4; ++e) {
    trainer.TrainEpoch();
  }
  EXPECT_GT(trainer.EvaluateTestAccuracy(), 0.25);
}

TEST(NodeClassification, BaselineSamplerLearns) {
  Graph g = PapersMini(0.05);
  TrainingConfig config = SmallNcConfig();
  config.sampler = SamplerKind::kLayerwise;
  NodeClassificationTrainer trainer(&g, config);
  EpochStats first, last;
  for (int e = 0; e < 3; ++e) {
    const EpochStats s = trainer.TrainEpoch();
    if (e == 0) {
      first = s;
    }
    last = s;
  }
  EXPECT_LT(last.loss, first.loss);
}

TEST(NodeClassification, PipelinedLearns) {
  Graph g = PapersMini(0.05);
  TrainingConfig config = SmallNcConfig();
  config.pipeline.enabled = true;
  NodeClassificationTrainer trainer(&g, config);
  EpochStats first, last;
  for (int e = 0; e < 3; ++e) {
    const EpochStats s = trainer.TrainEpoch();
    if (e == 0) {
      first = s;
    }
    last = s;
  }
  EXPECT_LT(last.loss, first.loss);
}

TEST(LinkPrediction, DeterministicForSameSeed) {
  Graph g = Fb15k237Like(0.03);
  TrainingConfig config = SmallLpConfig();
  config.pipeline.enabled = false;
  LinkPredictionTrainer a(&g, config);
  LinkPredictionTrainer b(&g, config);
  const EpochStats sa = a.TrainEpoch();
  const EpochStats sb = b.TrainEpoch();
  EXPECT_DOUBLE_EQ(sa.loss, sb.loss);
  EXPECT_DOUBLE_EQ(a.EvaluateMrr(50, 100), b.EvaluateMrr(50, 100));
}

TEST(LinkPrediction, DiskGatTrains) {
  Graph g = Fb15k237Like(0.04);
  TrainingConfig config = SmallLpConfig();
  config.layer_type = GnnLayerType::kGat;
  config.direction = EdgeDirection::kIncoming;
  config.storage.use_disk = true;
  config.storage.num_physical = 8;
  config.storage.num_logical = 4;
  config.storage.buffer_capacity = 4;
  LinkPredictionTrainer trainer(&g, config);
  const EpochStats first = trainer.TrainEpoch();
  const EpochStats second = trainer.TrainEpoch();
  EXPECT_LT(second.loss, first.loss);
}

TEST(NodeClassification, DiskFallbackRotationWhenTrainSetLarge) {
  // Force k >= c: tiny buffer relative to the training partitions.
  Graph g = PapersMini(0.08);
  TrainingConfig config = SmallNcConfig();
  config.storage.use_disk = true;
  config.storage.num_physical = 16;
  config.storage.buffer_capacity = 2;
  NodeClassificationTrainer trainer(&g, config);
  const EpochStats stats = trainer.TrainEpoch();
  // Rotation visits every partition: many sets, each training a node subset.
  EXPECT_GT(stats.num_partition_sets, 1);
  EXPECT_EQ(stats.num_examples, static_cast<int64_t>(g.train_nodes().size()));
}

TEST(LinkPrediction, DiskEpochIoDropsWithLargerBuffer) {
  Graph g = Fb15k237Like(0.05);
  TrainingConfig config = SmallLpConfig();
  config.fanouts = {};
  config.dims = {16};
  config.storage.use_disk = true;
  config.storage.num_physical = 8;
  config.storage.num_logical = 8;
  config.storage.buffer_capacity = 2;
  LinkPredictionTrainer small(&g, config);
  const double io_small = small.TrainEpoch().io_seconds;

  config.storage.num_logical = 4;
  config.storage.buffer_capacity = 4;
  LinkPredictionTrainer large(&g, config);
  const double io_large = large.TrainEpoch().io_seconds;
  EXPECT_LT(io_large, io_small);
}

TEST(LinkPrediction, FilteredMrrAtLeastRaw) {
  // Filtering removes true-edge negatives, so ranks can only improve.
  Graph g = Fb15k237Like(0.05);
  TrainingConfig config = SmallLpConfig();
  config.fanouts = {};
  config.dims = {16};
  LinkPredictionTrainer trainer(&g, config);
  for (int e = 0; e < 3; ++e) {
    trainer.TrainEpoch();
  }
  const double raw = trainer.EvaluateMrr(200, 200, false, false);
  const double filtered = trainer.EvaluateMrr(200, 200, false, true);
  EXPECT_GE(filtered, raw - 1e-9);
}

TEST(LinkPrediction, TransEDecoderLearns) {
  Graph g = Fb15k237Like(0.03);
  TrainingConfig config = SmallLpConfig();
  config.fanouts = {};
  config.dims = {16};
  config.decoder = "transe";
  LinkPredictionTrainer trainer(&g, config);
  const EpochStats first = trainer.TrainEpoch();
  EpochStats last;
  for (int e = 0; e < 2; ++e) {
    last = trainer.TrainEpoch();
  }
  EXPECT_LT(last.loss, first.loss);
}

TEST(LinkPrediction, ComplExDecoderLearns) {
  Graph g = Fb15k237Like(0.03);
  TrainingConfig config = SmallLpConfig();
  config.fanouts = {};
  config.dims = {16};
  config.decoder = "complex";
  LinkPredictionTrainer trainer(&g, config);
  const EpochStats first = trainer.TrainEpoch();
  EpochStats last;
  for (int e = 0; e < 2; ++e) {
    last = trainer.TrainEpoch();
  }
  EXPECT_LT(last.loss, first.loss);
}

TEST(LinkPrediction, GcnEncoderLearns) {
  Graph g = Fb15k237Like(0.03);
  TrainingConfig config = SmallLpConfig();
  config.layer_type = GnnLayerType::kGcn;
  LinkPredictionTrainer trainer(&g, config);
  const EpochStats first = trainer.TrainEpoch();
  const EpochStats second = trainer.TrainEpoch();
  EXPECT_LT(second.loss, first.loss);
}

TEST(NodeClassification, GatEncoderLearns) {
  Graph g = PapersMini(0.04);
  TrainingConfig config = SmallNcConfig();
  config.layer_type = GnnLayerType::kGat;
  config.fanouts = {5, 5};
  NodeClassificationTrainer trainer(&g, config);
  EpochStats first, last;
  for (int e = 0; e < 3; ++e) {
    const EpochStats s = trainer.TrainEpoch();
    if (e == 0) {
      first = s;
    }
    last = s;
  }
  EXPECT_LT(last.loss, first.loss);
}

TEST(LinkPrediction, WorkerCountDoesNotChangeTrajectory) {
  // Batches are derived from per-batch seeds and consumed in order, so serial,
  // 1-worker, and N-worker pipelines must be bitwise identical.
  Graph g = Fb15k237Like(0.03);
  std::vector<double> losses;
  std::vector<double> mrrs;
  for (int workers : {0, 1, 3}) {
    TrainingConfig config = SmallLpConfig();
    config.pipeline.enabled = workers > 0;
    config.pipeline.workers = workers;
    LinkPredictionTrainer trainer(&g, config);
    double loss = 0.0;
    for (int e = 0; e < 2; ++e) {
      loss += trainer.TrainEpoch().loss;
    }
    losses.push_back(loss);
    mrrs.push_back(trainer.EvaluateMrr(50, 100));
  }
  EXPECT_DOUBLE_EQ(losses[1], losses[0]);
  EXPECT_DOUBLE_EQ(losses[2], losses[0]);
  EXPECT_DOUBLE_EQ(mrrs[1], mrrs[0]);
  EXPECT_DOUBLE_EQ(mrrs[2], mrrs[0]);
}

TEST(LinkPrediction, DiskPipelineAndPrefetchDoNotChangeTrajectory) {
  // The async path (partition prefetch + background write-back + pipeline workers)
  // must reproduce the fully synchronous run exactly.
  Graph g = Fb15k237Like(0.05);
  auto run = [&](bool pipelined, bool prefetch) {
    TrainingConfig config = SmallLpConfig();
    config.storage.use_disk = true;
    config.storage.num_physical = 8;
    config.storage.num_logical = 4;
    config.storage.buffer_capacity = 4;
    config.pipeline.enabled = pipelined;
    config.pipeline.workers = 2;
    config.storage.prefetch = prefetch;
    LinkPredictionTrainer trainer(&g, config);
    double loss = 0.0;
    for (int e = 0; e < 2; ++e) {
      loss += trainer.TrainEpoch().loss;
    }
    return std::make_pair(loss, trainer.EvaluateMrr(50, 100));
  };
  const auto base = run(false, false);
  const auto prefetch_only = run(false, true);
  const auto full_async = run(true, true);
  EXPECT_DOUBLE_EQ(prefetch_only.first, base.first);
  EXPECT_DOUBLE_EQ(full_async.first, base.first);
  EXPECT_DOUBLE_EQ(prefetch_only.second, base.second);
  EXPECT_DOUBLE_EQ(full_async.second, base.second);
}

TEST(NodeClassification, WorkerCountDoesNotChangeTrajectory) {
  Graph g = PapersMini(0.05);
  std::vector<double> losses;
  for (int workers : {0, 2}) {
    TrainingConfig config = SmallNcConfig();
    config.pipeline.enabled = workers > 0;
    config.pipeline.workers = workers;
    NodeClassificationTrainer trainer(&g, config);
    double loss = 0.0;
    for (int e = 0; e < 2; ++e) {
      loss += trainer.TrainEpoch().loss;
    }
    losses.push_back(loss);
  }
  EXPECT_DOUBLE_EQ(losses[1], losses[0]);
}

TEST(LinkPrediction, PipelinedEpochReportsStageBreakdown) {
  Graph g = Fb15k237Like(0.03);
  TrainingConfig config = SmallLpConfig();
  config.pipeline.enabled = true;
  config.pipeline.workers = 2;
  LinkPredictionTrainer trainer(&g, config);
  const EpochStats stats = trainer.TrainEpoch();
  EXPECT_GT(stats.sample_seconds, 0.0);       // batch construction was timed
  EXPECT_GE(stats.pipeline_stall_seconds, 0.0);
  EXPECT_GT(stats.compute_seconds, 0.0);
  EXPECT_GT(stats.compute_parallel_efficiency, 0.0);
}

TEST(LinkPrediction, ParallelComputeDoesNotChangeTrajectory) {
  // Stage-3 kernels run in fixed chunks with ordered reductions, so serial compute
  // and an 8-worker pool must produce bitwise-identical loss/MRR trajectories —
  // with and without the sampling pipeline running on top.
  Graph g = Fb15k237Like(0.05);
  ThreadPool pool(8);
  auto run = [&](bool parallel, bool pipelined) {
    TrainingConfig config = SmallLpConfig();
    config.pipeline.parallel_compute = parallel;
    config.pipeline.compute_pool = parallel ? &pool : nullptr;
    // Sampling workers and compute chunks share ONE pool (production default).
    config.pipeline.pipeline_pool = (parallel && pipelined) ? &pool : nullptr;
    config.pipeline.enabled = pipelined;
    config.pipeline.workers = 2;
    LinkPredictionTrainer trainer(&g, config);
    std::vector<double> losses;
    for (int e = 0; e < 3; ++e) {
      losses.push_back(trainer.TrainEpoch().loss);
    }
    losses.push_back(trainer.EvaluateMrr(50, 100));
    return losses;
  };
  const auto serial = run(false, false);
  const auto parallel = run(true, false);
  const auto parallel_pipelined = run(true, true);
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i], serial[i]) << "epoch " << i;
    EXPECT_EQ(parallel_pipelined[i], serial[i]) << "epoch " << i;
  }
}

TEST(LinkPrediction, ParallelComputeDiskTrajectoryIdentical) {
  // Disk mode adds the sharded sparse Adagrad through the partition buffer; the
  // parallel apply must still reproduce the serial run exactly.
  Graph g = Fb15k237Like(0.05);
  ThreadPool pool(8);
  auto run = [&](bool parallel) {
    TrainingConfig config = SmallLpConfig();
    config.storage.use_disk = true;
    config.storage.num_physical = 8;
    config.storage.num_logical = 4;
    config.storage.buffer_capacity = 4;
    config.pipeline.enabled = true;
    config.pipeline.workers = 2;
    config.pipeline.parallel_compute = parallel;
    config.pipeline.compute_pool = parallel ? &pool : nullptr;
    LinkPredictionTrainer trainer(&g, config);
    double loss = 0.0;
    for (int e = 0; e < 2; ++e) {
      loss += trainer.TrainEpoch().loss;
    }
    return std::make_pair(loss, trainer.EvaluateMrr(50, 100));
  };
  const auto serial = run(false);
  const auto parallel = run(true);
  EXPECT_EQ(parallel.first, serial.first);
  EXPECT_EQ(parallel.second, serial.second);
}

TEST(NodeClassification, ParallelComputeDoesNotChangeTrajectory) {
  Graph g = PapersMini(0.05);
  ThreadPool pool(8);
  auto run = [&](bool parallel) {
    TrainingConfig config = SmallNcConfig();
    config.pipeline.parallel_compute = parallel;
    config.pipeline.compute_pool = parallel ? &pool : nullptr;
    config.pipeline.enabled = true;
    config.pipeline.workers = 2;
    NodeClassificationTrainer trainer(&g, config);
    std::vector<double> out;
    for (int e = 0; e < 2; ++e) {
      out.push_back(trainer.TrainEpoch().loss);
    }
    out.push_back(trainer.EvaluateTestAccuracy());
    return out;
  };
  const auto serial = run(false);
  const auto parallel = run(true);
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i], serial[i]) << "epoch " << i;
  }
}

TEST(LinkPrediction, GatParallelComputeTrajectoryIdentical) {
  // GAT has the most intricate backward (per-chunk attention-gradient partials).
  Graph g = Fb15k237Like(0.04);
  ThreadPool pool(8);
  auto run = [&](bool parallel) {
    TrainingConfig config = SmallLpConfig();
    config.layer_type = GnnLayerType::kGat;
    config.pipeline.parallel_compute = parallel;
    config.pipeline.compute_pool = parallel ? &pool : nullptr;
    LinkPredictionTrainer trainer(&g, config);
    double loss = 0.0;
    for (int e = 0; e < 2; ++e) {
      loss += trainer.TrainEpoch().loss;
    }
    return loss;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(LinkPrediction, BaselineSamplerParallelComputeTrajectoryIdentical) {
  // Drives the BlockEncoder path: the BlockToView two-pass parallel counting sort
  // runs multi-chunk here (512-edge batches x fanout 5 > one sort chunk) and must
  // leave the trajectory bitwise-equal to the serial-compute run.
  Graph g = Fb15k237Like(0.05);
  ThreadPool pool(8);
  auto run = [&](bool parallel) {
    TrainingConfig config = SmallLpConfig();
    config.sampler = SamplerKind::kLayerwise;
    config.pipeline.parallel_compute = parallel;
    config.pipeline.compute_pool = parallel ? &pool : nullptr;
    LinkPredictionTrainer trainer(&g, config);
    double loss = 0.0;
    for (int e = 0; e < 2; ++e) {
      loss += trainer.TrainEpoch().loss;
    }
    return std::make_pair(loss, trainer.EvaluateMrr(50, 100));
  };
  const auto serial = run(false);
  const auto parallel = run(true);
  EXPECT_DOUBLE_EQ(parallel.first, serial.first);
  EXPECT_DOUBLE_EQ(parallel.second, serial.second);
}

TEST(LinkPrediction, AdaptiveWorkerSplitDoesNotChangeTrajectory) {
  // Thresholds above any real efficiency force a shrink every epoch, so the
  // adaptive run demonstrably rebalances (3 -> 2 -> 1 sampling workers) while the
  // loss/MRR trajectory stays bitwise identical to the fixed-worker run: the split
  // only ever changes worker count, which never changes the batch stream.
  Graph g = Fb15k237Like(0.03);
  ThreadPool pool(4);
  auto run = [&](bool adaptive) {
    TrainingConfig config = SmallLpConfig();
    config.pipeline.enabled = true;
    config.pipeline.workers = 3;
    config.pipeline.parallel_compute = true;
    config.pipeline.compute_pool = &pool;
    config.pipeline.pipeline_pool = &pool;  // sampling + compute share one pool
    config.pipeline.adaptive_workers = adaptive;
    config.pipeline.par_eff_low = 2.0;
    config.pipeline.par_eff_high = 3.0;
    LinkPredictionTrainer trainer(&g, config);
    std::vector<double> history;
    std::vector<int> workers;
    for (int e = 0; e < 3; ++e) {
      const EpochStats stats = trainer.TrainEpoch();
      history.push_back(stats.loss);
      workers.push_back(stats.pipeline_workers);
    }
    history.push_back(trainer.EvaluateMrr(50, 100));
    return std::make_pair(history, workers);
  };
  const auto fixed = run(false);
  const auto adaptive = run(true);
  ASSERT_EQ(adaptive.first.size(), fixed.first.size());
  for (size_t i = 0; i < fixed.first.size(); ++i) {
    EXPECT_EQ(adaptive.first[i], fixed.first[i]) << "epoch " << i;
  }
  EXPECT_EQ(fixed.second, (std::vector<int>{3, 3, 3}));
  EXPECT_EQ(adaptive.second, (std::vector<int>{3, 2, 1}));
}

TEST(NodeClassification, AdaptiveWorkerSplitDoesNotChangeTrajectory) {
  Graph g = PapersMini(0.05);
  ThreadPool pool(4);
  auto run = [&](bool adaptive) {
    TrainingConfig config = SmallNcConfig();
    config.pipeline.enabled = true;
    config.pipeline.workers = 2;
    config.pipeline.parallel_compute = true;
    config.pipeline.compute_pool = &pool;
    config.pipeline.pipeline_pool = &pool;
    config.pipeline.adaptive_workers = adaptive;
    config.pipeline.par_eff_low = 2.0;
    config.pipeline.par_eff_high = 3.0;
    NodeClassificationTrainer trainer(&g, config);
    double loss = 0.0;
    for (int e = 0; e < 2; ++e) {
      loss += trainer.TrainEpoch().loss;
    }
    return loss;
  };
  EXPECT_DOUBLE_EQ(run(true), run(false));
}

TEST(LinkPrediction, MidEpochResizeDoesNotChangeTrajectory) {
  // Disk mode with thresholds above any real efficiency forces a shrink at every
  // partition-set boundary, so the controller demonstrably resizes the live
  // session mid-epoch — while the loss/MRR trajectory stays bitwise identical to
  // the fixed-worker run, because a resize only ever changes the worker count.
  Graph g = Fb15k237Like(0.05);
  ThreadPool pool(4);
  auto run = [&](bool adaptive) {
    TrainingConfig config = SmallLpConfig();
    config.storage.use_disk = true;
    config.storage.num_physical = 8;
    config.storage.num_logical = 4;
    config.storage.buffer_capacity = 4;
    config.pipeline.enabled = true;
    config.pipeline.workers = 3;
    config.pipeline.parallel_compute = true;
    config.pipeline.compute_pool = &pool;
    config.pipeline.pipeline_pool = &pool;  // sampling + compute share one pool
    config.pipeline.adaptive_workers = adaptive;
    config.pipeline.adaptive_within_epoch = true;
    config.pipeline.par_eff_low = 2.0;  // force a shrink at every boundary
    config.pipeline.par_eff_high = 3.0;
    LinkPredictionTrainer trainer(&g, config);
    const EpochStats stats = trainer.TrainEpoch();
    return std::make_pair(stats, trainer.EvaluateMrr(50, 100));
  };
  const auto fixed = run(false);
  const auto adaptive = run(true);
  EXPECT_EQ(adaptive.first.loss, fixed.first.loss);
  EXPECT_EQ(adaptive.second, fixed.second);

  // The fixed run never resizes; the adaptive run resizes mid-epoch.
  EXPECT_EQ(fixed.first.resize_count, 0);
  ASSERT_GT(fixed.first.num_partition_sets, 1);
  for (int w : fixed.first.workers_per_set) {
    EXPECT_EQ(w, 3);
  }
  EXPECT_GE(adaptive.first.resize_count, 1);
  ASSERT_EQ(static_cast<int64_t>(adaptive.first.workers_per_set.size()),
            adaptive.first.num_partition_sets);
  EXPECT_EQ(adaptive.first.workers_per_set.front(), 3);
  for (size_t i = 1; i < adaptive.first.workers_per_set.size(); ++i) {
    EXPECT_LE(adaptive.first.workers_per_set[i],
              adaptive.first.workers_per_set[i - 1]);  // forced shrinks only
    EXPECT_GE(adaptive.first.workers_per_set[i], 1);
  }
  // The per-set record and the queue signal are reported either way.
  EXPECT_GE(adaptive.first.queue_occupancy_mean, 0.0);
  EXPECT_LE(adaptive.first.queue_occupancy_mean, 1.0);
}

TEST(NodeClassification, MidEpochResizeDoesNotChangeTrajectory) {
  // The NC disk rotation regime (tiny buffer) yields many partition sets per
  // epoch; forced shrinks at the set boundaries must not perturb the trajectory.
  Graph g = PapersMini(0.08);
  ThreadPool pool(4);
  auto run = [&](bool adaptive) {
    TrainingConfig config = SmallNcConfig();
    config.storage.use_disk = true;
    config.storage.num_physical = 16;
    config.storage.buffer_capacity = 2;
    config.pipeline.enabled = true;
    config.pipeline.workers = 2;
    config.pipeline.parallel_compute = true;
    config.pipeline.compute_pool = &pool;
    config.pipeline.pipeline_pool = &pool;
    config.pipeline.adaptive_workers = adaptive;
    config.pipeline.adaptive_within_epoch = true;
    config.pipeline.par_eff_low = 2.0;
    config.pipeline.par_eff_high = 3.0;
    NodeClassificationTrainer trainer(&g, config);
    return trainer.TrainEpoch();
  };
  const EpochStats fixed = run(false);
  const EpochStats adaptive = run(true);
  EXPECT_EQ(adaptive.loss, fixed.loss);
  ASSERT_GT(adaptive.num_partition_sets, 1);
  EXPECT_GE(adaptive.resize_count, 1);  // shrank 2 -> 1 mid-epoch
  EXPECT_EQ(fixed.resize_count, 0);
  EXPECT_EQ(adaptive.workers_per_set.front(), 2);
  EXPECT_EQ(adaptive.workers_per_set.back(), 1);
}

TEST(LinkPrediction, EpochFallbackModeHoldsWorkersWithinEpoch) {
  // adaptive_within_epoch = false restores the legacy epoch-granularity
  // behavior: every set of an epoch runs the same worker count, resizes only
  // happen between epochs, and the forced shrink steps once per epoch.
  Graph g = Fb15k237Like(0.05);
  ThreadPool pool(4);
  TrainingConfig config = SmallLpConfig();
  config.storage.use_disk = true;
  config.storage.num_physical = 8;
  config.storage.num_logical = 4;
  config.storage.buffer_capacity = 4;
  config.pipeline.enabled = true;
  config.pipeline.workers = 2;
  config.pipeline.parallel_compute = true;
  config.pipeline.compute_pool = &pool;
  config.pipeline.pipeline_pool = &pool;
  config.pipeline.adaptive_workers = true;
  config.pipeline.adaptive_within_epoch = false;
  config.pipeline.par_eff_low = 2.0;
  config.pipeline.par_eff_high = 3.0;
  LinkPredictionTrainer trainer(&g, config);
  const EpochStats first = trainer.TrainEpoch();
  const EpochStats second = trainer.TrainEpoch();
  EXPECT_EQ(first.pipeline_workers, 2);
  EXPECT_EQ(first.resize_count, 0);
  for (int w : first.workers_per_set) {
    EXPECT_EQ(w, 2);
  }
  EXPECT_EQ(second.pipeline_workers, 1);  // one shrink at the epoch boundary
  EXPECT_EQ(second.resize_count, 0);
  for (int w : second.workers_per_set) {
    EXPECT_EQ(w, 1);
  }
}

// ---------------------------------------------------------------------------
// Golden-trajectory regression gate. The determinism sweeps above prove that
// worker counts, prefetch, and parallel compute cannot change the batch stream;
// these tests pin the stream itself. The reference values are the bit-exact
// loss/MRR/accuracy trajectories of the checked-in implementation (fixed seed,
// IEEE-754 double, no fast-math anywhere in the build), so any future change
// that silently alters batch construction, seeding, reduction order, or
// consumption order fails tier-1 here instead of only in the determinism sweeps.
//
// To regenerate after an INTENTIONAL stream change: run with
// --gtest_filter='GoldenTrajectory.*' and copy the "actual" values each failing
// test prints (they are emitted with %.17g, enough digits to round-trip).

struct GoldenRun {
  std::vector<double> losses;  // per-epoch mean loss
  double metric = 0.0;         // MRR (LP) or test accuracy (NC)
};

void ExpectGolden(const GoldenRun& run, const std::vector<double>& want_losses,
                  double want_metric) {
  ASSERT_EQ(run.losses.size(), want_losses.size());
  for (size_t e = 0; e < want_losses.size(); ++e) {
    EXPECT_EQ(run.losses[e], want_losses[e])
        << "epoch " << e << " actual loss: "
        << ::testing::PrintToString(run.losses[e]).c_str();
  }
  EXPECT_EQ(run.metric, want_metric);
  std::printf("golden actuals: losses={");
  for (size_t e = 0; e < run.losses.size(); ++e) {
    std::printf("%s%.17g", e == 0 ? "" : ", ", run.losses[e]);
  }
  std::printf("}, metric=%.17g\n", run.metric);
}

// With `resume`, the run is interrupted after epoch 1: the first trainer saves a
// checkpoint and is destroyed, a second trainer (same config) restores it and
// trains the remaining epoch. The checkpoint layer guarantees the stitched
// trajectory is bitwise-identical to the uninterrupted one, so both variants
// must reproduce the same golden constants.
GoldenRun GoldenLpRun(bool use_disk, bool resume = false) {
  Graph g = Fb15k237Like(0.03);
  TrainingConfig config = SmallLpConfig();
  config.pipeline.enabled = true;
  config.pipeline.workers = 2;
  if (use_disk) {
    config.storage.use_disk = true;
    config.storage.num_physical = 8;
    config.storage.num_logical = 4;
    config.storage.buffer_capacity = 4;
  }
  GoldenRun run;
  if (!resume) {
    LinkPredictionTrainer trainer(&g, config);
    for (int e = 0; e < 2; ++e) {
      run.losses.push_back(trainer.TrainEpoch().loss);
    }
    run.metric = trainer.EvaluateMrr(50, 100);
    return run;
  }
  const std::string ckpt = TempPath("mgnn_golden_lp_ckpt");
  {
    LinkPredictionTrainer trainer(&g, config);
    run.losses.push_back(trainer.TrainEpoch().loss);
    trainer.SaveCheckpoint(ckpt);
  }
  LinkPredictionTrainer resumed(&g, config);
  resumed.ResumeFrom(ckpt);
  EXPECT_EQ(resumed.epochs_completed(), 1);
  run.losses.push_back(resumed.TrainEpoch().loss);
  run.metric = resumed.EvaluateMrr(50, 100);
  std::remove(ckpt.c_str());
  return run;
}

GoldenRun GoldenNcRun(bool use_disk, bool resume = false) {
  Graph g = PapersMini(0.05);
  TrainingConfig config = SmallNcConfig();
  config.pipeline.enabled = true;
  config.pipeline.workers = 2;
  if (use_disk) {
    config.storage.use_disk = true;
    config.storage.num_physical = 16;
    config.storage.buffer_capacity = 8;
  }
  GoldenRun run;
  if (!resume) {
    NodeClassificationTrainer trainer(&g, config);
    for (int e = 0; e < 2; ++e) {
      run.losses.push_back(trainer.TrainEpoch().loss);
    }
    run.metric = trainer.EvaluateTestAccuracy();
    return run;
  }
  const std::string ckpt = TempPath("mgnn_golden_nc_ckpt");
  {
    NodeClassificationTrainer trainer(&g, config);
    run.losses.push_back(trainer.TrainEpoch().loss);
    trainer.SaveCheckpoint(ckpt);
  }
  NodeClassificationTrainer resumed(&g, config);
  resumed.ResumeFrom(ckpt);
  EXPECT_EQ(resumed.epochs_completed(), 1);
  run.losses.push_back(resumed.TrainEpoch().loss);
  run.metric = resumed.EvaluateTestAccuracy();
  std::remove(ckpt.c_str());
  return run;
}

// MRR constants regenerated when RankOfPositive moved to the average-rank tie
// convention (the losses are untouched: the batch stream did not change).
TEST(GoldenTrajectory, LinkPredictionInMemory) {
  ExpectGolden(GoldenLpRun(false),
               {2.9370360056559246, 2.0135522921880087}, 0.48917109523447394);
}

TEST(GoldenTrajectory, LinkPredictionDisk) {
  ExpectGolden(GoldenLpRun(true),
               {3.0713760495185851, 2.3424148057636462}, 0.4393313931734697);
}

TEST(GoldenTrajectory, NodeClassificationInMemory) {
  ExpectGolden(GoldenNcRun(false),
               {8.0975475311279297, 3.2635064125061035}, 0.34666666666666668);
}

TEST(GoldenTrajectory, NodeClassificationDisk) {
  ExpectGolden(GoldenNcRun(true),
               {8.3907327651977539, 3.291311502456665}, 0.35333333333333333);
}

// Checkpoint-resume must land on the SAME constants as the uninterrupted runs
// above: an epoch-k snapshot restores optimizer/embedding/RNG state exactly, so
// the continuation is bitwise-identical (the strongest checkpoint correctness
// guarantee the determinism contract makes possible).

TEST(GoldenTrajectory, LinkPredictionInMemoryResume) {
  ExpectGolden(GoldenLpRun(false, /*resume=*/true),
               {2.9370360056559246, 2.0135522921880087}, 0.48917109523447394);
}

TEST(GoldenTrajectory, LinkPredictionDiskResume) {
  ExpectGolden(GoldenLpRun(true, /*resume=*/true),
               {3.0713760495185851, 2.3424148057636462}, 0.4393313931734697);
}

TEST(GoldenTrajectory, NodeClassificationInMemoryResume) {
  ExpectGolden(GoldenNcRun(false, /*resume=*/true),
               {8.0975475311279297, 3.2635064125061035}, 0.34666666666666668);
}

TEST(GoldenTrajectory, NodeClassificationDiskResume) {
  ExpectGolden(GoldenNcRun(true, /*resume=*/true),
               {8.3907327651977539, 3.291311502456665}, 0.35333333333333333);
}

TEST(Metrics, RankOfPositive) {
  EXPECT_EQ(RankOfPositive(1.0f, {0.5f, 0.2f}), 1);
  EXPECT_EQ(RankOfPositive(0.3f, {0.5f, 0.2f}), 2);
  EXPECT_EQ(RankOfPositive(0.1f, {0.5f, 0.2f}), 3);
  // Average-rank tie convention: a positive tied with k negatives ranks
  // 1 + (k + 1) / 2 (half-up), not the truncated k / 2 that gave a positive
  // tied with one negative full credit.
  EXPECT_EQ(RankOfPositive(0.5f, {0.5f, 0.2f}), 2);   // one tie: no full credit
  EXPECT_EQ(RankOfPositive(0.5f, {0.5f, 0.5f}), 2);   // two ties split around it
  EXPECT_EQ(RankOfPositive(0.5f, {0.5f, 0.5f, 0.5f}), 3);
  EXPECT_EQ(RankOfPositive(0.5f, {0.9f, 0.5f}), 3);   // greater + tie combine
}

TEST(Metrics, MrrFromRanks) {
  EXPECT_DOUBLE_EQ(MrrFromRanks({1, 2, 4}), (1.0 + 0.5 + 0.25) / 3.0);
  EXPECT_DOUBLE_EQ(MrrFromRanks({}), 0.0);
}

TEST(Metrics, CostModel) {
  CostModel cost;
  EXPECT_NEAR(cost.CostFor("p3.2xlarge", 3600.0), 3.06, 1e-9);
  EXPECT_NEAR(cost.CostFor("p3.16xlarge", 1800.0), 12.24, 1e-9);
}

// The per-epoch determinism hash (ordered FNV-1a fold of batch-loss bits,
// docs/DETERMINISM.md) must be bit-equal across serial, 8-worker, and
// save/resume runs of the same config — one u64 per epoch subsumes the
// loss/MRR trajectory comparisons above — and no run may trip an RV monitor.

TEST(DeterminismHash, LinkPredictionSerialVs8WorkerVsResume) {
  Graph g = Fb15k237Like(0.05);
  uint64_t serial_hash[2] = {0, 0};
  {
    TrainingConfig config = SmallLpConfig();
    LinkPredictionTrainer serial(&g, config);
    for (int e = 0; e < 2; ++e) {
      const EpochStats stats = serial.TrainEpoch();
      serial_hash[e] = stats.determinism_hash;
      EXPECT_EQ(stats.rv_violations, 0u);
    }
  }
  EXPECT_NE(serial_hash[0], 0u);
  EXPECT_NE(serial_hash[0], serial_hash[1]);  // the model moved between epochs

  TrainingConfig config = SmallLpConfig();
  config.pipeline.enabled = true;
  config.pipeline.workers = 8;
  const std::string ckpt = TempPath("hash_lp_resume");
  {
    LinkPredictionTrainer parallel(&g, config);
    for (int e = 0; e < 2; ++e) {
      const EpochStats stats = parallel.TrainEpoch();
      EXPECT_EQ(stats.determinism_hash, serial_hash[e]);
      EXPECT_EQ(stats.rv_violations, 0u);
      if (e == 0) {
        parallel.SaveCheckpoint(ckpt);
      }
    }
    EXPECT_EQ(parallel.last_determinism_hash(), serial_hash[1]);
  }
  {
    LinkPredictionTrainer resumed(&g, config);
    EXPECT_EQ(resumed.last_determinism_hash(), 0u);
    resumed.ResumeFrom(ckpt);
    // The checkpoint manifest carried epoch 1's hash.
    EXPECT_EQ(resumed.last_determinism_hash(), serial_hash[0]);
    const EpochStats stats = resumed.TrainEpoch();
    EXPECT_EQ(stats.determinism_hash, serial_hash[1]);
    EXPECT_EQ(stats.rv_violations, 0u);
  }
  std::remove(ckpt.c_str());
}

TEST(DeterminismHash, LinkPredictionDiskMatchesDiskSerial) {
  // Disk mode partitions the epoch differently from in-memory (its own batch
  // stream), but within the mode the hash must be invariant to pipelining,
  // prefetch, and resume.
  Graph g = Fb15k237Like(0.05);
  auto disk_config = [&](bool pipelined) {
    TrainingConfig config = SmallLpConfig();
    config.storage.use_disk = true;
    config.storage.num_physical = 8;
    config.storage.num_logical = 4;
    config.storage.buffer_capacity = 4;
    config.pipeline.enabled = pipelined;
    config.pipeline.workers = 8;
    config.storage.prefetch = pipelined;
    return config;
  };
  uint64_t serial_hash[2] = {0, 0};
  {
    LinkPredictionTrainer serial(&g, disk_config(false));
    for (int e = 0; e < 2; ++e) {
      const EpochStats stats = serial.TrainEpoch();
      serial_hash[e] = stats.determinism_hash;
      EXPECT_EQ(stats.rv_violations, 0u);
    }
  }
  {
    LinkPredictionTrainer parallel(&g, disk_config(true));
    for (int e = 0; e < 2; ++e) {
      const EpochStats stats = parallel.TrainEpoch();
      EXPECT_EQ(stats.determinism_hash, serial_hash[e]);
      EXPECT_EQ(stats.rv_violations, 0u);
    }
  }
}

TEST(DeterminismHash, NodeClassificationSerialVs8WorkerVsResume) {
  Graph g = PapersMini(0.08);
  uint64_t serial_hash[2] = {0, 0};
  {
    TrainingConfig config = SmallNcConfig();
    NodeClassificationTrainer serial(&g, config);
    for (int e = 0; e < 2; ++e) {
      const EpochStats stats = serial.TrainEpoch();
      serial_hash[e] = stats.determinism_hash;
      EXPECT_EQ(stats.rv_violations, 0u);
    }
  }
  EXPECT_NE(serial_hash[0], 0u);

  TrainingConfig config = SmallNcConfig();
  config.pipeline.enabled = true;
  config.pipeline.workers = 8;
  const std::string ckpt = TempPath("hash_nc_resume");
  {
    NodeClassificationTrainer parallel(&g, config);
    for (int e = 0; e < 2; ++e) {
      const EpochStats stats = parallel.TrainEpoch();
      EXPECT_EQ(stats.determinism_hash, serial_hash[e]);
      EXPECT_EQ(stats.rv_violations, 0u);
      if (e == 0) {
        parallel.SaveCheckpoint(ckpt);
      }
    }
  }
  {
    NodeClassificationTrainer resumed(&g, config);
    resumed.ResumeFrom(ckpt);
    EXPECT_EQ(resumed.last_determinism_hash(), serial_hash[0]);
    const EpochStats stats = resumed.TrainEpoch();
    EXPECT_EQ(stats.determinism_hash, serial_hash[1]);
    EXPECT_EQ(stats.rv_violations, 0u);
  }
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace mariusgnn
