// Gradient-checked tests for GNN layers, encoders, decoders, the linear head, and
// optimizers. Analytic backward passes are validated against central finite
// differences — the strongest correctness evidence for a manual-backprop library.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <memory>
#include <numeric>

#include "src/data/datasets.h"
#include "src/nn/decoder.h"
#include "src/nn/encoder.h"
#include "src/nn/gat.h"
#include "src/nn/gcn.h"
#include "src/nn/graphsage.h"
#include "src/nn/linear.h"
#include "src/nn/optimizer.h"
#include "src/storage/embedding_store.h"
#include "src/tensor/ops.h"
#include "src/util/threadpool.h"

namespace mariusgnn {
namespace {

// Small fixed view: 5 input rows, 2 output nodes.
LayerView MakeView(const Tensor* h) {
  LayerView view;
  view.h = h;
  view.self_rows = {3, 4};
  view.nbr_rows = {0, 1, 2, 1};
  view.seg_offsets = {0, 3, 4};
  view.nbr_rels = {0, 0, 0, 0};
  return view;
}

// loss = <weights, layer(h)>; returns loss and, via Backward, analytic gradients.
double LayerLoss(GnnLayer& layer, const Tensor& h, const Tensor& w_out,
                 Tensor* dh = nullptr) {
  LayerView view = MakeView(&h);
  std::unique_ptr<LayerContext> ctx;
  Tensor out = layer.Forward(view, &ctx);
  double loss = 0.0;
  for (int64_t i = 0; i < out.size(); ++i) {
    loss += static_cast<double>(out.data()[i]) * w_out.data()[i];
  }
  if (dh != nullptr) {
    *dh = layer.Backward(*ctx, w_out);
  }
  return loss;
}

void CheckInputGradient(GnnLayer& layer, uint64_t seed) {
  Rng rng(seed);
  Tensor h = Tensor::Normal(5, layer.in_dim(), 0.7f, rng);
  Tensor w_out = Tensor::Normal(2, layer.out_dim(), 0.9f, rng);

  for (Parameter* p : layer.Parameters()) {
    p->ZeroGrad();
  }
  Tensor dh;
  LayerLoss(layer, h, w_out, &dh);
  ASSERT_EQ(dh.rows(), 5);
  ASSERT_EQ(dh.cols(), layer.in_dim());

  const float eps = 1e-3f;
  for (int64_t i = 0; i < h.size(); ++i) {
    Tensor hp = h, hm = h;
    hp.data()[i] += eps;
    hm.data()[i] -= eps;
    const double numeric =
        (LayerLoss(layer, hp, w_out) - LayerLoss(layer, hm, w_out)) / (2.0 * eps);
    EXPECT_NEAR(dh.data()[i], numeric, 2e-2 * (1.0 + std::abs(numeric)))
        << "input grad mismatch at flat index " << i;
  }
}

void CheckWeightGradients(GnnLayer& layer, uint64_t seed) {
  Rng rng(seed);
  Tensor h = Tensor::Normal(5, layer.in_dim(), 0.7f, rng);
  Tensor w_out = Tensor::Normal(2, layer.out_dim(), 0.9f, rng);

  for (Parameter* p : layer.Parameters()) {
    p->ZeroGrad();
  }
  LayerLoss(layer, h, w_out, nullptr);
  std::unique_ptr<LayerContext> ctx;
  LayerView view = MakeView(&h);
  Tensor out = layer.Forward(view, &ctx);
  layer.Backward(*ctx, w_out);

  const float eps = 1e-3f;
  for (Parameter* p : layer.Parameters()) {
    // Probe a handful of entries of each parameter.
    const int64_t probes = std::min<int64_t>(p->value.size(), 6);
    for (int64_t k = 0; k < probes; ++k) {
      const int64_t i = k * std::max<int64_t>(1, p->value.size() / probes);
      const float orig = p->value.data()[i];
      p->value.data()[i] = orig + eps;
      const double fp = LayerLoss(layer, h, w_out);
      p->value.data()[i] = orig - eps;
      const double fm = LayerLoss(layer, h, w_out);
      p->value.data()[i] = orig;
      const double numeric = (fp - fm) / (2.0 * eps);
      EXPECT_NEAR(p->grad.data()[i], numeric, 2e-2 * (1.0 + std::abs(numeric)))
          << "weight grad mismatch";
    }
  }
}

TEST(GraphSage, InputGradient) {
  Rng rng(1);
  GraphSageLayer layer(3, 4, Activation::kRelu, rng);
  CheckInputGradient(layer, 10);
}

TEST(GraphSage, WeightGradients) {
  Rng rng(2);
  GraphSageLayer layer(3, 4, Activation::kTanh, rng);
  CheckWeightGradients(layer, 11);
}

TEST(GraphSage, NoActivationGradient) {
  Rng rng(3);
  GraphSageLayer layer(3, 3, Activation::kNone, rng);
  CheckInputGradient(layer, 12);
}

TEST(Gcn, InputGradient) {
  Rng rng(4);
  GcnLayer layer(3, 4, Activation::kRelu, rng);
  CheckInputGradient(layer, 13);
}

TEST(Gcn, WeightGradients) {
  Rng rng(5);
  GcnLayer layer(3, 4, Activation::kNone, rng);
  CheckWeightGradients(layer, 14);
}

TEST(Gat, InputGradient) {
  Rng rng(6);
  GatLayer layer(3, 4, Activation::kNone, rng);
  CheckInputGradient(layer, 15);
}

TEST(Gat, WeightGradients) {
  Rng rng(7);
  GatLayer layer(3, 4, Activation::kTanh, rng);
  CheckWeightGradients(layer, 16);
}

TEST(Gat, AttentionWeightsSumToOnePerSegment) {
  Rng rng(8);
  GatLayer layer(3, 4, Activation::kNone, rng);
  Tensor h = Tensor::Normal(5, 3, 1.0f, rng);
  LayerView view = MakeView(&h);
  std::unique_ptr<LayerContext> ctx;
  Tensor out = layer.Forward(view, &ctx);
  EXPECT_EQ(out.rows(), 2);
  EXPECT_EQ(out.cols(), 4);
}

TEST(Linear, GradientNumeric) {
  Rng rng(9);
  LinearLayer layer(4, 3, rng);
  Tensor input = Tensor::Normal(6, 4, 1.0f, rng);
  Tensor w_out = Tensor::Normal(6, 3, 1.0f, rng);

  auto loss_fn = [&](const Tensor& in) {
    Tensor out = layer.Forward(in);
    double loss = 0.0;
    for (int64_t i = 0; i < out.size(); ++i) {
      loss += static_cast<double>(out.data()[i]) * w_out.data()[i];
    }
    return loss;
  };
  loss_fn(input);
  Tensor din = layer.Backward(w_out);

  const float eps = 1e-3f;
  for (int64_t i = 0; i < input.size(); ++i) {
    Tensor ip = input, im = input;
    ip.data()[i] += eps;
    im.data()[i] -= eps;
    EXPECT_NEAR(din.data()[i], (loss_fn(ip) - loss_fn(im)) / (2 * eps), 1e-2);
  }
}

// Full-encoder gradient check: d loss / d H0 through two DENSE layers.
TEST(GnnEncoder, EndToEndInputGradient) {
  Graph g = Fb15k237Like(0.05);
  NeighborIndex index(g);
  Rng rng(17);
  GnnEncoder encoder(GnnLayerType::kGraphSage, {3, 4, 3}, Activation::kRelu, rng);
  DenseSampler sampler(&index, {3, 3}, EdgeDirection::kBoth, 21);
  std::vector<int64_t> targets = {0, 1, 2};

  DenseBatch proto = sampler.Sample(targets);
  proto.FinalizeForDevice();
  Tensor h0 = Tensor::Normal(proto.num_nodes(), 3, 0.5f, rng);
  Tensor w_out = Tensor::Normal(static_cast<int64_t>(targets.size()), 3, 1.0f, rng);

  auto loss_fn = [&](const Tensor& h) {
    DenseBatch batch = proto;  // copy: Forward consumes the batch
    Tensor out = encoder.Forward(batch, h);
    double loss = 0.0;
    for (int64_t i = 0; i < out.size(); ++i) {
      loss += static_cast<double>(out.data()[i]) * w_out.data()[i];
    }
    return loss;
  };

  loss_fn(h0);
  Tensor dh0 = encoder.Backward(w_out);
  ASSERT_EQ(dh0.rows(), proto.num_nodes());

  const float eps = 1e-2f;
  int64_t checked = 0;
  for (int64_t i = 0; i < h0.size() && checked < 40; i += 7, ++checked) {
    Tensor hp = h0, hm = h0;
    hp.data()[i] += eps;
    hm.data()[i] -= eps;
    const double numeric = (loss_fn(hp) - loss_fn(hm)) / (2.0 * eps);
    EXPECT_NEAR(dh0.data()[i], numeric, 5e-2 * (1.0 + std::abs(numeric)));
  }
}

// Block-encoder path: the same check through the baseline execution path.
TEST(BlockEncoder, EndToEndInputGradient) {
  Graph g = Fb15k237Like(0.05);
  NeighborIndex index(g);
  Rng rng(18);
  BlockEncoder encoder(GnnLayerType::kGraphSage, {3, 4, 3}, Activation::kRelu, rng);
  LayerwiseSampler sampler(&index, {3, 3}, EdgeDirection::kBoth, 22);
  std::vector<int64_t> targets = {0, 1, 2};
  LayerwiseSample sample = sampler.Sample(targets);
  Tensor h0 = Tensor::Normal(sample.NumInputNodes(), 3, 0.5f, rng);
  Tensor w_out = Tensor::Normal(3, 3, 1.0f, rng);

  auto loss_fn = [&](const Tensor& h) {
    Tensor out = encoder.Forward(sample, h);
    double loss = 0.0;
    for (int64_t i = 0; i < out.size(); ++i) {
      loss += static_cast<double>(out.data()[i]) * w_out.data()[i];
    }
    return loss;
  };
  loss_fn(h0);
  Tensor dh0 = encoder.Backward(w_out);

  const float eps = 1e-2f;
  int64_t checked = 0;
  for (int64_t i = 0; i < h0.size() && checked < 40; i += 5, ++checked) {
    Tensor hp = h0, hm = h0;
    hp.data()[i] += eps;
    hm.data()[i] -= eps;
    const double numeric = (loss_fn(hp) - loss_fn(hm)) / (2.0 * eps);
    EXPECT_NEAR(dh0.data()[i], numeric, 5e-2 * (1.0 + std::abs(numeric)));
  }
}

// Decoder gradient checks: perturb node representations and relation embeddings.
class DecoderGradTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DecoderGradTest, ReprAndRelationGradients) {
  Rng rng(19);
  const int64_t dim = 4;
  auto decoder = MakeDecoder(GetParam(), 3, dim, rng);
  Tensor reprs = Tensor::Normal(8, dim, 0.8f, rng);
  std::vector<int64_t> src = {0, 1, 2};
  std::vector<int64_t> dst = {3, 4, 5};
  std::vector<int32_t> rels = {0, 1, 2};
  std::vector<int64_t> negs = {6, 7};

  auto loss_fn = [&](const Tensor& r) {
    Tensor d(r.rows(), r.cols());
    // Zero the relation grads accumulated by the probe call.
    for (Parameter* p : decoder->Parameters()) {
      p->ZeroGrad();
    }
    return decoder->LossAndGrad(r, src, dst, rels, negs, &d);
  };

  for (Parameter* p : decoder->Parameters()) {
    p->ZeroGrad();
  }
  Tensor d_reprs(reprs.rows(), reprs.cols());
  const float loss = decoder->LossAndGrad(reprs, src, dst, rels, negs, &d_reprs);
  EXPECT_GT(loss, 0.0f);
  Tensor rel_grad = decoder->Parameters()[0]->grad;

  const float eps = 1e-3f;
  for (int64_t i = 0; i < reprs.size(); i += 3) {
    Tensor rp = reprs, rm = reprs;
    rp.data()[i] += eps;
    rm.data()[i] -= eps;
    const double numeric = (loss_fn(rp) - loss_fn(rm)) / (2.0 * eps);
    EXPECT_NEAR(d_reprs.data()[i], numeric, 2e-2 * (1.0 + std::abs(numeric)))
        << GetParam() << " repr grad at " << i;
  }

  Parameter* rel = decoder->Parameters()[0];
  for (int64_t i = 0; i < rel->value.size(); i += 2) {
    const float orig = rel->value.data()[i];
    rel->value.data()[i] = orig + eps;
    const double fp = loss_fn(reprs);
    rel->value.data()[i] = orig - eps;
    const double fm = loss_fn(reprs);
    rel->value.data()[i] = orig;
    const double numeric = (fp - fm) / (2.0 * eps);
    EXPECT_NEAR(rel_grad.data()[i], numeric, 2e-2 * (1.0 + std::abs(numeric)))
        << GetParam() << " relation grad at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDecoders, DecoderGradTest,
                         ::testing::Values("distmult", "transe", "complex"));

TEST(Decoder, ScoreCandidatesMatchesLossSideScores) {
  Rng rng(20);
  DistMultDecoder decoder(2, 4, rng);
  Tensor reprs = Tensor::Normal(5, 4, 1.0f, rng);
  std::vector<float> scores;
  decoder.ScoreCandidates(reprs, 0, 1, {1, 2, 3}, false, &scores);
  ASSERT_EQ(scores.size(), 3u);
  // DistMult is symmetric: corrupting src with the same candidates gives the same
  // scores when the fixed node is swapped.
  std::vector<float> scores_src;
  decoder.ScoreCandidates(reprs, 0, 1, {1, 2, 3}, true, &scores_src);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(scores[i], scores_src[i], 1e-5);
  }
}

TEST(Decoder, TrainingReducesLoss) {
  // A few Adagrad steps on a tiny fixed batch must reduce the ranking loss.
  Rng rng(21);
  DistMultDecoder decoder(2, 8, rng);
  Tensor reprs = Tensor::Normal(6, 8, 0.5f, rng);
  std::vector<int64_t> src = {0, 1};
  std::vector<int64_t> dst = {2, 3};
  std::vector<int32_t> rels = {0, 1};
  std::vector<int64_t> negs = {4, 5};
  Adagrad opt(0.1f);

  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 30; ++step) {
    for (Parameter* p : decoder.Parameters()) {
      p->ZeroGrad();
    }
    Tensor d(reprs.rows(), reprs.cols());
    const float loss = decoder.LossAndGrad(reprs, src, dst, rels, negs, &d);
    if (step == 0) {
      first = loss;
    }
    last = loss;
    Axpy(reprs, d, -0.5f);
    for (Parameter* p : decoder.Parameters()) {
      opt.Step(*p);
      p->ZeroGrad();
    }
  }
  EXPECT_LT(last, first * 0.8f);
}

TEST(Optimizer, SgdStep) {
  Parameter p(Tensor::Full(2, 2, 1.0f));
  p.grad.Fill(0.5f);
  Sgd opt(0.1f);
  opt.Step(p);
  EXPECT_FLOAT_EQ(p.value(0, 0), 0.95f);
}

TEST(Optimizer, AdagradShrinksEffectiveStep) {
  Parameter p(Tensor::Full(1, 1, 0.0f));
  Adagrad opt(1.0f);
  p.grad.Fill(1.0f);
  opt.Step(p);
  const float first_step = -p.value(0, 0);
  p.grad.Fill(1.0f);
  opt.Step(p);
  const float second_step = first_step - (-p.value(0, 0) - first_step);
  EXPECT_GT(first_step, 0.0f);
  // Second update is smaller in magnitude than the first.
  EXPECT_LT(std::abs(-p.value(0, 0) - first_step), first_step);
  (void)second_step;
}

TEST(Optimizer, StepAllZerosGrads) {
  Parameter a(Tensor::Full(1, 1, 1.0f)), b(Tensor::Full(1, 1, 2.0f));
  a.grad.Fill(1.0f);
  b.grad.Fill(1.0f);
  Sgd opt(0.1f);
  opt.StepAll({&a, &b});
  EXPECT_FLOAT_EQ(a.grad(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(b.grad(0, 0), 0.0f);
  EXPECT_LT(a.value(0, 0), 1.0f);
}

// Semantic equivalence: a 2-layer GraphSage forward through DENSE (with full fanout)
// must equal a direct reference computation over explicit neighbor lists.
TEST(GnnEncoder, MatchesDirectReferenceOnFullNeighborhoods) {
  // A=0..E=4; incoming: A:{C,D}, B:{C}, C:{E}, D:{C} (the dense_test graph).
  std::vector<Edge> edges = {{2, 0, 0}, {3, 0, 0}, {2, 1, 0}, {4, 2, 0}, {2, 3, 0}};
  Graph g(5, std::move(edges));
  NeighborIndex index(g);

  Rng rng(31);
  const int64_t d = 3;
  GnnEncoder encoder(GnnLayerType::kGraphSage, {d, d, d}, Activation::kRelu, rng);
  DenseSampler sampler(&index, {10, 10}, EdgeDirection::kIncoming, 1);
  DenseBatch batch = sampler.Sample({0, 1});
  batch.FinalizeForDevice();
  Rng frng(7);
  Tensor h_all = Tensor::Normal(5, d, 1.0f, frng);
  Tensor h0 = IndexSelect(h_all, batch.node_ids);
  Tensor out = encoder.Forward(batch, h0);
  ASSERT_EQ(out.rows(), 2);

  // Reference: apply the same two layers node-by-node over the full graph. Layer
  // parameters are read out of the encoder.
  auto params = encoder.Parameters();
  ASSERT_EQ(params.size(), 6u);
  const Tensor &w_self1 = params[0]->value, &w_nbr1 = params[1]->value,
               &b1 = params[2]->value;
  const Tensor &w_self2 = params[3]->value, &w_nbr2 = params[4]->value,
               &b2 = params[5]->value;
  std::vector<std::vector<int64_t>> in_nbrs = {{2, 3}, {2}, {4}, {2}, {}};

  auto layer = [&](const Tensor& h, const Tensor& ws, const Tensor& wn, const Tensor& b,
                   bool relu) {
    Tensor out_ref(5, d);
    for (int64_t v = 0; v < 5; ++v) {
      Tensor self(1, d), mean(1, d);
      std::copy(h.RowPtr(v), h.RowPtr(v) + d, self.data());
      const auto& nb = in_nbrs[static_cast<size_t>(v)];
      for (int64_t u : nb) {
        for (int64_t k = 0; k < d; ++k) {
          mean.data()[k] += h(u, k) / static_cast<float>(nb.size());
        }
      }
      Tensor pre = Matmul(self, ws);
      AddInPlace(pre, Matmul(mean, wn));
      AddBiasRows(pre, b);
      if (relu) {
        pre = Relu(pre);
      }
      std::copy(pre.data(), pre.data() + d, out_ref.RowPtr(v));
    }
    return out_ref;
  };
  Tensor h1 = layer(h_all, w_self1, w_nbr1, b1, /*relu=*/true);
  Tensor h2 = layer(h1, w_self2, w_nbr2, b2, /*relu=*/false);

  for (int64_t t = 0; t < 2; ++t) {  // targets A=0, B=1
    for (int64_t k = 0; k < d; ++k) {
      EXPECT_NEAR(out(t, k), h2(t, k), 1e-4) << "target " << t << " dim " << k;
    }
  }
}

TEST(Encoder, ParameterCounts) {
  Rng rng(22);
  GnnEncoder sage(GnnLayerType::kGraphSage, {8, 8, 8}, Activation::kRelu, rng);
  EXPECT_EQ(sage.Parameters().size(), 6u);  // 2 layers x (w_self, w_nbr, bias)
  GnnEncoder gat(GnnLayerType::kGat, {8, 8}, Activation::kRelu, rng);
  EXPECT_EQ(gat.Parameters().size(), 5u);
  GnnEncoder gcn(GnnLayerType::kGcn, {8, 8}, Activation::kRelu, rng);
  EXPECT_EQ(gcn.Parameters().size(), 2u);
}

// ---------------------------------------------------------------------------
// Bitwise determinism of the parallel compute path through the nn layer: every
// forward output, input gradient, weight gradient, decoder gradient, and sharded
// Adagrad update must be byte-identical for a null context and 1/2/8-worker
// pools (the tensor-level version of this sweep lives in tensor_test.cc).
// ---------------------------------------------------------------------------

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.size()) * sizeof(float)) == 0;
}

// A view large enough that every chunk grain is exceeded: 250 output segments
// (several row chunks) over ~900 neighbor entries (several edge chunks).
LayerView MakeBigView(const Tensor* h, Rng& rng) {
  LayerView view;
  view.h = h;
  const int64_t num_out = 250;
  const int64_t num_in = h->rows();
  view.self_rows.resize(static_cast<size_t>(num_out));
  for (int64_t s = 0; s < num_out; ++s) {
    view.self_rows[static_cast<size_t>(s)] = static_cast<int64_t>(rng.UniformInt(
        static_cast<uint64_t>(num_in)));
  }
  view.seg_offsets = {0};
  for (int64_t s = 0; s < num_out; ++s) {
    view.seg_offsets.push_back(view.seg_offsets.back() +
                               static_cast<int64_t>(rng.UniformInt(8)));
  }
  view.nbr_rows.resize(static_cast<size_t>(view.seg_offsets.back()));
  for (auto& r : view.nbr_rows) {
    r = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(num_in)));
  }
  view.nbr_rels.assign(view.nbr_rows.size(), 0);
  return view;
}

// Builds a fresh layer (same seed => same weights), runs forward + backward under
// `ctx`, and returns (out, dh, each parameter grad) for bitwise comparison.
std::vector<Tensor> RunLayerOnce(GnnLayerType type, const ComputeContext* ctx) {
  Rng rng(7777);
  const int64_t in_dim = 24, out_dim = 16;
  std::unique_ptr<GnnLayer> layer;
  switch (type) {
    case GnnLayerType::kGraphSage:
      layer = std::make_unique<GraphSageLayer>(in_dim, out_dim, Activation::kRelu, rng);
      break;
    case GnnLayerType::kGcn:
      layer = std::make_unique<GcnLayer>(in_dim, out_dim, Activation::kRelu, rng);
      break;
    case GnnLayerType::kGat:
      layer = std::make_unique<GatLayer>(in_dim, out_dim, Activation::kRelu, rng);
      break;
  }
  Tensor h = Tensor::Normal(400, in_dim, 0.8f, rng);
  LayerView view = MakeBigView(&h, rng);
  view.compute = ctx;
  std::unique_ptr<LayerContext> saved;
  Tensor out = layer->Forward(view, &saved);
  Tensor grad_out = Tensor::Normal(out.rows(), out.cols(), 0.5f, rng);
  Tensor dh = layer->Backward(*saved, grad_out);

  std::vector<Tensor> results = {std::move(out), std::move(dh)};
  for (Parameter* p : layer->Parameters()) {
    results.push_back(p->grad);
  }
  return results;
}

void CheckLayerDeterministicAcrossPools(GnnLayerType type) {
  const std::vector<Tensor> serial = RunLayerOnce(type, nullptr);
  for (size_t workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    ComputeContext ctx;
    ctx.pool = &pool;
    const std::vector<Tensor> parallel = RunLayerOnce(type, &ctx);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(BitwiseEqual(parallel[i], serial[i]))
          << "tensor " << i << " diverged with " << workers << " workers";
    }
  }
}

TEST(ParallelDeterminism, GraphSageForwardBackward) {
  CheckLayerDeterministicAcrossPools(GnnLayerType::kGraphSage);
}

TEST(ParallelDeterminism, GcnForwardBackward) {
  CheckLayerDeterministicAcrossPools(GnnLayerType::kGcn);
}

TEST(ParallelDeterminism, GatForwardBackward) {
  CheckLayerDeterministicAcrossPools(GnnLayerType::kGat);
}

TEST(ParallelDeterminism, DecoderLossAndGrad) {
  // 400 positive edges (> kComputeGrainEdges) against 50 shared negatives; the
  // per-chunk gradient partials must fold to identical bits for any pool size.
  auto run = [&](const ComputeContext* ctx) {
    Rng rng(4242);
    DistMultDecoder decoder(5, 24, rng);
    decoder.set_compute(ctx);
    Tensor reprs = Tensor::Normal(300, 24, 0.7f, rng);
    std::vector<int64_t> src(400), dst(400), negs(50);
    std::vector<int32_t> rels(400);
    for (auto& v : src) v = static_cast<int64_t>(rng.UniformInt(300));
    for (auto& v : dst) v = static_cast<int64_t>(rng.UniformInt(300));
    for (auto& v : rels) v = static_cast<int32_t>(rng.UniformInt(5));
    for (auto& v : negs) v = static_cast<int64_t>(rng.UniformInt(300));
    Tensor d_reprs(reprs.rows(), reprs.cols());
    const float loss = decoder.LossAndGrad(reprs, src, dst, rels, negs, &d_reprs);
    std::vector<Tensor> results = {std::move(d_reprs)};
    for (Parameter* p : decoder.Parameters()) {
      results.push_back(p->grad);
    }
    results.push_back(Tensor(1, 1, {loss}));
    return results;
  };
  const std::vector<Tensor> serial = run(nullptr);
  for (size_t workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    ComputeContext ctx;
    ctx.pool = &pool;
    const std::vector<Tensor> parallel = run(&ctx);
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(BitwiseEqual(parallel[i], serial[i]))
          << "decoder tensor " << i << " diverged with " << workers << " workers";
    }
  }
}

TEST(ParallelDeterminism, ShardedSparseAdagrad) {
  // 300 distinct rows (> kComputeGrainRows => several shards); every shard owns its
  // rows, so the Adagrad apply must be bitwise-stable across pool sizes.
  auto run = [&](const ComputeContext* ctx) {
    Rng rng(999);
    InMemoryEmbeddingStore store(400, 16, 0.5f, rng);
    store.set_compute(ctx);
    std::vector<int64_t> nodes(400);
    std::iota(nodes.begin(), nodes.end(), 0);
    rng.Shuffle(nodes);
    nodes.resize(300);
    Tensor grads = Tensor::Normal(300, 16, 0.3f, rng);
    store.ApplyGradients(nodes, grads, 0.1f);
    store.ApplyGradients(nodes, grads, 0.1f);  // second step exercises the state
    Tensor out;
    std::vector<int64_t> all(400);
    std::iota(all.begin(), all.end(), 0);
    store.Gather(all, &out);
    return out;
  };
  const Tensor serial = run(nullptr);
  for (size_t workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    ComputeContext ctx;
    ctx.pool = &pool;
    EXPECT_TRUE(BitwiseEqual(run(&ctx), serial))
        << "sparse Adagrad diverged with " << workers << " workers";
  }
}

TEST(ParallelDeterminism, DenseAdagradStep) {
  auto run = [&](const ComputeContext* ctx) {
    Rng rng(31);
    Parameter p(Tensor::Normal(150, 130, 0.5f, rng));  // 19500 elems -> 3 chunks
    p.grad = Tensor::Normal(150, 130, 0.2f, rng);
    Adagrad opt(0.05f);
    opt.set_compute(ctx);
    opt.Step(p);
    opt.Step(p);
    return p.value;
  };
  const Tensor serial = run(nullptr);
  for (size_t workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    ComputeContext ctx;
    ctx.pool = &pool;
    EXPECT_TRUE(BitwiseEqual(run(&ctx), serial))
        << "dense Adagrad diverged with " << workers << " workers";
  }
}

}  // namespace
}  // namespace mariusgnn
