// Tests for the pipeline layer: BoundedQueue under multi-producer/multi-consumer
// load (including the occupancy instrumentation), TrainingPipeline's
// order-preserving reassembly and determinism, PipelineSession's segmented runs
// and mid-run resizes, and the PipelineController's decision rules.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "src/pipeline/pipeline_controller.h"
#include "src/pipeline/queue.h"
#include "src/pipeline/training_pipeline.h"
#include "src/util/compute.h"
#include "src/util/rng.h"
#include "src/util/threadpool.h"

namespace mariusgnn {
namespace {

TEST(BoundedQueue, MultiProducerMultiConsumerDeliversEverything) {
  BoundedQueue<int64_t> q(8);
  const int kProducers = 4;
  const int kConsumers = 3;
  const int64_t kPerProducer = 500;

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(static_cast<int64_t>(p) * kPerProducer + i));
      }
    });
  }
  std::mutex mu;
  std::vector<int64_t> received;
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        std::optional<int64_t> v = q.Pop();
        if (!v.has_value()) {
          return;
        }
        std::lock_guard<std::mutex> lock(mu);
        received.push_back(*v);
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  q.Close();
  for (auto& t : consumers) {
    t.join();
  }
  ASSERT_EQ(received.size(), static_cast<size_t>(kProducers) * kPerProducer);
  std::set<int64_t> unique(received.begin(), received.end());
  EXPECT_EQ(unique.size(), received.size());  // no duplicates, no losses
}

TEST(BoundedQueue, CloseUnblocksBlockedProducers) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(0));
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (int i = 0; i < 3; ++i) {
    producers.emplace_back([&] {
      if (!q.Push(1)) {  // blocks on the full queue until Close
        rejected.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  for (auto& t : producers) {
    t.join();
  }
  EXPECT_EQ(rejected.load(), 3);
}

TEST(BoundedQueue, CloseUnblocksBlockedConsumers) {
  BoundedQueue<int> q(4);
  std::atomic<int> empty_pops{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      if (!q.Pop().has_value()) {  // blocks on the empty queue until Close
        empty_pops.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  for (auto& t : consumers) {
    t.join();
  }
  EXPECT_EQ(empty_pops.load(), 3);
}

TEST(BoundedQueue, CapacityBackpressure) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.Push(0));
  ASSERT_TRUE(q.Push(1));
  EXPECT_EQ(q.Size(), 2u);
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    q.Push(2);
    third_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_pushed.load());  // held back by capacity
  EXPECT_EQ(q.Pop().value(), 0);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
}

TEST(BoundedQueue, DrainAfterCloseKeepsFifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.Push(i));
  }
  q.Close();
  EXPECT_FALSE(q.Push(99));  // rejected after close
  for (int i = 0; i < 5; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);  // buffered items drain in order
  }
  EXPECT_FALSE(q.Pop().has_value());  // then closed-and-empty
}

TEST(BoundedQueue, TryPopIsNonBlocking) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.TryPop().has_value());  // empty: returns immediately
  ASSERT_TRUE(q.Push(7));
  ASSERT_TRUE(q.Push(8));
  EXPECT_EQ(q.TryPop().value(), 7);
  EXPECT_EQ(q.TryPop().value(), 8);
  EXPECT_FALSE(q.TryPop().has_value());
  q.Close();
  EXPECT_FALSE(q.TryPop().has_value());  // closed-and-empty: still non-blocking
}

TEST(BoundedQueue, OccupancyWindowTracksWatermarksAndIntegral) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  ASSERT_TRUE(q.Push(3));
  // Hold occupancy 3 for a measurable interval so the integral must register it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(q.Pop().has_value());
  ASSERT_TRUE(q.Pop().has_value());
  const QueueStats stats = q.WindowStats();
  EXPECT_EQ(stats.high_watermark, 3u);
  EXPECT_EQ(stats.low_watermark, 0u);  // the window started on an empty queue
  EXPECT_EQ(stats.pushes, 3);
  EXPECT_EQ(stats.pops, 2);
  // >= 3 items x 20ms, minus generous scheduler slack.
  EXPECT_GT(stats.occupancy_integral, 0.030);
  EXPECT_GT(stats.window_seconds, 0.015);
  EXPECT_GE(stats.MeanOccupancy(), 0.0);
  EXPECT_LE(stats.MeanOccupancy(), 4.0);  // mean can never exceed capacity
}

TEST(BoundedQueue, WindowStatsStartsAFreshWindow) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  (void)q.WindowStats();  // first window: 2 pushes
  const QueueStats fresh = q.WindowStats();
  EXPECT_EQ(fresh.pushes, 0);
  EXPECT_EQ(fresh.pops, 0);
  // Watermarks reset to the occupancy at the window boundary, not to zero.
  EXPECT_EQ(fresh.high_watermark, 2u);
  EXPECT_EQ(fresh.low_watermark, 2u);
}

TEST(BoundedQueue, CapacityOnePingPongStats) {
  // Capacity 1 forces strict producer/consumer alternation: every push blocks
  // until the previous item was popped, the hardest case for both the
  // backpressure path and the occupancy accounting.
  BoundedQueue<int> q(1);
  const int kItems = 1000;
  std::thread producer([&q] {
    for (int i = 0; i < kItems; ++i) {
      ASSERT_TRUE(q.Push(i));
    }
  });
  for (int i = 0; i < kItems; ++i) {
    const std::optional<int> v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);  // FIFO survives the ping-pong
  }
  producer.join();
  const QueueStats stats = q.WindowStats();
  EXPECT_EQ(stats.pushes, kItems);
  EXPECT_EQ(stats.pops, kItems);
  EXPECT_EQ(stats.high_watermark, 1u);
  EXPECT_EQ(stats.low_watermark, 0u);
  EXPECT_LE(stats.MeanOccupancy(), 1.0);
}

TEST(BoundedQueue, StatsConsistentUnderConcurrentPushPop) {
  BoundedQueue<int64_t> q(8);
  const int kProducers = 4;
  const int kConsumers = 3;
  const int64_t kPerProducer = 400;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(static_cast<int64_t>(p) * kPerProducer + i));
      }
    });
  }
  std::atomic<int64_t> received{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (q.Pop().has_value()) {
        received.fetch_add(1);
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  q.Close();
  for (auto& t : consumers) {
    t.join();
  }
  const int64_t total = static_cast<int64_t>(kProducers) * kPerProducer;
  EXPECT_EQ(received.load(), total);
  const QueueStats stats = q.WindowStats();
  EXPECT_EQ(stats.pushes, total);
  EXPECT_EQ(stats.pops, total);
  EXPECT_LE(stats.high_watermark, 8u);  // never above capacity
  EXPECT_EQ(stats.low_watermark, 0u);   // drained at the end
  EXPECT_GE(stats.occupancy_integral, 0.0);
  EXPECT_LE(stats.MeanOccupancy(), 8.0);
}

TEST(TrainingPipeline, OrderedDeliveryWithJitteredProducers) {
  ThreadPool pool(4);
  PipelineSessionOptions options;
  options.workers = 4;
  options.queue_capacity = 3;
  options.pool = &pool;
  TrainingPipeline pipeline(options);

  const int64_t n = 200;
  std::vector<int64_t> consumed;
  const PipelineStats stats = pipeline.RunTyped<int64_t>(
      n,
      [](int64_t i) {
        // Uneven production times force out-of-order completion.
        std::this_thread::sleep_for(std::chrono::microseconds((i * 7) % 300));
        return i * 2;
      },
      [&](int64_t& item, int64_t i) {
        EXPECT_EQ(item, i * 2);
        consumed.push_back(item);
      });
  ASSERT_EQ(consumed.size(), static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(consumed[static_cast<size_t>(i)], i * 2);
  }
  EXPECT_EQ(stats.num_items, n);
  EXPECT_GT(stats.sample_seconds, 0.0);
}

TEST(TrainingPipeline, WorkerCountNeverChangesConsumedSequence) {
  ThreadPool pool(4);
  // A producer that is a pure function of the index (the determinism contract).
  auto produce = [](int64_t i) { return MixSeed(42, static_cast<uint64_t>(i)); };
  std::vector<std::vector<uint64_t>> runs;
  for (int workers : {0, 1, 2, 4}) {
    PipelineSessionOptions options;
    options.workers = workers;
    options.queue_capacity = 2;
    options.pool = &pool;
    TrainingPipeline pipeline(options);
    std::vector<uint64_t> out;
    pipeline.RunTyped<uint64_t>(
        97, produce, [&](uint64_t& item, int64_t) { out.push_back(item); });
    runs.push_back(std::move(out));
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r], runs[0]);
  }
}

TEST(TrainingPipeline, SerialModeRunsInline) {
  TrainingPipeline pipeline(PipelineSessionOptions{0, 4, nullptr});
  const std::thread::id caller = std::this_thread::get_id();
  int64_t produced_on_caller = 0;
  const PipelineStats stats = pipeline.RunTyped<int>(
      10,
      [&](int64_t i) {
        if (std::this_thread::get_id() == caller) {
          ++produced_on_caller;
        }
        return static_cast<int>(i);
      },
      [](int&, int64_t) {});
  EXPECT_EQ(produced_on_caller, 10);
  EXPECT_EQ(stats.num_items, 10);
  EXPECT_DOUBLE_EQ(stats.stall_seconds, 0.0);
}

TEST(TrainingPipeline, EmptyRunIsNoop) {
  TrainingPipeline pipeline;
  int calls = 0;
  const PipelineStats stats = pipeline.RunTyped<int>(
      0, [&](int64_t) { return ++calls; }, [&](int&, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(stats.num_items, 0);
}

TEST(TrainingPipeline, RunBatchesSlicesTheFullRange) {
  ThreadPool pool(2);
  PipelineSessionOptions options;
  options.workers = 2;
  options.pool = &pool;
  TrainingPipeline pipeline(options);
  struct Slice {
    int64_t begin, end, batch;
  };
  std::vector<Slice> seen;
  pipeline.RunBatches<Slice>(
      103, 10,
      [](int64_t begin, int64_t end, int64_t b) { return Slice{begin, end, b}; },
      [&](Slice& s, int64_t i) {
        EXPECT_EQ(s.batch, i);
        seen.push_back(s);
      });
  ASSERT_EQ(seen.size(), 11u);  // ceil(103 / 10)
  int64_t covered = 0;
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].begin, static_cast<int64_t>(i) * 10);
    covered += seen[i].end - seen[i].begin;
  }
  EXPECT_EQ(covered, 103);
  EXPECT_EQ(seen.back().end, 103);
}

TEST(TrainingPipeline, MoreWorkersThanPoolThreadsStillCompletes) {
  ThreadPool pool(1);  // workers serialize on the single pool thread
  PipelineSessionOptions options;
  options.workers = 4;
  options.queue_capacity = 2;
  options.pool = &pool;
  TrainingPipeline pipeline(options);
  std::vector<int64_t> consumed;
  pipeline.RunTyped<int64_t>(
      50, [](int64_t i) { return i; },
      [&](int64_t& item, int64_t i) {
        EXPECT_EQ(item, i);
        consumed.push_back(item);
      });
  EXPECT_EQ(consumed.size(), 50u);
}

TEST(TrainingPipeline, ComputeChunksOnSaturatedPipelinePoolCannotDeadlock) {
  // The stage-3 deadlock hazard: every pool thread is a pipeline worker that can
  // block on the batch-window gate or the bounded queue during compute, so compute
  // helper tasks submitted to the same pool may never run. ForEachChunk must make
  // progress through the calling thread alone — and still produce the same bits.
  ThreadPool pool(2);
  PipelineSessionOptions options;
  options.workers = 2;  // saturate the pool
  options.queue_capacity = 1;
  options.pool = &pool;
  TrainingPipeline pipeline(options);
  ComputeContext ctx;
  ctx.pool = &pool;

  const int64_t n = 20000;  // several chunks at every grain
  std::vector<float> expected(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    expected[static_cast<size_t>(i)] = static_cast<float>(i) * 0.5f;
  }
  int64_t batches_ok = 0;
  pipeline.RunTyped<int64_t>(
      30, [](int64_t i) { return i; },
      [&](int64_t& item, int64_t i) {
        EXPECT_EQ(item, i);
        // Consumer-side parallel compute on the saturated pool.
        std::vector<float> out(static_cast<size_t>(n));
        ForEachChunk(&ctx, n, kComputeGrainElems,
                     [&](int64_t, int64_t begin, int64_t end) {
                       for (int64_t k = begin; k < end; ++k) {
                         out[static_cast<size_t>(k)] = static_cast<float>(k) * 0.5f;
                       }
                     });
        if (out == expected) {
          ++batches_ok;
        }
      });
  EXPECT_EQ(batches_ok, 30);
}

// ---------------------------------------------------------------------------
// PipelineSession: segmented/resumable runs with mid-run worker resizes. The
// ticket counter, window gate, and reorder buffer must survive a resize, so the
// consumed sequence is always the full announced stream in index order —
// bitwise-equal to a fixed-worker run — no matter where resizes land.

std::shared_ptr<void> SeededItem(uint64_t seed, int64_t i) {
  return std::make_shared<uint64_t>(MixSeed(seed, static_cast<uint64_t>(i)));
}

TEST(PipelineSession, SegmentsWithResizesMatchFixedWorkerRun) {
  ThreadPool pool(4);
  const uint64_t kSeed = 99;
  const int64_t n = 200;

  // Reference: the one-shot fixed-worker pipeline over the same pure producer.
  std::vector<uint64_t> expected;
  {
    PipelineSessionOptions options;
    options.workers = 2;
    options.queue_capacity = 3;
    options.pool = &pool;
    TrainingPipeline pipeline(options);
    pipeline.Run(
        n, [&](int64_t i) { return SeededItem(kSeed, i); },
        [&](void* item, int64_t) { expected.push_back(*static_cast<uint64_t*>(item)); });
  }

  PipelineSessionOptions options;
  options.workers = 3;
  options.queue_capacity = 3;
  options.pool = &pool;
  std::vector<uint64_t> got;
  PipelineSession session(
      options, [&](int64_t i) { return SeededItem(kSeed, i); },
      [&](void* item, int64_t) { got.push_back(*static_cast<uint64_t*>(item)); });

  // Uneven segments with a resize at every boundary (grow and shrink).
  const int64_t segments[] = {1, 49, 10, 90, 50};
  const int resizes[] = {1, 4, 2, 3, 1};
  for (size_t s = 0; s < 5; ++s) {
    const PipelineStats ps = session.RunSegment(segments[s]);
    EXPECT_EQ(ps.num_items, segments[s]);
    session.Resize(resizes[s]);
    EXPECT_EQ(session.workers(), resizes[s]);
  }
  EXPECT_EQ(session.consumed(), n);
  EXPECT_EQ(session.resize_count(), 5);
  EXPECT_EQ(got, expected);
}

TEST(PipelineSession, ExtendAheadOfConsumeKeepsOrder) {
  ThreadPool pool(2);
  PipelineSessionOptions options;
  options.workers = 2;
  options.queue_capacity = 2;
  options.pool = &pool;
  std::vector<int64_t> got;
  PipelineSession session(
      options,
      [](int64_t i) -> std::shared_ptr<void> { return std::make_shared<int64_t>(i * 3); },
      [&](void* item, int64_t i) {
        EXPECT_EQ(*static_cast<int64_t*>(item), i * 3);
        got.push_back(*static_cast<int64_t*>(item));
      });
  session.Extend(60);  // announce everything; consume in uneven pieces
  EXPECT_EQ(session.announced(), 60);
  session.Consume(10);
  session.Consume(1);
  session.Consume(49);
  ASSERT_EQ(got.size(), 60u);
  for (int64_t i = 0; i < 60; ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)], i * 3);
  }
}

TEST(PipelineSession, SerialSessionRunsInlineAndSupportsSegments) {
  PipelineSessionOptions options;
  options.workers = 0;
  const std::thread::id caller = std::this_thread::get_id();
  int64_t on_caller = 0;
  std::vector<int64_t> got;
  PipelineSession session(
      options,
      [&](int64_t i) -> std::shared_ptr<void> {
        if (std::this_thread::get_id() == caller) {
          ++on_caller;
        }
        return std::make_shared<int64_t>(i);
      },
      [&](void* item, int64_t) { got.push_back(*static_cast<int64_t*>(item)); });
  session.RunSegment(5);
  const PipelineStats ps = session.RunSegment(7);
  EXPECT_EQ(ps.num_items, 7);
  EXPECT_DOUBLE_EQ(ps.stall_seconds, 0.0);
  EXPECT_EQ(on_caller, 12);
  EXPECT_EQ(got.size(), 12u);
}

TEST(PipelineSession, ReportsQueueOccupancyPerSegment) {
  // Fast producers + a slow consumer pin the queue at capacity, so the segment's
  // time-weighted occupancy must come out high; the signal feeding the controller.
  ThreadPool pool(4);
  PipelineSessionOptions options;
  options.workers = 4;
  options.queue_capacity = 2;
  options.pool = &pool;
  PipelineSession session(
      options,
      [](int64_t i) -> std::shared_ptr<void> { return std::make_shared<int64_t>(i); },
      [](void*, int64_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      });
  const PipelineStats ps = session.RunSegment(40);
  EXPECT_EQ(ps.workers, 4);
  EXPECT_GE(ps.queue_occupancy_mean, 0.0);
  EXPECT_LE(ps.queue_occupancy_mean, 1.0);
  EXPECT_GT(ps.queue_occupancy_mean, 0.5);  // producers were always ahead
}

TEST(PipelineSession, TeardownWithBlockedProducersDoesNotDeadlock) {
  // The close-while-producer-blocked case: items are announced but never
  // consumed, so producers sit blocked on the full queue (or parked on the
  // window gate) when the session is resized and then destroyed. Both paths
  // must quiesce by draining, not deadlock; ASan's leak check covers the
  // drained-but-unconsumed items.
  ThreadPool pool(2);
  PipelineSessionOptions options;
  options.workers = 2;
  options.queue_capacity = 1;
  options.pool = &pool;
  {
    PipelineSession session(
        options,
        [](int64_t i) -> std::shared_ptr<void> { return std::make_shared<int64_t>(i); },
        [](void*, int64_t) {});
    session.Extend(50);
    // Wait for a producer to actually fill the queue (and block behind it).
    for (int spin = 0; spin < 2000 && session.queue_size() < 1; ++spin) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    EXPECT_EQ(session.queue_size(), 1u);
    session.Resize(1);  // quiesce with a producer blocked mid-push
    session.Extend(10);
    // Destroy with 60 announced, 0 consumed.
  }
  SUCCEED();
}

// The ISSUE's randomized stress test: random producer delays and forced resizes
// at adversarial points — empty queue, full queue, and immediately after the
// last batch of a segment ("set") — asserting in-order delivery, no deadlock
// (the test completing at all), and bitwise-equal output vs the fixed-worker
// run. Runs under TSan in CI like the rest of this suite.
TEST(PipelineSession, StressRandomDelaysAndAdversarialResizes) {
  ThreadPool pool(4);
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const int64_t n = 160;
    std::vector<uint64_t> expected;
    expected.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      expected.push_back(MixSeed(seed, static_cast<uint64_t>(i)));
    }

    PipelineSessionOptions options;
    options.workers = 3;
    options.queue_capacity = 2;
    options.pool = &pool;
    std::vector<uint64_t> got;
    Rng rng(seed * 7919);
    {
      PipelineSession session(
          options,
          [seed](int64_t i) -> std::shared_ptr<void> {
            // Deterministic per-index jitter; no shared RNG on worker threads.
            std::this_thread::sleep_for(std::chrono::microseconds(
                MixSeed(seed ^ 0xABCD, static_cast<uint64_t>(i)) % 300));
            return SeededItem(seed, i);
          },
          [&](void* item, int64_t) { got.push_back(*static_cast<uint64_t*>(item)); });

      // Adversarial point: resize before anything is announced (empty queue,
      // all workers parked on the gate).
      session.Resize(2);
      int64_t announced = 0;
      int64_t consumed = 0;
      while (consumed < n) {
        if (announced < n && (announced == consumed || rng.UniformInt(0, 2) == 0)) {
          const int64_t seg = std::min<int64_t>(n - announced, rng.UniformInt(1, 33));
          session.Extend(seg);
          announced += seg;
        }
        if (rng.UniformInt(0, 3) == 0 && announced - consumed >
                static_cast<int64_t>(options.queue_capacity) + session.workers()) {
          // Adversarial point: force the queue full (producers blocked mid-push),
          // then resize into the back-pressure.
          for (int spin = 0;
               spin < 5000 && session.queue_size() < options.queue_capacity; ++spin) {
            std::this_thread::sleep_for(std::chrono::microseconds(100));
          }
          session.Resize(static_cast<int>(rng.UniformInt(1, 5)));
        }
        const int64_t take =
            std::min<int64_t>(announced - consumed, rng.UniformInt(1, 41));
        session.Consume(take);
        consumed += take;
        if (rng.UniformInt(0, 2) == 0) {
          // Adversarial point: resize right after the last batch of a segment
          // (queue typically empty, reorder buffer possibly holding run-ahead).
          session.Resize(static_cast<int>(rng.UniformInt(1, 5)));
        }
      }
      EXPECT_GE(session.resize_count(), 1);
      EXPECT_EQ(session.consumed(), n);
    }
    ASSERT_EQ(got.size(), expected.size()) << "seed " << seed;
    EXPECT_EQ(got, expected) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// PipelineController decision rules. These mirror the AdaptiveWorkerSplit units
// (the controller's rules 1-2 ARE that hysteresis), then cover the queue-depth
// refinement, the IO-bound hold, and the epoch-granularity fallback equivalence.

PipelineControllerOptions ControllerOpts(int max_workers, int min_workers = 1) {
  PipelineControllerOptions options;
  options.max_workers = max_workers;
  options.min_workers = min_workers;
  options.par_eff_low = 0.4;
  options.par_eff_high = 0.85;
  // The raw-rule tests below disable the queue-decision cool-down so each window
  // exercises the rule itself; the QueueCooldown* tests cover the damping.
  options.queue_cooldown_windows = 0;
  return options;
}

ControllerSignals EffOnly(double par_eff) {
  ControllerSignals signals;
  signals.compute_parallel_efficiency = par_eff;
  return signals;
}

// Dead-band efficiency plus a queue reading; stall/io/window default to a
// stall-free, IO-free 1-second window.
ControllerSignals DeadBandQueue(double occupancy, double stall_seconds = 0.0,
                                double io_stall_seconds = 0.0) {
  ControllerSignals signals;
  signals.compute_parallel_efficiency = 0.6;
  signals.has_queue_signal = true;
  signals.queue_occupancy_mean = occupancy;
  signals.pipeline_stall_seconds = stall_seconds;
  signals.io_stall_seconds = io_stall_seconds;
  signals.window_seconds = 1.0;
  return signals;
}

TEST(PipelineController, ShrinksGrowsWithHysteresis) {
  PipelineController controller(ControllerOpts(4));
  EXPECT_EQ(controller.workers(), 4);                    // starts at max
  EXPECT_EQ(controller.ObserveWindow(EffOnly(0.20)), 3); // below low -> shrink
  EXPECT_EQ(controller.ObserveWindow(EffOnly(0.39)), 2);
  EXPECT_EQ(controller.ObserveWindow(EffOnly(0.60)), 2); // dead band -> hold
  EXPECT_EQ(controller.ObserveWindow(EffOnly(0.40)), 2); // thresholds exclusive
  EXPECT_EQ(controller.ObserveWindow(EffOnly(0.90)), 3); // above high -> grow
  EXPECT_EQ(controller.ObserveWindow(EffOnly(0.95)), 4);
  EXPECT_EQ(controller.ObserveWindow(EffOnly(0.99)), 4); // clamped at max
}

TEST(PipelineController, NeverShrinksBelowMinWorkers) {
  PipelineController controller(ControllerOpts(3, 2));
  EXPECT_EQ(controller.ObserveWindow(EffOnly(0.0)), 2);
  EXPECT_EQ(controller.ObserveWindow(EffOnly(0.0)), 2);
  // The queue-high shrink rule respects the same clamp.
  EXPECT_EQ(controller.ObserveWindow(DeadBandQueue(1.0)), 2);
}

TEST(PipelineController, DisabledPinsAtConfiguredWorkers) {
  PipelineControllerOptions options = ControllerOpts(3);
  options.enabled = false;
  PipelineController controller(options);
  EXPECT_EQ(controller.ObserveWindow(EffOnly(0.0)), 3);
  EXPECT_EQ(controller.ObserveWindow(DeadBandQueue(1.0)), 3);
}

TEST(PipelineController, NonPipelinedStaysAtZeroWorkers) {
  PipelineController controller(ControllerOpts(0));
  EXPECT_EQ(controller.workers(), 0);
  EXPECT_EQ(controller.ObserveWindow(EffOnly(0.0)), 0);
}

TEST(PipelineController, QueueHighShrinksInDeadBand) {
  // Occupancy pinned near capacity: producers are ahead of compute, so extra
  // samplers are wasted even though efficiency sits in the dead band.
  PipelineController controller(ControllerOpts(4));
  EXPECT_EQ(controller.ObserveWindow(DeadBandQueue(0.90)), 3);
  EXPECT_EQ(controller.ObserveWindow(DeadBandQueue(0.76)), 2);
  EXPECT_EQ(controller.ObserveWindow(DeadBandQueue(0.75)), 2);  // threshold exclusive
  EXPECT_EQ(controller.ObserveWindow(DeadBandQueue(0.50)), 2);  // mid band holds
}

TEST(PipelineController, QueueLowGrowsOnlyWithRealConsumerStalls) {
  PipelineController controller(ControllerOpts(4));
  EXPECT_EQ(controller.ObserveWindow(EffOnly(0.2)), 3);  // make room to grow
  // Near-empty queue but the consumer never stalled: compute kept up, hold.
  EXPECT_EQ(controller.ObserveWindow(DeadBandQueue(0.05, /*stall=*/0.0)), 3);
  // Near-empty queue AND the consumer stalled 20% of the window: sampling is the
  // bottleneck, grow.
  EXPECT_EQ(controller.ObserveWindow(DeadBandQueue(0.05, /*stall=*/0.2)), 4);
}

TEST(PipelineController, IoBoundWindowHolds) {
  PipelineController controller(ControllerOpts(4));
  // Occupancy says shrink, stalls say grow — but 60% of the window was unhidden
  // IO, which no worker split can fix: hold.
  EXPECT_EQ(controller.ObserveWindow(DeadBandQueue(0.95, 0.0, /*io=*/0.6)), 4);
  EXPECT_EQ(controller.ObserveWindow(DeadBandQueue(0.05, 0.3, /*io=*/0.6)), 4);
}

TEST(PipelineController, EfficiencyRulesDominateQueueSignal) {
  PipelineController controller(ControllerOpts(4));
  // Efficiency below the low threshold shrinks even when the queue reads empty
  // with heavy stalls (the grow case); above high grows even when the queue
  // reads full (the shrink case). Keeps fallback and per-set modes comparable.
  ControllerSignals low = DeadBandQueue(0.05, /*stall=*/0.5);
  low.compute_parallel_efficiency = 0.1;
  EXPECT_EQ(controller.ObserveWindow(low), 3);
  ControllerSignals high = DeadBandQueue(0.95);
  high.compute_parallel_efficiency = 0.95;
  EXPECT_EQ(controller.ObserveWindow(high), 4);
}

TEST(PipelineController, FallbackEpochModeMatchesAdaptiveWorkerSplit) {
  // In epoch-granularity fallback mode the controller must be decision-for-
  // decision identical to the legacy AdaptiveWorkerSplit on any efficiency
  // sequence — and must ignore the queue signal entirely.
  PipelineControllerOptions options = ControllerOpts(5, 2);
  options.granularity = ControllerGranularity::kEpoch;
  PipelineController controller(options);
  AdaptiveWorkerSplit split(/*enabled=*/true, 5, 2, 0.4, 0.85);
  EXPECT_EQ(controller.workers(), split.workers());
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    const double par_eff = rng.UniformDouble() * 1.2;
    ControllerSignals signals = DeadBandQueue(rng.UniformDouble(),
                                              rng.UniformDouble(),
                                              rng.UniformDouble());
    signals.compute_parallel_efficiency = par_eff;  // queue fields are decoys
    EXPECT_EQ(controller.ObserveWindow(signals), split.Observe(par_eff)) << i;
  }
}

TEST(PipelineController, QueueCooldownDampsShrinkGrowPingPong) {
  // On a host where neither split wins, high-occupancy and low-occupancy+stall
  // windows can alternate; without a cool-down the queue rules flip the worker
  // count every single window. The cool-down lets each move settle first.
  auto run = [](int cooldown_windows) {
    PipelineControllerOptions options = ControllerOpts(4, 1);
    options.queue_cooldown_windows = cooldown_windows;
    PipelineController controller(options);
    int changes = 0;
    int prev = controller.workers();
    for (int i = 0; i < 12; ++i) {
      // Adversarial alternation: shrink signal, then grow signal, repeat.
      const int next = controller.ObserveWindow(
          i % 2 == 0 ? DeadBandQueue(0.95) : DeadBandQueue(0.05, /*stall=*/0.3));
      if (next != prev) {
        ++changes;
      }
      prev = next;
    }
    return changes;
  };
  // Undamped, every window flips the decision (12 changes). With a 2-window
  // cool-down, at most every third window may act.
  EXPECT_EQ(run(0), 12);
  EXPECT_LE(run(2), 4);
  EXPECT_GE(run(2), 1);  // the rule still acts once the cool-down expires
}

TEST(PipelineController, QueueCooldownCountsDownAndReleases) {
  PipelineControllerOptions options = ControllerOpts(4, 1);
  options.queue_cooldown_windows = 2;
  PipelineController controller(options);
  EXPECT_EQ(controller.ObserveWindow(DeadBandQueue(0.95)), 3);  // shrink, arm
  EXPECT_EQ(controller.queue_cooldown_remaining(), 2);
  EXPECT_EQ(controller.ObserveWindow(DeadBandQueue(0.95)), 3);  // suppressed
  EXPECT_EQ(controller.ObserveWindow(DeadBandQueue(0.95)), 3);  // suppressed
  EXPECT_EQ(controller.queue_cooldown_remaining(), 0);
  EXPECT_EQ(controller.ObserveWindow(DeadBandQueue(0.95)), 2);  // released
}

TEST(PipelineController, CooldownDoesNotGateEfficiencyRules) {
  // Starved compute must shed workers immediately: the efficiency band keeps its
  // own hysteresis and ignores the queue-rule cool-down.
  PipelineControllerOptions options = ControllerOpts(4, 1);
  options.queue_cooldown_windows = 3;
  PipelineController controller(options);
  EXPECT_EQ(controller.ObserveWindow(DeadBandQueue(0.95)), 3);  // arm cool-down
  EXPECT_EQ(controller.ObserveWindow(EffOnly(0.1)), 2);         // not gated
  EXPECT_EQ(controller.ObserveWindow(EffOnly(0.95)), 3);        // not gated
}

TEST(PipelineController, RestoreStateClampsToConfiguredRange) {
  PipelineController controller(ControllerOpts(4, 2));
  controller.RestoreState(/*workers=*/1, /*cooldown_remaining=*/-3);
  EXPECT_EQ(controller.workers(), 2);
  EXPECT_EQ(controller.queue_cooldown_remaining(), 0);
  controller.RestoreState(/*workers=*/9, /*cooldown_remaining=*/1);
  EXPECT_EQ(controller.workers(), 4);
  EXPECT_EQ(controller.queue_cooldown_remaining(), 1);
}

TEST(AdaptiveWorkerSplit, ShrinksGrowsWithHysteresis) {
  AdaptiveWorkerSplit split(/*enabled=*/true, /*max_workers=*/4, /*min_workers=*/1,
                            /*low_threshold=*/0.4, /*high_threshold=*/0.85);
  EXPECT_EQ(split.workers(), 4);           // starts at max
  EXPECT_EQ(split.Observe(0.20), 3);       // below low -> shrink one step
  EXPECT_EQ(split.Observe(0.39), 2);
  EXPECT_EQ(split.Observe(0.60), 2);       // dead band -> hold
  EXPECT_EQ(split.Observe(0.40), 2);       // thresholds are exclusive
  EXPECT_EQ(split.Observe(0.90), 3);       // above high -> grow one step
  EXPECT_EQ(split.Observe(0.95), 4);
  EXPECT_EQ(split.Observe(0.99), 4);       // clamped at max
}

TEST(AdaptiveWorkerSplit, NeverShrinksBelowMinWorkers) {
  AdaptiveWorkerSplit split(true, 3, 2, 0.5, 0.8);
  EXPECT_EQ(split.Observe(0.0), 2);
  EXPECT_EQ(split.Observe(0.0), 2);
}

TEST(AdaptiveWorkerSplit, DisabledPinsAtConfiguredWorkers) {
  AdaptiveWorkerSplit split(/*enabled=*/false, 3, 1, 0.5, 0.8);
  EXPECT_EQ(split.Observe(0.0), 3);
  EXPECT_EQ(split.Observe(1.0), 3);
}

TEST(AdaptiveWorkerSplit, NonPipelinedStaysAtZeroWorkers) {
  AdaptiveWorkerSplit split(true, /*max_workers=*/0, 1, 0.5, 0.8);
  EXPECT_EQ(split.workers(), 0);
  EXPECT_EQ(split.Observe(0.0), 0);
}

}  // namespace
}  // namespace mariusgnn
