// Tests for the pipeline layer: BoundedQueue under multi-producer/multi-consumer
// load, and TrainingPipeline's order-preserving reassembly and determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "src/pipeline/queue.h"
#include "src/pipeline/training_pipeline.h"
#include "src/util/compute.h"
#include "src/util/rng.h"
#include "src/util/threadpool.h"

namespace mariusgnn {
namespace {

TEST(BoundedQueue, MultiProducerMultiConsumerDeliversEverything) {
  BoundedQueue<int64_t> q(8);
  const int kProducers = 4;
  const int kConsumers = 3;
  const int64_t kPerProducer = 500;

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(static_cast<int64_t>(p) * kPerProducer + i));
      }
    });
  }
  std::mutex mu;
  std::vector<int64_t> received;
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        std::optional<int64_t> v = q.Pop();
        if (!v.has_value()) {
          return;
        }
        std::lock_guard<std::mutex> lock(mu);
        received.push_back(*v);
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  q.Close();
  for (auto& t : consumers) {
    t.join();
  }
  ASSERT_EQ(received.size(), static_cast<size_t>(kProducers) * kPerProducer);
  std::set<int64_t> unique(received.begin(), received.end());
  EXPECT_EQ(unique.size(), received.size());  // no duplicates, no losses
}

TEST(BoundedQueue, CloseUnblocksBlockedProducers) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(0));
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (int i = 0; i < 3; ++i) {
    producers.emplace_back([&] {
      if (!q.Push(1)) {  // blocks on the full queue until Close
        rejected.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  for (auto& t : producers) {
    t.join();
  }
  EXPECT_EQ(rejected.load(), 3);
}

TEST(BoundedQueue, CloseUnblocksBlockedConsumers) {
  BoundedQueue<int> q(4);
  std::atomic<int> empty_pops{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      if (!q.Pop().has_value()) {  // blocks on the empty queue until Close
        empty_pops.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  for (auto& t : consumers) {
    t.join();
  }
  EXPECT_EQ(empty_pops.load(), 3);
}

TEST(BoundedQueue, CapacityBackpressure) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.Push(0));
  ASSERT_TRUE(q.Push(1));
  EXPECT_EQ(q.Size(), 2u);
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    q.Push(2);
    third_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_pushed.load());  // held back by capacity
  EXPECT_EQ(q.Pop().value(), 0);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
}

TEST(BoundedQueue, DrainAfterCloseKeepsFifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.Push(i));
  }
  q.Close();
  EXPECT_FALSE(q.Push(99));  // rejected after close
  for (int i = 0; i < 5; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);  // buffered items drain in order
  }
  EXPECT_FALSE(q.Pop().has_value());  // then closed-and-empty
}

TEST(TrainingPipeline, OrderedDeliveryWithJitteredProducers) {
  ThreadPool pool(4);
  PipelineOptions options;
  options.workers = 4;
  options.queue_capacity = 3;
  options.pool = &pool;
  TrainingPipeline pipeline(options);

  const int64_t n = 200;
  std::vector<int64_t> consumed;
  const PipelineStats stats = pipeline.RunTyped<int64_t>(
      n,
      [](int64_t i) {
        // Uneven production times force out-of-order completion.
        std::this_thread::sleep_for(std::chrono::microseconds((i * 7) % 300));
        return i * 2;
      },
      [&](int64_t& item, int64_t i) {
        EXPECT_EQ(item, i * 2);
        consumed.push_back(item);
      });
  ASSERT_EQ(consumed.size(), static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(consumed[static_cast<size_t>(i)], i * 2);
  }
  EXPECT_EQ(stats.num_items, n);
  EXPECT_GT(stats.sample_seconds, 0.0);
}

TEST(TrainingPipeline, WorkerCountNeverChangesConsumedSequence) {
  ThreadPool pool(4);
  // A producer that is a pure function of the index (the determinism contract).
  auto produce = [](int64_t i) { return MixSeed(42, static_cast<uint64_t>(i)); };
  std::vector<std::vector<uint64_t>> runs;
  for (int workers : {0, 1, 2, 4}) {
    PipelineOptions options;
    options.workers = workers;
    options.queue_capacity = 2;
    options.pool = &pool;
    TrainingPipeline pipeline(options);
    std::vector<uint64_t> out;
    pipeline.RunTyped<uint64_t>(
        97, produce, [&](uint64_t& item, int64_t) { out.push_back(item); });
    runs.push_back(std::move(out));
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r], runs[0]);
  }
}

TEST(TrainingPipeline, SerialModeRunsInline) {
  TrainingPipeline pipeline(PipelineOptions{0, 4, nullptr});
  const std::thread::id caller = std::this_thread::get_id();
  int64_t produced_on_caller = 0;
  const PipelineStats stats = pipeline.RunTyped<int>(
      10,
      [&](int64_t i) {
        if (std::this_thread::get_id() == caller) {
          ++produced_on_caller;
        }
        return static_cast<int>(i);
      },
      [](int&, int64_t) {});
  EXPECT_EQ(produced_on_caller, 10);
  EXPECT_EQ(stats.num_items, 10);
  EXPECT_DOUBLE_EQ(stats.stall_seconds, 0.0);
}

TEST(TrainingPipeline, EmptyRunIsNoop) {
  TrainingPipeline pipeline;
  int calls = 0;
  const PipelineStats stats = pipeline.RunTyped<int>(
      0, [&](int64_t) { return ++calls; }, [&](int&, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(stats.num_items, 0);
}

TEST(TrainingPipeline, RunBatchesSlicesTheFullRange) {
  ThreadPool pool(2);
  PipelineOptions options;
  options.workers = 2;
  options.pool = &pool;
  TrainingPipeline pipeline(options);
  struct Slice {
    int64_t begin, end, batch;
  };
  std::vector<Slice> seen;
  pipeline.RunBatches<Slice>(
      103, 10,
      [](int64_t begin, int64_t end, int64_t b) { return Slice{begin, end, b}; },
      [&](Slice& s, int64_t i) {
        EXPECT_EQ(s.batch, i);
        seen.push_back(s);
      });
  ASSERT_EQ(seen.size(), 11u);  // ceil(103 / 10)
  int64_t covered = 0;
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].begin, static_cast<int64_t>(i) * 10);
    covered += seen[i].end - seen[i].begin;
  }
  EXPECT_EQ(covered, 103);
  EXPECT_EQ(seen.back().end, 103);
}

TEST(TrainingPipeline, MoreWorkersThanPoolThreadsStillCompletes) {
  ThreadPool pool(1);  // workers serialize on the single pool thread
  PipelineOptions options;
  options.workers = 4;
  options.queue_capacity = 2;
  options.pool = &pool;
  TrainingPipeline pipeline(options);
  std::vector<int64_t> consumed;
  pipeline.RunTyped<int64_t>(
      50, [](int64_t i) { return i; },
      [&](int64_t& item, int64_t i) {
        EXPECT_EQ(item, i);
        consumed.push_back(item);
      });
  EXPECT_EQ(consumed.size(), 50u);
}

TEST(TrainingPipeline, ComputeChunksOnSaturatedPipelinePoolCannotDeadlock) {
  // The stage-3 deadlock hazard: every pool thread is a pipeline worker that can
  // block on the batch-window gate or the bounded queue during compute, so compute
  // helper tasks submitted to the same pool may never run. ForEachChunk must make
  // progress through the calling thread alone — and still produce the same bits.
  ThreadPool pool(2);
  PipelineOptions options;
  options.workers = 2;  // saturate the pool
  options.queue_capacity = 1;
  options.pool = &pool;
  TrainingPipeline pipeline(options);
  ComputeContext ctx;
  ctx.pool = &pool;

  const int64_t n = 20000;  // several chunks at every grain
  std::vector<float> expected(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    expected[static_cast<size_t>(i)] = static_cast<float>(i) * 0.5f;
  }
  int64_t batches_ok = 0;
  pipeline.RunTyped<int64_t>(
      30, [](int64_t i) { return i; },
      [&](int64_t& item, int64_t i) {
        EXPECT_EQ(item, i);
        // Consumer-side parallel compute on the saturated pool.
        std::vector<float> out(static_cast<size_t>(n));
        ForEachChunk(&ctx, n, kComputeGrainElems,
                     [&](int64_t, int64_t begin, int64_t end) {
                       for (int64_t k = begin; k < end; ++k) {
                         out[static_cast<size_t>(k)] = static_cast<float>(k) * 0.5f;
                       }
                     });
        if (out == expected) {
          ++batches_ok;
        }
      });
  EXPECT_EQ(batches_ok, 30);
}

TEST(AdaptiveWorkerSplit, ShrinksGrowsWithHysteresis) {
  AdaptiveWorkerSplit split(/*enabled=*/true, /*max_workers=*/4, /*min_workers=*/1,
                            /*low_threshold=*/0.4, /*high_threshold=*/0.85);
  EXPECT_EQ(split.workers(), 4);           // starts at max
  EXPECT_EQ(split.Observe(0.20), 3);       // below low -> shrink one step
  EXPECT_EQ(split.Observe(0.39), 2);
  EXPECT_EQ(split.Observe(0.60), 2);       // dead band -> hold
  EXPECT_EQ(split.Observe(0.40), 2);       // thresholds are exclusive
  EXPECT_EQ(split.Observe(0.90), 3);       // above high -> grow one step
  EXPECT_EQ(split.Observe(0.95), 4);
  EXPECT_EQ(split.Observe(0.99), 4);       // clamped at max
}

TEST(AdaptiveWorkerSplit, NeverShrinksBelowMinWorkers) {
  AdaptiveWorkerSplit split(true, 3, 2, 0.5, 0.8);
  EXPECT_EQ(split.Observe(0.0), 2);
  EXPECT_EQ(split.Observe(0.0), 2);
}

TEST(AdaptiveWorkerSplit, DisabledPinsAtConfiguredWorkers) {
  AdaptiveWorkerSplit split(/*enabled=*/false, 3, 1, 0.5, 0.8);
  EXPECT_EQ(split.Observe(0.0), 3);
  EXPECT_EQ(split.Observe(1.0), 3);
}

TEST(AdaptiveWorkerSplit, NonPipelinedStaysAtZeroWorkers) {
  AdaptiveWorkerSplit split(true, /*max_workers=*/0, 1, 0.5, 0.8);
  EXPECT_EQ(split.workers(), 0);
  EXPECT_EQ(split.Observe(0.0), 0);
}

}  // namespace
}  // namespace mariusgnn
