// Tests for src/util: RNG, thread pool, binary IO, queue, timers, check macros.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <utility>

#include "src/pipeline/queue.h"
#include "src/util/binary_io.h"
#include "src/util/compute.h"
#include "src/util/rng.h"
#include "src/util/threadpool.h"
#include "src/util/timer.h"

namespace mariusgnn {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(17);
    EXPECT_LT(v, 17u);
  }
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 13);
    EXPECT_GE(v, -5);
    EXPECT_LT(v, 13);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.UniformInt(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntBoundOne) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformInt(1), 0u);
  }
}

TEST(Rng, ShuffleDegenerateSizes) {
  Rng rng(4);
  std::vector<int> empty;
  rng.Shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(one);
  EXPECT_EQ(one[0], 42);
}

TEST(Rng, UniformFloatInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.UniformFloat();
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(Rng, NormalHasReasonableMoments) {
  Rng rng(5);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be equal
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(13);
  for (int64_t population : {10, 100, 10000}) {
    for (int64_t count : {1, 5, 9}) {
      auto s = rng.SampleWithoutReplacement(population, count);
      ASSERT_EQ(static_cast<int64_t>(s.size()), count);
      std::set<int64_t> uniq(s.begin(), s.end());
      EXPECT_EQ(static_cast<int64_t>(uniq.size()), count);
      for (int64_t v : s) {
        EXPECT_GE(v, 0);
        EXPECT_LT(v, population);
      }
    }
  }
}

TEST(Rng, SampleWithoutReplacementAllWhenCountExceeds) {
  Rng rng(13);
  auto s = rng.SampleWithoutReplacement(5, 10);
  ASSERT_EQ(s.size(), 5u);
  std::sort(s.begin(), s.end());
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(s[static_cast<size_t>(i)], i);
  }
}

TEST(Rng, SampleWithoutReplacementUniformish) {
  // Each element of [0,20) should appear in roughly half of 10-element samples.
  Rng rng(17);
  std::vector<int> hits(20, 0);
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    for (int64_t v : rng.SampleWithoutReplacement(20, 10)) {
      ++hits[static_cast<size_t>(v)];
    }
  }
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / trials, 0.5, 0.06);
  }
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.ParallelFor(1000, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      counts[static_cast<size_t>(i)].fetch_add(1);
    }
  }, /*min_chunk=*/10);
  for (auto& c : counts) {
    EXPECT_EQ(c.load(), 1);
  }
}

TEST(ThreadPool, ParallelForEmptyAndSmall) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(5, [&](int64_t b, int64_t e) { total.fetch_add(e - b); });
  EXPECT_EQ(total.load(), 5);
}

TEST(ThreadPool, ParallelForFromOwnWorkerRunsInline) {
  // A worker waiting on its own pool's chunks deadlocks once every worker blocks
  // (e.g. pipeline workers sampling); ParallelFor must detect this and run inline.
  ThreadPool pool(2);
  std::atomic<int64_t> total{0};
  std::atomic<int> done{0};
  for (int t = 0; t < 2; ++t) {  // saturate the pool
    pool.Submit([&] {
      EXPECT_TRUE(pool.OnWorkerThread());
      pool.ParallelFor(5000, [&](int64_t b, int64_t e) { total.fetch_add(e - b); },
                       /*min_chunk=*/1);
      done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 2);
  EXPECT_EQ(total.load(), 10000);
  EXPECT_FALSE(pool.OnWorkerThread());
}

TEST(ThreadPool, ParallelForChunkGridStableAcrossPoolSizes) {
  // Chunk boundaries must be a function of (n, min_chunk) only — never the worker
  // count — so deterministic reductions layered on the grid are pool-size-proof.
  auto grid_for = [](size_t workers) {
    ThreadPool pool(workers);
    std::mutex mu;
    std::set<std::pair<int64_t, int64_t>> chunks;
    pool.ParallelFor(1000, [&](int64_t b, int64_t e) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace(b, e);
    }, /*min_chunk=*/64);
    return chunks;
  };
  const auto one = grid_for(1);  // inline path must walk the same grid
  const auto two = grid_for(2);
  const auto eight = grid_for(8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(two, eight);
  ASSERT_EQ(two.size(), 16u);  // ceil(1000 / 64)
  int64_t covered = 0;
  for (const auto& [b, e] : two) {
    EXPECT_TRUE(e - b == 64 || e == 1000);  // fixed grain, short tail
    covered += e - b;
  }
  EXPECT_EQ(covered, 1000);
}

TEST(ComputeContext, ForEachChunkOrderedFoldsInAscendingOrder) {
  // The combine callback must observe chunks 0,1,2,... regardless of the order the
  // bodies finished in — the determinism contract of every ordered reduction.
  for (size_t workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    ComputeContext ctx;
    ctx.pool = &pool;
    const int64_t n = 1000, grain = 64;
    const int64_t chunks = ComputeChunkCount(n, grain);
    std::vector<int64_t> sums(static_cast<size_t>(chunks), 0);
    std::vector<int64_t> combine_order;
    ForEachChunkOrdered(
        &ctx, n, grain,
        [&](int64_t chunk, int64_t begin, int64_t end) {
          int64_t s = 0;
          for (int64_t i = begin; i < end; ++i) {
            s += i;
          }
          sums[static_cast<size_t>(chunk)] = s;
        },
        [&](int64_t chunk) { combine_order.push_back(chunk); });
    ASSERT_EQ(static_cast<int64_t>(combine_order.size()), chunks);
    for (int64_t c = 0; c < chunks; ++c) {
      EXPECT_EQ(combine_order[static_cast<size_t>(c)], c);
    }
    EXPECT_EQ(std::accumulate(sums.begin(), sums.end(), int64_t{0}), 999 * 1000 / 2);
  }
}

TEST(ThreadPool, SubmitAndWait) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 50);
}

TEST(File, ReadWriteRoundTrip) {
  const std::string path = TempPath("util_test_file");
  {
    File f(path, /*truncate=*/true);
    const char data[] = "hello mariusgnn";
    f.WriteAt(data, sizeof(data), 100);
    EXPECT_EQ(f.Size(), 100 + sizeof(data));
    char back[sizeof(data)];
    f.ReadAt(back, sizeof(data), 100);
    EXPECT_STREQ(back, "hello mariusgnn");
  }
  ::remove(path.c_str());
}

TEST(File, VectorRoundTrip) {
  const std::string path = TempPath("util_test_vec");
  std::vector<int64_t> v = {1, -2, 3, 1LL << 40};
  WriteVector(path, v);
  EXPECT_EQ(ReadVector<int64_t>(path), v);
  WriteVector(path, std::vector<int64_t>{});
  EXPECT_TRUE(ReadVector<int64_t>(path).empty());
  ::remove(path.c_str());
}

TEST(File, ReadPastEofReportsEofNotErrno) {
  // EOF is not an errno condition: the old code printed whatever strerror(errno)
  // happened to hold. The message must name the short read instead.
  const std::string path = TempPath("util_test_eof");
  File f(path, /*truncate=*/true);
  const char data[] = "abc";
  f.WriteAt(data, 3, 0);
  char buf[16];
  EXPECT_DEATH(f.ReadAt(buf, sizeof(buf), 0), "unexpected end of file");
  ::remove(path.c_str());
}

TEST(File, TryReadAtReturnsFalseInsteadOfAborting) {
  // The non-aborting read used on every untrusted-load path (checkpoints,
  // serving snapshots): a short read comes back as (false, message), leaving
  // the abort-on-error semantics to the ReadAt wrapper.
  const std::string path = TempPath("util_test_tryread");
  File f(path, /*truncate=*/true);
  const char data[] = "abcdef";
  f.WriteAt(data, 6, 0);
  char buf[16];
  std::string error;
  EXPECT_TRUE(f.TryReadAt(buf, 6, 0, &error)) << error;
  EXPECT_EQ(std::string(buf, 6), "abcdef");
  EXPECT_FALSE(f.TryReadAt(buf, sizeof(buf), 0, &error));
  EXPECT_NE(error.find("unexpected end of file"), std::string::npos) << error;
  EXPECT_FALSE(f.TryReadAt(buf, 1, 100, &error));  // fully past EOF
  ::remove(path.c_str());
}

TEST(File, ReadVectorRejectsCorruptCountBeforeAllocating) {
  // An on-disk element count far beyond the file size must fail validation, not
  // attempt a multi-GB allocation.
  const std::string path = TempPath("util_test_corrupt_vec");
  {
    File f(path, /*truncate=*/true);
    const uint64_t bogus_count = 1ULL << 40;  // ~8 TiB of int64 payload
    f.WriteAt(&bogus_count, sizeof(bogus_count), 0);
  }
  EXPECT_DEATH(ReadVector<int64_t>(path), "element count exceeds file size");
  ::remove(path.c_str());
}

TEST(AtomicFile, CommitPublishesUncommittedDiscards) {
  const std::string path = TempPath("util_test_atomic");
  {
    AtomicFile f(path);  // destroyed without Commit: simulated mid-save crash
    const int value = 41;
    f.WriteAt(&value, sizeof(value), 0);
  }
  {
    // Neither the final path nor tmp debris survives an uncommitted writer.
    File probe(path);
    EXPECT_EQ(probe.Size(), 0u);  // File() creates empty; nothing was published
  }
  ::remove(path.c_str());
  {
    AtomicFile f(path);
    const int value = 42;
    f.WriteAt(&value, sizeof(value), 0);
    f.Commit();
  }
  File f(path);
  int back = 0;
  f.ReadAt(&back, sizeof(back), 0);
  EXPECT_EQ(back, 42);
  ::remove(path.c_str());
}

TEST(AtomicFile, CommitReplacesPreviousContentWholesale) {
  // The rename is all-or-nothing: a shorter new file fully replaces a longer old
  // one (no tail of stale bytes, as in-place truncate-less writes would leave).
  const std::string path = TempPath("util_test_atomic_replace");
  {
    AtomicFile f(path);
    const char big[64] = "old old old";
    f.WriteAt(big, sizeof(big), 0);
    f.Commit();
  }
  {
    AtomicFile f(path);
    const char small[4] = "new";
    f.WriteAt(small, sizeof(small), 0);
    f.Commit();
  }
  File f(path);
  EXPECT_EQ(f.Size(), 4u);
  ::remove(path.c_str());
}

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.Push(i));
  }
  for (int i = 0; i < 4; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueue, CloseUnblocksAndDrains) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.Push(1));
  q.Close();
  EXPECT_FALSE(q.Push(2));
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BoundedQueue, BlocksProducerWhenFull) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.Push(0));
  std::atomic<bool> pushed{false};
  std::thread t([&] {
    q.Push(1);
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  q.Pop();
  t.join();
  EXPECT_TRUE(pushed.load());
}

TEST(VirtualClock, Accumulates) {
  VirtualClock clock;
  clock.Advance(1.5);
  clock.Advance(0.25);
  EXPECT_DOUBLE_EQ(clock.Seconds(), 1.75);
  clock.Reset();
  EXPECT_DOUBLE_EQ(clock.Seconds(), 0.0);
}

TEST(WallTimer, MeasuresElapsed) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(timer.Millis(), 5.0);
}

}  // namespace
}  // namespace mariusgnn
