// Quickstart: train a 1-layer GraphSage + DistMult link-prediction model on an
// FB15k-237-like knowledge graph, fully in memory, report MRR per epoch, and
// finish with a checkpoint save → resume roundtrip (the resumed trainer must
// reproduce the original's MRR bit-for-bit).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart
#include <cstdio>

#include "src/core/mariusgnn.h"
#include "src/util/binary_io.h"

using namespace mariusgnn;

int main() {
  // 1. Load (generate) a knowledge graph: ~14.5k nodes, ~270k edges, 237 relations.
  Graph graph = Fb15k237Like(/*scale=*/0.25);
  std::printf("graph: %lld nodes, %lld edges, %d relations\n",
              static_cast<long long>(graph.num_nodes()),
              static_cast<long long>(graph.num_edges()), graph.num_relations());

  // 2. Configure a 1-layer GraphSage encoder (fanout 20, both edge directions) with a
  //    DistMult decoder — the paper's link-prediction setup (Section 7.1).
  TrainingConfig config;
  config.layer_type = GnnLayerType::kGraphSage;
  config.fanouts = {20};
  config.dims = {32, 32};
  config.decoder = "distmult";
  config.batch_size = 1000;
  config.num_negatives = 64;

  // 3. Train and evaluate. The in-epoch PipelineController (on by default)
  //    rebalances stage-1 sampling workers vs stage-3 compute chunks from queue
  //    occupancy + compute efficiency; its per-set decisions are in EpochStats.
  LinkPredictionTrainer trainer(&graph, config);
  for (int epoch = 1; epoch <= 5; ++epoch) {
    const EpochStats stats = trainer.TrainEpoch();
    const double mrr = trainer.EvaluateMrr(/*num_negatives=*/200, /*max_edges=*/500);
    std::printf("epoch %d: loss=%.4f  time=%.2fs  MRR=%.4f  workers/set=[", epoch,
                stats.loss, stats.wall_seconds, mrr);
    for (size_t s = 0; s < stats.workers_per_set.size(); ++s) {
      std::printf("%s%d", s == 0 ? "" : " ", stats.workers_per_set[s]);
    }
    std::printf("]  resizes=%d  queue_occ=%.2f  hash=%016llx  rv=%llu\n",
                stats.resize_count, stats.queue_occupancy_mean,
                static_cast<unsigned long long>(stats.determinism_hash),
                static_cast<unsigned long long>(stats.rv_violations));
  }

  // 4. Crash-safe checkpointing: snapshot the run (parameters + Adagrad state +
  //    embedding table + RNG), restore it into a fresh trainer, and verify the
  //    resumed run is bitwise-identical — the checkpoint layer's core guarantee.
  const std::string ckpt = TempPath("mgnn_quickstart_ckpt");
  trainer.SaveCheckpoint(ckpt);
  const double mrr_before = trainer.EvaluateMrr(200, 500);
  LinkPredictionTrainer resumed(&graph, config);
  resumed.ResumeFrom(ckpt);
  const double mrr_after = resumed.EvaluateMrr(200, 500);
  std::printf("checkpoint roundtrip: epoch=%lld  MRR %.6f -> %.6f  %s\n",
              static_cast<long long>(resumed.epochs_completed()), mrr_before,
              mrr_after, mrr_before == mrr_after ? "bitwise-identical" : "DIVERGED");
  std::remove(ckpt.c_str());
  if (mrr_before != mrr_after) {
    return 1;
  }

  // 5. Determinism-hash smoke (docs/DETERMINISM.md): every epoch's hash is an
  //    ordered fold of its batch-loss bits, so a serial run, an 8-worker
  //    pipelined run, and a save/resume run of the same config must produce
  //    bit-equal per-epoch hashes — one u64 comparison per epoch proves the
  //    whole batch stream was identical. RV violations must stay 0 throughout.
  Graph small = Fb15k237Like(/*scale=*/0.1);
  TrainingConfig hash_config = config;
  constexpr int kHashEpochs = 2;
  uint64_t serial_hash[kHashEpochs];
  uint64_t rv_total = 0;
  {
    TrainingConfig serial_config = hash_config;
    serial_config.pipeline.enabled = false;
    LinkPredictionTrainer serial(&small, serial_config);
    for (int e = 0; e < kHashEpochs; ++e) {
      const EpochStats stats = serial.TrainEpoch();
      serial_hash[e] = stats.determinism_hash;
      rv_total += stats.rv_violations;
    }
  }
  bool hashes_ok = true;
  {
    TrainingConfig parallel_config = hash_config;
    parallel_config.pipeline.enabled = true;
    parallel_config.pipeline.workers = 8;
    LinkPredictionTrainer parallel(&small, parallel_config);
    const std::string mid = TempPath("mgnn_quickstart_hash_ckpt");
    for (int e = 0; e < kHashEpochs; ++e) {
      const EpochStats stats = parallel.TrainEpoch();
      hashes_ok = hashes_ok && stats.determinism_hash == serial_hash[e];
      rv_total += stats.rv_violations;
      if (e == 0) {
        parallel.SaveCheckpoint(mid);
      }
    }
    // Resume from the epoch-1 checkpoint and re-run epoch 2: same hash again,
    // and the checkpoint carried epoch 1's hash in its manifest.
    LinkPredictionTrainer resumed_run(&small, parallel_config);
    resumed_run.ResumeFrom(mid);
    hashes_ok = hashes_ok && resumed_run.last_determinism_hash() == serial_hash[0];
    const EpochStats stats = resumed_run.TrainEpoch();
    hashes_ok = hashes_ok && stats.determinism_hash == serial_hash[1];
    rv_total += stats.rv_violations;
    std::remove(mid.c_str());
  }
  std::printf("determinism hashes (serial vs 8-worker vs resumed): %s, rv=%llu\n",
              hashes_ok ? "bit-equal" : "DIVERGED",
              static_cast<unsigned long long>(rv_total));
  return hashes_ok && rv_total == 0 ? 0 : 1;
}
