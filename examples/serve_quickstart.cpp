// Serving quickstart: train a link-prediction model, checkpoint it, and serve
// link-scoring queries online — concurrent requests coalesce into batched
// forwards, answers are bitwise-independent of batching, and the server
// hot-swaps to a newer checkpoint without dropping in-flight requests.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target serve_quickstart
//   ./build/serve_quickstart
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/core/mariusgnn.h"
#include "src/util/binary_io.h"

using namespace mariusgnn;

int main() {
  // 1. Train a small GraphSage + DistMult model and checkpoint two epochs.
  Graph graph = Fb15k237Like(/*scale=*/0.25);
  TrainingConfig config;
  config.fanouts = {20};
  config.dims = {32, 32};
  config.batch_size = 1000;
  config.num_negatives = 64;

  LinkPredictionTrainer trainer(&graph, config);
  trainer.TrainEpoch();
  const std::string ckpt_v1 = TempPath("serve_quickstart_e1");
  trainer.SaveCheckpoint(ckpt_v1);
  trainer.TrainEpoch();
  const std::string ckpt_v2 = TempPath("serve_quickstart_e2");
  trainer.SaveCheckpoint(ckpt_v2);
  std::printf("trained 2 epochs, checkpoints at %s / %s\n", ckpt_v1.c_str(),
              ckpt_v2.c_str());

  // 2. Start a server on the epoch-1 snapshot. The model config must match the
  //    training run; the snapshot is mmapped (v2 checkpoints keep every section
  //    4 KiB-aligned, so embedding rows are gathered zero-copy). For tables too
  //    big for RAM, set options.snapshot.disk_backed = true to serve through an
  //    LRU block cache over the checkpoint file instead.
  InferenceServer server(&graph, TaskKind::kLinkPrediction, config.model_config(),
                         ServeOptions{});
  std::string error;
  if (!server.LoadSnapshot(ckpt_v1, &error)) {
    std::printf("load failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("serving epoch %llu\n",
              static_cast<unsigned long long>(server.current_epoch()));

  // 3. Score candidate destinations for a few source nodes — from concurrent
  //    client threads, which the leader-follower batcher coalesces into one
  //    block-diagonal forward. Every answer is bitwise-identical to scoring the
  //    query alone (ScoreLinksUnbatched), no matter how it was batched.
  const std::vector<int64_t> candidates = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<std::thread> clients;
  for (int64_t src : {10, 20, 30, 40}) {
    clients.emplace_back([&, src] {
      const ServeResult r = server.ScoreLinks(src, /*rel=*/0, candidates);
      std::printf("src=%lld (epoch %llu): best candidate %lld\n",
                  static_cast<long long>(src),
                  static_cast<unsigned long long>(r.epoch),
                  static_cast<long long>(candidates[static_cast<size_t>(
                      std::max_element(r.values.begin(), r.values.end()) -
                      r.values.begin())]));
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }

  // 4. Hot-swap to the epoch-2 snapshot. In-flight requests finish against the
  //    old epoch (their batch pinned it); new requests answer from the new one.
  if (!server.LoadSnapshot(ckpt_v2, &error)) {
    std::printf("swap failed: %s\n", error.c_str());
    return 1;
  }
  const ServeResult after = server.ScoreLinks(10, 0, candidates);
  std::printf("after swap: epoch %llu\n",
              static_cast<unsigned long long>(after.epoch));

  const ServerStats stats = server.stats();
  std::printf("served %llu queries in %llu batches (max coalesced %lld), %llu swap\n",
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.batches),
              static_cast<long long>(stats.max_coalesced),
              static_cast<unsigned long long>(stats.snapshot_swaps));
  // The serve.epoch_pin RV monitor checked every answer against its batch's
  // pinned snapshot epoch — any hot-swap isolation breach would count here.
  std::printf("rv violations (serve.epoch_pin): %llu\n",
              static_cast<unsigned long long>(stats.rv_violations));
  std::remove(ckpt_v1.c_str());
  std::remove(ckpt_v2.c_str());
  return stats.rv_violations == 0 ? 0 : 1;
}
