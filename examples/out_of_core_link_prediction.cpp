// Out-of-core (disk-based) link prediction with the COMET partition replacement
// policy: the graph's base representations live on a simulated EBS volume and only a
// buffer of partitions is resident in memory — the paper's M-GNN_Disk configuration.
#include <cstdio>

#include "src/core/mariusgnn.h"

using namespace mariusgnn;

int main() {
  Graph graph = FreebaseMini(/*scale=*/0.1);
  std::printf("graph: %lld nodes, %lld edges, %d relations\n",
              static_cast<long long>(graph.num_nodes()),
              static_cast<long long>(graph.num_edges()), graph.num_relations());

  TrainingConfig config;
  config.fanouts = {20};
  config.dims = {32, 32};
  config.decoder = "distmult";
  config.batch_size = 1000;
  config.num_negatives = 64;

  // Disk-based storage: 8 physical partitions grouped into 4 logical ones, a buffer
  // of 4 physical partitions (1/2 of the graph resident at a time).
  config.storage.use_disk = true;
  config.storage.num_physical = 8;
  config.storage.num_logical = 4;
  config.storage.buffer_capacity = 4;
  config.storage.policy = "comet";

  LinkPredictionTrainer trainer(&graph, config);
  for (int epoch = 1; epoch <= 4; ++epoch) {
    const EpochStats stats = trainer.TrainEpoch();
    std::printf(
        "epoch %d: loss=%.4f  compute=%.2fs  io=%.3fs (stall %.3fs)  sets=%lld\n",
        epoch, stats.loss, stats.compute_seconds, stats.io_seconds,
        stats.io_stall_seconds, static_cast<long long>(stats.num_partition_sets));
    // The in-epoch controller's per-set worker decisions (mid-epoch resizes at
    // partition-set boundaries, driven by queue occupancy + compute efficiency).
    std::printf("         workers/set=[");
    for (size_t s = 0; s < stats.workers_per_set.size(); ++s) {
      std::printf("%s%d", s == 0 ? "" : " ", stats.workers_per_set[s]);
    }
    std::printf("]  resizes=%d  queue_occ=%.2f\n", stats.resize_count,
                stats.queue_occupancy_mean);
    // Batched IO engine traffic: bytes moved through the submission queue and
    // how deep it actually ran (mean outstanding requests / peak in flight).
    std::printf("         io_read=%.1fMB io_write=%.1fMB qd_mean=%.2f inflight_peak=%d\n",
                stats.io_read_bytes / 1.0e6, stats.io_write_bytes / 1.0e6,
                stats.io_queue_depth_mean, stats.io_inflight_peak);
    // The epoch's determinism hash (compare against an in-memory or serial run
    // of the same config to prove the out-of-core path preserved the batch
    // stream) and any RV monitor violations (always 0 in a healthy build).
    std::printf("         hash=%016llx  rv=%llu\n",
                static_cast<unsigned long long>(stats.determinism_hash),
                static_cast<unsigned long long>(stats.rv_violations));
  }
  std::printf("MRR: %.4f\n", trainer.EvaluateMrr(200, 500));
  return 0;
}
