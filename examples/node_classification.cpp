// Node classification with a 3-layer GraphSage GNN on a Papers100M-like community
// graph (fixed features, softmax head), mirroring the paper's Table 3 setup with
// fanouts 30/20/10.
#include <cstdio>

#include "src/core/mariusgnn.h"

using namespace mariusgnn;

int main() {
  Graph graph = PapersMini(/*scale=*/0.2);
  std::printf("graph: %lld nodes, %lld edges, %lld classes, %zu train nodes\n",
              static_cast<long long>(graph.num_nodes()),
              static_cast<long long>(graph.num_edges()),
              static_cast<long long>(graph.num_classes()), graph.train_nodes().size());

  TrainingConfig config;
  config.layer_type = GnnLayerType::kGraphSage;
  config.fanouts = {30, 20, 10};  // ordered away from the target nodes
  config.dims = {64, 64, 64, 32};
  config.batch_size = 500;
  config.weight_lr = 0.05f;

  NodeClassificationTrainer trainer(&graph, config);
  for (int epoch = 1; epoch <= 5; ++epoch) {
    const EpochStats stats = trainer.TrainEpoch();
    const double valid = trainer.EvaluateValidAccuracy();
    std::printf("epoch %d: loss=%.4f  time=%.2fs  valid-acc=%.2f%%\n", epoch, stats.loss,
                stats.wall_seconds, 100.0 * valid);
  }
  std::printf("test accuracy: %.2f%%\n", 100.0 * trainer.EvaluateTestAccuracy());
  return 0;
}
