// Replica smoke (docs/DISTRIBUTED.md): fork two data-parallel replicas of the
// same link-prediction config, train two epochs over the localhost gradient
// exchange, and verify both replicas end every epoch with the identical
// determinism hash and zero RV violations. Exits nonzero on any divergence —
// CI runs this as the multi-replica gate.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target replica_smoke
//   ./build/replica_smoke
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdint>

#include "src/core/mariusgnn.h"

using namespace mariusgnn;

namespace {

constexpr int kWorld = 2;
constexpr int kEpochs = 2;

// One replica's training run; writes each epoch's determinism hash (binary
// u64) to `out_fd`. Returns nonzero on any local failure.
int RunReplica(int rank, int port, int listen_fd, int out_fd) {
  Graph graph = Fb15k237Like(/*scale=*/0.05);
  TrainingConfig config;
  config.fanouts = {5};
  config.dims = {16, 16};
  config.batch_size = 512;
  config.num_negatives = 32;
  config.replica.rank = rank;
  config.replica.world_size = kWorld;
  config.replica.port = port;
  if (rank == 0) {
    config.replica.listen_fd = listen_fd;
  }
  LinkPredictionTrainer trainer(&graph, config);
  for (int e = 0; e < kEpochs; ++e) {
    const EpochStats stats = trainer.TrainEpoch();
    std::printf("rank %d epoch %d: loss=%.6f hash=%016llx comm=%.1fKB rv=%llu\n",
                rank, e + 1, stats.loss,
                static_cast<unsigned long long>(stats.determinism_hash),
                static_cast<double>(stats.comm_bytes) / 1024.0,
                static_cast<unsigned long long>(stats.rv_violations));
    if (stats.rv_violations != 0 || stats.comm_bytes == 0) {
      return 1;
    }
    const uint64_t hash = stats.determinism_hash;
    if (::write(out_fd, &hash, sizeof(hash)) != sizeof(hash)) {
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main() {
  // Bind port 0 before forking so the kernel-chosen port cannot collide;
  // rank 0 adopts the already-listening fd via replica.listen_fd.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (listen_fd < 0 ||
      ::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd, kWorld) != 0) {
    std::perror("replica_smoke: listen socket");
    return 1;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const int port = static_cast<int>(ntohs(addr.sin_port));

  int pipes[kWorld][2];
  pid_t pids[kWorld];
  for (int r = 0; r < kWorld; ++r) {
    if (::pipe(pipes[r]) != 0) {
      std::perror("replica_smoke: pipe");
      return 1;
    }
    pids[r] = ::fork();
    if (pids[r] < 0) {
      std::perror("replica_smoke: fork");
      return 1;
    }
    if (pids[r] == 0) {
      ::close(pipes[r][0]);
      const int rc = RunReplica(r, port, listen_fd, pipes[r][1]);
      std::fflush(stdout);  // _exit skips stdio flush
      ::_exit(rc);
    }
    ::close(pipes[r][1]);
  }
  ::close(listen_fd);

  uint64_t hashes[kWorld][kEpochs];
  bool ok = true;
  for (int r = 0; r < kWorld; ++r) {
    for (int e = 0; e < kEpochs; ++e) {
      if (::read(pipes[r][0], &hashes[r][e], sizeof(uint64_t)) !=
          sizeof(uint64_t)) {
        std::fprintf(stderr, "rank %d produced no hash for epoch %d\n", r, e + 1);
        ok = false;
        hashes[r][e] = 0;
      }
    }
    ::close(pipes[r][0]);
    int status = 0;
    ::waitpid(pids[r], &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "rank %d failed\n", r);
      ok = false;
    }
  }
  for (int e = 0; e < kEpochs && ok; ++e) {
    for (int r = 1; r < kWorld; ++r) {
      if (hashes[r][e] != hashes[0][e] || hashes[0][e] == 0) {
        std::fprintf(stderr, "epoch %d: replica hashes diverged\n", e + 1);
        ok = false;
      }
    }
  }
  std::printf("replica smoke: %s\n", ok ? "all replicas agree" : "FAILED");
  return ok ? 0 : 1;
}
