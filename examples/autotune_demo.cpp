// Demonstrates the Section 6 auto-tuning rules: given graph statistics and a machine
// description, derive (p, l, c) for COMET — here for the paper's actual large graphs
// on an AWS P3.2xLarge (61 GB RAM), then for a scaled-down graph we can train.
#include <cstdio>

#include "src/core/mariusgnn.h"

using namespace mariusgnn;

namespace {

void Show(const char* name, int64_t nodes, int64_t edges, int64_t dim) {
  AutoTuneInput input;
  input.num_nodes = nodes;
  input.num_edges = edges;
  input.dim = dim;
  input.cpu_bytes = 61e9;  // P3.2xLarge
  const AutoTuneResult r = AutoTune(input);
  if (r.fits_in_memory) {
    std::printf("%-14s fits in memory on a P3.2xLarge\n", name);
  } else {
    std::printf("%-14s p=%d physical, l=%d logical, c=%d buffer slots\n", name,
                r.num_physical, r.num_logical, r.buffer_capacity);
  }
}

}  // namespace

int main() {
  std::printf("Auto-tuned COMET configurations (Table 1 graphs, 61 GB CPU memory):\n");
  Show("Papers100M", 111'000'000, 1'620'000'000, 128);
  Show("Mag240M", 122'000'000, 1'300'000'000, 768);
  Show("Freebase86M", 86'000'000, 338'000'000, 100);
  Show("WikiKG90Mv2", 91'000'000, 601'000'000, 100);
  Show("Hyperlink", 3'500'000'000, 128'000'000'000, 50);

  // Train a small graph with an auto-tuned disk configuration (forcing a small
  // synthetic memory budget so the disk path engages).
  Graph graph = Fb15k237Like(0.1);
  AutoTuneInput input;
  input.num_nodes = graph.num_nodes();
  input.num_edges = graph.num_edges();
  input.dim = 16;
  input.cpu_bytes = static_cast<double>(graph.num_nodes()) * 16 * 4 / 2 +
                    static_cast<double>(graph.num_edges()) * 20;
  const AutoTuneResult tuned = AutoTune(input);
  std::printf("\nsynthetic graph: p=%d l=%d c=%d\n", tuned.num_physical,
              tuned.num_logical, tuned.buffer_capacity);

  TrainingConfig config;
  config.fanouts = {};
  config.dims = {16};
  config.batch_size = 1000;
  config.num_negatives = 32;
  config.storage.use_disk = !tuned.fits_in_memory;
  config.storage.num_physical = tuned.num_physical;
  config.storage.num_logical = tuned.num_logical;
  config.storage.buffer_capacity = tuned.buffer_capacity;
  LinkPredictionTrainer trainer(&graph, config);
  for (int epoch = 1; epoch <= 3; ++epoch) {
    const EpochStats stats = trainer.TrainEpoch();
    std::printf("epoch %d: loss=%.4f  io=%.3fs\n", epoch, stats.loss, stats.io_seconds);
  }
  return 0;
}
