// Table 3 reproduction: node classification on Papers100M-like and Mag240M-like
// graphs with a 3-layer GraphSage GNN. Rows: MariusGNN in-memory (DENSE, 1 device),
// MariusGNN disk-based (DENSE + training-node caching), and DGL/PyG-style baselines
// (layer-wise resampling + block execution). Columns: epoch time, test accuracy, and
// $/epoch using the paper's instance pricing (M-GNN_Disk runs on the cheap
// P3.2xLarge; in-memory systems need the larger instances).
#include "bench/bench_common.h"

using namespace mariusgnn;
using namespace mariusgnn::bench;

namespace {

struct Row {
  const char* system;
  RunResult result;
  const char* instance;
};

void RunDataset(const char* name, const Graph& graph, const char* mem_instance) {
  TrainingConfig base;
  base.layer_type = GnnLayerType::kGraphSage;
  base.fanouts = {15, 10, 5};  // paper: 30/20/10, scaled with the graphs
  base.dims = {graph.features().cols(), 64, 64, 32};
  base.batch_size = 500;
  base.weight_lr = 0.1f;
  const int epochs = 10;

  std::vector<Row> rows;

  TrainingConfig mem = base;
  rows.push_back({"M-GNN_Mem", RunNodeClassification(graph, mem, epochs), mem_instance});

  TrainingConfig disk = base;
  disk.storage.use_disk = true;
  disk.storage.num_physical = 16;
  disk.storage.buffer_capacity = 8;
  rows.push_back({"M-GNN_Disk", RunNodeClassification(graph, disk, epochs),
                  "p3.2xlarge"});

  TrainingConfig dgl = base;
  dgl.sampler = SamplerKind::kLayerwise;
  rows.push_back({"DGL-like", RunNodeClassification(graph, dgl, epochs), mem_instance});

  TrainingConfig pyg = base;
  pyg.sampler = SamplerKind::kLayerwise;
  pyg.batch_size = base.batch_size / 2;  // paper: PyG needs half batch on Mag
  pyg.seed = 13;
  rows.push_back({"PyG-like", RunNodeClassification(graph, pyg, epochs), mem_instance});

  std::printf("\n-- %s --\n", name);
  std::printf("%-12s %12s %12s %14s\n", "System", "Epoch (s)", "Accuracy", "$/epoch");
  for (const Row& row : rows) {
    std::printf("%-12s %12.2f %11.2f%% %14.6f\n", row.system,
                row.result.avg_epoch_seconds, 100.0 * row.result.metric,
                EpochCost(row.instance, row.result.avg_epoch_seconds));
  }
}

}  // namespace

int main() {
  PrintHeader("Table 3: node classification (3-layer GraphSage)");
  RunDataset("Papers100M-like", PapersMini(0.6), "p3.8xlarge");
  RunDataset("Mag240M-like", MagMini(0.5), "p3.16xlarge");
  std::printf(
      "\nShape check vs paper: M-GNN epoch time < baselines; disk accuracy within ~1%%\n"
      "of memory; disk $/epoch is the cheapest column (16-64x in the paper).\n");
  return 0;
}
