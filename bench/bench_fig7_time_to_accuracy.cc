// Figure 7 reproduction: time-to-accuracy curves.
//  Left panel:  node classification (Papers100M-like) — M-GNN mem/disk vs baseline.
//  Right panel: link prediction (Freebase86M-like) — M-GNN mem/disk vs baseline.
// Each series prints (cumulative seconds, metric) per epoch.
#include "bench/bench_common.h"

using namespace mariusgnn;
using namespace mariusgnn::bench;

namespace {

void NcSeries(const char* name, const Graph& graph, TrainingConfig config, int epochs) {
  NodeClassificationTrainer trainer(&graph, config);
  double cumulative = 0.0;
  std::printf("%s:\n", name);
  for (int e = 1; e <= epochs; ++e) {
    const EpochStats stats = trainer.TrainEpoch();
    cumulative += stats.wall_seconds;
    std::printf("  t=%8.2fs  accuracy=%6.2f%%\n", cumulative,
                100.0 * trainer.EvaluateValidAccuracy());
  }
}

void LpSeries(const char* name, const Graph& graph, TrainingConfig config, int epochs) {
  LinkPredictionTrainer trainer(&graph, config);
  double cumulative = 0.0;
  std::printf("%s:\n", name);
  for (int e = 1; e <= epochs; ++e) {
    const EpochStats stats = trainer.TrainEpoch();
    cumulative += stats.wall_seconds;
    std::printf("  t=%8.2fs  MRR=%.4f\n", cumulative,
                trainer.EvaluateMrr(100, 300, /*use_valid=*/true));
  }
}

}  // namespace

int main() {
  PrintHeader("Figure 7 (left): node classification time-to-accuracy (Papers-like)");
  {
    Graph graph = PapersMini(0.5);
    TrainingConfig base;
    base.layer_type = GnnLayerType::kGraphSage;
    base.fanouts = {15, 10, 5};
    base.dims = {graph.features().cols(), 64, 64, 32};
    base.batch_size = 500;
    base.weight_lr = 0.05f;
    const int epochs = 6;

    NcSeries("M-GNN_Mem (DENSE)", graph, base, epochs);

    TrainingConfig disk = base;
    disk.storage.use_disk = true;
    disk.storage.num_physical = 16;
    disk.storage.buffer_capacity = 8;
    NcSeries("M-GNN_Disk (DENSE + caching)", graph, disk, epochs);

    TrainingConfig baseline = base;
    baseline.sampler = SamplerKind::kLayerwise;
    NcSeries("Baseline (layer-wise)", graph, baseline, epochs);
  }

  PrintHeader("Figure 7 (right): link prediction time-to-accuracy (Freebase-like)");
  {
    Graph graph = FreebaseMini(0.08);
    TrainingConfig base;
    base.layer_type = GnnLayerType::kGraphSage;
    base.fanouts = {20};
    base.dims = {32, 32};
    base.batch_size = 1000;
    base.num_negatives = 100;
    const int epochs = 5;

    LpSeries("M-GNN_Mem (DENSE)", graph, base, epochs);

    TrainingConfig disk = base;
    disk.storage.use_disk = true;
    disk.storage.num_physical = 8;
    disk.storage.num_logical = 4;
    disk.storage.buffer_capacity = 4;
    LpSeries("M-GNN_Disk (COMET)", graph, disk, epochs);

    TrainingConfig baseline = base;
    baseline.sampler = SamplerKind::kLayerwise;
    LpSeries("Baseline (layer-wise)", graph, baseline, epochs);
  }

  std::printf(
      "\nShape check vs paper: the M-GNN disk curve dominates on time-to-accuracy\n"
      "(cheapest instance, fastest epochs); all systems converge to similar quality.\n"
      "The paper's 4-6x baseline slowdown relies on its baselines' slower samplers;\n"
      "see Table 6 for the algorithmic sampling gap.\n");
  return 0;
}
