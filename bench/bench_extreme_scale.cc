// Section 7.3 reproduction (scaled): extreme-scale single-device training. The paper
// trains GraphSage + DistMult (10 neighbors, 500 negatives, dim 50) over the 3.5B-node
// / 128B-edge hyperlink graph on one P3.2xLarge at 194k edges/sec and $564/epoch.
//
// Here: a hyperlink-like graph many times larger than the partition buffer is trained
// disk-based for one epoch; we report the measured edges/sec and extrapolate the
// $/epoch of the full 128B-edge graph at that throughput.
#include "bench/bench_common.h"
#include "src/util/timer.h"

using namespace mariusgnn;
using namespace mariusgnn::bench;

int main() {
  PrintHeader("Section 7.3: extreme-scale stress test (hyperlink-like graph)");
  Graph graph = HyperlinkMini(0.5);
  std::printf("graph: %lld nodes, %lld edges; buffer holds 1/8 of partitions\n",
              static_cast<long long>(graph.num_nodes()),
              static_cast<long long>(graph.num_edges()));

  TrainingConfig config;
  config.layer_type = GnnLayerType::kGraphSage;
  config.fanouts = {10};
  config.dims = {50, 50};
  config.decoder = "distmult";
  config.batch_size = 2000;
  config.num_negatives = 100;  // paper: 500; scaled for the CPU substrate
  config.storage.use_disk = true;
  config.storage.num_physical = 16;
  config.storage.num_logical = 16;
  config.storage.buffer_capacity = 2;
  config.storage.policy = "comet";

  LinkPredictionTrainer trainer(&graph, config);
  const EpochStats stats = trainer.TrainEpoch();
  const double edges_per_sec =
      static_cast<double>(stats.num_examples) / stats.wall_seconds;
  std::printf("epoch: %.1fs wall (%.1fs compute, %.3fs IO stall), %lld examples\n",
              stats.wall_seconds, stats.compute_seconds, stats.io_stall_seconds,
              static_cast<long long>(stats.num_examples));
  std::printf("throughput: %.0f edges/sec\n", edges_per_sec);

  // Extrapolated cost of one epoch over the full 128B-edge hyperlink graph on a
  // P3.2xLarge at this throughput (the paper measured $564/epoch at 194k edges/sec).
  const double full_edges = 128e9;
  const double full_seconds = full_edges / edges_per_sec;
  std::printf("extrapolated full-graph epoch: %.1f hours -> $%.0f/epoch on P3.2xLarge\n",
              full_seconds / 3600.0, EpochCost("p3.2xlarge", full_seconds));
  std::printf(
      "\nShape check vs paper: training proceeds with a buffer far smaller than the\n"
      "graph, IO stays overlapped with compute, and cost scales linearly with edges.\n");
  return 0;
}
