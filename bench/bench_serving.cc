// Serving bench: latency/throughput of the online inference tier.
//
// A small link-prediction model is trained and checkpointed, then served at
// 1/8/64 concurrent clients in both embedding-storage modes (memory = mmapped
// snapshot, disk = LRU block cache over the checkpoint file). Each client
// issues a fixed number of queries and records per-query wall latency; the
// table reports p50/p99 and aggregate QPS per configuration, plus how far the
// leader-follower batcher coalesced under load. Correctness is asserted, not
// just timed: before timing, one query per configuration is checked bitwise
// against the serial unbatched oracle, and the bench exits nonzero on any
// mismatch — a perf artifact from a wrong server would be worse than none.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"

using namespace mariusgnn;
using namespace mariusgnn::bench;

namespace {

constexpr int kTrainEpochs = 2;
constexpr int kQueriesPerClient = 64;
constexpr int kCandidatesPerQuery = 100;

struct ServingRow {
  std::string mode;  // "memory" or "disk"
  std::string name;  // "clients_1", "clients_8", "clients_64"
  int clients = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double qps = 0.0;
  uint64_t queries = 0;
  uint64_t batches = 0;
  int64_t max_coalesced = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t rv_violations = 0;  // serve.epoch_pin breaches (must be 0)
};

std::vector<ServingRow>& Rows() {
  static std::vector<ServingRow> rows;
  return rows;
}

struct LinkQuery {
  int64_t src;
  int32_t rel;
  std::vector<int64_t> candidates;
};

std::vector<LinkQuery> MakeQueries(const Graph& g, int count) {
  std::vector<LinkQuery> queries;
  for (int q = 0; q < count; ++q) {
    LinkQuery lq;
    lq.src = (static_cast<int64_t>(q) * 97 + 13) % g.num_nodes();
    lq.rel = static_cast<int32_t>(q % g.num_relations());
    for (int j = 0; j < kCandidatesPerQuery; ++j) {
      lq.candidates.push_back((lq.src + 31 * (j + 1)) % g.num_nodes());
    }
    queries.push_back(std::move(lq));
  }
  return queries;
}

double Percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) {
    return 0.0;
  }
  const size_t idx = static_cast<size_t>(p * (sorted_ms.size() - 1));
  return sorted_ms[idx];
}

// One (mode, clients) configuration: fresh server so cache and coalescing
// stats describe exactly this run.
bool RunConfig(const Graph& g, const TrainingConfig& config,
               const std::string& ckpt, bool disk_backed, int clients,
               const std::vector<LinkQuery>& queries) {
  ServeOptions options;
  options.snapshot.disk_backed = disk_backed;
  options.snapshot.cache_block_rows = 256;
  options.snapshot.cache_capacity_blocks = 64;
  InferenceServer server(&g, TaskKind::kLinkPrediction, config.model_config(),
                         options);
  std::string error;
  if (!server.LoadSnapshot(ckpt, &error)) {
    std::printf("FAIL: %s\n", error.c_str());
    return false;
  }

  // Determinism gate: batched must equal the serial oracle bitwise.
  {
    const LinkQuery& lq = queries.front();
    const ServeResult got = server.ScoreLinks(lq.src, lq.rel, lq.candidates);
    const ServeResult want =
        server.ScoreLinksUnbatched(lq.src, lq.rel, lq.candidates);
    if (got.values != want.values) {
      std::printf("FAIL: batched scores diverge from the serial oracle (%s)\n",
                  disk_backed ? "disk" : "memory");
      return false;
    }
  }

  std::vector<std::vector<double>> latencies(clients);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(kQueriesPerClient);
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const LinkQuery& lq =
            queries[static_cast<size_t>(c * kQueriesPerClient + q) % queries.size()];
        const auto q0 = std::chrono::steady_clock::now();
        const ServeResult r = server.ScoreLinks(lq.src, lq.rel, lq.candidates);
        const auto q1 = std::chrono::steady_clock::now();
        if (r.values.size() != lq.candidates.size()) {
          std::abort();  // dropped or truncated answer: never acceptable
        }
        latencies[c].push_back(
            std::chrono::duration<double, std::milli>(q1 - q0).count());
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::vector<double> all;
  for (const auto& v : latencies) {
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());

  const ServerStats stats = server.stats();
  ServingRow row;
  row.mode = disk_backed ? "disk" : "memory";
  row.name = "clients_" + std::to_string(clients);
  row.clients = clients;
  row.p50_ms = Percentile(all, 0.50);
  row.p99_ms = Percentile(all, 0.99);
  row.qps = wall > 0.0 ? static_cast<double>(all.size()) / wall : 0.0;
  row.queries = stats.queries;
  row.batches = stats.batches;
  row.max_coalesced = stats.max_coalesced;
  row.cache_hits = stats.cache.hits;
  row.cache_misses = stats.cache.misses;
  row.cache_evictions = stats.cache.evictions;
  row.rv_violations = stats.rv_violations;
  Rows().push_back(row);
  if (stats.rv_violations != 0) {
    std::printf("FAIL: %llu serve.epoch_pin RV violations (%s, %d clients)\n",
                static_cast<unsigned long long>(stats.rv_violations),
                row.mode.c_str(), clients);
    return false;
  }

  std::printf(
      "%-6s  %3d clients  p50 %7.3f ms  p99 %7.3f ms  %8.1f qps  "
      "batches %5llu  max coalesced %3lld  cache h/m/e %llu/%llu/%llu\n",
      row.mode.c_str(), clients, row.p50_ms, row.p99_ms, row.qps,
      static_cast<unsigned long long>(row.batches),
      static_cast<long long>(row.max_coalesced),
      static_cast<unsigned long long>(row.cache_hits),
      static_cast<unsigned long long>(row.cache_misses),
      static_cast<unsigned long long>(row.cache_evictions));
  return true;
}

void WriteJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("WARN: could not open %s for writing\n", path.c_str());
    return;
  }
  const std::vector<ServingRow>& rows = Rows();
  std::fprintf(f, "{\n  \"bench\": \"serving\",\n  \"runs\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ServingRow& r = rows[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"name\": \"%s\", \"clients\": %d, "
                 "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"qps\": %.2f, "
                 "\"queries\": %llu, \"batches\": %llu, \"max_coalesced\": %lld, "
                 "\"cache_hits\": %llu, \"cache_misses\": %llu, "
                 "\"cache_evictions\": %llu, \"rv_violations\": %llu}%s\n",
                 r.mode.c_str(), r.name.c_str(), r.clients, r.p50_ms, r.p99_ms,
                 r.qps, static_cast<unsigned long long>(r.queries),
                 static_cast<unsigned long long>(r.batches),
                 static_cast<long long>(r.max_coalesced),
                 static_cast<unsigned long long>(r.cache_hits),
                 static_cast<unsigned long long>(r.cache_misses),
                 static_cast<unsigned long long>(r.cache_evictions),
                 static_cast<unsigned long long>(r.rv_violations),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    }
  }
  PrintHeader("Serving: batched concurrent inference over checkpoint snapshots");

  Graph graph = Fb15k237Like(0.1);
  TrainingConfig config;
  config.fanouts = {10};
  config.dims = {32, 32};
  config.batch_size = 1000;
  config.num_negatives = 64;
  config.pipeline.enabled = false;
  config.pipeline.parallel_compute = false;
  std::printf("FB15k-237-like scale=0.1: %lld nodes, %lld edges, %d train epochs\n",
              static_cast<long long>(graph.num_nodes()),
              static_cast<long long>(graph.num_edges()), kTrainEpochs);

  LinkPredictionTrainer trainer(&graph, config);
  for (int e = 0; e < kTrainEpochs; ++e) {
    trainer.TrainEpoch();
  }
  const std::string ckpt = TempPath("mgnn_bench_serving");
  trainer.SaveCheckpoint(ckpt);

  const std::vector<LinkQuery> queries = MakeQueries(graph, 256);
  bool ok = true;
  for (const bool disk : {false, true}) {
    for (const int clients : {1, 8, 64}) {
      ok = RunConfig(graph, config, ckpt, disk, clients, queries) && ok;
    }
  }
  if (!json_path.empty()) {
    WriteJson(json_path);
  }
  std::remove(ckpt.c_str());
  if (!ok) {
    std::printf("\nFAIL: serving diverged from the serial oracle\n");
  }
  return ok ? 0 : 1;
}
