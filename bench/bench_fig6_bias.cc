// Figure 6 reproduction: empirical behaviour of COMET's hyperparameters.
//  (a) model accuracy (MRR) vs Edge Permutation Bias — bias varied via (p, l);
//  (b) bias, number of subgraphs |S|, and normalized total IO vs #logical partitions;
//  (c) bias vs #physical partitions at a fixed buffer fraction.
#include "bench/bench_common.h"

using namespace mariusgnn;
using namespace mariusgnn::bench;

namespace {

double MeanBias(const Graph& graph, int32_t p, int32_t l, int32_t c, int trials,
                Partitioning* partitioning_out = nullptr) {
  Rng rng(33);
  Partitioning partitioning(graph, p, PartitionAssignment::kRandom, rng);
  CometPolicy comet(l);
  double bias = 0.0;
  for (int t = 0; t < trials; ++t) {
    bias += EdgePermutationBias(comet.GenerateEpoch(partitioning, c, rng), partitioning,
                                graph);
  }
  (void)partitioning_out;
  return bias / trials;
}

}  // namespace

int main() {
  Graph graph = Fb15k237Like(0.3);

  // (a) accuracy vs bias. Storage geometry (p = 16, c = 8) is held fixed so training
  // conditions are identical; only the ordering policy (and thus the bias) varies:
  // COMET with increasing l, then BETA (the most correlated order).
  PrintHeader("Figure 6a: accuracy (MRR) vs Edge Permutation Bias (p=16, c=8)");
  std::printf("%-18s %10s %10s\n", "Ordering", "Bias", "MRR");
  struct Config {
    int32_t l;  // 0 => BETA
    const char* label;
  };
  const Config configs[] = {{4, "COMET l=4"}, {8, "COMET l=8"}, {16, "COMET l=16"},
                            {0, "BETA"}};
  for (const Config& cfg : configs) {
    Rng rng(44);
    Partitioning partitioning(graph, 16, PartitionAssignment::kRandom, rng);
    std::unique_ptr<OrderingPolicy> policy;
    if (cfg.l == 0) {
      policy = std::make_unique<BetaPolicy>();
    } else {
      policy = std::make_unique<CometPolicy>(cfg.l);
    }
    double bias = 0.0;
    for (int t = 0; t < 3; ++t) {
      bias += EdgePermutationBias(policy->GenerateEpoch(partitioning, 8, rng),
                                  partitioning, graph);
    }
    bias /= 3.0;

    TrainingConfig tc;
    tc.layer_type = GnnLayerType::kGraphSage;
    tc.fanouts = {10};
    tc.dims = {16, 16};
    tc.batch_size = 1000;
    tc.num_negatives = 64;
    tc.storage.use_disk = true;
    tc.storage.num_physical = 16;
    tc.storage.num_logical = cfg.l > 0 ? cfg.l : 16;
    tc.storage.buffer_capacity = 8;
    tc.storage.policy = cfg.l == 0 ? "beta" : "comet";
    const RunResult r = RunLinkPrediction(graph, tc, 4);
    std::printf("%-18s %10.3f %10.4f\n", cfg.label, bias, r.metric);
  }

  // (b) effect of the number of logical partitions at p = 16, c = 8.
  PrintHeader("Figure 6b: effect of logical partitions (p=16, c=8)");
  std::printf("%-10s %10s %14s %18s\n", "l", "Bias", "#Subgraphs", "Norm. total IO");
  double io_baseline = -1.0;
  for (int32_t l : {4, 8, 16}) {
    Rng rng(55);
    Partitioning partitioning(graph, 16, PartitionAssignment::kRandom, rng);
    CometPolicy comet(l);
    double bias = 0.0, loads = 0.0, sets = 0.0;
    const int trials = 3;
    for (int t = 0; t < trials; ++t) {
      EpochPlan plan = comet.GenerateEpoch(partitioning, 8, rng);
      bias += EdgePermutationBias(plan, partitioning, graph);
      loads += static_cast<double>(plan.TotalPartitionLoads());
      sets += static_cast<double>(plan.num_sets());
    }
    bias /= trials;
    loads /= trials;
    sets /= trials;
    if (io_baseline < 0) {
      io_baseline = loads;
    }
    std::printf("%-10d %10.3f %14.1f %18.3f\n", l, bias, sets, loads / io_baseline);
  }

  // (c) effect of the number of physical partitions (buffer = half the graph).
  PrintHeader("Figure 6c: effect of physical partitions (c = p/2, l = 4)");
  std::printf("%-10s %10s\n", "p", "Bias");
  for (int32_t p : {8, 16, 32, 64, 128}) {
    std::printf("%-10d %10.3f\n", p, MeanBias(graph, p, 4, p / 2, 12));
  }

  std::printf(
      "\nShape check vs paper: bias falls as l decreases and as p increases; total IO\n"
      "falls and |S| grows as l increases; lower bias tracks higher MRR.\n");
  return 0;
}
