// Figure 8 reproduction: COMET auto-tuning rules vs a hyperparameter grid search.
// Every (p, l, c) configuration is trained disk-based for the same number of epochs;
// the scatter of (epoch time, MRR) is printed with the auto-tuned point marked. The
// auto-tuned configuration should sit on the Pareto frontier.
#include "bench/bench_common.h"

using namespace mariusgnn;
using namespace mariusgnn::bench;

namespace {

void RunDataset(const char* name, const Graph& graph, double cpu_budget_bytes,
                int epochs) {
  std::printf("\n-- %s --\n", name);

  AutoTuneInput input;
  input.num_nodes = graph.num_nodes();
  input.num_edges = graph.num_edges();
  input.dim = 16;
  input.cpu_bytes = cpu_budget_bytes;
  const AutoTuneResult tuned = AutoTune(input);

  struct Config {
    int32_t p, l, c;
  };
  std::vector<Config> grid = {
      {8, 8, 2}, {8, 4, 4}, {16, 16, 2}, {16, 8, 4}, {16, 4, 8}, {32, 16, 4}, {32, 8, 8},
  };
  // Ensure the auto-tuned point itself is part of the scan.
  if (!tuned.fits_in_memory) {
    grid.push_back({tuned.num_physical, tuned.num_logical, tuned.buffer_capacity});
  }

  // All grid points must respect the same machine: the buffer has to fit in the CPU
  // budget (grid search cannot cheat with more memory than the auto-tuner had).
  const double no = static_cast<double>(graph.num_nodes()) * 16 * 4;
  const double eo = static_cast<double>(graph.num_edges()) * 20;
  auto feasible = [&](const Config& cfg) {
    const double po = no / cfg.p;
    const double ebo = eo / (static_cast<double>(cfg.p) * cfg.p);
    return cfg.c * po + 2.0 * cfg.c * cfg.c * ebo < 0.9 * cpu_budget_bytes;
  };

  std::printf("%-22s %14s %10s %6s\n", "Config (p,l,c)", "Epoch (s)", "MRR", "");
  for (const Config& cfg : grid) {
    const bool is_tuned = !tuned.fits_in_memory && cfg.p == tuned.num_physical &&
                          cfg.l == tuned.num_logical && cfg.c == tuned.buffer_capacity;
    if (!feasible(cfg)) {
      std::printf("p=%-4d l=%-4d c=%-4d %16s %10s %6s\n", cfg.p, cfg.l, cfg.c,
                  "exceeds mem", "-", is_tuned ? "<auto" : "");
      continue;
    }
    TrainingConfig tc;
    tc.fanouts = {};
    tc.dims = {16};
    tc.batch_size = 1000;
    tc.num_negatives = 64;
    tc.storage.use_disk = true;
    tc.storage.num_physical = cfg.p;
    tc.storage.num_logical = cfg.l;
    tc.storage.buffer_capacity = cfg.c;
    // Slow volume so IO differences are visible at bench scale.
    tc.storage.disk_model.bandwidth_bytes_per_sec = 5e6;
    tc.storage.disk_model.iops = 200;
    tc.storage.disk_model.block_size = 1 << 14;
    const RunResult r = RunLinkPrediction(graph, tc, epochs);
    std::printf("p=%-4d l=%-4d c=%-4d %16.2f %10.4f %6s\n", cfg.p, cfg.l, cfg.c,
                r.avg_epoch_seconds, r.metric, is_tuned ? "<auto" : "");
  }
}

}  // namespace

int main() {
  PrintHeader("Figure 8: auto-tuning rules vs grid search (DistMult, disk-based)");
  {
    Graph graph = Fb15k237Like(0.3);
    // Synthetic CPU budget: half the node store + edges, forcing disk mode.
    const double budget = static_cast<double>(graph.num_nodes()) * 16 * 4 / 2 +
                          static_cast<double>(graph.num_edges()) * 20;
    RunDataset("FB15k-237-like", graph, budget, 3);
  }
  {
    Graph graph = FreebaseMini(0.05);
    const double budget = static_cast<double>(graph.num_nodes()) * 16 * 4 / 2 +
                          static_cast<double>(graph.num_edges()) * 20;
    RunDataset("Freebase86M-like", graph, budget, 2);
  }
  std::printf(
      "\nShape check vs paper: the auto-tuned point achieves near-best MRR and epoch\n"
      "time simultaneously (no configuration dominates it on both axes).\n");
  return 0;
}
