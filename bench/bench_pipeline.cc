// Pipeline bench: serial vs pipelined (1 and N batch-construction workers) epoch
// time for link prediction, in-memory and disk modes.
//
// "serial" is the fully synchronous baseline of Figure 2 without pipelining: batch
// construction blocks compute and every partition load/write-back stalls the epoch.
// The pipelined configurations run the TrainingPipeline (sampling overlaps compute)
// and, in disk mode, PartitionBuffer::Prefetch (partition IO overlaps compute), so
// epoch time = compute + *unhidden* IO stalls drops strictly below the baseline.
// Losses and MRR are printed to show the trajectories are identical for every
// configuration — batches are derived from per-batch seeds and consumed in order, so
// pipelining changes only where time goes, never what is computed.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/util/binary_io.h"

using namespace mariusgnn;
using namespace mariusgnn::bench;

namespace {

// Enough epochs and graph scale that wall-clock scheduler jitter is small relative
// to the modeled-IO overlap win (this bench also runs on 1-core CI boxes).
constexpr int kEpochs = 5;

TrainingConfig BaseConfig() {
  TrainingConfig config;
  config.layer_type = GnnLayerType::kGraphSage;
  config.fanouts = {10};
  config.dims = {16, 16};
  config.batch_size = 500;
  config.num_negatives = 64;
  return config;
}

struct PipelineRun {
  double epoch_seconds = 0.0;
  double sample_seconds = 0.0;
  double io_stall_seconds = 0.0;
  double compute_efficiency = 1.0;
  double queue_occupancy_mean = 0.0;   // last epoch, fraction of queue capacity
  std::vector<int> workers_per_set;    // last epoch's per-set worker decisions
  int resize_count = 0;                // mid-epoch resizes across all epochs
  // IO-engine counters, summed over the epochs (zero when the engine is off).
  uint64_t io_read_bytes = 0;
  uint64_t io_write_bytes = 0;
  double io_queue_depth_mean = 0.0;  // last epoch
  int io_inflight_peak = 0;          // max across epochs
  // Gradient-exchange counters, summed over the epochs (zero for world=1's
  // LocalExchange; nonzero only when replicas train over the seam).
  double comm_seconds = 0.0;
  uint64_t comm_bytes = 0;
  double loss = 0.0;  // last-epoch mean loss
  double mrr = 0.0;
  // Fold of the per-epoch determinism hashes across the run's epochs: one u64
  // that two configurations can compare to prove their whole multi-epoch batch
  // streams were bitwise-identical (stronger than comparing last-epoch loss).
  uint64_t determinism_hash = 0;
  // RV violations observed across the run's epochs (must be 0).
  uint64_t rv_violations = 0;
  // One streamed checkpoint save at end of run: wall time and peak transient
  // allocation (disk mode must stay O(one partition), never the full table).
  double checkpoint_save_seconds = 0.0;
  uint64_t checkpoint_peak_bytes = 0;
};

// One (mode, configuration) row for the machine-readable output the CI
// bench-regression gate diffs against the previous main-branch artifact.
struct JsonRow {
  std::string mode;  // "memory" or "disk"
  std::string name;  // "serial", "pipelined_w1", ...
  PipelineRun run;
  bool identical = true;  // trajectory matches the serial baseline
};

std::vector<JsonRow>& JsonRows() {
  static std::vector<JsonRow> rows;
  return rows;
}

// Disk-mode queue-depth sweep headline: io_stall_sec(qd=1) - io_stall_sec(qd=16).
// Positive = the deeper queue hid more IO (the expected direction).
double& IoStallGapQd16VsQd1() {
  static double gap = 0.0;
  return gap;
}

// Measured cost of the always-on RV monitors: (epoch time with monitors enabled
// - disabled) / disabled, min-of-N epochs per side. Must stay < 1%.
double& RvOverheadFraction() {
  static double fraction = 0.0;
  return fraction;
}

void WriteJson(const std::string& path, bool all_identical) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("WARN: could not open %s for writing\n", path.c_str());
    return;
  }
  const std::vector<JsonRow>& rows = JsonRows();
  std::fprintf(f, "{\n  \"bench\": \"pipeline\",\n  \"epochs\": %d,\n", kEpochs);
  std::fprintf(f, "  \"all_trajectories_identical\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(f, "  \"io_stall_gap_qd16_vs_qd1\": %.6f,\n", IoStallGapQd16VsQd1());
  std::fprintf(f, "  \"rv_overhead_fraction\": %.6f,\n", RvOverheadFraction());
  std::fprintf(f, "  \"runs\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    std::string workers = "[";
    for (size_t w = 0; w < r.run.workers_per_set.size(); ++w) {
      workers += (w == 0 ? "" : ",") + std::to_string(r.run.workers_per_set[w]);
    }
    workers += "]";
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"name\": \"%s\", \"epoch_sec\": %.6f, "
                 "\"sample_sec\": %.6f, \"io_stall_sec\": %.6f, \"par_eff\": %.4f, "
                 "\"queue_occ\": %.4f, \"workers_per_set\": %s, "
                 "\"resize_count\": %d, "
                 "\"io_read_bytes\": %llu, \"io_write_bytes\": %llu, "
                 "\"io_queue_depth_mean\": %.4f, \"io_inflight_peak\": %d, "
                 "\"comm_sec\": %.6f, \"comm_bytes\": %llu, "
                 "\"loss\": %.8f, \"mrr\": %.8f, "
                 "\"determinism_hash\": \"%016llx\", \"rv_violations\": %llu, "
                 "\"checkpoint_save_sec\": %.6f, "
                 "\"checkpoint_peak_bytes\": %llu, "
                 "\"identical\": %s}%s\n",
                 r.mode.c_str(), r.name.c_str(), r.run.epoch_seconds,
                 r.run.sample_seconds, r.run.io_stall_seconds, r.run.compute_efficiency,
                 r.run.queue_occupancy_mean, workers.c_str(), r.run.resize_count,
                 static_cast<unsigned long long>(r.run.io_read_bytes),
                 static_cast<unsigned long long>(r.run.io_write_bytes),
                 r.run.io_queue_depth_mean, r.run.io_inflight_peak,
                 r.run.comm_seconds,
                 static_cast<unsigned long long>(r.run.comm_bytes),
                 r.run.loss, r.run.mrr,
                 static_cast<unsigned long long>(r.run.determinism_hash),
                 static_cast<unsigned long long>(r.run.rv_violations),
                 r.run.checkpoint_save_seconds,
                 static_cast<unsigned long long>(r.run.checkpoint_peak_bytes),
                 r.identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

// `shared_pool` != nullptr enables the stage-3 parallel kernels AND routes the
// pipeline workers onto the same pool — the production default's contention path
// (compute helpers only enlist threads the sampling workers leave idle).
// `controller` turns the in-epoch PipelineController on (per-partition-set
// windows, mid-epoch resizes); every other row pins the worker count so the CI
// regression gate measures the same fixed configuration on every host.
PipelineRun Run(const Graph& graph, bool disk, int workers,
                ThreadPool* shared_pool = nullptr, bool controller = false,
                int io_queue_depth = 4, bool io_direct = true) {
  TrainingConfig config = BaseConfig();
  // workers == 0 is the fully synchronous baseline: no pipeline, no prefetch.
  config.pipeline.enabled = workers > 0;
  config.pipeline.workers = workers;
  config.storage.prefetch = workers > 0;
  config.pipeline.parallel_compute = shared_pool != nullptr;
  config.pipeline.compute_pool = shared_pool;
  config.pipeline.pipeline_pool = shared_pool;
  config.pipeline.adaptive_workers = controller;
  config.pipeline.adaptive_within_epoch = true;
  config.storage.io_queue_depth = io_queue_depth;
  config.storage.io_direct = io_direct;
  if (disk) {
    config.storage.use_disk = true;
    config.storage.num_physical = 8;
    config.storage.num_logical = 4;
    config.storage.buffer_capacity = 4;
    // The bench graph is ~100x smaller than the paper's, so with the default EBS
    // model partition IO rounds to nothing. Scale the disk down to keep the
    // IO:compute ratio representative — the overlap win is then a deterministic
    // modeled quantity instead of scheduler noise.
    config.storage.disk_model.bandwidth_bytes_per_sec = 25e6;
    config.storage.disk_model.iops = 500.0;
  }
  LinkPredictionTrainer trainer(&graph, config);
  PipelineRun result;
  DeterminismHash run_hash;
  for (int e = 0; e < kEpochs; ++e) {
    const EpochStats stats = trainer.TrainEpoch();
    run_hash.FoldU64(stats.determinism_hash);
    result.rv_violations += stats.rv_violations;
    result.epoch_seconds += stats.wall_seconds;
    result.sample_seconds += stats.sample_seconds;
    result.io_stall_seconds += stats.io_stall_seconds;
    result.compute_efficiency = stats.compute_parallel_efficiency;
    result.queue_occupancy_mean = stats.queue_occupancy_mean;
    result.workers_per_set = stats.workers_per_set;
    result.resize_count += stats.resize_count;
    result.io_read_bytes += stats.io_read_bytes;
    result.io_write_bytes += stats.io_write_bytes;
    result.io_queue_depth_mean = stats.io_queue_depth_mean;
    result.io_inflight_peak = std::max(result.io_inflight_peak, stats.io_inflight_peak);
    result.comm_seconds += stats.comm_seconds;
    result.comm_bytes += stats.comm_bytes;
    result.loss = stats.loss;
  }
  result.epoch_seconds /= kEpochs;
  result.sample_seconds /= kEpochs;
  result.io_stall_seconds /= kEpochs;
  result.determinism_hash = run_hash.value();
  result.mrr = trainer.EvaluateMrr(100, 300);
  const std::string ckpt_path = TempPath("bench_pipeline_ckpt");
  trainer.SaveCheckpoint(ckpt_path);
  result.checkpoint_save_seconds = trainer.last_checkpoint_stats().seconds;
  result.checkpoint_peak_bytes = trainer.last_checkpoint_stats().peak_bytes;
  std::remove(ckpt_path.c_str());
  return result;
}

// Returns true when every pipelined configuration reproduced the serial trajectory.
bool RunMode(const Graph& graph, bool disk) {
  const char* mode = disk ? "disk" : "memory";
  std::printf("\n%-18s %12s %12s %12s %8s %10s %8s\n",
              disk ? "disk" : "in-memory", "epoch_sec", "sample_sec", "io_stall_sec",
              "par_eff", "loss", "mrr");
  const PipelineRun serial = Run(graph, disk, /*workers=*/0);
  std::printf("%-18s %12.4f %12.4f %12.4f %8s %10.5f %8.4f\n", "serial",
              serial.epoch_seconds, serial.sample_seconds, serial.io_stall_seconds,
              "-", serial.loss, serial.mrr);
  JsonRows().push_back({mode, "serial", serial, true});
  bool all_identical = true;
  auto check = [&](const char* name, const PipelineRun& run) {
    // The determinism hash covers every batch of every epoch; loss/MRR are the
    // human-readable corroboration.
    const bool identical = run.determinism_hash == serial.determinism_hash &&
                           run.loss == serial.loss && run.mrr == serial.mrr;
    all_identical = all_identical && identical;
    std::printf("  %s vs serial: %+6.1f%% epoch time, trajectories %s\n", name,
                100.0 * (run.epoch_seconds - serial.epoch_seconds) /
                    serial.epoch_seconds,
                identical ? "IDENTICAL" : "DIVERGED (BUG)");
    return identical;
  };
  for (int workers : {1, 4}) {
    const PipelineRun run = Run(graph, disk, workers);
    std::printf("pipelined(w=%d)     %12.4f %12.4f %12.4f %8s %10.5f %8.4f\n", workers,
                run.epoch_seconds, run.sample_seconds, run.io_stall_seconds, "-",
                run.loss, run.mrr);
    const bool identical = check("pipelined", run);
    JsonRows().push_back(
        {mode, "pipelined_w" + std::to_string(workers), run, identical});
  }
  // Stage-3 parallel compute on top of the w=4 pipeline, with ONE 8-worker pool
  // genuinely shared by sampling workers and compute chunks (the production
  // default's contention path). Trajectories must still be bitwise-identical;
  // par_eff reports how well the compute chunks scaled on this host.
  PipelineRun fixed_split;
  {
    ThreadPool shared_pool(8);
    fixed_split = Run(graph, disk, /*workers=*/4, &shared_pool);
    std::printf("pipelined+par(t=8) %12.4f %12.4f %12.4f %8.2f %10.5f %8.4f\n",
                fixed_split.epoch_seconds, fixed_split.sample_seconds,
                fixed_split.io_stall_seconds, fixed_split.compute_efficiency,
                fixed_split.loss, fixed_split.mrr);
    const bool identical = check("pipelined+par", fixed_split);
    JsonRows().push_back({mode, "pipelined_par_t8", fixed_split, identical});
  }
  // Same shared-pool configuration with the in-epoch PipelineController on: the
  // stage-1 worker count now follows the queue-depth + efficiency signals at
  // partition-set boundaries (mid-epoch in disk mode). The trajectory must stay
  // bitwise-identical — the controller only ever moves the worker split — and the
  // epoch time should be no worse than the fixed split it replaces.
  {
    ThreadPool shared_pool(8);
    const PipelineRun run =
        Run(graph, disk, /*workers=*/4, &shared_pool, /*controller=*/true);
    std::string workers = "[";
    for (size_t w = 0; w < run.workers_per_set.size(); ++w) {
      workers += (w == 0 ? "" : " ") + std::to_string(run.workers_per_set[w]);
    }
    workers += "]";
    std::printf("controller(t=8)    %12.4f %12.4f %12.4f %8.2f %10.5f %8.4f\n",
                run.epoch_seconds, run.sample_seconds, run.io_stall_seconds,
                run.compute_efficiency, run.loss, run.mrr);
    std::printf(
        "  controller decisions: workers_per_set=%s resizes=%d queue_occ=%.2f\n",
        workers.c_str(), run.resize_count, run.queue_occupancy_mean);
    const bool identical = check("controller", run);
    std::printf("  controller vs fixed split: %+6.1f%% epoch time\n",
                100.0 * (run.epoch_seconds - fixed_split.epoch_seconds) /
                    fixed_split.epoch_seconds);
    JsonRows().push_back({mode, "controller_t8", run, identical});
  }
  // IO-engine queue-depth sweep (disk only): same w=4 pipelined configuration at
  // engine depths 1/4/16, buffered and direct. Loss/MRR must be identical in
  // every cell — the engine reorders transfers, never batches — and the deeper
  // queue should hide at least as much modeled IO as the serial-depth engine
  // (latency amortises across a saturated queue; bandwidth stays serial).
  if (disk) {
    std::printf("  io-engine sweep (w=4):\n");
    double qd1_stall = 0.0;
    double qd16_stall = 0.0;
    for (const bool direct : {false, true}) {
      for (const int qd : {1, 4, 16}) {
        const PipelineRun run = Run(graph, disk, /*workers=*/4, nullptr,
                                    /*controller=*/false, qd, direct);
        const std::string name =
            "qd" + std::to_string(qd) + (direct ? "_direct" : "_buffered");
        std::printf("  %-16s %12.4f %12s %12.4f %8s %10.5f %8.4f  (depth_mean=%.2f peak=%d)\n",
                    name.c_str(), run.epoch_seconds, "-", run.io_stall_seconds, "-",
                    run.loss, run.mrr, run.io_queue_depth_mean, run.io_inflight_peak);
        const bool identical = check(name.c_str(), run);
        JsonRows().push_back({mode, name, run, identical});
        if (direct && qd == 1) {
          qd1_stall = run.io_stall_seconds;
        }
        if (direct && qd == 16) {
          qd16_stall = run.io_stall_seconds;
        }
      }
    }
    IoStallGapQd16VsQd1() = qd1_stall - qd16_stall;
    std::printf("  io_stall gap qd16 vs qd1: %.4f s (positive = deeper queue hid more IO)\n",
                IoStallGapQd16VsQd1());
    if (IoStallGapQd16VsQd1() < 0.0) {
      std::printf("  WARN: qd=16 stalled more than qd=1 on this host\n");
    }
  }
  return all_identical;
}

// Measures the monitors' cost on the in-memory w=4 pipeline: min-of-N epoch
// wall time with RvRuntime enabled vs disabled. Min (not mean) because the
// monitor cost is a constant per observation while scheduler noise is additive.
double MeasureRvOverhead(const Graph& graph) {
  // Min-of-N with the two arms interleaved per rep: the true monitor cost is a
  // constant additive term, while scheduler noise is additive and positive, so
  // the minimum converges on the true cost — and interleaving keeps slow host
  // drift (thermal, cache pressure from neighbors) from landing entirely on
  // one arm.
  constexpr int kReps = 5;
  double best_on = 0.0;
  double best_off = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    for (const bool on : {false, true}) {
      RvRuntime::Global().set_enabled(on);
      double& best = on ? best_on : best_off;
      TrainingConfig config = BaseConfig();
      config.pipeline.enabled = true;
      config.pipeline.workers = 4;
      LinkPredictionTrainer trainer(&graph, config);
      for (int e = 0; e < 2; ++e) {
        const EpochStats stats = trainer.TrainEpoch();
        if (best == 0.0 || stats.wall_seconds < best) {
          best = stats.wall_seconds;
        }
      }
    }
  }
  RvRuntime::Global().set_enabled(true);
  return best_off > 0.0 ? (best_on - best_off) / best_off : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    }
  }
  PrintHeader("Pipeline: serial vs pipelined batch construction + partition prefetch");
  Graph graph = Fb15k237Like(0.3);
  std::printf("FB15k-237-like scale=0.3: %lld nodes, %lld edges, %d epochs\n",
              static_cast<long long>(graph.num_nodes()),
              static_cast<long long>(graph.num_edges()), kEpochs);
  bool ok = RunMode(graph, /*disk=*/false);
  ok = RunMode(graph, /*disk=*/true) && ok;
  const uint64_t rv_total = RvRuntime::Global().TotalViolations();
  if (rv_total != 0) {
    std::printf("\nFAIL: %llu RV violations across all runs (expected 0)\n",
                static_cast<unsigned long long>(rv_total));
    ok = false;
  }
  RvOverheadFraction() = MeasureRvOverhead(graph);
  std::printf("\nrv monitor overhead: %+.3f%% epoch time (target < 1%%)\n",
              100.0 * RvOverheadFraction());
  if (RvOverheadFraction() > 0.01) {
    // Warn, don't fail: on loaded CI hosts scheduler noise between the two
    // measurements can exceed the true monitor cost.
    std::printf("WARN: rv monitor overhead above 1%% on this host\n");
  }
  if (!json_path.empty()) {
    WriteJson(json_path, ok);
  }
  if (!ok) {
    std::printf("\nFAIL: a pipelined configuration diverged from the serial run\n");
  }
  return ok ? 0 : 1;
}
