// Table 7 reproduction: bulk ("GPU-style") multi-hop sampling on LiveJournal-like
// data — DENSE (sample reuse) vs a NextDoor-style per-instance tree sampler whose
// sample grows as the product of fanouts. 20 outgoing neighbors per layer, as in the
// paper. The tree sampler "OOMs" (exceeds the 16 GB device budget) at depth 5, like
// NextDoor does in the paper.
#include "bench/bench_common.h"
#include "src/util/timer.h"

using namespace mariusgnn;
using namespace mariusgnn::bench;

int main() {
  PrintHeader("Table 7: bulk multi-hop sampling vs depth (LiveJournal-like, fanout 20)");
  Graph graph = LiveJournalMini(0.5);
  NeighborIndex index(graph);
  std::vector<int64_t> targets;
  for (int64_t v = 0; v < 64; ++v) {
    targets.push_back(v * 100);
  }
  // 16 GB GPU budget / ~8 bytes per instance, matching the paper's V100 limit.
  const int64_t kOomInstances = 50'000'000;

  std::printf("%-6s %16s %16s %18s %18s\n", "Layers", "M-GNN (ms)", "Tree (ms)",
              "M-GNN instances", "Tree instances");
  for (int depth = 1; depth <= 5; ++depth) {
    std::vector<int64_t> fanouts(static_cast<size_t>(depth), 20);

    DenseSampler dense(&index, fanouts, EdgeDirection::kOutgoing, 3);
    WallTimer t1;
    DenseBatch batch = dense.Sample(targets);
    batch.FinalizeForDevice();
    const double dense_ms = t1.Millis();

    // Estimate the tree sample before materialising it (the OOM check).
    double estimate = static_cast<double>(targets.size());
    double level = static_cast<double>(targets.size());
    for (int d = 0; d < depth; ++d) {
      level *= 20.0;
      estimate += level;
    }
    if (estimate > static_cast<double>(kOomInstances)) {
      std::printf("%-6d %16.2f %16s %18lld %18s\n", depth, dense_ms, "OOM",
                  static_cast<long long>(batch.num_nodes()), "OOM");
      continue;
    }
    TreeSampler tree(&index, fanouts, EdgeDirection::kOutgoing, 3);
    WallTimer t2;
    const TreeSampleStats stats = tree.Sample(targets);
    const double tree_ms = t2.Millis();
    std::printf("%-6d %16.2f %16.2f %18lld %18lld\n", depth, dense_ms, tree_ms,
                static_cast<long long>(batch.num_nodes()),
                static_cast<long long>(stats.total_instances));
  }
  std::printf(
      "\nShape check vs paper: the tree sampler wins at 1-2 layers (lower overhead)\n"
      "but blows up multiplicatively with depth; DENSE stays nearly flat and the\n"
      "tree sampler runs out of memory at depth 5.\n");
  return 0;
}
