// Table 8 reproduction: COMET vs BETA for disk-based link prediction across model
// (DistMult, GraphSage, GAT) and dataset (FB15k-237-like, Freebase86M-like,
// WikiKG90Mv2-like) combinations, with a buffer holding 1/4 of all partitions. Also
// reports the in-memory MRR as the target each policy tries to recover.
#include "bench/bench_common.h"

using namespace mariusgnn;
using namespace mariusgnn::bench;

namespace {

TrainingConfig ModelConfig(const char* model) {
  TrainingConfig config;
  config.batch_size = 1000;
  config.num_negatives = 64;
  if (std::string(model) == "DistMult") {
    config.fanouts = {};
    config.dims = {16};
  } else if (std::string(model) == "GS") {
    config.layer_type = GnnLayerType::kGraphSage;
    config.fanouts = {20};
    config.dims = {16, 16};
  } else {
    config.layer_type = GnnLayerType::kGat;
    config.fanouts = {10};
    config.direction = EdgeDirection::kIncoming;
    config.dims = {16, 16};
  }
  return config;
}

void RunCombo(const char* model, const char* dataset, const Graph& graph, int epochs) {
  TrainingConfig mem = ModelConfig(model);
  const RunResult mem_result = RunLinkPrediction(graph, mem, epochs);

  // Buffer = 1/4 of partitions: p = 8, c = 2 (COMET: group 1, l = 8, c_l = 2).
  TrainingConfig comet = ModelConfig(model);
  comet.storage.use_disk = true;
  comet.storage.num_physical = 8;
  comet.storage.num_logical = 8;
  comet.storage.buffer_capacity = 2;
  comet.storage.policy = "comet";
  const RunResult comet_result = RunLinkPrediction(graph, comet, epochs);

  TrainingConfig beta = ModelConfig(model);
  beta.storage.use_disk = true;
  beta.storage.num_physical = 8;
  beta.storage.buffer_capacity = 2;
  beta.storage.policy = "beta";
  const RunResult beta_result = RunLinkPrediction(graph, beta, epochs);

  std::printf("%-9s %-10s %10.4f %12.4f %12.4f %14.2f %14.2f\n", model, dataset,
              mem_result.metric, comet_result.metric, beta_result.metric,
              comet_result.avg_epoch_seconds, beta_result.avg_epoch_seconds);
}

}  // namespace

int main() {
  PrintHeader("Table 8: COMET vs BETA (disk-based link prediction, buffer = 1/4)");
  std::printf("%-9s %-10s %10s %12s %12s %14s %14s\n", "Model", "Graph", "Mem MRR",
              "COMET MRR", "BETA MRR", "COMET ep(s)", "BETA ep(s)");

  Graph fb237 = Fb15k237Like(0.3);
  Graph freebase = FreebaseMini(0.05);
  Graph wiki = WikiMini(0.05);

  RunCombo("DistMult", "237", fb237, 4);
  RunCombo("DistMult", "FB", freebase, 3);
  RunCombo("DistMult", "Wiki", wiki, 3);
  RunCombo("GS", "237", fb237, 4);
  RunCombo("GS", "FB", freebase, 3);
  RunCombo("GS", "Wiki", wiki, 3);
  RunCombo("GAT", "237", fb237, 4);
  RunCombo("GAT", "FB", freebase, 3);

  std::printf(
      "\nShape check vs paper: COMET MRR >= BETA MRR on most rows and closer to the\n"
      "in-memory MRR; COMET epoch time <= BETA epoch time (balanced X_i keep the\n"
      "prefetcher busy).\n");
  return 0;
}
