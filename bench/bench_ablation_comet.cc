// Ablation of COMET's two mechanisms (Section 5.1): two-level random logical
// grouping and randomized deferred bucket assignment. Each is disabled in turn to
// measure its contribution to the Edge Permutation Bias and to disk-based MRR; BETA
// is included as the fully-greedy reference.
#include "bench/bench_common.h"

using namespace mariusgnn;
using namespace mariusgnn::bench;

namespace {

struct Variant {
  const char* label;
  bool use_beta;
  bool randomize_grouping;
  bool deferred_assignment;
};

}  // namespace

int main() {
  PrintHeader("Ablation: COMET mechanisms (p=16, c=8, l=8; GraphSage + DistMult)");
  Graph graph = Fb15k237Like(0.3);
  const int32_t p = 16, c = 8, l = 8;

  const Variant variants[] = {
      {"COMET (full)", false, true, true},
      {"- deferred assignment", false, true, false},
      {"- random grouping", false, false, true},
      {"- both (greedy order)", false, false, false},
      {"BETA (physical greedy)", true, false, false},
  };

  std::printf("%-26s %10s %10s %12s\n", "Variant", "Bias", "MRR", "Epoch (s)");
  for (const Variant& v : variants) {
    // Measure bias over fresh epochs of the plan.
    Rng rng(71);
    Partitioning partitioning(graph, p, PartitionAssignment::kRandom, rng);
    std::unique_ptr<OrderingPolicy> policy;
    if (v.use_beta) {
      policy = std::make_unique<BetaPolicy>();
    } else {
      policy = std::make_unique<CometPolicy>(l, v.randomize_grouping,
                                             v.deferred_assignment);
    }
    double bias = 0.0;
    for (int t = 0; t < 3; ++t) {
      bias += EdgePermutationBias(policy->GenerateEpoch(partitioning, c, rng),
                                  partitioning, graph);
    }
    bias /= 3.0;

    TrainingConfig tc;
    tc.layer_type = GnnLayerType::kGraphSage;
    tc.fanouts = {10};
    tc.dims = {16, 16};
    tc.batch_size = 1000;
    tc.num_negatives = 64;
    tc.storage.use_disk = true;
    tc.storage.num_physical = p;
    tc.storage.num_logical = v.use_beta ? p : l;
    tc.storage.buffer_capacity = c;
    tc.storage.policy = v.use_beta ? "beta" : "comet";
    tc.storage.comet_randomize_grouping = v.randomize_grouping;
    tc.storage.comet_deferred_assignment = v.deferred_assignment;
    const RunResult r = RunLinkPrediction(graph, tc, 4);
    std::printf("%-26s %10.3f %10.4f %12.2f\n", v.label, bias, r.metric,
                r.avg_epoch_seconds);
  }
  std::printf(
      "\nShape check: disabling the deferred assignment raises bias sharply; the\n"
      "fully greedy orders (both-off, BETA) have the highest bias and BETA the lowest\n"
      "MRR. Single-run MRR differences between intermediate variants are within\n"
      "run-to-run noise at this scale.\n");
  return 0;
}
