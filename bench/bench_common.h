// Shared helpers for the table/figure reproduction benches.
//
// Scales here are chosen so every bench finishes in at most a couple of minutes on a
// single CPU core; EXPERIMENTS.md maps each bench's output onto the paper's tables.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "src/core/mariusgnn.h"

namespace mariusgnn {
namespace bench {

// Multi-epoch training run summary.
struct RunResult {
  double avg_epoch_seconds = 0.0;
  double total_seconds = 0.0;
  double metric = 0.0;  // MRR or accuracy
  double io_seconds = 0.0;
};

inline RunResult RunLinkPrediction(const Graph& graph, TrainingConfig config,
                                   int epochs, int64_t eval_negatives = 200,
                                   int64_t eval_edges = 500) {
  LinkPredictionTrainer trainer(&graph, config);
  RunResult result;
  for (int e = 0; e < epochs; ++e) {
    const EpochStats stats = trainer.TrainEpoch();
    result.total_seconds += stats.wall_seconds;
    result.io_seconds += stats.io_seconds;
  }
  result.avg_epoch_seconds = result.total_seconds / epochs;
  result.metric = trainer.EvaluateMrr(eval_negatives, eval_edges);
  return result;
}

inline RunResult RunNodeClassification(const Graph& graph, TrainingConfig config,
                                       int epochs) {
  NodeClassificationTrainer trainer(&graph, config);
  RunResult result;
  for (int e = 0; e < epochs; ++e) {
    const EpochStats stats = trainer.TrainEpoch();
    result.total_seconds += stats.wall_seconds;
    result.io_seconds += stats.io_seconds;
  }
  result.avg_epoch_seconds = result.total_seconds / epochs;
  result.metric = trainer.EvaluateTestAccuracy();
  return result;
}

// $/epoch using the paper's AWS P3 prices (Table 2) applied to measured epoch time.
inline double EpochCost(const std::string& instance, double epoch_seconds) {
  return CostModel().CostFor(instance, epoch_seconds);
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace bench
}  // namespace mariusgnn

#endif  // BENCH_BENCH_COMMON_H_
