// Table 5 reproduction: GraphSage vs GAT link prediction on Freebase86M-like data.
// The paper's headline: baselines show *identical* GS and GAT epoch times because
// they are bottlenecked by CPU-side mini-batch construction, while MariusGNN's times
// scale with model cost (its sampling is no longer the bottleneck).
#include "bench/bench_common.h"

using namespace mariusgnn;
using namespace mariusgnn::bench;

namespace {

RunResult Run(const Graph& graph, GnnLayerType type, SamplerKind sampler, bool disk,
              int epochs) {
  TrainingConfig config;
  config.layer_type = type;
  config.fanouts = {type == GnnLayerType::kGat ? 10 : 20};
  config.direction = type == GnnLayerType::kGat ? EdgeDirection::kIncoming
                                                : EdgeDirection::kBoth;
  config.dims = {64, 64};
  config.batch_size = 1000;
  config.num_negatives = 20;  // lighter decoder so encoder cost is visible
  config.sampler = sampler;
  if (disk) {
    config.storage.use_disk = true;
    config.storage.num_physical = 8;
    config.storage.num_logical = 4;
    config.storage.buffer_capacity = 4;
  }
  return RunLinkPrediction(graph, config, epochs);
}

}  // namespace

int main() {
  PrintHeader("Table 5: GraphSage vs GAT (link prediction, Freebase86M-like)");
  Graph graph = FreebaseMini(0.06);
  const int epochs = 2;

  struct Row {
    const char* system;
    RunResult gs;
    RunResult gat;
    const char* instance;
  };
  std::vector<Row> rows;
  rows.push_back({"M-GNN_Mem",
                  Run(graph, GnnLayerType::kGraphSage, SamplerKind::kDense, false, epochs),
                  Run(graph, GnnLayerType::kGat, SamplerKind::kDense, false, epochs),
                  "p3.8xlarge"});
  rows.push_back({"M-GNN_Disk",
                  Run(graph, GnnLayerType::kGraphSage, SamplerKind::kDense, true, epochs),
                  Run(graph, GnnLayerType::kGat, SamplerKind::kDense, true, epochs),
                  "p3.2xlarge"});
  rows.push_back({"Baseline-LW",
                  Run(graph, GnnLayerType::kGraphSage, SamplerKind::kLayerwise, false,
                      epochs),
                  Run(graph, GnnLayerType::kGat, SamplerKind::kLayerwise, false, epochs),
                  "p3.8xlarge"});

  std::printf("%-12s %14s %14s %10s %10s %12s %12s\n", "System", "GS epoch(s)",
              "GAT epoch(s)", "GS MRR", "GAT MRR", "GS $/ep", "GAT $/ep");
  for (const Row& row : rows) {
    std::printf("%-12s %14.2f %14.2f %10.4f %10.4f %12.6f %12.6f\n", row.system,
                row.gs.avg_epoch_seconds, row.gat.avg_epoch_seconds, row.gs.metric,
                row.gat.metric, EpochCost(row.instance, row.gs.avg_epoch_seconds),
                EpochCost(row.instance, row.gat.avg_epoch_seconds));
  }
  std::printf(
      "\nShape check vs paper: MariusGNN's epoch time scales with model cost (GAT >\n"
      "GS) and disk training mutes the gap (smaller in-memory subgraphs). Deviation:\n"
      "the paper's baselines show *flat* GS==GAT times because their CPU sampling\n"
      "dominates; our baseline shares this repo's optimized sampler, so it is\n"
      "compute-bound and scales with the model like MariusGNN does (the\n"
      "sampling-bound regime is demonstrated at depth>=3 in Table 6 instead).\n");
  return 0;
}
