// Table 6 reproduction: per-mini-batch CPU sampling time, device compute time
// (forward+backward), and #nodes/#edges sampled, for GraphSage GNNs of depth 1-5,
// comparing DENSE against DGL/PyG-style layer-wise resampling. Fanout: 10 incoming +
// 10 outgoing per node per layer, as in the paper.
#include <vector>

#include "bench/bench_common.h"
#include "src/util/timer.h"

using namespace mariusgnn;
using namespace mariusgnn::bench;

namespace {

constexpr int kRounds = 3;
constexpr int64_t kBatchTargets = 256;
constexpr int64_t kDim = 32;

struct Measurement {
  double sample_ms = 0.0;
  double compute_ms = 0.0;
  int64_t nodes = 0;
  int64_t edges = 0;
  bool oom = false;
};

Measurement MeasureDense(const Graph& /*graph*/, const NeighborIndex& index, int depth,
                         const std::vector<int64_t>& targets) {
  std::vector<int64_t> fanouts(static_cast<size_t>(depth), 10);
  DenseSampler sampler(&index, fanouts, EdgeDirection::kBoth, 3);
  Rng rng(7);
  std::vector<int64_t> dims(static_cast<size_t>(depth) + 1, kDim);
  GnnEncoder encoder(GnnLayerType::kGraphSage, dims, Activation::kRelu, rng);

  Measurement m;
  for (int r = 0; r < kRounds; ++r) {
    WallTimer t;
    DenseBatch batch = sampler.Sample(targets);
    batch.FinalizeForDevice();
    m.sample_ms += t.Millis();
    m.nodes = batch.num_nodes();
    m.edges = batch.num_sampled_edges();

    Tensor h0 = Tensor::Normal(batch.num_nodes(), kDim, 0.5f, rng);
    Tensor grad = Tensor::Full(static_cast<int64_t>(targets.size()), kDim, 1.0f);
    WallTimer t2;
    encoder.Forward(batch, h0);
    encoder.Backward(grad);
    m.compute_ms += t2.Millis();
  }
  m.sample_ms /= kRounds;
  m.compute_ms /= kRounds;
  return m;
}

Measurement MeasureLayerwise(const Graph& /*graph*/, const NeighborIndex& index, int depth,
                             const std::vector<int64_t>& targets) {
  std::vector<int64_t> fanouts(static_cast<size_t>(depth), 10);
  LayerwiseSampler sampler(&index, fanouts, EdgeDirection::kBoth, 3);
  Rng rng(7);
  std::vector<int64_t> dims(static_cast<size_t>(depth) + 1, kDim);
  BlockEncoder encoder(GnnLayerType::kGraphSage, dims, Activation::kRelu, rng);

  Measurement m;
  for (int r = 0; r < kRounds; ++r) {
    WallTimer t;
    LayerwiseSample sample = sampler.Sample(targets);
    m.sample_ms += t.Millis();
    m.nodes = sample.NumInputNodes();
    m.edges = sample.TotalSampledEdges();

    Tensor h0 = Tensor::Normal(sample.NumInputNodes(), kDim, 0.5f, rng);
    Tensor grad = Tensor::Full(static_cast<int64_t>(targets.size()), kDim, 1.0f);
    WallTimer t2;
    encoder.Forward(sample, h0);
    encoder.Backward(grad);
    m.compute_ms += t2.Millis();
  }
  m.sample_ms /= kRounds;
  m.compute_ms /= kRounds;
  return m;
}

}  // namespace

int main() {
  PrintHeader("Table 6: sampling + compute per mini batch vs GNN depth (GraphSage)");
  Graph graph = PapersMini(2.0, /*seed=*/21);
  NeighborIndex index(graph);
  std::vector<int64_t> targets;
  for (int64_t v = 0; v < kBatchTargets; ++v) {
    targets.push_back(v * (graph.num_nodes() / kBatchTargets));
  }

  std::printf("%-6s | %-28s | %-28s | %-28s\n", "", "CPU sampling (ms)",
              "Compute fw+bw (ms)", "Nodes / edges per batch");
  std::printf("%-6s | %13s %13s | %13s %13s | %28s\n", "Layers", "M-GNN", "Layerwise",
              "M-GNN", "Layerwise", "M-GNN vs Layerwise");
  for (int depth = 1; depth <= 5; ++depth) {
    const Measurement dense = MeasureDense(graph, index, depth, targets);
    const Measurement layer = MeasureLayerwise(graph, index, depth, targets);
    std::printf("%-6d | %13.2f %13.2f | %13.2f %13.2f | %6lldk/%-6lldk vs %6lldk/%-6lldk\n",
                depth, dense.sample_ms, layer.sample_ms, dense.compute_ms,
                layer.compute_ms, static_cast<long long>(dense.nodes / 1000),
                static_cast<long long>(dense.edges / 1000),
                static_cast<long long>(layer.nodes / 1000),
                static_cast<long long>(layer.edges / 1000));
  }
  std::printf(
      "\nShape check vs paper: the DENSE advantage in sampling time and sampled\n"
      "nodes/edges widens with depth (paper: 14x sampling, 8x compute at 4 layers).\n");
  return 0;
}
