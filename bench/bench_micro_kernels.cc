// Micro-benchmarks (google-benchmark) for the kernels behind the paper's compute
// claims: contiguous segment reductions (the DENSE dense-kernel path) vs per-edge
// scatter aggregation (the sparse baseline path), gather, one-hop sampling, and
// end-to-end DENSE construction.
#include <benchmark/benchmark.h>

#include "src/data/datasets.h"
#include "src/graph/neighbor_index.h"
#include "src/sampler/dense.h"
#include "src/tensor/ops.h"

namespace mariusgnn {
namespace {

constexpr int64_t kDim = 64;

// Contiguous segment sum: the aggregation DENSE enables (Algorithm 3).
void BM_SegmentSumAggregation(benchmark::State& state) {
  const int64_t num_segments = state.range(0);
  const int64_t per_segment = 10;
  Rng rng(1);
  Tensor src = Tensor::Normal(num_segments * per_segment, kDim, 1.0f, rng);
  std::vector<int64_t> offsets;
  for (int64_t s = 0; s <= num_segments; ++s) {
    offsets.push_back(s * per_segment);
  }
  for (auto _ : state) {
    Tensor out = SegmentSum(src, offsets);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * num_segments * per_segment);
}
BENCHMARK(BM_SegmentSumAggregation)->Arg(1000)->Arg(10000);

// Per-edge scatter-add into shuffled destinations: the sparse-kernel analogue.
void BM_ScatterAggregation(benchmark::State& state) {
  const int64_t num_segments = state.range(0);
  const int64_t per_segment = 10;
  Rng rng(1);
  Tensor src = Tensor::Normal(num_segments * per_segment, kDim, 1.0f, rng);
  std::vector<int64_t> dst(static_cast<size_t>(num_segments * per_segment));
  for (size_t i = 0; i < dst.size(); ++i) {
    dst[i] = static_cast<int64_t>(i) % num_segments;
  }
  rng.Shuffle(dst);
  for (auto _ : state) {
    Tensor out(num_segments, kDim);
    ScatterAddRows(out, dst, src);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * num_segments * per_segment);
}
BENCHMARK(BM_ScatterAggregation)->Arg(1000)->Arg(10000);

void BM_IndexSelect(benchmark::State& state) {
  Rng rng(2);
  Tensor table = Tensor::Normal(100000, kDim, 1.0f, rng);
  std::vector<int64_t> idx(static_cast<size_t>(state.range(0)));
  for (auto& v : idx) {
    v = static_cast<int64_t>(rng.UniformInt(100000));
  }
  for (auto _ : state) {
    Tensor out = IndexSelect(table, idx);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IndexSelect)->Arg(10000);

void BM_OneHopSample(benchmark::State& state) {
  Graph g = LiveJournalMini(0.25);
  NeighborIndex index(g);
  Rng rng(3);
  std::vector<Neighbor> out;
  int64_t node = 0;
  for (auto _ : state) {
    out.clear();
    index.SampleOneHop(node, 10, EdgeDirection::kBoth, rng, out);
    node = (node + 37) % g.num_nodes();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OneHopSample);

void BM_DenseSample(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Graph g = LiveJournalMini(0.25);
  NeighborIndex index(g);
  std::vector<int64_t> fanouts(static_cast<size_t>(depth), 10);
  DenseSampler sampler(&index, fanouts, EdgeDirection::kBoth, 4);
  std::vector<int64_t> targets;
  for (int64_t v = 0; v < 128; ++v) {
    targets.push_back(v * 50);
  }
  for (auto _ : state) {
    DenseBatch b = sampler.Sample(targets);
    benchmark::DoNotOptimize(b.node_ids.data());
  }
}
BENCHMARK(BM_DenseSample)->Arg(1)->Arg(2)->Arg(3);

void BM_NeighborIndexBuild(benchmark::State& state) {
  Graph g = LiveJournalMini(0.25);
  for (auto _ : state) {
    NeighborIndex index(g);
    benchmark::DoNotOptimize(index.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_NeighborIndexBuild);

}  // namespace
}  // namespace mariusgnn

BENCHMARK_MAIN();
