// Micro-benchmarks (google-benchmark) for the kernels behind the paper's compute
// claims: contiguous segment reductions (the DENSE dense-kernel path) vs per-edge
// scatter aggregation (the sparse baseline path), gather, one-hop sampling, and
// end-to-end DENSE construction.
//
// After the google-benchmark suites, a custom stage-3 section times every parallel
// compute kernel (matmuls, neighbor aggregation, ranking loss, sharded Adagrad)
// serially and on an 8-worker pool, verifies the results are BITWISE identical,
// and prints per-kernel plus aggregate speedups. The exit code gates only on
// determinism — speedup depends on host core count (CI boxes may have 2).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "src/data/datasets.h"
#include "src/graph/neighbor_index.h"
#include "src/nn/decoder.h"
#include "src/nn/graphsage.h"
#include "src/sampler/dense.h"
#include "src/storage/embedding_store.h"
#include "src/tensor/ops.h"
#include "src/util/compute.h"
#include "src/util/timer.h"

namespace mariusgnn {
namespace {

constexpr int64_t kDim = 64;

// Contiguous segment sum: the aggregation DENSE enables (Algorithm 3).
void BM_SegmentSumAggregation(benchmark::State& state) {
  const int64_t num_segments = state.range(0);
  const int64_t per_segment = 10;
  Rng rng(1);
  Tensor src = Tensor::Normal(num_segments * per_segment, kDim, 1.0f, rng);
  std::vector<int64_t> offsets;
  for (int64_t s = 0; s <= num_segments; ++s) {
    offsets.push_back(s * per_segment);
  }
  for (auto _ : state) {
    Tensor out = SegmentSum(src, offsets);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * num_segments * per_segment);
}
BENCHMARK(BM_SegmentSumAggregation)->Arg(1000)->Arg(10000);

// Per-edge scatter-add into shuffled destinations: the sparse-kernel analogue.
void BM_ScatterAggregation(benchmark::State& state) {
  const int64_t num_segments = state.range(0);
  const int64_t per_segment = 10;
  Rng rng(1);
  Tensor src = Tensor::Normal(num_segments * per_segment, kDim, 1.0f, rng);
  std::vector<int64_t> dst(static_cast<size_t>(num_segments * per_segment));
  for (size_t i = 0; i < dst.size(); ++i) {
    dst[i] = static_cast<int64_t>(i) % num_segments;
  }
  rng.Shuffle(dst);
  for (auto _ : state) {
    Tensor out(num_segments, kDim);
    ScatterAddRows(out, dst, src);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * num_segments * per_segment);
}
BENCHMARK(BM_ScatterAggregation)->Arg(1000)->Arg(10000);

void BM_IndexSelect(benchmark::State& state) {
  Rng rng(2);
  Tensor table = Tensor::Normal(100000, kDim, 1.0f, rng);
  std::vector<int64_t> idx(static_cast<size_t>(state.range(0)));
  for (auto& v : idx) {
    v = static_cast<int64_t>(rng.UniformInt(100000));
  }
  for (auto _ : state) {
    Tensor out = IndexSelect(table, idx);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IndexSelect)->Arg(10000);

void BM_OneHopSample(benchmark::State& state) {
  Graph g = LiveJournalMini(0.25);
  NeighborIndex index(g);
  Rng rng(3);
  std::vector<Neighbor> out;
  int64_t node = 0;
  for (auto _ : state) {
    out.clear();
    index.SampleOneHop(node, 10, EdgeDirection::kBoth, rng, out);
    node = (node + 37) % g.num_nodes();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OneHopSample);

void BM_DenseSample(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Graph g = LiveJournalMini(0.25);
  NeighborIndex index(g);
  std::vector<int64_t> fanouts(static_cast<size_t>(depth), 10);
  DenseSampler sampler(&index, fanouts, EdgeDirection::kBoth, 4);
  std::vector<int64_t> targets;
  for (int64_t v = 0; v < 128; ++v) {
    targets.push_back(v * 50);
  }
  for (auto _ : state) {
    DenseBatch b = sampler.Sample(targets);
    benchmark::DoNotOptimize(b.node_ids.data());
  }
}
BENCHMARK(BM_DenseSample)->Arg(1)->Arg(2)->Arg(3);

void BM_NeighborIndexBuild(benchmark::State& state) {
  Graph g = LiveJournalMini(0.25);
  for (auto _ : state) {
    NeighborIndex index(g);
    benchmark::DoNotOptimize(index.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_NeighborIndexBuild);

// ---------------------------------------------------------------------------
// Stage-3 parallel-kernel section (custom, after the google-benchmark suites).
// ---------------------------------------------------------------------------

struct Stage3Kernel {
  std::string name;
  // Runs the kernel once under `ctx` and returns a tensor capturing its full
  // result (output + gradients flattened), used for the bitwise check.
  std::function<Tensor(const ComputeContext*)> run;
};

// Representative in-memory-config shapes: ~4k-row batches at dim 64.
std::vector<Stage3Kernel> MakeStage3Kernels() {
  std::vector<Stage3Kernel> kernels;
  Rng rng(11);
  const int64_t rows = 4096, dim = 64;

  auto a = std::make_shared<Tensor>(Tensor::Normal(rows, dim, 1.0f, rng));
  auto w = std::make_shared<Tensor>(Tensor::Normal(dim, dim, 0.5f, rng));
  auto g = std::make_shared<Tensor>(Tensor::Normal(rows, dim, 0.5f, rng));
  kernels.push_back({"matmul_fwd", [a, w](const ComputeContext* ctx) {
                       return Matmul(*a, *w, ctx);
                     }});
  kernels.push_back({"matmul_dW (A^T g)", [a, g](const ComputeContext* ctx) {
                       return MatmulTransA(*a, *g, ctx);
                     }});
  kernels.push_back({"matmul_dX (g W^T)", [g, w](const ComputeContext* ctx) {
                       return MatmulTransB(*g, *w, ctx);
                     }});

  const int64_t segs = 4096, per_seg = 10;
  auto seg_src = std::make_shared<Tensor>(Tensor::Normal(segs * per_seg, dim, 1.0f, rng));
  auto offsets = std::make_shared<std::vector<int64_t>>();
  for (int64_t s = 0; s <= segs; ++s) {
    offsets->push_back(s * per_seg);
  }
  auto seg_grad = std::make_shared<Tensor>(Tensor::Normal(segs, dim, 1.0f, rng));
  kernels.push_back({"neighbor_agg_fwd", [seg_src, offsets](const ComputeContext* ctx) {
                       return SegmentMean(*seg_src, *offsets, ctx);
                     }});
  kernels.push_back({"neighbor_agg_bwd", [seg_grad, offsets](const ComputeContext* ctx) {
                       return SegmentMeanBackward(*seg_grad, *offsets, ctx);
                     }});

  // Ranking loss: 2048 positive edges vs 128 shared negatives at dim 64.
  {
    Rng drng(13);
    auto reprs = std::make_shared<Tensor>(Tensor::Normal(3000, dim, 0.5f, drng));
    auto src = std::make_shared<std::vector<int64_t>>(2048);
    auto dst = std::make_shared<std::vector<int64_t>>(2048);
    auto rels = std::make_shared<std::vector<int32_t>>(2048, 0);
    auto negs = std::make_shared<std::vector<int64_t>>(128);
    for (auto& v : *src) v = static_cast<int64_t>(drng.UniformInt(3000));
    for (auto& v : *dst) v = static_cast<int64_t>(drng.UniformInt(3000));
    for (auto& v : *negs) v = static_cast<int64_t>(drng.UniformInt(3000));
    kernels.push_back(
        {"ranking_loss+grad", [reprs, src, dst, rels, negs](const ComputeContext* ctx) {
           Rng wrng(17);
           DistMultDecoder decoder(1, 64, wrng);
           decoder.set_compute(ctx);
           Tensor d_reprs(reprs->rows(), reprs->cols());
           const float loss =
               decoder.LossAndGrad(*reprs, *src, *dst, *rels, *negs, &d_reprs);
           d_reprs.data()[0] += loss;  // fold the scalar into the bitwise check
           return d_reprs;
         }});
  }

  // Sharded sparse Adagrad over 4096 distinct rows.
  {
    auto grads = std::make_shared<Tensor>(Tensor::Normal(rows, dim, 0.3f, rng));
    kernels.push_back({"sparse_adagrad", [grads, rows, dim](const ComputeContext* ctx) {
                         Rng srng(19);
                         InMemoryEmbeddingStore store(rows, dim, 0.5f, srng);
                         store.set_compute(ctx);
                         std::vector<int64_t> nodes(static_cast<size_t>(rows));
                         std::iota(nodes.begin(), nodes.end(), 0);
                         store.ApplyGradients(nodes, *grads, 0.1f);
                         Tensor out;
                         store.Gather(nodes, &out);
                         return out;
                       }});
  }

  // Scatter-reduce with heavy duplicate indices: 40960 gradient rows into 4096
  // destinations — the write pattern of every GNN layer's input-gradient collect.
  {
    Rng srng(23);
    const int64_t scatter_n = 40960;
    auto idx = std::make_shared<std::vector<int64_t>>(static_cast<size_t>(scatter_n));
    for (auto& v : *idx) v = static_cast<int64_t>(srng.UniformInt(static_cast<int>(rows)));
    auto ssrc = std::make_shared<Tensor>(Tensor::Normal(scatter_n, dim, 0.5f, srng));
    kernels.push_back({"scatter_add_rows", [idx, ssrc, rows, dim](const ComputeContext* ctx) {
                         Tensor dst(rows, dim);
                         ScatterAddRows(dst, *idx, *ssrc, ctx);
                         return dst;
                       }});
  }

  // Full GraphSage backward: MatMulTransA/TransB + segment backward + the two
  // ScatterAddRows collects — the backward pass the ISSUE names as scatter-bound.
  {
    Rng grng(29);
    const int64_t num_out = 4096, per_nbr = 10;
    const int64_t num_in = num_out + num_out * per_nbr;
    auto h = std::make_shared<Tensor>(Tensor::Normal(num_in, dim, 0.5f, grng));
    auto self_rows = std::make_shared<std::vector<int64_t>>(static_cast<size_t>(num_out));
    std::iota(self_rows->begin(), self_rows->end(), 0);
    auto nbr_rows =
        std::make_shared<std::vector<int64_t>>(static_cast<size_t>(num_out * per_nbr));
    for (auto& v : *nbr_rows) {
      v = static_cast<int64_t>(grng.UniformInt(static_cast<int>(num_in)));
    }
    auto offsets = std::make_shared<std::vector<int64_t>>();
    for (int64_t s = 0; s <= num_out; ++s) {
      offsets->push_back(s * per_nbr);
    }
    auto grad = std::make_shared<Tensor>(Tensor::Normal(num_out, dim, 0.5f, grng));
    kernels.push_back(
        {"graphsage_backward",
         [h, self_rows, nbr_rows, offsets, grad, dim](const ComputeContext* ctx) {
           Rng wrng(31);
           GraphSageLayer layer(dim, dim, Activation::kRelu, wrng);
           LayerView view;
           view.h = h.get();
           view.compute = ctx;
           view.self_rows = *self_rows;
           view.nbr_rows = *nbr_rows;
           view.seg_offsets = *offsets;
           std::unique_ptr<LayerContext> layer_ctx;
           layer.Forward(view, &layer_ctx);
           return layer.Backward(*layer_ctx, *grad);
         }});
  }
  return kernels;
}

double BestOfSeconds(const std::function<void()>& fn, int reps) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.Seconds());
  }
  return best;
}

struct Stage3Result {
  std::string name;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  bool identical = false;
};

// Machine-readable mirror of the stage-3 table for the CI bench-regression gate.
// `results` holds real kernels only; the aggregate goes in a top-level "total"
// object so consumers iterating kernels[] never see a pseudo-kernel.
void WriteStage3Json(const std::string& path, const std::vector<Stage3Result>& results,
                     const Stage3Result& total, int workers, bool all_identical) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("WARN: could not open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_kernels\",\n  \"workers\": %d,\n", workers);
  std::fprintf(f, "  \"hardware_threads\": %u,\n", std::thread::hardware_concurrency());
  std::fprintf(f, "  \"all_bitwise_identical\": %s,\n", all_identical ? "true" : "false");
  std::fprintf(f,
               "  \"total\": {\"serial_ms\": %.6f, \"parallel_ms\": %.6f, "
               "\"speedup\": %.4f},\n",
               total.serial_ms, total.parallel_ms,
               total.parallel_ms > 0.0 ? total.serial_ms / total.parallel_ms : 0.0);
  std::fprintf(f, "  \"kernels\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Stage3Result& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"serial_ms\": %.6f, \"parallel_ms\": %.6f, "
                 "\"speedup\": %.4f, \"bitwise_identical\": %s}%s\n",
                 r.name.c_str(), r.serial_ms, r.parallel_ms,
                 r.parallel_ms > 0.0 ? r.serial_ms / r.parallel_ms : 0.0,
                 r.identical ? "true" : "false", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

// Times each stage-3 kernel serial vs 8-worker pool, checks bitwise equality, and
// prints per-kernel + aggregate speedup. Returns false on any determinism break.
bool RunStage3Section(const std::string& json_path) {
  constexpr int kWorkers = 8;
  constexpr int kReps = 5;
  std::printf("\n=== stage-3 parallel kernels: serial vs %d-worker pool ===\n", kWorkers);
  std::printf("(speedup is host-dependent — this box has %u hardware threads)\n",
              std::thread::hardware_concurrency());
  std::printf("%-20s %12s %12s %9s  %s\n", "kernel", "serial_ms", "parallel_ms",
              "speedup", "bitwise");

  ThreadPool pool(kWorkers);
  ComputeContext ctx;
  ctx.pool = &pool;

  bool all_identical = true;
  double serial_total = 0.0, parallel_total = 0.0;
  std::vector<Stage3Result> results;
  for (const Stage3Kernel& kernel : MakeStage3Kernels()) {
    const Tensor serial_out = kernel.run(nullptr);
    const Tensor parallel_out = kernel.run(&ctx);
    const bool identical =
        serial_out.rows() == parallel_out.rows() &&
        serial_out.cols() == parallel_out.cols() &&
        std::memcmp(serial_out.data(), parallel_out.data(),
                    static_cast<size_t>(serial_out.size()) * sizeof(float)) == 0;
    all_identical = all_identical && identical;

    const double serial_s = BestOfSeconds([&] { kernel.run(nullptr); }, kReps);
    const double parallel_s = BestOfSeconds([&] { kernel.run(&ctx); }, kReps);
    serial_total += serial_s;
    parallel_total += parallel_s;
    std::printf("%-20s %12.3f %12.3f %8.2fx  %s\n", kernel.name.c_str(), serial_s * 1e3,
                parallel_s * 1e3, serial_s / parallel_s,
                identical ? "IDENTICAL" : "DIVERGED (BUG)");
    results.push_back({kernel.name, serial_s * 1e3, parallel_s * 1e3, identical});
  }
  std::printf("%-20s %12.3f %12.3f %8.2fx  aggregate\n", "TOTAL", serial_total * 1e3,
              parallel_total * 1e3, serial_total / parallel_total);
  if (!json_path.empty()) {
    const Stage3Result total{"TOTAL", serial_total * 1e3, parallel_total * 1e3,
                             all_identical};
    WriteStage3Json(json_path, results, total, kWorkers, all_identical);
  }
  if (!all_identical) {
    std::printf("FAIL: a parallel kernel diverged from the serial bits\n");
  }
  return all_identical;
}

}  // namespace
}  // namespace mariusgnn

int main(int argc, char** argv) {
  // Strip our own --json=PATH flag before google-benchmark sees the arguments.
  std::string json_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Exit code gates on kernel determinism only (speedups are host-dependent).
  return mariusgnn::RunStage3Section(json_path) ? 0 : 1;
}
