// Table 4 reproduction: link prediction on Freebase86M-like and WikiKG90Mv2-like
// graphs with a 1-layer GraphSage GNN + DistMult decoder. Rows: MariusGNN in-memory,
// MariusGNN disk-based (COMET), and DGL/PyG-style baselines. The DGL-like row uses 5x
// fewer negatives, as the paper had to for DGL.
#include "bench/bench_common.h"

using namespace mariusgnn;
using namespace mariusgnn::bench;

namespace {

void RunDataset(const char* name, const Graph& graph, int epochs) {
  TrainingConfig base;
  base.layer_type = GnnLayerType::kGraphSage;
  base.fanouts = {20};
  base.dims = {32, 32};
  base.decoder = "distmult";
  base.batch_size = 1000;
  base.num_negatives = 100;

  struct Row {
    const char* system;
    RunResult result;
    const char* instance;
  };
  std::vector<Row> rows;

  TrainingConfig mem = base;
  rows.push_back({"M-GNN_Mem", RunLinkPrediction(graph, mem, epochs), "p3.8xlarge"});

  TrainingConfig disk = base;
  disk.storage.use_disk = true;
  disk.storage.num_physical = 8;
  disk.storage.num_logical = 4;
  disk.storage.buffer_capacity = 4;
  disk.storage.policy = "comet";
  rows.push_back({"M-GNN_Disk", RunLinkPrediction(graph, disk, epochs), "p3.2xlarge"});

  TrainingConfig dgl = base;
  dgl.sampler = SamplerKind::kLayerwise;
  dgl.num_negatives = base.num_negatives / 5;
  rows.push_back({"DGL-like", RunLinkPrediction(graph, dgl, epochs), "p3.8xlarge"});

  TrainingConfig pyg = base;
  pyg.sampler = SamplerKind::kLayerwise;
  pyg.seed = 13;
  rows.push_back({"PyG-like", RunLinkPrediction(graph, pyg, epochs), "p3.8xlarge"});

  std::printf("\n-- %s --\n", name);
  std::printf("%-12s %12s %10s %14s %12s\n", "System", "Epoch (s)", "MRR", "$/epoch",
              "IO (s)");
  for (const Row& row : rows) {
    std::printf("%-12s %12.2f %10.4f %14.6f %12.3f\n", row.system,
                row.result.avg_epoch_seconds, row.result.metric,
                EpochCost(row.instance, row.result.avg_epoch_seconds),
                row.result.io_seconds);
  }
}

}  // namespace

int main() {
  PrintHeader("Table 4: link prediction (1-layer GraphSage + DistMult)");
  RunDataset("Freebase86M-like", FreebaseMini(0.08), 6);
  RunDataset("WikiKG90Mv2-like", WikiMini(0.08), 6);
  std::printf(
      "\nShape check vs paper: M-GNN rows reach the best MRR; DGL-like trades MRR for\n"
      "time via 5x fewer negatives; M-GNN_Disk is by far the cheapest $/epoch and its\n"
      "Wiki MRR shows the same disk-vs-memory gap the paper reports. Deviation: the\n"
      "baselines here share this repo's C++ sampler, so the paper's 6x baseline\n"
      "slowdown (Python dataloader overhead + per-layer resampling at scale) does not\n"
      "appear at 1 GNN layer; see Table 6 for the sampling-algorithm gap at depth.\n");
  return 0;
}
