#include "src/sampler/layerwise.h"

#include <unordered_map>

#include "src/util/check.h"

namespace mariusgnn {

int64_t LayerwiseSample::TotalSampledEdges() const {
  int64_t total = 0;
  for (const LayerBlock& b : blocks) {
    total += b.num_edges();
  }
  return total;
}

LayerwiseSampler::LayerwiseSampler(const NeighborIndex* index, std::vector<int64_t> fanouts,
                                   EdgeDirection dir, uint64_t seed)
    : index_(index), fanouts_(std::move(fanouts)), dir_(dir), rng_(seed) {
  MG_CHECK(!fanouts_.empty());
}

LayerwiseSample LayerwiseSampler::Sample(const std::vector<int64_t>& target_nodes) {
  return SampleSeeded(target_nodes, rng_.Next());
}

LayerwiseSample LayerwiseSampler::SampleSeeded(const std::vector<int64_t>& target_nodes,
                                               uint64_t batch_seed,
                                               const NeighborIndex* index) const {
  MG_CHECK(index != nullptr);
  LayerwiseSample sample;
  sample.blocks.resize(fanouts_.size());

  std::vector<int64_t> frontier = target_nodes;
  std::vector<Neighbor> scratch;
  // Hop h = 0 is the layer closest to the targets (the k-th GNN layer); blocks are
  // stored innermost-first so we fill from the back.
  for (size_t h = 0; h < fanouts_.size(); ++h) {
    LayerBlock& block = sample.blocks[fanouts_.size() - 1 - h];
    block.dst_nodes = frontier;

    // src_nodes = dst_nodes ++ newly sampled neighbors (deduped within this layer).
    std::unordered_map<int64_t, int64_t> src_pos;
    src_pos.reserve(frontier.size() * 4);
    block.src_nodes = frontier;
    for (size_t i = 0; i < frontier.size(); ++i) {
      src_pos.emplace(frontier[i], static_cast<int64_t>(i));
    }

    for (size_t d = 0; d < frontier.size(); ++d) {
      scratch.clear();
      // Per-(hop, position) RNG stream derived from the batch seed keeps the sample a
      // pure function of the seed (matching DenseSampler's scheme).
      Rng node_rng(MixSeed(batch_seed, static_cast<uint64_t>(h) * 0x100000001ULL +
                                           static_cast<uint64_t>(d)));
      // Fresh sample per layer: this is the cross-layer resampling DENSE avoids.
      index->SampleOneHop(frontier[d], fanouts_[h], dir_, node_rng, scratch);
      for (const Neighbor& nb : scratch) {
        auto [it, inserted] =
            src_pos.emplace(nb.node, static_cast<int64_t>(block.src_nodes.size()));
        if (inserted) {
          block.src_nodes.push_back(nb.node);
        }
        block.edge_dst.push_back(static_cast<int64_t>(d));
        block.edge_src.push_back(it->second);
        block.edge_rel.push_back(nb.rel);
      }
    }
    frontier = block.src_nodes;
  }
  return sample;
}

TreeSampler::TreeSampler(const NeighborIndex* index, std::vector<int64_t> fanouts,
                         EdgeDirection dir, uint64_t seed)
    : index_(index), fanouts_(std::move(fanouts)), dir_(dir), rng_(seed) {
  MG_CHECK(!fanouts_.empty());
}

TreeSampleStats TreeSampler::Sample(const std::vector<int64_t>& target_nodes) {
  MG_CHECK(index_ != nullptr);
  TreeSampleStats stats;
  std::vector<int64_t> level = target_nodes;
  stats.total_instances = static_cast<int64_t>(level.size());
  std::vector<Neighbor> scratch;
  for (int64_t fanout : fanouts_) {
    std::vector<int64_t> next;
    next.reserve(level.size() * static_cast<size_t>(fanout));
    for (int64_t v : level) {
      scratch.clear();
      index_->SampleOneHop(v, fanout, dir_, rng_, scratch);
      for (const Neighbor& nb : scratch) {
        next.push_back(nb.node);
      }
    }
    stats.total_instances += static_cast<int64_t>(next.size());
    stats.total_edges += static_cast<int64_t>(next.size());
    level = std::move(next);
  }
  return stats;
}

}  // namespace mariusgnn
