// DENSE — Delta Encoding of Neighborhood SamplEs (Section 4 of the paper).
//
// A DenseBatch holds the four arrays of the paper's Figure 3 plus the repr_map added at
// device-transfer time:
//
//   node_id_offsets : start of each delta group within node_ids. Groups are ordered
//                     Δ0, Δ1, ..., Δk (deepest hop first, targets last).
//   node_ids        : all *unique* graph node ids in the sample, grouped by delta.
//   nbr_offsets     : for each node in Δ1..Δk (in node_ids order, skipping Δ0), the
//                     start of its one-hop sample within nbrs.
//   nbrs            : sampled one-hop neighbor node ids, stored contiguously per node.
//   repr_map        : for each entry of nbrs, the row of that node id within node_ids
//                     (equivalently within the representation matrix H).
//
// DenseSampler::Sample implements Algorithm 1 (one-hop samples are taken once per node
// and reused across layers); DenseBatch::AdvanceLayer implements Algorithm 2 (the
// on-device slicing that discards the deepest delta after each GNN layer).
#ifndef SRC_SAMPLER_DENSE_H_
#define SRC_SAMPLER_DENSE_H_

#include <cstdint>
#include <vector>

#include "src/graph/neighbor_index.h"
#include "src/util/rng.h"
#include "src/util/threadpool.h"

namespace mariusgnn {

struct DenseBatch {
  std::vector<int64_t> node_id_offsets;
  std::vector<int64_t> node_ids;
  std::vector<int64_t> nbr_offsets;
  std::vector<int64_t> nbrs;
  // Relation id of the edge behind each nbrs entry (parallel array; knowledge graphs).
  std::vector<int32_t> nbr_rels;
  // Filled by FinalizeForDevice().
  std::vector<int64_t> repr_map;

  int64_t num_deltas() const { return static_cast<int64_t>(node_id_offsets.size()); }
  int64_t num_nodes() const { return static_cast<int64_t>(node_ids.size()); }
  int64_t num_sampled_edges() const { return static_cast<int64_t>(nbrs.size()); }

  // Row range of delta group g within node_ids.
  int64_t DeltaBegin(int64_t g) const { return node_id_offsets[static_cast<size_t>(g)]; }
  int64_t DeltaEnd(int64_t g) const {
    return g + 1 < num_deltas() ? node_id_offsets[static_cast<size_t>(g) + 1] : num_nodes();
  }

  // Target nodes are the last delta group (Δk).
  int64_t num_targets() const { return DeltaEnd(num_deltas() - 1) - DeltaBegin(num_deltas() - 1); }

  // Nodes that own neighbor segments in the current state: node_ids[offsets[1]:].
  // Equals the output rows of the next GNN layer.
  int64_t num_output_nodes() const { return num_nodes() - node_id_offsets[1]; }

  // Closed-form segment offsets (size num_output_nodes()+1, last == nbrs.size()) for
  // the tensor segment kernels.
  std::vector<int64_t> SegmentOffsets() const;

  // Builds repr_map: the node_ids row of every nbrs entry. Call once after sampling,
  // before the first layer ("transfer to device").
  void FinalizeForDevice();

  // Algorithm 2: drops Δ0 (the deepest group) and its neighbor segments after a layer
  // has been computed. Requires num_deltas() >= 2 and repr_map to be finalized.
  void AdvanceLayer();
};

// Merges per-query finalized DenseBatches into one block-diagonal batch: node
// groups are concatenated delta-by-delta (all queries' Δ0, then all Δ1, ...),
// neighbor segments keep their per-query order, and every repr_map entry is
// remapped into the merged row space — entries never cross query blocks, so each
// output row of a forward pass over the merged batch reads exactly the rows the
// per-query forward would have read. Because the row-chunked matmuls and
// per-segment aggregations are row/segment-local, the merged forward is
// bitwise-identical per row to running each query alone (the serving batcher's
// determinism contract). All inputs must share the same delta count (same
// fanouts) and be finalized. `target_row_offsets` (size batches+1) receives each
// query's target-row range within the merged forward output.
DenseBatch ConcatBlockDiagonal(const std::vector<const DenseBatch*>& batches,
                               std::vector<int64_t>* target_row_offsets);

// Multi-hop sampler implementing Algorithm 1.
class DenseSampler {
 public:
  // fanouts[h] is the max neighbors per node at hop h+1 away from the targets (the
  // paper's "30, 20, 10 ordered away from the target nodes" convention). When dir is
  // kBoth, up to fanouts[h] neighbors are drawn from each direction.
  DenseSampler(const NeighborIndex* index, std::vector<int64_t> fanouts,
               EdgeDirection dir, uint64_t seed = 17,
               ThreadPool* pool = nullptr);

  // Samples the k-hop neighborhood of unique `target_nodes` and returns the DENSE
  // arrays (repr_map not yet finalized). Advances the sampler's own RNG.
  DenseBatch Sample(const std::vector<int64_t>& target_nodes);

  // Deterministic, thread-safe variant: the whole sample is derived from
  // `batch_seed` alone, so pipeline workers can share one sampler and produce
  // identical batches for any worker count (see training_pipeline.h).
  DenseBatch SampleSeeded(const std::vector<int64_t>& target_nodes,
                          uint64_t batch_seed) const {
    return SampleSeeded(target_nodes, batch_seed, index_);
  }

  // Explicit-index variant for callers that must not mutate shared sampler state
  // (the serving path: one const sampler, many concurrent readers).
  DenseBatch SampleSeeded(const std::vector<int64_t>& target_nodes,
                          uint64_t batch_seed, const NeighborIndex* index) const;

  int64_t num_layers() const { return static_cast<int64_t>(fanouts_.size()); }
  void set_index(const NeighborIndex* index) { index_ = index; }

 private:
  const NeighborIndex* index_;
  std::vector<int64_t> fanouts_;
  EdgeDirection dir_;
  Rng rng_;
  ThreadPool* pool_;
};

}  // namespace mariusgnn

#endif  // SRC_SAMPLER_DENSE_H_
