// Negative sampling for link prediction training and MRR evaluation.
//
// MariusGNN (like Marius and DGL-KE) scores each positive edge against a set of
// negative nodes shared across the mini batch. UniformNegativeSampler draws them
// uniformly from a node universe — either the full graph (in-memory training) or the
// nodes currently in the partition buffer (disk-based training), matching the paper's
// constraint that sampling happens only over in-memory data.
#ifndef SRC_SAMPLER_NEGATIVE_H_
#define SRC_SAMPLER_NEGATIVE_H_

#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace mariusgnn {

class UniformNegativeSampler {
 public:
  // Universe = [0, num_nodes).
  explicit UniformNegativeSampler(int64_t num_nodes, uint64_t seed = 41)
      : num_nodes_(num_nodes), rng_(seed) {}

  // Universe = an explicit node list (in-buffer nodes for disk training).
  explicit UniformNegativeSampler(std::vector<int64_t> universe, uint64_t seed = 41)
      : universe_(std::move(universe)), rng_(seed) {}

  // Draws `count` negatives (with replacement — matching large-scale practice).
  std::vector<int64_t> Sample(int64_t count) { return SampleWith(rng_, count); }

  // Deterministic, thread-safe variant: draws from a fresh RNG stream seeded with
  // `seed`, leaving the sampler's own RNG untouched. Pipeline workers use this with
  // per-batch seeds so negatives are identical for any worker count.
  std::vector<int64_t> SampleSeeded(int64_t count, uint64_t seed) const {
    Rng rng(seed);
    return SampleWith(rng, count);
  }

 private:
  std::vector<int64_t> SampleWith(Rng& rng, int64_t count) const {
    std::vector<int64_t> out(static_cast<size_t>(count));
    if (!universe_.empty()) {
      for (auto& v : out) {
        v = universe_[static_cast<size_t>(rng.UniformInt(universe_.size()))];
      }
    } else {
      for (auto& v : out) {
        v = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(num_nodes_)));
      }
    }
    return out;
  }

  int64_t num_nodes_ = 0;
  std::vector<int64_t> universe_;
  Rng rng_;
};

}  // namespace mariusgnn

#endif  // SRC_SAMPLER_NEGATIVE_H_
