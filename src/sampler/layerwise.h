// Baseline multi-hop samplers, reimplemented for head-to-head comparison with DENSE.
//
// LayerwiseSampler reproduces the DGL/PyG sampling behaviour described in the paper's
// introduction and Figure 1: nodes appearing in the *same* layer are sampled once, but a
// node appearing in *different* layers has its one-hop neighborhood resampled for every
// layer. It emits per-layer bipartite blocks (DGL's "message flow graphs") whose
// aggregation requires edge-wise gather/scatter rather than contiguous segment kernels.
//
// TreeSampler reproduces NextDoor-style per-instance sampling (Table 7's comparison):
// every node *instance* in the frontier is expanded independently with no reuse and no
// dedup, so the sample grows as the product of the fanouts.
#ifndef SRC_SAMPLER_LAYERWISE_H_
#define SRC_SAMPLER_LAYERWISE_H_

#include <cstdint>
#include <vector>

#include "src/graph/neighbor_index.h"
#include "src/util/rng.h"

namespace mariusgnn {

// One bipartite layer block: dst nodes aggregate from src nodes along COO edges.
// src_nodes always begins with dst_nodes (self rows), matching DGL block layout.
struct LayerBlock {
  std::vector<int64_t> dst_nodes;
  std::vector<int64_t> src_nodes;
  std::vector<int64_t> edge_dst;  // index into dst_nodes
  std::vector<int64_t> edge_src;  // index into src_nodes
  std::vector<int32_t> edge_rel;

  int64_t num_edges() const { return static_cast<int64_t>(edge_dst.size()); }
};

struct LayerwiseSample {
  // blocks[0] is the innermost layer (consumed first in the forward pass); the last
  // block's dst_nodes are the mini-batch targets.
  std::vector<LayerBlock> blocks;

  // Unique base representations the batch needs (innermost block's src_nodes).
  const std::vector<int64_t>& input_nodes() const { return blocks.front().src_nodes; }

  int64_t TotalSampledEdges() const;
  // Unique nodes whose base representation must be transferred.
  int64_t NumInputNodes() const { return static_cast<int64_t>(input_nodes().size()); }
};

class LayerwiseSampler {
 public:
  LayerwiseSampler(const NeighborIndex* index, std::vector<int64_t> fanouts,
                   EdgeDirection dir, uint64_t seed = 29);

  LayerwiseSample Sample(const std::vector<int64_t>& target_nodes);

  // Deterministic, thread-safe variant: the whole sample is derived from
  // `batch_seed` alone (per-node RNG streams), so pipeline workers can share one
  // sampler and produce identical batches for any worker count.
  LayerwiseSample SampleSeeded(const std::vector<int64_t>& target_nodes,
                               uint64_t batch_seed) const {
    return SampleSeeded(target_nodes, batch_seed, index_);
  }

  // Explicit-index variant for callers that must not mutate shared sampler state
  // (the serving path: one const sampler, many concurrent readers).
  LayerwiseSample SampleSeeded(const std::vector<int64_t>& target_nodes,
                               uint64_t batch_seed,
                               const NeighborIndex* index) const;

  int64_t num_layers() const { return static_cast<int64_t>(fanouts_.size()); }
  void set_index(const NeighborIndex* index) { index_ = index; }

 private:
  const NeighborIndex* index_;
  std::vector<int64_t> fanouts_;
  EdgeDirection dir_;
  Rng rng_;
};

// NextDoor-style per-instance expansion; returns only size statistics since its cost is
// dominated by materialising the exponentially-growing sample.
struct TreeSampleStats {
  int64_t total_instances = 0;  // node instances across all levels (incl. targets)
  int64_t total_edges = 0;      // sampled edges (instances beyond level 0)
};

class TreeSampler {
 public:
  TreeSampler(const NeighborIndex* index, std::vector<int64_t> fanouts, EdgeDirection dir,
              uint64_t seed = 31);

  TreeSampleStats Sample(const std::vector<int64_t>& target_nodes);

 private:
  const NeighborIndex* index_;
  std::vector<int64_t> fanouts_;
  EdgeDirection dir_;
  Rng rng_;
};

}  // namespace mariusgnn

#endif  // SRC_SAMPLER_LAYERWISE_H_
