#include "src/sampler/dense.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/util/check.h"

namespace mariusgnn {

std::vector<int64_t> DenseBatch::SegmentOffsets() const {
  MG_CHECK(static_cast<int64_t>(nbr_offsets.size()) == num_output_nodes());
  std::vector<int64_t> closed;
  closed.reserve(nbr_offsets.size() + 1);
  closed.insert(closed.end(), nbr_offsets.begin(), nbr_offsets.end());
  closed.push_back(static_cast<int64_t>(nbrs.size()));
  return closed;
}

void DenseBatch::FinalizeForDevice() {
  std::unordered_map<int64_t, int64_t> row_of;
  row_of.reserve(node_ids.size() * 2);
  for (size_t i = 0; i < node_ids.size(); ++i) {
    row_of.emplace(node_ids[i], static_cast<int64_t>(i));
  }
  repr_map.resize(nbrs.size());
  for (size_t i = 0; i < nbrs.size(); ++i) {
    auto it = row_of.find(nbrs[i]);
    MG_CHECK_MSG(it != row_of.end(), "nbr id missing from node_ids");
    repr_map[i] = it->second;
  }
}

void DenseBatch::AdvanceLayer() {
  MG_CHECK(num_deltas() >= 2);
  MG_CHECK(repr_map.size() == nbrs.size());
  const int64_t delta_prev_len = node_id_offsets[1];                  // |Δi−1|
  const int64_t delta_i_len = DeltaEnd(1) - DeltaBegin(1);            // |Δi|
  // Δi's neighbor block is the first delta_i_len segments of nbrs.
  const int64_t drop_nbrs =
      delta_i_len < static_cast<int64_t>(nbr_offsets.size())
          ? nbr_offsets[static_cast<size_t>(delta_i_len)]
          : static_cast<int64_t>(nbrs.size());

  nbrs.erase(nbrs.begin(), nbrs.begin() + drop_nbrs);
  if (!nbr_rels.empty()) {
    nbr_rels.erase(nbr_rels.begin(), nbr_rels.begin() + drop_nbrs);
  }
  repr_map.erase(repr_map.begin(), repr_map.begin() + drop_nbrs);
  for (auto& r : repr_map) {
    r -= delta_prev_len;
    MG_DCHECK(r >= 0);
  }
  nbr_offsets.erase(nbr_offsets.begin(), nbr_offsets.begin() + delta_i_len);
  for (auto& o : nbr_offsets) {
    o -= drop_nbrs;
  }
  node_ids.erase(node_ids.begin(), node_ids.begin() + delta_prev_len);
  node_id_offsets.erase(node_id_offsets.begin());
  for (auto& o : node_id_offsets) {
    o -= delta_prev_len;
  }
}

DenseBatch ConcatBlockDiagonal(const std::vector<const DenseBatch*>& batches,
                               std::vector<int64_t>* target_row_offsets) {
  MG_CHECK(!batches.empty());
  const int64_t num_deltas = batches[0]->num_deltas();
  const size_t q_count = batches.size();
  for (const DenseBatch* b : batches) {
    MG_CHECK_MSG(b->num_deltas() == num_deltas,
                 "all merged batches must share the delta count (same fanouts)");
    MG_CHECK_MSG(b->repr_map.size() == b->nbrs.size(),
                 "merged batches must be finalized (repr_map built)");
  }

  DenseBatch out;
  // Merged delta-group base offsets: group g starts after all queries' groups < g.
  std::vector<int64_t> group_base(static_cast<size_t>(num_deltas) + 1, 0);
  for (int64_t g = 0; g < num_deltas; ++g) {
    int64_t size = 0;
    for (const DenseBatch* b : batches) {
      size += b->DeltaEnd(g) - b->DeltaBegin(g);
    }
    group_base[static_cast<size_t>(g) + 1] = group_base[static_cast<size_t>(g)] + size;
  }
  out.node_id_offsets.assign(group_base.begin(), group_base.end() - 1);
  out.node_ids.resize(static_cast<size_t>(group_base.back()));

  // Per-query local-row -> merged-row maps, built while placing node_ids.
  std::vector<std::vector<int64_t>> row_map(q_count);
  {
    std::vector<int64_t> cursor(group_base.begin(), group_base.end() - 1);
    for (size_t q = 0; q < q_count; ++q) {
      const DenseBatch& b = *batches[q];
      row_map[q].resize(static_cast<size_t>(b.num_nodes()));
      for (int64_t g = 0; g < num_deltas; ++g) {
        for (int64_t r = b.DeltaBegin(g); r < b.DeltaEnd(g); ++r) {
          const int64_t m = cursor[static_cast<size_t>(g)]++;
          out.node_ids[static_cast<size_t>(m)] = b.node_ids[static_cast<size_t>(r)];
          row_map[q][static_cast<size_t>(r)] = m;
        }
      }
    }
  }

  // Neighbor segments in merged output-node order (delta group >= 1, then query,
  // then the query's nodes in order), with repr_map remapped per query.
  bool want_rels = false;
  size_t total_nbrs = 0;
  for (const DenseBatch* b : batches) {
    total_nbrs += b->nbrs.size();
    want_rels = want_rels || !b->nbr_rels.empty();
  }
  out.nbrs.reserve(total_nbrs);
  out.repr_map.reserve(total_nbrs);
  if (want_rels) {
    out.nbr_rels.reserve(total_nbrs);
  }
  out.nbr_offsets.reserve(static_cast<size_t>(group_base.back() - group_base[1]));
  for (int64_t g = 1; g < num_deltas; ++g) {
    for (size_t q = 0; q < q_count; ++q) {
      const DenseBatch& b = *batches[q];
      const std::vector<int64_t> segs = b.SegmentOffsets();
      for (int64_t r = b.DeltaBegin(g); r < b.DeltaEnd(g); ++r) {
        const int64_t seg = r - b.node_id_offsets[1];
        out.nbr_offsets.push_back(static_cast<int64_t>(out.nbrs.size()));
        for (int64_t e = segs[static_cast<size_t>(seg)];
             e < segs[static_cast<size_t>(seg) + 1]; ++e) {
          out.nbrs.push_back(b.nbrs[static_cast<size_t>(e)]);
          out.repr_map.push_back(row_map[q][static_cast<size_t>(
              b.repr_map[static_cast<size_t>(e)])]);
          if (want_rels) {
            out.nbr_rels.push_back(b.nbr_rels.empty()
                                       ? 0
                                       : b.nbr_rels[static_cast<size_t>(e)]);
          }
        }
      }
    }
  }

  if (target_row_offsets != nullptr) {
    target_row_offsets->assign(1, 0);
    for (const DenseBatch* b : batches) {
      target_row_offsets->push_back(target_row_offsets->back() + b->num_targets());
    }
  }
  return out;
}

DenseSampler::DenseSampler(const NeighborIndex* index, std::vector<int64_t> fanouts,
                           EdgeDirection dir, uint64_t seed, ThreadPool* pool)
    : index_(index), fanouts_(std::move(fanouts)), dir_(dir), rng_(seed), pool_(pool) {
  MG_CHECK(!fanouts_.empty());
}

DenseBatch DenseSampler::Sample(const std::vector<int64_t>& target_nodes) {
  return SampleSeeded(target_nodes, rng_.Next());
}

DenseBatch DenseSampler::SampleSeeded(const std::vector<int64_t>& target_nodes,
                                      uint64_t batch_seed,
                                      const NeighborIndex* index) const {
  MG_CHECK(index != nullptr);
  DenseBatch b;
  b.node_id_offsets = {0};
  b.node_ids = target_nodes;

  std::unordered_set<int64_t> in_sample;
  in_sample.reserve(target_nodes.size() * 4);
  for (int64_t v : target_nodes) {
    in_sample.insert(v);
  }
  MG_CHECK_MSG(in_sample.size() == target_nodes.size(), "target_nodes must be unique");

  std::vector<int64_t> delta = target_nodes;  // Δk

  // Loop i = k..1: sample one-hop neighbors for Δi (Algorithm 1, line 3).
  for (size_t hop = 0; hop < fanouts_.size(); ++hop) {
    const int64_t fanout = fanouts_[hop];
    const int64_t m = static_cast<int64_t>(delta.size());

    // Per-node sample sizes are deterministic: min(degree, fanout) per direction.
    std::vector<int64_t> starts(static_cast<size_t>(m) + 1, 0);
    for (int64_t j = 0; j < m; ++j) {
      const int64_t v = delta[static_cast<size_t>(j)];
      int64_t count = 0;
      if (dir_ == EdgeDirection::kOutgoing || dir_ == EdgeDirection::kBoth) {
        count += std::min(index->OutDegree(v), fanout);
      }
      if (dir_ == EdgeDirection::kIncoming || dir_ == EdgeDirection::kBoth) {
        count += std::min(index->InDegree(v), fanout);
      }
      starts[static_cast<size_t>(j) + 1] = starts[static_cast<size_t>(j)] + count;
    }
    const int64_t total = starts[static_cast<size_t>(m)];
    std::vector<int64_t> hop_nbrs(static_cast<size_t>(total));
    std::vector<int32_t> hop_rels(static_cast<size_t>(total));

    auto fill = [&](int64_t begin, int64_t end) {
      std::vector<Neighbor> scratch;
      for (int64_t j = begin; j < end; ++j) {
        scratch.clear();
        Rng node_rng(MixSeed(batch_seed, static_cast<uint64_t>(hop) * 0x100000001ULL +
                                             static_cast<uint64_t>(j)));
        index->SampleOneHop(delta[static_cast<size_t>(j)], fanout, dir_, node_rng, scratch);
        int64_t pos = starts[static_cast<size_t>(j)];
        for (const Neighbor& nb : scratch) {
          hop_nbrs[static_cast<size_t>(pos)] = nb.node;
          hop_rels[static_cast<size_t>(pos)] = nb.rel;
          ++pos;
        }
        MG_DCHECK(pos == starts[static_cast<size_t>(j) + 1]);
      }
    };
    if (pool_ != nullptr) {
      pool_->ParallelFor(m, fill, /*min_chunk=*/256);
    } else {
      fill(0, m);
    }

    // Prepend this hop's samples (Algorithm 1, lines 5-6).
    {
      std::vector<int64_t> new_offsets;
      new_offsets.reserve(static_cast<size_t>(m) + b.nbr_offsets.size());
      new_offsets.insert(new_offsets.end(), starts.begin(), starts.end() - 1);
      for (int64_t o : b.nbr_offsets) {
        new_offsets.push_back(o + total);
      }
      b.nbr_offsets = std::move(new_offsets);

      std::vector<int64_t> new_nbrs;
      new_nbrs.reserve(hop_nbrs.size() + b.nbrs.size());
      new_nbrs.insert(new_nbrs.end(), hop_nbrs.begin(), hop_nbrs.end());
      new_nbrs.insert(new_nbrs.end(), b.nbrs.begin(), b.nbrs.end());
      b.nbrs = std::move(new_nbrs);

      std::vector<int32_t> new_rels;
      new_rels.reserve(hop_rels.size() + b.nbr_rels.size());
      new_rels.insert(new_rels.end(), hop_rels.begin(), hop_rels.end());
      new_rels.insert(new_rels.end(), b.nbr_rels.begin(), b.nbr_rels.end());
      b.nbr_rels = std::move(new_rels);
    }

    // Δi−1 = unique(Δi_nbrs) \ node_ids (Algorithm 1, line 7).
    std::vector<int64_t> next_delta;
    for (int64_t v : hop_nbrs) {
      if (in_sample.insert(v).second) {
        next_delta.push_back(v);
      }
    }

    // Prepend Δi−1 to node_ids and rebase offsets (Algorithm 1, lines 8-9).
    const int64_t added = static_cast<int64_t>(next_delta.size());
    for (auto& o : b.node_id_offsets) {
      o += added;
    }
    b.node_id_offsets.insert(b.node_id_offsets.begin(), 0);
    std::vector<int64_t> new_ids;
    new_ids.reserve(next_delta.size() + b.node_ids.size());
    new_ids.insert(new_ids.end(), next_delta.begin(), next_delta.end());
    new_ids.insert(new_ids.end(), b.node_ids.begin(), b.node_ids.end());
    b.node_ids = std::move(new_ids);

    delta = std::move(next_delta);
  }
  return b;
}

}  // namespace mariusgnn
