// Evaluation metrics: MRR for link prediction, accuracy for node classification, and
// the AWS cost model used to reproduce the paper's $/epoch columns.
#ifndef SRC_EVAL_METRICS_H_
#define SRC_EVAL_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mariusgnn {

// Rank of the positive among candidates: 1 + #candidates strictly greater, with ties
// broken pessimistically at the midpoint (standard protocol).
int64_t RankOfPositive(float positive_score, const std::vector<float>& negative_scores);

// Mean reciprocal rank from a list of ranks.
double MrrFromRanks(const std::vector<int64_t>& ranks);

// Fraction of correct predictions.
double Accuracy(const std::vector<int64_t>& predictions, const std::vector<int64_t>& labels);

// AWS P3 on-demand pricing (Table 2 of the paper).
struct CostModel {
  double p3_2xlarge_per_hour = 3.06;   // 1 GPU, 61 GB
  double p3_8xlarge_per_hour = 12.24;  // 4 GPU, 244 GB
  double p3_16xlarge_per_hour = 24.48; // 8 GPU, 488 GB

  double CostFor(const std::string& instance, double seconds) const;
};

}  // namespace mariusgnn

#endif  // SRC_EVAL_METRICS_H_
