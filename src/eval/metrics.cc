#include "src/eval/metrics.h"

#include "src/util/check.h"

namespace mariusgnn {

int64_t RankOfPositive(float positive_score, const std::vector<float>& negative_scores) {
  int64_t greater = 0;
  int64_t equal = 0;
  for (float s : negative_scores) {
    if (s > positive_score) {
      ++greater;
    } else if (s == positive_score) {
      ++equal;
    }
  }
  // Average-rank convention for ties: the positive's expected rank among the
  // `equal`-scored negatives is (equal + 1) / 2 in the reals; the half-up integer
  // form keeps ranks integral without the downward bias of truncating equal / 2
  // (which gave a positive tied with one negative full credit).
  return 1 + greater + (equal + 1) / 2;
}

double MrrFromRanks(const std::vector<int64_t>& ranks) {
  if (ranks.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (int64_t r : ranks) {
    sum += 1.0 / static_cast<double>(r);
  }
  return sum / static_cast<double>(ranks.size());
}

double Accuracy(const std::vector<int64_t>& predictions,
                const std::vector<int64_t>& labels) {
  MG_CHECK(predictions.size() == labels.size());
  if (predictions.empty()) {
    return 0.0;
  }
  int64_t correct = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == labels[i]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(predictions.size());
}

double CostModel::CostFor(const std::string& instance, double seconds) const {
  double per_hour = p3_2xlarge_per_hour;
  if (instance == "p3.8xlarge") {
    per_hour = p3_8xlarge_per_hour;
  } else if (instance == "p3.16xlarge") {
    per_hour = p3_16xlarge_per_hour;
  } else {
    MG_CHECK_MSG(instance == "p3.2xlarge", "unknown instance type");
  }
  return per_hour * seconds / 3600.0;
}

}  // namespace mariusgnn
