#include "src/serve/model_snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/util/check.h"

namespace mariusgnn {

EmbeddingSource::~EmbeddingSource() {
  if (map_base_ != nullptr) {
    ::munmap(map_base_, map_bytes_);
  }
}

std::unique_ptr<EmbeddingSource> EmbeddingSource::OpenMapped(
    const std::string& path, const CheckpointSectionInfo& section, bool aligned,
    std::string* error) {
  std::unique_ptr<EmbeddingSource> src(new EmbeddingSource());
  src->rows_ = section.rows;
  src->cols_ = section.cols;
  if (!aligned) {
    // v1 files pack sections unaligned; read the payload once into an owned
    // tensor instead of mapping.
    std::unique_ptr<File> f = File::TryOpenReadOnly(path, error);
    if (f == nullptr) {
      return nullptr;
    }
    src->owned_ = Tensor(section.rows, section.cols);
    // Untrusted on-disk input: a concurrently-truncated file must surface as a
    // clean error, not a process abort.
    if (!f->TryReadAt(src->owned_.data(), section.bytes, section.file_offset,
                      error)) {
      *error = "serve: corrupt checkpoint: " + *error;
      return nullptr;
    }
    src->section_data_ = src->owned_.data();
    return src;
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    *error = "serve: cannot open checkpoint for mmap: " + path;
    return nullptr;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    *error = "serve: fstat failed on checkpoint: " + path;
    return nullptr;
  }
  const size_t map_bytes = static_cast<size_t>(st.st_size);
  void* base = ::mmap(nullptr, map_bytes, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file open
  if (base == MAP_FAILED) {
    *error = "serve: mmap failed on checkpoint: " + path;
    return nullptr;
  }
  src->map_base_ = base;
  src->map_bytes_ = map_bytes;
  src->section_data_ = reinterpret_cast<const float*>(
      static_cast<const uint8_t*>(base) + section.file_offset);
  return src;
}

std::unique_ptr<EmbeddingSource> EmbeddingSource::OpenDiskLru(
    const std::string& path, const CheckpointSectionInfo& section,
    const SnapshotOptions& options, std::string* error) {
  MG_CHECK_MSG(options.cache_block_rows > 0 && options.cache_capacity_blocks > 0,
               "serve: LRU cache geometry must be positive");
  std::unique_ptr<File> f = File::TryOpenReadOnly(path, error);
  if (f == nullptr) {
    return nullptr;
  }
  std::unique_ptr<EmbeddingSource> src(new EmbeddingSource());
  src->rows_ = section.rows;
  src->cols_ = section.cols;
  src->file_ = std::move(f);
  src->file_offset_ = section.file_offset;
  src->block_rows_ = options.cache_block_rows;
  src->capacity_blocks_ = options.cache_capacity_blocks;
  return src;
}

const float* EmbeddingSource::CachedRow(int64_t row) const {
  const int64_t block_id = row / block_rows_;
  auto it = blocks_.find(block_id);
  if (it != blocks_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.data.data() + (row - block_id * block_rows_) * cols_;
  }
  ++stats_.misses;
  if (static_cast<int64_t>(blocks_.size()) >= capacity_blocks_) {
    const int64_t victim = lru_.back();
    lru_.pop_back();
    blocks_.erase(victim);
    ++stats_.evictions;
  }
  const int64_t begin_row = block_id * block_rows_;
  const int64_t end_row = std::min(rows_, begin_row + block_rows_);
  Block block;
  block.data.resize(static_cast<size_t>((end_row - begin_row) * cols_));
  file_->ReadAt(block.data.data(), block.data.size() * sizeof(float),
                file_offset_ + static_cast<uint64_t>(begin_row) * cols_ * sizeof(float));
  lru_.push_front(block_id);
  block.lru_it = lru_.begin();
  auto ins = blocks_.emplace(block_id, std::move(block)).first;
  return ins->second.data.data() + (row - begin_row) * cols_;
}

Tensor EmbeddingSource::Gather(const std::vector<int64_t>& nodes,
                               const ComputeContext* compute) const {
  const int64_t n = static_cast<int64_t>(nodes.size());
  Tensor out(n, cols_);
  if (section_data_ != nullptr) {
    // Memory-backed: row-local copies, parallel-safe at any pool size.
    ForEachChunk(compute, n, kComputeGrainRows,
                 [&](int64_t, int64_t begin, int64_t end) {
                   for (int64_t i = begin; i < end; ++i) {
                     const int64_t row = nodes[static_cast<size_t>(i)];
                     MG_DCHECK(row >= 0 && row < rows_);
                     std::memcpy(out.RowPtr(i), section_data_ + row * cols_,
                                 static_cast<size_t>(cols_) * sizeof(float));
                   }
                 });
    return out;
  }
  // Disk-backed: the cache mutates on every lookup, so the gather runs serially
  // under the lock. The bits are still a pure function of `nodes` — cache state
  // only decides whether a row comes from memory or a fresh pread of the same
  // immutable file bytes.
  std::lock_guard<std::mutex> lock(cache_mu_);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t row = nodes[static_cast<size_t>(i)];
    MG_CHECK_MSG(row >= 0 && row < rows_, "serve: embedding row out of range");
    std::memcpy(out.RowPtr(i), CachedRow(row),
                static_cast<size_t>(cols_) * sizeof(float));
  }
  return out;
}

CacheStats EmbeddingSource::cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return stats_;
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::Load(
    const std::string& path, const Graph& graph, TaskKind kind,
    const ModelConfig& config, const SnapshotOptions& options,
    std::string* error) {
  CheckpointManifest manifest;
  if (!ReadCheckpointManifest(path, &manifest, error)) {
    return nullptr;
  }
  if (manifest.kind != CheckpointKindName(kind)) {
    *error = "serve: checkpoint kind '" + manifest.kind + "' does not match task '" +
             CheckpointKindName(kind) + "'";
    return nullptr;
  }

  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->kind = kind;
  snapshot->epoch = manifest.epoch;
  snapshot->run_seed = manifest.run_seed;
  snapshot->format_version = manifest.version;
  Rng init_rng(config.seed);  // throwaway: every weight is overwritten below
  snapshot->model = ModelState::Build(kind, graph, config, init_rng);

  const size_t expected_sections =
      snapshot->model.params.size() * 2 +
      (kind == TaskKind::kLinkPrediction ? 2 : 0);
  if (manifest.sections.size() != expected_sections) {
    *error = "serve: checkpoint section count does not match the model config (" +
             std::to_string(manifest.sections.size()) + " vs expected " +
             std::to_string(expected_sections) + ")";
    return nullptr;
  }

  std::unique_ptr<File> f = File::TryOpenReadOnly(path, error);
  if (f == nullptr) {
    return nullptr;
  }
  for (size_t i = 0; i < snapshot->model.params.size(); ++i) {
    const std::string name = ParamSectionName(i, "value");
    const CheckpointSectionInfo* section = manifest.FindSection(name);
    if (section == nullptr) {
      *error = "serve: checkpoint is missing section '" + name + "'";
      return nullptr;
    }
    Parameter* p = snapshot->model.params[i];
    if (section->rows != p->value.rows() || section->cols != p->value.cols()) {
      *error = "serve: section '" + name +
               "' shape does not match the model config (different training run?)";
      return nullptr;
    }
    Tensor value(section->rows, section->cols);
    // Untrusted on-disk input: fail with a clean error instead of aborting if
    // the file was truncated between the manifest parse and this read.
    if (!f->TryReadAt(value.data(), section->bytes, section->file_offset, error)) {
      *error = "serve: corrupt checkpoint: " + *error;
      return nullptr;
    }
    // Serving never runs the optimizer: drop the Adagrad accumulator sections.
    RestoreParamFromCheckpoint(p, value, Tensor());
  }

  if (kind == TaskKind::kLinkPrediction) {
    const CheckpointSectionInfo* section = manifest.FindSection("embeddings.values");
    if (section == nullptr) {
      *error = "serve: checkpoint is missing section 'embeddings.values'";
      return nullptr;
    }
    if (section->rows != graph.num_nodes() || section->cols != config.dims.front()) {
      *error = "serve: embedding table shape does not match (graph, config)";
      return nullptr;
    }
    snapshot->embeddings =
        options.disk_backed
            ? EmbeddingSource::OpenDiskLru(path, *section, options, error)
            : EmbeddingSource::OpenMapped(path, *section,
                                          manifest.aligned_sections, error);
    if (snapshot->embeddings == nullptr) {
      return nullptr;
    }
  }
  return snapshot;
}

}  // namespace mariusgnn
