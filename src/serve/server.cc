#include "src/serve/server.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "src/sampler/dense.h"
#include "src/tensor/ops.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace mariusgnn {

namespace {
// Every query samples with the same content-independent seed, so batching
// composition, arrival order, and snapshot swaps can never change a query's
// neighborhood sample ("SERV").
constexpr uint64_t kServeSeedSalt = 0x53455256ULL;
}  // namespace

InferenceServer::InferenceServer(const Graph* graph, TaskKind kind,
                                 ModelConfig config, ServeOptions options)
    : graph_(graph),
      kind_(kind),
      config_(std::move(config)),
      options_(std::move(options)),
      full_index_(*graph),
      query_seed_(MixSeed(config_.seed, kServeSeedSalt)) {
  MG_CHECK_MSG(options_.max_batch >= 1, "serve: max_batch must be >= 1");
  ModelState::ValidateConfig(kind_, *graph_, config_);
}

bool InferenceServer::LoadSnapshot(const std::string& path, std::string* error) {
  // The expensive part — manifest parse, parameter reads, mmap/cache setup —
  // happens with no lock held; in-flight batches keep answering from the old
  // epoch until the pointer swap below.
  std::shared_ptr<const ModelSnapshot> next =
      ModelSnapshot::Load(path, *graph_, kind_, config_, options_.snapshot, error);
  if (next == nullptr) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (snapshot_ != nullptr) {
    ++swaps_;
  }
  snapshot_ = std::move(next);
  return true;
}

InferenceServer::LinkPlan InferenceServer::PlanLinkQuery(
    int64_t src, const std::vector<int64_t>& candidates) {
  LinkPlan plan;
  std::unordered_map<int64_t, int64_t> row_of;
  row_of.reserve(candidates.size() + 1);
  auto row_for = [&](int64_t node) {
    auto it = row_of.find(node);
    if (it != row_of.end()) {
      return it->second;
    }
    const int64_t row = static_cast<int64_t>(plan.targets.size());
    plan.targets.push_back(node);
    row_of.emplace(node, row);
    return row;
  };
  plan.src_row = row_for(src);
  plan.cand_rows.reserve(candidates.size());
  for (int64_t cand : candidates) {
    plan.cand_rows.push_back(row_for(cand));
  }
  return plan;
}

ServeResult InferenceServer::ScoreLinks(int64_t src, int32_t rel,
                                        const std::vector<int64_t>& candidates) {
  MG_CHECK_MSG(kind_ == TaskKind::kLinkPrediction,
               "ScoreLinks on a node-classification server");
  Request req;
  req.src = src;
  req.rel = rel;
  req.candidates = candidates;
  return Submit(std::move(req));
}

ServeResult InferenceServer::Classify(int64_t node) {
  MG_CHECK_MSG(kind_ == TaskKind::kNodeClassification,
               "Classify on a link-prediction server");
  Request req;
  req.src = node;
  return Submit(std::move(req));
}

ServeResult InferenceServer::Submit(Request req) {
  std::future<ServeResult> result = req.promise.get_future();
  std::unique_lock<std::mutex> lock(mu_);
  MG_CHECK_MSG(snapshot_ != nullptr, "serve: no snapshot loaded");
  queue_.push_back(std::move(req));
  if (!leader_active_) {
    // Leader: drain until empty (new arrivals during ExecuteBatch included),
    // re-reading the snapshot pointer per batch so a hot swap takes effect at
    // the next batch boundary without ever splitting a batch across epochs.
    leader_active_ = true;
    while (!queue_.empty()) {
      const size_t take = std::min(queue_.size(), static_cast<size_t>(options_.max_batch));
      std::vector<Request> batch;
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      std::shared_ptr<const ModelSnapshot> snap = snapshot_;
      ++batches_;
      queries_ += take;
      max_coalesced_ = std::max(max_coalesced_, static_cast<int64_t>(take));
      lock.unlock();
      ExecuteBatch(*snap, batch);
      lock.lock();
    }
    leader_active_ = false;
  }
  lock.unlock();
  return result.get();
}

Tensor InferenceServer::GatherBase(const ModelSnapshot& snap,
                                   const std::vector<int64_t>& nodes,
                                   const ComputeContext* compute) const {
  if (kind_ == TaskKind::kNodeClassification) {
    return IndexSelect(graph_->features(), nodes, compute);
  }
  return snap.embeddings->Gather(nodes, compute);
}

ServeResult InferenceServer::ExecuteSingle(const ModelSnapshot& snap,
                                           const Request& req) const {
  const ComputeContext compute{options_.compute_pool, nullptr};
  auto gather = [&](const std::vector<int64_t>& nodes) {
    return GatherBase(snap, nodes, &compute);
  };
  ServeResult result;
  result.epoch = snap.epoch;
  if (kind_ == TaskKind::kNodeClassification) {
    Tensor logits =
        snap.model.InferLogits({req.src}, query_seed_, full_index_, gather, &compute);
    result.values.assign(logits.RowPtr(0), logits.RowPtr(0) + logits.cols());
    return result;
  }
  const LinkPlan plan = PlanLinkQuery(req.src, req.candidates);
  Tensor reprs =
      snap.model.InferReprs(plan.targets, query_seed_, full_index_, gather, &compute);
  snap.model.decoder->ScoreCandidates(reprs, plan.src_row, req.rel, plan.cand_rows,
                                      /*corrupt_src=*/false, &result.values);
  return result;
}

void InferenceServer::ExecuteBatch(const ModelSnapshot& snap,
                                   std::vector<Request>& batch) const {
  const ComputeContext compute{options_.compute_pool, nullptr};
  const ModelState& model = snap.model;

  // Layerwise models have no block-diagonal merge (per-layer resampling), so
  // the coalesced batch executes query-by-query against the one snapshot.
  if (model.block_encoder != nullptr) {
    for (Request& req : batch) {
      ServeResult result = ExecuteSingle(snap, req);
      rv_epoch_pin_.ObserveAnswer(snap.epoch, result.epoch);
      req.promise.set_value(std::move(result));
    }
    return;
  }

  std::vector<LinkPlan> plans;
  plans.reserve(batch.size());
  for (const Request& req : batch) {
    plans.push_back(kind_ == TaskKind::kLinkPrediction
                        ? PlanLinkQuery(req.src, req.candidates)
                        : LinkPlan{{req.src}, 0, {}});
  }

  Tensor reprs;
  std::vector<int64_t> bases;  // per-query target-row range in `reprs`
  if (model.encoder != nullptr) {
    // Sample each query alone (seed is content-independent, so these are the
    // exact samples the unbatched path takes), then merge block-diagonally
    // into ONE forward. Row-local kernels make each query's rows bitwise
    // identical to its single-query forward.
    std::vector<DenseBatch> samples;
    samples.reserve(batch.size());
    std::vector<const DenseBatch*> ptrs;
    ptrs.reserve(batch.size());
    for (const LinkPlan& plan : plans) {
      samples.push_back(
          model.dense_sampler->SampleSeeded(plan.targets, query_seed_, &full_index_));
      samples.back().FinalizeForDevice();
      ptrs.push_back(&samples.back());
    }
    DenseBatch merged = ConcatBlockDiagonal(ptrs, &bases);
    Tensor h0 = GatherBase(snap, merged.node_ids, &compute);
    reprs = model.encoder->InferForward(merged, h0, &compute);
  } else {
    // Decoder-only link prediction: representations are the embedding rows.
    std::vector<int64_t> merged_targets;
    bases.assign(1, 0);
    for (const LinkPlan& plan : plans) {
      merged_targets.insert(merged_targets.end(), plan.targets.begin(),
                            plan.targets.end());
      bases.push_back(static_cast<int64_t>(merged_targets.size()));
    }
    reprs = GatherBase(snap, merged_targets, &compute);
  }

  if (kind_ == TaskKind::kNodeClassification) {
    Tensor logits = model.head->InferForward(reprs, &compute);
    for (size_t q = 0; q < batch.size(); ++q) {
      ServeResult result;
      result.epoch = snap.epoch;
      const float* row = logits.RowPtr(bases[q]);  // one target row per query
      result.values.assign(row, row + logits.cols());
      rv_epoch_pin_.ObserveAnswer(snap.epoch, result.epoch);
      batch[q].promise.set_value(std::move(result));
    }
    return;
  }

  std::vector<int64_t> shifted;
  for (size_t q = 0; q < batch.size(); ++q) {
    const LinkPlan& plan = plans[q];
    shifted.resize(plan.cand_rows.size());
    for (size_t j = 0; j < plan.cand_rows.size(); ++j) {
      shifted[j] = bases[q] + plan.cand_rows[j];
    }
    ServeResult result;
    result.epoch = snap.epoch;
    model.decoder->ScoreCandidates(reprs, bases[q] + plan.src_row, batch[q].rel,
                                   shifted, /*corrupt_src=*/false, &result.values);
    rv_epoch_pin_.ObserveAnswer(snap.epoch, result.epoch);
    batch[q].promise.set_value(std::move(result));
  }
}

ServeResult InferenceServer::ScoreLinksUnbatched(
    int64_t src, int32_t rel, const std::vector<int64_t>& candidates) const {
  MG_CHECK_MSG(kind_ == TaskKind::kLinkPrediction,
               "ScoreLinksUnbatched on a node-classification server");
  std::shared_ptr<const ModelSnapshot> snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    MG_CHECK_MSG(snapshot_ != nullptr, "serve: no snapshot loaded");
    snap = snapshot_;
  }
  Request req;
  req.src = src;
  req.rel = rel;
  req.candidates = candidates;
  return ExecuteSingle(*snap, req);
}

ServeResult InferenceServer::ClassifyUnbatched(int64_t node) const {
  MG_CHECK_MSG(kind_ == TaskKind::kNodeClassification,
               "ClassifyUnbatched on a link-prediction server");
  std::shared_ptr<const ModelSnapshot> snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    MG_CHECK_MSG(snapshot_ != nullptr, "serve: no snapshot loaded");
    snap = snapshot_;
  }
  Request req;
  req.src = node;
  return ExecuteSingle(*snap, req);
}

uint64_t InferenceServer::current_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_ != nullptr ? snapshot_->epoch : 0;
}

ServerStats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats s;
  s.queries = queries_;
  s.batches = batches_;
  s.max_coalesced = max_coalesced_;
  s.snapshot_swaps = swaps_;
  s.rv_violations =
      RvRuntime::Global().violations(RvInvariant::kServeEpochPin);
  if (snapshot_ != nullptr && snapshot_->embeddings != nullptr) {
    s.cache = snapshot_->embeddings->cache_stats();
  }
  return s;
}

}  // namespace mariusgnn
