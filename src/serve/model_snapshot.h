// Immutable serving snapshot of a trained model (the online tier's unit of swap).
//
// A ModelSnapshot binds one checkpoint file to one ModelState: the manifest is
// parsed (never the payloads), model parameters are read section-by-section, and
// the link-prediction embedding table is exposed through an EmbeddingSource
// whose backing depends on the file format and the serving mode:
//
//  - kMapped:  format-v2 checkpoints guarantee 4 KiB-aligned sections, so the
//              file is mmapped read-only and embedding rows are gathered
//              straight out of the page-cache mapping — no deserialise pass,
//              no second copy of the (potentially huge) table in memory.
//  - kOwned:   format-v1 fallback (unaligned sections): the section is read
//              once into an owned tensor.
//  - kDiskLru: disk-backed serving: rows stay on disk and are pulled through a
//              fixed-capacity LRU cache of row blocks (pread on miss), fronting
//              the checkpoint file the way the training tier's PartitionBuffer
//              fronts its partition file.
//
// Snapshots are immutable after Load and safe for concurrent readers: the
// const forward path of ModelState never writes shared state, and the only
// mutable piece — the LRU cache — is guarded internally. The server holds
// snapshots in shared_ptrs so a hot swap retires the old epoch only after the
// last in-flight batch drops its reference.
#ifndef SRC_SERVE_MODEL_SNAPSHOT_H_
#define SRC_SERVE_MODEL_SNAPSHOT_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/checkpoint.h"
#include "src/core/model.h"
#include "src/graph/graph.h"
#include "src/tensor/tensor.h"
#include "src/util/binary_io.h"
#include "src/util/compute.h"

namespace mariusgnn {

// How a snapshot backs the embedding table.
struct SnapshotOptions {
  // true = keep embedding rows on disk behind the LRU block cache; false =
  // serve from memory (mmap view for v2 files, owned copy for v1).
  bool disk_backed = false;
  int64_t cache_block_rows = 256;     // rows per cached block
  int64_t cache_capacity_blocks = 64; // resident block limit
};

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

// Read-only row source over one checkpoint section (the embedding table).
class EmbeddingSource {
 public:
  ~EmbeddingSource();
  EmbeddingSource(const EmbeddingSource&) = delete;
  EmbeddingSource& operator=(const EmbeddingSource&) = delete;

  // Memory-backed view: mmap for aligned (v2) files, owned copy otherwise.
  static std::unique_ptr<EmbeddingSource> OpenMapped(
      const std::string& path, const CheckpointSectionInfo& section, bool aligned,
      std::string* error);
  // Disk-backed: rows stay in the file, served through the LRU block cache.
  static std::unique_ptr<EmbeddingSource> OpenDiskLru(
      const std::string& path, const CheckpointSectionInfo& section,
      const SnapshotOptions& options, std::string* error);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  bool mapped() const { return map_base_ != nullptr; }
  bool disk_backed() const { return file_ != nullptr; }

  // out[i] = row(nodes[i]); |nodes| x cols. Concurrency-safe (the LRU state is
  // internally locked); bitwise-pure in `nodes` regardless of cache state.
  Tensor Gather(const std::vector<int64_t>& nodes,
                const ComputeContext* compute) const;

  CacheStats cache_stats() const;

 private:
  EmbeddingSource() = default;

  // Returns the cached block holding `row`, faulting it in (and evicting the
  // least-recently-used block) as needed. Caller holds cache_mu_.
  const float* CachedRow(int64_t row) const;

  int64_t rows_ = 0;
  int64_t cols_ = 0;

  // kMapped: whole-file mapping; the section's payload starts at section_data_.
  void* map_base_ = nullptr;
  size_t map_bytes_ = 0;
  const float* section_data_ = nullptr;  // also set for kOwned (into owned_)

  Tensor owned_;  // kOwned payload

  // kDiskLru state.
  std::unique_ptr<File> file_;
  uint64_t file_offset_ = 0;  // section payload offset in the file
  int64_t block_rows_ = 0;
  int64_t capacity_blocks_ = 0;
  mutable std::mutex cache_mu_;
  mutable std::list<int64_t> lru_;  // most-recent block id at front
  struct Block {
    std::vector<float> data;
    std::list<int64_t>::iterator lru_it;
  };
  mutable std::unordered_map<int64_t, Block> blocks_;
  mutable CacheStats stats_;
};

// One immutable epoch of the model, loaded from a checkpoint file.
struct ModelSnapshot {
  TaskKind kind = TaskKind::kLinkPrediction;
  uint64_t epoch = 0;
  uint64_t run_seed = 0;
  uint32_t format_version = 0;
  ModelState model;
  // Link prediction only (node classification serves features from the graph).
  std::unique_ptr<EmbeddingSource> embeddings;

  // Parses the manifest, validates kind/shape compatibility against
  // (graph, config), loads the parameter sections, and wires the embedding
  // source. Returns nullptr with *error set on any mismatch or IO failure.
  static std::shared_ptr<const ModelSnapshot> Load(const std::string& path,
                                                   const Graph& graph,
                                                   TaskKind kind,
                                                   const ModelConfig& config,
                                                   const SnapshotOptions& options,
                                                   std::string* error);
};

}  // namespace mariusgnn

#endif  // SRC_SERVE_MODEL_SNAPSHOT_H_
