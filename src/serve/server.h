// Online inference server: batched concurrent queries over checkpoint snapshots.
//
// Clients call ScoreLinks / Classify from any number of threads. Requests are
// coalesced by a leader-follower batcher: the first thread to find no active
// leader becomes one, drains the queue in batches of up to max_batch, executes
// each batch, and keeps draining until the queue is empty; every other thread
// just enqueues and blocks on its result. Execution is therefore serialized
// (one leader at a time) while arrival stays fully concurrent — the batch is
// where the throughput comes from, not intra-server parallelism.
//
// Determinism contract (the serving analog of the training pipeline's): every
// answer is bitwise-identical no matter how requests were coalesced. Each
// query's neighborhood is sampled with a content-independent seed
// (MixSeed(config.seed, "SERV")), finalized alone, and merged into one
// block-diagonal DenseBatch (ConcatBlockDiagonal); because the forward kernels
// are row/segment-local, each query's rows through the merged forward match a
// single-query forward bit for bit. ScoreLinksUnbatched / ClassifyUnbatched
// run that reference path directly — tests assert batched == unbatched.
//
// Hot swap: LoadSnapshot builds the next epoch's ModelSnapshot entirely outside
// the server lock, then swaps the shared_ptr. In-flight batches keep the old
// snapshot alive through their own reference, so a swap never drops a request
// and no answer mixes epochs — each batch reads its snapshot pointer exactly
// once and tags every result with that snapshot's epoch.
#ifndef SRC_SERVE_SERVER_H_
#define SRC_SERVE_SERVER_H_

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/model.h"
#include "src/graph/graph.h"
#include "src/graph/neighbor_index.h"
#include "src/serve/model_snapshot.h"
#include "src/util/compute.h"
#include "src/util/rv_monitor.h"
#include "src/util/threadpool.h"

namespace mariusgnn {

struct ServeOptions {
  int64_t max_batch = 64;     // most queries coalesced into one forward
  SnapshotOptions snapshot;   // embedding backing: memory (mmap) vs disk LRU
  // Kernel pool for the batched forward; nullptr = serial. Either way the bits
  // are identical (src/util/compute.h), so this is a latency knob only.
  ThreadPool* compute_pool = nullptr;
};

struct ServeResult {
  // Link prediction: score per candidate (parallel to `candidates`).
  // Node classification: one logit per class.
  std::vector<float> values;
  uint64_t epoch = 0;  // the snapshot that answered
};

struct ServerStats {
  uint64_t queries = 0;
  uint64_t batches = 0;          // executed forwards (>= 1 query each)
  int64_t max_coalesced = 0;     // largest batch observed
  uint64_t snapshot_swaps = 0;   // successful LoadSnapshot calls after the first
  CacheStats cache;              // current snapshot's LRU counters (disk mode)
  // serve.epoch_pin violations observed process-wide (RvRuntime counter): an
  // answer tagged with a different epoch than its batch's pinned snapshot.
  // Always 0 unless the hot-swap isolation is broken.
  uint64_t rv_violations = 0;
};

class InferenceServer {
 public:
  // The server owns one NeighborIndex over the full graph, shared by every
  // snapshot epoch (serving always samples from the full graph).
  InferenceServer(const Graph* graph, TaskKind kind, ModelConfig config,
                  ServeOptions options);

  // Loads `path` into a fresh snapshot and atomically adopts it. Safe to call
  // while requests are in flight; returns false (server unchanged) on any
  // validation or IO failure.
  bool LoadSnapshot(const std::string& path, std::string* error);

  // Scores (src, rel, candidate_j) for every candidate. Blocks until answered;
  // callable from any thread concurrently.
  ServeResult ScoreLinks(int64_t src, int32_t rel,
                         const std::vector<int64_t>& candidates);

  // Class logits for one node. Blocks until answered; thread-safe.
  ServeResult Classify(int64_t node);

  // Reference path: the same query executed alone, no batching or coalescing.
  // The determinism contract promises bitwise-identical values; tests hold the
  // batched path to this oracle. Also the execution path for layerwise models
  // (no block-diagonal merge exists for per-layer resampling).
  ServeResult ScoreLinksUnbatched(int64_t src, int32_t rel,
                                  const std::vector<int64_t>& candidates) const;
  ServeResult ClassifyUnbatched(int64_t node) const;

  uint64_t current_epoch() const;
  ServerStats stats() const;

 private:
  struct Request {
    int64_t src = 0;  // LP source / NC node
    int32_t rel = 0;
    std::vector<int64_t> candidates;  // LP only
    std::promise<ServeResult> promise;
  };
  // Per-query dedup of the rows a link query needs scored: `targets` are the
  // unique node ids (src first), src_row/cand_rows index into them.
  struct LinkPlan {
    std::vector<int64_t> targets;
    int64_t src_row = 0;
    std::vector<int64_t> cand_rows;
  };

  static LinkPlan PlanLinkQuery(int64_t src, const std::vector<int64_t>& candidates);

  // Enqueues `req` and runs the leader-follower protocol; returns the result.
  ServeResult Submit(Request req);
  // Executes one coalesced batch against one snapshot (leader thread only).
  void ExecuteBatch(const ModelSnapshot& snap,
                    std::vector<Request>& batch) const;
  ServeResult ExecuteSingle(const ModelSnapshot& snap, const Request& req) const;

  Tensor GatherBase(const ModelSnapshot& snap, const std::vector<int64_t>& nodes,
                    const ComputeContext* compute) const;

  const Graph* graph_;
  TaskKind kind_;
  ModelConfig config_;
  ServeOptions options_;
  NeighborIndex full_index_;
  uint64_t query_seed_ = 0;  // content-independent sample seed, fixed per server

  // RV monitor (serve.epoch_pin): every answer a batch produces must carry the
  // epoch of the snapshot that batch pinned. Stateless and thread-safe; mutable
  // because the execution paths are const.
  mutable RvEpochPinMonitor rv_epoch_pin_{RvInvariant::kServeEpochPin};

  mutable std::mutex mu_;
  std::shared_ptr<const ModelSnapshot> snapshot_;  // swapped by LoadSnapshot
  std::deque<Request> queue_;
  bool leader_active_ = false;
  uint64_t queries_ = 0;
  uint64_t batches_ = 0;
  int64_t max_coalesced_ = 0;
  uint64_t swaps_ = 0;
};

}  // namespace mariusgnn

#endif  // SRC_SERVE_SERVER_H_
