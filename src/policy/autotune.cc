#include "src/policy/autotune.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace mariusgnn {

AutoTuneResult AutoTune(const AutoTuneInput& input) {
  MG_CHECK(input.num_nodes > 0 && input.num_edges > 0 && input.dim > 0);
  MG_CHECK(input.cpu_bytes > 0 && input.block_bytes > 0);
  const double no = static_cast<double>(input.num_nodes) * input.dim * 4.0;
  const double eo = static_cast<double>(input.num_edges) * input.bytes_per_edge;
  const double fudge = input.fudge_bytes > 0 ? input.fudge_bytes : 0.1 * input.cpu_bytes;
  const double budget = input.cpu_bytes - fudge;

  AutoTuneResult result;
  if (no + 2.0 * eo <= budget) {
    result.fits_in_memory = true;
    return result;
  }

  // p = α4: the partition count at which the smallest disk read equals a block.
  const double alpha4 = std::min(no / input.block_bytes, std::sqrt(eo / input.block_bytes));
  int32_t p = std::max<int32_t>(4, static_cast<int32_t>(std::floor(alpha4)));

  // Maximise c subject to c*PO + 2*c^2*EBO < budget.
  auto fits = [&](int32_t c, int32_t pp) {
    const double po = no / pp;
    const double ebo = eo / (static_cast<double>(pp) * pp);
    return static_cast<double>(c) * po + 2.0 * c * c * ebo < budget;
  };
  int32_t c = 2;
  while (c + 1 <= p && fits(c + 1, p)) {
    ++c;
  }
  MG_CHECK_MSG(fits(c, p), "CPU budget too small for even two partitions in memory");

  // Round for COMET's divisibility constraints: c even, group g = c/2, p a multiple
  // of g with l = p/g = 2p/c and c_l = 2. Rounding p down raises the per-partition
  // overhead, so re-verify the fit and shrink c if the rounded geometry no longer
  // fits the budget.
  const int32_t p_base = p;
  if (c % 2 != 0) {
    --c;
  }
  c = std::max(c, 2);
  int32_t g = c / 2;
  p = std::max(c * 2, (p_base / g) * g);
  while (c > 2 && !fits(c, p)) {
    c -= 2;
    g = c / 2;
    p = std::max(c * 2, (p_base / g) * g);
  }
  MG_CHECK_MSG(fits(c, p), "rounded COMET geometry does not fit the CPU budget");
  const int32_t l = p / g;

  result.num_physical = p;
  result.num_logical = l;
  result.buffer_capacity = c;
  return result;
}

}  // namespace mariusgnn
