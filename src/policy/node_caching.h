// Node-classification partition policy (Section 5.2).
//
// Training nodes are packed into the first k physical partitions (see
// PartitionAssignment::kTrainingNodesFirst). When k < buffer capacity c, the policy
// caches those k partitions for the whole epoch and fills the remaining c-k slots with
// random partitions from disk — zero intra-epoch swaps; partitions rotate only between
// epochs. When k >= c it falls back to a random rotation that makes every partition
// resident at least once.
#ifndef SRC_POLICY_NODE_CACHING_H_
#define SRC_POLICY_NODE_CACHING_H_

#include <cstdint>
#include <vector>

#include "src/graph/partition.h"
#include "src/util/rng.h"

namespace mariusgnn {

class NodeCachingPolicy {
 public:
  // Returns the sequence of resident partition sets for one epoch. In the cached
  // regime the sequence has exactly one set.
  std::vector<std::vector<int32_t>> GenerateEpoch(const Partitioning& partitioning,
                                                  int32_t capacity, Rng& rng) const;
};

}  // namespace mariusgnn

#endif  // SRC_POLICY_NODE_CACHING_H_
