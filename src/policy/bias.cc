#include "src/policy/bias.h"

#include <algorithm>

#include "src/util/check.h"

namespace mariusgnn {

double EdgePermutationBias(const EpochPlan& plan, const Partitioning& partitioning,
                           const Graph& graph, double upper_pct, double lower_pct) {
  const int64_t n = graph.num_nodes();
  const std::vector<int64_t> totals = graph.TotalDegrees();
  std::vector<int64_t> seen(static_cast<size_t>(n), 0);
  std::vector<int64_t> active;  // nodes that participate in at least one edge
  for (int64_t v = 0; v < n; ++v) {
    if (totals[static_cast<size_t>(v)] > 0) {
      active.push_back(v);
    }
  }
  if (active.empty()) {
    return 0.0;
  }
  const size_t hi_idx =
      static_cast<size_t>(upper_pct * static_cast<double>(active.size() - 1));
  const size_t lo_idx =
      static_cast<size_t>(lower_pct * static_cast<double>(active.size() - 1));

  double bias = 0.0;
  std::vector<double> tallies(active.size());
  const auto& edges = graph.edges();
  for (size_t i = 0; i < plan.buckets_per_set.size(); ++i) {
    for (const BucketId& b : plan.buckets_per_set[i]) {
      for (int64_t e : partitioning.Bucket(b.first, b.second)) {
        ++seen[static_cast<size_t>(edges[static_cast<size_t>(e)].src)];
        ++seen[static_cast<size_t>(edges[static_cast<size_t>(e)].dst)];
      }
    }
    // Skip the trailing state (all tallies equal 1.0 -> d == 0 by construction).
    if (i + 1 == plan.buckets_per_set.size()) {
      break;
    }
    for (size_t k = 0; k < active.size(); ++k) {
      const int64_t v = active[k];
      tallies[k] = static_cast<double>(seen[static_cast<size_t>(v)]) /
                   static_cast<double>(totals[static_cast<size_t>(v)]);
    }
    std::nth_element(tallies.begin(), tallies.begin() + static_cast<int64_t>(hi_idx),
                     tallies.end());
    const double hi = tallies[hi_idx];
    std::nth_element(tallies.begin(), tallies.begin() + static_cast<int64_t>(lo_idx),
                     tallies.begin() + static_cast<int64_t>(hi_idx) + 1);
    const double lo = tallies[lo_idx];
    bias = std::max(bias, hi - lo);
  }
  return bias;
}

}  // namespace mariusgnn
