#include "src/policy/beta.h"

#include "src/policy/cover.h"

namespace mariusgnn {

EpochPlan BetaPolicy::GenerateEpoch(const Partitioning& partitioning, int32_t capacity,
                                    Rng& rng) {
  (void)rng;  // BETA is deterministic: its ordering depends only on (p, capacity).
  CoverPlan cover = GreedyCoverOneSwap(partitioning.num_partitions(), capacity);
  EpochPlan plan;
  plan.sets = cover.sets;
  plan.buckets_per_set.resize(cover.sets.size());
  for (size_t i = 0; i < cover.sets.size(); ++i) {
    for (const auto& [a, b] : cover.new_pairs[i]) {
      // Eager assignment: both bucket orders of a freshly covered pair are trained on
      // immediately while S_i is resident.
      if (partitioning.BucketSize(a, b) > 0) {
        plan.buckets_per_set[i].emplace_back(a, b);
      }
      if (a != b && partitioning.BucketSize(b, a) > 0) {
        plan.buckets_per_set[i].emplace_back(b, a);
      }
    }
  }
  return plan;
}

}  // namespace mariusgnn
