#include "src/policy/beta.h"

#include "src/policy/cover.h"
#include "src/util/check.h"

namespace mariusgnn {

std::vector<int32_t> BetaPolicy::Lookahead(const EpochPlan& plan,
                                           int64_t set_index) const {
  std::vector<int32_t> delta = OrderingPolicy::Lookahead(plan, set_index);
  MG_CHECK_MSG(delta.size() <= 1, "BETA plan violated the one-swap property");
  return delta;
}

EpochPlan BetaPolicy::GenerateEpoch(const Partitioning& partitioning, int32_t capacity,
                                    Rng& rng) {
  (void)rng;  // BETA is deterministic: its ordering depends only on (p, capacity).
  CoverPlan cover = GreedyCoverOneSwap(partitioning.num_partitions(), capacity);
  EpochPlan plan;
  plan.sets = cover.sets;
  plan.buckets_per_set.resize(cover.sets.size());
  for (size_t i = 0; i < cover.sets.size(); ++i) {
    for (const auto& [a, b] : cover.new_pairs[i]) {
      // Eager assignment: both bucket orders of a freshly covered pair are trained on
      // immediately while S_i is resident.
      if (partitioning.BucketSize(a, b) > 0) {
        plan.buckets_per_set[i].emplace_back(a, b);
      }
      if (a != b && partitioning.BucketSize(b, a) > 0) {
        plan.buckets_per_set[i].emplace_back(b, a);
      }
    }
  }
  return plan;
}

}  // namespace mariusgnn
