#include "src/policy/cover.h"

#include <algorithm>

#include "src/util/check.h"

namespace mariusgnn {

namespace {

class PairTracker {
 public:
  explicit PairTracker(int32_t n) : n_(n), covered_(static_cast<size_t>(n) * n, false) {}

  bool Covered(int32_t a, int32_t b) const {
    return covered_[Key(a, b)];
  }

  void Cover(int32_t a, int32_t b) { covered_[Key(a, b)] = true; }

  bool AllCovered() const {
    for (int32_t a = 0; a < n_; ++a) {
      for (int32_t b = a; b < n_; ++b) {
        if (!covered_[Key(a, b)]) {
          return false;
        }
      }
    }
    return true;
  }

 private:
  size_t Key(int32_t a, int32_t b) const {
    if (a > b) {
      std::swap(a, b);
    }
    return static_cast<size_t>(a) * n_ + b;
  }

  int32_t n_;
  std::vector<bool> covered_;
};

}  // namespace

CoverPlan GreedyCoverOneSwap(int32_t n, int32_t capacity) {
  MG_CHECK(n >= 1);
  CoverPlan plan;
  if (capacity >= n) {
    std::vector<int32_t> all(static_cast<size_t>(n));
    std::vector<std::pair<int32_t, int32_t>> pairs;
    for (int32_t a = 0; a < n; ++a) {
      all[static_cast<size_t>(a)] = a;
      for (int32_t b = a; b < n; ++b) {
        pairs.emplace_back(a, b);
      }
    }
    plan.sets.push_back(std::move(all));
    plan.new_pairs.push_back(std::move(pairs));
    return plan;
  }
  MG_CHECK_MSG(capacity >= 2, "pair cover requires capacity >= 2");

  PairTracker tracker(n);
  std::vector<int32_t> mem(static_cast<size_t>(capacity));
  std::vector<bool> resident(static_cast<size_t>(n), false);
  std::vector<std::pair<int32_t, int32_t>> fresh;
  for (int32_t a = 0; a < capacity; ++a) {
    mem[static_cast<size_t>(a)] = a;
    resident[static_cast<size_t>(a)] = true;
  }
  for (int32_t a = 0; a < capacity; ++a) {
    for (int32_t b = a; b < capacity; ++b) {
      tracker.Cover(a, b);
      fresh.emplace_back(a, b);
    }
  }
  plan.sets.push_back(mem);
  plan.new_pairs.push_back(std::move(fresh));

  // Remaining uncovered pairs per partition (drives both swap-in and evict choices).
  std::vector<int32_t> uncovered_count(static_cast<size_t>(n), 0);
  for (int32_t a = 0; a < n; ++a) {
    for (int32_t b = 0; b < n; ++b) {
      if (a != b && !tracker.Covered(a, b)) {
        ++uncovered_count[static_cast<size_t>(a)];
      }
    }
    if (!tracker.Covered(a, a)) {
      ++uncovered_count[static_cast<size_t>(a)];
    }
  }

  while (!tracker.AllCovered()) {
    // Swap-in choice: the non-resident partition q with the most uncovered pairs
    // against the current residents (eager gain).
    int32_t best_q = -1;
    int32_t best_gain = -1;
    int32_t best_potential = -1;
    for (int32_t q = 0; q < n; ++q) {
      if (resident[static_cast<size_t>(q)]) {
        continue;
      }
      int32_t gain = tracker.Covered(q, q) ? 0 : 1;
      for (int32_t m : mem) {
        if (!tracker.Covered(q, m)) {
          ++gain;
        }
      }
      // Tie-break on total remaining uncovered pairs so zero-gain steps still make
      // progress toward pairs whose members are both non-resident.
      const int32_t potential = uncovered_count[static_cast<size_t>(q)];
      if (gain > best_gain || (gain == best_gain && potential > best_potential)) {
        best_gain = gain;
        best_potential = potential;
        best_q = q;
      }
    }
    MG_CHECK(best_q >= 0 && best_potential > 0);

    // Evict choice: the resident with the fewest remaining uncovered pairs overall,
    // skipping residents that still have an uncovered pair with best_q.
    int32_t evict_idx = -1;
    int32_t evict_score = 0;
    for (size_t idx = 0; idx < mem.size(); ++idx) {
      const int32_t e = mem[idx];
      const int32_t penalty = tracker.Covered(best_q, e) ? 0 : 1000000;
      const int32_t score = uncovered_count[static_cast<size_t>(e)] + penalty;
      if (evict_idx < 0 || score < evict_score) {
        evict_idx = static_cast<int32_t>(idx);
        evict_score = score;
      }
    }

    resident[static_cast<size_t>(mem[static_cast<size_t>(evict_idx)])] = false;
    mem[static_cast<size_t>(evict_idx)] = best_q;
    resident[static_cast<size_t>(best_q)] = true;

    fresh.clear();
    for (int32_t m : mem) {
      if (!tracker.Covered(best_q, m)) {
        tracker.Cover(best_q, m);
        const int32_t a = std::min(best_q, m);
        const int32_t b = std::max(best_q, m);
        fresh.emplace_back(a, b);
        if (a != b) {
          --uncovered_count[static_cast<size_t>(a)];
          --uncovered_count[static_cast<size_t>(b)];
        } else {
          --uncovered_count[static_cast<size_t>(a)];
        }
      }
    }
    plan.sets.push_back(mem);
    plan.new_pairs.push_back(fresh);
  }
  return plan;
}

}  // namespace mariusgnn
