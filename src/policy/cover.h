// Greedy one-swap pair-cover: the sequence generator shared by BETA (over physical
// partitions) and COMET (over logical partitions).
//
// Produces a sequence of sets of size `capacity` over [0, n) such that every unordered
// pair {a, b} (including a == b) is contained in at least one set, consecutive sets
// differ by exactly one element, and the number of swaps is greedily minimised — the
// one-swap greedy shown in prior work (Marius) to achieve near-lower-bound IO.
#ifndef SRC_POLICY_COVER_H_
#define SRC_POLICY_COVER_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace mariusgnn {

struct CoverPlan {
  std::vector<std::vector<int32_t>> sets;
  // Unordered pairs (a <= b) first covered by each set (parallel to `sets`).
  std::vector<std::vector<std::pair<int32_t, int32_t>>> new_pairs;
};

CoverPlan GreedyCoverOneSwap(int32_t n, int32_t capacity);

}  // namespace mariusgnn

#endif  // SRC_POLICY_COVER_H_
