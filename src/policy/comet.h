// COMET — COrrelation Minimizing Edge Traversal (Section 5.1, Figure 5).
//
// Two mechanisms on top of the one-swap greedy cover:
//  1) Two-level partitioning: physical partitions are randomly grouped into logical
//     partitions at the start of each epoch (a dictionary only — no data movement);
//     the cover runs over logical partitions, so each swap moves a whole group and the
//     turnover of graph data per S_i is high even though physical partitions are small.
//  2) Randomized deferred bucket assignment: each edge bucket is assigned to a
//     uniformly random S_i among all S_i that contain both of its partitions, which
//     de-correlates consecutive training examples and balances |X_i| in expectation.
#ifndef SRC_POLICY_COMET_H_
#define SRC_POLICY_COMET_H_

#include "src/policy/policy.h"

namespace mariusgnn {

class CometPolicy : public OrderingPolicy {
 public:
  // num_logical must divide the number of physical partitions, and the resulting
  // group size must divide the buffer capacity with quotient >= 2 (the paper's
  // c_l >= 2 constraint). The auto-tuning rules of Section 6 produce such values.
  //
  // The two boolean knobs ablate COMET's mechanisms (used by bench_ablation_comet):
  //  - randomize_grouping=false keeps the identity physical->logical grouping every
  //    epoch instead of a fresh random one;
  //  - deferred_assignment=false assigns each bucket eagerly to the *first* set that
  //    contains it (the greedy behaviour COMET's randomization replaces).
  explicit CometPolicy(int32_t num_logical, bool randomize_grouping = true,
                       bool deferred_assignment = true)
      : num_logical_(num_logical),
        randomize_grouping_(randomize_grouping),
        deferred_assignment_(deferred_assignment) {}

  EpochPlan GenerateEpoch(const Partitioning& partitioning, int32_t capacity,
                          Rng& rng) override;

  // COMET swaps one logical group (p / l physical partitions) per set; the override
  // asserts that the delta is a whole group so a prefetcher can stage it as a unit.
  std::vector<int32_t> Lookahead(const EpochPlan& plan,
                                 int64_t set_index) const override;

  const char* name() const override { return "COMET"; }

  int32_t num_logical() const { return num_logical_; }

 private:
  int32_t num_logical_;
  bool randomize_grouping_;
  bool deferred_assignment_;
  int32_t last_group_size_ = 0;  // physical partitions per logical group, last plan
};

}  // namespace mariusgnn

#endif  // SRC_POLICY_COMET_H_
