// Auto-tuning rules for COMET's hyperparameters (Section 6).
//
// Given the graph size, representation width, CPU memory budget, and disk block size,
// the rules produce:
//   p = α4 = min(NO / D, sqrt(EO / D))   — as many physical partitions as possible
//                                          without shrinking disk reads below a block;
//   c = max c : c·PO + 2·c²·EBO + F < CPU — the largest buffer that fits (the factor 2
//                                          accounts for the dual-sorted edge lists);
//   l = 2p / c                            — as few logical partitions as the c_l >= 2
//                                          constraint allows.
// The raw values are then rounded so that (p % (p/l) == 0) and (c % (p/l) == 0) hold,
// which CometPolicy requires.
#ifndef SRC_POLICY_AUTOTUNE_H_
#define SRC_POLICY_AUTOTUNE_H_

#include <cstdint>

namespace mariusgnn {

struct AutoTuneInput {
  int64_t num_nodes = 0;
  int64_t num_edges = 0;
  int64_t dim = 0;                      // base representation width
  double cpu_bytes = 0;                 // CPU memory budget
  double block_bytes = 512.0 * 1024;    // disk block size D
  double bytes_per_edge = 20.0;         // sizeof(Edge)
  double fudge_bytes = 0;               // working-memory reserve F (default: 10% of CPU)
};

struct AutoTuneResult {
  bool fits_in_memory = false;  // when true p == l == c == 1 (train fully in memory)
  int32_t num_physical = 1;     // p
  int32_t num_logical = 1;      // l
  int32_t buffer_capacity = 1;  // c
};

AutoTuneResult AutoTune(const AutoTuneInput& input);

}  // namespace mariusgnn

#endif  // SRC_POLICY_AUTOTUNE_H_
