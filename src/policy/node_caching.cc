#include "src/policy/node_caching.h"

#include <algorithm>

#include "src/util/check.h"

namespace mariusgnn {

std::vector<std::vector<int32_t>> NodeCachingPolicy::GenerateEpoch(
    const Partitioning& partitioning, int32_t capacity, Rng& rng) const {
  const int32_t p = partitioning.num_partitions();
  const int32_t k = partitioning.num_training_partitions();
  MG_CHECK_MSG(k > 0, "partitioning must use kTrainingNodesFirst");
  std::vector<std::vector<int32_t>> sets;

  if (k < capacity) {
    // Cached regime: training partitions pinned, remainder random.
    std::vector<int32_t> set;
    for (int32_t i = 0; i < k; ++i) {
      set.push_back(i);
    }
    std::vector<int32_t> rest;
    for (int32_t i = k; i < p; ++i) {
      rest.push_back(i);
    }
    rng.Shuffle(rest);
    const int32_t extra = std::min<int32_t>(capacity - k, static_cast<int32_t>(rest.size()));
    set.insert(set.end(), rest.begin(), rest.begin() + extra);
    sets.push_back(std::move(set));
    return sets;
  }

  // Fallback: random rotation until every partition has been resident once.
  std::vector<int32_t> order(static_cast<size_t>(p));
  for (int32_t i = 0; i < p; ++i) {
    order[static_cast<size_t>(i)] = i;
  }
  rng.Shuffle(order);
  std::vector<int32_t> resident(order.begin(), order.begin() + capacity);
  sets.push_back(resident);
  size_t next = static_cast<size_t>(capacity);
  while (next < order.size()) {
    const size_t victim = static_cast<size_t>(rng.UniformInt(resident.size()));
    resident[victim] = order[next++];
    sets.push_back(resident);
  }
  return sets;
}

}  // namespace mariusgnn
