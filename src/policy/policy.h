// Partition replacement / training-example ordering policies (Section 5).
//
// A policy produces, per epoch, the two sequences of Section 3:
//   S = {S_1, S_2, ...} — sets of physical partitions consecutively resident in the
//       buffer (each S_i fits in the buffer capacity);
//   X = {X_1, X_2, ...} — the edge buckets whose edges are used as training examples
//       while S_i is resident. Every bucket with edges is assigned to exactly one X_i,
//       and both of its partitions are members of that S_i.
#ifndef SRC_POLICY_POLICY_H_
#define SRC_POLICY_POLICY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/graph/partition.h"
#include "src/util/rng.h"

namespace mariusgnn {

using BucketId = std::pair<int32_t, int32_t>;

struct EpochPlan {
  std::vector<std::vector<int32_t>> sets;            // S
  std::vector<std::vector<BucketId>> buckets_per_set;  // X (parallel to sets)

  int64_t num_sets() const { return static_cast<int64_t>(sets.size()); }

  // Total partition loads implied by the plan (IO proxy): |S_1| + one per swap.
  int64_t TotalPartitionLoads() const;
};

// Partitions of `next` not already in `current`: the minimal set a prefetcher must
// stage before the swap from `current` to `next`.
std::vector<int32_t> PrefetchDelta(const std::vector<int32_t>& current,
                                   const std::vector<int32_t>& next);

class OrderingPolicy {
 public:
  virtual ~OrderingPolicy() = default;

  // Generates S and X for one epoch over `partitioning` with buffer capacity
  // `capacity` physical partitions.
  virtual EpochPlan GenerateEpoch(const Partitioning& partitioning, int32_t capacity,
                                  Rng& rng) = 0;

  // Partitions that must be staged so plan.sets[set_index + 1] can become resident
  // without synchronous IO (fed to PartitionBuffer::Prefetch while set_index is
  // training). Returns empty at the end of the plan. The default is the set delta;
  // policies override it to assert their swap shape (BETA: at most one physical
  // partition per swap; COMET: exactly one logical group).
  virtual std::vector<int32_t> Lookahead(const EpochPlan& plan,
                                         int64_t set_index) const;

  virtual const char* name() const = 0;
};

// Validates plan invariants: every non-empty bucket assigned exactly once, to a set
// containing both endpoints, and every set fits the buffer. Aborts on violation.
void ValidatePlan(const EpochPlan& plan, const Partitioning& partitioning,
                  int32_t capacity);

}  // namespace mariusgnn

#endif  // SRC_POLICY_POLICY_H_
