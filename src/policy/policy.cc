#include "src/policy/policy.h"

#include <set>
#include <unordered_set>

#include "src/util/check.h"

namespace mariusgnn {

int64_t EpochPlan::TotalPartitionLoads() const {
  if (sets.empty()) {
    return 0;
  }
  int64_t loads = static_cast<int64_t>(sets.front().size());
  for (size_t i = 1; i < sets.size(); ++i) {
    std::unordered_set<int32_t> prev(sets[i - 1].begin(), sets[i - 1].end());
    for (int32_t part : sets[i]) {
      if (prev.find(part) == prev.end()) {
        ++loads;
      }
    }
  }
  return loads;
}

std::vector<int32_t> PrefetchDelta(const std::vector<int32_t>& current,
                                   const std::vector<int32_t>& next) {
  std::unordered_set<int32_t> resident(current.begin(), current.end());
  std::vector<int32_t> delta;
  for (int32_t part : next) {
    if (resident.find(part) == resident.end()) {
      delta.push_back(part);
    }
  }
  return delta;
}

std::vector<int32_t> OrderingPolicy::Lookahead(const EpochPlan& plan,
                                               int64_t set_index) const {
  MG_CHECK(set_index >= 0 && set_index < plan.num_sets());
  if (set_index + 1 >= plan.num_sets()) {
    return {};
  }
  return PrefetchDelta(plan.sets[static_cast<size_t>(set_index)],
                       plan.sets[static_cast<size_t>(set_index) + 1]);
}

void ValidatePlan(const EpochPlan& plan, const Partitioning& partitioning,
                  int32_t capacity) {
  MG_CHECK(plan.sets.size() == plan.buckets_per_set.size());
  const int32_t p = partitioning.num_partitions();
  std::set<BucketId> assigned;
  for (size_t i = 0; i < plan.sets.size(); ++i) {
    MG_CHECK(static_cast<int32_t>(plan.sets[i].size()) <= capacity);
    std::unordered_set<int32_t> members(plan.sets[i].begin(), plan.sets[i].end());
    MG_CHECK_MSG(members.size() == plan.sets[i].size(), "duplicate partition in set");
    for (const BucketId& b : plan.buckets_per_set[i]) {
      MG_CHECK(members.count(b.first) == 1 && members.count(b.second) == 1);
      MG_CHECK_MSG(assigned.insert(b).second, "bucket assigned twice");
    }
  }
  for (int32_t i = 0; i < p; ++i) {
    for (int32_t j = 0; j < p; ++j) {
      if (partitioning.BucketSize(i, j) > 0) {
        MG_CHECK_MSG(assigned.count({i, j}) == 1, "non-empty bucket never assigned");
      }
    }
  }
}

}  // namespace mariusgnn
