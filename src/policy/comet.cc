#include "src/policy/comet.h"

#include <map>

#include "src/policy/cover.h"
#include "src/util/check.h"

namespace mariusgnn {

EpochPlan CometPolicy::GenerateEpoch(const Partitioning& partitioning, int32_t capacity,
                                     Rng& rng) {
  const int32_t p = partitioning.num_partitions();
  const int32_t l = num_logical_;
  MG_CHECK_MSG(p % l == 0, "num_logical must divide num_partitions");
  const int32_t group = p / l;
  MG_CHECK_MSG(capacity % group == 0, "group size must divide buffer capacity");
  const int32_t logical_capacity = capacity / group;
  MG_CHECK_MSG(logical_capacity >= 2 || l == 1, "COMET requires c_l >= 2");

  last_group_size_ = group;

  // Mechanism 1: random physical -> logical grouping (dictionary only).
  std::vector<int32_t> perm(static_cast<size_t>(p));
  for (int32_t i = 0; i < p; ++i) {
    perm[static_cast<size_t>(i)] = i;
  }
  if (randomize_grouping_) {
    rng.Shuffle(perm);
  }
  std::vector<int32_t> logical_of(static_cast<size_t>(p));
  std::vector<std::vector<int32_t>> members(static_cast<size_t>(l));
  for (int32_t i = 0; i < p; ++i) {
    const int32_t lg = i / group;
    logical_of[static_cast<size_t>(perm[static_cast<size_t>(i)])] = lg;
    members[static_cast<size_t>(lg)].push_back(perm[static_cast<size_t>(i)]);
  }

  // One-swap greedy cover over logical partitions.
  CoverPlan cover = GreedyCoverOneSwap(l, logical_capacity);

  EpochPlan plan;
  plan.sets.resize(cover.sets.size());
  plan.buckets_per_set.resize(cover.sets.size());
  for (size_t i = 0; i < cover.sets.size(); ++i) {
    for (int32_t lg : cover.sets[i]) {
      const auto& m = members[static_cast<size_t>(lg)];
      plan.sets[i].insert(plan.sets[i].end(), m.begin(), m.end());
    }
  }

  // Index: logical pair -> set indices containing both.
  std::map<std::pair<int32_t, int32_t>, std::vector<int32_t>> sets_with_pair;
  for (size_t i = 0; i < cover.sets.size(); ++i) {
    const auto& s = cover.sets[i];
    for (size_t a = 0; a < s.size(); ++a) {
      for (size_t b = a; b < s.size(); ++b) {
        const int32_t x = std::min(s[a], s[b]);
        const int32_t y = std::max(s[a], s[b]);
        sets_with_pair[{x, y}].push_back(static_cast<int32_t>(i));
      }
    }
  }

  // Mechanism 2: randomized deferred bucket assignment.
  for (int32_t i = 0; i < p; ++i) {
    for (int32_t j = 0; j < p; ++j) {
      if (partitioning.BucketSize(i, j) == 0) {
        continue;
      }
      const int32_t li = logical_of[static_cast<size_t>(i)];
      const int32_t lj = logical_of[static_cast<size_t>(j)];
      const auto it = sets_with_pair.find({std::min(li, lj), std::max(li, lj)});
      MG_CHECK_MSG(it != sets_with_pair.end(), "cover missed a logical pair");
      const auto& candidates = it->second;
      const int32_t pick =
          deferred_assignment_
              ? candidates[static_cast<size_t>(rng.UniformInt(candidates.size()))]
              : candidates.front();
      plan.buckets_per_set[static_cast<size_t>(pick)].emplace_back(i, j);
    }
  }
  return plan;
}

std::vector<int32_t> CometPolicy::Lookahead(const EpochPlan& plan,
                                            int64_t set_index) const {
  std::vector<int32_t> delta = OrderingPolicy::Lookahead(plan, set_index);
  if (last_group_size_ > 0) {
    MG_CHECK_MSG(delta.empty() ||
                     static_cast<int32_t>(delta.size()) == last_group_size_,
                 "COMET swap is not a whole logical group");
  }
  return delta;
}

}  // namespace mariusgnn
