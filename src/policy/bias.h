// Edge Permutation Bias B (Section 6): a proxy metric for how correlated the training
// example order produced by an EpochPlan is.
//
// For each node v, a cumulative tally t_v of edges containing v is maintained as the
// X_i are consumed in order, normalised so t_v = 1 at epoch end. After each X_i,
// d_i = spread of the tallies; B = max_i d_i ∈ [0, 1]. Low B means the epoch touches
// all nodes' edges evenly; high B means many edges of a few nodes are processed in a
// burst (the greedy-policy pathology of Figure 4).
//
// Deviation from the paper: the paper uses the raw max-min spread under a uniform
// degree assumption. On power-law graphs any degree-1 node saturates its tally on its
// first edge, pinning max-min at 1.0 for every multi-set plan. We therefore measure
// the spread between configurable percentiles (default 95th-5th), which recovers the
// paper's dynamic range while preserving the metric's meaning.
#ifndef SRC_POLICY_BIAS_H_
#define SRC_POLICY_BIAS_H_

#include "src/graph/graph.h"
#include "src/policy/policy.h"

namespace mariusgnn {

double EdgePermutationBias(const EpochPlan& plan, const Partitioning& partitioning,
                           const Graph& graph, double upper_pct = 0.95,
                           double lower_pct = 0.05);

}  // namespace mariusgnn

#endif  // SRC_POLICY_BIAS_H_
