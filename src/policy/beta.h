// BETA — the Buffer-aware Edge Traversal Algorithm from Marius (Mohoney et al., OSDI
// 2021), reimplemented here as the SoTA greedy baseline of Sections 5.1 and 7.5.
//
// BETA greedily minimises IO with one-physical-partition swaps and processes every
// newly available edge bucket *eagerly*: all training examples of X_{i+1} share an
// endpoint in the swapped-in partition (the correlation illustrated in Figure 4),
// which is what degrades GNN accuracy relative to COMET.
#ifndef SRC_POLICY_BETA_H_
#define SRC_POLICY_BETA_H_

#include "src/policy/policy.h"

namespace mariusgnn {

class BetaPolicy : public OrderingPolicy {
 public:
  EpochPlan GenerateEpoch(const Partitioning& partitioning, int32_t capacity,
                          Rng& rng) override;

  // BETA swaps exactly one physical partition per set; the override asserts that
  // invariant so a prefetcher can rely on single-partition staging.
  std::vector<int32_t> Lookahead(const EpochPlan& plan,
                                 int64_t set_index) const override;

  const char* name() const override { return "BETA"; }
};

}  // namespace mariusgnn

#endif  // SRC_POLICY_BETA_H_
