// Node base-representation storage (the "lookup table" of Section 2).
//
// EmbeddingStore abstracts where base representations live:
//  - InMemoryEmbeddingStore keeps everything in RAM (M-GNN_Mem configurations);
//  - BufferedEmbeddingStore reads/writes rows through a PartitionBuffer, so only the
//    resident partitions are accessible (M-GNN_Disk configurations).
//
// For learnable representations (link prediction), ApplyGradients performs the sparse
// per-row Adagrad update the paper's pipeline executes on the CPU after each batch
// (Figure 2, step 6: "write repr. updates to CPU").
#ifndef SRC_STORAGE_EMBEDDING_STORE_H_
#define SRC_STORAGE_EMBEDDING_STORE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/storage/partition_buffer.h"
#include "src/tensor/tensor.h"
#include "src/util/compute.h"
#include "src/util/rng.h"

namespace mariusgnn {

class EmbeddingStore {
 public:
  virtual ~EmbeddingStore() = default;

  // Stage-3 parallel-compute handle. Gather and ApplyGradients shard the node list
  // into fixed chunks; `nodes` must not contain duplicates (guaranteed by the batch
  // builders, which dedup targets), so chunks touch disjoint rows and any pool size
  // produces identical bits (null = serial). The buffered store also marks dirty
  // from inside the chunks — PartitionBuffer's per-slot atomic byte flags make that
  // safe from worker threads.
  void set_compute(const ComputeContext* compute) { compute_ = compute; }

  virtual int64_t dim() const = 0;

  // out[i] = row(nodes[i]); out is resized to |nodes| x dim.
  virtual void Gather(const std::vector<int64_t>& nodes, Tensor* out) const = 0;

  // Sparse Adagrad: for each i, row(nodes[i]) -= lr * g / sqrt(acc + eps) with
  // acc += g^2 elementwise. `grads` rows parallel `nodes` (distinct rows).
  virtual void ApplyGradients(const std::vector<int64_t>& nodes, const Tensor& grads,
                              float lr) = 0;

 protected:
  const ComputeContext* compute_ = nullptr;
};

class InMemoryEmbeddingStore : public EmbeddingStore {
 public:
  // Random-initialised learnable embeddings.
  InMemoryEmbeddingStore(int64_t num_nodes, int64_t dim, float init_scale, Rng& rng)
      : values_(Tensor::Uniform(num_nodes, dim, init_scale, rng)),
        state_(num_nodes, dim) {}

  // Fixed features (ApplyGradients becomes a no-op when `trainable` is false).
  InMemoryEmbeddingStore(Tensor values, bool trainable)
      : values_(std::move(values)),
        state_(trainable ? Tensor(values_.rows(), values_.cols()) : Tensor()),
        trainable_(trainable) {}

  int64_t dim() const override { return values_.cols(); }
  void Gather(const std::vector<int64_t>& nodes, Tensor* out) const override;
  void ApplyGradients(const std::vector<int64_t>& nodes, const Tensor& grads,
                      float lr) override;

  const Tensor& values() const { return values_; }
  // Adagrad accumulator table (zero rows for fixed-feature stores).
  const Tensor& state() const { return state_; }

  // Checkpoint restore: replaces values and accumulator state wholesale. Shapes
  // must match the store's current geometry.
  void Restore(Tensor values, Tensor state) {
    MG_CHECK(values.rows() == values_.rows() && values.cols() == values_.cols());
    MG_CHECK(state.rows() == state_.rows() && state.cols() == state_.cols());
    values_ = std::move(values);
    state_ = std::move(state);
  }

 private:
  Tensor values_;
  Tensor state_;
  bool trainable_ = true;
};

class BufferedEmbeddingStore : public EmbeddingStore {
 public:
  // `trainable` must match the buffer's `learnable` flag.
  BufferedEmbeddingStore(PartitionBuffer* buffer, bool trainable)
      : buffer_(buffer), trainable_(trainable) {}

  int64_t dim() const override { return buffer_->dim(); }
  void Gather(const std::vector<int64_t>& nodes, Tensor* out) const override;
  void ApplyGradients(const std::vector<int64_t>& nodes, const Tensor& grads,
                      float lr) override;

 private:
  PartitionBuffer* buffer_;
  bool trainable_;
};

}  // namespace mariusgnn

#endif  // SRC_STORAGE_EMBEDDING_STORE_H_
