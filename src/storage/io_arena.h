// Aligned slab arena backing the partition buffer's IO path.
//
// O_DIRECT transfers require sector-aligned buffers, offsets, and lengths, and the
// hot partition buffer should not pay a page-cache double-copy for data that lives
// in its own slots anyway. This file provides the two allocation primitives the
// storage engine builds on:
//
//  - AlignedBuffer: a 4 KiB-aligned, zero-initialised float array used for the
//    resident partition slots themselves (values + Adagrad state). The whole
//    region is madvise(MADV_HUGEPAGE)d so the kernel can back the hot buffer with
//    huge pages, cutting TLB pressure on the row-gather/scatter path.
//  - IoArena: a fixed pool of equal-sized 4 KiB-aligned slots that stage
//    partitions between disk and the buffer (prefetched reads waiting to be
//    installed, eviction snapshots waiting to be written back). Acquire blocks
//    until a slot frees, bounding staging memory to num_slots * slot_bytes.
//
// Both allocations are plain anonymous memory: madvise failures (non-Linux, THP
// disabled) are silently ignored — alignment, not huge pages, is the correctness
// requirement.
#ifndef SRC_STORAGE_IO_ARENA_H_
#define SRC_STORAGE_IO_ARENA_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

namespace mariusgnn {

// 4 KiB: covers the direct-IO alignment of every common logical block size and is
// the x86/arm64 base page size the hugepage madvise rounds from.
inline constexpr size_t kIoAlignment = 4096;

inline constexpr size_t AlignUpIo(size_t n) {
  return (n + kIoAlignment - 1) & ~(kIoAlignment - 1);
}

// Page-aligned, zero-initialised float storage with hugepage advice. Move-only.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(size_t count);
  ~AlignedBuffer();

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;

  float* data() { return data_; }
  const float* data() const { return data_; }
  float& operator[](size_t i) { return data_[i]; }
  const float& operator[](size_t i) const { return data_[i]; }
  size_t size() const { return size_; }

 private:
  float* data_ = nullptr;
  size_t size_ = 0;
};

// Fixed pool of equal-sized aligned slots. Acquire/Release are thread-safe;
// Acquire blocks until a slot is free (callers size the pool so the steady-state
// working set — staged reads + in-flight write-backs — always fits).
class IoArena {
 public:
  IoArena(size_t slot_bytes, int num_slots);
  ~IoArena();

  IoArena(const IoArena&) = delete;
  IoArena& operator=(const IoArena&) = delete;

  size_t slot_bytes() const { return slot_bytes_; }
  int num_slots() const { return num_slots_; }
  int FreeSlots() const;

  float* Acquire();
  void Release(float* slot);

 private:
  size_t slot_bytes_ = 0;  // rounded up to kIoAlignment
  int num_slots_ = 0;
  char* base_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<float*> free_;  // guarded by mu_
};

}  // namespace mariusgnn

#endif  // SRC_STORAGE_IO_ARENA_H_
