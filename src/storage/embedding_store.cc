#include "src/storage/embedding_store.h"

#include <cmath>
#include <cstring>

#include "src/util/check.h"

namespace mariusgnn {

namespace {
constexpr float kAdagradEps = 1e-10f;
}  // namespace

void InMemoryEmbeddingStore::Gather(const std::vector<int64_t>& nodes, Tensor* out) const {
  *out = Tensor(static_cast<int64_t>(nodes.size()), values_.cols());
  for (size_t i = 0; i < nodes.size(); ++i) {
    std::memcpy(out->RowPtr(static_cast<int64_t>(i)), values_.RowPtr(nodes[i]),
                static_cast<size_t>(values_.cols()) * sizeof(float));
  }
}

void InMemoryEmbeddingStore::ApplyGradients(const std::vector<int64_t>& nodes,
                                            const Tensor& grads, float lr) {
  if (!trainable_) {
    return;
  }
  MG_CHECK(static_cast<int64_t>(nodes.size()) == grads.rows());
  const int64_t d = values_.cols();
  for (size_t i = 0; i < nodes.size(); ++i) {
    float* row = values_.RowPtr(nodes[i]);
    float* acc = state_.RowPtr(nodes[i]);
    const float* g = grads.RowPtr(static_cast<int64_t>(i));
    for (int64_t k = 0; k < d; ++k) {
      acc[k] += g[k] * g[k];
      row[k] -= lr * g[k] / (std::sqrt(acc[k]) + kAdagradEps);
    }
  }
}

void BufferedEmbeddingStore::Gather(const std::vector<int64_t>& nodes, Tensor* out) const {
  const int64_t d = buffer_->dim();
  *out = Tensor(static_cast<int64_t>(nodes.size()), d);
  for (size_t i = 0; i < nodes.size(); ++i) {
    std::memcpy(out->RowPtr(static_cast<int64_t>(i)), buffer_->ValueRow(nodes[i]),
                static_cast<size_t>(d) * sizeof(float));
  }
}

void BufferedEmbeddingStore::ApplyGradients(const std::vector<int64_t>& nodes,
                                            const Tensor& grads, float lr) {
  if (!trainable_) {
    return;
  }
  MG_CHECK(static_cast<int64_t>(nodes.size()) == grads.rows());
  const int64_t d = buffer_->dim();
  for (size_t i = 0; i < nodes.size(); ++i) {
    float* row = buffer_->ValueRow(nodes[i]);
    float* acc = buffer_->StateRow(nodes[i]);
    const float* g = grads.RowPtr(static_cast<int64_t>(i));
    for (int64_t k = 0; k < d; ++k) {
      acc[k] += g[k] * g[k];
      row[k] -= lr * g[k] / (std::sqrt(acc[k]) + kAdagradEps);
    }
    buffer_->MarkDirty(nodes[i]);
  }
}

}  // namespace mariusgnn
