#include "src/storage/embedding_store.h"

#include <cmath>
#include <cstring>

#include "src/util/check.h"

namespace mariusgnn {

namespace {
constexpr float kAdagradEps = 1e-10f;
}  // namespace

void InMemoryEmbeddingStore::Gather(const std::vector<int64_t>& nodes, Tensor* out) const {
  *out = Tensor(static_cast<int64_t>(nodes.size()), values_.cols());
  ForEachChunk(compute_, static_cast<int64_t>(nodes.size()), kComputeGrainRows,
               [&](int64_t, int64_t begin, int64_t end) {
                 for (int64_t i = begin; i < end; ++i) {
                   std::memcpy(out->RowPtr(i), values_.RowPtr(nodes[static_cast<size_t>(i)]),
                               static_cast<size_t>(values_.cols()) * sizeof(float));
                 }
               });
}

void InMemoryEmbeddingStore::ApplyGradients(const std::vector<int64_t>& nodes,
                                            const Tensor& grads, float lr) {
  if (!trainable_) {
    return;
  }
  MG_CHECK(static_cast<int64_t>(nodes.size()) == grads.rows());
  const int64_t d = values_.cols();
  // Sharded sparse Adagrad: fixed node chunks, each row belongs to exactly one
  // chunk (nodes are distinct), so the update is deterministic for any pool size.
  ForEachChunk(compute_, static_cast<int64_t>(nodes.size()), kComputeGrainRows,
               [&](int64_t, int64_t begin, int64_t end) {
                 for (int64_t i = begin; i < end; ++i) {
                   float* row = values_.RowPtr(nodes[static_cast<size_t>(i)]);
                   float* acc = state_.RowPtr(nodes[static_cast<size_t>(i)]);
                   const float* g = grads.RowPtr(i);
                   for (int64_t k = 0; k < d; ++k) {
                     acc[k] += g[k] * g[k];
                     row[k] -= lr * g[k] / (std::sqrt(acc[k]) + kAdagradEps);
                   }
                 }
               });
}

void BufferedEmbeddingStore::Gather(const std::vector<int64_t>& nodes, Tensor* out) const {
  const int64_t d = buffer_->dim();
  *out = Tensor(static_cast<int64_t>(nodes.size()), d);
  ForEachChunk(compute_, static_cast<int64_t>(nodes.size()), kComputeGrainRows,
               [&](int64_t, int64_t begin, int64_t end) {
                 for (int64_t i = begin; i < end; ++i) {
                   std::memcpy(out->RowPtr(i), buffer_->ValueRow(nodes[static_cast<size_t>(i)]),
                               static_cast<size_t>(d) * sizeof(float));
                 }
               });
}

void BufferedEmbeddingStore::ApplyGradients(const std::vector<int64_t>& nodes,
                                            const Tensor& grads, float lr) {
  if (!trainable_) {
    return;
  }
  MG_CHECK(static_cast<int64_t>(nodes.size()) == grads.rows());
  const int64_t d = buffer_->dim();
  // Dirty marking rides inside the parallel chunks: the flags are per-slot relaxed
  // atomic bytes (see PartitionBuffer::MarkDirty), so worker threads can mark
  // while they update rows instead of a second serial pass over the node list.
  ForEachChunk(compute_, static_cast<int64_t>(nodes.size()), kComputeGrainRows,
               [&](int64_t, int64_t begin, int64_t end) {
                 for (int64_t i = begin; i < end; ++i) {
                   float* row = buffer_->ValueRow(nodes[static_cast<size_t>(i)]);
                   float* acc = buffer_->StateRow(nodes[static_cast<size_t>(i)]);
                   const float* g = grads.RowPtr(i);
                   for (int64_t k = 0; k < d; ++k) {
                     acc[k] += g[k] * g[k];
                     row[k] -= lr * g[k] / (std::sqrt(acc[k]) + kAdagradEps);
                   }
                   buffer_->MarkDirty(nodes[static_cast<size_t>(i)]);
                 }
               });
}

}  // namespace mariusgnn
