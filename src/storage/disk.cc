#include "src/storage/disk.h"

namespace mariusgnn {

void SimulatedDisk::Read(void* dst, size_t bytes, uint64_t offset) {
  if (bytes == 0) {
    return;
  }
  file_.ReadAt(dst, bytes, offset);
  stats_.bytes_read += bytes;
  const uint64_t ops = OpsFor(bytes);
  stats_.read_ops += ops;
  stats_.modeled_seconds += model_.SecondsFor(bytes, ops);
}

void SimulatedDisk::Write(const void* src, size_t bytes, uint64_t offset) {
  if (bytes == 0) {
    return;
  }
  file_.WriteAt(src, bytes, offset);
  stats_.bytes_written += bytes;
  const uint64_t ops = OpsFor(bytes);
  stats_.write_ops += ops;
  stats_.modeled_seconds += model_.SecondsFor(bytes, ops);
}

}  // namespace mariusgnn
