#include "src/storage/disk.h"

#include <cstdint>

#include "src/storage/io_arena.h"

namespace mariusgnn {

SimulatedDisk::SimulatedDisk(const std::string& path, DiskModel model, bool direct_io)
    : file_(path, /*truncate=*/true), model_(model) {
  if (direct_io) {
    // Opened after the buffered descriptor created the file; null means the
    // filesystem refused O_DIRECT and every transfer stays buffered.
    direct_file_ = File::TryOpenDirect(path);
  }
}

bool SimulatedDisk::DirectEligible(const void* buf, size_t bytes,
                                   uint64_t offset) const {
  return direct_file_ != nullptr &&
         reinterpret_cast<uintptr_t>(buf) % kIoAlignment == 0 &&
         bytes % kIoAlignment == 0 && offset % kIoAlignment == 0;
}

double SimulatedDisk::Read(void* dst, size_t bytes, uint64_t offset) {
  if (bytes == 0) {
    return 0.0;
  }
  const bool direct = DirectEligible(dst, bytes, offset);
  (direct ? *direct_file_ : file_).ReadAt(dst, bytes, offset);
  const uint64_t ops = OpsFor(bytes);
  const double seconds = model_.SecondsFor(bytes, ops);
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.bytes_read += bytes;
  stats_.read_ops += ops;
  stats_.direct_ops += direct ? ops : 0;
  stats_.modeled_seconds += seconds;
  return seconds;
}

double SimulatedDisk::Write(const void* src, size_t bytes, uint64_t offset) {
  if (bytes == 0) {
    return 0.0;
  }
  const bool direct = DirectEligible(src, bytes, offset);
  (direct ? *direct_file_ : file_).WriteAt(src, bytes, offset);
  const uint64_t ops = OpsFor(bytes);
  const double seconds = model_.SecondsFor(bytes, ops);
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.bytes_written += bytes;
  stats_.write_ops += ops;
  stats_.direct_ops += direct ? ops : 0;
  stats_.modeled_seconds += seconds;
  return seconds;
}

}  // namespace mariusgnn
