#include "src/storage/partition_buffer.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace mariusgnn {

namespace {

// Staging pool size, in partition extents: worst case is one full buffer of
// staged prefetches, one of stale prefetches awaiting discard, and one of
// eviction snapshots in flight, plus a request per IO worker. Only the trainer
// thread blocks on slot exhaustion (IO workers never Acquire), so the bound is
// about memory, not liveness.
int ArenaSlots(int32_t capacity, int queue_depth) {
  return 3 * capacity + queue_depth;
}

std::string DirName(const std::string& path) {
  const size_t pos = path.rfind('/');
  if (pos == std::string::npos) {
    return ".";
  }
  return pos == 0 ? "/" : path.substr(0, pos);
}

}  // namespace

PartitionBuffer::PartitionBuffer(const Partitioning* partitioning, int64_t dim,
                                 int32_t capacity, const std::string& path,
                                 DiskModel model, bool learnable, const Tensor* init,
                                 PartitionIoOptions io)
    : partitioning_(partitioning),
      dim_(dim),
      capacity_(capacity),
      learnable_(learnable) {
  const int32_t p = partitioning_->num_partitions();
  MG_CHECK(capacity_ >= 1 && capacity_ <= p);
  for (int32_t i = 0; i < p; ++i) {
    max_partition_rows_ = std::max(max_partition_rows_, partitioning_->PartitionSize(i));
  }
  stream_bytes_ =
      static_cast<size_t>(max_partition_rows_) * static_cast<size_t>(dim_) * sizeof(float);
  stream_bytes_pad_ = AlignUpIo(stream_bytes_);
  partition_extent_ = (learnable_ ? 2 : 1) * stream_bytes_pad_;

  // O_DIRECT is only worth probing when the engine will issue aligned transfers;
  // the synchronous path reads exact payloads and stays buffered regardless.
  const bool direct = io.async && io.direct_io && ProbeDirectIo(DirName(path));
  disk_ = std::make_unique<SimulatedDisk>(path, model, direct);

  values_ = AlignedBuffer(static_cast<size_t>(capacity_) * max_partition_rows_ * dim_);
  if (learnable_) {
    state_ = AlignedBuffer(values_.size());
  }
  partition_in_slot_.assign(static_cast<size_t>(capacity_), -1);
  slot_of_partition_.assign(static_cast<size_t>(p), -1);
  dirty_ = std::make_unique<std::atomic<uint8_t>[]>(static_cast<size_t>(capacity_));
  for (int32_t slot = 0; slot < capacity_; ++slot) {
    dirty_[static_cast<size_t>(slot)].store(0, std::memory_order_relaxed);
  }

  // Seed the on-disk layout: each partition owns a fixed extent of
  // kIoAlignment-padded streams (values, then optional Adagrad state).
  disk_->Resize(static_cast<uint64_t>(p) * partition_extent_);
  std::vector<float> scratch(static_cast<size_t>(max_partition_rows_) * dim_, 0.0f);
  for (int32_t part = 0; part < p; ++part) {
    if (init != nullptr) {
      const auto& nodes = partitioning_->NodesIn(part);
      for (size_t k = 0; k < nodes.size(); ++k) {
        std::memcpy(&scratch[k * static_cast<size_t>(dim_)], init->RowPtr(nodes[k]),
                    static_cast<size_t>(dim_) * sizeof(float));
      }
    }
    disk_->Write(scratch.data(), StreamPayloadBytes(part), PartitionFileOffset(part));
    if (init == nullptr) {
      break;  // File is zero-filled by Resize; no need to write every partition.
    }
  }
  // Adagrad state starts at zero; Resize already zero-filled it.
  disk_->ResetStats();

  if (io.async) {
    arena_ = std::make_unique<IoArena>(partition_extent_,
                                       ArenaSlots(capacity_, io.queue_depth));
    IoEngineOptions eo;
    eo.queue_depth = io.queue_depth;
    eo.coalesce_writes = io.coalesce_writes;
    eo.max_transfer_bytes = io.max_transfer_bytes;
    eo.before_io = io.before_io;
    engine_ = std::make_unique<IoEngine>(disk_.get(), eo);
  }
}

PartitionBuffer::~PartitionBuffer() {
  // Drain + join the engine before the staging state its completions touch goes
  // away, then hand still-staged extents back so the arena's leak check passes.
  engine_.reset();
  for (auto& entry : staged_) {
    arena_->Release(entry.second.extent);
  }
  staged_.clear();
}

uint64_t PartitionBuffer::PartitionFileOffset(int32_t partition) const {
  return static_cast<uint64_t>(partition) * partition_extent_;
}

size_t PartitionBuffer::StreamPayloadBytes(int32_t partition) const {
  return static_cast<size_t>(partitioning_->PartitionSize(partition)) *
         static_cast<size_t>(dim_) * sizeof(float);
}

size_t PartitionBuffer::ExtentTransferBytes(int32_t partition) const {
  // Leading streams at padded stride, trailing stream rounded up to alignment:
  // the transfer stays inside the partition's extent and is O_DIRECT-eligible.
  const size_t streams = learnable_ ? 2 : 1;
  return (streams - 1) * stream_bytes_pad_ + AlignUpIo(StreamPayloadBytes(partition));
}

double PartitionBuffer::LoadIntoSlot(int32_t partition, int32_t slot) {
  float* vdst = values_.data() + static_cast<size_t>(slot) * max_partition_rows_ * dim_;
  float* sdst = learnable_
                    ? state_.data() + static_cast<size_t>(slot) * max_partition_rows_ * dim_
                    : nullptr;
  const size_t bytes = StreamPayloadBytes(partition);
  const uint64_t offset = PartitionFileOffset(partition);
  double io = 0.0;
  if (engine_ != nullptr) {
    // Blocking miss, routed through the engine so it stays ordered behind any
    // in-flight write-back of the same partition (per-tag program order).
    io += engine_->ReadSync(partition, vdst, bytes, offset);
    if (learnable_) {
      io += engine_->ReadSync(partition, sdst, bytes, offset + stream_bytes_pad_);
    }
  } else {
    io += disk_->Read(vdst, bytes, offset);
    if (learnable_) {
      io += disk_->Read(sdst, bytes, offset + stream_bytes_pad_);
    }
  }
  partition_in_slot_[static_cast<size_t>(slot)] = partition;
  slot_of_partition_[static_cast<size_t>(partition)] = slot;
  dirty_[static_cast<size_t>(slot)].store(0, std::memory_order_relaxed);
  return io;
}

void PartitionBuffer::InstallIntoSlot(int32_t partition, int32_t slot,
                                      const float* extent) {
  const size_t count =
      static_cast<size_t>(partitioning_->PartitionSize(partition)) * dim_;
  std::memcpy(values_.data() + static_cast<size_t>(slot) * max_partition_rows_ * dim_,
              extent, count * sizeof(float));
  if (learnable_) {
    std::memcpy(state_.data() + static_cast<size_t>(slot) * max_partition_rows_ * dim_,
                extent + stream_bytes_pad_ / sizeof(float), count * sizeof(float));
  }
  partition_in_slot_[static_cast<size_t>(slot)] = partition;
  slot_of_partition_[static_cast<size_t>(partition)] = slot;
  dirty_[static_cast<size_t>(slot)].store(0, std::memory_order_relaxed);
}

double PartitionBuffer::EvictSlot(int32_t slot, bool synchronous) {
  const int32_t partition = partition_in_slot_[static_cast<size_t>(slot)];
  if (partition < 0) {
    return 0.0;
  }
  double io = 0.0;
  if (dirty_[static_cast<size_t>(slot)].load(std::memory_order_relaxed) != 0 &&
      OwnsPartition(partition)) {
    const float* vsrc =
        values_.data() + static_cast<size_t>(slot) * max_partition_rows_ * dim_;
    const float* ssrc =
        learnable_ ? state_.data() + static_cast<size_t>(slot) * max_partition_rows_ * dim_
                   : nullptr;
    const size_t count =
        static_cast<size_t>(partitioning_->PartitionSize(partition)) * dim_;
    if (engine_ != nullptr && !synchronous) {
      // Write-back off the critical path: snapshot the slot into an aligned
      // arena extent so the slot can be reused immediately. One transfer covers
      // both streams (the padded layout makes them contiguous); the engine
      // deprioritises it behind reads and may merge it with neighbours.
      float* extent = arena_->Acquire();
      std::memcpy(extent, vsrc, count * sizeof(float));
      if (learnable_) {
        std::memcpy(extent + stream_bytes_pad_ / sizeof(float), ssrc,
                    count * sizeof(float));
      }
      engine_->SubmitWrite(
          partition, extent, ExtentTransferBytes(partition),
          PartitionFileOffset(partition), [this, extent](double modeled_seconds) {
            {
              std::lock_guard<std::mutex> lock(stage_mu_);
              background_seconds_ += modeled_seconds;
            }
            arena_->Release(extent);
          });
    } else {
      io += disk_->Write(vsrc, count * sizeof(float), PartitionFileOffset(partition));
      if (learnable_) {
        io += disk_->Write(ssrc, count * sizeof(float),
                           PartitionFileOffset(partition) + stream_bytes_pad_);
      }
    }
  }
  slot_of_partition_[static_cast<size_t>(partition)] = -1;
  partition_in_slot_[static_cast<size_t>(slot)] = -1;
  dirty_[static_cast<size_t>(slot)].store(0, std::memory_order_relaxed);
  return io;
}

int32_t PartitionBuffer::FindFreeSlot() const {
  for (int32_t slot = 0; slot < capacity_; ++slot) {
    if (partition_in_slot_[static_cast<size_t>(slot)] < 0) {
      return slot;
    }
  }
  return -1;
}

void PartitionBuffer::Prefetch(const std::vector<int32_t>& partitions) {
  if (engine_ == nullptr) {
    return;
  }
  for (int32_t part : partitions) {
    if (IsResident(part)) {
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(stage_mu_);
      if (staged_.count(part) != 0 || staging_in_flight_.count(part) != 0) {
        continue;
      }
    }
    // Acquire outside stage_mu_: it may block until a completion releases a
    // slot, and completions take stage_mu_. Only this (trainer) thread inserts
    // staging entries, so the check above cannot race with another Prefetch.
    float* extent = arena_->Acquire();
    {
      std::lock_guard<std::mutex> lock(stage_mu_);
      staging_in_flight_.emplace(part, StagingInFlight{extent});
    }
    engine_->SubmitRead(
        part, extent, ExtentTransferBytes(part), PartitionFileOffset(part),
        [this, part, extent](double modeled_seconds) {
          {
            std::lock_guard<std::mutex> lock(stage_mu_);
            staged_.emplace(part, StagedPartition{extent});
            staging_in_flight_.erase(part);
            background_seconds_ += modeled_seconds;
          }
          stage_cv_.notify_all();
        });
  }
}

double PartitionBuffer::ConsumeBackgroundIoSeconds() {
  std::lock_guard<std::mutex> lock(stage_mu_);
  return std::exchange(background_seconds_, 0.0);
}

IoEngineStats PartitionBuffer::ConsumeIoStats() {
  return engine_ != nullptr ? engine_->ConsumeStats() : IoEngineStats();
}

void PartitionBuffer::DiscardStaleStagedLocked(
    const std::unordered_set<int32_t>& wanted) {
  for (auto it = staged_.begin(); it != staged_.end();) {
    if (wanted.count(it->first) == 0) {
      // Staged data is a clean copy of what is still on disk — discarding loses
      // nothing but the prefetch work (stale lookahead after a resize).
      arena_->Release(it->second.extent);
      it = staged_.erase(it);
    } else {
      ++it;
    }
  }
}

double PartitionBuffer::SetResident(const std::vector<int32_t>& partitions) {
  MG_CHECK(static_cast<int32_t>(partitions.size()) <= capacity_);
  double io = 0.0;
  std::unordered_set<int32_t> wanted(partitions.begin(), partitions.end());
  if (engine_ != nullptr) {
    std::lock_guard<std::mutex> lock(stage_mu_);
    DiscardStaleStagedLocked(wanted);
  }
  // Evict residents that are no longer wanted (write-back is async when enabled).
  for (int32_t slot = 0; slot < capacity_; ++slot) {
    const int32_t part = partition_in_slot_[static_cast<size_t>(slot)];
    if (part >= 0 && wanted.find(part) == wanted.end()) {
      io += EvictSlot(slot, /*synchronous=*/false);
    }
  }
  // Fill free slots, preferring staged (prefetched) data over synchronous loads. The
  // slot-assignment order is identical with and without async IO so the resident
  // layout (and therefore ResidentNodes order) never depends on the IO mode.
  for (int32_t part : partitions) {
    if (IsResident(part)) {
      continue;
    }
    const int32_t free_slot = FindFreeSlot();
    MG_CHECK(free_slot >= 0);
    bool installed = false;
    if (engine_ != nullptr) {
      std::unique_lock<std::mutex> lock(stage_mu_);
      if (staged_.count(part) != 0 || staging_in_flight_.count(part) != 0) {
        stage_cv_.wait(lock, [&] { return staged_.count(part) != 0; });
        float* extent = staged_[part].extent;
        staged_.erase(part);
        lock.unlock();
        InstallIntoSlot(part, free_slot, extent);
        arena_->Release(extent);
        installed = true;
      }
    }
    if (!installed) {
      io += LoadIntoSlot(part, free_slot);
    }
  }
  return io;
}

void PartitionBuffer::DrainIo() {
  if (engine_ != nullptr) {
    engine_->Drain();
  }
}

double PartitionBuffer::FlushAll() {
  if (engine_ != nullptr) {
    engine_->Drain();
  }
  // Staged prefetches survive a flush: they are clean copies of on-disk data and
  // may still be installed by the next SetResident (e.g. across an epoch
  // boundary). Only ImportAll, which rewrites the file underneath them, discards.
  double io = 0.0;
  for (int32_t slot = 0; slot < capacity_; ++slot) {
    io += EvictSlot(slot, /*synchronous=*/true);
  }
  return io;
}

int64_t PartitionBuffer::SlotRowOf(int64_t node) const {
  const int32_t part = partitioning_->PartitionOf(node);
  const int32_t slot = slot_of_partition_[static_cast<size_t>(part)];
  MG_CHECK_MSG(slot >= 0, "node's partition is not resident");
  return static_cast<int64_t>(slot) * max_partition_rows_ + partitioning_->LocalIndexOf(node);
}

float* PartitionBuffer::ValueRow(int64_t node) {
  return values_.data() + static_cast<size_t>(SlotRowOf(node)) * dim_;
}

const float* PartitionBuffer::ValueRow(int64_t node) const {
  return values_.data() + static_cast<size_t>(SlotRowOf(node)) * dim_;
}

float* PartitionBuffer::StateRow(int64_t node) {
  MG_CHECK(learnable_);
  return state_.data() + static_cast<size_t>(SlotRowOf(node)) * dim_;
}

Tensor PartitionBuffer::ExportStream(bool state_stream) {
  FlushAll();
  int64_t num_nodes = 0;
  const int32_t p = partitioning_->num_partitions();
  for (int32_t part = 0; part < p; ++part) {
    num_nodes += partitioning_->PartitionSize(part);
  }
  const uint64_t stream_offset = state_stream ? stream_bytes_pad_ : 0;
  Tensor out(num_nodes, dim_);
  std::vector<float> scratch(static_cast<size_t>(max_partition_rows_) * dim_);
  for (int32_t part = 0; part < p; ++part) {
    const auto& nodes = partitioning_->NodesIn(part);
    disk_->Read(scratch.data(), nodes.size() * static_cast<size_t>(dim_) * sizeof(float),
                PartitionFileOffset(part) + stream_offset);
    for (size_t k = 0; k < nodes.size(); ++k) {
      std::memcpy(out.RowPtr(nodes[k]), &scratch[k * static_cast<size_t>(dim_)],
                  static_cast<size_t>(dim_) * sizeof(float));
    }
  }
  return out;
}

Tensor PartitionBuffer::ExportAll() { return ExportStream(/*state_stream=*/false); }

Tensor PartitionBuffer::ExportAllState() {
  MG_CHECK_MSG(learnable_, "ExportAllState requires a learnable buffer");
  return ExportStream(/*state_stream=*/true);
}

void PartitionBuffer::ImportAll(const Tensor& values, const Tensor* state) {
  MG_CHECK(values.cols() == dim_);
  MG_CHECK_MSG((state != nullptr) == learnable_,
               "ImportAll: state tensor must be supplied iff the buffer is learnable");
  if (state != nullptr) {
    MG_CHECK(state->rows() == values.rows() && state->cols() == dim_);
  }
  // The table must cover every node of the partitioning: a smaller import (e.g.
  // a checkpoint from a different graph) would read past the tensor's rows.
  int64_t num_nodes = 0;
  for (int32_t part = 0; part < partitioning_->num_partitions(); ++part) {
    num_nodes += partitioning_->PartitionSize(part);
  }
  MG_CHECK_MSG(values.rows() == num_nodes,
               "ImportAll: table row count does not match the partitioning");
  BeginImport();
  const int32_t p = partitioning_->num_partitions();
  std::vector<float> vscratch(static_cast<size_t>(max_partition_rows_) * dim_);
  std::vector<float> sscratch(learnable_ ? vscratch.size() : 0);
  for (int32_t part = 0; part < p; ++part) {
    const auto& nodes = partitioning_->NodesIn(part);
    for (size_t k = 0; k < nodes.size(); ++k) {
      std::memcpy(&vscratch[k * static_cast<size_t>(dim_)], values.RowPtr(nodes[k]),
                  static_cast<size_t>(dim_) * sizeof(float));
      if (learnable_) {
        std::memcpy(&sscratch[k * static_cast<size_t>(dim_)], state->RowPtr(nodes[k]),
                    static_cast<size_t>(dim_) * sizeof(float));
      }
    }
    ImportPartition(part, vscratch.data(), learnable_ ? sscratch.data() : nullptr);
  }
}

double PartitionBuffer::ExportPartition(int32_t partition, float* values_out,
                                        float* state_out) {
  MG_CHECK(partition >= 0 && partition < partitioning_->num_partitions());
  MG_CHECK_MSG(state_out == nullptr || learnable_,
               "ExportPartition: state stream requires a learnable buffer");
  const size_t bytes = StreamPayloadBytes(partition);
  const int32_t slot = slot_of_partition_[static_cast<size_t>(partition)];
  if (slot >= 0) {
    // Flush-through: the resident rows (dirty or clean) are the freshest copy.
    // No eviction, no write-back — residency and the trajectory are untouched.
    if (values_out != nullptr) {
      std::memcpy(values_out,
                  values_.data() + static_cast<size_t>(slot) * max_partition_rows_ * dim_,
                  bytes);
    }
    if (state_out != nullptr) {
      std::memcpy(state_out,
                  state_.data() + static_cast<size_t>(slot) * max_partition_rows_ * dim_,
                  bytes);
    }
    return 0.0;
  }
  const uint64_t offset = PartitionFileOffset(partition);
  double io = 0.0;
  if (engine_ != nullptr) {
    // Routed through the engine so the read stays ordered behind any in-flight
    // write-back of this partition (per-tag program order): an evicted-dirty
    // partition is never observed half-written.
    if (values_out != nullptr) {
      io += engine_->ReadSync(partition, values_out, bytes, offset);
    }
    if (state_out != nullptr) {
      io += engine_->ReadSync(partition, state_out, bytes, offset + stream_bytes_pad_);
    }
  } else {
    if (values_out != nullptr) {
      io += disk_->Read(values_out, bytes, offset);
    }
    if (state_out != nullptr) {
      io += disk_->Read(state_out, bytes, offset + stream_bytes_pad_);
    }
  }
  return io;
}

void PartitionBuffer::BeginImport() {
  // Drop resident copies: FlushAll drains the engine and evicts every slot. The
  // import rewrites the file, so staged prefetches of the *old* data must be
  // discarded too — they would shadow the imported table at the next SetResident.
  FlushAll();
  if (engine_ != nullptr) {
    std::lock_guard<std::mutex> lock(stage_mu_);
    for (auto& entry : staged_) {
      arena_->Release(entry.second.extent);
    }
    staged_.clear();
    MG_CHECK(staging_in_flight_.empty());
  }
}

void PartitionBuffer::ImportPartition(int32_t partition, const float* values,
                                      const float* state) {
  MG_CHECK(partition >= 0 && partition < partitioning_->num_partitions());
  MG_CHECK_MSG((state != nullptr) == learnable_,
               "ImportPartition: state rows must be supplied iff the buffer is learnable");
  // BeginImport evicted everything; a resident partition here means the caller
  // skipped it and the synchronous writes below could be shadowed on eviction.
  MG_CHECK_MSG(slot_of_partition_[static_cast<size_t>(partition)] < 0,
               "ImportPartition without BeginImport: partition is still resident");
  disk_->Write(values, StreamPayloadBytes(partition), PartitionFileOffset(partition));
  if (learnable_) {
    disk_->Write(state, StreamPayloadBytes(partition),
                 PartitionFileOffset(partition) + stream_bytes_pad_);
  }
}

std::vector<int64_t> PartitionBuffer::ResidentNodes() const {
  std::vector<int64_t> nodes;
  for (int32_t slot = 0; slot < capacity_; ++slot) {
    const int32_t part = partition_in_slot_[static_cast<size_t>(slot)];
    if (part >= 0) {
      const auto& pn = partitioning_->NodesIn(part);
      nodes.insert(nodes.end(), pn.begin(), pn.end());
    }
  }
  return nodes;
}

std::vector<int32_t> PartitionBuffer::ResidentPartitions() const {
  std::vector<int32_t> parts;
  for (int32_t slot = 0; slot < capacity_; ++slot) {
    const int32_t part = partition_in_slot_[static_cast<size_t>(slot)];
    if (part >= 0) {
      parts.push_back(part);
    }
  }
  return parts;
}

}  // namespace mariusgnn
