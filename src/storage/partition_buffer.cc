#include "src/storage/partition_buffer.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "src/util/check.h"

namespace mariusgnn {

PartitionBuffer::PartitionBuffer(const Partitioning* partitioning, int64_t dim,
                                 int32_t capacity, const std::string& path,
                                 DiskModel model, bool learnable, const Tensor* init)
    : partitioning_(partitioning),
      dim_(dim),
      capacity_(capacity),
      learnable_(learnable),
      disk_(std::make_unique<SimulatedDisk>(path, model)) {
  const int32_t p = partitioning_->num_partitions();
  MG_CHECK(capacity_ >= 1 && capacity_ <= p);
  for (int32_t i = 0; i < p; ++i) {
    max_partition_rows_ = std::max(max_partition_rows_, partitioning_->PartitionSize(i));
  }
  values_.assign(static_cast<size_t>(capacity_) * max_partition_rows_ * dim_, 0.0f);
  if (learnable_) {
    state_.assign(values_.size(), 0.0f);
  }
  partition_in_slot_.assign(static_cast<size_t>(capacity_), -1);
  slot_of_partition_.assign(static_cast<size_t>(p), -1);
  dirty_.assign(static_cast<size_t>(capacity_), false);

  // Seed the on-disk layout: for each partition, value rows then (optional) state rows.
  const uint64_t streams = learnable_ ? 2 : 1;
  disk_->Resize(static_cast<uint64_t>(p) * max_partition_rows_ * dim_ * sizeof(float) *
                streams);
  std::vector<float> scratch(static_cast<size_t>(max_partition_rows_) * dim_, 0.0f);
  for (int32_t part = 0; part < p; ++part) {
    if (init != nullptr) {
      const auto& nodes = partitioning_->NodesIn(part);
      for (size_t k = 0; k < nodes.size(); ++k) {
        std::memcpy(&scratch[k * static_cast<size_t>(dim_)], init->RowPtr(nodes[k]),
                    static_cast<size_t>(dim_) * sizeof(float));
      }
    }
    disk_->Write(scratch.data(),
                 static_cast<size_t>(partitioning_->PartitionSize(part)) * dim_ * sizeof(float),
                 PartitionFileOffset(part));
    if (init == nullptr) {
      break;  // File is zero-filled by Resize; no need to write every partition.
    }
  }
  if (learnable_) {
    // Adagrad state starts at zero; Resize already zero-filled it.
  }
  disk_->ResetStats();
}

uint64_t PartitionBuffer::PartitionFileOffset(int32_t partition) const {
  const uint64_t per_partition = static_cast<uint64_t>(max_partition_rows_) * dim_ *
                                 sizeof(float) * (learnable_ ? 2 : 1);
  return static_cast<uint64_t>(partition) * per_partition;
}

double PartitionBuffer::LoadIntoSlot(int32_t partition, int32_t slot) {
  const double before = disk_->stats().modeled_seconds;
  const size_t rows = static_cast<size_t>(partitioning_->PartitionSize(partition));
  const size_t bytes = rows * static_cast<size_t>(dim_) * sizeof(float);
  float* vdst = &values_[static_cast<size_t>(slot) * max_partition_rows_ * dim_];
  disk_->Read(vdst, bytes, PartitionFileOffset(partition));
  if (learnable_) {
    float* sdst = &state_[static_cast<size_t>(slot) * max_partition_rows_ * dim_];
    disk_->Read(sdst, bytes,
                PartitionFileOffset(partition) +
                    static_cast<uint64_t>(max_partition_rows_) * dim_ * sizeof(float));
  }
  partition_in_slot_[static_cast<size_t>(slot)] = partition;
  slot_of_partition_[static_cast<size_t>(partition)] = slot;
  dirty_[static_cast<size_t>(slot)] = false;
  return disk_->stats().modeled_seconds - before;
}

double PartitionBuffer::EvictSlot(int32_t slot) {
  const int32_t partition = partition_in_slot_[static_cast<size_t>(slot)];
  if (partition < 0) {
    return 0.0;
  }
  const double before = disk_->stats().modeled_seconds;
  if (dirty_[static_cast<size_t>(slot)]) {
    const size_t rows = static_cast<size_t>(partitioning_->PartitionSize(partition));
    const size_t bytes = rows * static_cast<size_t>(dim_) * sizeof(float);
    const float* vsrc = &values_[static_cast<size_t>(slot) * max_partition_rows_ * dim_];
    disk_->Write(vsrc, bytes, PartitionFileOffset(partition));
    if (learnable_) {
      const float* ssrc = &state_[static_cast<size_t>(slot) * max_partition_rows_ * dim_];
      disk_->Write(ssrc, bytes,
                   PartitionFileOffset(partition) +
                       static_cast<uint64_t>(max_partition_rows_) * dim_ * sizeof(float));
    }
  }
  slot_of_partition_[static_cast<size_t>(partition)] = -1;
  partition_in_slot_[static_cast<size_t>(slot)] = -1;
  dirty_[static_cast<size_t>(slot)] = false;
  return disk_->stats().modeled_seconds - before;
}

double PartitionBuffer::SetResident(const std::vector<int32_t>& partitions) {
  MG_CHECK(static_cast<int32_t>(partitions.size()) <= capacity_);
  double io = 0.0;
  std::unordered_set<int32_t> wanted(partitions.begin(), partitions.end());
  // Evict residents that are no longer wanted.
  for (int32_t slot = 0; slot < capacity_; ++slot) {
    const int32_t part = partition_in_slot_[static_cast<size_t>(slot)];
    if (part >= 0 && wanted.find(part) == wanted.end()) {
      io += EvictSlot(slot);
    }
  }
  // Load missing partitions into free slots.
  for (int32_t part : partitions) {
    if (IsResident(part)) {
      continue;
    }
    int32_t free_slot = -1;
    for (int32_t slot = 0; slot < capacity_; ++slot) {
      if (partition_in_slot_[static_cast<size_t>(slot)] < 0) {
        free_slot = slot;
        break;
      }
    }
    MG_CHECK(free_slot >= 0);
    io += LoadIntoSlot(part, free_slot);
  }
  return io;
}

double PartitionBuffer::FlushAll() {
  double io = 0.0;
  for (int32_t slot = 0; slot < capacity_; ++slot) {
    io += EvictSlot(slot);
  }
  return io;
}

int64_t PartitionBuffer::SlotRowOf(int64_t node) const {
  const int32_t part = partitioning_->PartitionOf(node);
  const int32_t slot = slot_of_partition_[static_cast<size_t>(part)];
  MG_CHECK_MSG(slot >= 0, "node's partition is not resident");
  return static_cast<int64_t>(slot) * max_partition_rows_ + partitioning_->LocalIndexOf(node);
}

float* PartitionBuffer::ValueRow(int64_t node) {
  return &values_[static_cast<size_t>(SlotRowOf(node)) * dim_];
}

const float* PartitionBuffer::ValueRow(int64_t node) const {
  return &values_[static_cast<size_t>(SlotRowOf(node)) * dim_];
}

float* PartitionBuffer::StateRow(int64_t node) {
  MG_CHECK(learnable_);
  return &state_[static_cast<size_t>(SlotRowOf(node)) * dim_];
}

Tensor PartitionBuffer::ExportAll() {
  FlushAll();
  int64_t num_nodes = 0;
  const int32_t p = partitioning_->num_partitions();
  for (int32_t part = 0; part < p; ++part) {
    num_nodes += partitioning_->PartitionSize(part);
  }
  Tensor out(num_nodes, dim_);
  std::vector<float> scratch(static_cast<size_t>(max_partition_rows_) * dim_);
  for (int32_t part = 0; part < p; ++part) {
    const auto& nodes = partitioning_->NodesIn(part);
    disk_->Read(scratch.data(), nodes.size() * static_cast<size_t>(dim_) * sizeof(float),
                PartitionFileOffset(part));
    for (size_t k = 0; k < nodes.size(); ++k) {
      std::memcpy(out.RowPtr(nodes[k]), &scratch[k * static_cast<size_t>(dim_)],
                  static_cast<size_t>(dim_) * sizeof(float));
    }
  }
  return out;
}

std::vector<int64_t> PartitionBuffer::ResidentNodes() const {
  std::vector<int64_t> nodes;
  for (int32_t slot = 0; slot < capacity_; ++slot) {
    const int32_t part = partition_in_slot_[static_cast<size_t>(slot)];
    if (part >= 0) {
      const auto& pn = partitioning_->NodesIn(part);
      nodes.insert(nodes.end(), pn.begin(), pn.end());
    }
  }
  return nodes;
}

std::vector<int32_t> PartitionBuffer::ResidentPartitions() const {
  std::vector<int32_t> parts;
  for (int32_t slot = 0; slot < capacity_; ++slot) {
    const int32_t part = partition_in_slot_[static_cast<size_t>(slot)];
    if (part >= 0) {
      parts.push_back(part);
    }
  }
  return parts;
}

}  // namespace mariusgnn
