#include "src/storage/partition_buffer.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace mariusgnn {

PartitionBuffer::PartitionBuffer(const Partitioning* partitioning, int64_t dim,
                                 int32_t capacity, const std::string& path,
                                 DiskModel model, bool learnable, const Tensor* init,
                                 bool async_io)
    : partitioning_(partitioning),
      dim_(dim),
      capacity_(capacity),
      learnable_(learnable),
      disk_(std::make_unique<SimulatedDisk>(path, model)),
      async_io_(async_io) {
  const int32_t p = partitioning_->num_partitions();
  MG_CHECK(capacity_ >= 1 && capacity_ <= p);
  for (int32_t i = 0; i < p; ++i) {
    max_partition_rows_ = std::max(max_partition_rows_, partitioning_->PartitionSize(i));
  }
  values_.assign(static_cast<size_t>(capacity_) * max_partition_rows_ * dim_, 0.0f);
  if (learnable_) {
    state_.assign(values_.size(), 0.0f);
  }
  partition_in_slot_.assign(static_cast<size_t>(capacity_), -1);
  slot_of_partition_.assign(static_cast<size_t>(p), -1);
  dirty_ = std::make_unique<std::atomic<uint8_t>[]>(static_cast<size_t>(capacity_));
  for (int32_t slot = 0; slot < capacity_; ++slot) {
    dirty_[static_cast<size_t>(slot)].store(0, std::memory_order_relaxed);
  }

  // Seed the on-disk layout: for each partition, value rows then (optional) state rows.
  const uint64_t streams = learnable_ ? 2 : 1;
  disk_->Resize(static_cast<uint64_t>(p) * max_partition_rows_ * dim_ * sizeof(float) *
                streams);
  std::vector<float> scratch(static_cast<size_t>(max_partition_rows_) * dim_, 0.0f);
  for (int32_t part = 0; part < p; ++part) {
    if (init != nullptr) {
      const auto& nodes = partitioning_->NodesIn(part);
      for (size_t k = 0; k < nodes.size(); ++k) {
        std::memcpy(&scratch[k * static_cast<size_t>(dim_)], init->RowPtr(nodes[k]),
                    static_cast<size_t>(dim_) * sizeof(float));
      }
    }
    disk_->Write(scratch.data(),
                 static_cast<size_t>(partitioning_->PartitionSize(part)) * dim_ * sizeof(float),
                 PartitionFileOffset(part));
    if (init == nullptr) {
      break;  // File is zero-filled by Resize; no need to write every partition.
    }
  }
  if (learnable_) {
    // Adagrad state starts at zero; Resize already zero-filled it.
  }
  disk_->ResetStats();

  if (async_io_) {
    io_pool_ = std::make_unique<ThreadPool>(1);
  }
}

PartitionBuffer::~PartitionBuffer() {
  // Drain + join the IO thread (~ThreadPool) before the staging mutex/cv its
  // pending tasks touch are destroyed.
  io_pool_.reset();
}

uint64_t PartitionBuffer::PartitionFileOffset(int32_t partition) const {
  const uint64_t per_partition = static_cast<uint64_t>(max_partition_rows_) * dim_ *
                                 sizeof(float) * (learnable_ ? 2 : 1);
  return static_cast<uint64_t>(partition) * per_partition;
}

void PartitionBuffer::ReadPartitionFromDisk(int32_t partition, float* values,
                                            float* state) {
  const size_t rows = static_cast<size_t>(partitioning_->PartitionSize(partition));
  const size_t bytes = rows * static_cast<size_t>(dim_) * sizeof(float);
  disk_->Read(values, bytes, PartitionFileOffset(partition));
  if (learnable_) {
    disk_->Read(state, bytes,
                PartitionFileOffset(partition) +
                    static_cast<uint64_t>(max_partition_rows_) * dim_ * sizeof(float));
  }
}

void PartitionBuffer::WritePartitionToDisk(int32_t partition, const float* values,
                                           const float* state) {
  const size_t rows = static_cast<size_t>(partitioning_->PartitionSize(partition));
  const size_t bytes = rows * static_cast<size_t>(dim_) * sizeof(float);
  disk_->Write(values, bytes, PartitionFileOffset(partition));
  if (learnable_) {
    disk_->Write(state, bytes,
                 PartitionFileOffset(partition) +
                     static_cast<uint64_t>(max_partition_rows_) * dim_ * sizeof(float));
  }
}

void PartitionBuffer::EnqueueIo(std::function<void()> fn) {
  io_pool_->Submit(std::move(fn));
}

void PartitionBuffer::DrainIo() {
  if (async_io_) {
    io_pool_->Wait();
  }
}

double PartitionBuffer::RunIo(const std::function<void()>& fn) {
  if (!async_io_) {
    const double before = disk_->stats().modeled_seconds;
    fn();
    return disk_->stats().modeled_seconds - before;
  }
  // FIFO behind any pending background tasks, so a queued write-back of the same
  // partition lands before this op runs.
  double modeled = 0.0;
  bool done = false;
  std::mutex mu;
  std::condition_variable cv;
  EnqueueIo([&] {
    const double before = disk_->stats().modeled_seconds;
    fn();
    const double delta = disk_->stats().modeled_seconds - before;
    std::lock_guard<std::mutex> lock(mu);
    modeled = delta;
    done = true;
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  return modeled;
}

double PartitionBuffer::LoadIntoSlot(int32_t partition, int32_t slot) {
  float* vdst = &values_[static_cast<size_t>(slot) * max_partition_rows_ * dim_];
  float* sdst =
      learnable_ ? &state_[static_cast<size_t>(slot) * max_partition_rows_ * dim_]
                 : nullptr;
  const double io =
      RunIo([&] { ReadPartitionFromDisk(partition, vdst, sdst); });
  partition_in_slot_[static_cast<size_t>(slot)] = partition;
  slot_of_partition_[static_cast<size_t>(partition)] = slot;
  dirty_[static_cast<size_t>(slot)].store(0, std::memory_order_relaxed);
  return io;
}

void PartitionBuffer::InstallIntoSlot(int32_t partition, int32_t slot,
                                      const StagedPartition& data) {
  const size_t count =
      static_cast<size_t>(partitioning_->PartitionSize(partition)) * dim_;
  std::memcpy(&values_[static_cast<size_t>(slot) * max_partition_rows_ * dim_],
              data.values.data(), count * sizeof(float));
  if (learnable_) {
    std::memcpy(&state_[static_cast<size_t>(slot) * max_partition_rows_ * dim_],
                data.state.data(), count * sizeof(float));
  }
  partition_in_slot_[static_cast<size_t>(slot)] = partition;
  slot_of_partition_[static_cast<size_t>(partition)] = slot;
  dirty_[static_cast<size_t>(slot)].store(0, std::memory_order_relaxed);
}

double PartitionBuffer::EvictSlot(int32_t slot, bool synchronous) {
  const int32_t partition = partition_in_slot_[static_cast<size_t>(slot)];
  if (partition < 0) {
    return 0.0;
  }
  double io = 0.0;
  if (dirty_[static_cast<size_t>(slot)].load(std::memory_order_relaxed) != 0) {
    const float* vsrc = &values_[static_cast<size_t>(slot) * max_partition_rows_ * dim_];
    const float* ssrc =
        learnable_ ? &state_[static_cast<size_t>(slot) * max_partition_rows_ * dim_]
                   : nullptr;
    if (async_io_ && !synchronous) {
      // Write-back off the critical path: snapshot the slot so it can be reused
      // immediately; the IO thread persists the copy (modeled seconds surface via
      // ConsumeBackgroundIoSeconds).
      const size_t count =
          static_cast<size_t>(partitioning_->PartitionSize(partition)) * dim_;
      auto data = std::make_shared<StagedPartition>();
      data->values.assign(vsrc, vsrc + count);
      if (learnable_) {
        data->state.assign(ssrc, ssrc + count);
      }
      EnqueueIo([this, partition, data] {
        const double before = disk_->stats().modeled_seconds;
        WritePartitionToDisk(partition, data->values.data(),
                             learnable_ ? data->state.data() : nullptr);
        const double delta = disk_->stats().modeled_seconds - before;
        std::lock_guard<std::mutex> lock(stage_mu_);
        background_seconds_ += delta;
      });
    } else {
      io = RunIo([&] { WritePartitionToDisk(partition, vsrc, ssrc); });
    }
  }
  slot_of_partition_[static_cast<size_t>(partition)] = -1;
  partition_in_slot_[static_cast<size_t>(slot)] = -1;
  dirty_[static_cast<size_t>(slot)].store(0, std::memory_order_relaxed);
  return io;
}

int32_t PartitionBuffer::FindFreeSlot() const {
  for (int32_t slot = 0; slot < capacity_; ++slot) {
    if (partition_in_slot_[static_cast<size_t>(slot)] < 0) {
      return slot;
    }
  }
  return -1;
}

void PartitionBuffer::Prefetch(const std::vector<int32_t>& partitions) {
  if (!async_io_) {
    return;
  }
  for (int32_t part : partitions) {
    if (IsResident(part)) {
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(stage_mu_);
      if (staged_.count(part) != 0 || staging_in_flight_.count(part) != 0) {
        continue;
      }
      staging_in_flight_.insert(part);
    }
    EnqueueIo([this, part] {
      const size_t count =
          static_cast<size_t>(partitioning_->PartitionSize(part)) * dim_;
      StagedPartition data;
      data.values.resize(count);
      if (learnable_) {
        data.state.resize(count);
      }
      const double before = disk_->stats().modeled_seconds;
      ReadPartitionFromDisk(part, data.values.data(),
                            learnable_ ? data.state.data() : nullptr);
      const double delta = disk_->stats().modeled_seconds - before;
      {
        std::lock_guard<std::mutex> lock(stage_mu_);
        staged_.emplace(part, std::move(data));
        staging_in_flight_.erase(part);
        background_seconds_ += delta;
      }
      stage_cv_.notify_all();
    });
  }
}

double PartitionBuffer::ConsumeBackgroundIoSeconds() {
  std::lock_guard<std::mutex> lock(stage_mu_);
  return std::exchange(background_seconds_, 0.0);
}

double PartitionBuffer::SetResident(const std::vector<int32_t>& partitions) {
  MG_CHECK(static_cast<int32_t>(partitions.size()) <= capacity_);
  double io = 0.0;
  std::unordered_set<int32_t> wanted(partitions.begin(), partitions.end());
  // Evict residents that are no longer wanted (write-back is async when enabled).
  for (int32_t slot = 0; slot < capacity_; ++slot) {
    const int32_t part = partition_in_slot_[static_cast<size_t>(slot)];
    if (part >= 0 && wanted.find(part) == wanted.end()) {
      io += EvictSlot(slot, /*synchronous=*/false);
    }
  }
  // Fill free slots, preferring staged (prefetched) data over synchronous loads. The
  // slot-assignment order is identical with and without async IO so the resident
  // layout (and therefore ResidentNodes order) never depends on the IO mode.
  for (int32_t part : partitions) {
    if (IsResident(part)) {
      continue;
    }
    const int32_t free_slot = FindFreeSlot();
    MG_CHECK(free_slot >= 0);
    bool installed = false;
    if (async_io_) {
      std::unique_lock<std::mutex> lock(stage_mu_);
      if (staged_.count(part) != 0 || staging_in_flight_.count(part) != 0) {
        stage_cv_.wait(lock, [&] { return staged_.count(part) != 0; });
        StagedPartition data = std::move(staged_[part]);
        staged_.erase(part);
        lock.unlock();
        InstallIntoSlot(part, free_slot, data);
        installed = true;
      }
    }
    if (!installed) {
      io += LoadIntoSlot(part, free_slot);
    }
  }
  return io;
}

double PartitionBuffer::FlushAll() {
  DrainIo();
  double io = 0.0;
  for (int32_t slot = 0; slot < capacity_; ++slot) {
    io += EvictSlot(slot, /*synchronous=*/true);
  }
  return io;
}

int64_t PartitionBuffer::SlotRowOf(int64_t node) const {
  const int32_t part = partitioning_->PartitionOf(node);
  const int32_t slot = slot_of_partition_[static_cast<size_t>(part)];
  MG_CHECK_MSG(slot >= 0, "node's partition is not resident");
  return static_cast<int64_t>(slot) * max_partition_rows_ + partitioning_->LocalIndexOf(node);
}

float* PartitionBuffer::ValueRow(int64_t node) {
  return &values_[static_cast<size_t>(SlotRowOf(node)) * dim_];
}

const float* PartitionBuffer::ValueRow(int64_t node) const {
  return &values_[static_cast<size_t>(SlotRowOf(node)) * dim_];
}

float* PartitionBuffer::StateRow(int64_t node) {
  MG_CHECK(learnable_);
  return &state_[static_cast<size_t>(SlotRowOf(node)) * dim_];
}

Tensor PartitionBuffer::ExportStream(bool state_stream) {
  FlushAll();
  int64_t num_nodes = 0;
  const int32_t p = partitioning_->num_partitions();
  for (int32_t part = 0; part < p; ++part) {
    num_nodes += partitioning_->PartitionSize(part);
  }
  const uint64_t stream_offset =
      state_stream ? static_cast<uint64_t>(max_partition_rows_) * dim_ * sizeof(float)
                   : 0;
  Tensor out(num_nodes, dim_);
  std::vector<float> scratch(static_cast<size_t>(max_partition_rows_) * dim_);
  for (int32_t part = 0; part < p; ++part) {
    const auto& nodes = partitioning_->NodesIn(part);
    RunIo([&] {
      disk_->Read(scratch.data(), nodes.size() * static_cast<size_t>(dim_) * sizeof(float),
                  PartitionFileOffset(part) + stream_offset);
    });
    for (size_t k = 0; k < nodes.size(); ++k) {
      std::memcpy(out.RowPtr(nodes[k]), &scratch[k * static_cast<size_t>(dim_)],
                  static_cast<size_t>(dim_) * sizeof(float));
    }
  }
  return out;
}

Tensor PartitionBuffer::ExportAll() { return ExportStream(/*state_stream=*/false); }

Tensor PartitionBuffer::ExportAllState() {
  MG_CHECK_MSG(learnable_, "ExportAllState requires a learnable buffer");
  return ExportStream(/*state_stream=*/true);
}

void PartitionBuffer::ImportAll(const Tensor& values, const Tensor* state) {
  MG_CHECK(values.cols() == dim_);
  MG_CHECK_MSG((state != nullptr) == learnable_,
               "ImportAll: state tensor must be supplied iff the buffer is learnable");
  if (state != nullptr) {
    MG_CHECK(state->rows() == values.rows() && state->cols() == dim_);
  }
  // The table must cover every node of the partitioning: a smaller import (e.g.
  // a checkpoint from a different graph) would read past the tensor's rows.
  int64_t num_nodes = 0;
  for (int32_t part = 0; part < partitioning_->num_partitions(); ++part) {
    num_nodes += partitioning_->PartitionSize(part);
  }
  MG_CHECK_MSG(values.rows() == num_nodes,
               "ImportAll: table row count does not match the partitioning");
  // Drop resident copies: FlushAll evicts every slot, so nothing stale can shadow
  // the imported table on the next SetResident.
  FlushAll();
  const int32_t p = partitioning_->num_partitions();
  std::vector<float> vscratch(static_cast<size_t>(max_partition_rows_) * dim_);
  std::vector<float> sscratch(learnable_ ? vscratch.size() : 0);
  for (int32_t part = 0; part < p; ++part) {
    const auto& nodes = partitioning_->NodesIn(part);
    for (size_t k = 0; k < nodes.size(); ++k) {
      std::memcpy(&vscratch[k * static_cast<size_t>(dim_)], values.RowPtr(nodes[k]),
                  static_cast<size_t>(dim_) * sizeof(float));
      if (learnable_) {
        std::memcpy(&sscratch[k * static_cast<size_t>(dim_)], state->RowPtr(nodes[k]),
                    static_cast<size_t>(dim_) * sizeof(float));
      }
    }
    RunIo([&] {
      WritePartitionToDisk(part, vscratch.data(),
                           learnable_ ? sscratch.data() : nullptr);
    });
  }
}

std::vector<int64_t> PartitionBuffer::ResidentNodes() const {
  std::vector<int64_t> nodes;
  for (int32_t slot = 0; slot < capacity_; ++slot) {
    const int32_t part = partition_in_slot_[static_cast<size_t>(slot)];
    if (part >= 0) {
      const auto& pn = partitioning_->NodesIn(part);
      nodes.insert(nodes.end(), pn.begin(), pn.end());
    }
  }
  return nodes;
}

std::vector<int32_t> PartitionBuffer::ResidentPartitions() const {
  std::vector<int32_t> parts;
  for (int32_t slot = 0; slot < capacity_; ++slot) {
    const int32_t part = partition_in_slot_[static_cast<size_t>(slot)];
    if (part >= 0) {
      parts.push_back(part);
    }
  }
  return parts;
}

}  // namespace mariusgnn
