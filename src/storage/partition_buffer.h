// Partition buffer: holds `capacity` physical node partitions of per-node vector data
// (base representations and, when learnable, their Adagrad state) in CPU memory, backed
// by a SimulatedDisk file laid out partition-by-partition.
//
// This is the storage-layer component of Figure 2: the replacement policy decides which
// partitions are resident; the processing layer reads/writes rows of resident
// partitions by global node id. Dirty partitions are written back on eviction.
//
// With async IO enabled, the buffer runs a background IO thread so partition IO
// overlaps with compute (the paper's "hide the IO" pipeline stage):
//  - Prefetch() stages upcoming partitions (OrderingPolicy::Lookahead tells the
//    trainer which) into heap-side staging buffers while the current set trains;
//  - SetResident() installs staged partitions with a memcpy instead of a blocking
//    disk read, and pushes dirty-eviction write-backs off the critical path;
//  - ConsumeBackgroundIoSeconds() reports the modeled seconds of that overlapped IO
//    so trainers can account stalls as max(0, background_io - compute).
// All disk access is funneled through the single IO thread (FIFO), so a prefetch read
// queued after a write-back of the same partition always observes the written data.
#ifndef SRC_STORAGE_PARTITION_BUFFER_H_
#define SRC_STORAGE_PARTITION_BUFFER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/graph/partition.h"
#include "src/storage/disk.h"
#include "src/tensor/tensor.h"
#include "src/util/check.h"
#include "src/util/threadpool.h"

namespace mariusgnn {

class PartitionBuffer {
 public:
  // `learnable` adds a parallel Adagrad accumulator stream persisted next to the
  // values. `init` seeds the on-disk values (rows indexed by global node id); pass
  // nullptr to zero-initialise. `async_io` starts the background IO thread that
  // serves Prefetch() and asynchronous dirty write-back.
  PartitionBuffer(const Partitioning* partitioning, int64_t dim, int32_t capacity,
                  const std::string& path, DiskModel model, bool learnable,
                  const Tensor* init, bool async_io = false);
  ~PartitionBuffer();

  PartitionBuffer(const PartitionBuffer&) = delete;
  PartitionBuffer& operator=(const PartitionBuffer&) = delete;

  int32_t capacity() const { return capacity_; }
  int64_t dim() const { return dim_; }
  bool async_io() const { return async_io_; }

  bool IsResident(int32_t partition) const {
    return slot_of_partition_[static_cast<size_t>(partition)] >= 0;
  }

  // Makes exactly `partitions` resident (evicting others, loading missing ones) and
  // returns the modeled IO seconds spent *synchronously* — staged partitions install
  // without disk reads and dirty evictions write back in the background (their
  // modeled seconds surface via ConsumeBackgroundIoSeconds). |partitions| must be
  // <= capacity.
  double SetResident(const std::vector<int32_t>& partitions);

  // Asynchronously stages `partitions` (skipping resident / already-staged ones) so
  // a later SetResident installs them without blocking on disk. No-op when async IO
  // is disabled. Returns immediately.
  void Prefetch(const std::vector<int32_t>& partitions);

  // Modeled seconds of background IO (prefetch reads + async write-backs) completed
  // since the last call. Always 0 when async IO is disabled.
  double ConsumeBackgroundIoSeconds();

  // Flushes all dirty partitions to disk (draining pending background IO first);
  // returns modeled IO seconds of the synchronous flush.
  double FlushAll();

  // Row access by global node id; the node's partition must be resident.
  float* ValueRow(int64_t node);
  const float* ValueRow(int64_t node) const;
  float* StateRow(int64_t node);  // Adagrad accumulator row (learnable only)

  // Safe to call concurrently from compute worker threads (the sharded sparse
  // Adagrad marks dirty inside its parallel chunks): the per-slot flags are whole
  // bytes written with relaxed atomic stores — unlike the bit-packed vector<bool>
  // this replaces, two threads marking different slots never touch the same byte,
  // and marking the same slot twice is an idempotent store. The parallel region's
  // join (ForEachChunk) publishes the flags before any eviction reads them.
  void MarkDirty(int64_t node) {
    const int32_t part = partitioning_->PartitionOf(node);
    const int32_t slot = slot_of_partition_[static_cast<size_t>(part)];
    MG_CHECK_MSG(slot >= 0, "MarkDirty: node's partition is not resident");
    dirty_[static_cast<size_t>(slot)].store(1, std::memory_order_relaxed);
  }

  // Nodes of all resident partitions (used to bound negative sampling to in-memory
  // data and to rebuild the in-memory edge index).
  std::vector<int64_t> ResidentNodes() const;
  std::vector<int32_t> ResidentPartitions() const;

  // Not safe to call while background IO is in flight (drain with FlushAll first).
  const DiskStats& disk_stats() const { return disk_->stats(); }
  void ResetDiskStats() { disk_->ResetStats(); }

  // Reads the full on-disk table into a num_nodes x dim tensor indexed by global node
  // id (for post-training evaluation). Flushes dirty partitions first.
  Tensor ExportAll();

  // Same, for the Adagrad accumulator stream (learnable buffers only). Together
  // with ExportAll this is the checkpoint image of the embedding table.
  Tensor ExportAllState();

  // Overwrites the full on-disk table (values and, when learnable, accumulator
  // state) from node-indexed tensors — the inverse of ExportAll/ExportAllState,
  // used by checkpoint restore. Flushes and evicts everything first, so the next
  // SetResident reads the imported data. `state` must be non-null iff learnable.
  void ImportAll(const Tensor& values, const Tensor* state);

 private:
  // Prefetched partition data parked between the IO thread and installation.
  struct StagedPartition {
    std::vector<float> values;
    std::vector<float> state;
  };

  uint64_t PartitionFileOffset(int32_t partition) const;
  Tensor ExportStream(bool state_stream);
  double LoadIntoSlot(int32_t partition, int32_t slot);
  double EvictSlot(int32_t slot, bool synchronous);
  int64_t SlotRowOf(int64_t node) const;
  int32_t FindFreeSlot() const;
  void InstallIntoSlot(int32_t partition, int32_t slot, const StagedPartition& data);

  // Raw disk transfer of one partition's rows (values + optional state). Runs on the
  // IO thread when async IO is enabled.
  void ReadPartitionFromDisk(int32_t partition, float* values, float* state);
  void WritePartitionToDisk(int32_t partition, const float* values, const float* state);

  // Async-IO plumbing. RunIo executes `fn` (which may touch disk_) inline when async
  // IO is off, otherwise on the IO thread FIFO, blocking until done; returns the
  // modeled seconds fn consumed. EnqueueIo is fire-and-forget; DrainIo blocks until
  // the IO queue is empty.
  double RunIo(const std::function<void()>& fn);
  void EnqueueIo(std::function<void()> fn);
  void DrainIo();

  const Partitioning* partitioning_;
  int64_t dim_;
  int32_t capacity_;
  bool learnable_;
  int64_t max_partition_rows_ = 0;
  std::unique_ptr<SimulatedDisk> disk_;
  // Buffer storage: capacity_ slots of max_partition_rows_ rows each. Values and
  // (optionally) Adagrad state share slot geometry.
  std::vector<float> values_;
  std::vector<float> state_;
  std::vector<int32_t> partition_in_slot_;  // -1 = free
  std::vector<int32_t> slot_of_partition_;  // -1 = not resident
  // Per-slot dirty flags, one byte per slot so worker threads can mark without
  // data races (see MarkDirty). Owned array rather than vector<atomic> because
  // atomics are neither copyable nor movable element-wise.
  std::unique_ptr<std::atomic<uint8_t>[]> dirty_;

  // Async IO state (inert when async_io_ is false). The single-thread pool is the
  // FIFO IO queue: Submit preserves order, Wait drains, destruction drains + joins.
  bool async_io_ = false;
  std::unique_ptr<ThreadPool> io_pool_;

  std::mutex stage_mu_;
  std::condition_variable stage_cv_;
  std::unordered_map<int32_t, StagedPartition> staged_;  // ready; guarded by stage_mu_
  std::unordered_set<int32_t> staging_in_flight_;        // guarded by stage_mu_
  double background_seconds_ = 0.0;                      // guarded by stage_mu_
};

}  // namespace mariusgnn

#endif  // SRC_STORAGE_PARTITION_BUFFER_H_
