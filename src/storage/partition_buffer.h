// Partition buffer: holds `capacity` physical node partitions of per-node vector data
// (base representations and, when learnable, their Adagrad state) in CPU memory, backed
// by a SimulatedDisk file laid out partition-by-partition.
//
// This is the storage-layer component of Figure 2: the replacement policy decides which
// partitions are resident; the processing layer reads/writes rows of resident
// partitions by global node id. Dirty partitions are written back on eviction.
#ifndef SRC_STORAGE_PARTITION_BUFFER_H_
#define SRC_STORAGE_PARTITION_BUFFER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/partition.h"
#include "src/storage/disk.h"
#include "src/tensor/tensor.h"

namespace mariusgnn {

class PartitionBuffer {
 public:
  // `learnable` adds a parallel Adagrad accumulator stream persisted next to the
  // values. `init` seeds the on-disk values (rows indexed by global node id); pass
  // nullptr to zero-initialise.
  PartitionBuffer(const Partitioning* partitioning, int64_t dim, int32_t capacity,
                  const std::string& path, DiskModel model, bool learnable,
                  const Tensor* init);

  int32_t capacity() const { return capacity_; }
  int64_t dim() const { return dim_; }

  bool IsResident(int32_t partition) const {
    return slot_of_partition_[static_cast<size_t>(partition)] >= 0;
  }

  // Makes exactly `partitions` resident (evicting others, loading missing ones) and
  // returns the modeled IO seconds spent. |partitions| must be <= capacity.
  double SetResident(const std::vector<int32_t>& partitions);

  // Flushes all dirty partitions to disk; returns modeled IO seconds.
  double FlushAll();

  // Row access by global node id; the node's partition must be resident.
  float* ValueRow(int64_t node);
  const float* ValueRow(int64_t node) const;
  float* StateRow(int64_t node);  // Adagrad accumulator row (learnable only)

  void MarkDirty(int64_t node) {
    dirty_[static_cast<size_t>(slot_of_partition_[static_cast<size_t>(
        partitioning_->PartitionOf(node))])] = true;
  }

  // Nodes of all resident partitions (used to bound negative sampling to in-memory
  // data and to rebuild the in-memory edge index).
  std::vector<int64_t> ResidentNodes() const;
  std::vector<int32_t> ResidentPartitions() const;

  const DiskStats& disk_stats() const { return disk_->stats(); }
  void ResetDiskStats() { disk_->ResetStats(); }

  // Reads the full on-disk table into a num_nodes x dim tensor indexed by global node
  // id (for post-training evaluation). Flushes dirty partitions first.
  Tensor ExportAll();

 private:
  uint64_t PartitionFileOffset(int32_t partition) const;
  double LoadIntoSlot(int32_t partition, int32_t slot);
  double EvictSlot(int32_t slot);
  int64_t SlotRowOf(int64_t node) const;

  const Partitioning* partitioning_;
  int64_t dim_;
  int32_t capacity_;
  bool learnable_;
  int64_t max_partition_rows_ = 0;
  std::unique_ptr<SimulatedDisk> disk_;
  // Buffer storage: capacity_ slots of max_partition_rows_ rows each. Values and
  // (optionally) Adagrad state share slot geometry.
  std::vector<float> values_;
  std::vector<float> state_;
  std::vector<int32_t> partition_in_slot_;  // -1 = free
  std::vector<int32_t> slot_of_partition_;  // -1 = not resident
  std::vector<bool> dirty_;
};

}  // namespace mariusgnn

#endif  // SRC_STORAGE_PARTITION_BUFFER_H_
