// Partition buffer: holds `capacity` physical node partitions of per-node vector data
// (base representations and, when learnable, their Adagrad state) in CPU memory, backed
// by a SimulatedDisk file laid out partition-by-partition.
//
// This is the storage-layer component of Figure 2: the replacement policy decides which
// partitions are resident; the processing layer reads/writes rows of resident
// partitions by global node id. Dirty partitions are written back on eviction.
//
// With async IO enabled, the buffer drives a batched IO engine (io_engine.h) so
// partition IO overlaps with compute (the paper's "hide the IO" pipeline stage):
//  - Prefetch() submits reads for upcoming partitions (OrderingPolicy::Lookahead
//    tells the trainer which) into 4 KiB-aligned arena slots; the engine keeps up
//    to queue_depth transfers in flight and completions land **out of order** — a
//    slow partition no longer head-of-line-blocks the rest of the window;
//  - SetResident() installs staged partitions with a memcpy instead of a blocking
//    disk read, and pushes dirty-eviction write-backs off the critical path; the
//    engine deprioritises those writes behind reads and coalesces adjacent ones;
//  - ConsumeBackgroundIoSeconds() reports the modeled seconds of that overlapped IO
//    so trainers can account stalls as max(0, background_io - compute).
// Ordering safety no longer relies on a FIFO queue: the engine preserves per-tag
// (per-partition) program order, so a prefetch read submitted after a write-back
// of the same partition always observes the written data, while transfers for
// different partitions proceed concurrently.
//
// On-disk layout: each partition owns a fixed extent of streams (values, then
// optional Adagrad state), each stream padded to kIoAlignment. The padding makes
// every engine transfer alignment-eligible for O_DIRECT and makes neighbouring
// dirty partitions byte-adjacent, which is what lets the engine merge their
// write-backs into single large transfers.
#ifndef SRC_STORAGE_PARTITION_BUFFER_H_
#define SRC_STORAGE_PARTITION_BUFFER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/graph/partition.h"
#include "src/storage/disk.h"
#include "src/storage/io_arena.h"
#include "src/storage/io_engine.h"
#include "src/tensor/tensor.h"
#include "src/util/check.h"

namespace mariusgnn {

// How the buffer performs partition IO. Defaults describe the synchronous
// (no-overlap) mode; trainers enable `async` when prefetching is on.
struct PartitionIoOptions {
  // Run the batched IO engine: Prefetch() stages ahead and dirty evictions write
  // back in the background. When false the buffer is fully synchronous and the
  // remaining fields are ignored.
  bool async = false;
  // In-flight transfer limit (engine worker count). 1 = serial engine.
  int queue_depth = 4;
  // Probe the backing filesystem for O_DIRECT and, when supported, route aligned
  // transfers around the page cache (falls back to buffered transparently).
  bool direct_io = true;
  // Merge adjacent dirty write-backs into single transfers.
  bool coalesce_writes = true;
  // Test seams, forwarded to IoEngineOptions.
  size_t max_transfer_bytes = 0;
  std::function<void(const IoRequest&)> before_io;
};

class PartitionBuffer {
 public:
  // `learnable` adds a parallel Adagrad accumulator stream persisted next to the
  // values. `init` seeds the on-disk values (rows indexed by global node id); pass
  // nullptr to zero-initialise. `io` selects synchronous or engine-backed IO.
  PartitionBuffer(const Partitioning* partitioning, int64_t dim, int32_t capacity,
                  const std::string& path, DiskModel model, bool learnable,
                  const Tensor* init, PartitionIoOptions io = PartitionIoOptions());
  ~PartitionBuffer();

  PartitionBuffer(const PartitionBuffer&) = delete;
  PartitionBuffer& operator=(const PartitionBuffer&) = delete;

  int32_t capacity() const { return capacity_; }
  int64_t dim() const { return dim_; }
  bool async_io() const { return engine_ != nullptr; }
  // True when the O_DIRECT probe succeeded and the engine bypasses the page cache.
  bool direct_io() const { return disk_->direct_io(); }
  int io_queue_depth() const { return engine_ ? engine_->queue_depth() : 1; }

  bool IsResident(int32_t partition) const {
    return slot_of_partition_[static_cast<size_t>(partition)] >= 0;
  }

  // Makes exactly `partitions` resident (evicting others, loading missing ones) and
  // returns the modeled IO seconds spent *synchronously* — staged partitions install
  // without disk reads and dirty evictions write back in the background (their
  // modeled seconds surface via ConsumeBackgroundIoSeconds). |partitions| must be
  // <= capacity.
  double SetResident(const std::vector<int32_t>& partitions);

  // Asynchronously stages `partitions` (skipping resident / already-staged ones) so
  // a later SetResident installs them without blocking on disk. No-op when async IO
  // is disabled. Returns immediately.
  void Prefetch(const std::vector<int32_t>& partitions);

  // Modeled seconds of background IO (prefetch reads + async write-backs) completed
  // since the last call. Always 0 when async IO is disabled.
  double ConsumeBackgroundIoSeconds();

  // Engine transfer counters since the last call (EpochStats reporting). Zeroes
  // when async IO is disabled.
  IoEngineStats ConsumeIoStats();

  // Flushes all dirty partitions to disk (draining pending background IO first);
  // returns modeled IO seconds of the synchronous flush.
  double FlushAll();

  // Multi-replica ownership map (one byte per physical partition, nonzero =
  // this replica writes it back). Dirty evictions of unowned partitions are
  // skipped: with replicas sharing one backing file over a common storage dir,
  // every replica holds identical state, so only the owner's write-back is
  // needed and concurrent redundant writes are avoided. Only safe with SHARED
  // backing storage — with a private per-rank file a skipped write-back would
  // leave stale rows for this rank's own later reads. Empty (the default)
  // means this replica owns everything.
  void SetPartitionOwnership(std::vector<uint8_t> owned) {
    MG_CHECK_MSG(owned.size() ==
                     static_cast<size_t>(partitioning_->num_partitions()),
                 "ownership map size does not match the partition count");
    owned_partitions_ = std::move(owned);
  }
  bool OwnsPartition(int32_t partition) const {
    return owned_partitions_.empty() ||
           owned_partitions_[static_cast<size_t>(partition)] != 0;
  }
  // True when an ownership map has partitioned write-backs across replicas —
  // i.e. the buffer is in shared-storage multi-replica mode and readers need
  // the cross-replica write-back barrier (see GradientExchange::Barrier).
  bool partition_ownership_active() const { return !owned_partitions_.empty(); }

  // Blocks until every already-submitted async IO request (prefetch reads and
  // dirty write-backs) has completed. No-op when async IO is disabled. This is
  // the local half of the shared-storage write-back barrier: drain own writes,
  // then rendezvous, then it is safe for any replica to re-read.
  void DrainIo();

  // Row access by global node id; the node's partition must be resident.
  float* ValueRow(int64_t node);
  const float* ValueRow(int64_t node) const;
  float* StateRow(int64_t node);  // Adagrad accumulator row (learnable only)

  // Safe to call concurrently from compute worker threads (the sharded sparse
  // Adagrad marks dirty inside its parallel chunks): the per-slot flags are whole
  // bytes written with relaxed atomic stores — unlike the bit-packed vector<bool>
  // this replaces, two threads marking different slots never touch the same byte,
  // and marking the same slot twice is an idempotent store. The parallel region's
  // join (ForEachChunk) publishes the flags before any eviction reads them.
  void MarkDirty(int64_t node) {
    const int32_t part = partitioning_->PartitionOf(node);
    const int32_t slot = slot_of_partition_[static_cast<size_t>(part)];
    MG_CHECK_MSG(slot >= 0, "MarkDirty: node's partition is not resident");
    dirty_[static_cast<size_t>(slot)].store(1, std::memory_order_relaxed);
  }

  // Nodes of all resident partitions (used to bound negative sampling to in-memory
  // data and to rebuild the in-memory edge index).
  std::vector<int64_t> ResidentNodes() const;
  std::vector<int32_t> ResidentPartitions() const;

  // Snapshot of device-level counters (thread-safe; the engine may be mid-flight).
  DiskStats disk_stats() const { return disk_->stats(); }
  void ResetDiskStats() { disk_->ResetStats(); }

  // Reads the full on-disk table into a num_nodes x dim tensor indexed by global node
  // id (for post-training evaluation). Flushes dirty partitions first.
  Tensor ExportAll();

  // Same, for the Adagrad accumulator stream (learnable buffers only). Together
  // with ExportAll this is the checkpoint image of the embedding table.
  Tensor ExportAllState();

  // Overwrites the full on-disk table (values and, when learnable, accumulator
  // state) from node-indexed tensors — the inverse of ExportAll/ExportAllState,
  // used by checkpoint restore. Flushes and evicts everything first, so the next
  // SetResident reads the imported data. `state` must be non-null iff learnable.
  void ImportAll(const Tensor& values, const Tensor* state);

  // Streams one partition out (the streaming checkpoint writer's unit of work):
  // copies the partition's rows, in partition-local order, into the caller's
  // buffers — each at least PartitionSize(partition) * dim floats — without
  // materialising the full table. Resident partitions flush through directly
  // from buffer memory (dirty or not — no eviction, so residency and the
  // training trajectory are untouched); evicted ones are read through the
  // engine, which keeps the read ordered behind any in-flight write-back of the
  // same partition. Pass nullptr to skip a stream; `state_out` requires a
  // learnable buffer. Returns modeled synchronous IO seconds.
  double ExportPartition(int32_t partition, float* values_out, float* state_out);

  // Prepares a partition-by-partition overwrite of the on-disk table (streaming
  // checkpoint restore): flushes + evicts every slot and discards staged
  // prefetches of the soon-to-be-stale data. Call once, then ImportPartition
  // for each partition before the next SetResident.
  void BeginImport();

  // Overwrites one partition's on-disk streams with rows in partition-local
  // order — the inverse of ExportPartition. `state` must be non-null iff the
  // buffer is learnable. Only valid after BeginImport (nothing resident).
  void ImportPartition(int32_t partition, const float* values, const float* state);

 private:
  // A prefetched partition parked between the IO engine and installation: one
  // arena slot holding the partition's full on-disk extent (both streams, padded
  // layout — see PartitionFileOffset).
  struct StagedPartition {
    float* extent = nullptr;  // owned by arena_ until installed or discarded
  };
  // In-flight prefetch bookkeeping (guarded by stage_mu_).
  struct StagingInFlight {
    float* extent = nullptr;
  };

  uint64_t PartitionFileOffset(int32_t partition) const;
  // Bytes of one stream's payload for `partition` (actual rows, no padding).
  size_t StreamPayloadBytes(int32_t partition) const;
  // Bytes the engine transfers for `partition`: both streams at padded stride,
  // trailing stream aligned up. Always kIoAlignment-aligned.
  size_t ExtentTransferBytes(int32_t partition) const;
  Tensor ExportStream(bool state_stream);
  double LoadIntoSlot(int32_t partition, int32_t slot);
  double EvictSlot(int32_t slot, bool synchronous);
  int64_t SlotRowOf(int64_t node) const;
  int32_t FindFreeSlot() const;
  void InstallIntoSlot(int32_t partition, int32_t slot, const float* extent);
  // Drops staged extents for partitions not in `wanted` (stale lookahead after a
  // mid-epoch resize), returning their arena slots. Caller holds stage_mu_.
  void DiscardStaleStagedLocked(const std::unordered_set<int32_t>& wanted);

  const Partitioning* partitioning_;
  int64_t dim_;
  int32_t capacity_;
  bool learnable_;
  int64_t max_partition_rows_ = 0;
  // Padded on-disk geometry (see file-layout comment above).
  size_t stream_bytes_ = 0;      // max_partition_rows_ * dim_ * sizeof(float)
  size_t stream_bytes_pad_ = 0;  // AlignUpIo(stream_bytes_)
  size_t partition_extent_ = 0;  // streams * stream_bytes_pad_
  std::unique_ptr<SimulatedDisk> disk_;
  // Buffer storage: capacity_ slots of max_partition_rows_ rows each. Values and
  // (optionally) Adagrad state share slot geometry.
  AlignedBuffer values_;
  AlignedBuffer state_;
  std::vector<int32_t> partition_in_slot_;  // -1 = free
  std::vector<int32_t> slot_of_partition_;  // -1 = not resident
  // Per-slot dirty flags, one byte per slot so worker threads can mark without
  // data races (see MarkDirty). Owned array rather than vector<atomic> because
  // atomics are neither copyable nor movable element-wise.
  std::unique_ptr<std::atomic<uint8_t>[]> dirty_;
  // Per-partition write-back ownership (see SetPartitionOwnership); empty =
  // own everything.
  std::vector<uint8_t> owned_partitions_;

  // Async IO state (null when PartitionIoOptions::async is false). Declaration
  // order matters: the engine destructor drains in-flight completions, which
  // release arena slots and touch stage_mu_ — so engine_ is declared after (and
  // destroyed before) arena_ and the staging state.
  std::mutex stage_mu_;
  std::condition_variable stage_cv_;
  std::unordered_map<int32_t, StagedPartition> staged_;        // guarded by stage_mu_
  std::unordered_map<int32_t, StagingInFlight> staging_in_flight_;  // guarded by stage_mu_
  double background_seconds_ = 0.0;                            // guarded by stage_mu_
  std::unique_ptr<IoArena> arena_;
  std::unique_ptr<IoEngine> engine_;
};

}  // namespace mariusgnn

#endif  // SRC_STORAGE_PARTITION_BUFFER_H_
