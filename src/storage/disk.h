// Block storage with a deterministic performance model.
//
// The paper's disk experiments run on an EBS volume with 1 GB/s bandwidth and 10k IOPS.
// That hardware is not available here, so SimulatedDisk performs *real* file IO for
// correctness while charging every operation to a virtual clock using a simple
// latency + bandwidth model:
//
//     seconds(op, bytes) = 1/iops + bytes/bandwidth
//
// Out-of-core experiments report modeled IO seconds (overlapped with compute when
// prefetching is on), which keeps the COMET-vs-BETA comparisons deterministic and
// host-independent. See DESIGN.md §1 for the substitution rationale.
#ifndef SRC_STORAGE_DISK_H_
#define SRC_STORAGE_DISK_H_

#include <cstdint>
#include <string>

#include "src/util/binary_io.h"
#include "src/util/timer.h"

namespace mariusgnn {

struct DiskModel {
  double bandwidth_bytes_per_sec = 1e9;  // EBS gp-class volume, per the paper's setup
  double iops = 10000.0;
  uint64_t block_size = 1 << 19;  // 512 KiB: the size below which reads go random

  double SecondsFor(uint64_t bytes, uint64_t ops) const {
    return static_cast<double>(ops) / iops +
           static_cast<double>(bytes) / bandwidth_bytes_per_sec;
  }
};

struct DiskStats {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  double modeled_seconds = 0.0;

  void Reset() { *this = DiskStats(); }
};

class SimulatedDisk {
 public:
  SimulatedDisk(const std::string& path, DiskModel model = DiskModel())
      : file_(path, /*truncate=*/true), model_(model) {}

  void Read(void* dst, size_t bytes, uint64_t offset);
  void Write(const void* src, size_t bytes, uint64_t offset);
  void Resize(uint64_t bytes) { file_.Resize(bytes); }

  const DiskStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }
  const DiskModel& model() const { return model_; }

 private:
  // An IO of `bytes` issued as ceil(bytes/block) device ops, matching the model's
  // transition from sequential to random access as reads shrink (Section 6, "disk
  // access transitions from large sequential reads/writes to small random ones").
  uint64_t OpsFor(size_t bytes) const {
    return bytes == 0 ? 0 : (bytes + model_.block_size - 1) / model_.block_size;
  }

  File file_;
  DiskModel model_;
  DiskStats stats_;
};

}  // namespace mariusgnn

#endif  // SRC_STORAGE_DISK_H_
