// Block storage with a deterministic performance model.
//
// The paper's disk experiments run on an EBS volume with 1 GB/s bandwidth and 10k IOPS.
// That hardware is not available here, so SimulatedDisk performs *real* file IO for
// correctness while charging every operation to a virtual clock using a simple
// latency + bandwidth model:
//
//     seconds(op, bytes) = 1/iops + bytes/bandwidth
//
// Out-of-core experiments report modeled IO seconds (overlapped with compute when
// prefetching is on), which keeps the COMET-vs-BETA comparisons deterministic and
// host-independent. See DESIGN.md §1 for the substitution rationale.
//
// Read/Write are thread-safe (the IoEngine issues many in-flight transfers from a
// worker pool; positional pread/pwrite need no shared cursor and the stats are
// mutex-guarded) and return the modeled seconds of the individual operation so
// concurrent callers never have to diff the global stats counter.
//
// When constructed with direct_io = true, the disk additionally opens the file
// O_DIRECT (the caller probes filesystem support first — see ProbeDirectIo in
// io_engine.h) and routes every fully aligned transfer (offset, length, and
// buffer all kIoAlignment-aligned) around the page cache; unaligned transfers
// fall back to the buffered descriptor transparently. Mixing the two descriptors
// on one file is safe: the kernel invalidates overlapping page-cache ranges on
// direct writes.
#ifndef SRC_STORAGE_DISK_H_
#define SRC_STORAGE_DISK_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "src/util/binary_io.h"
#include "src/util/timer.h"

namespace mariusgnn {

struct DiskModel {
  double bandwidth_bytes_per_sec = 1e9;  // EBS gp-class volume, per the paper's setup
  double iops = 10000.0;
  uint64_t block_size = 1 << 19;  // 512 KiB: the size below which reads go random

  double SecondsFor(uint64_t bytes, uint64_t ops) const {
    return static_cast<double>(ops) / iops +
           static_cast<double>(bytes) / bandwidth_bytes_per_sec;
  }

  // Modeled seconds of an operation issued while `depth` requests are kept in
  // flight: the latency term amortises across the queue (device IOPS ratings
  // assume saturated queues — that is exactly what an SQ/CQ engine provides)
  // while the bandwidth term is a shared resource and stays serial. depth <= 1
  // degenerates to SecondsFor.
  double SecondsForAtDepth(uint64_t bytes, uint64_t ops, int depth) const {
    const double d = depth > 1 ? static_cast<double>(depth) : 1.0;
    return static_cast<double>(ops) / (iops * d) +
           static_cast<double>(bytes) / bandwidth_bytes_per_sec;
  }
};

struct DiskStats {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  uint64_t direct_ops = 0;  // transfers that went through the O_DIRECT descriptor
  double modeled_seconds = 0.0;

  void Reset() { *this = DiskStats(); }
};

class SimulatedDisk {
 public:
  SimulatedDisk(const std::string& path, DiskModel model = DiskModel(),
                bool direct_io = false);

  // Thread-safe; return the modeled seconds charged for this operation.
  double Read(void* dst, size_t bytes, uint64_t offset);
  double Write(const void* src, size_t bytes, uint64_t offset);
  void Resize(uint64_t bytes) { file_.Resize(bytes); }

  DiskStats stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.Reset();
  }
  const DiskModel& model() const { return model_; }
  // True when the O_DIRECT descriptor opened (aligned transfers bypass the cache).
  bool direct_io() const { return direct_file_ != nullptr; }

  // An IO of `bytes` issued as ceil(bytes/block) device ops, matching the model's
  // transition from sequential to random access as reads shrink (Section 6, "disk
  // access transitions from large sequential reads/writes to small random ones").
  uint64_t OpsFor(size_t bytes) const {
    return bytes == 0 ? 0 : (bytes + model_.block_size - 1) / model_.block_size;
  }

 private:
  // The direct descriptor serves a transfer only when offset, length, and the
  // user buffer all meet the O_DIRECT alignment contract.
  bool DirectEligible(const void* buf, size_t bytes, uint64_t offset) const;

  File file_;
  std::unique_ptr<File> direct_file_;  // null when unsupported or not requested
  DiskModel model_;
  mutable std::mutex stats_mu_;
  DiskStats stats_;  // guarded by stats_mu_
};

}  // namespace mariusgnn

#endif  // SRC_STORAGE_DISK_H_
