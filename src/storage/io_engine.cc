#include "src/storage/io_engine.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "src/storage/io_arena.h"
#include "src/util/check.h"

namespace mariusgnn {

namespace {

// Cap on a single coalesced write-back transfer. Keeps one merged write from
// monopolising a worker (and the device's bandwidth term) for too long.
constexpr size_t kMaxCoalescedBytes = 8u << 20;  // 8 MiB

}  // namespace

IoEngine::IoEngine(SimulatedDisk* disk, IoEngineOptions options)
    : disk_(disk), options_(std::move(options)) {
  MG_CHECK(disk_ != nullptr);
  MG_CHECK_MSG(options_.queue_depth >= 1, "io queue depth must be >= 1");
  last_event_ = std::chrono::steady_clock::now();
  workers_.reserve(static_cast<size_t>(options_.queue_depth));
  for (int i = 0; i < options_.queue_depth; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

IoEngine::~IoEngine() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void IoEngine::NoteEventLocked() {
  const auto now = std::chrono::steady_clock::now();
  const int outstanding = static_cast<int>(sq_.size()) + inflight_;
  if (outstanding > 0) {
    const double dt = std::chrono::duration<double>(now - last_event_).count();
    depth_integral_ += dt * outstanding;
    busy_seconds_ += dt;
  }
  last_event_ = now;
}

void IoEngine::SubmitRead(int32_t tag, void* dst, size_t bytes, uint64_t offset,
                          Completion done) {
  MG_CHECK(dst != nullptr || bytes == 0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    NoteEventLocked();
    IoRequest req;
    req.kind = IoRequest::Kind::kRead;
    req.tag = tag;
    req.offset = offset;
    req.bytes = bytes;
    req.dst = dst;
    sq_.push_back(Pending{req, std::move(done), next_seq_++});
    stats_.read_requests += 1;
    stats_.read_bytes += bytes;
    stats_.inflight_peak = std::max(
        stats_.inflight_peak, static_cast<int>(sq_.size()) + inflight_);
  }
  work_cv_.notify_one();
}

void IoEngine::SubmitWrite(int32_t tag, const void* src, size_t bytes,
                           uint64_t offset, Completion done) {
  MG_CHECK(src != nullptr || bytes == 0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    NoteEventLocked();
    IoRequest req;
    req.kind = IoRequest::Kind::kWrite;
    req.tag = tag;
    req.offset = offset;
    req.bytes = bytes;
    req.src = src;
    sq_.push_back(Pending{req, std::move(done), next_seq_++});
    stats_.write_requests += 1;
    stats_.write_bytes += bytes;
    stats_.inflight_peak = std::max(
        stats_.inflight_peak, static_cast<int>(sq_.size()) + inflight_);
  }
  work_cv_.notify_one();
}

double IoEngine::ReadSync(int32_t tag, void* dst, size_t bytes,
                          uint64_t offset) {
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool finished = false;
  SubmitRead(tag, dst, bytes, offset, [&](double /*modeled_seconds*/) {
    std::lock_guard<std::mutex> lock(done_mu);
    finished = true;
    done_cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return finished; });
  // A blocking miss cannot overlap anything: charge full undepthed latency,
  // regardless of what the queue looked like when the transfer ran.
  return disk_->model().SecondsFor(bytes, disk_->OpsFor(bytes));
}

void IoEngine::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return sq_.empty() && inflight_ == 0; });
}

IoEngineStats IoEngine::ConsumeStats() {
  std::lock_guard<std::mutex> lock(mu_);
  NoteEventLocked();
  IoEngineStats out = stats_;
  out.queue_depth_mean =
      busy_seconds_ > 0.0 ? depth_integral_ / busy_seconds_ : 0.0;
  stats_ = IoEngineStats();
  depth_integral_ = 0.0;
  busy_seconds_ = 0.0;
  return out;
}

std::vector<IoEngine::Pending> IoEngine::ClaimLocked() {
  std::vector<Pending> batch;
  // Scan the submission queue in order. A request is claimable when its tag has
  // no in-flight request and no earlier queued request (per-tag program order).
  // The first claimable *read* wins (reads gate the next partition set); a
  // read that is blocked only by an earlier claimable same-tag write elevates
  // that write instead (the read cannot start until it lands anyway); failing
  // both, the first claimable write runs.
  std::unordered_set<int32_t> earlier_tags;
  std::unordered_map<int32_t, size_t> claimable_write;  // tag -> queue index
  size_t pick = sq_.size();
  size_t first_write = sq_.size();
  for (size_t i = 0; i < sq_.size(); ++i) {
    const Pending& p = sq_[i];
    const int32_t tag = p.req.tag;
    const bool tag_free =
        earlier_tags.count(tag) == 0 && tag_busy_.count(tag) == 0;
    if (p.req.kind == IoRequest::Kind::kRead) {
      if (tag_free) {
        pick = i;
        break;
      }
      auto it = claimable_write.find(tag);
      if (it != claimable_write.end()) {
        pick = it->second;  // elevate the write this read is stuck behind
        break;
      }
    } else if (tag_free) {
      if (first_write == sq_.size()) {
        first_write = i;
      }
      claimable_write.emplace(tag, i);
    }
    earlier_tags.insert(tag);
  }
  if (pick == sq_.size()) {
    pick = first_write;
  }
  if (pick == sq_.size()) {
    return batch;  // everything queued is ordered behind an in-flight request
  }

  const bool is_write = sq_[pick].req.kind == IoRequest::Kind::kWrite;
  batch.push_back(std::move(sq_[pick]));
  sq_.erase(sq_.begin() + static_cast<ptrdiff_t>(pick));

  if (is_write && options_.coalesce_writes) {
    // Grow the batch with queued writes adjacent to its byte range. A partner
    // must itself be claimable *given the batch*: no in-flight same-tag
    // request, and every earlier queued same-tag request already in the batch
    // (an earlier same-tag read must not be jumped — write-after-read). Batch
    // members are not yet counted in tag_busy_, so same-tag partners whose
    // predecessor is the batch itself merge naturally.
    uint64_t lo = batch.front().req.offset;
    uint64_t hi = lo + batch.front().req.bytes;
    size_t total = batch.front().req.bytes;
    bool grew = true;
    while (grew && total < kMaxCoalescedBytes) {
      grew = false;
      std::unordered_set<int32_t> queued_earlier;
      for (size_t i = 0; i < sq_.size(); ++i) {
        const Pending& p = sq_[i];
        const int32_t tag = p.req.tag;
        const bool mergeable =
            p.req.kind == IoRequest::Kind::kWrite &&
            queued_earlier.count(tag) == 0 && tag_busy_.count(tag) == 0 &&
            (p.req.offset == hi || p.req.offset + p.req.bytes == lo) &&
            total + p.req.bytes <= kMaxCoalescedBytes;
        if (mergeable) {
          lo = std::min(lo, p.req.offset);
          hi = std::max(hi, p.req.offset + p.req.bytes);
          total += p.req.bytes;
          batch.push_back(std::move(sq_[i]));
          sq_.erase(sq_.begin() + static_cast<ptrdiff_t>(i));
          stats_.coalesced_writes += 1;
          grew = true;
          break;  // ranges changed; rescan from the front
        }
        queued_earlier.insert(tag);
      }
    }
  }

  for (const Pending& p : batch) {
    // io_engine.tag_order: claiming is starting. Batch members are claimed in
    // queue order, which the coalescing loop keeps equal to per-tag submission
    // order, so seq must be increasing per tag across every claim.
    rv_tag_order_.ObserveStart(p.req.tag, p.seq);
    tag_busy_[p.req.tag] += 1;
  }
  inflight_ += static_cast<int>(batch.size());
  return batch;
}

void IoEngine::ExecuteBatch(std::vector<Pending>* batch) {
  if (options_.before_io) {
    for (const Pending& p : *batch) {
      options_.before_io(p.req);
    }
  }

  // Issue a transfer in max_transfer_bytes slices (test seam; 0 = one slice).
  const auto transfer = [&](const IoRequest::Kind kind, void* dst,
                            const void* src, size_t bytes, uint64_t offset) {
    const size_t step =
        options_.max_transfer_bytes > 0 ? options_.max_transfer_bytes : bytes;
    size_t done = 0;
    while (done < bytes) {
      const size_t n = std::min(step, bytes - done);
      if (kind == IoRequest::Kind::kRead) {
        disk_->Read(static_cast<char*>(dst) + done, n, offset + done);
      } else {
        disk_->Write(static_cast<const char*>(src) + done, n, offset + done);
      }
      done += n;
    }
  };

  const int depth = options_.queue_depth;
  std::vector<double> modeled(batch->size(), 0.0);
  if (batch->size() == 1) {
    const IoRequest& r = batch->front().req;
    transfer(r.kind, r.dst, r.src, r.bytes, r.offset);
    modeled[0] = disk_->model().SecondsForAtDepth(r.bytes,
                                                  disk_->OpsFor(r.bytes), depth);
  } else {
    // Coalesced write-back: assemble the adjacent ranges into one aligned
    // scratch buffer and issue a single device transfer. The whole point —
    // modeled ops are charged for the merged extent, not per request.
    std::sort(batch->begin(), batch->end(),
              [](const Pending& a, const Pending& b) {
                return a.req.offset < b.req.offset;
              });
    const uint64_t lo = batch->front().req.offset;
    size_t total = 0;
    for (const Pending& p : *batch) {
      total += p.req.bytes;
    }
    AlignedBuffer scratch((total + sizeof(float) - 1) / sizeof(float));
    for (const Pending& p : *batch) {
      std::memcpy(reinterpret_cast<char*>(scratch.data()) +
                      (p.req.offset - lo),
                  p.req.src, p.req.bytes);
    }
    transfer(IoRequest::Kind::kWrite, nullptr, scratch.data(), total, lo);
    const double merged_seconds =
        disk_->model().SecondsForAtDepth(total, disk_->OpsFor(total), depth);
    // Each member owns its share of the merged cost, proportional to bytes.
    for (size_t i = 0; i < batch->size(); ++i) {
      modeled[i] = merged_seconds *
                   (static_cast<double>((*batch)[i].req.bytes) /
                    static_cast<double>(total));
    }
  }

  for (size_t i = 0; i < batch->size(); ++i) {
    if ((*batch)[i].done) {
      (*batch)[i].done(modeled[i]);
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    NoteEventLocked();
    for (const Pending& p : *batch) {
      auto it = tag_busy_.find(p.req.tag);
      if (--(it->second) == 0) {
        tag_busy_.erase(it);
      }
    }
    inflight_ -= static_cast<int>(batch->size());
    if (sq_.empty() && inflight_ == 0) {
      idle_cv_.notify_all();
    }
  }
  // Completed tags may unblock several queued requests at once.
  work_cv_.notify_all();
}

void IoEngine::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    std::vector<Pending> batch = ClaimLocked();
    if (!batch.empty()) {
      lock.unlock();
      ExecuteBatch(&batch);
      lock.lock();
      continue;
    }
    if (stop_) {
      return;
    }
    work_cv_.wait(lock);
  }
}

bool ProbeDirectIo(const std::string& directory) {
#if !defined(O_DIRECT)
  (void)directory;
  return false;
#else
  static std::atomic<uint64_t> counter{0};
  const std::string path = directory + "/.direct_probe." +
                           std::to_string(::getpid()) + "." +
                           std::to_string(counter.fetch_add(1));
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_DIRECT, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return false;  // filesystem refuses O_DIRECT at open (tmpfs, overlayfs, ...)
  }
  bool ok = false;
  void* buf = std::aligned_alloc(kIoAlignment, kIoAlignment);
  if (buf != nullptr) {
    std::memset(buf, 0x5a, kIoAlignment);
    ssize_t w;
    do {
      w = ::pwrite(fd, buf, kIoAlignment, 0);
    } while (w < 0 && errno == EINTR);
    if (w == static_cast<ssize_t>(kIoAlignment)) {
      std::memset(buf, 0, kIoAlignment);
      ssize_t r;
      do {
        r = ::pread(fd, buf, kIoAlignment, 0);
      } while (r < 0 && errno == EINTR);
      ok = r == static_cast<ssize_t>(kIoAlignment) &&
           static_cast<unsigned char*>(buf)[0] == 0x5a;
    }
    std::free(buf);
  }
  ::close(fd);
  ::unlink(path.c_str());
  return ok;
#endif
}

}  // namespace mariusgnn
