#include "src/storage/io_arena.h"

#include <cstdlib>
#include <cstring>
#include <utility>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "src/util/check.h"

namespace mariusgnn {

namespace {

// aligned_alloc requires the size to be a multiple of the alignment; hugepage
// advice is best-effort (requires Linux + THP enabled) and never load-bearing.
void* AllocAligned(size_t bytes) {
  const size_t rounded = AlignUpIo(bytes == 0 ? kIoAlignment : bytes);
  void* p = std::aligned_alloc(kIoAlignment, rounded);
  MG_CHECK_MSG(p != nullptr, "aligned allocation failed");
  std::memset(p, 0, rounded);
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  ::madvise(p, rounded, MADV_HUGEPAGE);
#endif
  return p;
}

}  // namespace

AlignedBuffer::AlignedBuffer(size_t count) : size_(count) {
  data_ = static_cast<float*>(AllocAligned(count * sizeof(float)));
}

AlignedBuffer::~AlignedBuffer() { std::free(data_); }

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)), size_(std::exchange(other.size_, 0)) {}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    std::free(data_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

IoArena::IoArena(size_t slot_bytes, int num_slots)
    : slot_bytes_(AlignUpIo(slot_bytes)), num_slots_(num_slots) {
  MG_CHECK(num_slots_ >= 1);
  base_ = static_cast<char*>(AllocAligned(slot_bytes_ * static_cast<size_t>(num_slots_)));
  free_.reserve(static_cast<size_t>(num_slots_));
  // Hand slots out lowest-address first (pop from the back of the free list).
  for (int i = num_slots_ - 1; i >= 0; --i) {
    free_.push_back(reinterpret_cast<float*>(base_ + static_cast<size_t>(i) * slot_bytes_));
  }
}

IoArena::~IoArena() {
  MG_CHECK_MSG(static_cast<int>(free_.size()) == num_slots_,
               "IoArena destroyed with slots still in use");
  std::free(base_);
}

int IoArena::FreeSlots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(free_.size());
}

float* IoArena::Acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !free_.empty(); });
  float* slot = free_.back();
  free_.pop_back();
  return slot;
}

void IoArena::Release(float* slot) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(slot);
  }
  cv_.notify_one();
}

}  // namespace mariusgnn
