// Batched asynchronous IO engine for the partition buffer.
//
// The prefetch path used to be a single background thread issuing one synchronous
// pread per partition in FIFO order: one in-flight request, and dirty write-backs
// head-of-line-blocking the reads the next partition set needs. This engine
// replaces it with an io_uring-style submission/completion-queue structure on a
// portable thread-pool backend, so tests and CI run anywhere:
//
//  - callers submit read/write requests tagged with a partition id; a pool of
//    queue_depth IO workers keeps up to queue_depth transfers in flight;
//  - completions fire **out of order** — a slow partition no longer blocks the
//    rest of the lookahead window (the caller installs staged partitions behind
//    its own SetResident seam, so reordering never changes what is installed);
//  - per-tag program order is preserved: two requests with the same tag execute
//    in submission order, which is exactly the read-after-write /
//    write-after-read hazard rule the partition buffer needs (a prefetch read of
//    a partition queued behind its own dirty write-back always observes the
//    written data). Requests with different tags are independent byte ranges and
//    run concurrently.
//  - scheduling prioritises reads over writes (reads gate the next partition
//    set; write-backs only need to finish eventually), except that a write
//    blocking a same-tag read is elevated so the read is not starved;
//  - adjacent dirty write-backs coalesce into one larger transfer (fewer device
//    ops under the 1/iops latency model — the paper's "large sequential writes"
//    regime), bounded by kMaxCoalescedBytes.
//
// Modeled-time accounting: each completion receives the request's modeled seconds
// at the engine's queue depth (DiskModel::SecondsForAtDepth — the latency term
// amortises across a saturated queue, the bandwidth term stays serial), which is
// what the trainers fold into io_stall_seconds. ReadSync charges full undepthed
// latency: a blocking miss cannot hide behind anything.
#ifndef SRC_STORAGE_IO_ENGINE_H_
#define SRC_STORAGE_IO_ENGINE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/storage/disk.h"
#include "src/util/rv_monitor.h"

namespace mariusgnn {

struct IoRequest {
  enum class Kind { kRead, kWrite };
  Kind kind = Kind::kRead;
  int32_t tag = -1;  // partition id; same-tag requests execute in submission order
  uint64_t offset = 0;
  size_t bytes = 0;
  void* dst = nullptr;        // read destination
  const void* src = nullptr;  // write source
};

// Counters since the last ConsumeStats (EpochStats reporting).
struct IoEngineStats {
  uint64_t read_requests = 0;
  uint64_t write_requests = 0;
  uint64_t read_bytes = 0;
  uint64_t write_bytes = 0;
  // Write requests that were merged into an adjacent neighbour's transfer
  // instead of being issued as their own device operation.
  uint64_t coalesced_writes = 0;
  // Peak of queued + in-flight requests, and the time-weighted mean of that
  // count over the intervals where the engine was busy (wall-clock; diagnostic
  // only, never feeds determinism-sensitive paths).
  int inflight_peak = 0;
  double queue_depth_mean = 0.0;
};

struct IoEngineOptions {
  // IO worker threads == maximum transfers in flight. 1 is the legacy-equivalent
  // serial engine (still out-of-order-install capable, but one op at a time).
  int queue_depth = 4;
  bool coalesce_writes = true;
  // Test seam: when > 0, each device transfer is split into sub-transfers of at
  // most this many bytes, exercising the short-transfer/offset-advance path.
  size_t max_transfer_bytes = 0;
  // Test seam: invoked on the IO worker immediately before each request's
  // transfer (fault/delay injection for out-of-order completion tests).
  std::function<void(const IoRequest&)> before_io;
};

class IoEngine {
 public:
  // Invoked on an IO worker thread when the request's transfer has completed,
  // with the request's modeled seconds at this engine's queue depth.
  using Completion = std::function<void(double modeled_seconds)>;

  IoEngine(SimulatedDisk* disk, IoEngineOptions options);
  ~IoEngine();  // drains, then joins the workers

  IoEngine(const IoEngine&) = delete;
  IoEngine& operator=(const IoEngine&) = delete;

  // Thread-safe. Submission order defines per-tag program order.
  void SubmitRead(int32_t tag, void* dst, size_t bytes, uint64_t offset,
                  Completion done);
  void SubmitWrite(int32_t tag, const void* src, size_t bytes, uint64_t offset,
                   Completion done);

  // Submits a read and blocks until it completes; returns full (undepthed)
  // modeled seconds. Still ordered behind any earlier same-tag write.
  double ReadSync(int32_t tag, void* dst, size_t bytes, uint64_t offset);

  // Blocks until every submitted request has completed.
  void Drain();

  IoEngineStats ConsumeStats();
  int queue_depth() const { return options_.queue_depth; }

 private:
  struct Pending {
    IoRequest req;
    Completion done;
    // Engine-wide submission sequence number; the RV tag-order monitor checks
    // that same-tag requests start executing in increasing seq.
    uint64_t seq = 0;
  };

  void WorkerLoop();
  // Claims the next executable batch (one read, or one write plus any mergeable
  // adjacent writes) honouring per-tag order and read priority. Empty when
  // nothing is currently claimable. Caller holds mu_.
  std::vector<Pending> ClaimLocked();
  void ExecuteBatch(std::vector<Pending>* batch);
  void NoteEventLocked();  // advances the queue-depth time integral

  SimulatedDisk* disk_;
  IoEngineOptions options_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // submit/complete: workers re-scan the queue
  std::condition_variable idle_cv_;  // Drain waiters
  std::deque<Pending> sq_;           // guarded by mu_
  // Claimed-but-incomplete request count per tag; a queued request may not start
  // while an earlier same-tag request is in flight. Guarded by mu_.
  std::unordered_map<int32_t, int> tag_busy_;
  int inflight_ = 0;  // requests currently executing; guarded by mu_
  bool stop_ = false;
  uint64_t next_seq_ = 0;  // submission sequence counter; guarded by mu_

  // RV monitor (io_engine.tag_order): observed at claim time under mu_, in batch
  // order — claim order is execution-start order, and coalesced batches preserve
  // per-tag submission order internally, so any scheduler bug that lets a
  // same-tag request jump an earlier one trips here.
  RvTagOrderMonitor rv_tag_order_{RvInvariant::kIoTagOrder};

  // Stats, guarded by mu_. The depth integral accumulates outstanding-request
  // count over busy wall-time intervals.
  IoEngineStats stats_;
  double depth_integral_ = 0.0;
  double busy_seconds_ = 0.0;
  std::chrono::steady_clock::time_point last_event_;

  std::vector<std::thread> workers_;
};

// Runtime probe: can `directory` host a file that supports O_DIRECT transfers?
// Creates, exercises, and removes a small probe file; false on any failure
// (tmpfs and most CI filesystems reject direct IO — callers fall back to
// buffered transfers transparently).
bool ProbeDirectIo(const std::string& directory);

}  // namespace mariusgnn

#endif  // SRC_STORAGE_IO_ENGINE_H_
