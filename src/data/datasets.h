// Named scaled stand-ins for the paper's benchmark graphs (Table 1 / Section 7.1).
//
// Each function returns a synthetic graph whose *shape* (degree distribution, relation
// skew, community structure, train-label fraction) matches the original at a scale
// that trains in seconds on one CPU core. `scale` multiplies node counts (1.0 =
// default size below); all generators are deterministic given `seed`.
//
//   Fb15k237Like     — FB15k-237 (14541 nodes, 272k edges, 237 relations), LP
//   FreebaseMini     — Freebase86M stand-in, LP
//   WikiMini         — WikiKG90Mv2 stand-in, LP
//   PapersMini       — ogbn-papers100M stand-in (features+labels), NC
//   MagMini          — Mag240M-Cites stand-in (features+labels), NC
//   LiveJournalMini  — LiveJournal stand-in (plain graph), sampling benches
//   HyperlinkMini    — Common Crawl hyperlink stand-in for the §7.3 stress test
#ifndef SRC_DATA_DATASETS_H_
#define SRC_DATA_DATASETS_H_

#include <cstdint>

#include "src/data/generators.h"
#include "src/graph/graph.h"

namespace mariusgnn {

Graph Fb15k237Like(double scale = 1.0, uint64_t seed = 101);
Graph FreebaseMini(double scale = 1.0, uint64_t seed = 102);
Graph WikiMini(double scale = 1.0, uint64_t seed = 103);
Graph PapersMini(double scale = 1.0, uint64_t seed = 104);
Graph MagMini(double scale = 1.0, uint64_t seed = 105);
Graph LiveJournalMini(double scale = 1.0, uint64_t seed = 106);
Graph HyperlinkMini(double scale = 1.0, uint64_t seed = 107);

}  // namespace mariusgnn

#endif  // SRC_DATA_DATASETS_H_
