#include "src/data/serialize.h"

#include <cstdio>
#include <memory>
#include <vector>

#include "src/util/binary_io.h"
#include "src/util/check.h"

namespace mariusgnn {

namespace {

constexpr uint64_t kMagic = 0x4D47474E31ULL;  // "MGGN1"

struct Meta {
  uint64_t magic = kMagic;
  int64_t num_nodes = 0;
  int64_t num_edges = 0;
  int32_t num_relations = 1;
  int32_t has_features = 0;
  int64_t feature_dim = 0;
  int64_t num_classes = 0;
  int64_t n_train_nodes = 0, n_valid_nodes = 0, n_test_nodes = 0;
  int64_t n_train_edges = 0, n_valid_edges = 0, n_test_edges = 0;
  int32_t has_labels = 0;
};

}  // namespace

void SaveGraph(const Graph& graph, const std::string& prefix) {
  Meta meta;
  meta.num_nodes = graph.num_nodes();
  meta.num_edges = graph.num_edges();
  meta.num_relations = graph.num_relations();
  meta.has_features = graph.has_features() ? 1 : 0;
  meta.feature_dim = graph.has_features() ? graph.features().cols() : 0;
  meta.num_classes = graph.num_classes();
  meta.has_labels = graph.labels().empty() ? 0 : 1;
  meta.n_train_nodes = static_cast<int64_t>(graph.train_nodes().size());
  meta.n_valid_nodes = static_cast<int64_t>(graph.valid_nodes().size());
  meta.n_test_nodes = static_cast<int64_t>(graph.test_nodes().size());
  meta.n_train_edges = static_cast<int64_t>(graph.train_edges().size());
  meta.n_valid_edges = static_cast<int64_t>(graph.valid_edges().size());
  meta.n_test_edges = static_cast<int64_t>(graph.test_edges().size());
  // Each component file is replaced atomically (tmp → fsync → rename), so no
  // individual file can ever be torn. All payloads are staged first and the
  // renames happen together at the end, with .meta — the file LoadGraph trusts
  // for every count — committed last: a crash anywhere before the final rename
  // leaves the previous snapshot fully intact. (A crash inside the brief rename
  // sequence can still mix generations across component files; true multi-file
  // atomicity would need the checkpoint layer's single-file manifest format.)
  std::vector<std::unique_ptr<AtomicFile>> staged;
  auto stage = [&staged](const std::string& path) -> AtomicFile& {
    staged.push_back(std::make_unique<AtomicFile>(path));
    return *staged.back();
  };
  {
    AtomicFile& f = stage(prefix + ".edges");
    if (!graph.edges().empty()) {
      f.WriteAt(graph.edges().data(), graph.edges().size() * sizeof(Edge), 0);
    }
  }
  if (graph.has_features()) {
    AtomicFile& f = stage(prefix + ".feat");
    f.WriteAt(graph.features().data(),
              static_cast<size_t>(graph.features().size()) * sizeof(float), 0);
  }
  if (!graph.labels().empty()) {
    AtomicFile& f = stage(prefix + ".labels");
    const uint64_t count = graph.labels().size();
    f.WriteAt(&count, sizeof(count), 0);
    f.WriteAt(graph.labels().data(), count * sizeof(int64_t), sizeof(count));
  }
  {
    AtomicFile& f = stage(prefix + ".splits");
    uint64_t offset = 0;
    auto write_split = [&](const std::vector<int64_t>& split) {
      if (!split.empty()) {
        f.WriteAt(split.data(), split.size() * sizeof(int64_t), offset);
        offset += split.size() * sizeof(int64_t);
      }
    };
    write_split(graph.train_nodes());
    write_split(graph.valid_nodes());
    write_split(graph.test_nodes());
    write_split(graph.train_edges());
    write_split(graph.valid_edges());
    write_split(graph.test_edges());
  }
  stage(prefix + ".meta").WriteAt(&meta, sizeof(meta), 0);
  for (auto& f : staged) {
    f->Commit();
  }
}

Graph LoadGraph(const std::string& prefix) {
  Meta meta;
  {
    File f(prefix + ".meta");
    f.ReadAt(&meta, sizeof(meta), 0);
  }
  MG_CHECK_MSG(meta.magic == kMagic, "bad graph file magic");

  std::vector<Edge> edges(static_cast<size_t>(meta.num_edges));
  if (meta.num_edges > 0) {
    File f(prefix + ".edges");
    f.ReadAt(edges.data(), edges.size() * sizeof(Edge), 0);
  }
  Graph graph(meta.num_nodes, std::move(edges), meta.num_relations);

  if (meta.has_features != 0) {
    std::vector<float> data(static_cast<size_t>(meta.num_nodes * meta.feature_dim));
    File f(prefix + ".feat");
    f.ReadAt(data.data(), data.size() * sizeof(float), 0);
    graph.set_features(Tensor(meta.num_nodes, meta.feature_dim, std::move(data)));
  }
  if (meta.has_labels != 0) {
    graph.set_labels(ReadVector<int64_t>(prefix + ".labels"));
    graph.set_num_classes(meta.num_classes);
  }
  {
    File f(prefix + ".splits");
    uint64_t offset = 0;
    auto read_split = [&](int64_t count) {
      std::vector<int64_t> split(static_cast<size_t>(count));
      if (count > 0) {
        f.ReadAt(split.data(), split.size() * sizeof(int64_t), offset);
        offset += split.size() * sizeof(int64_t);
      }
      return split;
    };
    std::vector<int64_t> train_nodes = read_split(meta.n_train_nodes);
    std::vector<int64_t> valid_nodes = read_split(meta.n_valid_nodes);
    std::vector<int64_t> test_nodes = read_split(meta.n_test_nodes);
    graph.set_node_splits(std::move(train_nodes), std::move(valid_nodes),
                          std::move(test_nodes));
    std::vector<int64_t> train_edges = read_split(meta.n_train_edges);
    std::vector<int64_t> valid_edges = read_split(meta.n_valid_edges);
    std::vector<int64_t> test_edges = read_split(meta.n_test_edges);
    graph.set_edge_splits(std::move(train_edges), std::move(valid_edges),
                          std::move(test_edges));
  }
  return graph;
}

void RemoveGraphFiles(const std::string& prefix) {
  for (const char* suffix : {".meta", ".edges", ".feat", ".labels", ".splits"}) {
    std::remove((prefix + suffix).c_str());
  }
}

}  // namespace mariusgnn
