// Binary graph (de)serialisation — the preprocessing artifact format.
//
// Like Marius' preprocessing step, datasets are converted once into flat binary files
// that training jobs load directly: an edge file, optional feature/label files, and
// split files, all under a common path prefix with a small header recording shapes.
#ifndef SRC_DATA_SERIALIZE_H_
#define SRC_DATA_SERIALIZE_H_

#include <string>

#include "src/graph/graph.h"

namespace mariusgnn {

// Writes `<prefix>.meta`, `<prefix>.edges`, and (when present) `<prefix>.feat`,
// `<prefix>.labels`, `<prefix>.splits`.
void SaveGraph(const Graph& graph, const std::string& prefix);

// Loads a graph previously written by SaveGraph. Aborts on malformed input.
Graph LoadGraph(const std::string& prefix);

// Removes all files written by SaveGraph (cleanup helper for tests/benches).
void RemoveGraphFiles(const std::string& prefix);

}  // namespace mariusgnn

#endif  // SRC_DATA_SERIALIZE_H_
