#include "src/data/datasets.h"

#include <algorithm>

namespace mariusgnn {

namespace {

int64_t Scaled(double scale, int64_t base) {
  return std::max<int64_t>(64, static_cast<int64_t>(scale * static_cast<double>(base)));
}

}  // namespace

Graph Fb15k237Like(double scale, uint64_t seed) {
  Rng rng(seed);
  KnowledgeGraphConfig config;
  config.num_nodes = Scaled(scale, 14541);
  config.edges_per_node = 18;  // ~272k edges at scale 1
  config.num_relations = 237;
  return MakeKnowledgeGraph(config, rng);
}

Graph FreebaseMini(double scale, uint64_t seed) {
  Rng rng(seed);
  KnowledgeGraphConfig config;
  config.num_nodes = Scaled(scale, 50000);
  config.edges_per_node = 8;
  config.num_relations = 500;
  return MakeKnowledgeGraph(config, rng);
}

Graph WikiMini(double scale, uint64_t seed) {
  Rng rng(seed);
  KnowledgeGraphConfig config;
  config.num_nodes = Scaled(scale, 40000);
  config.edges_per_node = 7;
  config.num_relations = 200;
  return MakeKnowledgeGraph(config, rng);
}

Graph PapersMini(double scale, uint64_t seed) {
  Rng rng(seed);
  CommunityGraphConfig config;
  config.num_nodes = Scaled(scale, 30000);
  config.edges_per_node = 10;
  config.num_communities = 32;
  config.feature_dim = 64;
  config.feature_noise = 2.5f;   // features alone are weakly separable; aggregation helps
  config.train_fraction = 0.08;  // Papers100M labels ~1% of nodes; scaled up slightly
  return MakeCommunityGraph(config, rng);
}

Graph MagMini(double scale, uint64_t seed) {
  Rng rng(seed);
  CommunityGraphConfig config;
  config.num_nodes = Scaled(scale, 40000);
  config.edges_per_node = 9;
  config.num_communities = 40;
  config.feature_dim = 64;
  config.feature_noise = 2.5f;
  config.train_fraction = 0.03;
  return MakeCommunityGraph(config, rng);
}

Graph LiveJournalMini(double scale, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges = BarabasiAlbertEdges(Scaled(scale, 48000), 14, rng);
  const int64_t n = Scaled(scale, 48000);
  return Graph(n, std::move(edges), /*num_relations=*/1);
}

Graph HyperlinkMini(double scale, uint64_t seed) {
  Rng rng(seed);
  KnowledgeGraphConfig config;
  config.num_nodes = Scaled(scale, 120000);
  config.edges_per_node = 12;
  config.num_relations = 1;
  config.valid_fraction = 0.0;
  config.test_fraction = 0.0;
  return MakeKnowledgeGraph(config, rng);
}

}  // namespace mariusgnn
