// Synthetic graph generators.
//
// The paper's benchmark graphs (Papers100M, Mag240M-Cites, Freebase86M, WikiKG90Mv2,
// FB15k-237, LiveJournal) are replaced by generators that match the *statistics the
// experiments depend on*: power-law degree distributions (preferential attachment),
// Zipf-distributed relation types for knowledge graphs, and community structure with
// separable features/labels for node classification (so accuracy differences between
// training regimes are meaningful). See DESIGN.md §1.
#ifndef SRC_DATA_GENERATORS_H_
#define SRC_DATA_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace mariusgnn {

// Barabási–Albert preferential attachment: each new node attaches to
// `edges_per_node` existing nodes chosen proportionally to degree. Produces a
// power-law degree distribution.
std::vector<Edge> BarabasiAlbertEdges(int64_t num_nodes, int64_t edges_per_node,
                                      Rng& rng);

// Uniformly random directed edges (no self loops).
std::vector<Edge> ErdosRenyiEdges(int64_t num_nodes, int64_t num_edges, Rng& rng);

// Assigns each edge a relation id drawn from a Zipf(s=1) distribution over
// [0, num_relations) — matching the long-tailed relation frequencies of Freebase-like
// knowledge graphs.
void AssignZipfRelations(std::vector<Edge>& edges, int32_t num_relations, Rng& rng);

struct CommunityGraphConfig {
  int64_t num_nodes = 10000;
  int64_t edges_per_node = 10;
  int64_t num_communities = 16;
  double intra_community_prob = 0.8;  // probability an edge stays within community
  int64_t feature_dim = 32;
  float feature_noise = 1.0f;  // stddev of per-node noise around the community centroid
  double train_fraction = 0.05;
  double valid_fraction = 0.05;
  double test_fraction = 0.10;
};

// Community-planted node-classification graph: labels are community ids, features are
// community centroids plus Gaussian noise, and edges are mostly intra-community —
// giving a GNN a genuine signal to learn.
Graph MakeCommunityGraph(const CommunityGraphConfig& config, Rng& rng);

// Knowledge graph for link prediction with edge splits.
//
// Structure is *planted* so held-out edges are predictable (as they are in real KGs):
// nodes belong to latent clusters, each relation deterministically connects a
// (source-cluster, destination-cluster) pair, and node popularity within a cluster is
// Zipf-distributed (long-tailed degrees). A noise fraction of edges is fully random.
// A trained model can thus place held-out true edges above random negatives, making
// MRR a meaningful quality signal for comparing training regimes.
struct KnowledgeGraphConfig {
  int64_t num_nodes = 15000;
  int64_t edges_per_node = 18;
  int32_t num_relations = 237;
  int64_t num_clusters = 32;
  double noise_fraction = 0.05;  // fraction of edges ignoring cluster structure
  double valid_fraction = 0.02;
  double test_fraction = 0.02;
};

Graph MakeKnowledgeGraph(const KnowledgeGraphConfig& config, Rng& rng);

}  // namespace mariusgnn

#endif  // SRC_DATA_GENERATORS_H_
