#include "src/data/generators.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace mariusgnn {

std::vector<Edge> BarabasiAlbertEdges(int64_t num_nodes, int64_t edges_per_node,
                                      Rng& rng) {
  MG_CHECK(num_nodes > edges_per_node && edges_per_node >= 1);
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(num_nodes * edges_per_node));
  // Endpoint pool: sampling uniformly from it is degree-proportional sampling.
  std::vector<int64_t> pool;
  pool.reserve(static_cast<size_t>(num_nodes * edges_per_node) * 2);
  // Seed clique among the first edges_per_node + 1 nodes.
  for (int64_t v = 1; v <= edges_per_node; ++v) {
    edges.push_back(Edge{v, v - 1, 0});
    pool.push_back(v);
    pool.push_back(v - 1);
  }
  for (int64_t v = edges_per_node + 1; v < num_nodes; ++v) {
    for (int64_t k = 0; k < edges_per_node; ++k) {
      const int64_t target = pool[static_cast<size_t>(rng.UniformInt(pool.size()))];
      edges.push_back(Edge{v, target, 0});
      pool.push_back(v);
      pool.push_back(target);
    }
  }
  return edges;
}

std::vector<Edge> ErdosRenyiEdges(int64_t num_nodes, int64_t num_edges, Rng& rng) {
  MG_CHECK(num_nodes >= 2);
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(num_edges));
  for (int64_t e = 0; e < num_edges; ++e) {
    const int64_t src = rng.UniformInt(0, num_nodes);
    int64_t dst = rng.UniformInt(0, num_nodes - 1);
    if (dst >= src) {
      ++dst;
    }
    edges.push_back(Edge{src, dst, 0});
  }
  return edges;
}

void AssignZipfRelations(std::vector<Edge>& edges, int32_t num_relations, Rng& rng) {
  MG_CHECK(num_relations >= 1);
  // Precompute the Zipf(s=1) CDF.
  std::vector<double> cdf(static_cast<size_t>(num_relations));
  double total = 0.0;
  for (int32_t r = 0; r < num_relations; ++r) {
    total += 1.0 / static_cast<double>(r + 1);
    cdf[static_cast<size_t>(r)] = total;
  }
  for (auto& c : cdf) {
    c /= total;
  }
  for (Edge& e : edges) {
    const double u = rng.UniformDouble();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    e.rel = static_cast<int32_t>(it - cdf.begin());
    if (e.rel >= num_relations) {
      e.rel = num_relations - 1;
    }
  }
}

Graph MakeCommunityGraph(const CommunityGraphConfig& config, Rng& rng) {
  const int64_t n = config.num_nodes;
  const int64_t k = config.num_communities;
  MG_CHECK(n >= k && k >= 2);

  std::vector<int64_t> community(static_cast<size_t>(n));
  std::vector<std::vector<int64_t>> members(static_cast<size_t>(k));
  for (int64_t v = 0; v < n; ++v) {
    community[static_cast<size_t>(v)] = rng.UniformInt(0, k);
    members[static_cast<size_t>(community[static_cast<size_t>(v)])].push_back(v);
  }
  // Guard against empty communities on tiny graphs.
  for (int64_t c = 0; c < k; ++c) {
    if (members[static_cast<size_t>(c)].empty()) {
      const int64_t v = rng.UniformInt(0, n);
      members[static_cast<size_t>(community[static_cast<size_t>(v)])].clear();
      community[static_cast<size_t>(v)] = c;
      members[static_cast<size_t>(c)].push_back(v);
    }
  }

  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(n * config.edges_per_node));
  for (int64_t v = 0; v < n; ++v) {
    const auto& own = members[static_cast<size_t>(community[static_cast<size_t>(v)])];
    for (int64_t e = 0; e < config.edges_per_node; ++e) {
      int64_t dst;
      if (rng.UniformDouble() < config.intra_community_prob && own.size() > 1) {
        dst = own[static_cast<size_t>(rng.UniformInt(own.size()))];
      } else {
        dst = rng.UniformInt(0, n);
      }
      if (dst == v) {
        continue;
      }
      edges.push_back(Edge{v, dst, 0});
    }
  }

  Graph graph(n, std::move(edges), /*num_relations=*/1);

  // Features: community centroid + noise.
  Tensor centroids = Tensor::Normal(k, config.feature_dim, 2.0f, rng);
  Tensor features = Tensor::Normal(n, config.feature_dim, config.feature_noise, rng);
  for (int64_t v = 0; v < n; ++v) {
    const float* c = centroids.RowPtr(community[static_cast<size_t>(v)]);
    float* f = features.RowPtr(v);
    for (int64_t d = 0; d < config.feature_dim; ++d) {
      f[d] += c[d];
    }
  }
  graph.set_features(std::move(features));
  graph.set_labels(community);
  graph.set_num_classes(k);

  // Node splits.
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) {
    order[static_cast<size_t>(v)] = v;
  }
  rng.Shuffle(order);
  const int64_t n_train = static_cast<int64_t>(config.train_fraction * static_cast<double>(n));
  const int64_t n_valid = static_cast<int64_t>(config.valid_fraction * static_cast<double>(n));
  const int64_t n_test = static_cast<int64_t>(config.test_fraction * static_cast<double>(n));
  MG_CHECK(n_train + n_valid + n_test <= n);
  graph.set_node_splits(
      {order.begin(), order.begin() + n_train},
      {order.begin() + n_train, order.begin() + n_train + n_valid},
      {order.begin() + n_train + n_valid, order.begin() + n_train + n_valid + n_test});
  return graph;
}

Graph MakeKnowledgeGraph(const KnowledgeGraphConfig& config, Rng& rng) {
  const int64_t n = config.num_nodes;
  const int64_t k = std::max<int64_t>(2, std::min(config.num_clusters, n / 4));
  const int64_t num_edges = n * config.edges_per_node;

  // Latent clusters with Zipf-ranked members (long-tailed node popularity).
  std::vector<std::vector<int64_t>> members(static_cast<size_t>(k));
  for (int64_t v = 0; v < n; ++v) {
    members[static_cast<size_t>(rng.UniformInt(0, k))].push_back(v);
  }
  for (int64_t c = 0; c < k; ++c) {
    if (members[static_cast<size_t>(c)].empty()) {
      members[static_cast<size_t>(c)].push_back(rng.UniformInt(0, n));
    }
  }
  // Zipf CDF over the largest cluster size (reused for all clusters by truncation).
  size_t max_size = 0;
  for (const auto& m : members) {
    max_size = std::max(max_size, m.size());
  }
  std::vector<double> zipf_cdf(max_size);
  double total = 0.0;
  for (size_t i = 0; i < max_size; ++i) {
    total += 1.0 / std::sqrt(static_cast<double>(i + 1));  // Zipf(s=0.5): heavy tail
    zipf_cdf[i] = total;
  }
  auto pick_member = [&](int64_t cluster) {
    const auto& m = members[static_cast<size_t>(cluster)];
    const double limit = zipf_cdf[m.size() - 1];
    const double u = rng.UniformDouble() * limit;
    const auto it = std::lower_bound(zipf_cdf.begin(), zipf_cdf.begin() +
                                     static_cast<int64_t>(m.size()), u);
    return m[static_cast<size_t>(it - zipf_cdf.begin())];
  };

  // Deterministic relation -> (src cluster, dst cluster) mapping.
  auto src_cluster = [&](int32_t r) {
    return static_cast<int64_t>((static_cast<uint64_t>(r) * 2654435761ULL) % k);
  };
  auto dst_cluster = [&](int32_t r) {
    return static_cast<int64_t>((static_cast<uint64_t>(r) * 40503ULL + 7) % k);
  };

  // Relation frequencies are Zipf-distributed (reuse AssignZipfRelations' CDF logic).
  std::vector<Edge> edges(static_cast<size_t>(num_edges));
  AssignZipfRelations(edges, config.num_relations, rng);
  for (Edge& e : edges) {
    if (rng.UniformDouble() < config.noise_fraction) {
      e.src = rng.UniformInt(0, n);
      e.dst = rng.UniformInt(0, n);
    } else {
      e.src = pick_member(src_cluster(e.rel));
      e.dst = pick_member(dst_cluster(e.rel));
    }
  }
  rng.Shuffle(edges);
  Graph graph(n, std::move(edges), config.num_relations);

  const int64_t m = graph.num_edges();
  const int64_t n_valid = static_cast<int64_t>(config.valid_fraction * static_cast<double>(m));
  const int64_t n_test = static_cast<int64_t>(config.test_fraction * static_cast<double>(m));
  std::vector<int64_t> idx(static_cast<size_t>(m));
  for (int64_t e = 0; e < m; ++e) {
    idx[static_cast<size_t>(e)] = e;
  }
  rng.Shuffle(idx);
  graph.set_edge_splits({idx.begin(), idx.end() - n_valid - n_test},
                        {idx.end() - n_valid - n_test, idx.end() - n_test},
                        {idx.end() - n_test, idx.end()});
  return graph;
}

}  // namespace mariusgnn
