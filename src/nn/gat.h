// Graph Attention layer (Veličković et al. 2018), single head, with a root weight:
//
//   z_j      = W · h_j
//   e_sj     = LeakyReLU( a_l · z_s + a_r · z_j )          for j in N(s)
//   α_sj     = softmax_j(e_sj)                              (segment softmax)
//   h_s'     = act( Σ_j α_sj z_j  +  W_root · h_s  +  b )
//
// Attention scores are computed per neighbor entry and normalised with the contiguous
// segment softmax — on the DENSE path this is a fully dense kernel sequence.
#ifndef SRC_NN_GAT_H_
#define SRC_NN_GAT_H_

#include <memory>
#include <vector>

#include "src/nn/layer.h"
#include "src/util/rng.h"

namespace mariusgnn {

class GatLayer : public GnnLayer {
 public:
  GatLayer(int64_t in_dim, int64_t out_dim, Activation act, Rng& rng,
           float leaky_slope = 0.2f);

  Tensor Forward(const LayerView& view, std::unique_ptr<LayerContext>* ctx) const override;
  Tensor Backward(LayerContext& ctx, const Tensor& grad_out) override;
  std::vector<Parameter*> Parameters() override {
    return {&w_, &w_root_, &attn_l_, &attn_r_, &bias_};
  }

  int64_t in_dim() const override { return in_dim_; }
  int64_t out_dim() const override { return out_dim_; }

 private:
  int64_t in_dim_;
  int64_t out_dim_;
  Activation act_;
  float leaky_slope_;
  Parameter w_;       // in_dim x out_dim
  Parameter w_root_;  // in_dim x out_dim
  Parameter attn_l_;  // 1 x out_dim
  Parameter attn_r_;  // 1 x out_dim
  Parameter bias_;    // 1 x out_dim
};

}  // namespace mariusgnn

#endif  // SRC_NN_GAT_H_
