// GNN layer abstraction shared by the DENSE execution path and the baseline per-block
// (DGL/PyG-style) execution path.
//
// A LayerView describes one aggregation step over an input representation matrix h:
//  - self_rows[s]  : the row of h holding output node s's own representation.
//  - nbr_rows[e]   : the row of h holding neighbor entry e's representation. For the
//                    DENSE path this is exactly the repr_map array of the paper, and
//                    neighbor entries of each output node are contiguous.
//  - seg_offsets   : size |self_rows|+1; neighbor entries of output node s occupy
//                    nbr_rows[seg_offsets[s] .. seg_offsets[s+1]).
//
// Layers return the output representations for the view's output nodes. Backward
// consumes the gradient of the output and produces the gradient w.r.t. h (all rows),
// accumulating weight gradients into their Parameters.
#ifndef SRC_NN_LAYER_H_
#define SRC_NN_LAYER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/nn/parameter.h"
#include "src/tensor/tensor.h"
#include "src/util/compute.h"

namespace mariusgnn {

struct LayerView {
  const Tensor* h = nullptr;
  std::vector<int64_t> self_rows;
  std::vector<int64_t> nbr_rows;
  std::vector<int64_t> seg_offsets;
  std::vector<int32_t> nbr_rels;  // optional, parallel to nbr_rows
  // Stage-3 parallel-compute handle (may be null = serial). Layers save it in their
  // LayerContext so the backward pass runs with the same parallelism.
  const ComputeContext* compute = nullptr;

  int64_t num_outputs() const { return static_cast<int64_t>(self_rows.size()); }
  int64_t num_inputs() const { return h->rows(); }
};

// Opaque per-invocation saved state; each layer derives its own. Forward copies the
// view's compute handle here so Backward parallelizes identically.
struct LayerContext {
  virtual ~LayerContext() = default;
  const ComputeContext* compute = nullptr;
};

enum class Activation { kNone, kRelu, kTanh };

Tensor ApplyActivation(Activation act, const Tensor& pre,
                       const ComputeContext* ctx = nullptr);
Tensor ActivationBackward(Activation act, const Tensor& out, const Tensor& grad_out,
                          const ComputeContext* ctx = nullptr);

class GnnLayer {
 public:
  virtual ~GnnLayer() = default;

  // Computes output representations; fills *ctx with the state Backward needs.
  // Const: all invocation state goes into *ctx, never into the layer, so a shared
  // immutable layer stack (e.g. a serving snapshot) can run Forward concurrently.
  virtual Tensor Forward(const LayerView& view,
                         std::unique_ptr<LayerContext>* ctx) const = 0;

  // Returns d loss / d h (rows == the forward view's num_inputs()) and accumulates
  // parameter gradients.
  virtual Tensor Backward(LayerContext& ctx, const Tensor& grad_out) = 0;

  virtual std::vector<Parameter*> Parameters() = 0;

  virtual int64_t in_dim() const = 0;
  virtual int64_t out_dim() const = 0;
};

}  // namespace mariusgnn

#endif  // SRC_NN_LAYER_H_
