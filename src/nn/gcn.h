// GCN-style layer (Kipf & Welling 2016), adapted to sampled neighborhoods:
//
//   h_s' = act( W · (h_s + Σ_{j in N(s)} h_j) / (1 + |N(s)|)  +  b )
//
// i.e. mean over the closed neighborhood {s} ∪ N(s), matching the paper's additive
// aggregation example (Algorithm 3) followed by a linear transform.
#ifndef SRC_NN_GCN_H_
#define SRC_NN_GCN_H_

#include <memory>
#include <vector>

#include "src/nn/layer.h"
#include "src/util/rng.h"

namespace mariusgnn {

class GcnLayer : public GnnLayer {
 public:
  GcnLayer(int64_t in_dim, int64_t out_dim, Activation act, Rng& rng);

  Tensor Forward(const LayerView& view, std::unique_ptr<LayerContext>* ctx) const override;
  Tensor Backward(LayerContext& ctx, const Tensor& grad_out) override;
  std::vector<Parameter*> Parameters() override { return {&w_, &bias_}; }

  int64_t in_dim() const override { return in_dim_; }
  int64_t out_dim() const override { return out_dim_; }

 private:
  int64_t in_dim_;
  int64_t out_dim_;
  Activation act_;
  Parameter w_;     // in_dim x out_dim
  Parameter bias_;  // 1 x out_dim
};

}  // namespace mariusgnn

#endif  // SRC_NN_GCN_H_
