// GraphSage layer (Hamilton et al. 2017) with a mean aggregator:
//
//   h_s' = act( W_self · h_s  +  W_nbr · mean_{j in N(s)} h_j  +  b )
//
// Lowered onto the dense kernels of Algorithm 3: index_select by nbr_rows, segment
// mean over contiguous segments, two matmuls.
#ifndef SRC_NN_GRAPHSAGE_H_
#define SRC_NN_GRAPHSAGE_H_

#include <memory>
#include <vector>

#include "src/nn/layer.h"
#include "src/util/rng.h"

namespace mariusgnn {

class GraphSageLayer : public GnnLayer {
 public:
  GraphSageLayer(int64_t in_dim, int64_t out_dim, Activation act, Rng& rng);

  Tensor Forward(const LayerView& view, std::unique_ptr<LayerContext>* ctx) const override;
  Tensor Backward(LayerContext& ctx, const Tensor& grad_out) override;
  std::vector<Parameter*> Parameters() override { return {&w_self_, &w_nbr_, &bias_}; }

  int64_t in_dim() const override { return in_dim_; }
  int64_t out_dim() const override { return out_dim_; }

 private:
  int64_t in_dim_;
  int64_t out_dim_;
  Activation act_;
  Parameter w_self_;  // in_dim x out_dim
  Parameter w_nbr_;   // in_dim x out_dim
  Parameter bias_;    // 1 x out_dim
};

}  // namespace mariusgnn

#endif  // SRC_NN_GRAPHSAGE_H_
