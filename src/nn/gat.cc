#include "src/nn/gat.h"

#include "src/tensor/ops.h"
#include "src/util/check.h"

namespace mariusgnn {

namespace {

struct GatContext : public LayerContext {
  std::vector<int64_t> self_rows;
  std::vector<int64_t> nbr_rows;
  std::vector<int64_t> seg_offsets;
  std::vector<int64_t> owner;  // segment id of each neighbor entry
  Tensor h;                    // layer input (copy; needed for dW)
  Tensor self_in;              // gathered input rows of output nodes
  Tensor z_self;               // W-projected self rows
  Tensor z_nbr;                // W-projected neighbor rows
  Tensor alpha;                // attention weights (E x 1, post-softmax)
  Tensor e_act;                // post-LeakyReLU scores (E x 1)
  Tensor out;
};

}  // namespace

GatLayer::GatLayer(int64_t in_dim, int64_t out_dim, Activation act, Rng& rng,
                   float leaky_slope)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      act_(act),
      leaky_slope_(leaky_slope),
      w_(Tensor::GlorotUniform(in_dim, out_dim, rng)),
      w_root_(Tensor::GlorotUniform(in_dim, out_dim, rng)),
      attn_l_(Tensor::Uniform(1, out_dim, 0.3f, rng)),
      attn_r_(Tensor::Uniform(1, out_dim, 0.3f, rng)),
      bias_(Tensor(1, out_dim)) {}

Tensor GatLayer::Forward(const LayerView& view, std::unique_ptr<LayerContext>* ctx) const {
  MG_CHECK(view.h != nullptr && view.h->cols() == in_dim_);
  const ComputeContext* cc = view.compute;
  auto c = std::make_unique<GatContext>();
  c->compute = cc;
  c->self_rows = view.self_rows;
  c->nbr_rows = view.nbr_rows;
  c->seg_offsets = view.seg_offsets;
  c->h = *view.h;

  const int64_t num_out = view.num_outputs();
  const int64_t num_edges = static_cast<int64_t>(view.nbr_rows.size());
  c->owner.resize(static_cast<size_t>(num_edges));
  // Chunked over segments: each segment owns its contiguous edge range.
  ForEachChunk(cc, num_out, kComputeGrainRows,
               [&](int64_t, int64_t seg_begin, int64_t seg_end) {
                 for (int64_t s = seg_begin; s < seg_end; ++s) {
                   for (int64_t e = view.seg_offsets[static_cast<size_t>(s)];
                        e < view.seg_offsets[static_cast<size_t>(s) + 1]; ++e) {
                     c->owner[static_cast<size_t>(e)] = s;
                   }
                 }
               });

  Tensor z = Matmul(*view.h, w_.value, cc);
  c->self_in = IndexSelect(*view.h, view.self_rows, cc);
  c->z_self = IndexSelect(z, view.self_rows, cc);
  c->z_nbr = IndexSelect(z, view.nbr_rows, cc);

  // Raw attention scores: per-edge, disjoint writes.
  Tensor scores(num_edges, 1);
  ForEachChunk(cc, num_edges, kComputeGrainEdges,
               [&](int64_t, int64_t edge_begin, int64_t edge_end) {
                 for (int64_t e = edge_begin; e < edge_end; ++e) {
                   const float* zs = c->z_self.RowPtr(c->owner[static_cast<size_t>(e)]);
                   const float* zn = c->z_nbr.RowPtr(e);
                   float s = 0.0f;
                   for (int64_t d = 0; d < out_dim_; ++d) {
                     s += attn_l_.value.data()[d] * zs[d] + attn_r_.value.data()[d] * zn[d];
                   }
                   scores.data()[e] = s;
                 }
               });
  c->e_act = LeakyRelu(scores, leaky_slope_, cc);
  c->alpha = c->e_act;
  SegmentSoftmaxInPlace(c->alpha, view.seg_offsets, cc);

  // Weighted aggregation: per-edge, disjoint rows.
  Tensor weighted(num_edges, out_dim_);
  ForEachChunk(cc, num_edges, kComputeGrainEdges,
               [&](int64_t, int64_t edge_begin, int64_t edge_end) {
                 for (int64_t e = edge_begin; e < edge_end; ++e) {
                   const float a = c->alpha.data()[e];
                   const float* zn = c->z_nbr.RowPtr(e);
                   float* wrow = weighted.RowPtr(e);
                   for (int64_t d = 0; d < out_dim_; ++d) {
                     wrow[d] = a * zn[d];
                   }
                 }
               });
  Tensor pre = SegmentSum(weighted, view.seg_offsets, cc);
  AddInPlace(pre, Matmul(c->self_in, w_root_.value, cc), cc);
  AddBiasRows(pre, bias_.value, cc);
  c->out = ApplyActivation(act_, pre, cc);
  Tensor out = c->out;
  if (ctx != nullptr) {
    *ctx = std::move(c);
  }
  return out;
}

Tensor GatLayer::Backward(LayerContext& ctx, const Tensor& grad_out) {
  auto& c = static_cast<GatContext&>(ctx);
  const ComputeContext* cc = c.compute;
  const int64_t num_edges = static_cast<int64_t>(c.nbr_rows.size());
  const int64_t num_segs = static_cast<int64_t>(c.seg_offsets.size()) - 1;
  Tensor dpre = ActivationBackward(act_, c.out, grad_out, cc);

  // Root path.
  AddInPlace(w_root_.grad, MatmulTransA(c.self_in, dpre, cc), cc);
  AddInPlace(bias_.grad, SumRows(dpre, cc), cc);
  Tensor dself_in = MatmulTransB(dpre, w_root_.value, cc);

  // Aggregation path: dweighted[e] = dpre[owner[e]]. Per-edge, disjoint writes.
  Tensor dz_nbr(num_edges, out_dim_);
  Tensor dalpha(num_edges, 1);
  ForEachChunk(cc, num_edges, kComputeGrainEdges,
               [&](int64_t, int64_t edge_begin, int64_t edge_end) {
                 for (int64_t e = edge_begin; e < edge_end; ++e) {
                   const float* dp = dpre.RowPtr(c.owner[static_cast<size_t>(e)]);
                   const float* zn = c.z_nbr.RowPtr(e);
                   float* dzn = dz_nbr.RowPtr(e);
                   const float a = c.alpha.data()[e];
                   float da = 0.0f;
                   for (int64_t d = 0; d < out_dim_; ++d) {
                     dzn[d] = a * dp[d];
                     da += dp[d] * zn[d];
                   }
                   dalpha.data()[e] = da;
                 }
               });

  // Attention path.
  Tensor de_act = SegmentSoftmaxBackward(c.alpha, dalpha, c.seg_offsets, cc);
  Tensor de_raw = LeakyReluBackward(c.e_act, de_act, leaky_slope_, cc);

  // Chunked over segments: dz_self row s and the edges of segment s are owned by one
  // chunk. The shared attn_l/attn_r gradients are cross-chunk accumulators, so each
  // chunk writes a private partial and the partials are folded in ascending chunk
  // order (no atomics on floats, identical bits for any pool size).
  Tensor dz_self(c.z_self.rows(), out_dim_);
  const int64_t seg_chunks = ComputeChunkCount(num_segs, kComputeGrainRows);
  std::vector<Tensor> attn_l_partials(static_cast<size_t>(seg_chunks));
  std::vector<Tensor> attn_r_partials(static_cast<size_t>(seg_chunks));
  ForEachChunkOrdered(
      cc, num_segs, kComputeGrainRows,
      [&](int64_t chunk, int64_t seg_begin, int64_t seg_end) {
        Tensor dattn_l(1, out_dim_);
        Tensor dattn_r(1, out_dim_);
        for (int64_t s = seg_begin; s < seg_end; ++s) {
          const float* zs = c.z_self.RowPtr(s);
          float* dzs = dz_self.RowPtr(s);
          for (int64_t e = c.seg_offsets[static_cast<size_t>(s)];
               e < c.seg_offsets[static_cast<size_t>(s) + 1]; ++e) {
            const float de = de_raw.data()[e];
            const float* zn = c.z_nbr.RowPtr(e);
            float* dzn = dz_nbr.RowPtr(e);
            for (int64_t d = 0; d < out_dim_; ++d) {
              dattn_l.data()[d] += de * zs[d];
              dattn_r.data()[d] += de * zn[d];
              dzs[d] += de * attn_l_.value.data()[d];
              dzn[d] += de * attn_r_.value.data()[d];
            }
          }
        }
        attn_l_partials[static_cast<size_t>(chunk)] = std::move(dattn_l);
        attn_r_partials[static_cast<size_t>(chunk)] = std::move(dattn_r);
      },
      [&](int64_t chunk) {
        AddInPlace(attn_l_.grad, attn_l_partials[static_cast<size_t>(chunk)]);
        AddInPlace(attn_r_.grad, attn_r_partials[static_cast<size_t>(chunk)]);
      });

  // Collect dz over all input rows, then push through W.
  Tensor dz(c.h.rows(), out_dim_);
  ScatterAddRows(dz, c.self_rows, dz_self, cc);
  ScatterAddRows(dz, c.nbr_rows, dz_nbr, cc);

  AddInPlace(w_.grad, MatmulTransA(c.h, dz, cc), cc);
  Tensor dh = MatmulTransB(dz, w_.value, cc);
  ScatterAddRows(dh, c.self_rows, dself_in, cc);
  return dh;
}

}  // namespace mariusgnn
