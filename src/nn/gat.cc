#include "src/nn/gat.h"

#include "src/tensor/ops.h"
#include "src/util/check.h"

namespace mariusgnn {

namespace {

struct GatContext : public LayerContext {
  std::vector<int64_t> self_rows;
  std::vector<int64_t> nbr_rows;
  std::vector<int64_t> seg_offsets;
  std::vector<int64_t> owner;  // segment id of each neighbor entry
  Tensor h;                    // layer input (copy; needed for dW)
  Tensor self_in;              // gathered input rows of output nodes
  Tensor z_self;               // W-projected self rows
  Tensor z_nbr;                // W-projected neighbor rows
  Tensor alpha;                // attention weights (E x 1, post-softmax)
  Tensor e_act;                // post-LeakyReLU scores (E x 1)
  Tensor out;
};

}  // namespace

GatLayer::GatLayer(int64_t in_dim, int64_t out_dim, Activation act, Rng& rng,
                   float leaky_slope)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      act_(act),
      leaky_slope_(leaky_slope),
      w_(Tensor::GlorotUniform(in_dim, out_dim, rng)),
      w_root_(Tensor::GlorotUniform(in_dim, out_dim, rng)),
      attn_l_(Tensor::Uniform(1, out_dim, 0.3f, rng)),
      attn_r_(Tensor::Uniform(1, out_dim, 0.3f, rng)),
      bias_(Tensor(1, out_dim)) {}

Tensor GatLayer::Forward(const LayerView& view, std::unique_ptr<LayerContext>* ctx) {
  MG_CHECK(view.h != nullptr && view.h->cols() == in_dim_);
  auto c = std::make_unique<GatContext>();
  c->self_rows = view.self_rows;
  c->nbr_rows = view.nbr_rows;
  c->seg_offsets = view.seg_offsets;
  c->h = *view.h;

  const int64_t num_out = view.num_outputs();
  const int64_t num_edges = static_cast<int64_t>(view.nbr_rows.size());
  c->owner.resize(static_cast<size_t>(num_edges));
  for (int64_t s = 0; s < num_out; ++s) {
    for (int64_t e = view.seg_offsets[static_cast<size_t>(s)];
         e < view.seg_offsets[static_cast<size_t>(s) + 1]; ++e) {
      c->owner[static_cast<size_t>(e)] = s;
    }
  }

  Tensor z = Matmul(*view.h, w_.value);
  c->self_in = IndexSelect(*view.h, view.self_rows);
  c->z_self = IndexSelect(z, view.self_rows);
  c->z_nbr = IndexSelect(z, view.nbr_rows);

  // Raw attention scores.
  Tensor scores(num_edges, 1);
  for (int64_t e = 0; e < num_edges; ++e) {
    const float* zs = c->z_self.RowPtr(c->owner[static_cast<size_t>(e)]);
    const float* zn = c->z_nbr.RowPtr(e);
    float s = 0.0f;
    for (int64_t d = 0; d < out_dim_; ++d) {
      s += attn_l_.value.data()[d] * zs[d] + attn_r_.value.data()[d] * zn[d];
    }
    scores.data()[e] = s;
  }
  c->e_act = LeakyRelu(scores, leaky_slope_);
  c->alpha = c->e_act;
  SegmentSoftmaxInPlace(c->alpha, view.seg_offsets);

  // Weighted aggregation.
  Tensor weighted(num_edges, out_dim_);
  for (int64_t e = 0; e < num_edges; ++e) {
    const float a = c->alpha.data()[e];
    const float* zn = c->z_nbr.RowPtr(e);
    float* wrow = weighted.RowPtr(e);
    for (int64_t d = 0; d < out_dim_; ++d) {
      wrow[d] = a * zn[d];
    }
  }
  Tensor pre = SegmentSum(weighted, view.seg_offsets);
  AddInPlace(pre, Matmul(c->self_in, w_root_.value));
  AddBiasRows(pre, bias_.value);
  c->out = ApplyActivation(act_, pre);
  Tensor out = c->out;
  if (ctx != nullptr) {
    *ctx = std::move(c);
  }
  return out;
}

Tensor GatLayer::Backward(LayerContext& ctx, const Tensor& grad_out) {
  auto& c = static_cast<GatContext&>(ctx);
  const int64_t num_edges = static_cast<int64_t>(c.nbr_rows.size());
  Tensor dpre = ActivationBackward(act_, c.out, grad_out);

  // Root path.
  AddInPlace(w_root_.grad, MatmulTransA(c.self_in, dpre));
  AddInPlace(bias_.grad, SumRows(dpre));
  Tensor dself_in = MatmulTransB(dpre, w_root_.value);

  // Aggregation path: dweighted[e] = dpre[owner[e]].
  Tensor dz_nbr(num_edges, out_dim_);
  Tensor dalpha(num_edges, 1);
  for (int64_t e = 0; e < num_edges; ++e) {
    const float* dp = dpre.RowPtr(c.owner[static_cast<size_t>(e)]);
    const float* zn = c.z_nbr.RowPtr(e);
    float* dzn = dz_nbr.RowPtr(e);
    const float a = c.alpha.data()[e];
    float da = 0.0f;
    for (int64_t d = 0; d < out_dim_; ++d) {
      dzn[d] = a * dp[d];
      da += dp[d] * zn[d];
    }
    dalpha.data()[e] = da;
  }

  // Attention path.
  Tensor de_act = SegmentSoftmaxBackward(c.alpha, dalpha, c.seg_offsets);
  Tensor de_raw = LeakyReluBackward(c.e_act, de_act, leaky_slope_);

  Tensor dz_self(c.z_self.rows(), out_dim_);
  for (int64_t e = 0; e < num_edges; ++e) {
    const float de = de_raw.data()[e];
    const int64_t s = c.owner[static_cast<size_t>(e)];
    const float* zs = c.z_self.RowPtr(s);
    const float* zn = c.z_nbr.RowPtr(e);
    float* dzs = dz_self.RowPtr(s);
    float* dzn = dz_nbr.RowPtr(e);
    for (int64_t d = 0; d < out_dim_; ++d) {
      attn_l_.grad.data()[d] += de * zs[d];
      attn_r_.grad.data()[d] += de * zn[d];
      dzs[d] += de * attn_l_.value.data()[d];
      dzn[d] += de * attn_r_.value.data()[d];
    }
  }

  // Collect dz over all input rows, then push through W.
  Tensor dz(c.h.rows(), out_dim_);
  ScatterAddRows(dz, c.self_rows, dz_self);
  ScatterAddRows(dz, c.nbr_rows, dz_nbr);

  AddInPlace(w_.grad, MatmulTransA(c.h, dz));
  Tensor dh = MatmulTransB(dz, w_.value);
  ScatterAddRows(dh, c.self_rows, dself_in);
  return dh;
}

}  // namespace mariusgnn
