#include "src/nn/layer.h"

#include "src/tensor/ops.h"
#include "src/util/check.h"

namespace mariusgnn {

Tensor ApplyActivation(Activation act, const Tensor& pre, const ComputeContext* ctx) {
  switch (act) {
    case Activation::kNone:
      return pre;
    case Activation::kRelu:
      return Relu(pre, ctx);
    case Activation::kTanh:
      return Tanh(pre, ctx);
  }
  MG_CHECK_MSG(false, "unknown activation");
  return pre;
}

Tensor ActivationBackward(Activation act, const Tensor& out, const Tensor& grad_out,
                          const ComputeContext* ctx) {
  switch (act) {
    case Activation::kNone:
      return grad_out;
    case Activation::kRelu:
      return ReluBackward(out, grad_out, ctx);
    case Activation::kTanh:
      return TanhBackward(out, grad_out, ctx);
  }
  MG_CHECK_MSG(false, "unknown activation");
  return grad_out;
}

}  // namespace mariusgnn
