#include "src/nn/layer.h"

#include "src/tensor/ops.h"
#include "src/util/check.h"

namespace mariusgnn {

Tensor ApplyActivation(Activation act, const Tensor& pre) {
  switch (act) {
    case Activation::kNone:
      return pre;
    case Activation::kRelu:
      return Relu(pre);
    case Activation::kTanh:
      return Tanh(pre);
  }
  MG_CHECK_MSG(false, "unknown activation");
  return pre;
}

Tensor ActivationBackward(Activation act, const Tensor& out, const Tensor& grad_out) {
  switch (act) {
    case Activation::kNone:
      return grad_out;
    case Activation::kRelu:
      return ReluBackward(out, grad_out);
    case Activation::kTanh:
      return TanhBackward(out, grad_out);
  }
  MG_CHECK_MSG(false, "unknown activation");
  return grad_out;
}

}  // namespace mariusgnn
