// Dense-parameter optimizers. Sparse per-row embedding updates live in
// src/storage/embedding_store.h; these handle GNN weights and decoder parameters.
#ifndef SRC_NN_OPTIMIZER_H_
#define SRC_NN_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "src/nn/parameter.h"
#include "src/util/compute.h"

namespace mariusgnn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  // Stage-3 parallel-compute handle. Steps are elementwise over disjoint chunks,
  // so any pool size produces identical parameter bits (null = serial).
  void set_compute(const ComputeContext* compute) { compute_ = compute; }

  // Applies one update from p.grad to p.value. Does not zero the gradient.
  virtual void Step(Parameter& p) = 0;

  void StepAll(const std::vector<Parameter*>& params) {
    for (Parameter* p : params) {
      Step(*p);
      p->ZeroGrad();
    }
  }

 protected:
  const ComputeContext* compute_ = nullptr;
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr) : lr_(lr) {}
  void Step(Parameter& p) override;

 private:
  float lr_;
};

class Adagrad : public Optimizer {
 public:
  explicit Adagrad(float lr, float eps = 1e-10f) : lr_(lr), eps_(eps) {}
  void Step(Parameter& p) override;

 private:
  float lr_;
  float eps_;
};

}  // namespace mariusgnn

#endif  // SRC_NN_OPTIMIZER_H_
