// Dense-parameter optimizers. Sparse per-row embedding updates live in
// src/storage/embedding_store.h; these handle GNN weights and decoder parameters.
#ifndef SRC_NN_OPTIMIZER_H_
#define SRC_NN_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "src/nn/parameter.h"
#include "src/util/compute.h"

namespace mariusgnn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  // Stage-3 parallel-compute handle. Steps are elementwise over disjoint chunks,
  // so any pool size produces identical parameter bits (null = serial).
  void set_compute(const ComputeContext* compute) { compute_ = compute; }

  // Applies one update computed from `grad` to p.value (same shape as
  // p.value). Does not zero p.grad. This is the gradient-exchange seam's
  // apply path: the exchange hands back either the parameter's own gradient
  // (single replica) or the cross-replica ordered-fold sum, and the optimizer
  // applies whichever it is given.
  virtual void StepFromReduced(Parameter& p, const Tensor& grad) = 0;

  // Applies one update from p.grad to p.value. Does not zero the gradient.
  void Step(Parameter& p) { StepFromReduced(p, p.grad); }

  void StepAll(const std::vector<Parameter*>& params) {
    for (Parameter* p : params) {
      Step(*p);
      p->ZeroGrad();
    }
  }

  // Applies reduced[i] — the exchange's fold output for params[i] — to each
  // parameter, then zeroes the parameter's own gradient accumulator (the local
  // contribution is already inside the fold).
  void StepAllFromReduced(const std::vector<Parameter*>& params,
                          const std::vector<Tensor>& reduced) {
    MG_CHECK_MSG(params.size() == reduced.size(),
                 "reduced gradient count does not match parameter count");
    for (size_t i = 0; i < params.size(); ++i) {
      MG_CHECK_MSG(reduced[i].size() == params[i]->value.size(),
                   "reduced gradient size does not match parameter size");
      StepFromReduced(*params[i], reduced[i]);
      params[i]->ZeroGrad();
    }
  }

 protected:
  const ComputeContext* compute_ = nullptr;
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr) : lr_(lr) {}
  void StepFromReduced(Parameter& p, const Tensor& grad) override;

 private:
  float lr_;
};

class Adagrad : public Optimizer {
 public:
  explicit Adagrad(float lr, float eps = 1e-10f) : lr_(lr), eps_(eps) {}
  void StepFromReduced(Parameter& p, const Tensor& grad) override;

 private:
  float lr_;
  float eps_;
};

}  // namespace mariusgnn

#endif  // SRC_NN_OPTIMIZER_H_
