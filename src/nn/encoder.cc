#include "src/nn/encoder.h"

#include <numeric>

#include "src/nn/gat.h"
#include "src/nn/gcn.h"
#include "src/nn/graphsage.h"
#include "src/util/check.h"
#include "src/util/slot_remap.h"

namespace mariusgnn {

std::vector<std::unique_ptr<GnnLayer>> BuildGnnLayers(GnnLayerType type,
                                                      const std::vector<int64_t>& dims,
                                                      Activation hidden_act, Rng& rng) {
  MG_CHECK(dims.size() >= 2);
  std::vector<std::unique_ptr<GnnLayer>> layers;
  for (size_t j = 0; j + 1 < dims.size(); ++j) {
    const Activation act = (j + 2 < dims.size()) ? hidden_act : Activation::kNone;
    switch (type) {
      case GnnLayerType::kGraphSage:
        layers.push_back(std::make_unique<GraphSageLayer>(dims[j], dims[j + 1], act, rng));
        break;
      case GnnLayerType::kGcn:
        layers.push_back(std::make_unique<GcnLayer>(dims[j], dims[j + 1], act, rng));
        break;
      case GnnLayerType::kGat:
        layers.push_back(std::make_unique<GatLayer>(dims[j], dims[j + 1], act, rng));
        break;
    }
  }
  return layers;
}

Tensor GnnEncoder::ForwardImpl(DenseBatch& batch, const Tensor& h0,
                               const ComputeContext* compute,
                               std::vector<std::unique_ptr<LayerContext>>* ctxs) const {
  MG_CHECK(batch.num_deltas() == num_layers() + 1);
  MG_CHECK(h0.rows() == batch.num_nodes());
  MG_CHECK(batch.repr_map.size() == batch.nbrs.size());
  ctxs->clear();
  ctxs->resize(layers_.size());

  Tensor h = h0;
  for (size_t j = 0; j < layers_.size(); ++j) {
    LayerView view;
    view.h = &h;
    view.compute = compute;
    const int64_t out_begin = batch.node_id_offsets[1];
    view.self_rows.resize(static_cast<size_t>(batch.num_nodes() - out_begin));
    std::iota(view.self_rows.begin(), view.self_rows.end(), out_begin);
    view.nbr_rows = batch.repr_map;
    view.seg_offsets = batch.SegmentOffsets();
    view.nbr_rels = batch.nbr_rels;
    Tensor out = layers_[j]->Forward(view, &(*ctxs)[j]);
    if (j + 1 < layers_.size()) {
      batch.AdvanceLayer();
    }
    h = std::move(out);
  }
  return h;
}

Tensor GnnEncoder::Forward(DenseBatch& batch, const Tensor& h0) {
  return ForwardImpl(batch, h0, compute_, &contexts_);
}

Tensor GnnEncoder::InferForward(DenseBatch& batch, const Tensor& h0,
                                const ComputeContext* compute) const {
  std::vector<std::unique_ptr<LayerContext>> scratch;
  return ForwardImpl(batch, h0, compute, &scratch);
}

Tensor GnnEncoder::Backward(const Tensor& grad_targets) {
  MG_CHECK(contexts_.size() == layers_.size());
  Tensor grad = grad_targets;
  for (size_t j = layers_.size(); j-- > 0;) {
    grad = layers_[j]->Backward(*contexts_[j], grad);
  }
  return grad;
}

std::vector<Parameter*> GnnEncoder::Parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Parameters()) {
      params.push_back(p);
    }
  }
  return params;
}

namespace {

// Per-thread dst -> sparse-histogram-slot remap for the BlockToView counting sort
// (see slot_remap.h); rebuilt identically in both passes because claims follow the
// same edge order.
thread_local SlotRemap block_sort_remap;

// Converts a bipartite block to segment (CSR-by-dst) form: the per-layer format
// conversion baseline systems perform before aggregation. The counting sort runs
// as a two-pass parallel sort over fixed edge chunks: pass 1 builds per-chunk
// histograms, a serial prefix turns them into per-chunk cursors, and pass 2 places
// edges through those cursors. Placement positions are exact integers — chunk c's
// cursor for dst d starts where chunks < c left off — so the output is identical
// to the serial single-pass sort for a null context and any pool size.
LayerView BlockToView(const LayerBlock& block, const Tensor& h,
                      const ComputeContext* cc) {
  LayerView view;
  view.h = &h;
  const int64_t num_dst = static_cast<int64_t>(block.dst_nodes.size());
  view.self_rows.resize(static_cast<size_t>(num_dst));
  std::iota(view.self_rows.begin(), view.self_rows.end(), 0);

  const int64_t num_edges = static_cast<int64_t>(block.edge_dst.size());
  std::vector<int64_t> counts(static_cast<size_t>(num_dst) + 1, 0);
  view.nbr_rows.resize(static_cast<size_t>(num_edges));
  view.nbr_rels.resize(static_cast<size_t>(num_edges));
  const int64_t chunks = ComputeChunkCount(num_edges, kComputeGrainSortEdges);
  // Placement positions are exact integers, so the single-pass and two-pass sorts
  // are bitwise identical by construction — unlike the float kernels, branching on
  // the context here cannot break the determinism contract. Take the cheaper
  // single-pass sort whenever there is no pool to fan the two passes out to.
  if (cc == nullptr || cc->pool == nullptr || chunks <= 1) {
    for (int64_t d : block.edge_dst) {
      ++counts[static_cast<size_t>(d) + 1];
    }
    for (size_t i = 1; i < counts.size(); ++i) {
      counts[i] += counts[i - 1];
    }
    view.seg_offsets = counts;
    std::vector<int64_t> cursor(counts.begin(), counts.end() - 1);
    for (int64_t e = 0; e < num_edges; ++e) {
      const int64_t pos = cursor[static_cast<size_t>(block.edge_dst[static_cast<size_t>(e)])]++;
      view.nbr_rows[static_cast<size_t>(pos)] = block.edge_src[static_cast<size_t>(e)];
      view.nbr_rels[static_cast<size_t>(pos)] = block.edge_rel[static_cast<size_t>(e)];
    }
    return view;
  }

  // Pass 1: per-chunk SPARSE dst histograms — touched dsts in first-occurrence
  // order plus parallel counts (disjoint writes — each chunk owns its vectors).
  // Sparse rather than num_dst-wide so the serial combine below costs
  // O(num_dst + total touched) instead of O(chunks x num_dst), which would exceed
  // the old serial sort once blocks have more destinations than one chunk's edges.
  std::vector<std::vector<int64_t>> chunk_dsts(static_cast<size_t>(chunks));
  std::vector<std::vector<int64_t>> chunk_counts(static_cast<size_t>(chunks));
  ForEachChunk(cc, num_edges, kComputeGrainSortEdges,
               [&](int64_t chunk, int64_t begin, int64_t end) {
                 SlotRemap& remap = block_sort_remap;
                 remap.NextGeneration(num_dst);
                 std::vector<int64_t>& dsts = chunk_dsts[static_cast<size_t>(chunk)];
                 std::vector<int64_t>& local = chunk_counts[static_cast<size_t>(chunk)];
                 for (int64_t e = begin; e < end; ++e) {
                   const int32_t slot =
                       remap.Claim(block.edge_dst[static_cast<size_t>(e)], &dsts);
                   if (static_cast<size_t>(slot) == local.size()) {
                     local.push_back(0);
                   }
                   ++local[static_cast<size_t>(slot)];
                 }
               });
  // Serial combine: segment offsets, then per-chunk starting cursors — for dst d,
  // chunk c starts at offsets[d] plus everything chunks < c placed there.
  for (int64_t c = 0; c < chunks; ++c) {
    const std::vector<int64_t>& dsts = chunk_dsts[static_cast<size_t>(c)];
    const std::vector<int64_t>& local = chunk_counts[static_cast<size_t>(c)];
    for (size_t k = 0; k < dsts.size(); ++k) {
      counts[static_cast<size_t>(dsts[k]) + 1] += local[k];
    }
  }
  for (size_t i = 1; i < counts.size(); ++i) {
    counts[i] += counts[i - 1];
  }
  view.seg_offsets = counts;
  // Rewrite the sparse counts into per-chunk start cursors via one running
  // position array (ascending chunk order = serial placement order).
  std::vector<int64_t> pos(counts.begin(), counts.end() - 1);
  for (int64_t c = 0; c < chunks; ++c) {
    const std::vector<int64_t>& dsts = chunk_dsts[static_cast<size_t>(c)];
    std::vector<int64_t>& local = chunk_counts[static_cast<size_t>(c)];
    for (size_t k = 0; k < dsts.size(); ++k) {
      const int64_t count = local[k];
      local[k] = pos[static_cast<size_t>(dsts[k])];
      pos[static_cast<size_t>(dsts[k])] += count;
    }
  }
  // Pass 2: placement. Re-claiming in the same edge order reproduces pass 1's
  // slot assignment exactly, so each chunk advances its private sparse cursors
  // over disjoint output ranges.
  ForEachChunk(cc, num_edges, kComputeGrainSortEdges,
               [&](int64_t chunk, int64_t begin, int64_t end) {
                 SlotRemap& remap = block_sort_remap;
                 remap.NextGeneration(num_dst);
                 std::vector<int64_t> dsts;
                 std::vector<int64_t>& cursor = chunk_counts[static_cast<size_t>(chunk)];
                 for (int64_t e = begin; e < end; ++e) {
                   const int32_t slot =
                       remap.Claim(block.edge_dst[static_cast<size_t>(e)], &dsts);
                   const int64_t pos_e = cursor[static_cast<size_t>(slot)]++;
                   view.nbr_rows[static_cast<size_t>(pos_e)] =
                       block.edge_src[static_cast<size_t>(e)];
                   view.nbr_rels[static_cast<size_t>(pos_e)] =
                       block.edge_rel[static_cast<size_t>(e)];
                 }
               });
  return view;
}

}  // namespace

Tensor BlockEncoder::ForwardImpl(const LayerwiseSample& sample, const Tensor& h0,
                                 const ComputeContext* compute,
                                 std::vector<std::unique_ptr<LayerContext>>* ctxs) const {
  MG_CHECK(static_cast<int64_t>(sample.blocks.size()) == num_layers());
  MG_CHECK(h0.rows() == sample.NumInputNodes());
  ctxs->clear();
  ctxs->resize(layers_.size());

  Tensor h = h0;
  for (size_t j = 0; j < layers_.size(); ++j) {
    LayerView view = BlockToView(sample.blocks[j], h, compute);
    view.compute = compute;
    Tensor out = layers_[j]->Forward(view, &(*ctxs)[j]);
    h = std::move(out);
  }
  return h;
}

Tensor BlockEncoder::Forward(const LayerwiseSample& sample, const Tensor& h0) {
  return ForwardImpl(sample, h0, compute_, &contexts_);
}

Tensor BlockEncoder::InferForward(const LayerwiseSample& sample, const Tensor& h0,
                                  const ComputeContext* compute) const {
  std::vector<std::unique_ptr<LayerContext>> scratch;
  return ForwardImpl(sample, h0, compute, &scratch);
}

Tensor BlockEncoder::Backward(const Tensor& grad_targets) {
  MG_CHECK(contexts_.size() == layers_.size());
  Tensor grad = grad_targets;
  for (size_t j = layers_.size(); j-- > 0;) {
    grad = layers_[j]->Backward(*contexts_[j], grad);
  }
  return grad;
}

std::vector<Parameter*> BlockEncoder::Parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Parameters()) {
      params.push_back(p);
    }
  }
  return params;
}

}  // namespace mariusgnn
