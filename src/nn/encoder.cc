#include "src/nn/encoder.h"

#include <numeric>

#include "src/nn/gat.h"
#include "src/nn/gcn.h"
#include "src/nn/graphsage.h"
#include "src/util/check.h"

namespace mariusgnn {

std::vector<std::unique_ptr<GnnLayer>> BuildGnnLayers(GnnLayerType type,
                                                      const std::vector<int64_t>& dims,
                                                      Activation hidden_act, Rng& rng) {
  MG_CHECK(dims.size() >= 2);
  std::vector<std::unique_ptr<GnnLayer>> layers;
  for (size_t j = 0; j + 1 < dims.size(); ++j) {
    const Activation act = (j + 2 < dims.size()) ? hidden_act : Activation::kNone;
    switch (type) {
      case GnnLayerType::kGraphSage:
        layers.push_back(std::make_unique<GraphSageLayer>(dims[j], dims[j + 1], act, rng));
        break;
      case GnnLayerType::kGcn:
        layers.push_back(std::make_unique<GcnLayer>(dims[j], dims[j + 1], act, rng));
        break;
      case GnnLayerType::kGat:
        layers.push_back(std::make_unique<GatLayer>(dims[j], dims[j + 1], act, rng));
        break;
    }
  }
  return layers;
}

Tensor GnnEncoder::Forward(DenseBatch& batch, const Tensor& h0) {
  MG_CHECK(batch.num_deltas() == num_layers() + 1);
  MG_CHECK(h0.rows() == batch.num_nodes());
  MG_CHECK(batch.repr_map.size() == batch.nbrs.size());
  contexts_.clear();
  contexts_.resize(layers_.size());

  Tensor h = h0;
  for (size_t j = 0; j < layers_.size(); ++j) {
    LayerView view;
    view.h = &h;
    view.compute = compute_;
    const int64_t out_begin = batch.node_id_offsets[1];
    view.self_rows.resize(static_cast<size_t>(batch.num_nodes() - out_begin));
    std::iota(view.self_rows.begin(), view.self_rows.end(), out_begin);
    view.nbr_rows = batch.repr_map;
    view.seg_offsets = batch.SegmentOffsets();
    view.nbr_rels = batch.nbr_rels;
    Tensor out = layers_[j]->Forward(view, &contexts_[j]);
    if (j + 1 < layers_.size()) {
      batch.AdvanceLayer();
    }
    h = std::move(out);
  }
  return h;
}

Tensor GnnEncoder::Backward(const Tensor& grad_targets) {
  MG_CHECK(contexts_.size() == layers_.size());
  Tensor grad = grad_targets;
  for (size_t j = layers_.size(); j-- > 0;) {
    grad = layers_[j]->Backward(*contexts_[j], grad);
  }
  return grad;
}

std::vector<Parameter*> GnnEncoder::Parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Parameters()) {
      params.push_back(p);
    }
  }
  return params;
}

namespace {

// Converts a bipartite block to segment (CSR-by-dst) form: the per-layer format
// conversion baseline systems perform before aggregation.
LayerView BlockToView(const LayerBlock& block, const Tensor& h) {
  LayerView view;
  view.h = &h;
  const int64_t num_dst = static_cast<int64_t>(block.dst_nodes.size());
  view.self_rows.resize(static_cast<size_t>(num_dst));
  std::iota(view.self_rows.begin(), view.self_rows.end(), 0);

  // Counting sort of edges by dst.
  std::vector<int64_t> counts(static_cast<size_t>(num_dst) + 1, 0);
  for (int64_t d : block.edge_dst) {
    ++counts[static_cast<size_t>(d) + 1];
  }
  for (size_t i = 1; i < counts.size(); ++i) {
    counts[i] += counts[i - 1];
  }
  view.seg_offsets = counts;
  view.nbr_rows.resize(block.edge_dst.size());
  view.nbr_rels.resize(block.edge_dst.size());
  std::vector<int64_t> cursor(counts.begin(), counts.end() - 1);
  for (size_t e = 0; e < block.edge_dst.size(); ++e) {
    const int64_t pos = cursor[static_cast<size_t>(block.edge_dst[e])]++;
    view.nbr_rows[static_cast<size_t>(pos)] = block.edge_src[e];
    view.nbr_rels[static_cast<size_t>(pos)] = block.edge_rel[e];
  }
  return view;
}

}  // namespace

Tensor BlockEncoder::Forward(const LayerwiseSample& sample, const Tensor& h0) {
  MG_CHECK(static_cast<int64_t>(sample.blocks.size()) == num_layers());
  MG_CHECK(h0.rows() == sample.NumInputNodes());
  contexts_.clear();
  contexts_.resize(layers_.size());

  Tensor h = h0;
  for (size_t j = 0; j < layers_.size(); ++j) {
    LayerView view = BlockToView(sample.blocks[j], h);
    view.compute = compute_;
    Tensor out = layers_[j]->Forward(view, &contexts_[j]);
    h = std::move(out);
  }
  return h;
}

Tensor BlockEncoder::Backward(const Tensor& grad_targets) {
  MG_CHECK(contexts_.size() == layers_.size());
  Tensor grad = grad_targets;
  for (size_t j = layers_.size(); j-- > 0;) {
    grad = layers_[j]->Backward(*contexts_[j], grad);
  }
  return grad;
}

std::vector<Parameter*> BlockEncoder::Parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Parameters()) {
      params.push_back(p);
    }
  }
  return params;
}

}  // namespace mariusgnn
