#include "src/nn/graphsage.h"

#include "src/tensor/ops.h"
#include "src/util/check.h"

namespace mariusgnn {

namespace {

struct SageContext : public LayerContext {
  std::vector<int64_t> self_rows;
  std::vector<int64_t> nbr_rows;
  std::vector<int64_t> seg_offsets;
  int64_t num_inputs = 0;
  Tensor self_in;   // gathered self inputs (num_outputs x in_dim)
  Tensor nbr_mean;  // aggregated neighbor inputs (num_outputs x in_dim)
  Tensor out;       // post-activation output
};

}  // namespace

GraphSageLayer::GraphSageLayer(int64_t in_dim, int64_t out_dim, Activation act, Rng& rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      act_(act),
      w_self_(Tensor::GlorotUniform(in_dim, out_dim, rng)),
      w_nbr_(Tensor::GlorotUniform(in_dim, out_dim, rng)),
      bias_(Tensor(1, out_dim)) {}

Tensor GraphSageLayer::Forward(const LayerView& view, std::unique_ptr<LayerContext>* ctx) const {
  MG_CHECK(view.h != nullptr && view.h->cols() == in_dim_);
  const ComputeContext* cc = view.compute;
  auto c = std::make_unique<SageContext>();
  c->compute = cc;
  c->self_rows = view.self_rows;
  c->nbr_rows = view.nbr_rows;
  c->seg_offsets = view.seg_offsets;
  c->num_inputs = view.num_inputs();

  c->self_in = IndexSelect(*view.h, view.self_rows, cc);
  Tensor nbr_in = IndexSelect(*view.h, view.nbr_rows, cc);
  c->nbr_mean = SegmentMean(nbr_in, view.seg_offsets, cc);

  Tensor pre = Matmul(c->self_in, w_self_.value, cc);
  AddInPlace(pre, Matmul(c->nbr_mean, w_nbr_.value, cc), cc);
  AddBiasRows(pre, bias_.value, cc);
  c->out = ApplyActivation(act_, pre, cc);
  Tensor out = c->out;
  if (ctx != nullptr) {
    *ctx = std::move(c);
  }
  return out;
}

Tensor GraphSageLayer::Backward(LayerContext& ctx, const Tensor& grad_out) {
  auto& c = static_cast<SageContext&>(ctx);
  const ComputeContext* cc = c.compute;
  Tensor dpre = ActivationBackward(act_, c.out, grad_out, cc);

  AddInPlace(w_self_.grad, MatmulTransA(c.self_in, dpre, cc), cc);
  AddInPlace(w_nbr_.grad, MatmulTransA(c.nbr_mean, dpre, cc), cc);
  AddInPlace(bias_.grad, SumRows(dpre, cc), cc);

  Tensor dself = MatmulTransB(dpre, w_self_.value, cc);     // num_outputs x in_dim
  Tensor dnbr_mean = MatmulTransB(dpre, w_nbr_.value, cc);  // num_outputs x in_dim
  Tensor dnbr_in = SegmentMeanBackward(dnbr_mean, c.seg_offsets, cc);

  Tensor dh(c.num_inputs, in_dim_);
  ScatterAddRows(dh, c.self_rows, dself, cc);
  ScatterAddRows(dh, c.nbr_rows, dnbr_in, cc);
  return dh;
}

}  // namespace mariusgnn
