#include "src/nn/optimizer.h"

#include <cmath>

namespace mariusgnn {

void Sgd::StepFromReduced(Parameter& p, const Tensor& grad) {
  ForEachChunk(compute_, p.value.size(), kComputeGrainElems,
               [&](int64_t, int64_t begin, int64_t end) {
                 for (int64_t i = begin; i < end; ++i) {
                   p.value.data()[i] -= lr_ * grad.data()[i];
                 }
               });
}

void Adagrad::StepFromReduced(Parameter& p, const Tensor& grad) {
  if (p.state.size() != p.value.size()) {
    p.state = Tensor(p.value.rows(), p.value.cols());
  }
  ForEachChunk(compute_, p.value.size(), kComputeGrainElems,
               [&](int64_t, int64_t begin, int64_t end) {
                 for (int64_t i = begin; i < end; ++i) {
                   const float g = grad.data()[i];
                   p.state.data()[i] += g * g;
                   p.value.data()[i] -= lr_ * g / (std::sqrt(p.state.data()[i]) + eps_);
                 }
               });
}

}  // namespace mariusgnn
