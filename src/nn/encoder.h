// Multi-layer GNN encoders.
//
// GnnEncoder executes the paper's DENSE forward pass (Section 4.2): every layer reads
// the current DENSE state (repr_map + contiguous neighbor segments), computes output
// representations for node_ids[offsets[1]:], then AdvanceLayer() slices the structure
// (Algorithm 2) so the next layer runs the identical code path. Contexts saved per
// layer drive the manual backward pass down to d(H0).
//
// BlockEncoder executes the baseline per-block path over a LayerwiseSample: each block
// is converted to segment form on the fly (the CSR conversion baseline systems perform)
// and the same GnnLayer implementations are applied. It exists so the end-to-end
// baseline comparisons isolate the sampling/data-structure difference.
#ifndef SRC_NN_ENCODER_H_
#define SRC_NN_ENCODER_H_

#include <memory>
#include <vector>

#include "src/nn/layer.h"
#include "src/sampler/dense.h"
#include "src/sampler/layerwise.h"
#include "src/util/rng.h"

namespace mariusgnn {

enum class GnnLayerType { kGraphSage, kGcn, kGat };

// Builds a stack of `dims.size()-1` layers; dims[0] is the base representation width.
// Hidden layers use `hidden_act`; the final layer uses kNone.
std::vector<std::unique_ptr<GnnLayer>> BuildGnnLayers(GnnLayerType type,
                                                      const std::vector<int64_t>& dims,
                                                      Activation hidden_act, Rng& rng);

class GnnEncoder {
 public:
  GnnEncoder(GnnLayerType type, const std::vector<int64_t>& dims, Activation hidden_act,
             Rng& rng)
      : layers_(BuildGnnLayers(type, dims, hidden_act, rng)) {}

  // Stage-3 parallel-compute handle threaded into every layer view (null = serial;
  // results are bitwise-identical either way — see src/util/compute.h).
  void set_compute(const ComputeContext* compute) { compute_ = compute; }

  // `batch` must be finalized (repr_map built); it is consumed (advanced) in place.
  // h0 rows align with batch.node_ids. Returns representations of the target nodes.
  Tensor Forward(DenseBatch& batch, const Tensor& h0);

  // Inference-only forward: identical math to Forward (bitwise), but saves no
  // backward state in the encoder, so a const encoder shared by concurrent
  // readers (the serving snapshot) stays immutable. `compute` overrides the
  // training-time handle (pass nullptr for serial).
  Tensor InferForward(DenseBatch& batch, const Tensor& h0,
                      const ComputeContext* compute) const;

  // Returns d loss / d h0, aligned with the original node_ids of the last Forward.
  Tensor Backward(const Tensor& grad_targets);

  std::vector<Parameter*> Parameters();

  int64_t num_layers() const { return static_cast<int64_t>(layers_.size()); }
  int64_t out_dim() const { return layers_.back()->out_dim(); }

 private:
  // Shared const forward pass: per-invocation state lands in *ctxs (sized to the
  // layer count by the caller), never in the encoder.
  Tensor ForwardImpl(DenseBatch& batch, const Tensor& h0,
                     const ComputeContext* compute,
                     std::vector<std::unique_ptr<LayerContext>>* ctxs) const;

  std::vector<std::unique_ptr<GnnLayer>> layers_;
  std::vector<std::unique_ptr<LayerContext>> contexts_;
  const ComputeContext* compute_ = nullptr;
};

class BlockEncoder {
 public:
  BlockEncoder(GnnLayerType type, const std::vector<int64_t>& dims, Activation hidden_act,
               Rng& rng)
      : layers_(BuildGnnLayers(type, dims, hidden_act, rng)) {}

  // Stage-3 parallel-compute handle (null = serial; results identical either way).
  void set_compute(const ComputeContext* compute) { compute_ = compute; }

  // h0 rows align with sample.input_nodes(). Returns target-node representations.
  Tensor Forward(const LayerwiseSample& sample, const Tensor& h0);

  // Inference-only forward (see GnnEncoder::InferForward).
  Tensor InferForward(const LayerwiseSample& sample, const Tensor& h0,
                      const ComputeContext* compute) const;

  // Returns d loss / d h0 (rows == input_nodes of the last Forward).
  Tensor Backward(const Tensor& grad_targets);

  std::vector<Parameter*> Parameters();

  int64_t num_layers() const { return static_cast<int64_t>(layers_.size()); }
  int64_t out_dim() const { return layers_.back()->out_dim(); }

 private:
  Tensor ForwardImpl(const LayerwiseSample& sample, const Tensor& h0,
                     const ComputeContext* compute,
                     std::vector<std::unique_ptr<LayerContext>>* ctxs) const;

  std::vector<std::unique_ptr<GnnLayer>> layers_;
  std::vector<std::unique_ptr<LayerContext>> contexts_;
  const ComputeContext* compute_ = nullptr;
};

}  // namespace mariusgnn

#endif  // SRC_NN_ENCODER_H_
