// Link-prediction score functions (decoders) over node representations.
//
// Training follows the Marius/DGL-KE scheme the paper uses: each positive edge
// (s, r, o) is scored against a set of shared negative nodes that corrupt the
// destination and (separately) the source; the loss is softmax cross-entropy with the
// positive in class 0, averaged over both corruption sides.
//
// Decoders implemented: DistMult (the paper's evaluation decoder), TransE and ComplEx
// (the specialised knowledge-graph models subsumed per Section 1).
#ifndef SRC_NN_DECODER_H_
#define SRC_NN_DECODER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nn/parameter.h"
#include "src/tensor/tensor.h"
#include "src/util/compute.h"
#include "src/util/rng.h"

namespace mariusgnn {

class Decoder {
 public:
  virtual ~Decoder() = default;

  // Stage-3 parallel-compute handle. LossAndGrad splits the positive edges into
  // fixed chunks; each chunk scores and back-propagates into private gradient
  // partials that are folded in ascending chunk order, so the result is
  // bitwise-identical for any pool size (null = serial over the same chunks).
  void set_compute(const ComputeContext* compute) { compute_ = compute; }

  // Computes the mean softmax-CE ranking loss for `src_rows/dst_rows/rels` (parallel
  // arrays of edges; rows index into `reprs`) against shared negatives `neg_rows`.
  // Accumulates d loss / d reprs into *d_reprs (must be pre-sized reprs.rows() x dim)
  // and relation-parameter gradients. Returns the loss.
  float LossAndGrad(const Tensor& reprs, const std::vector<int64_t>& src_rows,
                    const std::vector<int64_t>& dst_rows, const std::vector<int32_t>& rels,
                    const std::vector<int64_t>& neg_rows, Tensor* d_reprs);

  // out[j] = score(src, rel, cand_j); used for MRR ranking. corrupt_src=true scores
  // (cand_j, rel, dst_row_or_src...) with the candidate on the source side.
  void ScoreCandidates(const Tensor& reprs, int64_t fixed_row, int32_t rel,
                       const std::vector<int64_t>& cand_rows, bool corrupt_src,
                       std::vector<float>* out) const;

  virtual std::vector<Parameter*> Parameters() = 0;
  virtual std::string name() const = 0;

 protected:
  Decoder(int32_t num_relations, int64_t dim, float init_scale, Rng& rng)
      : dim_(dim), rel_(Tensor::Uniform(num_relations, dim, init_scale, rng)) {}

  // score(s, r, o) for dim_-wide vectors.
  virtual float Score(const float* s, const float* r, const float* o) const = 0;

  // Adds coeff * dScore into ds, dr, do_ (any may be nullptr).
  virtual void ScoreBackward(const float* s, const float* r, const float* o, float coeff,
                             float* ds, float* dr, float* do_) const = 0;

  int64_t dim_;
  Parameter rel_;  // num_relations x dim
  const ComputeContext* compute_ = nullptr;

 private:
  // One corruption side of the loss; gradients and the returned loss are multiplied by
  // `scale` so two sides can be averaged without rescaling accumulated gradients.
  float SideLossAndGrad(const Tensor& reprs, const std::vector<int64_t>& src_rows,
                        const std::vector<int64_t>& dst_rows, const std::vector<int32_t>& rels,
                        const std::vector<int64_t>& neg_rows, bool corrupt_src, float scale,
                        Tensor* d_reprs);

  // Edges [begin, end) of one side: accumulates gradients into d_out/rel_grad (the
  // real accumulators with null remaps, or per-chunk compact partials indexed via
  // slot_of[global row] / rel_slot_of[relation]) and returns the unscaled loss sum.
  double SideLossChunk(const Tensor& reprs, const std::vector<int64_t>& src_rows,
                       const std::vector<int64_t>& dst_rows, const std::vector<int32_t>& rels,
                       const std::vector<int64_t>& neg_rows, bool corrupt_src, float inv_b,
                       int64_t begin, int64_t end, Tensor* d_out, Tensor* rel_grad,
                       const int32_t* slot_of, const int32_t* rel_slot_of) const;
};

// score(s, r, o) = sum_d s_d * r_d * o_d.
class DistMultDecoder : public Decoder {
 public:
  DistMultDecoder(int32_t num_relations, int64_t dim, Rng& rng)
      : Decoder(num_relations, dim, 0.5f, rng) {}

  std::vector<Parameter*> Parameters() override { return {&rel_}; }
  std::string name() const override { return "DistMult"; }

 protected:
  float Score(const float* s, const float* r, const float* o) const override;
  void ScoreBackward(const float* s, const float* r, const float* o, float coeff,
                     float* ds, float* dr, float* do_) const override;
};

// score(s, r, o) = -||s + r - o||^2.
class TransEDecoder : public Decoder {
 public:
  TransEDecoder(int32_t num_relations, int64_t dim, Rng& rng)
      : Decoder(num_relations, dim, 0.5f, rng) {}

  std::vector<Parameter*> Parameters() override { return {&rel_}; }
  std::string name() const override { return "TransE"; }

 protected:
  float Score(const float* s, const float* r, const float* o) const override;
  void ScoreBackward(const float* s, const float* r, const float* o, float coeff,
                     float* ds, float* dr, float* do_) const override;
};

// score(s, r, o) = Re(<s, r, conj(o)>); dim must be even (first half real, second
// half imaginary).
class ComplExDecoder : public Decoder {
 public:
  ComplExDecoder(int32_t num_relations, int64_t dim, Rng& rng)
      : Decoder(num_relations, dim, 0.5f, rng) {
    MG_CHECK(dim % 2 == 0);
  }

  std::vector<Parameter*> Parameters() override { return {&rel_}; }
  std::string name() const override { return "ComplEx"; }

 protected:
  float Score(const float* s, const float* r, const float* o) const override;
  void ScoreBackward(const float* s, const float* r, const float* o, float coeff,
                     float* ds, float* dr, float* do_) const override;
};

std::unique_ptr<Decoder> MakeDecoder(const std::string& name, int32_t num_relations,
                                     int64_t dim, Rng& rng);

}  // namespace mariusgnn

#endif  // SRC_NN_DECODER_H_
