#include "src/nn/decoder.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/ops.h"
#include "src/util/check.h"
#include "src/util/slot_remap.h"

namespace mariusgnn {

namespace {

// Gradient row for `row`: direct, or through the chunk's compact-slot remap.
inline float* GradRow(Tensor* t, const int32_t* slot_of, int64_t row) {
  return t->RowPtr(slot_of == nullptr ? row : slot_of[static_cast<size_t>(row)]);
}

// Per-thread repr-row and relation remaps for the chunked loss kernel (see
// slot_remap.h): bumping a generation replaces the O(num_rows) sentinel fill a
// fresh remap would pay in every 128-edge chunk. SideLossChunk only dereferences
// rows the claim pass touched, so stale entries are never read.
thread_local SlotRemap decoder_row_remap;
thread_local SlotRemap decoder_rel_remap;

}  // namespace

// One chunk of positive edges: scores each edge against the shared negatives and
// accumulates d loss / d reprs into `d_out` and relation gradients into `rel_grad`.
// `d_out`/`rel_grad` are either the real accumulators (single chunk, slot_of ==
// rel_slot_of == nullptr) or per-chunk compact partials indexed through the slot
// remaps (parallel), so the per-edge arithmetic is identical either way.
double Decoder::SideLossChunk(const Tensor& reprs, const std::vector<int64_t>& src_rows,
                              const std::vector<int64_t>& dst_rows,
                              const std::vector<int32_t>& rels,
                              const std::vector<int64_t>& neg_rows, bool corrupt_src,
                              float inv_b, int64_t begin, int64_t end, Tensor* d_out,
                              Tensor* rel_grad, const int32_t* slot_of,
                              const int32_t* rel_slot_of) const {
  const int64_t m = static_cast<int64_t>(neg_rows.size());
  std::vector<float> logits(static_cast<size_t>(m) + 1);
  std::vector<float> probs(static_cast<size_t>(m) + 1);
  double loss = 0.0;
  for (int64_t i = begin; i < end; ++i) {
    const float* s = reprs.RowPtr(src_rows[static_cast<size_t>(i)]);
    const float* o = reprs.RowPtr(dst_rows[static_cast<size_t>(i)]);
    const int32_t rel = rels[static_cast<size_t>(i)];
    const float* r = rel_.value.RowPtr(rel);

    logits[0] = Score(s, r, o);
    for (int64_t j = 0; j < m; ++j) {
      const float* n = reprs.RowPtr(neg_rows[static_cast<size_t>(j)]);
      logits[static_cast<size_t>(j) + 1] = corrupt_src ? Score(n, r, o) : Score(s, r, n);
    }

    // Softmax CE with the positive in class 0.
    float maxv = logits[0];
    for (float v : logits) {
      maxv = std::max(maxv, v);
    }
    double denom = 0.0;
    for (size_t j = 0; j < logits.size(); ++j) {
      probs[j] = std::exp(logits[j] - maxv);
      denom += probs[j];
    }
    const float inv_denom = static_cast<float>(1.0 / denom);
    for (auto& p : probs) {
      p *= inv_denom;
    }
    loss -= std::log(std::max(probs[0], 1e-12f));

    // dlogit_0 = (p0 - 1)/B, dlogit_j = p_j/B.
    float* ds = GradRow(d_out, slot_of, src_rows[static_cast<size_t>(i)]);
    float* do_ = GradRow(d_out, slot_of, dst_rows[static_cast<size_t>(i)]);
    float* dr = GradRow(rel_grad, rel_slot_of, rel);
    ScoreBackward(s, r, o, (probs[0] - 1.0f) * inv_b, ds, dr, do_);
    for (int64_t j = 0; j < m; ++j) {
      const int64_t nrow = neg_rows[static_cast<size_t>(j)];
      const float* n = reprs.RowPtr(nrow);
      float* dn = GradRow(d_out, slot_of, nrow);
      const float coeff = probs[static_cast<size_t>(j) + 1] * inv_b;
      if (coeff == 0.0f) {
        continue;
      }
      if (corrupt_src) {
        ScoreBackward(n, r, o, coeff, dn, dr, do_);
      } else {
        ScoreBackward(s, r, n, coeff, ds, dr, dn);
      }
    }
  }
  return loss;
}

float Decoder::SideLossAndGrad(const Tensor& reprs, const std::vector<int64_t>& src_rows,
                               const std::vector<int64_t>& dst_rows,
                               const std::vector<int32_t>& rels,
                               const std::vector<int64_t>& neg_rows, bool corrupt_src,
                               float scale, Tensor* d_reprs) {
  const int64_t batch = static_cast<int64_t>(src_rows.size());
  const int64_t m = static_cast<int64_t>(neg_rows.size());
  MG_CHECK(batch > 0 && m > 0);
  const float inv_b = scale / static_cast<float>(batch);

  const int64_t chunks = ComputeChunkCount(batch, kComputeGrainEdges);
  if (chunks <= 1) {
    const double loss =
        SideLossChunk(reprs, src_rows, dst_rows, rels, neg_rows, corrupt_src, inv_b, 0,
                      batch, d_reprs, &rel_.grad, /*slot_of=*/nullptr,
                      /*rel_slot_of=*/nullptr);
    return static_cast<float>(loss * inv_b);
  }

  // Every edge writes the shared negative rows (and possibly shared src/dst/relation
  // rows), so chunks accumulate into private partials that are folded into the real
  // accumulators in ascending chunk order — deterministic for any pool size. The
  // partials are compact: a chunk only touches the shared negatives plus its own
  // src/dst rows, so its buffer holds just those rows (slot order: negatives first,
  // then first occurrence — a fixed function of the chunk layout, never the pool).
  std::vector<Tensor> d_partials(static_cast<size_t>(chunks));
  std::vector<std::vector<int64_t>> touched_rows(static_cast<size_t>(chunks));
  std::vector<Tensor> rel_partials(static_cast<size_t>(chunks));
  std::vector<std::vector<int64_t>> touched_rels(static_cast<size_t>(chunks));
  std::vector<double> loss_partials(static_cast<size_t>(chunks), 0.0);
  double loss = 0.0;
  ForEachChunkOrdered(
      compute_, batch, kComputeGrainEdges,
      [&](int64_t chunk, int64_t begin, int64_t end) {
        SlotRemap& row_remap = decoder_row_remap;
        row_remap.NextGeneration(d_reprs->rows());
        std::vector<int64_t> touched;
        for (int64_t row : neg_rows) {
          row_remap.Claim(row, &touched);
        }
        SlotRemap& rel_remap = decoder_rel_remap;
        rel_remap.NextGeneration(rel_.grad.rows());
        std::vector<int64_t> rels_touched;
        for (int64_t i = begin; i < end; ++i) {
          row_remap.Claim(src_rows[static_cast<size_t>(i)], &touched);
          row_remap.Claim(dst_rows[static_cast<size_t>(i)], &touched);
          rel_remap.Claim(rels[static_cast<size_t>(i)], &rels_touched);
        }
        Tensor d_partial(static_cast<int64_t>(touched.size()), d_reprs->cols());
        Tensor rel_partial(static_cast<int64_t>(rels_touched.size()), rel_.grad.cols());
        loss_partials[static_cast<size_t>(chunk)] = SideLossChunk(
            reprs, src_rows, dst_rows, rels, neg_rows, corrupt_src, inv_b, begin, end,
            &d_partial, &rel_partial, row_remap.slot_of.data(),
            rel_remap.slot_of.data());
        d_partials[static_cast<size_t>(chunk)] = std::move(d_partial);
        touched_rows[static_cast<size_t>(chunk)] = std::move(touched);
        rel_partials[static_cast<size_t>(chunk)] = std::move(rel_partial);
        touched_rels[static_cast<size_t>(chunk)] = std::move(rels_touched);
      },
      [&](int64_t chunk) {
        auto fold = [](Tensor& acc, const Tensor& partial,
                       const std::vector<int64_t>& rows) {
          for (size_t s = 0; s < rows.size(); ++s) {
            float* dst = acc.RowPtr(rows[s]);
            const float* src = partial.RowPtr(static_cast<int64_t>(s));
            for (int64_t c = 0; c < acc.cols(); ++c) {
              dst[c] += src[c];
            }
          }
        };
        fold(*d_reprs, d_partials[static_cast<size_t>(chunk)],
             touched_rows[static_cast<size_t>(chunk)]);
        fold(rel_.grad, rel_partials[static_cast<size_t>(chunk)],
             touched_rels[static_cast<size_t>(chunk)]);
        loss += loss_partials[static_cast<size_t>(chunk)];
        // Free the folded partials eagerly.
        d_partials[static_cast<size_t>(chunk)] = Tensor();
        rel_partials[static_cast<size_t>(chunk)] = Tensor();
      });
  return static_cast<float>(loss * inv_b);
}

float Decoder::LossAndGrad(const Tensor& reprs, const std::vector<int64_t>& src_rows,
                           const std::vector<int64_t>& dst_rows,
                           const std::vector<int32_t>& rels,
                           const std::vector<int64_t>& neg_rows, Tensor* d_reprs) {
  MG_CHECK(d_reprs != nullptr);
  MG_CHECK(d_reprs->rows() == reprs.rows() && d_reprs->cols() == reprs.cols());
  MG_CHECK(src_rows.size() == dst_rows.size() && src_rows.size() == rels.size());
  const float dst_loss = SideLossAndGrad(reprs, src_rows, dst_rows, rels, neg_rows,
                                         /*corrupt_src=*/false, 0.5f, d_reprs);
  const float src_loss = SideLossAndGrad(reprs, src_rows, dst_rows, rels, neg_rows,
                                         /*corrupt_src=*/true, 0.5f, d_reprs);
  return dst_loss + src_loss;
}

void Decoder::ScoreCandidates(const Tensor& reprs, int64_t fixed_row, int32_t rel,
                              const std::vector<int64_t>& cand_rows, bool corrupt_src,
                              std::vector<float>* out) const {
  const float* fixed = reprs.RowPtr(fixed_row);
  const float* r = rel_.value.RowPtr(rel);
  out->resize(cand_rows.size());
  ForEachChunk(compute_, static_cast<int64_t>(cand_rows.size()), kComputeGrainCandidates,
               [&](int64_t, int64_t begin, int64_t end) {
                 for (int64_t j = begin; j < end; ++j) {
                   const float* c = reprs.RowPtr(cand_rows[static_cast<size_t>(j)]);
                   (*out)[static_cast<size_t>(j)] =
                       corrupt_src ? Score(c, r, fixed) : Score(fixed, r, c);
                 }
               });
}

float DistMultDecoder::Score(const float* s, const float* r, const float* o) const {
  float v = 0.0f;
  for (int64_t d = 0; d < dim_; ++d) {
    v += s[d] * r[d] * o[d];
  }
  return v;
}

void DistMultDecoder::ScoreBackward(const float* s, const float* r, const float* o,
                                    float coeff, float* ds, float* dr, float* do_) const {
  for (int64_t d = 0; d < dim_; ++d) {
    if (ds != nullptr) {
      ds[d] += coeff * r[d] * o[d];
    }
    if (dr != nullptr) {
      dr[d] += coeff * s[d] * o[d];
    }
    if (do_ != nullptr) {
      do_[d] += coeff * s[d] * r[d];
    }
  }
}

float TransEDecoder::Score(const float* s, const float* r, const float* o) const {
  float v = 0.0f;
  for (int64_t d = 0; d < dim_; ++d) {
    const float diff = s[d] + r[d] - o[d];
    v -= diff * diff;
  }
  return v;
}

void TransEDecoder::ScoreBackward(const float* s, const float* r, const float* o,
                                  float coeff, float* ds, float* dr, float* do_) const {
  for (int64_t d = 0; d < dim_; ++d) {
    const float g = -2.0f * (s[d] + r[d] - o[d]) * coeff;
    if (ds != nullptr) {
      ds[d] += g;
    }
    if (dr != nullptr) {
      dr[d] += g;
    }
    if (do_ != nullptr) {
      do_[d] -= g;
    }
  }
}

float ComplExDecoder::Score(const float* s, const float* r, const float* o) const {
  const int64_t half = dim_ / 2;
  const float* sr = s;
  const float* si = s + half;
  const float* rr = r;
  const float* ri = r + half;
  const float* onr = o;
  const float* oni = o + half;
  float v = 0.0f;
  for (int64_t d = 0; d < half; ++d) {
    v += (sr[d] * rr[d] - si[d] * ri[d]) * onr[d] + (sr[d] * ri[d] + si[d] * rr[d]) * oni[d];
  }
  return v;
}

void ComplExDecoder::ScoreBackward(const float* s, const float* r, const float* o,
                                   float coeff, float* ds, float* dr, float* do_) const {
  const int64_t half = dim_ / 2;
  for (int64_t d = 0; d < half; ++d) {
    const float sr = s[d], si = s[d + half];
    const float rr = r[d], ri = r[d + half];
    const float onr = o[d], oni = o[d + half];
    if (ds != nullptr) {
      ds[d] += coeff * (rr * onr + ri * oni);
      ds[d + half] += coeff * (rr * oni - ri * onr);
    }
    if (dr != nullptr) {
      dr[d] += coeff * (sr * onr + si * oni);
      dr[d + half] += coeff * (sr * oni - si * onr);
    }
    if (do_ != nullptr) {
      do_[d] += coeff * (sr * rr - si * ri);
      do_[d + half] += coeff * (sr * ri + si * rr);
    }
  }
}

std::unique_ptr<Decoder> MakeDecoder(const std::string& name, int32_t num_relations,
                                     int64_t dim, Rng& rng) {
  if (name == "distmult") {
    return std::make_unique<DistMultDecoder>(num_relations, dim, rng);
  }
  if (name == "transe") {
    return std::make_unique<TransEDecoder>(num_relations, dim, rng);
  }
  if (name == "complex") {
    return std::make_unique<ComplExDecoder>(num_relations, dim, rng);
  }
  MG_CHECK_MSG(false, "unknown decoder");
  return nullptr;
}

}  // namespace mariusgnn
