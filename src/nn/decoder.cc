#include "src/nn/decoder.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace mariusgnn {

float Decoder::SideLossAndGrad(const Tensor& reprs, const std::vector<int64_t>& src_rows,
                               const std::vector<int64_t>& dst_rows,
                               const std::vector<int32_t>& rels,
                               const std::vector<int64_t>& neg_rows, bool corrupt_src,
                               float scale, Tensor* d_reprs) {
  const int64_t batch = static_cast<int64_t>(src_rows.size());
  const int64_t m = static_cast<int64_t>(neg_rows.size());
  MG_CHECK(batch > 0 && m > 0);
  const float inv_b = scale / static_cast<float>(batch);

  std::vector<float> logits(static_cast<size_t>(m) + 1);
  std::vector<float> probs(static_cast<size_t>(m) + 1);
  double loss = 0.0;
  for (int64_t i = 0; i < batch; ++i) {
    const float* s = reprs.RowPtr(src_rows[static_cast<size_t>(i)]);
    const float* o = reprs.RowPtr(dst_rows[static_cast<size_t>(i)]);
    const int32_t rel = rels[static_cast<size_t>(i)];
    const float* r = rel_.value.RowPtr(rel);

    logits[0] = Score(s, r, o);
    for (int64_t j = 0; j < m; ++j) {
      const float* n = reprs.RowPtr(neg_rows[static_cast<size_t>(j)]);
      logits[static_cast<size_t>(j) + 1] = corrupt_src ? Score(n, r, o) : Score(s, r, n);
    }

    // Softmax CE with the positive in class 0.
    float maxv = logits[0];
    for (float v : logits) {
      maxv = std::max(maxv, v);
    }
    double denom = 0.0;
    for (size_t j = 0; j < logits.size(); ++j) {
      probs[j] = std::exp(logits[j] - maxv);
      denom += probs[j];
    }
    const float inv_denom = static_cast<float>(1.0 / denom);
    for (auto& p : probs) {
      p *= inv_denom;
    }
    loss -= std::log(std::max(probs[0], 1e-12f));

    // dlogit_0 = (p0 - 1)/B, dlogit_j = p_j/B.
    float* ds = d_reprs->RowPtr(src_rows[static_cast<size_t>(i)]);
    float* do_ = d_reprs->RowPtr(dst_rows[static_cast<size_t>(i)]);
    float* dr = rel_.grad.RowPtr(rel);
    ScoreBackward(s, r, o, (probs[0] - 1.0f) * inv_b, ds, dr, do_);
    for (int64_t j = 0; j < m; ++j) {
      const int64_t nrow = neg_rows[static_cast<size_t>(j)];
      const float* n = reprs.RowPtr(nrow);
      float* dn = d_reprs->RowPtr(nrow);
      const float coeff = probs[static_cast<size_t>(j) + 1] * inv_b;
      if (coeff == 0.0f) {
        continue;
      }
      if (corrupt_src) {
        ScoreBackward(n, r, o, coeff, dn, dr, do_);
      } else {
        ScoreBackward(s, r, n, coeff, ds, dr, dn);
      }
    }
  }
  return static_cast<float>(loss * inv_b);
}

float Decoder::LossAndGrad(const Tensor& reprs, const std::vector<int64_t>& src_rows,
                           const std::vector<int64_t>& dst_rows,
                           const std::vector<int32_t>& rels,
                           const std::vector<int64_t>& neg_rows, Tensor* d_reprs) {
  MG_CHECK(d_reprs != nullptr);
  MG_CHECK(d_reprs->rows() == reprs.rows() && d_reprs->cols() == reprs.cols());
  MG_CHECK(src_rows.size() == dst_rows.size() && src_rows.size() == rels.size());
  const float dst_loss = SideLossAndGrad(reprs, src_rows, dst_rows, rels, neg_rows,
                                         /*corrupt_src=*/false, 0.5f, d_reprs);
  const float src_loss = SideLossAndGrad(reprs, src_rows, dst_rows, rels, neg_rows,
                                         /*corrupt_src=*/true, 0.5f, d_reprs);
  return dst_loss + src_loss;
}

void Decoder::ScoreCandidates(const Tensor& reprs, int64_t fixed_row, int32_t rel,
                              const std::vector<int64_t>& cand_rows, bool corrupt_src,
                              std::vector<float>* out) const {
  const float* fixed = reprs.RowPtr(fixed_row);
  const float* r = rel_.value.RowPtr(rel);
  out->resize(cand_rows.size());
  for (size_t j = 0; j < cand_rows.size(); ++j) {
    const float* c = reprs.RowPtr(cand_rows[j]);
    (*out)[j] = corrupt_src ? Score(c, r, fixed) : Score(fixed, r, c);
  }
}

float DistMultDecoder::Score(const float* s, const float* r, const float* o) const {
  float v = 0.0f;
  for (int64_t d = 0; d < dim_; ++d) {
    v += s[d] * r[d] * o[d];
  }
  return v;
}

void DistMultDecoder::ScoreBackward(const float* s, const float* r, const float* o,
                                    float coeff, float* ds, float* dr, float* do_) const {
  for (int64_t d = 0; d < dim_; ++d) {
    if (ds != nullptr) {
      ds[d] += coeff * r[d] * o[d];
    }
    if (dr != nullptr) {
      dr[d] += coeff * s[d] * o[d];
    }
    if (do_ != nullptr) {
      do_[d] += coeff * s[d] * r[d];
    }
  }
}

float TransEDecoder::Score(const float* s, const float* r, const float* o) const {
  float v = 0.0f;
  for (int64_t d = 0; d < dim_; ++d) {
    const float diff = s[d] + r[d] - o[d];
    v -= diff * diff;
  }
  return v;
}

void TransEDecoder::ScoreBackward(const float* s, const float* r, const float* o,
                                  float coeff, float* ds, float* dr, float* do_) const {
  for (int64_t d = 0; d < dim_; ++d) {
    const float g = -2.0f * (s[d] + r[d] - o[d]) * coeff;
    if (ds != nullptr) {
      ds[d] += g;
    }
    if (dr != nullptr) {
      dr[d] += g;
    }
    if (do_ != nullptr) {
      do_[d] -= g;
    }
  }
}

float ComplExDecoder::Score(const float* s, const float* r, const float* o) const {
  const int64_t half = dim_ / 2;
  const float* sr = s;
  const float* si = s + half;
  const float* rr = r;
  const float* ri = r + half;
  const float* onr = o;
  const float* oni = o + half;
  float v = 0.0f;
  for (int64_t d = 0; d < half; ++d) {
    v += (sr[d] * rr[d] - si[d] * ri[d]) * onr[d] + (sr[d] * ri[d] + si[d] * rr[d]) * oni[d];
  }
  return v;
}

void ComplExDecoder::ScoreBackward(const float* s, const float* r, const float* o,
                                   float coeff, float* ds, float* dr, float* do_) const {
  const int64_t half = dim_ / 2;
  for (int64_t d = 0; d < half; ++d) {
    const float sr = s[d], si = s[d + half];
    const float rr = r[d], ri = r[d + half];
    const float onr = o[d], oni = o[d + half];
    if (ds != nullptr) {
      ds[d] += coeff * (rr * onr + ri * oni);
      ds[d + half] += coeff * (rr * oni - ri * onr);
    }
    if (dr != nullptr) {
      dr[d] += coeff * (sr * onr + si * oni);
      dr[d + half] += coeff * (sr * oni - si * onr);
    }
    if (do_ != nullptr) {
      do_[d] += coeff * (sr * rr - si * ri);
      do_[d + half] += coeff * (sr * ri + si * rr);
    }
  }
}

std::unique_ptr<Decoder> MakeDecoder(const std::string& name, int32_t num_relations,
                                     int64_t dim, Rng& rng) {
  if (name == "distmult") {
    return std::make_unique<DistMultDecoder>(num_relations, dim, rng);
  }
  if (name == "transe") {
    return std::make_unique<TransEDecoder>(num_relations, dim, rng);
  }
  if (name == "complex") {
    return std::make_unique<ComplExDecoder>(num_relations, dim, rng);
  }
  MG_CHECK_MSG(false, "unknown decoder");
  return nullptr;
}

}  // namespace mariusgnn
