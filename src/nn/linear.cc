#include "src/nn/linear.h"

#include "src/tensor/ops.h"

namespace mariusgnn {

Tensor LinearLayer::Forward(const Tensor& input) {
  saved_input_ = input;
  Tensor out = Matmul(input, w_.value);
  AddBiasRows(out, bias_.value);
  return out;
}

Tensor LinearLayer::Backward(const Tensor& grad_out) {
  AddInPlace(w_.grad, MatmulTransA(saved_input_, grad_out));
  AddInPlace(bias_.grad, SumRows(grad_out));
  return MatmulTransB(grad_out, w_.value);
}

}  // namespace mariusgnn
