#include "src/nn/linear.h"

#include "src/tensor/ops.h"

namespace mariusgnn {

Tensor LinearLayer::Forward(const Tensor& input) {
  saved_input_ = input;
  return InferForward(input, compute_);
}

Tensor LinearLayer::InferForward(const Tensor& input,
                                 const ComputeContext* compute) const {
  Tensor out = Matmul(input, w_.value, compute);
  AddBiasRows(out, bias_.value, compute);
  return out;
}

Tensor LinearLayer::Backward(const Tensor& grad_out) {
  AddInPlace(w_.grad, MatmulTransA(saved_input_, grad_out, compute_), compute_);
  AddInPlace(bias_.grad, SumRows(grad_out, compute_), compute_);
  return MatmulTransB(grad_out, w_.value, compute_);
}

}  // namespace mariusgnn
