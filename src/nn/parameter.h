// Learnable parameter: value, gradient accumulator, and optimizer state.
#ifndef SRC_NN_PARAMETER_H_
#define SRC_NN_PARAMETER_H_

#include "src/tensor/tensor.h"

namespace mariusgnn {

struct Parameter {
  Tensor value;
  Tensor grad;
  // Per-element optimizer state (Adagrad accumulator); lazily sized by the optimizer.
  Tensor state;

  Parameter() = default;
  explicit Parameter(Tensor v) : value(std::move(v)), grad(value.rows(), value.cols()) {}

  void ZeroGrad() { grad.Zero(); }
};

}  // namespace mariusgnn

#endif  // SRC_NN_PARAMETER_H_
