// Fully-connected layer used as the node-classification head (Section 2: "to perform
// node classification, h^k_v can be fed into a fully-connected and softmax layer").
#ifndef SRC_NN_LINEAR_H_
#define SRC_NN_LINEAR_H_

#include <vector>

#include "src/nn/parameter.h"
#include "src/tensor/tensor.h"
#include "src/util/compute.h"
#include "src/util/rng.h"

namespace mariusgnn {

class LinearLayer {
 public:
  LinearLayer(int64_t in_dim, int64_t out_dim, Rng& rng)
      : w_(Tensor::GlorotUniform(in_dim, out_dim, rng)), bias_(Tensor(1, out_dim)) {}

  // Stage-3 parallel-compute handle (null = serial; results identical either way).
  void set_compute(const ComputeContext* compute) { compute_ = compute; }

  Tensor Forward(const Tensor& input);

  // Inference-only forward: same math as Forward (bitwise) but saves no backward
  // state, so a const layer shared by concurrent readers stays immutable.
  Tensor InferForward(const Tensor& input, const ComputeContext* compute) const;

  // Returns d loss / d input; accumulates parameter gradients.
  Tensor Backward(const Tensor& grad_out);

  std::vector<Parameter*> Parameters() { return {&w_, &bias_}; }

  int64_t in_dim() const { return w_.value.rows(); }
  int64_t out_dim() const { return w_.value.cols(); }

 private:
  Parameter w_;
  Parameter bias_;
  Tensor saved_input_;
  const ComputeContext* compute_ = nullptr;
};

}  // namespace mariusgnn

#endif  // SRC_NN_LINEAR_H_
