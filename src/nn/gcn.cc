#include "src/nn/gcn.h"

#include "src/tensor/ops.h"
#include "src/util/check.h"

namespace mariusgnn {

namespace {

struct GcnContext : public LayerContext {
  std::vector<int64_t> self_rows;
  std::vector<int64_t> nbr_rows;
  std::vector<int64_t> seg_offsets;
  int64_t num_inputs = 0;
  Tensor agg;  // closed-neighborhood mean (num_outputs x in_dim)
  Tensor out;
};

}  // namespace

GcnLayer::GcnLayer(int64_t in_dim, int64_t out_dim, Activation act, Rng& rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      act_(act),
      w_(Tensor::GlorotUniform(in_dim, out_dim, rng)),
      bias_(Tensor(1, out_dim)) {}

Tensor GcnLayer::Forward(const LayerView& view, std::unique_ptr<LayerContext>* ctx) {
  MG_CHECK(view.h != nullptr && view.h->cols() == in_dim_);
  auto c = std::make_unique<GcnContext>();
  c->self_rows = view.self_rows;
  c->nbr_rows = view.nbr_rows;
  c->seg_offsets = view.seg_offsets;
  c->num_inputs = view.num_inputs();

  Tensor self_in = IndexSelect(*view.h, view.self_rows);
  Tensor nbr_in = IndexSelect(*view.h, view.nbr_rows);
  Tensor agg = SegmentSum(nbr_in, view.seg_offsets);
  AddInPlace(agg, self_in);
  for (int64_t s = 0; s < agg.rows(); ++s) {
    const float inv =
        1.0f / static_cast<float>(1 + view.seg_offsets[static_cast<size_t>(s) + 1] -
                                  view.seg_offsets[static_cast<size_t>(s)]);
    float* row = agg.RowPtr(s);
    for (int64_t d = 0; d < in_dim_; ++d) {
      row[d] *= inv;
    }
  }
  c->agg = agg;

  Tensor pre = Matmul(agg, w_.value);
  AddBiasRows(pre, bias_.value);
  c->out = ApplyActivation(act_, pre);
  Tensor out = c->out;
  if (ctx != nullptr) {
    *ctx = std::move(c);
  }
  return out;
}

Tensor GcnLayer::Backward(LayerContext& ctx, const Tensor& grad_out) {
  auto& c = static_cast<GcnContext&>(ctx);
  Tensor dpre = ActivationBackward(act_, c.out, grad_out);

  AddInPlace(w_.grad, MatmulTransA(c.agg, dpre));
  AddInPlace(bias_.grad, SumRows(dpre));

  Tensor dagg = MatmulTransB(dpre, w_.value);  // num_outputs x in_dim
  // Undo the closed-neighborhood mean scaling per segment.
  for (int64_t s = 0; s < dagg.rows(); ++s) {
    const float inv =
        1.0f / static_cast<float>(1 + c.seg_offsets[static_cast<size_t>(s) + 1] -
                                  c.seg_offsets[static_cast<size_t>(s)]);
    float* row = dagg.RowPtr(s);
    for (int64_t d = 0; d < in_dim_; ++d) {
      row[d] *= inv;
    }
  }
  Tensor dnbr_in = SegmentSumBackward(dagg, c.seg_offsets);

  Tensor dh(c.num_inputs, in_dim_);
  ScatterAddRows(dh, c.self_rows, dagg);
  ScatterAddRows(dh, c.nbr_rows, dnbr_in);
  return dh;
}

}  // namespace mariusgnn
