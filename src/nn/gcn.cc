#include "src/nn/gcn.h"

#include "src/tensor/ops.h"
#include "src/util/check.h"

namespace mariusgnn {

namespace {

struct GcnContext : public LayerContext {
  std::vector<int64_t> self_rows;
  std::vector<int64_t> nbr_rows;
  std::vector<int64_t> seg_offsets;
  int64_t num_inputs = 0;
  Tensor agg;  // closed-neighborhood mean (num_outputs x in_dim)
  Tensor out;
};

// Scales row s of t by 1 / (1 + |segment s|), chunked over segments (each chunk
// owns a disjoint row range, so any pool size produces the same bits).
void ScaleByClosedNeighborhood(Tensor& t, const std::vector<int64_t>& seg_offsets,
                               const ComputeContext* cc) {
  ForEachChunk(cc, t.rows(), kComputeGrainRows,
               [&](int64_t, int64_t seg_begin, int64_t seg_end) {
                 for (int64_t s = seg_begin; s < seg_end; ++s) {
                   const float inv =
                       1.0f / static_cast<float>(1 + seg_offsets[static_cast<size_t>(s) + 1] -
                                                 seg_offsets[static_cast<size_t>(s)]);
                   float* row = t.RowPtr(s);
                   for (int64_t d = 0; d < t.cols(); ++d) {
                     row[d] *= inv;
                   }
                 }
               });
}

}  // namespace

GcnLayer::GcnLayer(int64_t in_dim, int64_t out_dim, Activation act, Rng& rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      act_(act),
      w_(Tensor::GlorotUniform(in_dim, out_dim, rng)),
      bias_(Tensor(1, out_dim)) {}

Tensor GcnLayer::Forward(const LayerView& view, std::unique_ptr<LayerContext>* ctx) const {
  MG_CHECK(view.h != nullptr && view.h->cols() == in_dim_);
  const ComputeContext* cc = view.compute;
  auto c = std::make_unique<GcnContext>();
  c->compute = cc;
  c->self_rows = view.self_rows;
  c->nbr_rows = view.nbr_rows;
  c->seg_offsets = view.seg_offsets;
  c->num_inputs = view.num_inputs();

  Tensor self_in = IndexSelect(*view.h, view.self_rows, cc);
  Tensor nbr_in = IndexSelect(*view.h, view.nbr_rows, cc);
  Tensor agg = SegmentSum(nbr_in, view.seg_offsets, cc);
  AddInPlace(agg, self_in, cc);
  ScaleByClosedNeighborhood(agg, view.seg_offsets, cc);
  c->agg = agg;

  Tensor pre = Matmul(agg, w_.value, cc);
  AddBiasRows(pre, bias_.value, cc);
  c->out = ApplyActivation(act_, pre, cc);
  Tensor out = c->out;
  if (ctx != nullptr) {
    *ctx = std::move(c);
  }
  return out;
}

Tensor GcnLayer::Backward(LayerContext& ctx, const Tensor& grad_out) {
  auto& c = static_cast<GcnContext&>(ctx);
  const ComputeContext* cc = c.compute;
  Tensor dpre = ActivationBackward(act_, c.out, grad_out, cc);

  AddInPlace(w_.grad, MatmulTransA(c.agg, dpre, cc), cc);
  AddInPlace(bias_.grad, SumRows(dpre, cc), cc);

  Tensor dagg = MatmulTransB(dpre, w_.value, cc);  // num_outputs x in_dim
  // Undo the closed-neighborhood mean scaling per segment.
  ScaleByClosedNeighborhood(dagg, c.seg_offsets, cc);
  Tensor dnbr_in = SegmentSumBackward(dagg, c.seg_offsets, cc);

  Tensor dh(c.num_inputs, in_dim_);
  ScatterAddRows(dh, c.self_rows, dagg, cc);
  ScatterAddRows(dh, c.nbr_rows, dnbr_in, cc);
  return dh;
}

}  // namespace mariusgnn
