// In-memory graph representation: an edge list with optional relation types, node
// features, and node labels.
//
// MariusGNN represents a graph as an edge list (Section 3). Knowledge graphs carry a
// relation id per edge (used by DistMult/TransE/ComplEx decoders); node-classification
// graphs carry fixed node features and class labels. Train/valid/test splits live here
// too: node-id splits for node classification, edge-index splits for link prediction.
#ifndef SRC_GRAPH_GRAPH_H_
#define SRC_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/tensor/tensor.h"

namespace mariusgnn {

struct Edge {
  int64_t src = 0;
  int64_t dst = 0;
  int32_t rel = 0;

  bool operator==(const Edge& o) const {
    return src == o.src && dst == o.dst && rel == o.rel;
  }
};

class Graph {
 public:
  Graph() = default;
  Graph(int64_t num_nodes, std::vector<Edge> edges, int32_t num_relations = 1)
      : num_nodes_(num_nodes), num_relations_(num_relations), edges_(std::move(edges)) {}

  int64_t num_nodes() const { return num_nodes_; }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }
  int32_t num_relations() const { return num_relations_; }

  const std::vector<Edge>& edges() const { return edges_; }
  std::vector<Edge>& mutable_edges() { return edges_; }
  const Edge& edge(int64_t i) const { return edges_[static_cast<size_t>(i)]; }

  // Fixed node features (node classification); empty when absent.
  const Tensor& features() const { return features_; }
  void set_features(Tensor features) { features_ = std::move(features); }
  bool has_features() const { return !features_.empty(); }

  // Class labels per node; -1 for unlabeled. Empty when absent.
  const std::vector<int64_t>& labels() const { return labels_; }
  void set_labels(std::vector<int64_t> labels) { labels_ = std::move(labels); }
  int64_t num_classes() const { return num_classes_; }
  void set_num_classes(int64_t n) { num_classes_ = n; }

  // Node-id splits (node classification).
  const std::vector<int64_t>& train_nodes() const { return train_nodes_; }
  const std::vector<int64_t>& valid_nodes() const { return valid_nodes_; }
  const std::vector<int64_t>& test_nodes() const { return test_nodes_; }
  void set_node_splits(std::vector<int64_t> train, std::vector<int64_t> valid,
                       std::vector<int64_t> test) {
    train_nodes_ = std::move(train);
    valid_nodes_ = std::move(valid);
    test_nodes_ = std::move(test);
  }

  // Edge-index splits (link prediction). Training edges default to all edges.
  const std::vector<int64_t>& train_edges() const { return train_edges_; }
  const std::vector<int64_t>& valid_edges() const { return valid_edges_; }
  const std::vector<int64_t>& test_edges() const { return test_edges_; }
  void set_edge_splits(std::vector<int64_t> train, std::vector<int64_t> valid,
                       std::vector<int64_t> test) {
    train_edges_ = std::move(train);
    valid_edges_ = std::move(valid);
    test_edges_ = std::move(test);
  }

  // Out-degree / in-degree of every node (computed on demand, cached).
  const std::vector<int64_t>& OutDegrees() const;
  const std::vector<int64_t>& InDegrees() const;

  // Total degree (in + out) per node; used by the Edge Permutation Bias metric.
  std::vector<int64_t> TotalDegrees() const;

 private:
  int64_t num_nodes_ = 0;
  int32_t num_relations_ = 1;
  int64_t num_classes_ = 0;
  std::vector<Edge> edges_;
  Tensor features_;
  std::vector<int64_t> labels_;
  std::vector<int64_t> train_nodes_, valid_nodes_, test_nodes_;
  std::vector<int64_t> train_edges_, valid_edges_, test_edges_;
  mutable std::vector<int64_t> out_degrees_, in_degrees_;
};

}  // namespace mariusgnn

#endif  // SRC_GRAPH_GRAPH_H_
