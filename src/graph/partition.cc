#include "src/graph/partition.h"

#include <algorithm>

#include "src/util/check.h"

namespace mariusgnn {

Partitioning::Partitioning(const Graph& graph, int32_t num_partitions,
                           PartitionAssignment mode, Rng& rng)
    : p_(num_partitions) {
  MG_CHECK(num_partitions > 0);
  const int64_t n = graph.num_nodes();
  MG_CHECK(n >= num_partitions);

  // Build the node order: either a full random permutation, or training nodes first
  // followed by shuffled non-training nodes.
  std::vector<int64_t> order;
  order.reserve(static_cast<size_t>(n));
  if (mode == PartitionAssignment::kTrainingNodesFirst) {
    std::vector<char> is_train(static_cast<size_t>(n), 0);
    for (int64_t v : graph.train_nodes()) {
      is_train[static_cast<size_t>(v)] = 1;
    }
    for (int64_t v : graph.train_nodes()) {
      order.push_back(v);
    }
    std::vector<int64_t> rest;
    rest.reserve(static_cast<size_t>(n) - order.size());
    for (int64_t v = 0; v < n; ++v) {
      if (is_train[static_cast<size_t>(v)] == 0) {
        rest.push_back(v);
      }
    }
    rng.Shuffle(rest);
    order.insert(order.end(), rest.begin(), rest.end());
  } else {
    for (int64_t v = 0; v < n; ++v) {
      order.push_back(v);
    }
    rng.Shuffle(order);
  }

  // Near-equal contiguous chunks of the order become partitions.
  part_of_node_.assign(static_cast<size_t>(n), 0);
  local_index_.assign(static_cast<size_t>(n), 0);
  nodes_per_partition_.assign(static_cast<size_t>(p_), {});
  const int64_t base = n / p_;
  const int64_t extra = n % p_;
  int64_t cursor = 0;
  for (int32_t part = 0; part < p_; ++part) {
    const int64_t size = base + (part < extra ? 1 : 0);
    auto& nodes = nodes_per_partition_[static_cast<size_t>(part)];
    nodes.reserve(static_cast<size_t>(size));
    for (int64_t k = 0; k < size; ++k) {
      const int64_t v = order[static_cast<size_t>(cursor + k)];
      part_of_node_[static_cast<size_t>(v)] = part;
      local_index_[static_cast<size_t>(v)] = k;
      nodes.push_back(v);
    }
    cursor += size;
  }

  if (mode == PartitionAssignment::kTrainingNodesFirst) {
    const int64_t train_count = static_cast<int64_t>(graph.train_nodes().size());
    int64_t covered = 0;
    int32_t parts = 0;
    while (covered < train_count && parts < p_) {
      covered += PartitionSize(parts);
      ++parts;
    }
    num_training_partitions_ = parts;
  }

  // Group edges into buckets.
  buckets_.assign(static_cast<size_t>(p_) * p_, {});
  const auto& edges = graph.edges();
  for (int64_t i = 0; i < graph.num_edges(); ++i) {
    const Edge& e = edges[static_cast<size_t>(i)];
    const int32_t bi = part_of_node_[static_cast<size_t>(e.src)];
    const int32_t bj = part_of_node_[static_cast<size_t>(e.dst)];
    buckets_[static_cast<size_t>(bi) * p_ + bj].push_back(i);
  }
  total_edges_ = graph.num_edges();
}

}  // namespace mariusgnn
