#include "src/graph/graph.h"

namespace mariusgnn {

const std::vector<int64_t>& Graph::OutDegrees() const {
  if (out_degrees_.empty() && num_nodes_ > 0) {
    out_degrees_.assign(static_cast<size_t>(num_nodes_), 0);
    for (const Edge& e : edges_) {
      ++out_degrees_[static_cast<size_t>(e.src)];
    }
  }
  return out_degrees_;
}

const std::vector<int64_t>& Graph::InDegrees() const {
  if (in_degrees_.empty() && num_nodes_ > 0) {
    in_degrees_.assign(static_cast<size_t>(num_nodes_), 0);
    for (const Edge& e : edges_) {
      ++in_degrees_[static_cast<size_t>(e.dst)];
    }
  }
  return in_degrees_;
}

std::vector<int64_t> Graph::TotalDegrees() const {
  std::vector<int64_t> total(static_cast<size_t>(num_nodes_), 0);
  for (const Edge& e : edges_) {
    ++total[static_cast<size_t>(e.src)];
    ++total[static_cast<size_t>(e.dst)];
  }
  return total;
}

}  // namespace mariusgnn
