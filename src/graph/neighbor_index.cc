#include "src/graph/neighbor_index.h"

#include <algorithm>

#include "src/util/check.h"

namespace mariusgnn {

NeighborIndex::NeighborIndex(int64_t num_nodes, const std::vector<Edge>& edges)
    : num_nodes_(num_nodes) {
  const size_t n = static_cast<size_t>(num_nodes);
  out_offsets_.assign(n + 1, 0);
  in_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges) {
    MG_DCHECK(e.src >= 0 && e.src < num_nodes && e.dst >= 0 && e.dst < num_nodes);
    ++out_offsets_[static_cast<size_t>(e.src) + 1];
    ++in_offsets_[static_cast<size_t>(e.dst) + 1];
  }
  for (size_t i = 1; i <= n; ++i) {
    out_offsets_[i] += out_offsets_[i - 1];
    in_offsets_[i] += in_offsets_[i - 1];
  }
  by_src_.resize(edges.size());
  by_dst_.resize(edges.size());
  std::vector<int64_t> out_cursor(out_offsets_.begin(), out_offsets_.end() - 1);
  std::vector<int64_t> in_cursor(in_offsets_.begin(), in_offsets_.end() - 1);
  for (const Edge& e : edges) {
    by_src_[static_cast<size_t>(out_cursor[static_cast<size_t>(e.src)]++)] =
        Neighbor{e.dst, e.rel};
    by_dst_[static_cast<size_t>(in_cursor[static_cast<size_t>(e.dst)]++)] =
        Neighbor{e.src, e.rel};
  }
}

int64_t NeighborIndex::SampleDirection(int64_t node, int64_t fanout, bool outgoing,
                                       Rng& rng, std::vector<Neighbor>& out) const {
  const std::vector<Neighbor>& pool = outgoing ? by_src_ : by_dst_;
  const std::vector<int64_t>& offsets = outgoing ? out_offsets_ : in_offsets_;
  const int64_t begin = offsets[static_cast<size_t>(node)];
  const int64_t end = offsets[static_cast<size_t>(node) + 1];
  const int64_t degree = end - begin;
  if (degree == 0) {
    return 0;
  }
  if (fanout < 0 || degree <= fanout) {
    out.insert(out.end(), pool.begin() + begin, pool.begin() + end);
    return degree;
  }
  std::vector<int64_t> picks = rng.SampleWithoutReplacement(degree, fanout);
  for (int64_t p : picks) {
    out.push_back(pool[static_cast<size_t>(begin + p)]);
  }
  return fanout;
}

int64_t NeighborIndex::SampleOneHop(int64_t node, int64_t fanout, EdgeDirection dir,
                                    Rng& rng, std::vector<Neighbor>& out) const {
  MG_DCHECK(node >= 0 && node < num_nodes_);
  int64_t count = 0;
  if (dir == EdgeDirection::kOutgoing || dir == EdgeDirection::kBoth) {
    count += SampleDirection(node, fanout, /*outgoing=*/true, rng, out);
  }
  if (dir == EdgeDirection::kIncoming || dir == EdgeDirection::kBoth) {
    count += SampleDirection(node, fanout, /*outgoing=*/false, rng, out);
  }
  return count;
}

std::vector<Neighbor> NeighborIndex::AllNeighbors(int64_t node, EdgeDirection dir) const {
  std::vector<Neighbor> out;
  Rng unused(0);
  SampleOneHop(node, /*fanout=*/-1, dir, unused, out);
  return out;
}

}  // namespace mariusgnn
