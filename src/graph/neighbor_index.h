// The in-memory one-hop sampling structure from Section 4.1 of the paper:
//
//   "We store two sorted versions of the in-memory edge list containing all edges
//    between the node partitions currently in memory: 1) sorted in ascending order of
//    source node ID, and 2) sorted in ascending order of destination node ID. We create
//    an array that, for each node ID in memory, stores the offsets corresponding to its
//    outgoing and incoming edges in each of the two edge lists."
//
// NeighborIndex is rebuilt whenever the partition buffer's contents change (each S_i)
// and supports parallel one-hop sampling of incoming and/or outgoing neighbors.
#ifndef SRC_GRAPH_NEIGHBOR_INDEX_H_
#define SRC_GRAPH_NEIGHBOR_INDEX_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace mariusgnn {

// A sampled neighbor: the neighboring node plus the relation of the connecting edge.
struct Neighbor {
  int64_t node = 0;
  int32_t rel = 0;
};

enum class EdgeDirection { kOutgoing, kIncoming, kBoth };

class NeighborIndex {
 public:
  NeighborIndex() = default;

  // Builds the dual-sorted index over `edges` for node ids in [0, num_nodes). Counting
  // sort: O(|E| + |V|).
  NeighborIndex(int64_t num_nodes, const std::vector<Edge>& edges);

  // Convenience: index over a whole graph.
  explicit NeighborIndex(const Graph& graph)
      : NeighborIndex(graph.num_nodes(), graph.edges()) {}

  int64_t num_nodes() const { return num_nodes_; }
  int64_t num_edges() const { return static_cast<int64_t>(by_src_.size()); }

  int64_t OutDegree(int64_t node) const {
    return out_offsets_[static_cast<size_t>(node) + 1] - out_offsets_[static_cast<size_t>(node)];
  }
  int64_t InDegree(int64_t node) const {
    return in_offsets_[static_cast<size_t>(node) + 1] - in_offsets_[static_cast<size_t>(node)];
  }

  // Appends up to `fanout` one-hop neighbors of `node` in the given direction to `out`
  // and returns how many were appended. fanout < 0 means "all neighbors". When kBoth,
  // up to `fanout` neighbors are drawn from each direction. Sampling is without
  // replacement within a direction.
  int64_t SampleOneHop(int64_t node, int64_t fanout, EdgeDirection dir, Rng& rng,
                       std::vector<Neighbor>& out) const;

  // Full (unsampled) neighbor lists, for tests and full-neighborhood aggregation.
  std::vector<Neighbor> AllNeighbors(int64_t node, EdgeDirection dir) const;

 private:
  int64_t SampleDirection(int64_t node, int64_t fanout, bool outgoing, Rng& rng,
                          std::vector<Neighbor>& out) const;

  int64_t num_nodes_ = 0;
  // by_src_[out_offsets_[v] .. out_offsets_[v+1]) are v's outgoing neighbors;
  // by_dst_[in_offsets_[v] .. in_offsets_[v+1]) are v's incoming neighbors.
  std::vector<Neighbor> by_src_;
  std::vector<Neighbor> by_dst_;
  std::vector<int64_t> out_offsets_;
  std::vector<int64_t> in_offsets_;
};

}  // namespace mariusgnn

#endif  // SRC_GRAPH_NEIGHBOR_INDEX_H_
