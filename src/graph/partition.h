// Physical node partitions and edge buckets (Section 3 of the paper).
//
// The node-id space is split into p physical partitions. Edge bucket (i, j) is the set
// of edges whose source lies in partition i and destination in partition j; edges in a
// bucket are stored contiguously so the storage layer can read a bucket with one
// sequential IO.
//
// Two assignment modes:
//  - kRandom: nodes are assigned to partitions by a random permutation (link prediction
//    and the COMET policy).
//  - kTrainingNodesFirst: labeled training nodes are packed sequentially into the first
//    partitions; the remainder is random (the node-classification caching policy of
//    Section 5.2).
#ifndef SRC_GRAPH_PARTITION_H_
#define SRC_GRAPH_PARTITION_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace mariusgnn {

enum class PartitionAssignment { kRandom, kTrainingNodesFirst };

class Partitioning {
 public:
  Partitioning() = default;

  // Splits `graph`'s nodes into `num_partitions` near-equal partitions and groups edge
  // indices into buckets. For kTrainingNodesFirst, graph.train_nodes() are packed first.
  Partitioning(const Graph& graph, int32_t num_partitions, PartitionAssignment mode,
               Rng& rng);

  int32_t num_partitions() const { return p_; }

  int32_t PartitionOf(int64_t node) const {
    return part_of_node_[static_cast<size_t>(node)];
  }

  // Index of `node` within its partition's node list (embedding-file row within the
  // partition's region).
  int64_t LocalIndexOf(int64_t node) const {
    return local_index_[static_cast<size_t>(node)];
  }

  const std::vector<int64_t>& NodesIn(int32_t partition) const {
    return nodes_per_partition_[static_cast<size_t>(partition)];
  }

  int64_t PartitionSize(int32_t partition) const {
    return static_cast<int64_t>(nodes_per_partition_[static_cast<size_t>(partition)].size());
  }

  // Number of training nodes packed at the front (kTrainingNodesFirst); the count of
  // partitions fully/partially occupied by training nodes.
  int32_t num_training_partitions() const { return num_training_partitions_; }

  // Edge indices (into graph.edges()) of bucket (i, j).
  const std::vector<int64_t>& Bucket(int32_t i, int32_t j) const {
    return buckets_[static_cast<size_t>(i) * p_ + j];
  }

  int64_t BucketSize(int32_t i, int32_t j) const {
    return static_cast<int64_t>(Bucket(i, j).size());
  }

  // Total number of edges across all buckets (== graph.num_edges()).
  int64_t TotalEdges() const { return total_edges_; }

 private:
  int32_t p_ = 0;
  int32_t num_training_partitions_ = 0;
  int64_t total_edges_ = 0;
  std::vector<int32_t> part_of_node_;
  std::vector<int64_t> local_index_;
  std::vector<std::vector<int64_t>> nodes_per_partition_;
  std::vector<std::vector<int64_t>> buckets_;  // p_ * p_ buckets, row-major.
};

}  // namespace mariusgnn

#endif  // SRC_GRAPH_PARTITION_H_
