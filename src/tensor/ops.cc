#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>

namespace mariusgnn {

Tensor Matmul(const Tensor& a, const Tensor& b) {
  MG_CHECK(a.cols() == b.rows());
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  Tensor c(m, n);
  // ikj loop order keeps the inner loop contiguous over b and c.
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.RowPtr(i);
    float* crow = c.RowPtr(i);
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) {
        continue;
      }
      const float* brow = b.RowPtr(kk);
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
  return c;
}

Tensor MatmulTransA(const Tensor& a, const Tensor& b) {
  MG_CHECK(a.rows() == b.rows());
  const int64_t k = a.rows(), m = a.cols(), n = b.cols();
  Tensor c(m, n);
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = a.RowPtr(kk);
    const float* brow = b.RowPtr(kk);
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) {
        continue;
      }
      float* crow = c.RowPtr(i);
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
  return c;
}

Tensor MatmulTransB(const Tensor& a, const Tensor& b) {
  MG_CHECK(a.cols() == b.cols());
  const int64_t m = a.rows(), k = a.cols(), n = b.rows();
  Tensor c(m, n);
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.RowPtr(i);
    float* crow = c.RowPtr(i);
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b.RowPtr(j);
      float s = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        s += arow[kk] * brow[kk];
      }
      crow[j] = s;
    }
  }
  return c;
}

void AddInPlace(Tensor& out, const Tensor& in) {
  MG_CHECK(out.rows() == in.rows() && out.cols() == in.cols());
  for (int64_t i = 0; i < out.size(); ++i) {
    out.data()[i] += in.data()[i];
  }
}

void Axpy(Tensor& out, const Tensor& in, float alpha) {
  MG_CHECK(out.rows() == in.rows() && out.cols() == in.cols());
  for (int64_t i = 0; i < out.size(); ++i) {
    out.data()[i] += alpha * in.data()[i];
  }
}

Tensor Hadamard(const Tensor& a, const Tensor& b) {
  MG_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Tensor c(a.rows(), a.cols());
  for (int64_t i = 0; i < a.size(); ++i) {
    c.data()[i] = a.data()[i] * b.data()[i];
  }
  return c;
}

void Scale(Tensor& t, float alpha) {
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] *= alpha;
  }
}

void AddBiasRows(Tensor& t, const Tensor& bias) {
  MG_CHECK(bias.rows() == 1 && bias.cols() == t.cols());
  for (int64_t r = 0; r < t.rows(); ++r) {
    float* row = t.RowPtr(r);
    for (int64_t c = 0; c < t.cols(); ++c) {
      row[c] += bias.data()[c];
    }
  }
}

Tensor SumRows(const Tensor& t) {
  Tensor out(1, t.cols());
  for (int64_t r = 0; r < t.rows(); ++r) {
    const float* row = t.RowPtr(r);
    for (int64_t c = 0; c < t.cols(); ++c) {
      out.data()[c] += row[c];
    }
  }
  return out;
}

Tensor IndexSelect(const Tensor& t, const std::vector<int64_t>& indices) {
  Tensor out(static_cast<int64_t>(indices.size()), t.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    MG_DCHECK(indices[i] >= 0 && indices[i] < t.rows());
    std::copy(t.RowPtr(indices[i]), t.RowPtr(indices[i]) + t.cols(),
              out.RowPtr(static_cast<int64_t>(i)));
  }
  return out;
}

void ScatterAddRows(Tensor& dst, const std::vector<int64_t>& indices, const Tensor& src) {
  MG_CHECK(static_cast<int64_t>(indices.size()) == src.rows());
  MG_CHECK(dst.cols() == src.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    MG_DCHECK(indices[i] >= 0 && indices[i] < dst.rows());
    float* drow = dst.RowPtr(indices[i]);
    const float* srow = src.RowPtr(static_cast<int64_t>(i));
    for (int64_t c = 0; c < src.cols(); ++c) {
      drow[c] += srow[c];
    }
  }
}

namespace {

void CheckOffsets(const Tensor& src, const std::vector<int64_t>& offsets) {
  MG_CHECK(!offsets.empty());
  MG_CHECK(offsets.front() == 0);
  MG_CHECK(offsets.back() == src.rows());
}

}  // namespace

Tensor SegmentSum(const Tensor& src, const std::vector<int64_t>& offsets) {
  CheckOffsets(src, offsets);
  const int64_t segs = static_cast<int64_t>(offsets.size()) - 1;
  Tensor out(segs, src.cols());
  for (int64_t s = 0; s < segs; ++s) {
    float* orow = out.RowPtr(s);
    for (int64_t r = offsets[s]; r < offsets[s + 1]; ++r) {
      const float* srow = src.RowPtr(r);
      for (int64_t c = 0; c < src.cols(); ++c) {
        orow[c] += srow[c];
      }
    }
  }
  return out;
}

Tensor SegmentMean(const Tensor& src, const std::vector<int64_t>& offsets) {
  Tensor out = SegmentSum(src, offsets);
  for (int64_t s = 0; s < out.rows(); ++s) {
    const int64_t count = offsets[s + 1] - offsets[s];
    if (count > 1) {
      const float inv = 1.0f / static_cast<float>(count);
      float* orow = out.RowPtr(s);
      for (int64_t c = 0; c < out.cols(); ++c) {
        orow[c] *= inv;
      }
    }
  }
  return out;
}

Tensor SegmentSumBackward(const Tensor& grad_out, const std::vector<int64_t>& offsets) {
  MG_CHECK(grad_out.rows() == static_cast<int64_t>(offsets.size()) - 1);
  Tensor grad_in(offsets.back(), grad_out.cols());
  for (int64_t s = 0; s < grad_out.rows(); ++s) {
    const float* grow = grad_out.RowPtr(s);
    for (int64_t r = offsets[s]; r < offsets[s + 1]; ++r) {
      std::copy(grow, grow + grad_out.cols(), grad_in.RowPtr(r));
    }
  }
  return grad_in;
}

Tensor SegmentMeanBackward(const Tensor& grad_out, const std::vector<int64_t>& offsets) {
  Tensor grad_in = SegmentSumBackward(grad_out, offsets);
  for (int64_t s = 0; s < grad_out.rows(); ++s) {
    const int64_t count = offsets[s + 1] - offsets[s];
    if (count > 1) {
      const float inv = 1.0f / static_cast<float>(count);
      for (int64_t r = offsets[s]; r < offsets[s + 1]; ++r) {
        float* row = grad_in.RowPtr(r);
        for (int64_t c = 0; c < grad_in.cols(); ++c) {
          row[c] *= inv;
        }
      }
    }
  }
  return grad_in;
}

void SegmentSoftmaxInPlace(Tensor& scores, const std::vector<int64_t>& offsets) {
  MG_CHECK(scores.cols() == 1);
  CheckOffsets(scores, offsets);
  for (size_t s = 0; s + 1 < offsets.size(); ++s) {
    const int64_t begin = offsets[s], end = offsets[s + 1];
    if (begin == end) {
      continue;
    }
    float maxv = scores.data()[begin];
    for (int64_t r = begin + 1; r < end; ++r) {
      maxv = std::max(maxv, scores.data()[r]);
    }
    float sum = 0.0f;
    for (int64_t r = begin; r < end; ++r) {
      scores.data()[r] = std::exp(scores.data()[r] - maxv);
      sum += scores.data()[r];
    }
    const float inv = 1.0f / sum;
    for (int64_t r = begin; r < end; ++r) {
      scores.data()[r] *= inv;
    }
  }
}

Tensor SegmentSoftmaxBackward(const Tensor& probs, const Tensor& grad,
                              const std::vector<int64_t>& offsets) {
  MG_CHECK(probs.cols() == 1 && grad.cols() == 1 && probs.rows() == grad.rows());
  Tensor out(probs.rows(), 1);
  for (size_t s = 0; s + 1 < offsets.size(); ++s) {
    const int64_t begin = offsets[s], end = offsets[s + 1];
    float dot = 0.0f;
    for (int64_t r = begin; r < end; ++r) {
      dot += probs.data()[r] * grad.data()[r];
    }
    for (int64_t r = begin; r < end; ++r) {
      out.data()[r] = probs.data()[r] * (grad.data()[r] - dot);
    }
  }
  return out;
}

Tensor Relu(const Tensor& t) {
  Tensor out(t.rows(), t.cols());
  for (int64_t i = 0; i < t.size(); ++i) {
    out.data()[i] = t.data()[i] > 0.0f ? t.data()[i] : 0.0f;
  }
  return out;
}

Tensor ReluBackward(const Tensor& out, const Tensor& grad_out) {
  Tensor g(out.rows(), out.cols());
  for (int64_t i = 0; i < out.size(); ++i) {
    g.data()[i] = out.data()[i] > 0.0f ? grad_out.data()[i] : 0.0f;
  }
  return g;
}

Tensor LeakyRelu(const Tensor& t, float slope) {
  Tensor out(t.rows(), t.cols());
  for (int64_t i = 0; i < t.size(); ++i) {
    const float v = t.data()[i];
    out.data()[i] = v > 0.0f ? v : slope * v;
  }
  return out;
}

Tensor LeakyReluBackward(const Tensor& out, const Tensor& grad_out, float slope) {
  Tensor g(out.rows(), out.cols());
  for (int64_t i = 0; i < out.size(); ++i) {
    g.data()[i] = out.data()[i] > 0.0f ? grad_out.data()[i] : slope * grad_out.data()[i];
  }
  return g;
}

Tensor Tanh(const Tensor& t) {
  Tensor out(t.rows(), t.cols());
  for (int64_t i = 0; i < t.size(); ++i) {
    out.data()[i] = std::tanh(t.data()[i]);
  }
  return out;
}

Tensor TanhBackward(const Tensor& out, const Tensor& grad_out) {
  Tensor g(out.rows(), out.cols());
  for (int64_t i = 0; i < out.size(); ++i) {
    g.data()[i] = (1.0f - out.data()[i] * out.data()[i]) * grad_out.data()[i];
  }
  return g;
}

Tensor RowSoftmax(const Tensor& logits) {
  Tensor out(logits.rows(), logits.cols());
  for (int64_t r = 0; r < logits.rows(); ++r) {
    const float* in = logits.RowPtr(r);
    float* o = out.RowPtr(r);
    float maxv = in[0];
    for (int64_t c = 1; c < logits.cols(); ++c) {
      maxv = std::max(maxv, in[c]);
    }
    float sum = 0.0f;
    for (int64_t c = 0; c < logits.cols(); ++c) {
      o[c] = std::exp(in[c] - maxv);
      sum += o[c];
    }
    const float inv = 1.0f / sum;
    for (int64_t c = 0; c < logits.cols(); ++c) {
      o[c] *= inv;
    }
  }
  return out;
}

float SoftmaxCrossEntropy(const Tensor& logits, const std::vector<int64_t>& labels,
                          Tensor* dlogits) {
  MG_CHECK(logits.rows() == static_cast<int64_t>(labels.size()));
  MG_CHECK(logits.rows() > 0);
  Tensor probs = RowSoftmax(logits);
  const float inv_n = 1.0f / static_cast<float>(logits.rows());
  double loss = 0.0;
  for (int64_t r = 0; r < logits.rows(); ++r) {
    const int64_t y = labels[static_cast<size_t>(r)];
    MG_DCHECK(y >= 0 && y < logits.cols());
    loss -= std::log(std::max(probs(r, y), 1e-12f));
  }
  if (dlogits != nullptr) {
    *dlogits = probs;
    for (int64_t r = 0; r < logits.rows(); ++r) {
      (*dlogits)(r, labels[static_cast<size_t>(r)]) -= 1.0f;
    }
    Scale(*dlogits, inv_n);
  }
  return static_cast<float>(loss * inv_n);
}

void RowL2NormalizeInPlace(Tensor& t) {
  for (int64_t r = 0; r < t.rows(); ++r) {
    float* row = t.RowPtr(r);
    double s = 0.0;
    for (int64_t c = 0; c < t.cols(); ++c) {
      s += static_cast<double>(row[c]) * row[c];
    }
    if (s > 0.0) {
      const float inv = static_cast<float>(1.0 / std::sqrt(s));
      for (int64_t c = 0; c < t.cols(); ++c) {
        row[c] *= inv;
      }
    }
  }
}

}  // namespace mariusgnn
