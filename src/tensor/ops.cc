#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "src/util/slot_remap.h"

namespace mariusgnn {

namespace {

// Chunked elementwise map over [0, size): disjoint writes, trivially deterministic.
template <typename Fn>
void ForEachElemChunk(const ComputeContext* ctx, int64_t size, const Fn& fn) {
  ForEachChunk(ctx, size, kComputeGrainElems,
               [&](int64_t, int64_t begin, int64_t end) { fn(begin, end); });
}

// Chunked map over [0, rows) at the row grain; also used for segment chunking
// (segment s owns destination row s plus its offsets[s]..offsets[s+1) source rows,
// so chunks write disjoint memory either way).
template <typename Fn>
void ForEachRowChunk(const ComputeContext* ctx, int64_t rows, const Fn& fn) {
  ForEachChunk(ctx, rows, kComputeGrainRows,
               [&](int64_t, int64_t begin, int64_t end) { fn(begin, end); });
}

// Per-thread dst-row -> compact-slot remap for ScatterAddRows (see slot_remap.h
// for the generation-stamp scheme and why thread_local reuse is sound).
thread_local SlotRemap scatter_remap;

}  // namespace

Tensor Matmul(const Tensor& a, const Tensor& b, const ComputeContext* ctx) {
  MG_CHECK(a.cols() == b.rows());
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  Tensor c(m, n);
  // Row-chunked over m; ikj loop order keeps the inner loop contiguous over b and c.
  ForEachRowChunk(ctx, m, [&](int64_t row_begin, int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* arow = a.RowPtr(i);
      float* crow = c.RowPtr(i);
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        if (av == 0.0f) {
          continue;
        }
        const float* brow = b.RowPtr(kk);
        for (int64_t j = 0; j < n; ++j) {
          crow[j] += av * brow[j];
        }
      }
    }
  });
  return c;
}

Tensor MatmulTransA(const Tensor& a, const Tensor& b, const ComputeContext* ctx) {
  MG_CHECK(a.rows() == b.rows());
  const int64_t k = a.rows(), m = a.cols(), n = b.cols();
  Tensor c(m, n);
  // Chunked over the m output rows (columns of A); each C row accumulates over k in
  // ascending order, so the sum order matches a serial kk-outer pass bit-for-bit.
  ForEachRowChunk(ctx, m, [&](int64_t row_begin, int64_t row_end) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float* arow = a.RowPtr(kk);
      const float* brow = b.RowPtr(kk);
      for (int64_t i = row_begin; i < row_end; ++i) {
        const float av = arow[i];
        if (av == 0.0f) {
          continue;
        }
        float* crow = c.RowPtr(i);
        for (int64_t j = 0; j < n; ++j) {
          crow[j] += av * brow[j];
        }
      }
    }
  });
  return c;
}

Tensor MatmulTransB(const Tensor& a, const Tensor& b, const ComputeContext* ctx) {
  MG_CHECK(a.cols() == b.cols());
  const int64_t m = a.rows(), k = a.cols(), n = b.rows();
  Tensor c(m, n);
  ForEachRowChunk(ctx, m, [&](int64_t row_begin, int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* arow = a.RowPtr(i);
      float* crow = c.RowPtr(i);
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b.RowPtr(j);
        float s = 0.0f;
        for (int64_t kk = 0; kk < k; ++kk) {
          s += arow[kk] * brow[kk];
        }
        crow[j] = s;
      }
    }
  });
  return c;
}

void AddInPlace(Tensor& out, const Tensor& in, const ComputeContext* ctx) {
  MG_CHECK(out.rows() == in.rows() && out.cols() == in.cols());
  ForEachElemChunk(ctx, out.size(), [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      out.data()[i] += in.data()[i];
    }
  });
}

void Axpy(Tensor& out, const Tensor& in, float alpha, const ComputeContext* ctx) {
  MG_CHECK(out.rows() == in.rows() && out.cols() == in.cols());
  ForEachElemChunk(ctx, out.size(), [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      out.data()[i] += alpha * in.data()[i];
    }
  });
}

Tensor Hadamard(const Tensor& a, const Tensor& b, const ComputeContext* ctx) {
  MG_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Tensor c(a.rows(), a.cols());
  ForEachElemChunk(ctx, a.size(), [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      c.data()[i] = a.data()[i] * b.data()[i];
    }
  });
  return c;
}

void Scale(Tensor& t, float alpha, const ComputeContext* ctx) {
  ForEachElemChunk(ctx, t.size(), [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      t.data()[i] *= alpha;
    }
  });
}

void AddBiasRows(Tensor& t, const Tensor& bias, const ComputeContext* ctx) {
  MG_CHECK(bias.rows() == 1 && bias.cols() == t.cols());
  ForEachRowChunk(ctx, t.rows(), [&](int64_t row_begin, int64_t row_end) {
    for (int64_t r = row_begin; r < row_end; ++r) {
      float* row = t.RowPtr(r);
      for (int64_t c = 0; c < t.cols(); ++c) {
        row[c] += bias.data()[c];
      }
    }
  });
}

Tensor SumRows(const Tensor& t, const ComputeContext* ctx) {
  Tensor out(1, t.cols());
  const int64_t chunks = ComputeChunkCount(t.rows(), kComputeGrainRows);
  if (chunks <= 1) {
    for (int64_t r = 0; r < t.rows(); ++r) {
      const float* row = t.RowPtr(r);
      for (int64_t c = 0; c < t.cols(); ++c) {
        out.data()[c] += row[c];
      }
    }
    return out;
  }
  // Cross-chunk accumulator: per-chunk partial rows folded in ascending order.
  std::vector<Tensor> partials(static_cast<size_t>(chunks));
  ForEachChunkOrdered(
      ctx, t.rows(), kComputeGrainRows,
      [&](int64_t chunk, int64_t begin, int64_t end) {
        Tensor partial(1, t.cols());
        for (int64_t r = begin; r < end; ++r) {
          const float* row = t.RowPtr(r);
          for (int64_t c = 0; c < t.cols(); ++c) {
            partial.data()[c] += row[c];
          }
        }
        partials[static_cast<size_t>(chunk)] = std::move(partial);
      },
      [&](int64_t chunk) {
        const Tensor& partial = partials[static_cast<size_t>(chunk)];
        for (int64_t c = 0; c < t.cols(); ++c) {
          out.data()[c] += partial.data()[c];
        }
      });
  return out;
}

Tensor IndexSelect(const Tensor& t, const std::vector<int64_t>& indices,
                   const ComputeContext* ctx) {
  Tensor out(static_cast<int64_t>(indices.size()), t.cols());
  ForEachRowChunk(ctx, static_cast<int64_t>(indices.size()),
                  [&](int64_t row_begin, int64_t row_end) {
                    for (int64_t i = row_begin; i < row_end; ++i) {
                      const int64_t src = indices[static_cast<size_t>(i)];
                      MG_DCHECK(src >= 0 && src < t.rows());
                      std::copy(t.RowPtr(src), t.RowPtr(src) + t.cols(), out.RowPtr(i));
                    }
                  });
  return out;
}

void ScatterAddRows(Tensor& dst, const std::vector<int64_t>& indices, const Tensor& src,
                    const ComputeContext* ctx) {
  MG_CHECK(static_cast<int64_t>(indices.size()) == src.rows());
  MG_CHECK(dst.cols() == src.cols());
  const int64_t n = static_cast<int64_t>(indices.size());
  const int64_t cols = src.cols();
  const int64_t chunks = ComputeChunkCount(n, kComputeGrainScatterRows);
  if (chunks <= 1) {
    for (int64_t i = 0; i < n; ++i) {
      MG_DCHECK(indices[static_cast<size_t>(i)] >= 0 &&
                indices[static_cast<size_t>(i)] < dst.rows());
      float* drow = dst.RowPtr(indices[static_cast<size_t>(i)]);
      const float* srow = src.RowPtr(i);
      for (int64_t c = 0; c < cols; ++c) {
        drow[c] += srow[c];
      }
    }
    return;
  }
  // Strictly increasing indices (the iota self_rows every layer backward passes)
  // have no duplicates, so chunks write disjoint dst rows directly — no remap, no
  // partials. Each dst row receives exactly one add either way, so the bits match
  // the fold path below exactly; path selection depends only on the indices, never
  // the pool, so determinism across pool sizes is preserved.
  bool strictly_increasing = true;
  for (int64_t i = 1; i < n && strictly_increasing; ++i) {
    strictly_increasing = indices[static_cast<size_t>(i)] > indices[static_cast<size_t>(i) - 1];
  }
  if (strictly_increasing) {
    ForEachChunk(ctx, n, kComputeGrainScatterRows,
                 [&](int64_t, int64_t begin, int64_t end) {
                   for (int64_t i = begin; i < end; ++i) {
                     MG_DCHECK(indices[static_cast<size_t>(i)] >= 0 &&
                               indices[static_cast<size_t>(i)] < dst.rows());
                     float* drow = dst.RowPtr(indices[static_cast<size_t>(i)]);
                     const float* srow = src.RowPtr(i);
                     for (int64_t c = 0; c < cols; ++c) {
                       drow[c] += srow[c];
                     }
                   }
                 });
    return;
  }

  // Duplicate indices make this a scatter-reduce with a data-dependent write set,
  // so each chunk accumulates into a compact partial holding only the dst rows it
  // touches (slot order = first occurrence within the chunk, a fixed function of
  // the chunk layout), and the partials fold into dst in ascending chunk order.
  // Same bits for a null context and any pool size. The dst-row -> slot remap is a
  // generation-stamped thread_local scratch: a fresh O(dst_rows) fill per chunk
  // would rival the useful scatter work, while bumping the stamp invalidates the
  // whole scratch in O(1), so each chunk pays only O(touched) — and the remap's
  // contents stay a pure function of the chunk, never of which thread ran before.
  std::vector<Tensor> partials(static_cast<size_t>(chunks));
  std::vector<std::vector<int64_t>> touched_rows(static_cast<size_t>(chunks));
  ForEachChunkOrdered(
      ctx, n, kComputeGrainScatterRows,
      [&](int64_t chunk, int64_t begin, int64_t end) {
        SlotRemap& remap = scatter_remap;
        remap.NextGeneration(dst.rows());
        std::vector<int64_t> touched;
        for (int64_t i = begin; i < end; ++i) {
          const int64_t row = indices[static_cast<size_t>(i)];
          MG_DCHECK(row >= 0 && row < dst.rows());
          remap.Claim(row, &touched);
        }
        Tensor partial(static_cast<int64_t>(touched.size()), cols);
        for (int64_t i = begin; i < end; ++i) {
          float* drow = partial.RowPtr(
              remap.slot_of[static_cast<size_t>(indices[static_cast<size_t>(i)])]);
          const float* srow = src.RowPtr(i);
          for (int64_t c = 0; c < cols; ++c) {
            drow[c] += srow[c];
          }
        }
        partials[static_cast<size_t>(chunk)] = std::move(partial);
        touched_rows[static_cast<size_t>(chunk)] = std::move(touched);
      },
      [&](int64_t chunk) {
        const std::vector<int64_t>& rows = touched_rows[static_cast<size_t>(chunk)];
        const Tensor& partial = partials[static_cast<size_t>(chunk)];
        for (size_t s = 0; s < rows.size(); ++s) {
          float* drow = dst.RowPtr(rows[s]);
          const float* srow = partial.RowPtr(static_cast<int64_t>(s));
          for (int64_t c = 0; c < cols; ++c) {
            drow[c] += srow[c];
          }
        }
        // Free the folded partial eagerly.
        partials[static_cast<size_t>(chunk)] = Tensor();
      });
}

namespace {

void CheckOffsets(const Tensor& src, const std::vector<int64_t>& offsets) {
  MG_CHECK(!offsets.empty());
  MG_CHECK(offsets.front() == 0);
  MG_CHECK(offsets.back() == src.rows());
}

}  // namespace

Tensor SegmentSum(const Tensor& src, const std::vector<int64_t>& offsets,
                  const ComputeContext* ctx) {
  CheckOffsets(src, offsets);
  const int64_t segs = static_cast<int64_t>(offsets.size()) - 1;
  Tensor out(segs, src.cols());
  ForEachRowChunk(ctx, segs, [&](int64_t seg_begin, int64_t seg_end) {
    for (int64_t s = seg_begin; s < seg_end; ++s) {
      float* orow = out.RowPtr(s);
      for (int64_t r = offsets[static_cast<size_t>(s)];
           r < offsets[static_cast<size_t>(s) + 1]; ++r) {
        const float* srow = src.RowPtr(r);
        for (int64_t c = 0; c < src.cols(); ++c) {
          orow[c] += srow[c];
        }
      }
    }
  });
  return out;
}

Tensor SegmentMean(const Tensor& src, const std::vector<int64_t>& offsets,
                   const ComputeContext* ctx) {
  Tensor out = SegmentSum(src, offsets, ctx);
  ForEachRowChunk(ctx, out.rows(), [&](int64_t seg_begin, int64_t seg_end) {
    for (int64_t s = seg_begin; s < seg_end; ++s) {
      const int64_t count =
          offsets[static_cast<size_t>(s) + 1] - offsets[static_cast<size_t>(s)];
      if (count > 1) {
        const float inv = 1.0f / static_cast<float>(count);
        float* orow = out.RowPtr(s);
        for (int64_t c = 0; c < out.cols(); ++c) {
          orow[c] *= inv;
        }
      }
    }
  });
  return out;
}

Tensor SegmentSumBackward(const Tensor& grad_out, const std::vector<int64_t>& offsets,
                          const ComputeContext* ctx) {
  MG_CHECK(grad_out.rows() == static_cast<int64_t>(offsets.size()) - 1);
  Tensor grad_in(offsets.back(), grad_out.cols());
  ForEachRowChunk(ctx, grad_out.rows(), [&](int64_t seg_begin, int64_t seg_end) {
    for (int64_t s = seg_begin; s < seg_end; ++s) {
      const float* grow = grad_out.RowPtr(s);
      for (int64_t r = offsets[static_cast<size_t>(s)];
           r < offsets[static_cast<size_t>(s) + 1]; ++r) {
        std::copy(grow, grow + grad_out.cols(), grad_in.RowPtr(r));
      }
    }
  });
  return grad_in;
}

Tensor SegmentMeanBackward(const Tensor& grad_out, const std::vector<int64_t>& offsets,
                           const ComputeContext* ctx) {
  Tensor grad_in = SegmentSumBackward(grad_out, offsets, ctx);
  ForEachRowChunk(ctx, grad_out.rows(), [&](int64_t seg_begin, int64_t seg_end) {
    for (int64_t s = seg_begin; s < seg_end; ++s) {
      const int64_t count =
          offsets[static_cast<size_t>(s) + 1] - offsets[static_cast<size_t>(s)];
      if (count > 1) {
        const float inv = 1.0f / static_cast<float>(count);
        for (int64_t r = offsets[static_cast<size_t>(s)];
             r < offsets[static_cast<size_t>(s) + 1]; ++r) {
          float* row = grad_in.RowPtr(r);
          for (int64_t c = 0; c < grad_in.cols(); ++c) {
            row[c] *= inv;
          }
        }
      }
    }
  });
  return grad_in;
}

void SegmentSoftmaxInPlace(Tensor& scores, const std::vector<int64_t>& offsets,
                           const ComputeContext* ctx) {
  MG_CHECK(scores.cols() == 1);
  CheckOffsets(scores, offsets);
  const int64_t segs = static_cast<int64_t>(offsets.size()) - 1;
  ForEachRowChunk(ctx, segs, [&](int64_t seg_begin, int64_t seg_end) {
    for (int64_t s = seg_begin; s < seg_end; ++s) {
      const int64_t begin = offsets[static_cast<size_t>(s)];
      const int64_t end = offsets[static_cast<size_t>(s) + 1];
      if (begin == end) {
        continue;
      }
      float maxv = scores.data()[begin];
      for (int64_t r = begin + 1; r < end; ++r) {
        maxv = std::max(maxv, scores.data()[r]);
      }
      float sum = 0.0f;
      for (int64_t r = begin; r < end; ++r) {
        scores.data()[r] = std::exp(scores.data()[r] - maxv);
        sum += scores.data()[r];
      }
      const float inv = 1.0f / sum;
      for (int64_t r = begin; r < end; ++r) {
        scores.data()[r] *= inv;
      }
    }
  });
}

Tensor SegmentSoftmaxBackward(const Tensor& probs, const Tensor& grad,
                              const std::vector<int64_t>& offsets,
                              const ComputeContext* ctx) {
  MG_CHECK(probs.cols() == 1 && grad.cols() == 1 && probs.rows() == grad.rows());
  Tensor out(probs.rows(), 1);
  const int64_t segs = static_cast<int64_t>(offsets.size()) - 1;
  ForEachRowChunk(ctx, segs, [&](int64_t seg_begin, int64_t seg_end) {
    for (int64_t s = seg_begin; s < seg_end; ++s) {
      const int64_t begin = offsets[static_cast<size_t>(s)];
      const int64_t end = offsets[static_cast<size_t>(s) + 1];
      float dot = 0.0f;
      for (int64_t r = begin; r < end; ++r) {
        dot += probs.data()[r] * grad.data()[r];
      }
      for (int64_t r = begin; r < end; ++r) {
        out.data()[r] = probs.data()[r] * (grad.data()[r] - dot);
      }
    }
  });
  return out;
}

Tensor Relu(const Tensor& t, const ComputeContext* ctx) {
  Tensor out(t.rows(), t.cols());
  ForEachElemChunk(ctx, t.size(), [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      out.data()[i] = t.data()[i] > 0.0f ? t.data()[i] : 0.0f;
    }
  });
  return out;
}

Tensor ReluBackward(const Tensor& out, const Tensor& grad_out, const ComputeContext* ctx) {
  Tensor g(out.rows(), out.cols());
  ForEachElemChunk(ctx, out.size(), [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      g.data()[i] = out.data()[i] > 0.0f ? grad_out.data()[i] : 0.0f;
    }
  });
  return g;
}

Tensor LeakyRelu(const Tensor& t, float slope, const ComputeContext* ctx) {
  Tensor out(t.rows(), t.cols());
  ForEachElemChunk(ctx, t.size(), [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const float v = t.data()[i];
      out.data()[i] = v > 0.0f ? v : slope * v;
    }
  });
  return out;
}

Tensor LeakyReluBackward(const Tensor& out, const Tensor& grad_out, float slope,
                         const ComputeContext* ctx) {
  Tensor g(out.rows(), out.cols());
  ForEachElemChunk(ctx, out.size(), [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      g.data()[i] = out.data()[i] > 0.0f ? grad_out.data()[i] : slope * grad_out.data()[i];
    }
  });
  return g;
}

Tensor Tanh(const Tensor& t, const ComputeContext* ctx) {
  Tensor out(t.rows(), t.cols());
  ForEachElemChunk(ctx, t.size(), [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      out.data()[i] = std::tanh(t.data()[i]);
    }
  });
  return out;
}

Tensor TanhBackward(const Tensor& out, const Tensor& grad_out, const ComputeContext* ctx) {
  Tensor g(out.rows(), out.cols());
  ForEachElemChunk(ctx, out.size(), [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      g.data()[i] = (1.0f - out.data()[i] * out.data()[i]) * grad_out.data()[i];
    }
  });
  return g;
}

Tensor RowSoftmax(const Tensor& logits, const ComputeContext* ctx) {
  Tensor out(logits.rows(), logits.cols());
  ForEachRowChunk(ctx, logits.rows(), [&](int64_t row_begin, int64_t row_end) {
    for (int64_t r = row_begin; r < row_end; ++r) {
      const float* in = logits.RowPtr(r);
      float* o = out.RowPtr(r);
      float maxv = in[0];
      for (int64_t c = 1; c < logits.cols(); ++c) {
        maxv = std::max(maxv, in[c]);
      }
      float sum = 0.0f;
      for (int64_t c = 0; c < logits.cols(); ++c) {
        o[c] = std::exp(in[c] - maxv);
        sum += o[c];
      }
      const float inv = 1.0f / sum;
      for (int64_t c = 0; c < logits.cols(); ++c) {
        o[c] *= inv;
      }
    }
  });
  return out;
}

float SoftmaxCrossEntropy(const Tensor& logits, const std::vector<int64_t>& labels,
                          Tensor* dlogits, const ComputeContext* ctx) {
  MG_CHECK(logits.rows() == static_cast<int64_t>(labels.size()));
  MG_CHECK(logits.rows() > 0);
  Tensor probs = RowSoftmax(logits, ctx);
  const float inv_n = 1.0f / static_cast<float>(logits.rows());
  // Loss is a cross-chunk sum: per-chunk double partials folded in chunk order.
  const int64_t chunks = ComputeChunkCount(logits.rows(), kComputeGrainRows);
  std::vector<double> loss_partials(static_cast<size_t>(chunks), 0.0);
  ForEachChunk(ctx, logits.rows(), kComputeGrainRows,
               [&](int64_t chunk, int64_t begin, int64_t end) {
                 double partial = 0.0;
                 for (int64_t r = begin; r < end; ++r) {
                   const int64_t y = labels[static_cast<size_t>(r)];
                   MG_DCHECK(y >= 0 && y < logits.cols());
                   partial -= std::log(std::max(probs(r, y), 1e-12f));
                 }
                 loss_partials[static_cast<size_t>(chunk)] = partial;
               });
  double loss = 0.0;
  for (double partial : loss_partials) {
    loss += partial;
  }
  if (dlogits != nullptr) {
    *dlogits = probs;
    ForEachRowChunk(ctx, logits.rows(), [&](int64_t row_begin, int64_t row_end) {
      for (int64_t r = row_begin; r < row_end; ++r) {
        (*dlogits)(r, labels[static_cast<size_t>(r)]) -= 1.0f;
        float* row = dlogits->RowPtr(r);
        for (int64_t c = 0; c < dlogits->cols(); ++c) {
          row[c] *= inv_n;
        }
      }
    });
  }
  return static_cast<float>(loss * inv_n);
}

void RowL2NormalizeInPlace(Tensor& t, const ComputeContext* ctx) {
  ForEachRowChunk(ctx, t.rows(), [&](int64_t row_begin, int64_t row_end) {
    for (int64_t r = row_begin; r < row_end; ++r) {
      float* row = t.RowPtr(r);
      double s = 0.0;
      for (int64_t c = 0; c < t.cols(); ++c) {
        s += static_cast<double>(row[c]) * row[c];
      }
      if (s > 0.0) {
        const float inv = static_cast<float>(1.0 / std::sqrt(s));
        for (int64_t c = 0; c < t.cols(); ++c) {
          row[c] *= inv;
        }
      }
    }
  });
}

}  // namespace mariusgnn
