#include "src/tensor/tensor.h"

#include <algorithm>
#include <cmath>

namespace mariusgnn {

Tensor Tensor::Full(int64_t rows, int64_t cols, float value) {
  Tensor t(rows, cols);
  t.Fill(value);
  return t;
}

Tensor Tensor::Uniform(int64_t rows, int64_t cols, float a, Rng& rng) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = (2.0f * rng.UniformFloat() - 1.0f) * a;
  }
  return t;
}

Tensor Tensor::Normal(int64_t rows, int64_t cols, float std, Rng& rng) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.Normal() * std;
  }
  return t;
}

Tensor Tensor::GlorotUniform(int64_t fan_in, int64_t fan_out, Rng& rng) {
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Uniform(fan_in, fan_out, a, rng);
}

Tensor Tensor::Slice(int64_t begin, int64_t end) const {
  MG_CHECK(begin >= 0 && begin <= end && end <= rows_);
  Tensor out(end - begin, cols_);
  std::copy(RowPtr(begin), RowPtr(begin) + (end - begin) * cols_, out.data());
  return out;
}

void Tensor::Fill(float value) { std::fill(data_.begin(), data_.end(), value); }

double Tensor::Norm() const {
  double s = 0.0;
  for (float v : data_) {
    s += static_cast<double>(v) * v;
  }
  return std::sqrt(s);
}

double Tensor::Sum() const {
  double s = 0.0;
  for (float v : data_) {
    s += v;
  }
  return s;
}

}  // namespace mariusgnn
