// Dense kernels used by the GNN layers and the DENSE forward pass (Algorithm 3).
//
// Conventions:
//  - All matrices are row-major Tensors.
//  - "Segments" are contiguous row ranges described by an offsets array of length
//    num_segments + 1 (offsets[s]..offsets[s+1] are the rows of segment s). The DENSE
//    nbr_offsets array is converted to this closed form by DenseBatch.
//  - Backward kernels accumulate into their output ("+=" semantics) so multiple paths
//    through a layer can add gradients without extra temporaries.
#ifndef SRC_TENSOR_OPS_H_
#define SRC_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

namespace mariusgnn {

// C = A @ B. A: m x k, B: k x n.
Tensor Matmul(const Tensor& a, const Tensor& b);

// C = A^T @ B. A: k x m, B: k x n -> C: m x n. (Weight-gradient shape.)
Tensor MatmulTransA(const Tensor& a, const Tensor& b);

// C = A @ B^T. A: m x k, B: n x k -> C: m x n. (Input-gradient shape.)
Tensor MatmulTransB(const Tensor& a, const Tensor& b);

// out += in (same shape).
void AddInPlace(Tensor& out, const Tensor& in);

// out += alpha * in.
void Axpy(Tensor& out, const Tensor& in, float alpha);

// Elementwise product.
Tensor Hadamard(const Tensor& a, const Tensor& b);

// Scales every element in place.
void Scale(Tensor& t, float alpha);

// Adds a 1 x n bias row to every row of t (n == t.cols()).
void AddBiasRows(Tensor& t, const Tensor& bias);

// Column-sum of t as a 1 x n tensor (bias gradient).
Tensor SumRows(const Tensor& t);

// Gathers rows: out[i] = t[indices[i]].
Tensor IndexSelect(const Tensor& t, const std::vector<int64_t>& indices);

// Scatter-add rows: dst[indices[i]] += src[i].
void ScatterAddRows(Tensor& dst, const std::vector<int64_t>& indices, const Tensor& src);

// Segment reductions over contiguous rows. offsets.size() == num_segments + 1 and
// offsets.back() == src.rows(). Empty segments produce zero rows.
Tensor SegmentSum(const Tensor& src, const std::vector<int64_t>& offsets);
Tensor SegmentMean(const Tensor& src, const std::vector<int64_t>& offsets);

// Backward of SegmentSum: broadcast each segment's gradient row to its member rows.
Tensor SegmentSumBackward(const Tensor& grad_out, const std::vector<int64_t>& offsets);
// Backward of SegmentMean: broadcast divided by segment size.
Tensor SegmentMeanBackward(const Tensor& grad_out, const std::vector<int64_t>& offsets);

// In-place softmax over each segment of a column vector (n x 1). Used by GAT attention.
void SegmentSoftmaxInPlace(Tensor& scores, const std::vector<int64_t>& offsets);

// Backward of segment softmax: given softmax outputs p and upstream grad g (both n x 1),
// returns dscore[i] = p_i * (g_i - sum_j in seg p_j g_j).
Tensor SegmentSoftmaxBackward(const Tensor& probs, const Tensor& grad,
                              const std::vector<int64_t>& offsets);

// Activations (forward returns value; backward takes forward *output*).
Tensor Relu(const Tensor& t);
Tensor ReluBackward(const Tensor& out, const Tensor& grad_out);
Tensor LeakyRelu(const Tensor& t, float slope);
Tensor LeakyReluBackward(const Tensor& out, const Tensor& grad_out, float slope);
Tensor Tanh(const Tensor& t);
Tensor TanhBackward(const Tensor& out, const Tensor& grad_out);

// Row-wise softmax.
Tensor RowSoftmax(const Tensor& logits);

// Mean softmax cross-entropy over rows; labels are class ids. Returns the loss and
// writes dlogits (d loss / d logits, already divided by the number of rows).
float SoftmaxCrossEntropy(const Tensor& logits, const std::vector<int64_t>& labels,
                          Tensor* dlogits);

// L2-normalises each row in place (zero rows left untouched).
void RowL2NormalizeInPlace(Tensor& t);

}  // namespace mariusgnn

#endif  // SRC_TENSOR_OPS_H_
