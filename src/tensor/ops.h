// Dense kernels used by the GNN layers and the DENSE forward pass (Algorithm 3).
//
// Conventions:
//  - All matrices are row-major Tensors.
//  - "Segments" are contiguous row ranges described by an offsets array of length
//    num_segments + 1 (offsets[s]..offsets[s+1] are the rows of segment s). The DENSE
//    nbr_offsets array is converted to this closed form by DenseBatch.
//  - Backward kernels accumulate into their output ("+=" semantics) so multiple paths
//    through a layer can add gradients without extra temporaries.
//  - Every kernel takes an optional ComputeContext and runs its work in fixed chunks
//    (see src/util/compute.h): output rows for the matmuls, segments for the segment
//    reductions, flat elements for the elementwise ops. Chunk boundaries and any
//    cross-chunk reduction order depend only on the input shape, so results are
//    bitwise-identical for a null context and for pools of any size.
//  - ScatterAddRows has a data-dependent write set (duplicate indices make it a
//    scatter-reduce), so its chunks accumulate into compact touched-row partials
//    that are folded into dst in ascending chunk order — the same pattern as the
//    decoder's shared-negative gradients (src/nn/decoder.cc).
#ifndef SRC_TENSOR_OPS_H_
#define SRC_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"
#include "src/util/compute.h"

namespace mariusgnn {

// C = A @ B. A: m x k, B: k x n. Row-chunked over m.
Tensor Matmul(const Tensor& a, const Tensor& b, const ComputeContext* ctx = nullptr);

// C = A^T @ B. A: k x m, B: k x n -> C: m x n. (Weight-gradient shape.)
// Row-chunked over the m output rows; each accumulates over k in ascending order.
Tensor MatmulTransA(const Tensor& a, const Tensor& b, const ComputeContext* ctx = nullptr);

// C = A @ B^T. A: m x k, B: n x k -> C: m x n. (Input-gradient shape.)
Tensor MatmulTransB(const Tensor& a, const Tensor& b, const ComputeContext* ctx = nullptr);

// out += in (same shape).
void AddInPlace(Tensor& out, const Tensor& in, const ComputeContext* ctx = nullptr);

// out += alpha * in.
void Axpy(Tensor& out, const Tensor& in, float alpha, const ComputeContext* ctx = nullptr);

// Elementwise product.
Tensor Hadamard(const Tensor& a, const Tensor& b, const ComputeContext* ctx = nullptr);

// Scales every element in place.
void Scale(Tensor& t, float alpha, const ComputeContext* ctx = nullptr);

// Adds a 1 x n bias row to every row of t (n == t.cols()).
void AddBiasRows(Tensor& t, const Tensor& bias, const ComputeContext* ctx = nullptr);

// Column-sum of t as a 1 x n tensor (bias gradient). Ordered per-chunk reduction:
// chunk partial sums are folded in ascending chunk order.
Tensor SumRows(const Tensor& t, const ComputeContext* ctx = nullptr);

// Gathers rows: out[i] = t[indices[i]].
Tensor IndexSelect(const Tensor& t, const std::vector<int64_t>& indices,
                   const ComputeContext* ctx = nullptr);

// Scatter-add rows: dst[indices[i]] += src[i]. Duplicate indices are allowed; each
// chunk accumulates into a compact partial over the rows it touches and the partials
// fold into dst in ascending chunk order (see header note), so any pool size — or a
// null context — produces identical bits. Strictly increasing index vectors (iota
// self_rows) take a direct disjoint-write path with the same bits, since every dst
// row then receives exactly one addend.
void ScatterAddRows(Tensor& dst, const std::vector<int64_t>& indices, const Tensor& src,
                    const ComputeContext* ctx = nullptr);

// Segment reductions over contiguous rows. offsets.size() == num_segments + 1 and
// offsets.back() == src.rows(). Empty segments produce zero rows. Chunked over
// segments: each destination row is owned by exactly one chunk.
Tensor SegmentSum(const Tensor& src, const std::vector<int64_t>& offsets,
                  const ComputeContext* ctx = nullptr);
Tensor SegmentMean(const Tensor& src, const std::vector<int64_t>& offsets,
                   const ComputeContext* ctx = nullptr);

// Backward of SegmentSum: broadcast each segment's gradient row to its member rows.
Tensor SegmentSumBackward(const Tensor& grad_out, const std::vector<int64_t>& offsets,
                          const ComputeContext* ctx = nullptr);
// Backward of SegmentMean: broadcast divided by segment size.
Tensor SegmentMeanBackward(const Tensor& grad_out, const std::vector<int64_t>& offsets,
                           const ComputeContext* ctx = nullptr);

// In-place softmax over each segment of a column vector (n x 1). Used by GAT attention.
void SegmentSoftmaxInPlace(Tensor& scores, const std::vector<int64_t>& offsets,
                           const ComputeContext* ctx = nullptr);

// Backward of segment softmax: given softmax outputs p and upstream grad g (both n x 1),
// returns dscore[i] = p_i * (g_i - sum_j in seg p_j g_j).
Tensor SegmentSoftmaxBackward(const Tensor& probs, const Tensor& grad,
                              const std::vector<int64_t>& offsets,
                              const ComputeContext* ctx = nullptr);

// Activations (forward returns value; backward takes forward *output*).
Tensor Relu(const Tensor& t, const ComputeContext* ctx = nullptr);
Tensor ReluBackward(const Tensor& out, const Tensor& grad_out,
                    const ComputeContext* ctx = nullptr);
Tensor LeakyRelu(const Tensor& t, float slope, const ComputeContext* ctx = nullptr);
Tensor LeakyReluBackward(const Tensor& out, const Tensor& grad_out, float slope,
                         const ComputeContext* ctx = nullptr);
Tensor Tanh(const Tensor& t, const ComputeContext* ctx = nullptr);
Tensor TanhBackward(const Tensor& out, const Tensor& grad_out,
                    const ComputeContext* ctx = nullptr);

// Row-wise softmax.
Tensor RowSoftmax(const Tensor& logits, const ComputeContext* ctx = nullptr);

// Mean softmax cross-entropy over rows; labels are class ids. Returns the loss and
// writes dlogits (d loss / d logits, already divided by the number of rows). The
// loss is an ordered per-chunk reduction over row chunks.
float SoftmaxCrossEntropy(const Tensor& logits, const std::vector<int64_t>& labels,
                          Tensor* dlogits, const ComputeContext* ctx = nullptr);

// L2-normalises each row in place (zero rows left untouched).
void RowL2NormalizeInPlace(Tensor& t, const ComputeContext* ctx = nullptr);

}  // namespace mariusgnn

#endif  // SRC_TENSOR_OPS_H_
