// Dense row-major float32 matrix — the numeric substrate for GNN compute.
//
// The paper's central compute claim (Section 4.2) is that DENSE lets the forward pass
// run on kernels "optimized for dense linear algebra operations" instead of sparse
// custom kernels. This Tensor plus the kernels in ops.h (matmul, index_select,
// segment_sum, segment_softmax) are exactly that dense-kernel substrate; the simulated
// device in src/core executes them in place of the paper's GPU.
#ifndef SRC_TENSOR_TENSOR_H_
#define SRC_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace mariusgnn {

class Tensor {
 public:
  Tensor() = default;

  // rows x cols matrix, zero-initialised.
  Tensor(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows * cols), 0.0f) {
    MG_CHECK(rows >= 0 && cols >= 0);
  }

  // Adopts existing data (size must be rows*cols).
  Tensor(int64_t rows, int64_t cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    MG_CHECK(static_cast<int64_t>(data_.size()) == rows * cols);
  }

  static Tensor Zeros(int64_t rows, int64_t cols) { return Tensor(rows, cols); }

  static Tensor Full(int64_t rows, int64_t cols, float value);

  // U(-a, a) initialisation.
  static Tensor Uniform(int64_t rows, int64_t cols, float a, Rng& rng);

  // N(0, std^2) initialisation.
  static Tensor Normal(int64_t rows, int64_t cols, float std, Rng& rng);

  // Glorot/Xavier uniform: a = sqrt(6 / (fan_in + fan_out)).
  static Tensor GlorotUniform(int64_t fan_in, int64_t fan_out, Rng& rng);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float* RowPtr(int64_t r) { return data_.data() + r * cols_; }
  const float* RowPtr(int64_t r) const { return data_.data() + r * cols_; }

  float& operator()(int64_t r, int64_t c) {
    MG_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  float operator()(int64_t r, int64_t c) const {
    MG_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  // Copy of rows [begin, end).
  Tensor Slice(int64_t begin, int64_t end) const;

  void Fill(float value);
  void Zero() { Fill(0.0f); }

  // Frobenius norm and element sum (used by tests and gradient checks).
  double Norm() const;
  double Sum() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace mariusgnn

#endif  // SRC_TENSOR_TENSOR_H_
