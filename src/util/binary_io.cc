#include "src/util/binary_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <type_traits>

#include "src/util/check.h"

namespace mariusgnn {

File::File(const std::string& path, bool truncate) : path_(path) {
  int flags = O_RDWR | O_CREAT;
  if (truncate) {
    flags |= O_TRUNC;
  }
  fd_ = ::open(path.c_str(), flags, 0644);
  MG_CHECK_MSG(fd_ >= 0, path.c_str());
}

File::~File() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void File::ReadAt(void* dst, size_t bytes, uint64_t offset) const {
  char* p = static_cast<char*>(dst);
  size_t remaining = bytes;
  uint64_t off = offset;
  while (remaining > 0) {
    ssize_t n = ::pread(fd_, p, remaining, static_cast<off_t>(off));
    MG_CHECK_MSG(n > 0, std::strerror(errno));
    p += n;
    off += static_cast<uint64_t>(n);
    remaining -= static_cast<size_t>(n);
  }
}

void File::WriteAt(const void* src, size_t bytes, uint64_t offset) {
  const char* p = static_cast<const char*>(src);
  size_t remaining = bytes;
  uint64_t off = offset;
  while (remaining > 0) {
    ssize_t n = ::pwrite(fd_, p, remaining, static_cast<off_t>(off));
    MG_CHECK_MSG(n > 0, std::strerror(errno));
    p += n;
    off += static_cast<uint64_t>(n);
    remaining -= static_cast<size_t>(n);
  }
}

void File::Resize(uint64_t bytes) {
  MG_CHECK(::ftruncate(fd_, static_cast<off_t>(bytes)) == 0);
}

uint64_t File::Size() const {
  struct stat st;
  MG_CHECK(::fstat(fd_, &st) == 0);
  return static_cast<uint64_t>(st.st_size);
}

template <typename T>
void WriteVector(const std::string& path, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  File f(path, /*truncate=*/true);
  uint64_t count = v.size();
  f.WriteAt(&count, sizeof(count), 0);
  if (count > 0) {
    f.WriteAt(v.data(), count * sizeof(T), sizeof(count));
  }
}

template <typename T>
std::vector<T> ReadVector(const std::string& path) {
  static_assert(std::is_trivially_copyable_v<T>);
  File f(path);
  uint64_t count = 0;
  f.ReadAt(&count, sizeof(count), 0);
  std::vector<T> v(count);
  if (count > 0) {
    f.ReadAt(v.data(), count * sizeof(T), sizeof(count));
  }
  return v;
}

template void WriteVector<float>(const std::string&, const std::vector<float>&);
template std::vector<float> ReadVector<float>(const std::string&);
template void WriteVector<int32_t>(const std::string&, const std::vector<int32_t>&);
template std::vector<int32_t> ReadVector<int32_t>(const std::string&);
template void WriteVector<int64_t>(const std::string&, const std::vector<int64_t>&);
template std::vector<int64_t> ReadVector<int64_t>(const std::string&);

std::string TempPath(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  const char* tmp = ::getenv("TMPDIR");
  std::string dir = tmp != nullptr ? tmp : "/tmp";
  return dir + "/" + prefix + "." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1));
}

}  // namespace mariusgnn
