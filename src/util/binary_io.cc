#include "src/util/binary_io.h"

#include <fcntl.h>
#include <libgen.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <type_traits>

#include "src/util/check.h"

namespace mariusgnn {

File::File(const std::string& path, bool truncate) : path_(path) {
  int flags = O_RDWR | O_CREAT;
  if (truncate) {
    flags |= O_TRUNC;
  }
  do {
    fd_ = ::open(path.c_str(), flags, 0644);
  } while (fd_ < 0 && errno == EINTR);
  MG_CHECK_MSG(fd_ >= 0, path.c_str());
}

File::~File() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

std::unique_ptr<File> File::TryOpenDirect(const std::string& path) {
#if defined(O_DIRECT)
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDWR | O_DIRECT);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return nullptr;
  }
  return std::unique_ptr<File>(new File(path, fd));
#else
  (void)path;
  return nullptr;
#endif
}

std::unique_ptr<File> File::TryOpenReadOnly(const std::string& path,
                                            std::string* error) {
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDONLY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (error != nullptr) {
      *error = std::strerror(errno);
    }
    return nullptr;
  }
  return std::unique_ptr<File>(new File(path, fd));
}

void File::ReadAt(void* dst, size_t bytes, uint64_t offset) const {
  std::string error;
  MG_CHECK_MSG(TryReadAt(dst, bytes, offset, &error), error.c_str());
}

bool File::TryReadAt(void* dst, size_t bytes, uint64_t offset,
                     std::string* error) const {
  char* p = static_cast<char*>(dst);
  size_t remaining = bytes;
  uint64_t off = offset;
  while (remaining > 0) {
    const ssize_t n = ::pread(fd_, p, remaining, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) {
        continue;  // interrupted by a signal before any data transferred; retry
      }
      if (error != nullptr) {
        *error = std::strerror(errno);
      }
      return false;
    }
    if (n == 0) {
      // pread returning 0 is end-of-file, not an error, so errno is stale here —
      // report the short read as what it is instead of a misleading strerror.
      if (error != nullptr) {
        *error = "unexpected end of file (short read)";
      }
      return false;
    }
    p += n;
    off += static_cast<uint64_t>(n);
    remaining -= static_cast<size_t>(n);
  }
  return true;
}

void File::WriteAt(const void* src, size_t bytes, uint64_t offset) {
  const char* p = static_cast<const char*>(src);
  size_t remaining = bytes;
  uint64_t off = offset;
  while (remaining > 0) {
    const ssize_t n = ::pwrite(fd_, p, remaining, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      MG_CHECK_MSG(false, std::strerror(errno));
    }
    MG_CHECK_MSG(n > 0, "pwrite made no progress");
    p += n;
    off += static_cast<uint64_t>(n);
    remaining -= static_cast<size_t>(n);
  }
}

void File::Resize(uint64_t bytes) {
  MG_CHECK(::ftruncate(fd_, static_cast<off_t>(bytes)) == 0);
}

void File::Sync() {
  int rc;
  do {
    rc = ::fsync(fd_);
  } while (rc != 0 && errno == EINTR);
  MG_CHECK_MSG(rc == 0, std::strerror(errno));
}

uint64_t File::Size() const {
  struct stat st;
  MG_CHECK(::fstat(fd_, &st) == 0);
  return static_cast<uint64_t>(st.st_size);
}

namespace {

// fsync the directory containing `path` so the rename itself is durable.
void SyncParentDirectory(const std::string& path) {
  std::vector<char> buf(path.begin(), path.end());
  buf.push_back('\0');
  const char* dir = ::dirname(buf.data());
  int fd;
  do {
    fd = ::open(dir, O_RDONLY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return;  // best effort: some filesystems refuse directory opens
  }
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

AtomicFile::AtomicFile(const std::string& path)
    : final_path_(path),
      tmp_path_(path + ".tmp"),
      file_(std::make_unique<File>(tmp_path_, /*truncate=*/true)) {}

AtomicFile::~AtomicFile() {
  if (!committed_) {
    file_.reset();
    std::remove(tmp_path_.c_str());
  }
}

void AtomicFile::Commit() {
  MG_CHECK_MSG(!committed_, "AtomicFile::Commit called twice");
  file_->Sync();
  file_.reset();  // close before rename
  MG_CHECK_MSG(std::rename(tmp_path_.c_str(), final_path_.c_str()) == 0,
               std::strerror(errno));
  SyncParentDirectory(final_path_);
  committed_ = true;
}

template <typename T>
void WriteVector(const std::string& path, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  AtomicFile f(path);
  uint64_t count = v.size();
  f.WriteAt(&count, sizeof(count), 0);
  if (count > 0) {
    f.WriteAt(v.data(), count * sizeof(T), sizeof(count));
  }
  f.Commit();
}

template <typename T>
std::vector<T> ReadVector(const std::string& path) {
  static_assert(std::is_trivially_copyable_v<T>);
  File f(path);
  uint64_t count = 0;
  f.ReadAt(&count, sizeof(count), 0);
  // The on-disk count is untrusted: a truncated or corrupt file must fail here
  // with a clear message, not inside a multi-GB vector allocation.
  const uint64_t size = f.Size();
  MG_CHECK_MSG(count <= (size - sizeof(count)) / sizeof(T),
               "corrupt vector file: element count exceeds file size");
  std::vector<T> v(count);
  if (count > 0) {
    f.ReadAt(v.data(), count * sizeof(T), sizeof(count));
  }
  return v;
}

template void WriteVector<float>(const std::string&, const std::vector<float>&);
template std::vector<float> ReadVector<float>(const std::string&);
template void WriteVector<int32_t>(const std::string&, const std::vector<int32_t>&);
template std::vector<int32_t> ReadVector<int32_t>(const std::string&);
template void WriteVector<int64_t>(const std::string&, const std::vector<int64_t>&);
template std::vector<int64_t> ReadVector<int64_t>(const std::string&);

std::string TempPath(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  const char* tmp = ::getenv("TMPDIR");
  std::string dir = tmp != nullptr ? tmp : "/tmp";
  return dir + "/" + prefix + "." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1));
}

}  // namespace mariusgnn
