#include "src/util/threadpool.h"

#include <algorithm>

#include "src/util/check.h"

namespace mariusgnn {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MG_CHECK_MSG(!stop_, "Submit on stopped pool");
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::ParallelFor(int64_t n, const std::function<void(int64_t, int64_t)>& fn,
                             int64_t min_chunk) {
  if (n <= 0) {
    return;
  }
  // Fixed chunk size: boundaries are a function of (n, min_chunk) only, never the
  // worker count, so callers layering deterministic reductions on top of the chunk
  // grid get identical results for any pool size (see src/util/compute.h). The cap
  // bounds Submit overhead for huge n; it too depends only on n.
  constexpr int64_t kMaxTasks = 256;
  const int64_t step = std::max(min_chunk, (n + kMaxTasks - 1) / kMaxTasks);
  const int64_t threads = static_cast<int64_t>(num_threads());
  if (threads <= 1 || n <= min_chunk || OnWorkerThread()) {
    // Inline execution walks the same grid so the callback sees identical chunk
    // boundaries no matter how (or whether) the work was parallelized.
    for (int64_t begin = 0; begin < n; begin += step) {
      fn(begin, std::min(begin + step, n));
    }
    return;
  }
  std::mutex done_mu;
  std::condition_variable done_cv;
  int64_t pending = (n + step - 1) / step;
  for (int64_t begin = 0; begin < n; begin += step) {
    const int64_t end = std::min(begin + step, n);
    Submit([&, begin, end] {
      fn(begin, end);
      std::lock_guard<std::mutex> lock(done_mu);
      if (--pending == 0) {
        done_cv.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return pending == 0; });
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

size_t ThreadPool::IdleThreads() {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t busy = in_flight_ + tasks_.size();
  return workers_.size() > busy ? workers_.size() - busy : 0;
}

bool ThreadPool::OnWorkerThread() const {
  const std::thread::id self = std::this_thread::get_id();
  for (const auto& w : workers_) {
    if (w.get_id() == self) {
      return true;
    }
  }
  return false;
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) {
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

}  // namespace mariusgnn
