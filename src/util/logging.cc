#include "src/util/logging.h"

#include <cstdio>
#include <cstring>
#include <ctime>

namespace mariusgnn {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?";
  }
}

void VLogMessage(LogLevel level, const char* fmt, va_list args) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  char body[2048];
  std::vsnprintf(body, sizeof(body), fmt, args);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), body);
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void LogMessage(LogLevel level, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  VLogMessage(level, fmt, args);
  va_end(args);
}

#define MG_DEFINE_LOG_FN(Name, Level)       \
  void Name(const char* fmt, ...) {         \
    va_list args;                           \
    va_start(args, fmt);                    \
    VLogMessage(LogLevel::Level, fmt, args); \
    va_end(args);                           \
  }

MG_DEFINE_LOG_FN(LogDebug, kDebug)
MG_DEFINE_LOG_FN(LogInfo, kInfo)
MG_DEFINE_LOG_FN(LogWarn, kWarn)
MG_DEFINE_LOG_FN(LogError, kError)

#undef MG_DEFINE_LOG_FN

}  // namespace mariusgnn
