// Generation-stamped dense-key -> compact-slot remap for chunk-parallel
// scatter-reduce kernels (ScatterAddRows, the decoder's shared-negative
// gradients). Each chunk builds a compact partial over just the rows it touches;
// the remap from global row to partial slot needs O(1) invalidation between
// chunks, because a fresh O(num_rows) sentinel fill per chunk would rival the
// useful scatter work. An entry is valid only when its stamp equals the current
// generation, so NextGeneration invalidates everything by bumping a counter.
//
// Intended use is one thread_local instance per call site: pool workers drain
// chunks sequentially, the remap never outlives one chunk body, and slot
// assignment (first-occurrence order within the chunk) is a pure function of the
// chunk contents — never of which thread ran, or what ran on it before — so
// reuse across chunks and calls cannot leak state into results.
#ifndef SRC_UTIL_SLOT_REMAP_H_
#define SRC_UTIL_SLOT_REMAP_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace mariusgnn {

struct SlotRemap {
  std::vector<int32_t> slot_of;
  std::vector<uint32_t> stamp;
  uint32_t generation = 0;

  // Invalidates all entries and (re)sizes the key space to at least `rows`.
  void NextGeneration(int64_t rows) {
    if (static_cast<int64_t>(slot_of.size()) < rows) {
      slot_of.resize(static_cast<size_t>(rows));
      stamp.assign(static_cast<size_t>(rows), 0);
      generation = 0;
    }
    if (++generation == 0) {  // counter wrapped: stale stamps could collide
      std::fill(stamp.begin(), stamp.end(), 0);
      generation = 1;
    }
  }

  // Slot of `row`, claiming the next slot (and recording the first occurrence in
  // `touched`) if this generation has not seen it yet.
  int32_t Claim(int64_t row, std::vector<int64_t>* touched) {
    if (stamp[static_cast<size_t>(row)] != generation) {
      stamp[static_cast<size_t>(row)] = generation;
      slot_of[static_cast<size_t>(row)] = static_cast<int32_t>(touched->size());
      touched->push_back(row);
    }
    return slot_of[static_cast<size_t>(row)];
  }
};

}  // namespace mariusgnn

#endif  // SRC_UTIL_SLOT_REMAP_H_
