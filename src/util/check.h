// Lightweight runtime-check macros used throughout the library.
//
// MG_CHECK aborts with a message on failure in all build types; MG_DCHECK compiles out in
// NDEBUG builds. Both evaluate their condition exactly once.
#ifndef SRC_UTIL_CHECK_H_
#define SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace mariusgnn {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr,
                                     const char* msg) {
  std::fprintf(stderr, "MG_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace mariusgnn

#define MG_CHECK(cond)                                            \
  do {                                                            \
    if (!(cond)) {                                                \
      ::mariusgnn::CheckFailed(__FILE__, __LINE__, #cond, "");    \
    }                                                             \
  } while (0)

#define MG_CHECK_MSG(cond, msg)                                   \
  do {                                                            \
    if (!(cond)) {                                                \
      ::mariusgnn::CheckFailed(__FILE__, __LINE__, #cond, (msg)); \
    }                                                             \
  } while (0)

#ifdef NDEBUG
#define MG_DCHECK(cond) \
  do {                  \
  } while (0)
#else
#define MG_DCHECK(cond) MG_CHECK(cond)
#endif

#endif  // SRC_UTIL_CHECK_H_
