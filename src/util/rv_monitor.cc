#include "src/util/rv_monitor.h"

#include <cstdio>
#include <cstdlib>

#include "src/util/logging.h"

namespace mariusgnn {

const char* RvInvariantName(RvInvariant invariant) {
  switch (invariant) {
    case RvInvariant::kTicketOrder:
      return "pipeline.ticket_order";
    case RvInvariant::kQueueOccupancy:
      return "pipeline.queue_occupancy";
    case RvInvariant::kResizeQuiesce:
      return "pipeline.resize_quiesce";
    case RvInvariant::kIoTagOrder:
      return "io_engine.tag_order";
    case RvInvariant::kServeEpochPin:
      return "serve.epoch_pin";
    case RvInvariant::kCommFoldOrder:
      return "comm.fold_order";
    case RvInvariant::kCommReplicaHash:
      return "comm.replica_hash";
    case RvInvariant::kCount:
      break;
  }
  return "unknown";
}

RvSink::~RvSink() = default;

void LoggingRvSink::OnViolation(const RvViolation& violation) {
  LogError("RV violation [%s]: %s", RvInvariantName(violation.invariant),
           violation.detail.c_str());
}

void AbortRvSink::OnViolation(const RvViolation& violation) {
  std::fprintf(stderr, "RV violation [%s]: %s\n",
               RvInvariantName(violation.invariant), violation.detail.c_str());
  std::fflush(stderr);
  std::abort();
}

RvRuntime::RvRuntime() {
  for (auto& c : counts_) {
    c.store(0, std::memory_order_relaxed);
  }
}

RvRuntime& RvRuntime::Global() {
  static RvRuntime* runtime = new RvRuntime();  // leaked: outlives all threads
  return *runtime;
}

RvSink* RvRuntime::set_sink(RvSink* sink) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  RvSink* prev = sink_;
  sink_ = sink;
  return prev;
}

void RvRuntime::Report(RvInvariant invariant, std::string detail) {
  counts_[static_cast<int>(invariant)].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  RvViolation violation{invariant, std::move(detail)};
  std::lock_guard<std::mutex> lock(sink_mu_);
  (sink_ ? sink_ : &default_sink_)->OnViolation(violation);
}

uint64_t RvRuntime::violations(RvInvariant invariant) const {
  return counts_[static_cast<int>(invariant)].load(std::memory_order_relaxed);
}

uint64_t RvRuntime::TotalViolations() const {
  return total_.load(std::memory_order_relaxed);
}

void RvRuntime::ResetViolations() {
  for (auto& c : counts_) {
    c.store(0, std::memory_order_relaxed);
  }
  total_.store(0, std::memory_order_relaxed);
}

}  // namespace mariusgnn
