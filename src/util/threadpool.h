// Fixed-size worker pool with a parallel-for helper.
//
// The samplers use ParallelFor to split one-hop sampling and delta computation across
// CPU threads (Section 4.1 of the paper: "we can sample incoming and outgoing edges for
// any set of nodes in parallel using all available CPU threads").
#ifndef SRC_UTIL_THREADPOOL_H_
#define SRC_UTIL_THREADPOOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mariusgnn {

class ThreadPool {
 public:
  // num_threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // Enqueues a task; fire-and-forget (use ParallelFor for joinable work).
  void Submit(std::function<void()> task);

  // Runs fn(begin, end) over contiguous chunks of [0, n) on the pool and blocks until
  // all chunks complete. Chunks have fixed size max(min_chunk, ceil(n/256)) (the
  // last may be short): the chunk grid depends only on n and min_chunk, never the
  // pool size, so chunk-deterministic callers produce identical results on any pool.
  // Runs inline — walking the same grid — when n is small, the pool has one
  // thread, or the caller is itself one of this pool's workers (waiting on
  // own-pool chunks from a worker deadlocks once all workers block — e.g.
  // pipeline workers sampling).
  void ParallelFor(int64_t n, const std::function<void(int64_t, int64_t)>& fn,
                   int64_t min_chunk = 1024);

  // True when the calling thread is one of this pool's workers.
  bool OnWorkerThread() const;

  // Workers neither running nor already promised a queued task. Advisory (the value
  // is stale the moment the lock drops): callers use it to avoid queueing helper
  // tasks behind epoch-long occupants (e.g. pipeline batch-construction workers).
  size_t IdleThreads();

  // Blocks until the queue is empty and all in-flight tasks finished.
  void Wait();

  // Process-wide shared pool.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace mariusgnn

#endif  // SRC_UTIL_THREADPOOL_H_
