// Minimal leveled logger. Thread-safe (each message is a single fprintf call).
//
// Usage:
//   LogInfo("epoch %d done in %.2fs", epoch, secs);
// The global level defaults to kInfo and can be raised/lowered at runtime.
#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <atomic>
#include <cstdarg>

namespace mariusgnn {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Sets the minimum level that will be emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Core formatted emit; prefer the level-specific helpers below.
void LogMessage(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

void LogDebug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void LogInfo(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void LogWarn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void LogError(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace mariusgnn

#endif  // SRC_UTIL_LOGGING_H_
