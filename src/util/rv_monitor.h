// Runtime-verification (RV) monitors: cheap always-on state machines that check
// the pipeline's concurrency invariants in production builds, plus the per-epoch
// determinism hash.
//
// The out-of-core pipeline only earns its speed if the concurrency machinery
// provably preserves the batch stream. The determinism contract
// (docs/DETERMINISM.md) is enforced exhaustively by tests, but tests only cover
// the configurations they run; these monitors carry the same invariants into
// every Release binary, in the RV style (lightweight-yet-rigorous runtime
// checking, complementing exhaustive offline verification):
//
//   pipeline.ticket_order    indices delivered through the reorder buffer to the
//                            consumer are strictly increasing (RvSequenceMonitor)
//   pipeline.queue_occupancy BoundedQueue occupancy stays within [0, capacity]
//                            and the window watermarks stay consistent
//                            (RvWatermarkMonitor)
//   pipeline.resize_quiesce  PipelineSession::Resize only happens at quiesce: not
//                            inside a Consume delivery, with every worker exited
//                            and the queue drained into the reorder buffer
//                            (RvQuiesceMonitor)
//   io_engine.tag_order      same-tag IO requests start execution in submission
//                            order — the read-after-write/write-after-read rule
//                            the partition buffer depends on (RvTagOrderMonitor)
//   serve.epoch_pin          every answer in a coalesced serving batch carries
//                            the epoch of the snapshot the batch pinned — no
//                            mixed-epoch answers across a hot swap
//                            (RvEpochPinMonitor)
//   comm.fold_order          cross-replica gradient reductions fold rank
//                            contributions in strictly ascending rank order —
//                            the ordered-fold rule that makes multi-replica
//                            trajectories bitwise-reproducible
//                            (RvFoldOrderMonitor)
//   comm.replica_hash        the epoch-end determinism-hash exchange found a
//                            replica whose hash disagrees with rank 0's —
//                            the replicas' trajectories diverged (reported by
//                            GradientExchange::ExchangeEpochHash)
//
// Each monitor observation is a branch or two plus one relaxed atomic load (the
// global enable flag), so the monitors stay on in Release builds; bench_pipeline
// measures the overhead and records it in its JSON (< 1% of epoch time).
//
// Violations route through a pluggable RvSink. The default sink counts and logs
// (production: a violated invariant is a bug report, not a crash); tests and CI
// install AbortRvSink so any violation dies loudly (death-test hooks). Violation
// counters are always kept, independent of the sink, and surface in EpochStats,
// ServerStats, and the bench JSON.
//
// DeterminismHash is the cross-run comparison primitive: an ordered FNV-1a 64
// fold of each batch's loss bits, taken at the in-order consumption point, so
// serial / N-worker / prefetch-on/off / resumed / replica runs of the same epoch
// can be compared with a single u64 (recorded in EpochStats.determinism_hash and
// the checkpoint manifest's "determinism_hash" scalar).
#ifndef SRC_UTIL_RV_MONITOR_H_
#define SRC_UTIL_RV_MONITOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <mutex>
#include <string>
#include <unordered_map>

namespace mariusgnn {

enum class RvInvariant : int {
  kTicketOrder = 0,
  kQueueOccupancy,
  kResizeQuiesce,
  kIoTagOrder,
  kServeEpochPin,
  kCommFoldOrder,
  kCommReplicaHash,
  kCount,
};

// Stable dotted name ("pipeline.ticket_order", ...); used in logs and docs.
const char* RvInvariantName(RvInvariant invariant);

struct RvViolation {
  RvInvariant invariant = RvInvariant::kTicketOrder;
  std::string detail;  // human-readable: observed vs expected
};

// Where violations go after counting. Implementations must be thread-safe to
// install process-wide; OnViolation is serialized by the runtime's sink mutex.
class RvSink {
 public:
  virtual ~RvSink();
  virtual void OnViolation(const RvViolation& violation) = 0;
};

// Production default: one LogError line per violation, training continues (the
// violation counter is the durable record).
class LoggingRvSink : public RvSink {
 public:
  void OnViolation(const RvViolation& violation) override;
};

// Test/CI sink: print and abort, so death tests (and sanitizer jobs) catch any
// invariant breach the moment it happens.
class AbortRvSink : public RvSink {
 public:
  void OnViolation(const RvViolation& violation) override;
};

// Process-wide monitor runtime: the enable flag the inline monitors poll, the
// per-invariant violation counters, and the pluggable sink.
class RvRuntime {
 public:
  static RvRuntime& Global();

  // Monitors are compiled in and enabled by default in every build type.
  // Disabling is for overhead measurement (bench_pipeline) and tests only.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  // Installs `sink` (nullptr restores the default LoggingRvSink) and returns
  // the previously installed sink (nullptr if it was the default).
  RvSink* set_sink(RvSink* sink);

  // Counts the violation, then hands it to the sink. Called by monitors on
  // whatever thread observed the breach; thread-safe.
  void Report(RvInvariant invariant, std::string detail);

  uint64_t violations(RvInvariant invariant) const;
  uint64_t TotalViolations() const;
  void ResetViolations();

 private:
  RvRuntime();

  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> counts_[static_cast<int>(RvInvariant::kCount)];
  std::atomic<uint64_t> total_{0};
  std::mutex sink_mu_;
  RvSink* sink_ = nullptr;  // nullptr = default logging sink
  LoggingRvSink default_sink_;
};

// RAII sink swap for tests (restores the previous sink on scope exit).
class ScopedRvSink {
 public:
  explicit ScopedRvSink(RvSink* sink) : prev_(RvRuntime::Global().set_sink(sink)) {}
  ~ScopedRvSink() { RvRuntime::Global().set_sink(prev_); }
  ScopedRvSink(const ScopedRvSink&) = delete;
  ScopedRvSink& operator=(const ScopedRvSink&) = delete;

 private:
  RvSink* prev_;
};

// --- Monitors -----------------------------------------------------------------
//
// Each monitor instance is owned by the subsystem whose invariant it checks and
// is observed from exactly the context that already serializes the state it
// watches (the session owner thread, the queue mutex, the engine mutex), so the
// monitors add no locking of their own.

// Strictly-increasing sequence (the reorder buffer's delivery order).
class RvSequenceMonitor {
 public:
  explicit RvSequenceMonitor(RvInvariant invariant) : invariant_(invariant) {}

  void Observe(int64_t index) {
    RvRuntime& rt = RvRuntime::Global();
    if (!rt.enabled()) {
      return;
    }
    if (index <= last_) {
      rt.Report(invariant_, "sequence not strictly increasing: index " +
                                std::to_string(index) + " delivered after " +
                                std::to_string(last_));
      return;  // keep the high-water mark; one breach must not cascade
    }
    last_ = index;
  }

  void Reset() { last_ = std::numeric_limits<int64_t>::min(); }

 private:
  RvInvariant invariant_;
  int64_t last_ = std::numeric_limits<int64_t>::min();
};

// Occupancy within [0, capacity] plus window-watermark consistency.
class RvWatermarkMonitor {
 public:
  explicit RvWatermarkMonitor(RvInvariant invariant) : invariant_(invariant) {}

  // After every state change: the live occupancy can never exceed capacity.
  void ObserveOccupancy(size_t occupancy, size_t capacity) {
    RvRuntime& rt = RvRuntime::Global();
    if (!rt.enabled()) {
      return;
    }
    if (occupancy > capacity) {
      rt.Report(invariant_, "occupancy " + std::to_string(occupancy) +
                                " exceeds capacity " + std::to_string(capacity));
    }
  }

  // At window close: low <= high <= capacity (the integral's support).
  void ObserveWindow(size_t low, size_t high, size_t capacity) {
    RvRuntime& rt = RvRuntime::Global();
    if (!rt.enabled()) {
      return;
    }
    if (low > high || high > capacity) {
      rt.Report(invariant_, "inconsistent watermarks: low " + std::to_string(low) +
                                ", high " + std::to_string(high) + ", capacity " +
                                std::to_string(capacity));
    }
  }

 private:
  RvInvariant invariant_;
};

// Resize happens only at quiesce: never inside a Consume delivery, and only
// once every worker has exited and the queue is drained into the reorder
// buffer.
class RvQuiesceMonitor {
 public:
  explicit RvQuiesceMonitor(RvInvariant invariant) : invariant_(invariant) {}

  void ObserveResize(bool mid_consume, int workers_left, size_t queue_size) {
    RvRuntime& rt = RvRuntime::Global();
    if (!rt.enabled()) {
      return;
    }
    if (mid_consume) {
      rt.Report(invariant_, "resize entered while a Consume delivery is active");
    }
    if (workers_left != 0 || queue_size != 0) {
      rt.Report(invariant_, "resize before quiesce: " +
                                std::to_string(workers_left) +
                                " workers still running, " +
                                std::to_string(queue_size) + " items undrained");
    }
  }

 private:
  RvInvariant invariant_;
};

// Same-tag requests must start execution in submission order (different tags
// are independent and may reorder freely). Observe at execution-claim time with
// each request's submission sequence number.
class RvTagOrderMonitor {
 public:
  explicit RvTagOrderMonitor(RvInvariant invariant) : invariant_(invariant) {}

  void ObserveStart(int32_t tag, uint64_t submit_seq) {
    RvRuntime& rt = RvRuntime::Global();
    if (!rt.enabled()) {
      return;
    }
    auto [it, inserted] = last_started_.try_emplace(tag, submit_seq);
    if (inserted) {
      return;
    }
    if (submit_seq <= it->second) {
      rt.Report(invariant_, "tag " + std::to_string(tag) + ": request #" +
                                std::to_string(submit_seq) +
                                " started after same-tag request #" +
                                std::to_string(it->second));
      return;
    }
    it->second = submit_seq;
  }

  void Reset() { last_started_.clear(); }

 private:
  RvInvariant invariant_;
  std::unordered_map<int32_t, uint64_t> last_started_;
};

// Cross-replica reductions must fold rank contributions in strictly ascending
// rank order (ComputeContext's fixed-reduction-order contract, extended across
// processes): BeginReduction arms the monitor for one step's fold, ObserveFold
// checks each folded rank exceeds the previous one. Observed from the thread
// performing the fold (the coordinator's exchange call), so no locking.
class RvFoldOrderMonitor {
 public:
  explicit RvFoldOrderMonitor(RvInvariant invariant) : invariant_(invariant) {}

  void BeginReduction() { last_rank_ = -1; }

  void ObserveFold(int32_t rank) {
    RvRuntime& rt = RvRuntime::Global();
    if (!rt.enabled()) {
      return;
    }
    if (rank <= last_rank_) {
      rt.Report(invariant_, "fold order not strictly ascending: rank " +
                                std::to_string(rank) + " folded after rank " +
                                std::to_string(last_rank_));
      return;  // keep the high-water mark; one breach must not cascade
    }
    last_rank_ = rank;
  }

 private:
  RvInvariant invariant_;
  int32_t last_rank_ = -1;
};

// Every answer produced by one coalesced serving batch must carry the epoch of
// the snapshot that batch pinned (stateless: the pin is passed per observation).
class RvEpochPinMonitor {
 public:
  explicit RvEpochPinMonitor(RvInvariant invariant) : invariant_(invariant) {}

  void ObserveAnswer(uint64_t pinned_epoch, uint64_t answer_epoch) {
    RvRuntime& rt = RvRuntime::Global();
    if (!rt.enabled()) {
      return;
    }
    if (answer_epoch != pinned_epoch) {
      rt.Report(invariant_, "answer tagged epoch " + std::to_string(answer_epoch) +
                                " inside a batch pinned to epoch " +
                                std::to_string(pinned_epoch));
    }
  }

 private:
  RvInvariant invariant_;
};

// --- Determinism hash ---------------------------------------------------------

inline constexpr uint64_t kFnv64OffsetBasis = 14695981039346656037ULL;  // 0xCBF29CE484222325
inline constexpr uint64_t kFnv64Prime = 1099511628211ULL;               // 0x100000001B3

// Ordered FNV-1a 64 fold. The epoch hash folds each batch's mean-loss bits at
// the in-order consumption point, so the hash is a pure function of the batch
// stream: any two runs that consumed bitwise-identical losses in the same order
// produce the same u64, and any silent stream change flips it.
class DeterminismHash {
 public:
  void Fold(const void* data, size_t len) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    uint64_t h = h_;
    for (size_t i = 0; i < len; ++i) {
      h ^= static_cast<uint64_t>(p[i]);
      h *= kFnv64Prime;
    }
    h_ = h;
  }

  // Folds the IEEE-754 bit pattern (host byte order, like every on-disk format
  // in this repo) — 0.0f vs -0.0f and every NaN payload are distinct.
  void FoldFloat(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    Fold(&bits, sizeof(bits));
  }

  void FoldU64(uint64_t v) { Fold(&v, sizeof(v)); }

  uint64_t value() const { return h_; }
  void Reset() { h_ = kFnv64OffsetBasis; }

 private:
  uint64_t h_ = kFnv64OffsetBasis;
};

}  // namespace mariusgnn

#endif  // SRC_UTIL_RV_MONITOR_H_
