// Fast deterministic random number generation.
//
// Rng wraps xoshiro256** — a small, fast, high-quality generator — and adds the sampling
// helpers the samplers and policies need: bounded integers, floats, shuffles, and
// fixed-size samples without replacement. Every component that needs randomness takes an
// Rng (or a seed) explicitly so experiments are reproducible.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/check.h"

namespace mariusgnn {

// Combines a stream seed with an index into an independent per-index seed
// (splitmix64 finalizer). Pipeline workers use MixSeed(run_seed, batch_index) so a
// batch's RNG stream depends only on its index, never on worker scheduling.
inline uint64_t MixSeed(uint64_t seed, uint64_t index) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  // Re-seeds the generator deterministically using splitmix64 expansion.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  // Raw 64 random bits (xoshiro256**).
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t UniformInt(uint64_t bound) {
    MG_DCHECK(bound > 0);
    // Lemire's multiply-shift rejection method.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = -bound % bound;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    MG_DCHECK(hi > lo);
    return lo + static_cast<int64_t>(UniformInt(static_cast<uint64_t>(hi - lo)));
  }

  // Uniform float in [0, 1).
  float UniformFloat() { return static_cast<float>(Next() >> 40) * 0x1.0p-24f; }

  // Uniform double in [0, 1).
  double UniformDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Standard normal via Box–Muller (one value per call; simple, adequate for init).
  float Normal() {
    float u1 = UniformFloat();
    float u2 = UniformFloat();
    if (u1 < 1e-12f) {
      u1 = 1e-12f;
    }
    return std::sqrt(-2.0f * std::log(u1)) * std::cos(6.28318530718f * u2);
  }

  // Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Samples `count` distinct indices from [0, population) when count < population,
  // otherwise returns all indices 0..population-1. Uses Floyd's algorithm for small
  // counts relative to population; order of results is randomized.
  std::vector<int64_t> SampleWithoutReplacement(int64_t population, int64_t count);

  // Checkpoint/restore of the full generator state (the 4 xoshiro256** words): a
  // restored Rng continues the random stream bit-for-bit where the saved one
  // left off, which is what makes crash-safe resume bitwise-identical.
  void SaveState(uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) {
      out[i] = state_[i];
    }
  }
  void RestoreState(const uint64_t in[4]) {
    for (int i = 0; i < 4; ++i) {
      state_[i] = in[i];
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace mariusgnn

#endif  // SRC_UTIL_RNG_H_
