// POD-vector binary (de)serialisation and positional file IO helpers.
//
// The storage layer keeps node partitions and edge buckets in flat binary files; these
// helpers wrap POSIX pread/pwrite with full-transfer loops and error checking.
#ifndef SRC_UTIL_BINARY_IO_H_
#define SRC_UTIL_BINARY_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace mariusgnn {

// RAII file handle opened for read/write (created if missing).
class File {
 public:
  explicit File(const std::string& path, bool truncate = false);
  ~File();

  File(const File&) = delete;
  File& operator=(const File&) = delete;

  // Opens an existing file O_RDWR | O_DIRECT; returns nullptr when the kernel or
  // filesystem refuses direct IO (tmpfs, overlayfs, non-Linux). Callers pair this
  // with a buffered descriptor and route only aligned transfers here.
  static std::unique_ptr<File> TryOpenDirect(const std::string& path);

  // Opens read-only without aborting: returns nullptr and fills `error` when the
  // file cannot be opened (the checkpoint loader reports, never crashes). The
  // returned handle shares ReadAt's EINTR/short-read policy.
  static std::unique_ptr<File> TryOpenReadOnly(const std::string& path,
                                               std::string* error);

  // Reads exactly `bytes` at `offset`; retries EINTR, aborts on IO error or on
  // end-of-file before `bytes` were read (reported as a short read, not errno).
  void ReadAt(void* dst, size_t bytes, uint64_t offset) const;

  // Non-aborting ReadAt for untrusted inputs (checkpoint loads, snapshot opens):
  // returns false and fills `error` on IO error or end-of-file before `bytes`
  // were read — e.g. a file truncated between Size() and the read — instead of
  // killing the process. Retries EINTR like ReadAt.
  bool TryReadAt(void* dst, size_t bytes, uint64_t offset,
                 std::string* error) const;

  // Writes exactly `bytes` at `offset`; retries EINTR, aborts on error.
  void WriteAt(const void* src, size_t bytes, uint64_t offset);

  // Grows or shrinks the file to `bytes`.
  void Resize(uint64_t bytes);

  // Flushes file contents and metadata to stable storage (fsync).
  void Sync();

  uint64_t Size() const;

  const std::string& path() const { return path_; }

 private:
  File(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_ = -1;
};

// Crash-safe whole-file replacement: writes land in `<path>.tmp`, and Commit()
// fsyncs the data, renames the tmp file over `path`, and fsyncs the containing
// directory — so a reader only ever observes the previous complete file or the
// new complete file, never a torn write. A writer destroyed without Commit()
// (e.g. the process died mid-save) leaves at most a stale `<path>.tmp`, which
// the next successful Commit() replaces.
class AtomicFile {
 public:
  explicit AtomicFile(const std::string& path);
  ~AtomicFile();

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  void WriteAt(const void* src, size_t bytes, uint64_t offset) {
    file_->WriteAt(src, bytes, offset);
  }

  // Reads back bytes already written to the tmp file. The streaming checkpoint
  // writer uses this to fold the data checksum over sections whose rows were
  // scatter-written out of file order.
  void ReadAt(void* dst, size_t bytes, uint64_t offset) const {
    file_->ReadAt(dst, bytes, offset);
  }

  // Pre-sizes the tmp file so section payloads can land at their final aligned
  // offsets in any order; unwritten gaps read back as zeros (file holes).
  void Resize(uint64_t bytes) { file_->Resize(bytes); }

  // fsync + rename + directory fsync. May be called at most once; after Commit
  // the data is durable under `path`.
  void Commit();

  const std::string& tmp_path() const { return tmp_path_; }

 private:
  std::string final_path_;
  std::string tmp_path_;
  std::unique_ptr<File> file_;
  bool committed_ = false;
};

// Whole-vector helpers (little-endian host layout; used for dataset snapshots).
// WriteVector replaces the file atomically (AtomicFile); ReadVector validates the
// on-disk element count against the file size before allocating, so a truncated
// or corrupt header cannot trigger a huge allocation.
template <typename T>
void WriteVector(const std::string& path, const std::vector<T>& v);

template <typename T>
std::vector<T> ReadVector(const std::string& path);

// Returns a unique path inside the system temp directory with the given prefix.
std::string TempPath(const std::string& prefix);

}  // namespace mariusgnn

#endif  // SRC_UTIL_BINARY_IO_H_
