// POD-vector binary (de)serialisation and positional file IO helpers.
//
// The storage layer keeps node partitions and edge buckets in flat binary files; these
// helpers wrap POSIX pread/pwrite with full-transfer loops and error checking.
#ifndef SRC_UTIL_BINARY_IO_H_
#define SRC_UTIL_BINARY_IO_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mariusgnn {

// RAII file handle opened for read/write (created if missing).
class File {
 public:
  explicit File(const std::string& path, bool truncate = false);
  ~File();

  File(const File&) = delete;
  File& operator=(const File&) = delete;

  // Reads exactly `bytes` at `offset`; aborts on short read or error.
  void ReadAt(void* dst, size_t bytes, uint64_t offset) const;

  // Writes exactly `bytes` at `offset`; aborts on error.
  void WriteAt(const void* src, size_t bytes, uint64_t offset);

  // Grows or shrinks the file to `bytes`.
  void Resize(uint64_t bytes);

  uint64_t Size() const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

// Whole-vector helpers (little-endian host layout; used for dataset snapshots).
template <typename T>
void WriteVector(const std::string& path, const std::vector<T>& v);

template <typename T>
std::vector<T> ReadVector(const std::string& path);

// Returns a unique path inside the system temp directory with the given prefix.
std::string TempPath(const std::string& prefix);

}  // namespace mariusgnn

#endif  // SRC_UTIL_BINARY_IO_H_
