// Wall-clock timing plus a virtual clock used by the simulated disk.
//
// WallTimer measures real elapsed time. VirtualClock is an accounting clock: the
// SimulatedDisk charges IO time to it so out-of-core experiments report deterministic
// epoch times (compute wall time + modeled IO stall) regardless of host disk speed.
#ifndef SRC_UTIL_TIMER_H_
#define SRC_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace mariusgnn {

class WallTimer {
 public:
  WallTimer() { Reset(); }

  void Reset() { start_ = Clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

class VirtualClock {
 public:
  // Advances the clock by `seconds` of modeled time.
  void Advance(double seconds) { seconds_ += seconds; }

  void Reset() { seconds_ = 0.0; }

  double Seconds() const { return seconds_; }

 private:
  double seconds_ = 0.0;
};

}  // namespace mariusgnn

#endif  // SRC_UTIL_TIMER_H_
