#include "src/util/rng.h"

#include <algorithm>
#include <unordered_set>

namespace mariusgnn {

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t population, int64_t count) {
  MG_CHECK(population >= 0 && count >= 0);
  if (count >= population) {
    std::vector<int64_t> all(static_cast<size_t>(population));
    for (int64_t i = 0; i < population; ++i) {
      all[static_cast<size_t>(i)] = i;
    }
    return all;
  }
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(count));
  if (count * 3 >= population) {
    // Dense case: partial Fisher–Yates over an index vector.
    std::vector<int64_t> idx(static_cast<size_t>(population));
    for (int64_t i = 0; i < population; ++i) {
      idx[static_cast<size_t>(i)] = i;
    }
    for (int64_t i = 0; i < count; ++i) {
      int64_t j = UniformInt(i, population);
      std::swap(idx[static_cast<size_t>(i)], idx[static_cast<size_t>(j)]);
      out.push_back(idx[static_cast<size_t>(i)]);
    }
    return out;
  }
  // Sparse case: Floyd's algorithm.
  std::unordered_set<int64_t> seen;
  seen.reserve(static_cast<size_t>(count) * 2);
  for (int64_t j = population - count; j < population; ++j) {
    int64_t t = UniformInt(0, j + 1);
    if (seen.insert(t).second) {
      out.push_back(t);
    } else {
      seen.insert(j);
      out.push_back(j);
    }
  }
  // Floyd's produces a biased order; shuffle for uniform order.
  Shuffle(out);
  return out;
}

}  // namespace mariusgnn
