#include "src/util/compute.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "src/util/check.h"
#include "src/util/timer.h"

namespace mariusgnn {

int64_t ComputeChunkCount(int64_t n, int64_t grain) {
  MG_DCHECK(grain > 0);
  return n <= 0 ? 0 : (n + grain - 1) / grain;
}

namespace {

// Shared claim/completion state of one parallel region. Held by shared_ptr so a
// helper task that only runs after the region finished (its pool slot was busy)
// still finds valid state, sees no chunks left, and returns.
struct RegionState {
  int64_t n = 0;
  int64_t grain = 0;
  int64_t chunks = 0;
  const std::function<void(int64_t, int64_t, int64_t)>* body = nullptr;
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> busy_nanos{0};
  std::atomic<int64_t> participants{0};  // threads that executed >= 1 chunk
  bool record_time = false;
  std::mutex mu;
  std::condition_variable cv;
  int64_t done = 0;  // guarded by mu
};

// Claims chunks until none remain. Runs on the caller and on any pool worker that
// picks up a helper task; which thread runs which chunk never affects results
// because chunk boundaries and combine order are fixed elsewhere.
void DrainChunks(RegionState& state) {
  int64_t completed = 0;
  for (;;) {
    const int64_t c = state.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= state.chunks) {
      break;
    }
    const int64_t begin = c * state.grain;
    const int64_t end = std::min(begin + state.grain, state.n);
    if (state.record_time) {
      WallTimer timer;
      (*state.body)(c, begin, end);
      state.busy_nanos.fetch_add(static_cast<int64_t>(timer.Seconds() * 1e9),
                                 std::memory_order_relaxed);
    } else {
      (*state.body)(c, begin, end);
    }
    ++completed;
  }
  if (completed > 0) {
    state.participants.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(state.mu);
    state.done += completed;
    if (state.done == state.chunks) {
      state.cv.notify_all();
    }
  }
}

}  // namespace

void ForEachChunk(const ComputeContext* ctx, int64_t n, int64_t grain,
                  const std::function<void(int64_t, int64_t, int64_t)>& body) {
  const int64_t chunks = ComputeChunkCount(n, grain);
  if (chunks == 0) {
    return;
  }
  ThreadPool* pool = ctx != nullptr ? ctx->pool : nullptr;
  ComputeStats* stats = ctx != nullptr ? ctx->stats : nullptr;
  // Helper tasks only make sense if a worker can actually pick them up: a pool
  // saturated by epoch-long occupants (pipeline batch-construction workers, possibly
  // blocked on the window gate) would just accumulate dead closures all epoch.
  // IdleThreads takes the pool mutex, so consult it only after the lock-free
  // disqualifiers — single-chunk regions on the consumer hot path stay lock-free.
  // Execution strategy never affects results — only which threads run the chunks.
  const bool lockfree_serial = pool == nullptr || pool->num_threads() <= 1 ||
                               chunks <= 1 || pool->OnWorkerThread();
  const int64_t idle =
      lockfree_serial ? 0 : static_cast<int64_t>(pool->IdleThreads());
  // Serial path: same chunks, ascending order, so bits match the parallel path.
  // OnWorkerThread guards nested use from a pool task (a leaf region there).
  if (lockfree_serial || idle == 0) {
    WallTimer timer;
    for (int64_t c = 0; c < chunks; ++c) {
      body(c, c * grain, std::min((c + 1) * grain, n));
    }
    if (stats != nullptr) {
      const double s = timer.Seconds();
      stats->busy_seconds += s;
      stats->wall_seconds += s;
      stats->capacity_seconds += s;  // one executor: capacity == busy
      ++stats->regions;
    }
    return;
  }

  WallTimer wall;
  auto state = std::make_shared<RegionState>();
  state->n = n;
  state->grain = grain;
  state->chunks = chunks;
  state->body = &body;
  state->record_time = stats != nullptr;
  const int64_t helpers = std::min(idle, chunks - 1);
  for (int64_t h = 0; h < helpers; ++h) {
    pool->Submit([state] { DrainChunks(*state); });
  }
  DrainChunks(*state);
  {
    // Only chunks claimed by a running worker remain; they cannot be blocked on
    // the pipeline (they are executing kernel bodies), so this wait terminates.
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] { return state->done == state->chunks; });
  }
  // `body` points at the caller's stack; detach it so a late-scheduled helper
  // task (state outlives this frame via shared_ptr) cannot touch freed memory.
  // next is already >= chunks for every late task, so body is never read again,
  // but clearing it makes any regression crash deterministically.
  state->body = nullptr;
  if (stats != nullptr) {
    const double wall_s = wall.Seconds();
    stats->busy_seconds += static_cast<double>(state->busy_nanos.load()) * 1e-9;
    stats->wall_seconds += wall_s;
    // Capacity charges only threads that actually executed a chunk: a helper that
    // was queued but never ran (the caller drained everything first) enlisted no
    // capacity, so short regions still report honest efficiency.
    const int64_t executors = std::max<int64_t>(1, state->participants.load());
    stats->capacity_seconds += wall_s * static_cast<double>(executors);
    ++stats->regions;
  }
}

void ForEachChunkOrdered(const ComputeContext* ctx, int64_t n, int64_t grain,
                         const std::function<void(int64_t, int64_t, int64_t)>& body,
                         const std::function<void(int64_t)>& combine) {
  const int64_t chunks = ComputeChunkCount(n, grain);
  if (chunks == 0) {
    return;
  }
  ForEachChunk(ctx, n, grain, body);
  // Ascending-order fold on the calling thread: the accumulator sees partials in
  // the same sequence for every pool size. combine(c) touches only partial c and
  // the shared accumulator, so interleaving with other chunks' bodies (which the
  // serial path above effectively does not do — bodies all finished) is moot.
  for (int64_t c = 0; c < chunks; ++c) {
    combine(c);
  }
}

}  // namespace mariusgnn
