// Deterministic parallel-compute substrate for the stage-3 kernels.
//
// The training pipeline overlaps sampling (stage 1) and partition IO with compute
// (stage 3), but the compute stage itself — forward/backward over the GNN layers,
// ranking-loss scoring, and the sparse Adagrad update — must also saturate the CPU
// for the pipeline to be compute-bound in the paper's sense. ComputeContext carries
// the shared ThreadPool handle from the trainers down into the kernels.
//
// Determinism contract (mirrors the pipeline's): results are bitwise-identical for
// any pool size, including no pool at all. Two rules enforce this:
//  1. Work is split into FIXED chunks whose boundaries depend only on the element
//     count and a compile-time grain constant — never on the number of workers.
//  2. Any cross-chunk accumulation (loss sums, shared-parameter gradients) is
//     reduced strictly in ascending chunk order on the calling thread
//     (ForEachChunkOrdered). No atomics on floats, no scheduling-dependent sums.
// A kernel built on these helpers computes the same bits whether chunks run on 0,
// 1, or 16 extra threads, because the per-chunk arithmetic and the combine order
// are both fixed functions of the input shape.
//
// Deadlock safety: pipeline workers can block on the batch-window gate or the
// bounded queue *while holding pool threads* during stage-3 compute. The helpers
// therefore never make the caller wait on an unclaimed chunk: the calling thread
// claims and executes chunks itself, and only waits for chunks already claimed by a
// pool worker (which is by definition running, not blocked).
#ifndef SRC_UTIL_COMPUTE_H_
#define SRC_UTIL_COMPUTE_H_

#include <cstdint>
#include <functional>

#include "src/util/threadpool.h"

namespace mariusgnn {

// Fixed chunk grains. These are part of each kernel's definition: changing one
// changes reduction order (and therefore bits), so they are compile-time constants
// shared by every execution mode rather than per-context knobs.
inline constexpr int64_t kComputeGrainRows = 64;    // row-chunked matrix kernels
inline constexpr int64_t kComputeGrainElems = 8192; // flat elementwise kernels
inline constexpr int64_t kComputeGrainEdges = 128;  // per-positive-edge decoder loss
// Pure candidate scoring does ~dim work per item (vs (negatives+1) x dim for the
// loss kernel), so it needs a proportionally coarser grain to be worth fanning out.
inline constexpr int64_t kComputeGrainCandidates = 1024;
// Scatter-reduce rows (ScatterAddRows): each chunk allocates a dst-row slot remap,
// so the grain is coarser than the matmul row grain to amortize that setup.
inline constexpr int64_t kComputeGrainScatterRows = 512;
// Per-edge counting sort (BlockToView): each chunk owns a num_dst-sized histogram
// and cursor array, so the grain is coarse enough to amortize both passes.
inline constexpr int64_t kComputeGrainSortEdges = 2048;

// Aggregate counters for the parallel compute regions of one epoch.
struct ComputeStats {
  double busy_seconds = 0.0;      // summed per-chunk execution time across threads
  double wall_seconds = 0.0;      // caller-side wall time of the same regions
  // Sum over regions of (region wall x threads that actually executed >= 1 of its
  // chunks; 1 for regions that ran serially). The honest denominator for
  // efficiency: a small kernel that never went parallel — or whose queued helpers
  // never got a chunk — contributes capacity == busy, not 8x its wall time.
  double capacity_seconds = 0.0;
  int64_t regions = 0;

  void Reset() { *this = ComputeStats(); }

  // busy / capacity: 1.0 means every region fully used the threads it enlisted.
  double ParallelEfficiency() const {
    return capacity_seconds > 0.0 ? busy_seconds / capacity_seconds : 1.0;
  }

  // Efficiency of the window between an earlier snapshot of *this and now — the
  // per-partition-set signal the PipelineController observes mid-epoch.
  double ParallelEfficiencySince(const ComputeStats& since) const {
    const double busy = busy_seconds - since.busy_seconds;
    const double capacity = capacity_seconds - since.capacity_seconds;
    return capacity > 0.0 ? busy / capacity : 1.0;
  }

  // busy / wall: the effective speedup over running the same chunks serially.
  double Speedup() const {
    return wall_seconds > 0.0 ? busy_seconds / wall_seconds : 1.0;
  }
};

// Handle the trainers thread through encoder/decoder/optimizer/storage alongside
// the pipeline config. Null pool (or a 1-thread pool) runs every chunk on the
// calling thread — same chunks, same order, same bits.
struct ComputeContext {
  ThreadPool* pool = nullptr;    // shared pool; nullptr = serial execution
  ComputeStats* stats = nullptr; // optional timing sink (single consumer thread)
};

// Number of fixed chunks for n elements at the given grain (0 when n <= 0).
int64_t ComputeChunkCount(int64_t n, int64_t grain);

// Runs body(chunk, begin, end) for every fixed chunk of [0, n). Chunks may execute
// concurrently; bodies must write disjoint memory. `ctx` may be null (serial).
void ForEachChunk(const ComputeContext* ctx, int64_t n, int64_t grain,
                  const std::function<void(int64_t, int64_t, int64_t)>& body);

// Runs body over all chunks (possibly in parallel), then combine(chunk) strictly in
// ascending chunk order on the calling thread. Use for kernels with cross-chunk
// accumulators: body writes a per-chunk partial, combine folds it in fixed order.
void ForEachChunkOrdered(const ComputeContext* ctx, int64_t n, int64_t grain,
                         const std::function<void(int64_t, int64_t, int64_t)>& body,
                         const std::function<void(int64_t)>& combine);

}  // namespace mariusgnn

#endif  // SRC_UTIL_COMPUTE_H_
