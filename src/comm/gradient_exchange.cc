#include "src/comm/gradient_exchange.h"

#include <utility>

#include "src/comm/process_group_exchange.h"
#include "src/util/check.h"

namespace mariusgnn {

GradientExchange::~GradientExchange() = default;

CommStats GradientExchange::ConsumeStats() {
  return std::exchange(stats_, CommStats());
}

const ReducedStep& LocalExchange::Exchange(const GradientStep& step) {
  result_.losses.assign(1, step.loss);
  result_.contributed.assign(1, step.has_batch ? 1 : 0);
  result_.dense = nullptr;  // apply p.grad in place — the zero-copy identity
  result_.sparse_nodes = step.sparse_nodes;
  result_.sparse_grads = step.sparse_grads;
  return result_;
}

std::unique_ptr<GradientExchange> CreateGradientExchange(
    const ReplicaOptions& options) {
  MG_CHECK_MSG(options.world_size >= 1, "replica.world_size must be >= 1");
  MG_CHECK_MSG(options.rank >= 0 && options.rank < options.world_size,
               "replica.rank must be in [0, world_size)");
  if (options.world_size == 1) {
    return std::make_unique<LocalExchange>();
  }
  return std::make_unique<ProcessGroupExchange>(options);
}

}  // namespace mariusgnn
