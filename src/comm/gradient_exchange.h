// Gradient-exchange seam: every gradient a trainer produces — the dense
// GNN/decoder parameter gradients and the touched-row sparse embedding
// gradients — flows through a GradientExchange before the optimizer applies it.
//
// The seam is what makes multi-replica data-parallel training a storage/comm
// concern instead of a trainer concern. Following the BytePS dense/sparse
// split, dense parameters take an allreduce-style ordered fold (the same
// fixed-reduction-order contract ComputeContext enforces within a process,
// extended across ranks), while sparse embedding gradients exchange only the
// touched rows, merged in ascending rank order.
//
// Two implementations:
//  - LocalExchange: the world_size == 1 identity. Zero-copy — the reduced step
//    aliases the caller's tensors and the dense result is "apply p.grad in
//    place", so single-replica trajectories through the seam are bitwise
//    identical to the pre-seam code path (the golden-trajectory tests pin this).
//  - ProcessGroupExchange (process_group_exchange.h): N processes over
//    localhost TCP in a star around rank 0; serialize → transport run as
//    chained async stages on the BoundedQueue/exec-loop pattern so the send
//    side overlaps stage-3 compute, then ordered-fold reduce → broadcast →
//    apply. Every rank applies the identical broadcast bytes, so replicas stay
//    bitwise-identical and end every epoch with the same determinism hash
//    (checked by ExchangeEpochHash; docs/DISTRIBUTED.md).
//
// Loss sharing rides the same exchange: each rank contributes its batch's mean
// loss, and the reduced step carries every rank's loss in ascending rank order
// — the global batch order — so all replicas fold the identical loss stream
// into their determinism hash and epoch-loss accumulator.
#ifndef SRC_COMM_GRADIENT_EXCHANGE_H_
#define SRC_COMM_GRADIENT_EXCHANGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/nn/parameter.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace mariusgnn {

// Multi-replica data-parallel training (docs/DISTRIBUTED.md): world_size
// processes run the same config and graph; rank r consumes the global batch
// indices g with g % world_size == r, and every gradient flows through the
// exchange before the optimizer applies it. The defaults select the
// single-replica LocalExchange.
struct ReplicaOptions {
  int32_t rank = 0;
  int32_t world_size = 1;
  // Transport for world_size > 1: rank 0 listens on host:port (localhost TCP)
  // and every other rank connects, retrying until connect_timeout_seconds.
  // port 0 is rejected unless listen_fd supplies the socket.
  std::string host = "127.0.0.1";
  int32_t port = 0;
  double connect_timeout_seconds = 20.0;
  // Test seam: an already-bound-and-listening socket fd that rank 0 adopts
  // (fork-based tests bind port 0 before forking, so the chosen port can never
  // collide with another process). -1 = bind host:port normally.
  int32_t listen_fd = -1;
};

// Comm accounting drained by ConsumeStats. blocking_seconds is time the
// training thread spent waiting inside Exchange (the synchronous part of the
// stall); background_seconds is exec-loop busy time (serialize + transport)
// that overlaps stage-3 compute. EpochStats::AccumulateComm turns the pair
// into the excess-over-overlap stall convention io_seconds already uses.
struct CommStats {
  double blocking_seconds = 0.0;
  double background_seconds = 0.0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
};

// One rank's contribution to one exchange step. When the global batch count is
// not divisible by world_size, trailing steps on batchless ranks participate
// with has_batch = false (no gradients, no loss) so every rank performs the
// same number of exchanges per segment and applies the same reduced updates.
struct GradientStep {
  bool has_batch = true;
  float loss = 0.0f;
  // Dense parameters whose .grad holds this batch's gradient (null or empty
  // when has_batch is false).
  const std::vector<Parameter*>* dense = nullptr;
  // Touched-row sparse embedding gradient: sparse_grads row i is the gradient
  // for node sparse_nodes[i]. Null when the task has no sparse table.
  const std::vector<int64_t>* sparse_nodes = nullptr;
  const Tensor* sparse_grads = nullptr;
};

// The reduction every rank applies after one exchange step. Pointer members
// alias buffers owned by the exchange (or, for LocalExchange, the caller's
// GradientStep); they stay valid until the next Exchange call.
struct ReducedStep {
  // Per-rank mean losses in ascending rank order and whether each rank had a
  // batch this step; ranks fold exactly the contributed losses, in order.
  std::vector<float> losses;
  std::vector<uint8_t> contributed;
  // Summed dense gradients in parameter order. nullptr means "apply each
  // parameter's own .grad in place" (the LocalExchange zero-copy identity).
  const std::vector<Tensor>* dense = nullptr;
  // Merged touched rows: per-node sums folded in ascending rank order, node
  // list deduplicated in first-touch order. Null/empty when no rank touched
  // sparse rows this step.
  const std::vector<int64_t>* sparse_nodes = nullptr;
  const Tensor* sparse_grads = nullptr;
};

class GradientExchange {
 public:
  virtual ~GradientExchange();

  virtual int32_t rank() const = 0;
  virtual int32_t world() const = 0;

  // Contributes this rank's step and returns the reduction every rank must
  // apply. Blocks until the reduction is available; collective — all ranks
  // must call it the same number of times per segment. The returned reference
  // is invalidated by the next Exchange call.
  virtual const ReducedStep& Exchange(const GradientStep& step) = 0;

  // Epoch-end cross-replica determinism check: gathers every rank's epoch
  // hash, reports a comm.replica_hash RV violation on any disagreement with
  // rank 0, and returns rank 0's hash. Identity for world == 1.
  virtual uint64_t ExchangeEpochHash(uint64_t local_hash) = 0;

  // Rendezvous barrier: no rank returns until every rank has entered. The
  // shared-storage write-back contract rides on it — each rank drains its own
  // async partition write-backs and then calls Barrier() before any rank
  // re-reads a just-evicted partition from the shared file, so a reader can
  // never observe a stale or torn partition image. Collective — all ranks
  // must make matched calls. No-op identity for world == 1.
  virtual void Barrier() {}

  // Drains the accumulated comm accounting (resets to zero). Virtual so
  // implementations with async stages can fold in their loop busy time.
  virtual CommStats ConsumeStats();

 protected:
  CommStats stats_;
};

// world_size == 1 identity: the reduced step aliases the caller's GradientStep
// and leaves dense == nullptr so the optimizer applies p.grad with no copy.
class LocalExchange : public GradientExchange {
 public:
  int32_t rank() const override { return 0; }
  int32_t world() const override { return 1; }
  const ReducedStep& Exchange(const GradientStep& step) override;
  uint64_t ExchangeEpochHash(uint64_t local_hash) override { return local_hash; }

 private:
  ReducedStep result_;
};

// Builds the exchange for `options`: LocalExchange when world_size == 1,
// ProcessGroupExchange otherwise (construction blocks until all ranks connect).
std::unique_ptr<GradientExchange> CreateGradientExchange(
    const ReplicaOptions& options);

// The one batch-index → replica/seed derivation both trainers share, so rank
// partitioning cannot drift between them: global batch g is consumed by rank
// g % world, rank r's l-th local batch is g = l * world + r, and the batch's
// RNG stream is MixSeed(run_seed, g). world == 1 collapses to g == l — the
// historical single-consumer derivation, bit for bit.
struct ReplicaBatchPartition {
  int32_t rank = 0;
  int32_t world = 1;

  int64_t GlobalIndex(int64_t local_index) const {
    return local_index * world + rank;
  }

  // Batches this rank consumes out of `global_batches`.
  int64_t LocalCount(int64_t global_batches) const {
    if (global_batches <= rank) {
      return 0;
    }
    return (global_batches - 1 - rank) / world + 1;
  }

  // Exchange steps every rank must perform for `global_batches` (== rank 0's
  // LocalCount; ranks short of this run trailing has_batch=false steps).
  int64_t StepCount(int64_t global_batches) const {
    return (global_batches + world - 1) / world;
  }

  static uint64_t BatchSeed(uint64_t run_seed, int64_t global_index) {
    return MixSeed(run_seed, static_cast<uint64_t>(global_index));
  }
};

}  // namespace mariusgnn

#endif  // SRC_COMM_GRADIENT_EXCHANGE_H_
