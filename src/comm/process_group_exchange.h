// Multi-process gradient exchange over localhost TCP (docs/DISTRIBUTED.md).
//
// Topology is a star around rank 0: the coordinator accepts world-1
// connections at construction; every step, each rank ships its contribution
// (loss + dense grads + touched sparse rows), the coordinator folds them in
// ascending rank order (comm.fold_order monitored), and broadcasts one reduced
// step that every rank — coordinator included — applies byte-identically.
//
// The send side runs as chained async stages on the BoundedQueue/exec-loop
// pattern the pipeline already uses: Exchange() enqueues a serialize job whose
// completion chains a transport job, then blocks only on the receive, so
// serialization and the socket write overlap stage-3 compute of the next
// batch on the other ranks. Any transport failure (peer died, connection
// dropped) fails loudly via MG_CHECK before anything is applied — a step is
// applied in full on every rank or the process aborts; there is no partial
// apply.
#ifndef SRC_COMM_PROCESS_GROUP_EXCHANGE_H_
#define SRC_COMM_PROCESS_GROUP_EXCHANGE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/comm/gradient_exchange.h"
#include "src/pipeline/queue.h"
#include "src/util/rv_monitor.h"

namespace mariusgnn {

// One rank's deserialized contribution to a step reduction (the coordinator's
// working form; exposed for the ordered-fold tests).
struct StepContribution {
  int32_t rank = 0;
  bool has_batch = false;
  float loss = 0.0f;
  std::vector<std::vector<float>> dense;  // per parameter, raw gradient data
  std::vector<int64_t> sparse_nodes;
  std::vector<float> sparse_grads;  // sparse_nodes.size() x sparse_dim
  int64_t sparse_dim = 0;
};

// The coordinator's fold product (serialized into the broadcast).
struct FoldedStep {
  std::vector<float> losses;         // ascending rank order
  std::vector<uint8_t> contributed;  // ascending rank order
  std::vector<std::vector<float>> dense;
  std::vector<int64_t> sparse_nodes;  // first-touch order of the ascending fold
  std::vector<float> sparse_grads;
  int64_t sparse_dim = 0;
};

// Folds `contributions` in ascending RANK order — independent of the
// container's (arrival) order, which is what makes the reduction deterministic
// across send-order permutations. Dense gradients sum parameter-wise starting
// from the lowest contributing rank's buffer; sparse rows merge per node
// (first-touch node order, per-row sums in rank order). `monitor` observes
// each folded rank so comm.fold_order catches any ordering bug.
FoldedStep OrderedFold(const std::vector<StepContribution>& contributions,
                       int32_t world, RvFoldOrderMonitor* monitor);

// Wire codecs for the two payload shapes (exposed for the protocol-hardening
// tests). The parsers validate every on-wire length and element count against
// the remaining payload before sizing anything from it, and MG_CHECK-abort
// ("truncated message") on corrupt or desynced frames instead of allocating.
std::vector<uint8_t> SerializeContribution(const GradientStep& step);
StepContribution ParseContribution(const std::vector<uint8_t>& payload,
                                   int32_t rank);
std::vector<uint8_t> SerializeFolded(const FoldedStep& folded);
FoldedStep ParseFolded(const std::vector<uint8_t>& payload, int32_t world);

// Single-thread job loop on a BoundedQueue — the pipeline's exec-loop shape,
// reused for the comm stages. Submit blocks when the queue is full
// (backpressure toward the trainer); the destructor drains remaining jobs.
class CommExecLoop {
 public:
  explicit CommExecLoop(size_t capacity = 8);
  ~CommExecLoop();

  CommExecLoop(const CommExecLoop&) = delete;
  CommExecLoop& operator=(const CommExecLoop&) = delete;

  void Submit(std::function<void()> job);

  // Blocks until every job submitted before this call has run.
  void Flush();

  // Seconds the loop spent running jobs since the last call.
  double ConsumeBusySeconds();

 private:
  BoundedQueue<std::function<void()>> queue_;
  std::atomic<int64_t> busy_nanos_{0};
  std::thread thread_;
};

class ProcessGroupExchange : public GradientExchange {
 public:
  // Blocks until all world_size ranks are connected (rank 0 accepts, others
  // connect with retry up to options.connect_timeout_seconds).
  explicit ProcessGroupExchange(const ReplicaOptions& options);
  ~ProcessGroupExchange() override;

  int32_t rank() const override { return rank_; }
  int32_t world() const override { return world_; }
  const ReducedStep& Exchange(const GradientStep& step) override;
  uint64_t ExchangeEpochHash(uint64_t local_hash) override;
  void Barrier() override;
  CommStats ConsumeStats() override;

 private:
  void ConnectStar(const ReplicaOptions& options);
  // Serialize this rank's contribution and ship it to the coordinator as
  // chained serialize → transport exec-loop stages.
  void SendContributionAsync(const GradientStep& step);
  // Coordinator: receive world-1 contributions, ordered-fold with own step,
  // broadcast the result; every rank then loads folded_/result_ from it.
  void CoordinateStep(const GradientStep& step);
  void LoadResultFromFolded();

  // Framed blocking socket IO; MG_CHECK-aborts on short reads/writes so a
  // dropped peer can never yield a partial apply.
  void SendFrame(int fd, uint32_t kind, const std::vector<uint8_t>& payload);
  std::vector<uint8_t> RecvFrame(int fd, uint32_t expect_kind);

  int32_t rank_ = 0;
  int32_t world_ = 1;
  // rank != 0: peers_[0] is the coordinator socket. rank 0: peers_[r] is the
  // socket to rank r (index 0 unused).
  std::vector<int> peers_;

  // Chained async send stages (see file comment).
  std::unique_ptr<CommExecLoop> serialize_loop_;
  std::unique_ptr<CommExecLoop> transport_loop_;

  RvFoldOrderMonitor fold_monitor_{RvInvariant::kCommFoldOrder};

  // Bytes written by exec-loop transport jobs; drained into stats_ by
  // ConsumeStats (the trainer thread) so the counters stay race-free.
  std::atomic<uint64_t> bytes_sent_async_{0};

  // Current step's reduction, rebuilt by each Exchange call.
  FoldedStep folded_;
  std::vector<Tensor> result_dense_;
  std::vector<int64_t> result_nodes_;
  Tensor result_grads_;
  ReducedStep result_;
};

}  // namespace mariusgnn

#endif  // SRC_COMM_PROCESS_GROUP_EXCHANGE_H_
