#include "src/comm/process_group_exchange.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <unordered_map>
#include <utility>

#include "src/util/check.h"
#include "src/util/timer.h"

namespace mariusgnn {

namespace {

// Message kinds on the star's framed streams ([u32 kind][u64 len][payload]).
constexpr uint32_t kMsgHello = 1;
constexpr uint32_t kMsgStep = 2;
constexpr uint32_t kMsgStepResult = 3;
constexpr uint32_t kMsgEpochHash = 4;
constexpr uint32_t kMsgEpochHashResult = 5;
constexpr uint32_t kMsgBarrier = 6;
constexpr uint32_t kMsgBarrierResult = 7;

constexpr size_t kFrameHeaderBytes = sizeof(uint32_t) + sizeof(uint64_t);

// Full blocking write; aborts on any failure — a dead peer must kill the
// training run before a partial reduction can ever be applied.
void WriteAll(int fd, const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    MG_CHECK_MSG(n > 0,
                 "gradient exchange: connection dropped mid-send (replica died?)");
    p += static_cast<size_t>(n);
    len -= static_cast<size_t>(n);
  }
}

void ReadAll(int fd, void* data, size_t len) {
  uint8_t* p = static_cast<uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::recv(fd, p, len, 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    MG_CHECK_MSG(n > 0,
                 "gradient exchange: connection dropped mid-receive (replica died?)");
    p += static_cast<size_t>(n);
    len -= static_cast<size_t>(n);
  }
}

void AppendBytes(std::vector<uint8_t>* buf, const void* data, size_t len) {
  if (len == 0) {
    return;  // data may be null (empty vector's data()) — not a valid range
  }
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf->insert(buf->end(), p, p + len);
}

template <typename T>
void AppendVal(std::vector<uint8_t>* buf, T v) {
  AppendBytes(buf, &v, sizeof(v));
}

// Bounds-checked read cursor over a received payload.
struct Cursor {
  const uint8_t* p;
  const uint8_t* end;

  size_t Remaining() const { return static_cast<size_t>(end - p); }

  void Read(void* out, size_t len) {
    if (len == 0) {
      return;  // out may be null (empty vector's data()); memcpy requires valid
    }
    // Compare against Remaining() rather than `p + len <= end`: for a huge
    // corrupt len the pointer addition itself would overflow (UB) before the
    // comparison ever ran.
    MG_CHECK_MSG(len <= Remaining(), "gradient exchange: truncated message");
    std::memcpy(out, p, len);
    p += len;
  }

  template <typename T>
  T Get() {
    T v;
    Read(&v, sizeof(v));
    return v;
  }
};

}  // namespace

std::vector<uint8_t> SerializeContribution(const GradientStep& step) {
  std::vector<uint8_t> buf;
  AppendVal<uint8_t>(&buf, step.has_batch ? 1 : 0);
  AppendVal<float>(&buf, step.loss);
  const uint32_t num_dense =
      (step.has_batch && step.dense != nullptr)
          ? static_cast<uint32_t>(step.dense->size())
          : 0;
  AppendVal<uint32_t>(&buf, num_dense);
  for (uint32_t i = 0; i < num_dense; ++i) {
    const Tensor& g = (*step.dense)[i]->grad;
    AppendVal<uint64_t>(&buf, static_cast<uint64_t>(g.size()));
    AppendBytes(&buf, g.data(), static_cast<size_t>(g.size()) * sizeof(float));
  }
  const bool has_sparse = step.has_batch && step.sparse_nodes != nullptr &&
                          !step.sparse_nodes->empty();
  const uint64_t rows = has_sparse ? step.sparse_nodes->size() : 0;
  const int64_t dim = has_sparse ? step.sparse_grads->cols() : 0;
  AppendVal<uint64_t>(&buf, rows);
  AppendVal<int64_t>(&buf, dim);
  if (has_sparse) {
    MG_CHECK(step.sparse_grads->rows() == static_cast<int64_t>(rows));
    AppendBytes(&buf, step.sparse_nodes->data(), rows * sizeof(int64_t));
    AppendBytes(&buf, step.sparse_grads->data(),
                rows * static_cast<size_t>(dim) * sizeof(float));
  }
  return buf;
}

StepContribution ParseContribution(const std::vector<uint8_t>& payload,
                                   int32_t rank) {
  Cursor c{payload.data(), payload.data() + payload.size()};
  StepContribution out;
  out.rank = rank;
  out.has_batch = c.Get<uint8_t>() != 0;
  out.loss = c.Get<float>();
  // Every on-wire count is validated against the REMAINING payload before
  // anything is sized from it: a corrupt or desynced frame must abort as a
  // truncated message, never trigger a giant allocation. Each dense entry
  // carries at least its own u64 length; each sparse row carries at least one
  // node id / one float per dim (division also sidesteps rows * dim overflow).
  const uint32_t num_dense = c.Get<uint32_t>();
  MG_CHECK_MSG(num_dense <= c.Remaining() / sizeof(uint64_t),
               "gradient exchange: truncated message");
  out.dense.resize(num_dense);
  for (uint32_t i = 0; i < num_dense; ++i) {
    const uint64_t elems = c.Get<uint64_t>();
    MG_CHECK_MSG(elems <= c.Remaining() / sizeof(float),
                 "gradient exchange: truncated message");
    out.dense[i].resize(elems);
    c.Read(out.dense[i].data(), elems * sizeof(float));
  }
  const uint64_t rows = c.Get<uint64_t>();
  out.sparse_dim = c.Get<int64_t>();
  MG_CHECK_MSG(out.sparse_dim >= 0 && (rows == 0) == (out.sparse_dim == 0),
               "gradient exchange: corrupt sparse geometry");
  MG_CHECK_MSG(rows <= c.Remaining() / sizeof(int64_t),
               "gradient exchange: truncated message");
  out.sparse_nodes.resize(rows);
  c.Read(out.sparse_nodes.data(), rows * sizeof(int64_t));
  MG_CHECK_MSG(out.sparse_dim == 0 ||
                   rows <= c.Remaining() / sizeof(float) /
                               static_cast<uint64_t>(out.sparse_dim),
               "gradient exchange: truncated message");
  out.sparse_grads.resize(rows * static_cast<size_t>(out.sparse_dim));
  c.Read(out.sparse_grads.data(), out.sparse_grads.size() * sizeof(float));
  return out;
}

namespace {

// The coordinator's own contribution, copied out of the step (the broadcast
// serializer and the fold both outlive the caller's tensors' gradient values).
StepContribution ContributionFromStep(const GradientStep& step, int32_t rank) {
  StepContribution out;
  out.rank = rank;
  out.has_batch = step.has_batch;
  out.loss = step.loss;
  if (step.has_batch && step.dense != nullptr) {
    out.dense.reserve(step.dense->size());
    for (const Parameter* p : *step.dense) {
      out.dense.emplace_back(p->grad.data(), p->grad.data() + p->grad.size());
    }
  }
  if (step.has_batch && step.sparse_nodes != nullptr &&
      !step.sparse_nodes->empty()) {
    out.sparse_nodes = *step.sparse_nodes;
    out.sparse_dim = step.sparse_grads->cols();
    out.sparse_grads.assign(step.sparse_grads->data(),
                            step.sparse_grads->data() + step.sparse_grads->size());
  }
  return out;
}

}  // namespace

std::vector<uint8_t> SerializeFolded(const FoldedStep& folded) {
  std::vector<uint8_t> buf;
  const uint32_t world = static_cast<uint32_t>(folded.losses.size());
  AppendVal<uint32_t>(&buf, world);
  for (uint32_t r = 0; r < world; ++r) {
    AppendVal<uint8_t>(&buf, folded.contributed[r]);
    AppendVal<float>(&buf, folded.losses[r]);
  }
  AppendVal<uint32_t>(&buf, static_cast<uint32_t>(folded.dense.size()));
  for (const std::vector<float>& g : folded.dense) {
    AppendVal<uint64_t>(&buf, static_cast<uint64_t>(g.size()));
    AppendBytes(&buf, g.data(), g.size() * sizeof(float));
  }
  AppendVal<uint64_t>(&buf, static_cast<uint64_t>(folded.sparse_nodes.size()));
  AppendVal<int64_t>(&buf, folded.sparse_dim);
  AppendBytes(&buf, folded.sparse_nodes.data(),
              folded.sparse_nodes.size() * sizeof(int64_t));
  AppendBytes(&buf, folded.sparse_grads.data(),
              folded.sparse_grads.size() * sizeof(float));
  return buf;
}

FoldedStep ParseFolded(const std::vector<uint8_t>& payload, int32_t world) {
  Cursor c{payload.data(), payload.data() + payload.size()};
  FoldedStep out;
  const uint32_t w = c.Get<uint32_t>();
  MG_CHECK_MSG(w == static_cast<uint32_t>(world),
               "gradient exchange: world-size mismatch in reduced step");
  out.losses.resize(w);
  out.contributed.resize(w);
  for (uint32_t r = 0; r < w; ++r) {
    out.contributed[r] = c.Get<uint8_t>();
    out.losses[r] = c.Get<float>();
  }
  // Same count-vs-remaining validation as ParseContribution: never size a
  // vector from an on-wire count the payload cannot actually back.
  const uint32_t num_dense = c.Get<uint32_t>();
  MG_CHECK_MSG(num_dense <= c.Remaining() / sizeof(uint64_t),
               "gradient exchange: truncated message");
  out.dense.resize(num_dense);
  for (uint32_t i = 0; i < num_dense; ++i) {
    const uint64_t elems = c.Get<uint64_t>();
    MG_CHECK_MSG(elems <= c.Remaining() / sizeof(float),
                 "gradient exchange: truncated message");
    out.dense[i].resize(elems);
    c.Read(out.dense[i].data(), elems * sizeof(float));
  }
  const uint64_t rows = c.Get<uint64_t>();
  out.sparse_dim = c.Get<int64_t>();
  MG_CHECK_MSG(out.sparse_dim >= 0 && (rows == 0) == (out.sparse_dim == 0),
               "gradient exchange: corrupt sparse geometry");
  MG_CHECK_MSG(rows <= c.Remaining() / sizeof(int64_t),
               "gradient exchange: truncated message");
  out.sparse_nodes.resize(rows);
  c.Read(out.sparse_nodes.data(), rows * sizeof(int64_t));
  MG_CHECK_MSG(out.sparse_dim == 0 ||
                   rows <= c.Remaining() / sizeof(float) /
                               static_cast<uint64_t>(out.sparse_dim),
               "gradient exchange: truncated message");
  out.sparse_grads.resize(rows * static_cast<size_t>(out.sparse_dim));
  c.Read(out.sparse_grads.data(), out.sparse_grads.size() * sizeof(float));
  return out;
}

FoldedStep OrderedFold(const std::vector<StepContribution>& contributions,
                       int32_t world, RvFoldOrderMonitor* monitor) {
  FoldedStep out;
  out.losses.assign(static_cast<size_t>(world), 0.0f);
  out.contributed.assign(static_cast<size_t>(world), 0);

  // Index contributions by rank: the fold below walks ranks ascending, so the
  // result is independent of the container's (network-arrival) order.
  std::vector<const StepContribution*> by_rank(static_cast<size_t>(world), nullptr);
  for (const StepContribution& c : contributions) {
    MG_CHECK_MSG(c.rank >= 0 && c.rank < world,
                 "gradient exchange: contribution rank out of range");
    MG_CHECK_MSG(by_rank[static_cast<size_t>(c.rank)] == nullptr,
                 "gradient exchange: duplicate contribution for one rank");
    by_rank[static_cast<size_t>(c.rank)] = &c;
  }

  if (monitor != nullptr) {
    monitor->BeginReduction();
  }
  bool first_dense = true;
  std::unordered_map<int64_t, size_t> row_of;
  for (int32_t r = 0; r < world; ++r) {
    const StepContribution* c = by_rank[static_cast<size_t>(r)];
    MG_CHECK_MSG(c != nullptr, "gradient exchange: missing contribution");
    out.losses[static_cast<size_t>(r)] = c->loss;
    out.contributed[static_cast<size_t>(r)] = c->has_batch ? 1 : 0;
    if (!c->has_batch) {
      continue;
    }
    if (monitor != nullptr) {
      monitor->ObserveFold(r);
    }
    // Dense: the lowest contributing rank's buffers seed the sums (preserving
    // its exact bits, including signed zeros), later ranks add in rank order.
    if (first_dense) {
      out.dense = c->dense;
      first_dense = false;
    } else {
      MG_CHECK_MSG(out.dense.size() == c->dense.size(),
                   "gradient exchange: dense parameter count mismatch");
      for (size_t i = 0; i < out.dense.size(); ++i) {
        MG_CHECK(out.dense[i].size() == c->dense[i].size());
        float* acc = out.dense[i].data();
        const float* add = c->dense[i].data();
        for (size_t j = 0; j < out.dense[i].size(); ++j) {
          acc[j] += add[j];
        }
      }
    }
    // Sparse: merge touched rows per node. The merged node list is in
    // first-touch order of this ascending fold; repeated nodes sum in rank
    // order — both deterministic for any arrival order.
    if (!c->sparse_nodes.empty()) {
      if (out.sparse_dim == 0) {
        out.sparse_dim = c->sparse_dim;
      }
      MG_CHECK_MSG(out.sparse_dim == c->sparse_dim,
                   "gradient exchange: sparse dim mismatch");
      const size_t dim = static_cast<size_t>(out.sparse_dim);
      for (size_t k = 0; k < c->sparse_nodes.size(); ++k) {
        const int64_t node = c->sparse_nodes[k];
        const float* row = c->sparse_grads.data() + k * dim;
        auto [it, inserted] = row_of.emplace(node, out.sparse_nodes.size());
        if (inserted) {
          out.sparse_nodes.push_back(node);
          out.sparse_grads.insert(out.sparse_grads.end(), row, row + dim);
        } else {
          float* acc = out.sparse_grads.data() + it->second * dim;
          for (size_t j = 0; j < dim; ++j) {
            acc[j] += row[j];
          }
        }
      }
    }
  }
  return out;
}

CommExecLoop::CommExecLoop(size_t capacity) : queue_(capacity) {
  thread_ = std::thread([this] {
    while (std::optional<std::function<void()>> job = queue_.Pop()) {
      WallTimer timer;
      (*job)();
      busy_nanos_.fetch_add(static_cast<int64_t>(timer.Seconds() * 1e9),
                            std::memory_order_relaxed);
    }
  });
}

CommExecLoop::~CommExecLoop() {
  queue_.Close();  // Pop drains queued jobs before returning nullopt
  thread_.join();
}

void CommExecLoop::Submit(std::function<void()> job) {
  MG_CHECK_MSG(queue_.Push(std::move(job)), "comm exec loop is closed");
}

void CommExecLoop::Flush() {
  std::promise<void> done;
  std::future<void> fut = done.get_future();
  Submit([&done] { done.set_value(); });
  fut.wait();
}

double CommExecLoop::ConsumeBusySeconds() {
  return static_cast<double>(busy_nanos_.exchange(0, std::memory_order_relaxed)) *
         1e-9;
}

ProcessGroupExchange::ProcessGroupExchange(const ReplicaOptions& options)
    : rank_(options.rank), world_(options.world_size) {
  MG_CHECK_MSG(world_ >= 2, "ProcessGroupExchange requires world_size >= 2");
  ConnectStar(options);
  serialize_loop_ = std::make_unique<CommExecLoop>();
  transport_loop_ = std::make_unique<CommExecLoop>();
}

ProcessGroupExchange::~ProcessGroupExchange() {
  // Drain the chained stages before closing sockets: serialize jobs may still
  // enqueue transport jobs, transport jobs still write to peers_.
  serialize_loop_.reset();
  transport_loop_.reset();
  for (int fd : peers_) {
    if (fd >= 0) {
      ::close(fd);
    }
  }
}

void ProcessGroupExchange::ConnectStar(const ReplicaOptions& options) {
  if (rank_ == 0) {
    int listen_fd = options.listen_fd;
    if (listen_fd < 0) {
      MG_CHECK_MSG(options.port > 0,
                   "replica.port (or replica.listen_fd) must be set for rank 0");
      listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
      MG_CHECK_MSG(listen_fd >= 0, "gradient exchange: socket() failed");
      const int one = 1;
      ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<uint16_t>(options.port));
      MG_CHECK_MSG(::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) == 1,
                   "replica.host must be an IPv4 address");
      MG_CHECK_MSG(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)) == 0,
                   "gradient exchange: bind failed (port in use?)");
      MG_CHECK_MSG(::listen(listen_fd, world_) == 0,
                   "gradient exchange: listen failed");
    }
    peers_.assign(static_cast<size_t>(world_), -1);
    for (int32_t i = 1; i < world_; ++i) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      MG_CHECK_MSG(fd >= 0, "gradient exchange: accept failed");
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      const std::vector<uint8_t> hello = RecvFrame(fd, kMsgHello);
      Cursor c{hello.data(), hello.data() + hello.size()};
      const int32_t peer_rank = c.Get<int32_t>();
      MG_CHECK_MSG(peer_rank >= 1 && peer_rank < world_ &&
                       peers_[static_cast<size_t>(peer_rank)] < 0,
                   "gradient exchange: bad or duplicate hello rank");
      peers_[static_cast<size_t>(peer_rank)] = fd;
    }
    ::close(listen_fd);
  } else {
    MG_CHECK_MSG(options.port > 0, "replica.port must be set");
    int fd = -1;
    WallTimer timer;
    while (true) {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      MG_CHECK_MSG(fd >= 0, "gradient exchange: socket() failed");
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<uint16_t>(options.port));
      MG_CHECK_MSG(::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) == 1,
                   "replica.host must be an IPv4 address");
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
        break;
      }
      ::close(fd);
      fd = -1;
      MG_CHECK_MSG(timer.Seconds() < options.connect_timeout_seconds,
                   "gradient exchange: could not reach rank 0 before timeout");
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    peers_.assign(1, fd);
    std::vector<uint8_t> hello;
    AppendVal<int32_t>(&hello, rank_);
    SendFrame(fd, kMsgHello, hello);
    stats_.bytes_sent += kFrameHeaderBytes + hello.size();
  }
}

void ProcessGroupExchange::SendFrame(int fd, uint32_t kind,
                                     const std::vector<uint8_t>& payload) {
  const uint64_t len = payload.size();
  WriteAll(fd, &kind, sizeof(kind));
  WriteAll(fd, &len, sizeof(len));
  if (len > 0) {
    WriteAll(fd, payload.data(), payload.size());
  }
}

std::vector<uint8_t> ProcessGroupExchange::RecvFrame(int fd,
                                                     uint32_t expect_kind) {
  uint32_t kind = 0;
  uint64_t len = 0;
  ReadAll(fd, &kind, sizeof(kind));
  MG_CHECK_MSG(kind == expect_kind,
               "gradient exchange: unexpected message kind (desynced stream)");
  ReadAll(fd, &len, sizeof(len));
  std::vector<uint8_t> payload(len);
  if (len > 0) {
    ReadAll(fd, payload.data(), payload.size());
  }
  stats_.bytes_received += kFrameHeaderBytes + payload.size();
  return payload;
}

void ProcessGroupExchange::SendContributionAsync(const GradientStep& step) {
  // Chained stages: serialize on one loop, ship on the other. The caller's
  // gradient tensors stay valid and unmodified until Exchange returns (the
  // optimizer applies only after the reduced step comes back), and Exchange
  // cannot return before this send completes — rank 0 replies only after
  // receiving it — so capturing the step by value (pointers) is safe.
  auto buf = std::make_shared<std::vector<uint8_t>>();
  serialize_loop_->Submit([this, step, buf] {
    *buf = SerializeContribution(step);
    transport_loop_->Submit([this, buf] {
      SendFrame(peers_[0], kMsgStep, *buf);
      bytes_sent_async_.fetch_add(kFrameHeaderBytes + buf->size(),
                                  std::memory_order_relaxed);
    });
  });
}

void ProcessGroupExchange::CoordinateStep(const GradientStep& step) {
  std::vector<StepContribution> contributions;
  contributions.reserve(static_cast<size_t>(world_));
  contributions.push_back(ContributionFromStep(step, 0));
  for (int32_t r = 1; r < world_; ++r) {
    contributions.push_back(
        ParseContribution(RecvFrame(peers_[static_cast<size_t>(r)], kMsgStep), r));
  }
  folded_ = OrderedFold(contributions, world_, &fold_monitor_);
  // One serialized image, broadcast to every follower: all ranks apply the
  // identical bytes (the coordinator applies folded_ directly — the floats it
  // just serialized).
  auto buf = std::make_shared<std::vector<uint8_t>>(SerializeFolded(folded_));
  for (int32_t r = 1; r < world_; ++r) {
    const int fd = peers_[static_cast<size_t>(r)];
    transport_loop_->Submit([this, fd, buf] {
      SendFrame(fd, kMsgStepResult, *buf);
      bytes_sent_async_.fetch_add(kFrameHeaderBytes + buf->size(),
                                  std::memory_order_relaxed);
    });
  }
}

void ProcessGroupExchange::LoadResultFromFolded() {
  result_.losses = std::move(folded_.losses);
  result_.contributed = std::move(folded_.contributed);
  result_dense_.clear();
  result_dense_.reserve(folded_.dense.size());
  for (std::vector<float>& g : folded_.dense) {
    const int64_t elems = static_cast<int64_t>(g.size());
    result_dense_.emplace_back(1, elems, std::move(g));
  }
  result_.dense = &result_dense_;
  const int64_t rows = static_cast<int64_t>(folded_.sparse_nodes.size());
  if (rows > 0) {
    result_nodes_ = std::move(folded_.sparse_nodes);
    result_grads_ =
        Tensor(rows, folded_.sparse_dim, std::move(folded_.sparse_grads));
    result_.sparse_nodes = &result_nodes_;
    result_.sparse_grads = &result_grads_;
  } else {
    result_.sparse_nodes = nullptr;
    result_.sparse_grads = nullptr;
  }
  folded_ = FoldedStep();
}

const ReducedStep& ProcessGroupExchange::Exchange(const GradientStep& step) {
  WallTimer timer;
  if (rank_ == 0) {
    CoordinateStep(step);
  } else {
    SendContributionAsync(step);
    folded_ = ParseFolded(RecvFrame(peers_[0], kMsgStepResult), world_);
  }
  LoadResultFromFolded();
  stats_.blocking_seconds += timer.Seconds();
  return result_;
}

uint64_t ProcessGroupExchange::ExchangeEpochHash(uint64_t local_hash) {
  WallTimer timer;
  // Quiesce the async stages first: the hash frames below are written on this
  // thread and must not interleave with in-flight step frames on the sockets.
  serialize_loop_->Flush();
  transport_loop_->Flush();
  uint64_t agreed = local_hash;
  if (rank_ == 0) {
    for (int32_t r = 1; r < world_; ++r) {
      const std::vector<uint8_t> payload =
          RecvFrame(peers_[static_cast<size_t>(r)], kMsgEpochHash);
      Cursor c{payload.data(), payload.data() + payload.size()};
      const uint64_t peer_hash = c.Get<uint64_t>();
      if (peer_hash != local_hash) {
        RvRuntime::Global().Report(
            RvInvariant::kCommReplicaHash,
            "replica rank " + std::to_string(r) + " epoch hash " +
                std::to_string(peer_hash) + " disagrees with rank 0's " +
                std::to_string(local_hash));
      }
    }
    std::vector<uint8_t> payload;
    AppendVal<uint64_t>(&payload, local_hash);
    for (int32_t r = 1; r < world_; ++r) {
      SendFrame(peers_[static_cast<size_t>(r)], kMsgEpochHashResult, payload);
      stats_.bytes_sent += kFrameHeaderBytes + payload.size();
    }
  } else {
    std::vector<uint8_t> payload;
    AppendVal<uint64_t>(&payload, local_hash);
    SendFrame(peers_[0], kMsgEpochHash, payload);
    stats_.bytes_sent += kFrameHeaderBytes + payload.size();
    const std::vector<uint8_t> resp = RecvFrame(peers_[0], kMsgEpochHashResult);
    Cursor c{resp.data(), resp.data() + resp.size()};
    agreed = c.Get<uint64_t>();
    if (agreed != local_hash) {
      RvRuntime::Global().Report(
          RvInvariant::kCommReplicaHash,
          "replica rank " + std::to_string(rank_) + " epoch hash " +
              std::to_string(local_hash) + " disagrees with rank 0's " +
              std::to_string(agreed));
    }
  }
  stats_.blocking_seconds += timer.Seconds();
  return agreed;
}

void ProcessGroupExchange::Barrier() {
  WallTimer timer;
  // Quiesce the async stages first, like ExchangeEpochHash: the barrier frames
  // are written on this thread and must not interleave with in-flight step
  // frames on the sockets.
  serialize_loop_->Flush();
  transport_loop_->Flush();
  const std::vector<uint8_t> empty;
  if (rank_ == 0) {
    // True rendezvous: receive from ALL ranks before releasing ANY rank, so no
    // rank passes the barrier until every rank has reached it.
    for (int32_t r = 1; r < world_; ++r) {
      RecvFrame(peers_[static_cast<size_t>(r)], kMsgBarrier);
    }
    for (int32_t r = 1; r < world_; ++r) {
      SendFrame(peers_[static_cast<size_t>(r)], kMsgBarrierResult, empty);
      stats_.bytes_sent += kFrameHeaderBytes;
    }
  } else {
    SendFrame(peers_[0], kMsgBarrier, empty);
    stats_.bytes_sent += kFrameHeaderBytes;
    RecvFrame(peers_[0], kMsgBarrierResult);
  }
  stats_.blocking_seconds += timer.Seconds();
}

CommStats ProcessGroupExchange::ConsumeStats() {
  stats_.background_seconds += serialize_loop_->ConsumeBusySeconds() +
                               transport_loop_->ConsumeBusySeconds();
  stats_.bytes_sent += bytes_sent_async_.exchange(0, std::memory_order_relaxed);
  return GradientExchange::ConsumeStats();
}

}  // namespace mariusgnn
