// Two-stage producer/consumer pipeline: batch construction (CPU sampling) overlaps
// with model compute, the core of MariusGNN's pipelined training (Section 3).
#ifndef SRC_PIPELINE_PIPELINE_H_
#define SRC_PIPELINE_PIPELINE_H_

#include <functional>
#include <memory>
#include <thread>

#include "src/pipeline/queue.h"

namespace mariusgnn {

// Runs producer(i) for i in [0, n) on a worker thread, buffering up to
// `queue_capacity` prepared items; consumer(item, i) runs on the calling thread in
// order. Exceptions are not expected (library code aborts via MG_CHECK).
template <typename T>
void RunPipelined(int64_t n, size_t queue_capacity,
                  const std::function<T(int64_t)>& producer,
                  const std::function<void(T&, int64_t)>& consumer) {
  if (n <= 0) {
    return;
  }
  BoundedQueue<T> queue(queue_capacity);
  std::thread worker([&] {
    for (int64_t i = 0; i < n; ++i) {
      if (!queue.Push(producer(i))) {
        return;
      }
    }
    queue.Close();
  });
  for (int64_t i = 0; i < n; ++i) {
    std::optional<T> item = queue.Pop();
    MG_CHECK(item.has_value());
    consumer(*item, i);
  }
  worker.join();
}

}  // namespace mariusgnn

#endif  // SRC_PIPELINE_PIPELINE_H_
