// Multi-stage asynchronous training pipeline (Section 3, Figure 2).
//
// MariusGNN keeps out-of-core training compute-bound by overlapping the CPU-heavy
// stages of an epoch with model compute. This subsystem is the shared engine both
// trainers drive their epochs through:
//
//   stage 1  batch construction — N workers on the shared ThreadPool each pull the
//            next batch index from a ticket counter, build the batch (DENSE/layer-wise
//            sampling + negative sampling), and push it into a BoundedQueue;
//   stage 2  reassembly — the consumer drains the queue into a small reorder buffer
//            and hands batches to the compute callback strictly in batch-index order,
//            so training is bitwise-identical to a serial run for any worker count;
//   stage 3  compute — forward/backward/update runs on the calling thread (the
//            paper's GPU stage), while workers are already sampling future batches.
//
// Determinism contract: the producer callback must depend only on the batch index
// (derive per-batch RNG streams from MixSeed(run_seed, index)), never on which worker
// runs it or in which order batches finish. A window gate keeps workers at most
// queue_capacity + workers batches ahead of the consumer, bounding memory.
//
// PipelineSession is the resumable form of the engine: one session spans an epoch,
// the item stream is announced in segments (one per partition set), and the stage-1
// worker count can be resized at any point between Consume calls — the ticket
// counter, window gate, and reorder buffer survive the resize, so the
// PipelineController can rebalance the stage-1/stage-3 split mid-epoch without
// flushing the pipeline or perturbing the batch stream.
//
// The partition-IO stage of Figure 2 lives in PartitionBuffer::Prefetch (storage
// layer); OrderingPolicy::Lookahead tells the trainer which partitions to stage next.
#ifndef SRC_PIPELINE_TRAINING_PIPELINE_H_
#define SRC_PIPELINE_TRAINING_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "src/pipeline/queue.h"
#include "src/util/check.h"
#include "src/util/rv_monitor.h"
#include "src/util/threadpool.h"

namespace mariusgnn {

struct PipelineSessionOptions {
  // Batch-construction workers. 0 runs everything serially on the calling thread
  // (same batch stream, no threads) — the non-pipelined baseline.
  int workers = 2;
  // Prepared batches buffered between construction and compute (Figure 2's
  // "Pipeline Queue" depth).
  size_t queue_capacity = 4;
  // Pool the workers run on; nullptr = ThreadPool::Global().
  ThreadPool* pool = nullptr;
};

// Per-stage timing breakdown of one pipeline run (or one session segment).
struct PipelineStats {
  double sample_seconds = 0.0;   // total batch-construction time across workers
  double compute_seconds = 0.0;  // total consumer-callback time
  double stall_seconds = 0.0;    // consumer time blocked waiting for the next batch
  int64_t num_items = 0;
  // Stage-1 workers the segment ran with, and the time-weighted mean occupancy of
  // the pipeline queue over the segment as a fraction of its capacity (the
  // back-pressure signal the PipelineController feeds on; 0 for serial runs).
  int workers = 0;
  double queue_occupancy_mean = 0.0;
};

// Adaptive stage-1/stage-3 pool split (the efficiency-hysteresis primitive inside
// PipelineController, kept as its own class because the rule is independently
// useful and independently tested). Sampling workers and compute chunks share one
// ThreadPool; when the stage-3 kernels report low parallel efficiency it is usually
// because epoch-long sampling workers occupy the pool and the compute helpers
// cannot find idle threads. Shrinking the sampling-worker count hands that capacity
// back to compute — the right trade whenever compute (not sampling) is the
// bottleneck, because the queue is full and extra producers only wait on the
// window gate.
//
// The controller moves one worker per observation with hysteresis: shrink while
// efficiency < low_threshold, grow back while > high_threshold, hold in between.
// It only ever changes the *worker count*, which the pipeline's determinism
// contract guarantees can never change results (per-batch seeds + in-order
// consumption), so the adaptive split preserves bitwise-identical loss/MRR
// trajectories by construction even though its decisions are timing-driven.
class AdaptiveWorkerSplit {
 public:
  // Workers stay in [min_workers, max_workers] and start at max_workers. Disabled
  // (or max_workers == 0, the non-pipelined mode) pins workers at max_workers.
  AdaptiveWorkerSplit(bool enabled, int max_workers, int min_workers,
                      double low_threshold, double high_threshold);

  // Sampling workers to use for the next pipeline run.
  int workers() const { return workers_; }

  // Feeds one epoch's ComputeStats::ParallelEfficiency() and returns the updated
  // worker count.
  int Observe(double compute_parallel_efficiency);

 private:
  bool enabled_;
  int max_workers_;
  int min_workers_;
  double low_threshold_;
  double high_threshold_;
  int workers_;
};

// A resumable pipeline run. The logical item stream is open-ended: Extend
// announces more items (workers may start producing them immediately, subject to
// the window gate), Consume delivers the next `count` announced items to the
// consumer strictly in index order, and Resize changes the stage-1 worker count
// in place — items already produced (in the queue or the reorder buffer), the
// ticket counter, and the consumption cursor all survive, so a resize can never
// change what is produced or the order it is consumed in.
//
// Workers never claim an index beyond the announced limit. That is what makes
// per-partition-set segments safe: the producer callback may read per-set state
// (neighbor index, negative sampler, seed) that the caller swaps between
// segments, because no worker can run ahead into a segment that has not been
// announced. The swap is ordered by the gate mutex: state written before
// Extend/Consume is visible to every worker that claims one of the new indices.
//
// Threading: Extend/Consume/Resize/stats must be called from the owning thread
// (the consumer); the producer callback runs on pool workers and must be
// thread-safe + index-deterministic.
class PipelineSession {
 public:
  using Producer = std::function<std::shared_ptr<void>(int64_t index)>;
  using Consumer = std::function<void(void* item, int64_t index)>;

  PipelineSession(PipelineSessionOptions options, Producer produce, Consumer consume);
  ~PipelineSession();

  PipelineSession(const PipelineSession&) = delete;
  PipelineSession& operator=(const PipelineSession&) = delete;

  // Announces `count` more items of the stream. Returns the new announced total.
  int64_t Extend(int64_t count);

  // Consumes the next `count` announced items in index order and returns the
  // segment's stage timings. Requires consumed() + count <= announced().
  PipelineStats Consume(int64_t count);

  // Extend + Consume: the common one-segment-per-partition-set shape.
  PipelineStats RunSegment(int64_t count) {
    Extend(count);
    return Consume(count);
  }

  // Quiesces the current workers (draining any that block on the full queue into
  // the reorder buffer), then relaunches with `new_workers`. Only valid on
  // threaded sessions (constructed with workers >= 1) and with new_workers >= 1;
  // a no-op when the count is unchanged. Never changes the consumed sequence.
  void Resize(int new_workers);

  int workers() const { return workers_; }
  int resize_count() const { return resize_count_; }
  int64_t announced() const { return announced_; }
  int64_t consumed() const { return consumed_; }
  // Current queue depth (diagnostics/tests; stale immediately).
  size_t queue_size() const { return queue_.Size(); }
  size_t queue_capacity() const { return queue_.capacity(); }

 private:
  struct Produced {
    int64_t index;
    std::shared_ptr<void> item;
  };

  void LaunchWorkers(int count);
  // Stops the workers and waits for them to exit, draining the queue into the
  // reorder buffer so producers blocked on a full queue can finish their push.
  void StopWorkers();
  PipelineStats ConsumeSerial(int64_t target);

  PipelineSessionOptions options_;
  Producer produce_;
  Consumer consume_;
  ThreadPool* pool_;
  BoundedQueue<Produced> queue_;

  // Ticket claiming and the batch-window gate. Workers claim the next index under
  // gate_mu_ only when it is below both the announced limit and consumed + window
  // (window = queue_capacity + workers, recomputed on resize).
  std::mutex gate_mu_;
  std::condition_variable gate_cv_;
  int64_t announced_ = 0;    // guarded by gate_mu_; read lock-free by the owner
  int64_t consumed_ = 0;     // guarded by gate_mu_; read lock-free by the owner
  int64_t next_ticket_ = 0;  // guarded by gate_mu_
  int64_t window_ = 0;       // guarded by gate_mu_
  bool stop_ = false;        // guarded by gate_mu_

  std::mutex done_mu_;
  std::condition_variable done_cv_;
  int workers_left_ = 0;  // guarded by done_mu_

  int workers_ = 0;  // current launched worker count (owner thread only)
  int resize_count_ = 0;
  std::atomic<int64_t> sample_nanos_{0};
  std::map<int64_t, std::shared_ptr<void>> reorder_;  // owner thread only

  // RV monitors (owner thread only). rv_ticket_ observes every index handed to
  // the consumer — serial or pipelined — so any reorder-buffer slip shows up as a
  // pipeline.ticket_order violation. rv_quiesce_ checks Resize's precondition
  // (no active Consume delivery, all workers exited, queue drained) after
  // StopWorkers returns; consuming_ is the mid-delivery flag it reads.
  RvSequenceMonitor rv_ticket_{RvInvariant::kTicketOrder};
  RvQuiesceMonitor rv_quiesce_{RvInvariant::kResizeQuiesce};
  bool consuming_ = false;  // owner thread only
};

class TrainingPipeline {
 public:
  explicit TrainingPipeline(PipelineSessionOptions options = PipelineSessionOptions());

  // Type-erased item stream. Producer may run on any worker thread and must be
  // thread-safe + index-deterministic; consumer runs on the calling thread, in order.
  using Producer = PipelineSession::Producer;
  using Consumer = PipelineSession::Consumer;

  // Runs producer(i) / consumer(item, i) for i in [0, n); returns stage timings.
  // Exceptions are not expected (library code aborts via MG_CHECK). Implemented as
  // a one-segment PipelineSession.
  PipelineStats Run(int64_t n, const Producer& produce, const Consumer& consume);

  // Typed convenience wrapper.
  template <typename T, typename P, typename C>
  PipelineStats RunTyped(int64_t n, P&& produce, C&& consume) {
    return Run(
        n,
        [&produce](int64_t i) -> std::shared_ptr<void> {
          return std::make_shared<T>(produce(i));
        },
        [&consume](void* item, int64_t i) { consume(*static_cast<T*>(item), i); });
  }

  // Epoch helper shared by both trainers: slices [0, total) into contiguous batches
  // of `batch_size` and pipelines them. produce receives (begin, end, batch_index).
  template <typename T, typename P, typename C>
  PipelineStats RunBatches(int64_t total, int64_t batch_size, P&& produce, C&& consume) {
    MG_CHECK_MSG(batch_size > 0, "batch_size must be > 0");
    const int64_t num_batches = (total + batch_size - 1) / batch_size;
    return RunTyped<T>(
        num_batches,
        [&produce, total, batch_size](int64_t b) {
          const int64_t begin = b * batch_size;
          const int64_t end = begin + batch_size < total ? begin + batch_size : total;
          return produce(begin, end, b);
        },
        std::forward<C>(consume));
  }

  const PipelineSessionOptions& options() const { return options_; }

 private:
  PipelineSessionOptions options_;
};

}  // namespace mariusgnn

#endif  // SRC_PIPELINE_TRAINING_PIPELINE_H_
