// Multi-stage asynchronous training pipeline (Section 3, Figure 2).
//
// MariusGNN keeps out-of-core training compute-bound by overlapping the CPU-heavy
// stages of an epoch with model compute. This subsystem is the shared engine both
// trainers drive their epochs through:
//
//   stage 1  batch construction — N workers on the shared ThreadPool each pull the
//            next batch index from a ticket counter, build the batch (DENSE/layer-wise
//            sampling + negative sampling), and push it into a BoundedQueue;
//   stage 2  reassembly — the consumer drains the queue into a small reorder buffer
//            and hands batches to the compute callback strictly in batch-index order,
//            so training is bitwise-identical to a serial run for any worker count;
//   stage 3  compute — forward/backward/update runs on the calling thread (the
//            paper's GPU stage), while workers are already sampling future batches.
//
// Determinism contract: the producer callback must depend only on the batch index
// (derive per-batch RNG streams from MixSeed(run_seed, index)), never on which worker
// runs it or in which order batches finish. A window gate keeps workers at most
// queue_capacity + workers batches ahead of the consumer, bounding memory.
//
// The partition-IO stage of Figure 2 lives in PartitionBuffer::Prefetch (storage
// layer); OrderingPolicy::Lookahead tells the trainer which partitions to stage next.
#ifndef SRC_PIPELINE_TRAINING_PIPELINE_H_
#define SRC_PIPELINE_TRAINING_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "src/util/check.h"
#include "src/util/threadpool.h"

namespace mariusgnn {

struct PipelineOptions {
  // Batch-construction workers. 0 runs everything serially on the calling thread
  // (same batch stream, no threads) — the non-pipelined baseline.
  int workers = 2;
  // Prepared batches buffered between construction and compute (Figure 2's
  // "Pipeline Queue" depth).
  size_t queue_capacity = 4;
  // Pool the workers run on; nullptr = ThreadPool::Global().
  ThreadPool* pool = nullptr;
};

// Per-stage timing breakdown of one pipeline run.
struct PipelineStats {
  double sample_seconds = 0.0;   // total batch-construction time across workers
  double compute_seconds = 0.0;  // total consumer-callback time
  double stall_seconds = 0.0;    // consumer time blocked waiting for the next batch
  int64_t num_items = 0;
};

// Adaptive stage-1/stage-3 pool split (the ROADMAP's "pipeline-vs-compute pool
// contention" item). Sampling workers and compute chunks share one ThreadPool;
// when the stage-3 kernels report low parallel efficiency it is usually because
// epoch-long sampling workers occupy the pool and the compute helpers cannot find
// idle threads. Shrinking the sampling-worker count hands that capacity back to
// compute — the right trade whenever compute (not sampling) is the bottleneck,
// because the queue is full and extra producers only wait on the window gate.
//
// The controller moves one worker per observation with hysteresis: shrink while
// efficiency < low_threshold, grow back while > high_threshold, hold in between.
// It only ever changes the *worker count*, which the pipeline's determinism
// contract guarantees can never change results (per-batch seeds + in-order
// consumption), so the adaptive split preserves bitwise-identical loss/MRR
// trajectories by construction even though its decisions are timing-driven.
class AdaptiveWorkerSplit {
 public:
  // Workers stay in [min_workers, max_workers] and start at max_workers. Disabled
  // (or max_workers == 0, the non-pipelined mode) pins workers at max_workers.
  AdaptiveWorkerSplit(bool enabled, int max_workers, int min_workers,
                      double low_threshold, double high_threshold);

  // Sampling workers to use for the next pipeline run.
  int workers() const { return workers_; }

  // Feeds one epoch's ComputeStats::ParallelEfficiency() and returns the updated
  // worker count.
  int Observe(double compute_parallel_efficiency);

 private:
  bool enabled_;
  int max_workers_;
  int min_workers_;
  double low_threshold_;
  double high_threshold_;
  int workers_;
};

class TrainingPipeline {
 public:
  explicit TrainingPipeline(PipelineOptions options = PipelineOptions());

  // Type-erased item stream. Producer may run on any worker thread and must be
  // thread-safe + index-deterministic; consumer runs on the calling thread, in order.
  using Producer = std::function<std::shared_ptr<void>(int64_t index)>;
  using Consumer = std::function<void(void* item, int64_t index)>;

  // Runs producer(i) / consumer(item, i) for i in [0, n); returns stage timings.
  // Exceptions are not expected (library code aborts via MG_CHECK).
  PipelineStats Run(int64_t n, const Producer& produce, const Consumer& consume);

  // Typed convenience wrapper.
  template <typename T, typename P, typename C>
  PipelineStats RunTyped(int64_t n, P&& produce, C&& consume) {
    return Run(
        n,
        [&produce](int64_t i) -> std::shared_ptr<void> {
          return std::make_shared<T>(produce(i));
        },
        [&consume](void* item, int64_t i) { consume(*static_cast<T*>(item), i); });
  }

  // Epoch helper shared by both trainers: slices [0, total) into contiguous batches
  // of `batch_size` and pipelines them. produce receives (begin, end, batch_index).
  template <typename T, typename P, typename C>
  PipelineStats RunBatches(int64_t total, int64_t batch_size, P&& produce, C&& consume) {
    MG_CHECK_MSG(batch_size > 0, "batch_size must be > 0");
    const int64_t num_batches = (total + batch_size - 1) / batch_size;
    return RunTyped<T>(
        num_batches,
        [&produce, total, batch_size](int64_t b) {
          const int64_t begin = b * batch_size;
          const int64_t end = begin + batch_size < total ? begin + batch_size : total;
          return produce(begin, end, b);
        },
        std::forward<C>(consume));
  }

  const PipelineOptions& options() const { return options_; }

 private:
  PipelineStats RunSerial(int64_t n, const Producer& produce, const Consumer& consume);

  PipelineOptions options_;
};

}  // namespace mariusgnn

#endif  // SRC_PIPELINE_TRAINING_PIPELINE_H_
