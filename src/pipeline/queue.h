// Bounded MPMC blocking queue used to pipeline mini-batch construction with model
// compute (Figure 2's "Pipeline Queue").
#ifndef SRC_PIPELINE_QUEUE_H_
#define SRC_PIPELINE_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "src/util/check.h"

namespace mariusgnn {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    MG_CHECK(capacity > 0);
  }

  // Blocks while full. Returns false if the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty. Returns nullopt when the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // Unblocks all waiters; Push fails and Pop drains then returns nullopt.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace mariusgnn

#endif  // SRC_PIPELINE_QUEUE_H_
