// Bounded MPMC blocking queue used to pipeline mini-batch construction with model
// compute (Figure 2's "Pipeline Queue").
//
// Besides the queueing itself, the queue keeps time-weighted occupancy statistics
// (high/low watermarks + an occupancy integral) per observation window. Occupancy is
// the pipeline's back-pressure signal: a queue pinned at capacity means batch
// construction is ahead of compute (extra sampling workers are wasted), a queue
// pinned at zero while the consumer stalls means construction is the bottleneck.
// The PipelineController reads these windows to rebalance the stage-1/stage-3
// worker split mid-epoch.
#ifndef SRC_PIPELINE_QUEUE_H_
#define SRC_PIPELINE_QUEUE_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "src/util/check.h"
#include "src/util/rv_monitor.h"

namespace mariusgnn {

// Snapshot of one observation window of queue activity (see BoundedQueue::
// WindowStats). Occupancy is measured in items; callers normalise by capacity.
struct QueueStats {
  size_t high_watermark = 0;        // max occupancy seen in the window
  size_t low_watermark = 0;         // min occupancy seen in the window
  double occupancy_integral = 0.0;  // ∫ occupancy dt over the window (item-seconds)
  double window_seconds = 0.0;      // wall time the window covers
  int64_t pushes = 0;
  int64_t pops = 0;

  // Time-weighted mean occupancy (items) over the window.
  double MeanOccupancy() const {
    return window_seconds > 0.0 ? occupancy_integral / window_seconds : 0.0;
  }
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    MG_CHECK(capacity > 0);
    const Clock::time_point now = Clock::now();
    window_start_ = now;
    last_event_ = now;
  }

  size_t capacity() const { return capacity_; }

  // Blocks while full. Returns false if the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) {
      return false;
    }
    AdvanceIntegralLocked();
    items_.push_back(std::move(item));
    ++pushes_;
    high_ = std::max(high_, items_.size());
    rv_occupancy_.ObserveOccupancy(items_.size(), capacity_);
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty. Returns nullopt when the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    return PopFrontLocked();
  }

  // Non-blocking Pop: nullopt when currently empty (closed or not). Used by the
  // pipeline's resize quiesce to drain producers that block on a full queue.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) {
      return std::nullopt;
    }
    return PopFrontLocked();
  }

  // Unblocks all waiters; Push fails and Pop drains then returns nullopt.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  // Returns the statistics of the window since construction / the previous
  // WindowStats call, and starts a new window (watermarks reset to the current
  // occupancy, integral and counters to zero).
  QueueStats WindowStats() {
    std::lock_guard<std::mutex> lock(mu_);
    AdvanceIntegralLocked();
    rv_occupancy_.ObserveWindow(low_, high_, capacity_);
    QueueStats stats;
    stats.high_watermark = high_;
    stats.low_watermark = low_;
    stats.occupancy_integral = integral_;
    stats.window_seconds =
        std::chrono::duration<double>(last_event_ - window_start_).count();
    stats.pushes = pushes_;
    stats.pops = pops_;
    window_start_ = last_event_;
    high_ = items_.size();
    low_ = items_.size();
    integral_ = 0.0;
    pushes_ = 0;
    pops_ = 0;
    return stats;
  }

  // Current window's statistics without resetting it (tests / diagnostics).
  QueueStats PeekStats() const {
    std::lock_guard<std::mutex> lock(mu_);
    QueueStats stats;
    const Clock::time_point now = Clock::now();
    stats.high_watermark = std::max(high_, items_.size());
    stats.low_watermark = std::min(low_, items_.size());
    stats.occupancy_integral =
        integral_ + static_cast<double>(items_.size()) *
                        std::chrono::duration<double>(now - last_event_).count();
    stats.window_seconds =
        std::chrono::duration<double>(now - window_start_).count();
    stats.pushes = pushes_;
    stats.pops = pops_;
    return stats;
  }

 private:
  using Clock = std::chrono::steady_clock;

  // Charges the elapsed time since the last state change at the current occupancy.
  void AdvanceIntegralLocked() {
    const Clock::time_point now = Clock::now();
    integral_ += static_cast<double>(items_.size()) *
                 std::chrono::duration<double>(now - last_event_).count();
    last_event_ = now;
  }

  T PopFrontLocked() {
    AdvanceIntegralLocked();
    T item = std::move(items_.front());
    items_.pop_front();
    ++pops_;
    low_ = std::min(low_, items_.size());
    not_full_.notify_one();
    return item;
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;

  // RV monitor (pipeline.queue_occupancy): observed under mu_ after each push
  // and at window close, so occupancy can never silently exceed capacity and the
  // watermark bookkeeping the controller steers by stays self-consistent.
  RvWatermarkMonitor rv_occupancy_{RvInvariant::kQueueOccupancy};

  // Occupancy instrumentation, all guarded by mu_.
  Clock::time_point window_start_;
  Clock::time_point last_event_;
  double integral_ = 0.0;
  size_t high_ = 0;
  size_t low_ = 0;
  int64_t pushes_ = 0;
  int64_t pops_ = 0;
};

}  // namespace mariusgnn

#endif  // SRC_PIPELINE_QUEUE_H_
