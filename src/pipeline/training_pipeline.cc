#include "src/pipeline/training_pipeline.h"

#include <algorithm>
#include <chrono>

#include "src/util/check.h"
#include "src/util/timer.h"

namespace mariusgnn {

AdaptiveWorkerSplit::AdaptiveWorkerSplit(bool enabled, int max_workers,
                                         int min_workers, double low_threshold,
                                         double high_threshold)
    : enabled_(enabled && max_workers > 0),
      max_workers_(std::max(0, max_workers)),
      min_workers_(std::min(std::max(1, min_workers), std::max(1, max_workers_))),
      low_threshold_(low_threshold),
      high_threshold_(high_threshold),
      workers_(max_workers_) {
  MG_CHECK(low_threshold_ <= high_threshold_);
}

int AdaptiveWorkerSplit::Observe(double compute_parallel_efficiency) {
  if (!enabled_) {
    return workers_;
  }
  if (compute_parallel_efficiency < low_threshold_ && workers_ > min_workers_) {
    --workers_;
  } else if (compute_parallel_efficiency > high_threshold_ && workers_ < max_workers_) {
    ++workers_;
  }
  return workers_;
}

PipelineSession::PipelineSession(PipelineSessionOptions options, Producer produce,
                                 Consumer consume)
    : options_(std::move(options)),
      produce_(std::move(produce)),
      consume_(std::move(consume)),
      pool_(options_.pool != nullptr ? options_.pool : &ThreadPool::Global()),
      queue_(options_.queue_capacity) {
  MG_CHECK(options_.queue_capacity > 0);
  MG_CHECK(options_.workers >= 0);
  if (options_.workers > 0) {
    workers_ = options_.workers;
    LaunchWorkers(workers_);
  }
}

PipelineSession::~PipelineSession() {
  if (workers_ > 0) {
    StopWorkers();
  }
  queue_.Close();
}

void PipelineSession::LaunchWorkers(int count) {
  {
    std::lock_guard<std::mutex> lock(gate_mu_);
    window_ = static_cast<int64_t>(options_.queue_capacity) + count;
    stop_ = false;
  }
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    workers_left_ = count;
  }
  for (int w = 0; w < count; ++w) {
    pool_->Submit([this] {
      for (;;) {
        int64_t i;
        {
          std::unique_lock<std::mutex> lock(gate_mu_);
          gate_cv_.wait(lock, [this] {
            return stop_ ||
                   (next_ticket_ < announced_ && next_ticket_ < consumed_ + window_);
          });
          if (stop_) {
            break;
          }
          i = next_ticket_++;
        }
        WallTimer timer;
        std::shared_ptr<void> item = produce_(i);
        sample_nanos_.fetch_add(static_cast<int64_t>(timer.Seconds() * 1e9),
                                std::memory_order_relaxed);
        if (!queue_.Push(Produced{i, std::move(item)})) {
          break;  // queue closed (session teardown)
        }
      }
      std::lock_guard<std::mutex> lock(done_mu_);
      if (--workers_left_ == 0) {
        done_cv_.notify_all();
      }
    });
  }
}

void PipelineSession::StopWorkers() {
  {
    std::lock_guard<std::mutex> lock(gate_mu_);
    stop_ = true;
  }
  gate_cv_.notify_all();
  // Workers parked on the gate exit immediately; a worker mid-produce finishes and
  // pushes first. With the consumer idle the queue can be (or fill) full, so drain
  // it into the reorder buffer — bounded by the window gate at window_ entries —
  // until every worker has exited.
  std::unique_lock<std::mutex> lock(done_mu_);
  while (workers_left_ > 0) {
    lock.unlock();
    while (std::optional<Produced> got = queue_.TryPop()) {
      reorder_.emplace(got->index, std::move(got->item));
    }
    lock.lock();
    done_cv_.wait_for(lock, std::chrono::milliseconds(1),
                      [this] { return workers_left_ == 0; });
  }
  lock.unlock();
  // Items pushed between the last drain and the final worker exit.
  while (std::optional<Produced> got = queue_.TryPop()) {
    reorder_.emplace(got->index, std::move(got->item));
  }
}

void PipelineSession::Resize(int new_workers) {
  MG_CHECK_MSG(workers_ >= 1, "Resize requires a threaded session (workers >= 1)");
  MG_CHECK_MSG(new_workers >= 1, "Resize target must be >= 1 worker");
  if (new_workers == workers_) {
    return;
  }
  StopWorkers();
  {
    // pipeline.resize_quiesce: after StopWorkers the session must be fully
    // quiescent — no Consume delivery on the stack, every worker exited, and the
    // queue drained into the reorder buffer — or the relaunch could race the old
    // workers and corrupt the batch stream.
    std::lock_guard<std::mutex> lock(done_mu_);
    rv_quiesce_.ObserveResize(consuming_, workers_left_, queue_.Size());
  }
  workers_ = new_workers;
  ++resize_count_;
  LaunchWorkers(new_workers);
}

int64_t PipelineSession::Extend(int64_t count) {
  MG_CHECK(count >= 0);
  int64_t total;
  {
    std::lock_guard<std::mutex> lock(gate_mu_);
    announced_ += count;
    total = announced_;
  }
  gate_cv_.notify_all();
  return total;
}

PipelineStats PipelineSession::ConsumeSerial(int64_t target) {
  PipelineStats stats;
  while (consumed_ < target) {
    const int64_t i = consumed_;
    WallTimer sample_timer;
    std::shared_ptr<void> item = produce_(i);
    stats.sample_seconds += sample_timer.Seconds();
    rv_ticket_.Observe(i);
    WallTimer compute_timer;
    consume_(item.get(), i);
    stats.compute_seconds += compute_timer.Seconds();
    ++consumed_;
  }
  return stats;
}

PipelineStats PipelineSession::Consume(int64_t count) {
  MG_CHECK(count >= 0);
  const int64_t target = consumed_ + count;
  MG_CHECK_MSG(target <= announced_, "Consume beyond the announced stream");
  if (workers_ == 0) {
    PipelineStats stats = ConsumeSerial(target);
    stats.num_items = count;
    return stats;
  }

  // The queue-occupancy window covers exactly this segment: reset on entry,
  // snapshot on exit.
  (void)queue_.WindowStats();
  const int64_t sample_nanos_start = sample_nanos_.load(std::memory_order_relaxed);

  PipelineStats stats;
  while (consumed_ < target) {
    auto it = reorder_.find(consumed_);
    if (it == reorder_.end()) {
      WallTimer wait_timer;
      std::optional<Produced> got = queue_.Pop();
      stats.stall_seconds += wait_timer.Seconds();
      MG_CHECK(got.has_value());
      reorder_.emplace(got->index, std::move(got->item));
      continue;
    }
    std::shared_ptr<void> item = std::move(it->second);
    reorder_.erase(it);
    rv_ticket_.Observe(consumed_);
    WallTimer compute_timer;
    consuming_ = true;
    consume_(item.get(), consumed_);
    consuming_ = false;
    stats.compute_seconds += compute_timer.Seconds();
    {
      std::lock_guard<std::mutex> lock(gate_mu_);
      ++consumed_;
    }
    gate_cv_.notify_all();
  }

  stats.num_items = count;
  stats.workers = workers_;
  stats.sample_seconds =
      static_cast<double>(sample_nanos_.load(std::memory_order_relaxed) -
                          sample_nanos_start) *
      1e-9;
  const QueueStats qs = queue_.WindowStats();
  stats.queue_occupancy_mean =
      qs.MeanOccupancy() / static_cast<double>(queue_.capacity());
  return stats;
}

TrainingPipeline::TrainingPipeline(PipelineSessionOptions options)
    : options_(std::move(options)) {
  MG_CHECK(options_.queue_capacity > 0);
  MG_CHECK(options_.workers >= 0);
}

PipelineStats TrainingPipeline::Run(int64_t n, const Producer& produce,
                                    const Consumer& consume) {
  if (n <= 0) {
    return PipelineStats();
  }
  PipelineSession session(options_, produce, consume);
  return session.RunSegment(n);
}

}  // namespace mariusgnn
