#include "src/pipeline/training_pipeline.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>

#include "src/pipeline/queue.h"
#include "src/util/check.h"
#include "src/util/timer.h"

namespace mariusgnn {

AdaptiveWorkerSplit::AdaptiveWorkerSplit(bool enabled, int max_workers,
                                         int min_workers, double low_threshold,
                                         double high_threshold)
    : enabled_(enabled && max_workers > 0),
      max_workers_(std::max(0, max_workers)),
      min_workers_(std::min(std::max(1, min_workers), std::max(1, max_workers_))),
      low_threshold_(low_threshold),
      high_threshold_(high_threshold),
      workers_(max_workers_) {
  MG_CHECK(low_threshold_ <= high_threshold_);
}

int AdaptiveWorkerSplit::Observe(double compute_parallel_efficiency) {
  if (!enabled_) {
    return workers_;
  }
  if (compute_parallel_efficiency < low_threshold_ && workers_ > min_workers_) {
    --workers_;
  } else if (compute_parallel_efficiency > high_threshold_ && workers_ < max_workers_) {
    ++workers_;
  }
  return workers_;
}

TrainingPipeline::TrainingPipeline(PipelineOptions options)
    : options_(std::move(options)) {
  MG_CHECK(options_.queue_capacity > 0);
  MG_CHECK(options_.workers >= 0);
}

PipelineStats TrainingPipeline::RunSerial(int64_t n, const Producer& produce,
                                          const Consumer& consume) {
  PipelineStats stats;
  for (int64_t i = 0; i < n; ++i) {
    WallTimer sample_timer;
    std::shared_ptr<void> item = produce(i);
    stats.sample_seconds += sample_timer.Seconds();
    WallTimer compute_timer;
    consume(item.get(), i);
    stats.compute_seconds += compute_timer.Seconds();
  }
  stats.num_items = n;
  return stats;
}

PipelineStats TrainingPipeline::Run(int64_t n, const Producer& produce,
                                    const Consumer& consume) {
  if (n <= 0) {
    return PipelineStats();
  }
  if (options_.workers <= 0) {
    return RunSerial(n, produce, consume);
  }
  ThreadPool& pool = options_.pool != nullptr ? *options_.pool : ThreadPool::Global();
  const int workers = options_.workers;

  struct Produced {
    int64_t index;
    std::shared_ptr<void> item;
  };
  BoundedQueue<Produced> queue(options_.queue_capacity);

  // Ticket counter: each worker claims the next unclaimed batch index. The window
  // gate stops a worker from *starting* an index more than `window` ahead of the
  // consumer, which bounds the reorder buffer at `window` entries.
  std::atomic<int64_t> next_ticket{0};
  const int64_t window =
      static_cast<int64_t>(options_.queue_capacity) + static_cast<int64_t>(workers);
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  int64_t consumed = 0;  // guarded by gate_mu

  std::atomic<int64_t> sample_nanos{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  int workers_left = workers;  // guarded by done_mu

  for (int w = 0; w < workers; ++w) {
    pool.Submit([&] {
      for (;;) {
        const int64_t i = next_ticket.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) {
          break;
        }
        {
          std::unique_lock<std::mutex> lock(gate_mu);
          gate_cv.wait(lock, [&] { return i < consumed + window; });
        }
        WallTimer timer;
        std::shared_ptr<void> item = produce(i);
        sample_nanos.fetch_add(static_cast<int64_t>(timer.Seconds() * 1e9),
                               std::memory_order_relaxed);
        MG_CHECK(queue.Push(Produced{i, std::move(item)}));
      }
      std::lock_guard<std::mutex> lock(done_mu);
      if (--workers_left == 0) {
        done_cv.notify_all();
      }
    });
  }

  // Reassembly + compute on the calling thread: drain the queue into a reorder
  // buffer and consume strictly in index order.
  PipelineStats stats;
  std::map<int64_t, std::shared_ptr<void>> reorder;
  int64_t next_consume = 0;
  while (next_consume < n) {
    auto it = reorder.find(next_consume);
    if (it == reorder.end()) {
      WallTimer wait_timer;
      std::optional<Produced> got = queue.Pop();
      stats.stall_seconds += wait_timer.Seconds();
      MG_CHECK(got.has_value());
      reorder.emplace(got->index, std::move(got->item));
      continue;
    }
    std::shared_ptr<void> item = std::move(it->second);
    reorder.erase(it);
    WallTimer compute_timer;
    consume(item.get(), next_consume);
    stats.compute_seconds += compute_timer.Seconds();
    ++next_consume;
    {
      std::lock_guard<std::mutex> lock(gate_mu);
      consumed = next_consume;
    }
    gate_cv.notify_all();
  }

  // All n items were pushed and consumed, so every worker's ticket loop is past the
  // end; wait for the loop bodies to finish before the stack state goes away.
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return workers_left == 0; });
  }
  stats.sample_seconds = static_cast<double>(sample_nanos.load()) * 1e-9;
  stats.num_items = n;
  return stats;
}

}  // namespace mariusgnn
