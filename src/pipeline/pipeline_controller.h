// In-epoch pipeline controller: decides the stage-1 sampling-worker count from a
// per-window signal vector instead of a single end-of-epoch efficiency number.
//
// The pipeline's three stages share one ThreadPool, so the split between stage-1
// sampling workers and stage-3 compute chunks is a zero-sum allocation. The
// controller observes one window per partition set (or per epoch in fallback
// mode) and moves the split one worker at a time with hysteresis:
//
//   1. compute_parallel_efficiency below the low threshold — compute chunks are
//      starved of pool threads — shrinks the sampling side (the legacy
//      AdaptiveWorkerSplit rule, highest priority);
//   2. efficiency above the high threshold grows it back;
//   3. in the dead band the queue-depth signal refines the decision (the same
//      back-pressure reading credit-based pull schedulers use): a window whose
//      time-weighted queue occupancy sits near capacity means producers are ahead
//      of compute and extra samplers are wasted — shrink; a near-empty queue
//      combined with real consumer stall time means batch construction is the
//      bottleneck — grow;
//   4. windows dominated by unhidden partition-IO stalls hold: no worker split
//      can hide IO the prefetcher missed.
//
// Because the decision only ever changes the worker count — which the pipeline's
// determinism contract guarantees can never change the batch stream — mid-epoch
// resizes preserve bitwise-identical loss/MRR trajectories by construction, even
// though every input to the decision is host-timing noise.
#ifndef SRC_PIPELINE_PIPELINE_CONTROLLER_H_
#define SRC_PIPELINE_PIPELINE_CONTROLLER_H_

#include <vector>

#include "src/pipeline/training_pipeline.h"
#include "src/util/compute.h"

namespace mariusgnn {

// When the controller is allowed to act: at every partition-set boundary
// (mid-epoch), or only between epochs (the legacy AdaptiveWorkerSplit behavior,
// kept as a fallback mode; it also ignores the queue-depth signal so the two
// modes are decision-for-decision comparable).
enum class ControllerGranularity {
  kPartitionSet,
  kEpoch,
};

struct PipelineControllerOptions {
  bool enabled = true;
  // Workers stay in [min_workers, max_workers] and start at max_workers;
  // max_workers == 0 (non-pipelined) pins the count at 0.
  int max_workers = 0;
  int min_workers = 1;
  // Stage-3 efficiency hysteresis band (rules 1-2).
  double par_eff_low = 0.40;
  double par_eff_high = 0.85;
  // Queue-occupancy band as fractions of queue capacity (rule 3).
  double queue_low = 0.25;
  double queue_high = 0.75;
  // A window whose io_stall exceeds this fraction of its wall time is IO-bound:
  // hold (rule 4).
  double io_stall_hold_fraction = 0.50;
  // Growing on a near-empty queue additionally requires the consumer to have
  // stalled for at least this fraction of the window (otherwise compute simply
  // kept up and the split is fine).
  double stall_grow_fraction = 0.05;
  // Decision cool-down for the queue back-pressure rules: after any worker-count
  // change, rule 3 is suppressed for this many subsequent windows. On hosts where
  // neither split wins, the queue-high shrink and the queue-low grow otherwise
  // ping-pong every window; the cool-down lets each move's effect show up in the
  // occupancy signal before the opposite rule may fire. The efficiency band
  // (rules 1-2) is not gated — it already has hysteresis, and starved compute
  // must be able to shed workers immediately.
  int queue_cooldown_windows = 2;
  ControllerGranularity granularity = ControllerGranularity::kPartitionSet;
};

// One observation window: a partition set in kPartitionSet mode, a whole epoch in
// kEpoch mode. Values are deltas over the window, not epoch cumulatives.
struct ControllerSignals {
  double compute_parallel_efficiency = 1.0;
  // Time-weighted mean queue occupancy as a fraction of capacity, [0, 1]
  // (PipelineStats::queue_occupancy_mean). Ignored unless has_queue_signal.
  double queue_occupancy_mean = 0.0;
  bool has_queue_signal = false;
  double pipeline_stall_seconds = 0.0;  // consumer blocked waiting for a batch
  double io_stall_seconds = 0.0;        // unhidden partition-IO stalls
  double window_seconds = 0.0;          // wall time of the window
};

class PipelineController {
 public:
  explicit PipelineController(PipelineControllerOptions options);

  // Sampling workers the next window should run with.
  int workers() const { return workers_; }

  // Feeds one window's signals and returns the updated worker count. In kEpoch
  // mode (or without a queue signal) this is exactly AdaptiveWorkerSplit::Observe
  // on the efficiency alone.
  int ObserveWindow(const ControllerSignals& signals);

  // Partition-set boundary hook (both trainers report their boundaries through
  // this so the wiring cannot diverge): observes the set's window and, when more
  // sets remain in the epoch, applies a changed decision to the live session via
  // PipelineSession::Resize, counting it in *resize_count. No-op in kEpoch mode.
  void ObserveSetWindow(const ControllerSignals& signals, PipelineSession* session,
                        bool more_sets, int* resize_count);

  // Full set-boundary report: records the set's worker decision into
  // *workers_per_set, assembles the signal window from the segment's stats and
  // the compute/IO deltas, and feeds ObserveSetWindow. Both trainers report
  // through this single entry point so the signal assembly cannot diverge.
  // Sets that trained nothing (ps.num_items == 0) are recorded but not observed.
  void ReportSetBoundary(const PipelineStats& ps, const ComputeStats& compute_now,
                         const ComputeStats& compute_before, double io_stall_delta,
                         double window_seconds, bool more_sets,
                         PipelineSession* session, std::vector<int>* workers_per_set,
                         int* resize_count);

  // Epoch-boundary hook for the kEpoch fallback: one efficiency-only observation
  // per epoch, exactly the legacy AdaptiveWorkerSplit cadence. No-op in
  // kPartitionSet mode (the last set's window already covered the epoch tail).
  void ObserveEpoch(double compute_parallel_efficiency);

  const PipelineControllerOptions& options() const { return options_; }

  // Windows left before the queue rules may act again (0 = not cooling down).
  int queue_cooldown_remaining() const { return cooldown_remaining_; }

  // Checkpoint/restore of the controller's decision state, so a resumed run
  // reports the same worker counts as the uninterrupted one (the trajectory is
  // worker-invariant either way). `workers` is clamped to the configured range.
  void RestoreState(int workers, int cooldown_remaining);

 private:
  int Shrink();
  int Grow();
  void ObserveWindowImpl(const ControllerSignals& signals);

  PipelineControllerOptions options_;
  int workers_;
  int cooldown_remaining_ = 0;
};

}  // namespace mariusgnn

#endif  // SRC_PIPELINE_PIPELINE_CONTROLLER_H_
