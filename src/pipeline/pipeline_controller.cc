#include "src/pipeline/pipeline_controller.h"

#include <algorithm>

#include "src/util/check.h"

namespace mariusgnn {

PipelineController::PipelineController(PipelineControllerOptions options)
    : options_(options), workers_(std::max(0, options.max_workers)) {
  options_.max_workers = std::max(0, options_.max_workers);
  options_.min_workers = std::min(std::max(1, options_.min_workers),
                                  std::max(1, options_.max_workers));
  options_.enabled = options_.enabled && options_.max_workers > 0;
  MG_CHECK(options_.par_eff_low <= options_.par_eff_high);
  MG_CHECK(options_.queue_low <= options_.queue_high);
  MG_CHECK(options_.queue_cooldown_windows >= 0);
}

void PipelineController::RestoreState(int workers, int cooldown_remaining) {
  workers_ = std::min(std::max(workers, options_.max_workers > 0
                                            ? options_.min_workers
                                            : 0),
                      options_.max_workers);
  cooldown_remaining_ = std::max(0, cooldown_remaining);
}

int PipelineController::Shrink() {
  if (workers_ > options_.min_workers) {
    --workers_;
  }
  return workers_;
}

int PipelineController::Grow() {
  if (workers_ < options_.max_workers) {
    ++workers_;
  }
  return workers_;
}

int PipelineController::ObserveWindow(const ControllerSignals& signals) {
  if (!options_.enabled) {
    return workers_;
  }
  const int before = workers_;
  ObserveWindowImpl(signals);
  // Any change (from any rule) arms the queue-rule cool-down: the next
  // queue_cooldown_windows windows let the move's effect reach the occupancy
  // signal before the opposite queue rule may fire, damping the shrink/grow
  // ping-pong on hosts where neither split wins.
  if (workers_ != before) {
    cooldown_remaining_ = options_.queue_cooldown_windows;
  } else if (cooldown_remaining_ > 0) {
    --cooldown_remaining_;
  }
  return workers_;
}

void PipelineController::ObserveWindowImpl(const ControllerSignals& signals) {
  // Rules 1-2: the efficiency hysteresis band. These dominate the queue signal so
  // that fallback (kEpoch) mode and kPartitionSet mode agree whenever efficiency
  // alone is decisive — and so forced-threshold tests stay deterministic.
  if (signals.compute_parallel_efficiency < options_.par_eff_low) {
    Shrink();
    return;
  }
  if (signals.compute_parallel_efficiency > options_.par_eff_high) {
    Grow();
    return;
  }
  if (options_.granularity == ControllerGranularity::kEpoch ||
      !signals.has_queue_signal) {
    return;  // dead band, no refinement
  }
  // Rule 4: IO-bound window — the stall is on the storage layer, not the split.
  if (signals.window_seconds > 0.0 &&
      signals.io_stall_seconds >
          options_.io_stall_hold_fraction * signals.window_seconds) {
    return;
  }
  // Rule 3: queue back-pressure refinement inside the dead band, suppressed
  // while a previous decision's cool-down is still running.
  if (cooldown_remaining_ > 0) {
    return;
  }
  if (signals.queue_occupancy_mean > options_.queue_high) {
    Shrink();
    return;
  }
  if (signals.queue_occupancy_mean < options_.queue_low &&
      signals.window_seconds > 0.0 &&
      signals.pipeline_stall_seconds >
          options_.stall_grow_fraction * signals.window_seconds) {
    Grow();
  }
}

void PipelineController::ObserveSetWindow(const ControllerSignals& signals,
                                          PipelineSession* session, bool more_sets,
                                          int* resize_count) {
  if (options_.granularity != ControllerGranularity::kPartitionSet) {
    return;
  }
  const int next = ObserveWindow(signals);
  if (session != nullptr && more_sets && session->workers() > 0 &&
      next != session->workers()) {
    session->Resize(next);
    if (resize_count != nullptr) {
      ++(*resize_count);
    }
  }
}

void PipelineController::ReportSetBoundary(
    const PipelineStats& ps, const ComputeStats& compute_now,
    const ComputeStats& compute_before, double io_stall_delta,
    double window_seconds, bool more_sets, PipelineSession* session,
    std::vector<int>* workers_per_set, int* resize_count) {
  if (workers_per_set != nullptr) {
    workers_per_set->push_back(session->workers());
  }
  if (ps.num_items == 0) {
    return;  // nothing trained in this set; no signal worth observing
  }
  ControllerSignals signals;
  signals.compute_parallel_efficiency =
      compute_now.ParallelEfficiencySince(compute_before);
  signals.queue_occupancy_mean = ps.queue_occupancy_mean;
  signals.has_queue_signal = ps.workers > 0;
  signals.pipeline_stall_seconds = ps.stall_seconds;
  signals.io_stall_seconds = io_stall_delta;
  signals.window_seconds = window_seconds;
  ObserveSetWindow(signals, session, more_sets, resize_count);
}

void PipelineController::ObserveEpoch(double compute_parallel_efficiency) {
  if (options_.granularity != ControllerGranularity::kEpoch) {
    return;
  }
  ControllerSignals signals;
  signals.compute_parallel_efficiency = compute_parallel_efficiency;
  ObserveWindow(signals);
}

}  // namespace mariusgnn
