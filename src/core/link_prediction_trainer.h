// End-to-end link-prediction training (Sections 3 and 5.1).
//
// Supports every configuration the paper evaluates:
//  - decoder-only knowledge-graph models (empty fanouts: DistMult/TransE/ComplEx as in
//    Marius) and k-layer GNN encoders (GraphSage/GCN/GAT);
//  - in-memory training (the whole graph resident) and disk-based training through the
//    partition buffer with a COMET or BETA replacement policy;
//  - DENSE sampling (MariusGNN) or baseline layer-wise sampling + block execution
//    (in-memory only, mirroring DGL/PyG's capabilities);
//  - pipelined mini-batch construction.
//
// The model itself (encoder/decoder/optimizer/samplers) lives in the inherited
// ModelState (src/core/model.h); this class adds the embedding storage, the
// disk partition policies, and the training loop.
#ifndef SRC_CORE_LINK_PREDICTION_TRAINER_H_
#define SRC_CORE_LINK_PREDICTION_TRAINER_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/core/config.h"
#include "src/core/trainer_base.h"
#include "src/graph/graph.h"
#include "src/graph/partition.h"
#include "src/policy/policy.h"
#include "src/sampler/negative.h"
#include "src/storage/embedding_store.h"
#include "src/storage/partition_buffer.h"

namespace mariusgnn {

class LinkPredictionTrainer : public TrainerBase {
 public:
  LinkPredictionTrainer(const Graph* graph, TrainingConfig config);
  ~LinkPredictionTrainer() override;

  // Ranking MRR with shared uniform negatives, averaged over dst- and src-corruption.
  // Evaluates on up to max_edges test (or valid) edges. With filtered=true, negatives
  // that form true edges of the graph are excluded from the ranking (the standard
  // "filtered" knowledge-graph protocol); the default raw protocol matches the paper.
  double EvaluateMrr(int64_t num_negatives = 500, int64_t max_edges = 2000,
                     bool use_valid = false, bool filtered = false);

  const Partitioning* partitioning() const { return partitioning_.get(); }

 protected:
  EpochStats TrainEpochImpl() override;
  // Checkpoint extras: the embedding table (values + Adagrad state). In disk
  // mode the sections are streamed partition-by-partition through
  // PartitionBuffer::ExportPartition / ImportPartition, so the save/restore
  // path never materialises the full table in memory.
  void AppendCheckpointSections(CheckpointSaveRequest* request) override;
  void RestoreCheckpointSections(CheckpointReader& reader) override;
  size_t NumExtraCheckpointSections() const override { return 2; }

  // Streaming producer for one embedding section ("embeddings.values" or
  // "embeddings.state") in disk mode: exports each partition into a one-
  // partition scratch and scatters its rows to their node-indexed positions.
  CheckpointSectionSpec MakeBufferSectionSpec(const char* name, bool state_stream);

 private:
  struct PreparedBatch;

  // Pipeline stage 1 (worker threads): builds one mini batch of edge ids. Pure in
  // `batch_seed`: negatives and neighborhood samples come from seed-derived RNG
  // streams, so the batch does not depend on worker scheduling. The samplers must
  // already point at the active NeighborIndex (RunBatches sets this up).
  PreparedBatch PrepareBatch(const std::vector<int64_t>& edge_ids,
                             const UniformNegativeSampler& negatives,
                             uint64_t batch_seed) const;
  // Pipeline stage 3 (calling thread, in batch order): forward/backward, then
  // the update through the gradient-exchange seam (ExchangeApply), which also
  // folds the exchanged losses into `stats` and the determinism hash.
  void ConsumeBatch(PreparedBatch& batch, EpochStats* stats);

  // Builds the epoch's PipelineSession: one session spans all partition sets, so
  // the PipelineController can resize the stage-1 worker count at set boundaries
  // mid-epoch without flushing pipeline state. The producer closure reads the
  // run_* members below, which RunBatches swaps between segments.
  std::unique_ptr<PipelineSession> MakeSession(EpochStats* stats);

  // Runs one partition set's batches of `edge_ids` (already shuffled) as a session
  // segment; config_.pipeline.enabled / pipeline.workers chose serial vs parallel
  // construction when the session was built. Returns the segment's stage timings
  // (also folded into `stats`).
  PipelineStats RunBatches(const std::vector<int64_t>& edge_ids,
                           const NeighborIndex& index,
                           const UniformNegativeSampler& negatives,
                           PipelineSession* session, EpochStats* stats);

  // Reports a partition-set boundary into the pipeline layer: records the set's
  // worker decision and feeds the controller its signal window (compute
  // efficiency delta, queue occupancy, stalls); the controller may resize the
  // session's workers for the next set.
  void ReportSetBoundary(PipelineSession* session, const PipelineStats& ps,
                         const ComputeStats& compute_before, double io_stall_delta,
                         double window_seconds, bool more_sets, EpochStats* stats);

  EpochStats TrainEpochInMemory();
  EpochStats TrainEpochDisk();

  // Representations of `nodes` for evaluation, using full-graph sampling over
  // `values` (the exported/in-memory base representations).
  Tensor InferReprs(const std::vector<int64_t>& nodes, const Tensor& values,
                    const NeighborIndex& index);

  // Current segment's producer state, swapped by RunBatches between partition
  // sets. Safe without locks: workers never claim an index beyond the announced
  // limit, so no producer runs while these change (ordered by the session's gate).
  const std::vector<int64_t>* run_ids_ = nullptr;
  const UniformNegativeSampler* run_negatives_ = nullptr;
  uint64_t run_seed_ = 0;
  int64_t run_batch_base_ = 0;
  int64_t run_total_ = 0;

  // In-memory state.
  std::unique_ptr<InMemoryEmbeddingStore> mem_store_;
  std::unique_ptr<NeighborIndex> full_index_;

  // Disk state.
  std::unique_ptr<Partitioning> partitioning_;
  std::unique_ptr<PartitionBuffer> buffer_;
  std::unique_ptr<BufferedEmbeddingStore> disk_store_;
  std::unique_ptr<OrderingPolicy> policy_;
  std::vector<char> is_train_edge_;

  // Lazily built true-edge set for the filtered MRR protocol.
  std::unordered_set<uint64_t> true_edges_;

  EmbeddingStore* store_ = nullptr;  // active store (memory or disk)
};

}  // namespace mariusgnn

#endif  // SRC_CORE_LINK_PREDICTION_TRAINER_H_
