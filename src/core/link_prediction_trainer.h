// End-to-end link-prediction training (Sections 3 and 5.1).
//
// Supports every configuration the paper evaluates:
//  - decoder-only knowledge-graph models (empty fanouts: DistMult/TransE/ComplEx as in
//    Marius) and k-layer GNN encoders (GraphSage/GCN/GAT);
//  - in-memory training (the whole graph resident) and disk-based training through the
//    partition buffer with a COMET or BETA replacement policy;
//  - DENSE sampling (MariusGNN) or baseline layer-wise sampling + block execution
//    (in-memory only, mirroring DGL/PyG's capabilities);
//  - pipelined mini-batch construction.
#ifndef SRC_CORE_LINK_PREDICTION_TRAINER_H_
#define SRC_CORE_LINK_PREDICTION_TRAINER_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/core/config.h"
#include "src/graph/graph.h"
#include "src/graph/partition.h"
#include "src/nn/decoder.h"
#include "src/nn/encoder.h"
#include "src/nn/optimizer.h"
#include "src/policy/policy.h"
#include "src/sampler/dense.h"
#include "src/sampler/layerwise.h"
#include "src/sampler/negative.h"
#include "src/storage/embedding_store.h"
#include "src/storage/partition_buffer.h"
#include "src/util/rng.h"

namespace mariusgnn {

class LinkPredictionTrainer {
 public:
  LinkPredictionTrainer(const Graph* graph, TrainingConfig config);
  ~LinkPredictionTrainer();

  EpochStats TrainEpoch();

  // Ranking MRR with shared uniform negatives, averaged over dst- and src-corruption.
  // Evaluates on up to max_edges test (or valid) edges. With filtered=true, negatives
  // that form true edges of the graph are excluded from the ranking (the standard
  // "filtered" knowledge-graph protocol); the default raw protocol matches the paper.
  double EvaluateMrr(int64_t num_negatives = 500, int64_t max_edges = 2000,
                     bool use_valid = false, bool filtered = false);

  const TrainingConfig& config() const { return config_; }
  const Partitioning* partitioning() const { return partitioning_.get(); }

 private:
  struct PreparedBatch;

  // Trains one mini batch of edge ids using `index` for sampling and `negatives` as
  // the corruption universe; returns the batch loss.
  float TrainBatch(const std::vector<int64_t>& edge_ids, const NeighborIndex& index,
                   UniformNegativeSampler& negatives);
  PreparedBatch PrepareBatch(const std::vector<int64_t>& edge_ids,
                             const NeighborIndex& index,
                             UniformNegativeSampler& negatives);
  float ConsumeBatch(PreparedBatch& batch);

  // Runs all batches of `edge_ids` (already shuffled), pipelined when configured.
  void RunBatches(const std::vector<int64_t>& edge_ids, const NeighborIndex& index,
                  UniformNegativeSampler& negatives, EpochStats* stats);

  EpochStats TrainEpochInMemory();
  EpochStats TrainEpochDisk();

  // Representations of `nodes` for evaluation, using full-graph sampling over
  // `values` (the exported/in-memory base representations).
  Tensor InferReprs(const std::vector<int64_t>& nodes, const Tensor& values,
                    const NeighborIndex& index);

  const Graph* graph_;
  TrainingConfig config_;
  Rng rng_;

  std::unique_ptr<GnnEncoder> encoder_;        // DENSE path (may be null: decoder-only)
  std::unique_ptr<BlockEncoder> block_encoder_;  // baseline path
  std::unique_ptr<Decoder> decoder_;
  std::unique_ptr<Adagrad> weight_opt_;
  std::vector<Parameter*> weight_params_;

  std::unique_ptr<DenseSampler> dense_sampler_;
  std::unique_ptr<LayerwiseSampler> layerwise_sampler_;

  // In-memory state.
  std::unique_ptr<InMemoryEmbeddingStore> mem_store_;
  std::unique_ptr<NeighborIndex> full_index_;

  // Disk state.
  std::unique_ptr<Partitioning> partitioning_;
  std::unique_ptr<PartitionBuffer> buffer_;
  std::unique_ptr<BufferedEmbeddingStore> disk_store_;
  std::unique_ptr<OrderingPolicy> policy_;
  std::vector<char> is_train_edge_;

  // Lazily built true-edge set for the filtered MRR protocol.
  std::unordered_set<uint64_t> true_edges_;

  EmbeddingStore* store_ = nullptr;  // active store (memory or disk)
};

}  // namespace mariusgnn

#endif  // SRC_CORE_LINK_PREDICTION_TRAINER_H_
