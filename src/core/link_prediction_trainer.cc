#include "src/core/link_prediction_trainer.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/core/checkpoint.h"
#include "src/eval/metrics.h"
#include "src/pipeline/training_pipeline.h"
#include "src/policy/beta.h"
#include "src/policy/comet.h"
#include "src/tensor/ops.h"
#include "src/util/binary_io.h"
#include "src/util/check.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace mariusgnn {

struct LinkPredictionTrainer::PreparedBatch {
  std::vector<int64_t> targets;  // unique nodes: srcs, dsts, then negatives
  std::vector<int64_t> src_rows;
  std::vector<int64_t> dst_rows;
  std::vector<int64_t> neg_rows;
  std::vector<int32_t> rels;
  DenseBatch dense;
  std::vector<int64_t> dense_nodes;  // node_ids snapshot (dense is consumed by Forward)
  LayerwiseSample layerwise;
};

LinkPredictionTrainer::LinkPredictionTrainer(const Graph* graph, TrainingConfig config)
    : TrainerBase(graph, std::move(config), TaskKind::kLinkPrediction) {
  const int64_t emb_dim = config_.dims.front();

  // Training-edge membership (disk policies iterate all buckets; only train edges
  // become examples).
  is_train_edge_.assign(static_cast<size_t>(graph_->num_edges()), 0);
  if (graph_->train_edges().empty()) {
    std::fill(is_train_edge_.begin(), is_train_edge_.end(), 1);
  } else {
    for (int64_t e : graph_->train_edges()) {
      is_train_edge_[static_cast<size_t>(e)] = 1;
    }
  }

  const float init_scale = 1.0f / std::sqrt(static_cast<float>(emb_dim));
  if (!config_.storage.use_disk) {
    mem_store_ = std::make_unique<InMemoryEmbeddingStore>(graph_->num_nodes(), emb_dim,
                                                          init_scale, rng_);
    mem_store_->set_compute(&compute_);
    full_index_ = std::make_unique<NeighborIndex>(*graph_);
    store_ = mem_store_.get();
  } else {
    MG_CHECK(config_.storage.num_physical >= 2 && config_.storage.buffer_capacity >= 2);
    partitioning_ = std::make_unique<Partitioning>(*graph_, config_.storage.num_physical,
                                                   PartitionAssignment::kRandom, rng_);
    Tensor init = Tensor::Uniform(graph_->num_nodes(), emb_dim, init_scale, rng_);
    const std::string path = config_.storage.dir.empty()
                                 ? TempPath("mgnn_lp_embeddings")
                                 : config_.storage.dir + "/embeddings.bin";
    buffer_ = std::make_unique<PartitionBuffer>(partitioning_.get(), emb_dim,
                                                config_.storage.buffer_capacity, path,
                                                config_.storage.disk_model, /*learnable=*/true,
                                                &init, config_.MakePartitionIoOptions());
    disk_store_ = std::make_unique<BufferedEmbeddingStore>(buffer_.get(), true);
    disk_store_->set_compute(&compute_);
    store_ = disk_store_.get();
    if (replica_.world > 1 && !config_.storage.dir.empty()) {
      // Multi-replica disk training over an explicitly shared storage dir:
      // every replica holds identical embedding state in its buffer, so only
      // the owning rank (partition % world) writes a partition back — the
      // others skip the redundant (and racy) write. With a private per-rank
      // temp file (storage.dir empty) every rank must keep writing everything,
      // or its own later reads would see stale rows.
      std::vector<uint8_t> owned(static_cast<size_t>(config_.storage.num_physical));
      for (int32_t p = 0; p < config_.storage.num_physical; ++p) {
        owned[static_cast<size_t>(p)] =
            static_cast<uint8_t>(p % replica_.world == replica_.rank);
      }
      buffer_->SetPartitionOwnership(std::move(owned));
    }
    if (config_.storage.policy == "beta") {
      policy_ = std::make_unique<BetaPolicy>();
    } else {
      MG_CHECK_MSG(config_.storage.policy == "comet", "policy must be comet or beta");
      policy_ = std::make_unique<CometPolicy>(config_.storage.num_logical,
                                              config_.storage.comet_randomize_grouping,
                                              config_.storage.comet_deferred_assignment);
    }
    MG_CHECK_MSG(config_.sampler == SamplerKind::kDense,
                 "baseline sampler supports in-memory training only");
  }
}

LinkPredictionTrainer::~LinkPredictionTrainer() = default;

// Batch construction (pipeline stage 1). Runs on worker threads: everything is
// derived from `batch_seed` and read-only state, so the batch is identical for any
// worker count (samplers must already point at the right index — see RunBatches).
LinkPredictionTrainer::PreparedBatch LinkPredictionTrainer::PrepareBatch(
    const std::vector<int64_t>& edge_ids, const UniformNegativeSampler& negatives,
    uint64_t batch_seed) const {
  PreparedBatch batch;
  std::unordered_map<int64_t, int64_t> row_of;
  row_of.reserve(edge_ids.size() * 3);
  auto row = [&](int64_t node) {
    auto [it, inserted] = row_of.emplace(node, static_cast<int64_t>(batch.targets.size()));
    if (inserted) {
      batch.targets.push_back(node);
    }
    return it->second;
  };

  batch.src_rows.reserve(edge_ids.size());
  batch.dst_rows.reserve(edge_ids.size());
  batch.rels.reserve(edge_ids.size());
  for (int64_t e : edge_ids) {
    const Edge& edge = graph_->edge(e);
    batch.src_rows.push_back(row(edge.src));
    batch.dst_rows.push_back(row(edge.dst));
    batch.rels.push_back(edge.rel);
  }
  for (int64_t n : negatives.SampleSeeded(config_.num_negatives, MixSeed(batch_seed, 1))) {
    batch.neg_rows.push_back(row(n));
  }

  if (model_.dense_sampler != nullptr) {
    batch.dense = model_.dense_sampler->SampleSeeded(batch.targets, MixSeed(batch_seed, 2));
    batch.dense.FinalizeForDevice();
    batch.dense_nodes = batch.dense.node_ids;
  } else if (model_.layerwise_sampler != nullptr) {
    batch.layerwise =
        model_.layerwise_sampler->SampleSeeded(batch.targets, MixSeed(batch_seed, 3));
  }
  return batch;
}

void LinkPredictionTrainer::ConsumeBatch(PreparedBatch& batch, EpochStats* stats) {
  Tensor reprs;
  if (model_.encoder != nullptr) {
    Tensor h0;
    store_->Gather(batch.dense_nodes, &h0);
    reprs = model_.encoder->Forward(batch.dense, h0);
  } else if (model_.block_encoder != nullptr) {
    Tensor h0;
    store_->Gather(batch.layerwise.input_nodes(), &h0);
    reprs = model_.block_encoder->Forward(batch.layerwise, h0);
  } else {
    store_->Gather(batch.targets, &reprs);
  }

  Tensor d_reprs(reprs.rows(), reprs.cols());
  const float loss = model_.decoder->LossAndGrad(reprs, batch.src_rows, batch.dst_rows,
                                                 batch.rels, batch.neg_rows, &d_reprs);

  // The touched sparse rows + their gradients for this batch; every update —
  // sparse and dense — is applied through the gradient-exchange seam.
  const std::vector<int64_t>* sparse_nodes = nullptr;
  Tensor sparse_grads;
  if (model_.encoder != nullptr) {
    sparse_grads = model_.encoder->Backward(d_reprs);
    sparse_nodes = &batch.dense_nodes;
  } else if (model_.block_encoder != nullptr) {
    sparse_grads = model_.block_encoder->Backward(d_reprs);
    sparse_nodes = &batch.layerwise.input_nodes();
  } else {
    sparse_grads = std::move(d_reprs);
    sparse_nodes = &batch.targets;
  }
  ExchangeApply(/*has_batch=*/true, loss, sparse_nodes, &sparse_grads, store_,
                config_.embedding_lr, stats);
}

// One PipelineSession spans the whole epoch: the producer maps the session's
// global index onto the current set's local batch number (run_batch_base_),
// then through ReplicaBatchPartition onto the set's GLOBAL batch number g —
// rank r builds exactly the batches with g % world == r, seeded by
// ReplicaBatchPartition::BatchSeed(per-set run_seed, g). For world == 1 this
// degenerates to g == local batch and the stream is bit-identical to the
// single-replica pipelines it replaces. The controller's worker count at epoch
// start (== pipeline.workers when adapting is off) sizes the session; worker
// count never affects the batch stream, only where time goes.
std::unique_ptr<PipelineSession> LinkPredictionTrainer::MakeSession(
    EpochStats* stats) {
  return std::make_unique<PipelineSession>(
      config_.MakePipelineSessionOptions(controller_.workers()),
      [this](int64_t index) -> std::shared_ptr<void> {
        const int64_t g = replica_.GlobalIndex(index - run_batch_base_);
        const int64_t begin = g * config_.batch_size;
        const int64_t end = begin + config_.batch_size < run_total_
                                ? begin + config_.batch_size
                                : run_total_;
        const std::vector<int64_t> ids(run_ids_->begin() + begin,
                                       run_ids_->begin() + end);
        return std::make_shared<PreparedBatch>(
            PrepareBatch(ids, *run_negatives_,
                         ReplicaBatchPartition::BatchSeed(run_seed_, g)));
      },
      [this, stats](void* item, int64_t) {
        // The consumer runs strictly in batch-index order; ConsumeBatch routes
        // the step through the exchange seam, which folds every replica's loss
        // into the epoch's determinism hash (docs/DETERMINISM.md).
        ConsumeBatch(*static_cast<PreparedBatch*>(item), stats);
      });
}

PipelineStats LinkPredictionTrainer::RunBatches(
    const std::vector<int64_t>& edge_ids, const NeighborIndex& index,
    const UniformNegativeSampler& negatives, PipelineSession* session,
    EpochStats* stats) {
  const int64_t total = static_cast<int64_t>(edge_ids.size());
  if (total == 0) {
    return PipelineStats();
  }
  // Point the samplers at this run's index once, up front; workers then only call
  // const, seed-driven sampling methods. Swapping this (and the run_* members) is
  // safe here: no producer can run between segments — workers never claim an
  // index beyond the announced limit.
  if (model_.dense_sampler != nullptr) {
    model_.dense_sampler->set_index(&index);
  }
  if (model_.layerwise_sampler != nullptr) {
    model_.layerwise_sampler->set_index(&index);
  }
  run_ids_ = &edge_ids;
  run_negatives_ = &negatives;
  run_seed_ = rng_.Next();
  run_batch_base_ = session->announced();
  run_total_ = total;
  const int64_t num_batches =
      (total + config_.batch_size - 1) / config_.batch_size;
  // Rank r consumes only the global batches with g % world == r; the other
  // ranks' losses/gradients arrive through the exchange. Ranks whose share is
  // short of the step count run trailing batchless exchanges so every rank
  // performs the same exchange sequence (StepCount == rank 0's local count).
  const int64_t local_batches = replica_.LocalCount(num_batches);
  const int64_t steps = replica_.StepCount(num_batches);
  const PipelineStats ps = session->RunSegment(local_batches);
  for (int64_t s = local_batches; s < steps; ++s) {
    ExchangeApply(/*has_batch=*/false, 0.0f, nullptr, nullptr, store_,
                  config_.embedding_lr, stats);
  }
  int64_t local_examples = local_batches * config_.batch_size;
  if (local_batches > 0 &&
      replica_.GlobalIndex(local_batches - 1) == num_batches - 1) {
    // This rank owns the (possibly partial) last global batch.
    local_examples += total - (num_batches - 1) * config_.batch_size -
                      config_.batch_size;
  }
  stats->AccumulatePipeline(ps, local_examples);
  return ps;
}

void LinkPredictionTrainer::ReportSetBoundary(
    PipelineSession* session, const PipelineStats& ps,
    const ComputeStats& compute_before, double io_stall_delta,
    double window_seconds, bool more_sets, EpochStats* stats) {
  controller_.ReportSetBoundary(ps, compute_stats_, compute_before, io_stall_delta,
                                window_seconds, more_sets, session,
                                &stats->workers_per_set, &stats->resize_count);
}

EpochStats LinkPredictionTrainer::TrainEpochInMemory() {
  EpochStats stats;
  compute_stats_.Reset();
  WallTimer timer;
  std::vector<int64_t> edge_ids = graph_->train_edges();
  if (edge_ids.empty()) {
    edge_ids.resize(static_cast<size_t>(graph_->num_edges()));
    for (int64_t e = 0; e < graph_->num_edges(); ++e) {
      edge_ids[static_cast<size_t>(e)] = e;
    }
  }
  rng_.Shuffle(edge_ids);
  stats.pipeline_workers = controller_.workers();
  std::unique_ptr<PipelineSession> session = MakeSession(&stats);
  UniformNegativeSampler negatives(graph_->num_nodes(), rng_.Next());
  const ComputeStats compute_before = compute_stats_;
  const PipelineStats ps =
      RunBatches(edge_ids, *full_index_, negatives, session.get(), &stats);
  stats.compute_seconds = timer.Seconds();
  stats.wall_seconds = stats.compute_seconds;
  ReportSetBoundary(session.get(), ps, compute_before, /*io_stall_delta=*/0.0,
                    timer.Seconds(), /*more_sets=*/false, &stats);
  stats.compute_parallel_efficiency = compute_stats_.ParallelEfficiency();
  controller_.ObserveEpoch(stats.compute_parallel_efficiency);
  stats.num_partition_sets = 1;
  if (stats.num_global_batches > 0) {
    stats.loss /= static_cast<double>(stats.num_global_batches);
  }
  return stats;
}

EpochStats LinkPredictionTrainer::TrainEpochDisk() {
  EpochStats stats;
  compute_stats_.Reset();
  EpochPlan plan = policy_->GenerateEpoch(*partitioning_, config_.storage.buffer_capacity, rng_);
  stats.num_partition_sets = plan.num_sets();
  stats.pipeline_workers = controller_.workers();
  std::unique_ptr<PipelineSession> session = MakeSession(&stats);

  double prev_compute = 0.0;
  for (int64_t i = 0; i < plan.num_sets(); ++i) {
    // Controller window for this set: everything from the swap-in to the end of
    // its training segment.
    const ComputeStats compute_before = compute_stats_;
    const double io_stall_before = stats.io_stall_seconds;
    WallTimer window_timer;

    const double sync_io = buffer_->SetResident(plan.sets[static_cast<size_t>(i)]);
    stats.AccumulateSwapIo(sync_io, buffer_->ConsumeBackgroundIoSeconds(),
                           prev_compute);

    // Shared-storage fence (no-op otherwise): this set's dirty evictions may
    // still be async submissions, and partitions another rank owns are never
    // written back by this rank at all — so before anyone reads ahead, drain
    // own write-backs and rendezvous. Every set-i read is thereby covered by
    // the fence at set i-1 (within one SetResident the evict and load sets are
    // disjoint, and all ranks run identical plans); the prefetch below issues
    // strictly after the fence. The epoch boundary needs no extra fence:
    // FlushAll below is synchronous and the epoch-hash exchange that follows
    // it is itself a rendezvous.
    SharedWritebackBarrier(buffer_.get());

    // Stage the next set's partitions while this set trains (Figure 2's partition
    // prefetch); the policy knows the upcoming swap.
    if (config_.storage.prefetch && i + 1 < plan.num_sets()) {
      buffer_->Prefetch(policy_->Lookahead(plan, i));
    }

    WallTimer set_timer;
    // In-memory subgraph: all edges between resident partitions (Section 4.1).
    std::vector<Edge> resident_edges;
    const auto& set = plan.sets[static_cast<size_t>(i)];
    for (int32_t a : set) {
      for (int32_t b : set) {
        for (int64_t e : partitioning_->Bucket(a, b)) {
          resident_edges.push_back(graph_->edge(e));
        }
      }
    }
    NeighborIndex index(graph_->num_nodes(), resident_edges);

    // X_i: training examples assigned to this set.
    std::vector<int64_t> train_ids;
    for (const BucketId& bucket : plan.buckets_per_set[static_cast<size_t>(i)]) {
      for (int64_t e : partitioning_->Bucket(bucket.first, bucket.second)) {
        if (is_train_edge_[static_cast<size_t>(e)] != 0) {
          train_ids.push_back(e);
        }
      }
    }
    rng_.Shuffle(train_ids);

    const UniformNegativeSampler negatives(buffer_->ResidentNodes(), rng_.Next());
    const PipelineStats ps =
        RunBatches(train_ids, index, negatives, session.get(), &stats);
    prev_compute = set_timer.Seconds();
    stats.compute_seconds += prev_compute;
    ReportSetBoundary(session.get(), ps, compute_before,
                      stats.io_stall_seconds - io_stall_before,
                      window_timer.Seconds(), i + 1 < plan.num_sets(), &stats);
  }
  // End-of-epoch flush: write-backs still in flight drained plus the final dirty
  // evictions. Background leftovers are charged conservatively as full stalls.
  const double flush_io = buffer_->FlushAll();
  const double leftover_bg = buffer_->ConsumeBackgroundIoSeconds();
  stats.io_seconds += flush_io + leftover_bg;
  stats.io_stall_seconds += flush_io + leftover_bg;
  const IoEngineStats engine_io = buffer_->ConsumeIoStats();
  stats.io_read_bytes = engine_io.read_bytes;
  stats.io_write_bytes = engine_io.write_bytes;
  stats.io_queue_depth_mean = engine_io.queue_depth_mean;
  stats.io_inflight_peak = engine_io.inflight_peak;
  stats.wall_seconds = stats.compute_seconds + stats.io_stall_seconds;
  stats.compute_parallel_efficiency = compute_stats_.ParallelEfficiency();
  controller_.ObserveEpoch(stats.compute_parallel_efficiency);
  if (stats.num_global_batches > 0) {
    stats.loss /= static_cast<double>(stats.num_global_batches);
  }
  return stats;
}

EpochStats LinkPredictionTrainer::TrainEpochImpl() {
  return config_.storage.use_disk ? TrainEpochDisk() : TrainEpochInMemory();
}

CheckpointSectionSpec LinkPredictionTrainer::MakeBufferSectionSpec(
    const char* name, bool state_stream) {
  const Partitioning* partitioning = partitioning_.get();
  int64_t num_nodes = 0;
  int64_t max_rows = 0;
  for (int32_t part = 0; part < partitioning->num_partitions(); ++part) {
    num_nodes += partitioning->PartitionSize(part);
    max_rows = std::max(max_rows, partitioning->PartitionSize(part));
  }
  const int64_t dim = buffer_->dim();
  CheckpointSectionSpec spec;
  spec.name = name;
  spec.rows = num_nodes;
  spec.cols = dim;
  PartitionBuffer* buffer = buffer_.get();
  spec.write = [partitioning, buffer, dim, max_rows,
                state_stream](CheckpointSectionWriter* w) {
    // One partition of one stream is the only staging this producer ever holds
    // — the streaming writer's whole point. Rows scatter to their node-indexed
    // positions because partitions hold a random permutation of node ids.
    std::vector<float> scratch(static_cast<size_t>(max_rows) * dim);
    w->NoteStagingBytes(scratch.size() * sizeof(float));
    for (int32_t part = 0; part < partitioning->num_partitions(); ++part) {
      buffer->ExportPartition(part, state_stream ? nullptr : scratch.data(),
                              state_stream ? scratch.data() : nullptr);
      const auto& nodes = partitioning->NodesIn(part);
      for (size_t k = 0; k < nodes.size(); ++k) {
        w->WriteRows(nodes[k], 1, &scratch[k * static_cast<size_t>(dim)]);
      }
    }
  };
  return spec;
}

void LinkPredictionTrainer::AppendCheckpointSections(CheckpointSaveRequest* request) {
  if (config_.storage.use_disk) {
    // Disk mode: streamed partition-by-partition. Resident partitions flush
    // through from buffer memory; evicted ones are read back via the engine —
    // the full table is never materialised (peak = one partition's scratch).
    request->sections.push_back(MakeBufferSectionSpec("embeddings.values", false));
    request->sections.push_back(MakeBufferSectionSpec("embeddings.state", true));
  } else {
    request->sections.push_back(
        TensorSectionSpec("embeddings.values", mem_store_->values()));
    request->sections.push_back(
        TensorSectionSpec("embeddings.state", mem_store_->state()));
  }
}

void LinkPredictionTrainer::RestoreCheckpointSections(CheckpointReader& reader) {
  const CheckpointSectionInfo* values = reader.FindSection("embeddings.values");
  const CheckpointSectionInfo* state = reader.FindSection("embeddings.state");
  MG_CHECK_MSG(values != nullptr && state != nullptr,
               "checkpoint is missing the embedding sections");
  std::string error;
  if (config_.storage.use_disk) {
    const Partitioning* partitioning = partitioning_.get();
    int64_t num_nodes = 0;
    int64_t max_rows = 0;
    for (int32_t part = 0; part < partitioning->num_partitions(); ++part) {
      num_nodes += partitioning->PartitionSize(part);
      max_rows = std::max(max_rows, partitioning->PartitionSize(part));
    }
    const int64_t dim = buffer_->dim();
    MG_CHECK_MSG(values->rows == num_nodes && values->cols == dim &&
                     state->rows == num_nodes && state->cols == dim,
                 "checkpoint embedding shape mismatch");
    // Inverse of the streaming save: gather each partition's rows from their
    // node-indexed section positions into one-partition scratch buffers, then
    // overwrite that partition's on-disk extent. Peak memory stays at one
    // partition of each stream.
    buffer_->BeginImport();
    std::vector<float> vscratch(static_cast<size_t>(max_rows) * dim);
    std::vector<float> sscratch(vscratch.size());
    for (int32_t part = 0; part < partitioning->num_partitions(); ++part) {
      const auto& nodes = partitioning->NodesIn(part);
      for (size_t k = 0; k < nodes.size(); ++k) {
        MG_CHECK_MSG(reader.ReadRows(*values, nodes[k], 1,
                                     &vscratch[k * static_cast<size_t>(dim)], &error),
                     error.c_str());
        MG_CHECK_MSG(reader.ReadRows(*state, nodes[k], 1,
                                     &sscratch[k * static_cast<size_t>(dim)], &error),
                     error.c_str());
      }
      buffer_->ImportPartition(part, vscratch.data(), sscratch.data());
    }
  } else {
    MG_CHECK_MSG(values->rows == mem_store_->values().rows() &&
                     values->cols == mem_store_->values().cols(),
                 "checkpoint embedding shape mismatch");
    std::vector<float> value_data(static_cast<size_t>(values->rows) * values->cols);
    MG_CHECK_MSG(reader.ReadSection(*values, value_data.data(), &error),
                 error.c_str());
    std::vector<float> state_data(static_cast<size_t>(state->rows) * state->cols);
    MG_CHECK_MSG(reader.ReadSection(*state, state_data.data(), &error),
                 error.c_str());
    mem_store_->Restore(Tensor(values->rows, values->cols, std::move(value_data)),
                        Tensor(state->rows, state->cols, std::move(state_data)));
  }
}

// Evaluation-time neighborhood samples are seeded from the run seed (not the
// samplers' internal RNG streams), so metrics are a pure function of model
// state: repeated evaluations of the same model agree bit-for-bit, and a
// checkpoint-resumed trainer evaluates identically to the one that saved it.
Tensor LinkPredictionTrainer::InferReprs(const std::vector<int64_t>& nodes,
                                         const Tensor& values,
                                         const NeighborIndex& index) {
  const uint64_t eval_seed = MixSeed(config_.seed, 0x4556414CULL);  // "EVAL"
  return model_.InferReprs(
      nodes, eval_seed, index,
      [&](const std::vector<int64_t>& ids) { return IndexSelect(values, ids, &compute_); },
      &compute_);
}

namespace {

// Exact packed key for (src, rel, dst); valid for graphs below 2^20 nodes and 2^24
// relations (checked by the caller).
uint64_t EdgeKey(int64_t src, int32_t rel, int64_t dst) {
  return (static_cast<uint64_t>(src) << 44) |
         (static_cast<uint64_t>(static_cast<uint32_t>(rel)) << 20) |
         static_cast<uint64_t>(dst);
}

}  // namespace

double LinkPredictionTrainer::EvaluateMrr(int64_t num_negatives, int64_t max_edges,
                                          bool use_valid, bool filtered) {
  if (filtered && true_edges_.empty()) {
    MG_CHECK_MSG(graph_->num_nodes() < (1LL << 20) && graph_->num_relations() < (1 << 24),
                 "filtered MRR requires < 2^20 nodes and < 2^24 relations");
    true_edges_.reserve(static_cast<size_t>(graph_->num_edges()) * 2);
    for (const Edge& e : graph_->edges()) {
      true_edges_.insert(EdgeKey(e.src, e.rel, e.dst));
    }
  }
  // Base representations in memory (exported from disk when needed).
  Tensor values;
  if (config_.storage.use_disk) {
    values = buffer_->ExportAll();
  } else {
    values = mem_store_->values();
  }
  if (full_index_ == nullptr) {
    full_index_ = std::make_unique<NeighborIndex>(*graph_);
  }

  const std::vector<int64_t>& split = use_valid ? graph_->valid_edges() : graph_->test_edges();
  std::vector<int64_t> edge_ids = split;
  if (edge_ids.empty()) {
    for (int64_t e = 0; e < std::min<int64_t>(max_edges, graph_->num_edges()); ++e) {
      edge_ids.push_back(e);
    }
  }
  if (static_cast<int64_t>(edge_ids.size()) > max_edges) {
    edge_ids.resize(static_cast<size_t>(max_edges));
  }

  Rng eval_rng(config_.seed + 97);
  std::vector<int64_t> neg_nodes(static_cast<size_t>(num_negatives));
  for (auto& v : neg_nodes) {
    v = eval_rng.UniformInt(0, graph_->num_nodes());
  }

  std::vector<int64_t> ranks;
  const int64_t chunk = 256;
  for (size_t begin = 0; begin < edge_ids.size(); begin += chunk) {
    const size_t end = std::min(edge_ids.size(), begin + chunk);
    std::vector<int64_t> targets;
    std::unordered_map<int64_t, int64_t> row_of;
    auto row = [&](int64_t node) {
      auto [it, inserted] = row_of.emplace(node, static_cast<int64_t>(targets.size()));
      if (inserted) {
        targets.push_back(node);
      }
      return it->second;
    };
    std::vector<int64_t> srcs, dsts;
    std::vector<int32_t> rels;
    for (size_t k = begin; k < end; ++k) {
      const Edge& e = graph_->edge(edge_ids[k]);
      srcs.push_back(row(e.src));
      dsts.push_back(row(e.dst));
      rels.push_back(e.rel);
    }
    std::vector<int64_t> neg_rows;
    for (int64_t n : neg_nodes) {
      neg_rows.push_back(row(n));
    }

    Tensor reprs = InferReprs(targets, values, *full_index_);
    std::vector<float> neg_scores;
    std::vector<float> kept_scores;
    std::vector<float> pos_score;
    // Node ids behind each edge row in this chunk (needed for filtering).
    std::vector<int64_t> src_ids, dst_ids;
    for (size_t k = begin; k < end; ++k) {
      src_ids.push_back(graph_->edge(edge_ids[k]).src);
      dst_ids.push_back(graph_->edge(edge_ids[k]).dst);
    }
    for (size_t k = 0; k < srcs.size(); ++k) {
      // dst corruption.
      model_.decoder->ScoreCandidates(reprs, srcs[k], rels[k], {dsts[k]}, false, &pos_score);
      model_.decoder->ScoreCandidates(reprs, srcs[k], rels[k], neg_rows, false, &neg_scores);
      if (filtered) {
        kept_scores.clear();
        for (size_t j = 0; j < neg_nodes.size(); ++j) {
          if (true_edges_.count(EdgeKey(src_ids[k], rels[k], neg_nodes[j])) == 0) {
            kept_scores.push_back(neg_scores[j]);
          }
        }
        ranks.push_back(RankOfPositive(pos_score[0], kept_scores));
      } else {
        ranks.push_back(RankOfPositive(pos_score[0], neg_scores));
      }
      // src corruption.
      model_.decoder->ScoreCandidates(reprs, dsts[k], rels[k], {srcs[k]}, true, &pos_score);
      model_.decoder->ScoreCandidates(reprs, dsts[k], rels[k], neg_rows, true, &neg_scores);
      if (filtered) {
        kept_scores.clear();
        for (size_t j = 0; j < neg_nodes.size(); ++j) {
          if (true_edges_.count(EdgeKey(neg_nodes[j], rels[k], dst_ids[k])) == 0) {
            kept_scores.push_back(neg_scores[j]);
          }
        }
        ranks.push_back(RankOfPositive(pos_score[0], kept_scores));
      } else {
        ranks.push_back(RankOfPositive(pos_score[0], neg_scores));
      }
    }
  }
  return MrrFromRanks(ranks);
}

}  // namespace mariusgnn
