// Umbrella header: the public API of the MariusGNN reproduction.
//
// Quick start (see examples/quickstart.cpp):
//
//   Graph graph = Fb15k237Like();
//   TrainingConfig config;
//   config.fanouts = {20};
//   config.dims = {32, 32};
//   LinkPredictionTrainer trainer(&graph, config);
//   for (int epoch = 0; epoch < 5; ++epoch) trainer.TrainEpoch();
//   double mrr = trainer.EvaluateMrr();
#ifndef SRC_CORE_MARIUSGNN_H_
#define SRC_CORE_MARIUSGNN_H_

#include "src/core/config.h"
#include "src/core/link_prediction_trainer.h"
#include "src/core/node_classification_trainer.h"
#include "src/data/datasets.h"
#include "src/data/generators.h"
#include "src/eval/metrics.h"
#include "src/policy/autotune.h"
#include "src/policy/beta.h"
#include "src/policy/bias.h"
#include "src/policy/comet.h"
#include "src/sampler/dense.h"
#include "src/sampler/layerwise.h"

#endif  // SRC_CORE_MARIUSGNN_H_
