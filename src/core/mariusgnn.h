// Umbrella header: the public API of the MariusGNN reproduction.
//
// Quick start (see examples/quickstart.cpp):
//
//   Graph graph = Fb15k237Like();
//   TrainingConfig config;
//   config.fanouts = {20};
//   config.dims = {32, 32};
//   LinkPredictionTrainer trainer(&graph, config);
//   for (int epoch = 0; epoch < 5; ++epoch) trainer.TrainEpoch();
//   double mrr = trainer.EvaluateMrr();
//
// Crash-safe checkpointing (src/core/checkpoint.h): both trainers write atomic
// epoch-boundary snapshots — model parameters + Adagrad accumulators, the
// embedding table (flushed through the PartitionBuffer in disk mode), and the
// full RNG/epoch state — behind a format-versioned, checksummed manifest. All
// persistence goes through the atomic-write primitive in src/util/binary_io.h
// (tmp file → fsync → rename), so a crash at any point leaves the previous
// snapshot intact. Because every batch is a pure function of
// MixSeed(run_seed, batch_index), a resumed run is bitwise-identical to one
// that never stopped:
//
//   config.checkpoint.every_n_epochs = 1;
//   config.checkpoint.path = "run.ckpt";
//   LinkPredictionTrainer trainer(&graph, config);   // auto-saves every epoch
//   ...crash...
//   LinkPredictionTrainer resumed(&graph, config);   // same config
//   resumed.ResumeFrom("run.ckpt");                  // continues bit-for-bit
//
// Online serving (src/serve/, see examples/serve_quickstart.cpp): an
// InferenceServer answers concurrent link-prediction / node-classification
// queries straight off checkpoint snapshots — mmapped zero-copy for v2 files,
// LRU-cached disk reads for tables too big for RAM — coalescing concurrent
// requests into one batched forward and hot-swapping to a newer checkpoint
// without dropping in-flight requests:
//
//   InferenceServer server(&graph, TaskKind::kLinkPrediction,
//                          config.model_config(), {});
//   server.LoadSnapshot("run.ckpt", &error);
//   ServeResult r = server.ScoreLinks(src, rel, candidates);
#ifndef SRC_CORE_MARIUSGNN_H_
#define SRC_CORE_MARIUSGNN_H_

#include "src/core/checkpoint.h"
#include "src/core/config.h"
#include "src/core/link_prediction_trainer.h"
#include "src/core/node_classification_trainer.h"
#include "src/data/datasets.h"
#include "src/data/generators.h"
#include "src/eval/metrics.h"
#include "src/policy/autotune.h"
#include "src/policy/beta.h"
#include "src/policy/bias.h"
#include "src/policy/comet.h"
#include "src/sampler/dense.h"
#include "src/sampler/layerwise.h"
#include "src/serve/server.h"

#endif  // SRC_CORE_MARIUSGNN_H_
